// stock_ticker — PointCast-style information dissemination over SSTP.
//
// The paper motivates SSTP with "stock quote or general information
// dissemination services". This example publishes a quote board as a
// hierarchical namespace (/sector/symbol), keeps updating quotes, and runs
// two subscribers with different application interests:
//   * a trading desk subscribed to everything,
//   * a phone widget that only repairs /tech (interest filtering, the
//     paper's PDA-skips-hi-res-images case).
// The profile-driven allocator manages the data/feedback split from measured
// loss, and the application throttles on rate warnings (back-pressure).
#include <cstdio>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "sstp/session.hpp"

using namespace sst;
using namespace sst::sstp;

namespace {

const char* kSectors[] = {"tech", "energy", "retail"};
const char* kSymbols[] = {"AA", "BB", "CC", "DD", "EE", "FF", "GG", "HH"};

std::vector<std::uint8_t> quote(double price) {
  const std::string s = std::to_string(price);
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

}  // namespace

int main() {
  sim::Simulator sim;

  SessionConfig cfg;
  cfg.num_receivers = 2;
  cfg.loss_rate = 0.25;
  cfg.sender.mu_data = sim::kbps(24);
  cfg.sender.min_summary_interval = 0.5;
  cfg.mu_fb = sim::kbps(8);
  cfg.use_allocator = true;
  cfg.allocator.total_bandwidth = sim::kbps(32);
  cfg.allocator.target_consistency = 0.95;
  // Receiver 1 (the phone) only cares about /tech; configured below via the
  // shared receiver config — both receivers get the filter, but it admits
  // everything for receiver 0 by keying on... receivers share config in the
  // Session harness, so express the phone's filter through tags: it skips
  // repair for anything tagged sector!=tech. The desk has interest in all
  // tags. We emulate per-receiver interest by filtering on tags that only
  // the phone treats as boring; since Session shares the config, the desk's
  // "interest in everything" is represented by the filter returning true
  // for tagged-tech OR untagged paths — and we tag only non-tech leaves.
  cfg.receiver.interest = [](const Path& path, const MetaTags& tags) {
    (void)path;
    for (const auto& t : tags) {
      if (t == "boring=yes") return false;
    }
    return true;
  };
  Session session(sim, cfg);

  // Quote updates: the ticker starts aggressively (20 quotes/s — well beyond
  // what 32 kbps sustains at 25% loss) and throttles whenever SSTP signals
  // that the arrival rate exceeds the sustainable rate.
  sim::Rng rng(2024);
  double publish_period = 0.05;
  sim::PeriodicTimer ticker(sim);
  int ticks = 0;
  int throttles = 0;

  session.sender().on_rate_warning([&](const Allocation& alloc) {
    // Application-specific adaptation (paper Section 6.1): halve the tick
    // rate until we fit under max_app_rate.
    publish_period *= 2.0;
    ticker.set_period(publish_period);
    ++throttles;
    std::printf("t=%7.1fs  [app] rate warning (max %.1f kbps) -> tick period "
                "now %.2f s\n",
                sim.now(), alloc.max_app_rate / 1000.0, publish_period);
  });

  auto tick = [&] {
    const char* sector = kSectors[rng.uniform_int(3)];
    const char* symbol = kSymbols[rng.uniform_int(8)];
    const Path p = Path::parse(std::string("/") + sector + "/" + symbol);
    MetaTags tags;
    if (std::string(sector) != "tech") tags.push_back("boring=yes");
    session.sender().publish(p, quote(10.0 + rng.uniform() * 90.0), tags);
    ++ticks;
  };
  ticker.start(publish_period, tick);

  // Report every 200 s.
  sim::PeriodicTimer reporter(sim);
  reporter.start(200.0, [&] {
    std::printf("t=%7.1fs  consistency=%.3f  measured loss=%.2f  desk "
                "leaves=%zu  phone leaves=%zu  ticks=%d\n",
                sim.now(), session.instantaneous_consistency(),
                session.sender().measured_loss(),
                session.receiver(0).tree().leaf_count(),
                session.receiver(1).tree().leaf_count(), ticks);
  });

  sim.run_until(1000.0);
  ticker.stop();
  sim.run_until(1100.0);  // drain

  std::printf("\nsummary:\n");
  std::printf("  quotes published: %d (throttled %d times by back-pressure)\n",
              ticks, throttles);
  std::printf("  final consistency: %.3f\n",
              session.instantaneous_consistency());
  const auto& rs = session.receiver(1).stats();
  std::printf("  phone skipped %llu repair decisions for non-tech branches\n",
              static_cast<unsigned long long>(rs.skipped_no_interest));
  std::printf("  observed channel loss: %.2f, receiver-estimated: %.2f\n",
              session.observed_loss(), session.receiver(0).loss_estimate());
  return 0;
}
