// routing_updates — RIP-style route advertisement dissemination.
//
// The paper lists "route advertisements" among the protocols with inherently
// soft, periodically changing data. A route table is the canonical
// announce/listen workload: entries are refreshed periodically, a route not
// refreshed times out (RIP's garbage-collection timer), and metric changes
// must propagate fast. This example runs a 60-route table over the
// two-queue + NACK feedback protocol and measures how quickly a burst of
// metric changes (a "link-cost event") reconverges, compared with the plain
// open-loop protocol at the same total bandwidth.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/monitor.hpp"
#include "core/open_loop.hpp"
#include "core/receiver.hpp"
#include "core/table.hpp"
#include "core/two_queue.hpp"
#include "core/workload.hpp"
#include "net/channel.hpp"
#include "net/delay.hpp"
#include "net/link.hpp"
#include "net/loss.hpp"
#include "sched/stride.hpp"
#include "sim/simulator.hpp"

using namespace sst;
using namespace sst::core;

namespace {

constexpr int kRoutes = 600;  // a modest full table; 60-byte entries
constexpr double kLoss = 0.2;

struct Router {
  sim::Simulator sim;
  PublisherTable rib;  // routing information base at the speaker
  std::vector<Key> routes;
  std::unique_ptr<ConsistencyMonitor> monitor;
  std::unique_ptr<Workload> workload;
  std::unique_ptr<ReceiverTable> peer_rib;
  std::unique_ptr<ReceiverAgent> peer;
  std::unique_ptr<net::Channel<DataMsg>> channel;
  std::unique_ptr<net::Channel<NackMsg>> fb_channel;
  std::unique_ptr<net::Link<NackMsg>> fb_link;
  std::unique_ptr<OpenLoopSender> open_loop;
  std::unique_ptr<TwoQueueSender> feedback;

  explicit Router(bool use_feedback) {
    monitor = std::make_unique<ConsistencyMonitor>(sim, rib);
    WorkloadParams wp;  // all changes injected manually
    wp.insert_rate = 0.0;
    wp.death_mode = DeathMode::kPerTransmission;
    wp.p_death = 0.0;
    sim::Rng workload_rng(5);  // named streams: every seed is auditable here
    workload = std::make_unique<Workload>(sim, rib, wp, workload_rng);

    peer_rib = std::make_unique<ReceiverTable>(sim, /*ttl=*/300.0);  // ~10x the
    // refresh cycle, RIP-style margin against refresh loss
    monitor->attach(*peer_rib);

    channel = std::make_unique<net::Channel<DataMsg>>(sim);

    if (use_feedback) {
      fb_channel = std::make_unique<net::Channel<NackMsg>>(sim);
      // `feedback` (a member) is assigned below, before any NACK can arrive.
      sim::Rng fb_loss_rng(7);
      fb_channel->add_receiver(
          std::make_unique<net::BernoulliLoss>(kLoss, fb_loss_rng),
          std::make_unique<net::FixedDelay>(0.02),
          [this](const NackMsg& n) {
            if (feedback) feedback->handle_nack(n);
          });
      fb_link = std::make_unique<net::Link<NackMsg>>(
          sim, sim::kbps(6),
          [this](const NackMsg& n, sim::Bytes size) {
            fb_channel->send(n, size);
          },
          /*queue_limit=*/8);

      ReceiverConfig rcfg;
      rcfg.feedback = true;
      rcfg.nack_size = 100;   // a NACK names a few 32-bit seqs: small
      rcfg.retry_timeout = 0.5;  // snappy re-request on a low-RTT peering
      rcfg.max_retries = 6;
      sim::Rng peer_rng(11);
      peer = std::make_unique<ReceiverAgent>(
          sim, *peer_rib, rcfg,
          [this](const NackMsg& n) { fb_link->send(n, n.size); }, peer_rng);

      TwoQueueConfig tq;
      tq.mu_data = sim::kbps(18);
      tq.hot_share = 0.6;
      tq.feedback = true;
      feedback = std::make_unique<TwoQueueSender>(
          sim, rib, *workload, tq, std::make_unique<sched::StrideScheduler>(),
          [this](const DataMsg& m) { channel->send(m, m.size); });
    } else {
      ReceiverConfig rcfg;  // passive listener
      sim::Rng peer_rng(12);
      peer = std::make_unique<ReceiverAgent>(sim, *peer_rib, rcfg,
                                             [](const NackMsg&) {}, peer_rng);
      open_loop = std::make_unique<OpenLoopSender>(
          sim, rib, *workload, sim::kbps(24),
          [this](const DataMsg& m) { channel->send(m, m.size); });
    }

    sim::Rng data_loss_rng(6);
    channel->add_receiver(
        std::make_unique<net::BernoulliLoss>(kLoss, data_loss_rng),
        std::make_unique<net::FixedDelay>(0.02),
        [this](const DataMsg& m) { peer->handle(m); });

    // Install the routes (prefix -> metric encoded in the value).
    for (int i = 0; i < kRoutes; ++i) {
      routes.push_back(rib.insert({static_cast<std::uint8_t>(1)}, 60));
    }
  }

  /// Reconvergence time after bumping `n` route metrics: seconds until the
  /// peer holds the current version of every route again.
  double link_cost_event(int n, sim::Rng& rng) {
    for (int i = 0; i < n; ++i) {
      const Key k = routes[rng.uniform_int(routes.size())];
      rib.update(k, {static_cast<std::uint8_t>(rng.uniform_int(16))});
    }
    const double t0 = sim.now();
    while (monitor->instantaneous() < 1.0 && sim.now() < t0 + 600.0) {
      sim.run_until(sim.now() + 0.1);
    }
    return sim.now() - t0;
  }
};

}  // namespace

int main() {
  std::printf("routing_updates — %d routes over a %.0f%%-lossy peering, "
              "24 kbps budget\n",
              kRoutes, kLoss * 100);
  std::printf("protocol A: open-loop announce/listen (24 kbps data)\n");
  std::printf("protocol B: two-queue + NACK feedback (18 kbps data + 6 kbps "
              "feedback)\n\n");

  for (const bool use_feedback : {false, true}) {
    Router router(use_feedback);
    router.sim.run_until(300.0);  // initial table dissemination
    std::printf("[%s] initial table synced: consistency=%.2f, peer holds "
                "%zu/%d routes\n",
                use_feedback ? "feedback " : "open loop",
                router.monitor->instantaneous(), router.peer_rib->size(),
                kRoutes);

    sim::Rng rng(99);
    for (const int burst : {1, 5, 20}) {
      const double t = router.link_cost_event(burst, rng);
      std::printf("[%s] link-cost event touching %2d routes: reconverged in "
                  "%6.2f s\n",
                  use_feedback ? "feedback " : "open loop", burst, t);
    }
    std::printf("\n");
  }

  std::printf("takeaway: open-loop reconvergence waits for the refresh "
              "cycle (~12 s here) to come around for every touched route; "
              "feedback pinpoints the changed routes, so the common case is "
              "sub-second and only repair-loss tails wait longer.\n");
  return 0;
}
