// session_directory — an sdr/SAP-style multicast session directory.
//
// The paper's motivating application: "it has been successfully used in the
// multicast-based session directory tools to disseminate MBone conference
// information to large groups." Conference announcements are soft state:
// each has a lifetime (the conference duration), directories listen to the
// announcement channel, late joiners catch up from periodic refreshes, and
// entries expire when announcements cease — no teardown protocol exists.
//
// This example uses the CORE announce/listen machinery (open-loop sender,
// receiver table with expiry timers) rather than SSTP, to show the
// lower-level API, and demonstrates:
//   * late join: a directory that tunes in mid-session converges,
//   * soft teardown: a crashed announcer's session simply expires,
//   * robustness: everything runs over a 15%-lossy channel.
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/open_loop.hpp"
#include "core/table.hpp"
#include "core/workload.hpp"
#include "net/channel.hpp"
#include "net/delay.hpp"
#include "net/loss.hpp"
#include "sim/simulator.hpp"

using namespace sst;
using namespace sst::core;

namespace {

std::vector<std::uint8_t> text(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

std::string name_of(const Record& rec) {
  return std::string(rec.value.begin(), rec.value.end());
}

}  // namespace

int main() {
  sim::Simulator sim;

  // The announcer's directory of live conferences.
  PublisherTable directory;
  std::map<Key, std::string> names;  // key -> session name (for printing)
  directory.subscribe([&](const Record& rec, ChangeKind kind) {
    if (kind == ChangeKind::kInsert) names[rec.key] = name_of(rec);
    if (kind == ChangeKind::kRemove) {
      std::printf("t=%6.1fs  [announcer] conference '%s' ended\n", sim.now(),
                  names[rec.key].c_str());
    }
  });

  WorkloadParams wp;  // manual workload: we insert sessions ourselves
  wp.insert_rate = 0.0;
  wp.death_mode = DeathMode::kPerTransmission;
  wp.p_death = 0.0;
  sim::Rng workload_rng(1);  // named streams: every seed is auditable here
  Workload workload(sim, directory, wp, workload_rng);

  // The SAP announcement channel: 16 kbps of directory bandwidth, 15% loss,
  // two listening directories — one present from the start, one late joiner.
  net::Channel<DataMsg> channel(sim);
  auto early = std::make_unique<ReceiverTable>(sim, /*ttl=*/45.0);
  auto late = std::make_unique<ReceiverTable>(sim, /*ttl=*/45.0);

  sim::Rng early_loss_rng(2);
  channel.add_receiver(
      std::make_unique<net::BernoulliLoss>(0.15, early_loss_rng),
      std::make_unique<net::FixedDelay>(0.05),
      [&](const DataMsg& m) { early->refresh(m.key, m.version); });

  // The late joiner's handler starts deaf and tunes in at t=300.
  bool late_tuned_in = false;
  sim::Rng late_loss_rng(3);
  channel.add_receiver(
      std::make_unique<net::BernoulliLoss>(0.15, late_loss_rng),
      std::make_unique<net::FixedDelay>(0.05), [&](const DataMsg& m) {
        if (late_tuned_in) late->refresh(m.key, m.version);
      });

  early->on_refresh([&](Key k, Version, bool was_new, bool) {
    if (was_new) {
      std::printf("t=%6.1fs  [early dir] learned of '%s'\n", sim.now(),
                  names[k].c_str());
    }
  });
  early->on_expire([&](Key k, Version) {
    std::printf("t=%6.1fs  [early dir] '%s' timed out of the directory\n",
                sim.now(), names[k].c_str());
  });
  late->on_refresh([&](Key k, Version, bool was_new, bool) {
    if (was_new) {
      std::printf("t=%6.1fs  [late dir ] caught up with '%s'\n", sim.now(),
                  names[k].c_str());
    }
  });

  OpenLoopSender announcer(sim, directory, workload, sim::kbps(16),
                           [&](const DataMsg& m) { channel.send(m, m.size); });

  // --- the session schedule -------------------------------------------------
  std::printf("--- announcing three conferences (SAP-style, 16 kbps, 15%% "
              "loss)\n");
  const Key lecture = directory.insert(text("CS268 lecture"), 400);
  const Key concert = directory.insert(text("net-radio concert"), 400);
  // Scheduled lambdas capture pointers by value: main()'s locals do outlive
  // the run here, but events must never hold by-reference captures into a
  // stack frame (tools/sstlyz.py ref-capture contract).
  sim.at(120.0, [dir = &directory] {
    const Key bof = dir->insert(text("IETF BOF"), 400);
    (void)bof;
  });

  // Late joiner tunes in mid-session.
  sim.at(300.0, [tuned = &late_tuned_in, simp = &sim] {
    *tuned = true;
    std::printf("t=%6.1fs  [late dir ] tuned into the announcement channel\n",
                simp->now());
  });

  // The concert ends normally at t=500 (announcer withdraws it).
  sim.at(500.0, [dir = &directory, concert] { dir->remove(concert); });

  // The lecture's announcer CRASHES at t=650 — no teardown is ever sent.
  // Soft state handles it: both directories expire the entry ~45 s later.
  sim.at(650.0, [dir = &directory, namesp = &names, simp = &sim, lecture] {
    std::printf("t=%6.1fs  [announcer] crash! '%s' stops being refreshed "
                "(no teardown message)\n",
                simp->now(), (*namesp)[lecture].c_str());
    dir->remove(lecture);  // the crash, from the channel's viewpoint
  });

  sim.run_until(900.0);

  std::printf("\nfinal directory sizes: announcer=%zu early=%zu late=%zu "
              "(IETF BOF remains live)\n",
              directory.live_count(), early->size(), late->size());
  std::printf("announcements sent: %llu\n",
              static_cast<unsigned long long>(announcer.stats().data_tx));
  return 0;
}
