// shared_whiteboard — an NTE/wb-style shared document over SSTP.
//
// The paper's lineage runs through the MBone light-weight sessions tools
// (wb, NTE): loosely-coupled shared state, eventual consistency, graceful
// handling of late joiners and member failure. This example shares a
// multi-page whiteboard:
//   * the namespace is /page<k>/stroke<i>,
//   * the CURRENT page is a high-priority application data class (Figure 12:
//     the app reflects its priorities into transport scheduling),
//   * a late joiner synchronizes from summaries alone,
//   * when the presenter crashes, viewers' soft state expires.
#include <cstdio>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "sstp/session.hpp"

using namespace sst;
using namespace sst::sstp;

namespace {

std::vector<std::uint8_t> stroke_bytes(sim::Rng& rng) {
  // A stroke: a polyline of a few dozen points.
  return std::vector<std::uint8_t>(40 + rng.uniform_int(160),
                                   static_cast<std::uint8_t>(
                                       rng.uniform_int(256)));
}

}  // namespace

int main() {
  sim::Simulator sim;

  int current_page = 0;

  SessionConfig cfg;
  cfg.num_receivers = 2;  // a viewer present from the start + a late joiner
  cfg.loss_rate = 0.15;
  cfg.sender.mu_data = sim::kbps(32);
  cfg.mu_fb = sim::kbps(8);
  cfg.sender.algo = hash::DigestAlgo::kMd5;  // as the paper specifies
  cfg.sender.min_summary_interval = 0.5;
  // Two app classes: strokes on the page being presented beat backfill.
  cfg.sender.class_weights = {0.85, 0.15};
  cfg.sender.classify = [&current_page](const Path& path, const MetaTags&) {
    const std::string prefix = "page" + std::to_string(current_page);
    return (path.depth() > 0 && path.component(0) == prefix) ? 0u : 1u;
  };
  cfg.receiver.session_ttl = 25.0;  // presenter silence expires the board
  Session session(sim, cfg);

  session.receiver(1).on_session_expired([&] {
    std::printf("t=%6.1fs  [viewer 2] presenter went silent — whiteboard "
                "expired (soft state cleanup, no teardown)\n",
                sim.now());
  });

  // The presenter draws ~2 strokes/s on the current page and flips pages
  // every 60 s; strokes on old pages occasionally get annotated (backfill).
  sim::Rng rng(31337);
  int stroke_counter = 0;
  sim::PeriodicTimer pen(sim);
  pen.start(0.5, [&] {
    const Path p = Path::parse("/page" + std::to_string(current_page) +
                               "/stroke" + std::to_string(stroke_counter++));
    session.sender().publish(p, stroke_bytes(rng));
    if (rng.bernoulli(0.1) && current_page > 0) {
      // Annotate an old page (low-priority class).
      const Path old = Path::parse(
          "/page" + std::to_string(rng.uniform_int(current_page)) +
          "/stroke" + std::to_string(rng.uniform_int(stroke_counter)));
      if (session.sender().tree().find(old) != nullptr) {
        session.sender().publish(old, stroke_bytes(rng));
      }
    }
  });
  sim::PeriodicTimer page_flip(sim);
  page_flip.start(60.0, [&] {
    ++current_page;
    std::printf("t=%6.1fs  [presenter] flips to page %d\n", sim.now(),
                current_page);
  });

  sim::PeriodicTimer reporter(sim);
  reporter.start(60.0, [&] {
    std::printf("t=%6.1fs  consistency=%.3f  strokes=%d  viewer1=%zu "
                "viewer2=%zu leaves\n",
                sim.now(), session.instantaneous_consistency(),
                stroke_counter, session.receiver(0).tree().leaf_count(),
                session.receiver(1).tree().leaf_count());
  });

  std::printf("--- presenting (32 kbps, 15%% loss, 2 viewers)\n");
  sim.run_until(180.0);

  // The presenter crashes: drawing AND summaries stop. Soft state handles
  // the cleanup; viewers' boards expire session_ttl later.
  std::printf("t=%6.1fs  [presenter] CRASH — announcements stop\n",
              sim.now());
  pen.stop();
  page_flip.stop();
  session.sender().pause();
  sim.run_until(240.0);

  std::printf("\nfinal: viewer boards %zu / %zu leaves (0 = expired after "
              "the crash)\n",
              session.receiver(0).tree().leaf_count(),
              session.receiver(1).tree().leaf_count());
  const auto& ss = session.sender().stats();
  std::printf("wire: %llu data, %llu summaries, %llu signature replies, "
              "%llu repairs\n",
              static_cast<unsigned long long>(ss.data_tx),
              static_cast<unsigned long long>(ss.summary_tx),
              static_cast<unsigned long long>(ss.sig_tx),
              static_cast<unsigned long long>(ss.repair_tx));
  return 0;
}
