// quickstart — the 60-second tour of the soft state library.
//
// Publishes a handful of {key, value} documents over a 20%-lossy channel
// with the SSTP protocol, watches the subscriber converge purely through
// announce/listen + digest-driven repair, then updates and deletes records
// and watches consistency recover. No acknowledgements, no connection state,
// no teardown messages — just soft state.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sstp/session.hpp"

using namespace sst;
using namespace sst::sstp;

namespace {

std::vector<std::uint8_t> text(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

void report(const char* when, sim::Simulator& sim, Session& session) {
  std::printf("t=%6.1fs  %-28s consistency=%.2f  sender leaves=%zu  "
              "receiver leaves=%zu\n",
              sim.now(), when, session.instantaneous_consistency(),
              session.sender().tree().leaf_count(),
              session.receiver().tree().leaf_count());
}

}  // namespace

int main() {
  sim::Simulator sim;

  // A 64 kbps session with 20% packet loss in both directions.
  SessionConfig cfg;
  cfg.sender.mu_data = sim::kbps(48);
  cfg.mu_fb = sim::kbps(16);
  cfg.loss_rate = 0.20;
  cfg.sender.min_summary_interval = 0.5;  // root summary twice a second
  cfg.receiver.session_ttl = 30.0;        // receiver state is SOFT: it
                                          // expires if announcements stop
  Session session(sim, cfg);

  session.receiver().on_complete([&](const Path& path, const Adu& adu) {
    std::printf("t=%6.1fs  received %-20s (%zu bytes, version %llu)\n",
                sim.now(), path.str().c_str(), adu.data.size(),
                static_cast<unsigned long long>(adu.version));
  });
  session.receiver().on_removed([&](const Path& path) {
    std::printf("t=%6.1fs  pruned   %s (sender dropped it)\n", sim.now(),
                path.str().c_str());
  });

  std::printf("--- publishing three documents over a 20%%-lossy channel\n");
  session.sender().publish(Path::parse("/motd"),
                           text("welcome to the soft state session"));
  session.sender().publish(Path::parse("/docs/readme"),
                           text(std::string(2500, 'r')));
  session.sender().publish(Path::parse("/docs/changelog"),
                           text(std::string(800, 'c')));
  report("published", sim, session);

  sim.run_until(30.0);
  report("after convergence", sim, session);

  std::printf("--- updating /motd and deleting /docs/changelog\n");
  session.sender().publish(Path::parse("/motd"), text("updated greeting"));
  session.sender().remove(Path::parse("/docs/changelog"));
  report("just after the change", sim, session);

  sim.run_until(90.0);
  report("after repair converges", sim, session);

  const auto& ss = session.sender().stats();
  const auto& rs = session.receiver().stats();
  std::printf(
      "\nwire totals: %llu data pkts (%llu repairs), %llu summaries, "
      "%llu signature replies | receiver sent %llu queries, %llu NACKs\n",
      static_cast<unsigned long long>(ss.data_tx),
      static_cast<unsigned long long>(ss.repair_tx),
      static_cast<unsigned long long>(ss.summary_tx),
      static_cast<unsigned long long>(ss.sig_tx),
      static_cast<unsigned long long>(rs.queries_tx),
      static_cast<unsigned long long>(rs.nacks_tx));
  std::printf("average consistency over the run: %.3f\n",
              session.average_consistency());
  std::printf("\nquickstart done — see examples/session_directory.cpp, "
              "examples/routing_updates.cpp, examples/stock_ticker.cpp, and "
              "examples/shared_whiteboard.cpp for realistic workloads.\n");
  return 0;
}
