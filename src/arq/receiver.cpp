#include "arq/receiver.hpp"

namespace sst::arq {

Receiver::Receiver(sim::Simulator& sim, core::ReceiverTable& table,
                   std::function<void(const ArqMsg&, sim::Bytes)> send)
    : sim_(&sim), table_(&table), send_(std::move(send)) {}

void Receiver::handle(const ArqMsg& msg) {
  switch (msg.type) {
    case MsgType::kSyn: {
      if (msg.epoch < epoch_) {
        // A reordered or duplicated SYN from a dead incarnation. Adopting
        // it would regress the epoch and wipe a healthy table; answering it
        // would confuse the live sender. Epochs only move forward.
        ++stats_.stale_syns;
        break;
      }
      if (msg.epoch > epoch_) {
        // New incarnation: hard state cannot trust the old replica.
        if (epoch_ != 0) flush_table();
        epoch_ = msg.epoch;
        next_expected_ = msg.seq;
        reorder_.clear();
      }
      ArqMsg reply;
      reply.type = MsgType::kSynAck;
      reply.epoch = epoch_;
      reply.cum_ack = next_expected_;
      reply.size = kControlSize;
      send_(reply, reply.size);
      break;
    }
    case MsgType::kData: {
      if (msg.epoch != epoch_) return;  // stale incarnation
      ++stats_.data_rx;
      if (msg.seq < next_expected_) {
        ++stats_.duplicates;
      } else if (msg.seq == next_expected_) {
        apply(msg.op);
        ++next_expected_;
        // Drain any buffered successors.
        auto it = reorder_.begin();
        while (it != reorder_.end() && it->first == next_expected_) {
          apply(it->second);
          ++next_expected_;
          it = reorder_.erase(it);
        }
      } else {
        ++stats_.out_of_order;
        reorder_.emplace(msg.seq, msg.op);
      }
      send_ack();
      break;
    }
    default:
      break;
  }
}

void Receiver::apply(const Op& op) {
  ++stats_.ops_applied;
  switch (op.kind) {
    case core::ChangeKind::kInsert:
    case core::ChangeKind::kUpdate:
      table_->refresh(op.key, op.version);
      break;
    case core::ChangeKind::kRemove:
      table_->remove(op.key);
      break;
  }
}

void Receiver::send_ack() {
  ++stats_.acks_tx;
  ArqMsg ack;
  ack.type = MsgType::kAck;
  ack.epoch = epoch_;
  ack.cum_ack = next_expected_;
  ack.size = kControlSize;
  send_(ack, ack.size);
}

void Receiver::flush_table() {
  ++stats_.flushes;
  table_->clear();
}

}  // namespace sst::arq
