// receiver.hpp — hard-state replication receiver.
//
// Accepts the connection, reorders segments, applies table operations
// in sequence order to a ReceiverTable, and acknowledges cumulatively.
// On a new connection epoch it FLUSHES its table: state from a broken
// incarnation cannot be trusted without end-to-end resync (this is the
// hard-state failure semantics the paper contrasts with soft state's
// "error recovery built into the design").
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "arq/messages.hpp"
#include "core/table.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace sst::arq {

/// Counters the receiver accumulates.
struct ArqReceiverStats {
  std::uint64_t data_rx = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t out_of_order = 0;
  std::uint64_t acks_tx = 0;
  std::uint64_t ops_applied = 0;
  std::uint64_t flushes = 0;      // table wipes on epoch change
  std::uint64_t stale_syns = 0;   // old-incarnation SYNs ignored
};

/// Hard-state replication receiver.
class Receiver {
 public:
  /// `send` pushes a segment (SYN-ACK / ACK) onto the reverse path.
  Receiver(sim::Simulator& sim, core::ReceiverTable& table,
           std::function<void(const ArqMsg&, sim::Bytes)> send);

  Receiver(const Receiver&) = delete;
  Receiver& operator=(const Receiver&) = delete;

  /// Feeds a packet arriving on the forward path.
  void handle(const ArqMsg& msg);

  [[nodiscard]] const ArqReceiverStats& stats() const { return stats_; }
  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }
  [[nodiscard]] std::uint64_t next_expected() const { return next_expected_; }

 private:
  void apply(const Op& op);
  void send_ack();
  void flush_table();

  sim::Simulator* sim_;
  core::ReceiverTable* table_;
  std::function<void(const ArqMsg&, sim::Bytes)> send_;

  std::uint32_t epoch_ = 0;  // 0 = no connection yet
  std::uint64_t next_expected_ = 0;
  std::map<std::uint64_t, Op> reorder_;  // buffered out-of-order segments

  ArqReceiverStats stats_;
};

}  // namespace sst::arq
