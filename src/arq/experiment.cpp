#include "arq/experiment.hpp"

#include <memory>

#include "core/monitor.hpp"
#include "core/table.hpp"
#include "net/channel.hpp"
#include "net/delay.hpp"
#include "net/link.hpp"
#include "net/loss.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace sst::arq {

namespace {

std::unique_ptr<net::LossModel> make_loss(
    double rate, const std::vector<std::pair<double, double>>& outages,
    sim::Rng rng) {
  std::unique_ptr<net::LossModel> base;
  if (rate <= 0.0) {
    base = std::make_unique<net::NoLoss>();
  } else {
    base = std::make_unique<net::BernoulliLoss>(rate, rng);
  }
  if (!outages.empty()) {
    return std::make_unique<net::OutageLoss>(std::move(base), outages);
  }
  return base;
}

}  // namespace

HardStateResult run_hard_state(const HardStateConfig& cfg) {
  sim::Simulator sim;
  const sim::Rng root(cfg.seed);

  core::PublisherTable pub;
  core::ConsistencyMonitor monitor(sim, pub);
  core::Workload workload(sim, pub, cfg.workload, root.fork("workload"));

  core::ReceiverTable recv_table(sim, /*ttl=*/0.0);  // hard state: no expiry
  monitor.attach(recv_table);

  // Forward path: sender -> rate-limited link -> lossy channel -> receiver.
  // Reverse path symmetric for ACKs.
  net::Channel<ArqMsg> fwd_channel(sim);
  net::Channel<ArqMsg> rev_channel(sim);

  Receiver* receiver_ptr = nullptr;
  fwd_channel.add_receiver(
      make_loss(cfg.loss_rate, cfg.outages, root.fork("loss")),
      std::make_unique<net::FixedDelay>(cfg.delay),
      [&receiver_ptr](const ArqMsg& msg) {
        if (receiver_ptr != nullptr) receiver_ptr->handle(msg);
      });

  Sender* sender_ptr = nullptr;
  const double ack_loss =
      cfg.ack_loss_rate < 0 ? cfg.loss_rate : cfg.ack_loss_rate;
  rev_channel.add_receiver(
      make_loss(ack_loss, cfg.outages, root.fork("ack-loss")),
      std::make_unique<net::FixedDelay>(cfg.delay),
      [&sender_ptr](const ArqMsg& msg) {
        if (sender_ptr != nullptr) sender_ptr->handle(msg);
      });

  // Optional hostile stages between each rate-limited link and its lossy
  // channel; only built when configured, so FIFO runs are unchanged.
  std::unique_ptr<net::HostileChannel<ArqMsg>> fwd_hostile;
  if (cfg.fwd_hostile.active()) {
    fwd_hostile = std::make_unique<net::HostileChannel<ArqMsg>>(
        sim, cfg.fwd_hostile, root.fork("hostile-fwd"),
        [&fwd_channel](const ArqMsg& msg, sim::Bytes size) {
          fwd_channel.send(msg, size);
        });
  }
  std::unique_ptr<net::HostileChannel<ArqMsg>> ack_hostile;
  if (cfg.ack_hostile.active()) {
    ack_hostile = std::make_unique<net::HostileChannel<ArqMsg>>(
        sim, cfg.ack_hostile, root.fork("hostile-ack"),
        [&rev_channel](const ArqMsg& msg, sim::Bytes size) {
          rev_channel.send(msg, size);
        });
  }

  net::Link<ArqMsg> fwd_link(
      sim, cfg.mu_data,
      [&fwd_channel, &fwd_hostile](const ArqMsg& msg, sim::Bytes size) {
        if (fwd_hostile != nullptr) {
          fwd_hostile->send(msg, size);
        } else {
          fwd_channel.send(msg, size);
        }
      },
      /*queue_limit=*/16);
  net::Link<ArqMsg> rev_link(
      sim, cfg.mu_ack,
      [&rev_channel, &ack_hostile](const ArqMsg& msg, sim::Bytes size) {
        if (ack_hostile != nullptr) {
          ack_hostile->send(msg, size);
        } else {
          rev_channel.send(msg, size);
        }
      },
      /*queue_limit=*/16);

  Sender sender(sim, pub, cfg.sender,
                [&fwd_link](const ArqMsg& msg, sim::Bytes size) {
                  fwd_link.send(msg, size);
                });
  Receiver receiver(sim, recv_table,
                    [&rev_link](const ArqMsg& msg, sim::Bytes size) {
                      rev_link.send(msg, size);
                    });
  sender_ptr = &sender;
  receiver_ptr = &receiver;

  sender.connect();
  workload.start();

  sim.run_until(cfg.warmup);
  monitor.reset_stats();
  const ArqSenderStats warm_s = sender.stats();
  const ArqReceiverStats warm_r = receiver.stats();
  const double warm_fwd_bytes = fwd_channel.stats().bytes_sent;
  const double warm_rev_bytes = rev_channel.stats().bytes_sent;

  HardStateResult result;
  std::unique_ptr<sim::PeriodicTimer> sampler;
  double last_integral = 0.0;
  if (cfg.sample_interval > 0) {
    sampler = std::make_unique<sim::PeriodicTimer>(sim);
    sampler->start(cfg.sample_interval, [&] {
      const double integral = monitor.consistency_integral();
      result.timeline.push_back(core::TimelinePoint{
          sim.now(), (integral - last_integral) / cfg.sample_interval});
      last_integral = integral;
    });
  }
  sim.run_until(cfg.warmup + cfg.duration);
  if (sampler) sampler->stop();

  result.avg_consistency = monitor.average_consistency();
  result.mean_latency = monitor.latency().mean();
  result.p95_latency = monitor.latency().quantile(0.95);

  const ArqSenderStats& s = sender.stats();
  const ArqReceiverStats& r = receiver.stats();
  result.data_tx = s.data_tx - warm_s.data_tx;
  result.retransmits = s.retransmits - warm_s.retransmits;
  result.acks = r.acks_tx - warm_r.acks_tx;
  result.connection_deaths = s.connection_deaths - warm_s.connection_deaths;
  result.reconnects =
      s.connects > warm_s.connects ? s.connects - warm_s.connects : 0;
  result.snapshot_ops = s.snapshot_ops - warm_s.snapshot_ops;
  result.table_flushes = r.flushes - warm_r.flushes;
  result.stale_syns = r.stale_syns - warm_r.stale_syns;
  result.offered_data_kbps =
      (fwd_channel.stats().bytes_sent - warm_fwd_bytes) * 8.0 /
      cfg.duration / 1000.0;
  result.offered_ack_kbps =
      (rev_channel.stats().bytes_sent - warm_rev_bytes) * 8.0 /
      cfg.duration / 1000.0;
  return result;
}

}  // namespace sst::arq
