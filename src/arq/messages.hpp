// messages.hpp — wire messages of the hard-state (ARQ) baseline transport.
//
// The paper's Section 1 contrasts soft state against hard-state designs
// ("state is established just once with a reliable delivery protocol like
// TCP ... when failure occurs, the system would have to simultaneously
// detect the failure, explicitly tear down the old state, and re-establish
// the state"). To make that comparison quantitative, src/arq implements a
// small but real connection-oriented reliable transport replicating the same
// publisher table: SYN/SYN-ACK setup with connection epochs, sliding-window
// data transfer of table operations, cumulative ACKs, RTO-driven
// retransmission, failure detection by consecutive RTOs, and full-snapshot
// resynchronization on reconnect (BGP-session-reset style).
#pragma once

#include <cstdint>

#include "core/record.hpp"
#include "sim/units.hpp"

namespace sst::arq {

/// A replicated table operation.
struct Op {
  core::ChangeKind kind = core::ChangeKind::kInsert;
  core::Key key = 0;
  core::Version version = 0;
  sim::Bytes size = 1000;  // wire size of the record payload
};

enum class MsgType : std::uint8_t {
  kSyn,
  kSynAck,
  kData,
  kAck,
  kFin,
};

/// One ARQ segment. A data segment carries exactly one table operation
/// (record-sized); control segments are small.
struct ArqMsg {
  MsgType type = MsgType::kData;
  std::uint32_t epoch = 0;   // connection incarnation
  std::uint64_t seq = 0;     // op sequence number (kData), ISN (kSyn)
  std::uint64_t cum_ack = 0; // next expected seq (kAck / kSynAck)
  Op op;                     // kData payload
  sim::Bytes size = 1000;    // wire size
  bool is_retransmit = false;
  sim::SimTime sent_at = 0;  // for RTT sampling (Karn: skip retransmits)
};

/// Wire size of control segments (SYN/ACK/FIN).
inline constexpr sim::Bytes kControlSize = 40;

}  // namespace sst::arq
