// sender.hpp — hard-state replication sender (connection-oriented ARQ).
//
// Replicates a PublisherTable to one receiver over a reliable connection:
//   * three-way-ish setup (SYN / SYN-ACK) with exponential backoff,
//   * sliding window of unacknowledged operations, cumulative ACKs,
//   * Jacobson/Karn RTO estimation, oldest-segment retransmission,
//   * failure detection after `max_rtos` consecutive timeouts, then
//     teardown and periodic reconnection attempts,
//   * on reconnection (new epoch): FULL table snapshot resync — the receiver
//     cannot trust state from a broken incarnation, exactly the hard-state
//     cost the paper describes qualitatively in Section 1.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "arq/messages.hpp"
#include "core/table.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "sim/units.hpp"

namespace sst::arq {

/// Sender configuration.
struct SenderConfig {
  /// Hard cap on unacked segments (the congestion window does the real
  /// pacing; this bounds sender memory).
  std::size_t window = 32;
  sim::Duration initial_rto = 2.0;  // before the first RTT sample
  sim::Duration min_rto = 0.5;
  sim::Duration max_rto = 30.0;
  int max_rtos = 5;                 // consecutive RTOs = connection dead
  sim::Duration reconnect_interval = 2.0;  // probe cadence while down
  sim::Bytes op_overhead = 40;      // header bytes added to each record
};

/// Connection lifecycle states.
enum class ConnState : std::uint8_t {
  kClosed,
  kSynSent,
  kEstablished,
};

/// Counters the sender accumulates.
struct ArqSenderStats {
  std::uint64_t data_tx = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t syn_tx = 0;
  std::uint64_t acks_rx = 0;
  std::uint64_t rtos = 0;
  std::uint64_t connection_deaths = 0;
  std::uint64_t connects = 0;       // successful (re)establishments
  std::uint64_t snapshot_ops = 0;   // ops re-sent due to resyncs
  double bytes_tx = 0;
};

/// Hard-state replication sender.
class Sender {
 public:
  /// `transmit` pushes a segment (with its wire size) toward the receiver.
  Sender(sim::Simulator& sim, core::PublisherTable& table,
         SenderConfig config,
         std::function<void(const ArqMsg&, sim::Bytes)> transmit);

  Sender(const Sender&) = delete;
  Sender& operator=(const Sender&) = delete;

  /// Initiates the connection (call once; reconnection is automatic).
  void connect();

  /// Feeds a packet arriving on the reverse path (SYN-ACK / ACK).
  void handle(const ArqMsg& msg);

  [[nodiscard]] ConnState state() const { return state_; }
  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }
  [[nodiscard]] const ArqSenderStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t backlog() const { return pending_.size(); }
  [[nodiscard]] sim::Duration current_rto() const { return rto_; }
  [[nodiscard]] double cwnd() const { return cwnd_; }
  [[nodiscard]] std::size_t inflight() const { return inflight_.size(); }

 private:
  struct InFlight {
    std::uint64_t seq;
    Op op;
    sim::SimTime first_sent;
    sim::SimTime last_sent;
    bool retransmitted = false;
    /// Marked lost by an RTO; re-sent as the congestion window reopens
    /// (go-back-N paced by cwnd — there is no SACK).
    bool needs_resend = false;
  };

  void on_table_change(const core::Record& rec, core::ChangeKind kind);
  void send_syn();
  void establish(std::uint64_t);
  void connection_dead();
  void enqueue_snapshot();
  void try_send();
  void send_op(const Op& op, std::uint64_t seq, bool retransmit);
  void arm_rto();
  void on_rto();
  void process_ack(std::uint64_t cum_ack);
  void update_rtt(sim::Duration sample);

  sim::Simulator* sim_;
  core::PublisherTable* table_;
  SenderConfig config_;
  std::function<void(const ArqMsg&, sim::Bytes)> transmit_;

  ConnState state_ = ConnState::kClosed;
  std::uint32_t epoch_ = 0;
  std::uint64_t next_seq_ = 0;     // next new op sequence
  std::deque<Op> pending_;         // ops not yet transmitted
  std::deque<InFlight> inflight_;  // transmitted, unacked (ordered by seq)

  // AIMD congestion control (Reno-flavoured): slow start to ssthresh, then
  // additive increase; fast retransmit halves, RTO collapses to one segment.
  // Without it, a fixed window on a kbps link self-destructs into
  // queueing-delay-driven spurious retransmission storms.
  double cwnd_ = 2.0;
  double ssthresh_ = 64.0;
  [[nodiscard]] std::size_t outstanding() const;

  sim::Timer rto_timer_;
  sim::Timer reconnect_timer_;
  sim::Duration rto_;
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
  bool have_rtt_ = false;
  int consecutive_rtos_ = 0;
  int dup_acks_ = 0;  // duplicate cumulative ACKs (fast retransmit at 3)
  /// NewReno-style recovery point: after a fast retransmit or an RTO, no
  /// further fast retransmit fires until the cumulative ACK passes the
  /// highest sequence outstanding at that moment — otherwise the flood of
  /// duplicate ACKs a loss episode generates would trigger one retransmit
  /// per three of them.
  std::uint64_t recovery_point_ = 0;
  int syn_tries_ = 0;

  ArqSenderStats stats_;
};

}  // namespace sst::arq
