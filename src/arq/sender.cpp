#include "arq/sender.hpp"

#include <algorithm>

namespace sst::arq {

Sender::Sender(sim::Simulator& sim, core::PublisherTable& table,
               SenderConfig config,
               std::function<void(const ArqMsg&, sim::Bytes)> transmit)
    : sim_(&sim),
      table_(&table),
      config_(config),
      transmit_(std::move(transmit)),
      rto_timer_(sim),
      reconnect_timer_(sim),
      rto_(config.initial_rto) {
  table_->subscribe([this](const core::Record& rec, core::ChangeKind kind) {
    on_table_change(rec, kind);
  });
}

void Sender::on_table_change(const core::Record& rec,
                             core::ChangeKind kind) {
  Op op;
  op.kind = kind;
  op.key = rec.key;
  op.version = rec.version;
  // A remove carries no record payload — only the header goes on the wire.
  op.size = kind == core::ChangeKind::kRemove ? 0 : rec.size;
  pending_.push_back(op);
  try_send();
}

void Sender::connect() {
  if (state_ != ConnState::kClosed) return;
  ++epoch_;
  state_ = ConnState::kSynSent;
  syn_tries_ = 0;
  send_syn();
}

void Sender::send_syn() {
  ++syn_tries_;
  ++stats_.syn_tx;
  ArqMsg msg;
  msg.type = MsgType::kSyn;
  msg.epoch = epoch_;
  msg.seq = next_seq_;
  msg.size = kControlSize;
  msg.sent_at = sim_->now();
  stats_.bytes_tx += msg.size;
  transmit_(msg, msg.size);
  // SYN retransmission with exponential backoff, forever (the peer may be
  // unreachable; hard state keeps probing).
  const sim::Duration backoff =
      std::min(config_.initial_rto * (1 << std::min(syn_tries_, 6)),
               config_.max_rto);
  rto_timer_.arm(backoff, [this] {
    if (state_ == ConnState::kSynSent) send_syn();
  });
}

void Sender::establish(std::uint64_t) {
  if (state_ != ConnState::kSynSent) return;
  state_ = ConnState::kEstablished;
  rto_timer_.cancel();
  consecutive_rtos_ = 0;
  dup_acks_ = 0;
  rto_ = config_.initial_rto;
  have_rtt_ = false;
  cwnd_ = 2.0;
  ssthresh_ = static_cast<double>(config_.window);
  ++stats_.connects;
  if (stats_.connects > 1) {
    // Reconnection after a failure: the receiver flushed its table for the
    // new epoch, so replay a full snapshot before any queued deltas.
    enqueue_snapshot();
  }
  try_send();
}

void Sender::enqueue_snapshot() {
  // Snapshot replaces any queued deltas (they are subsumed by current state).
  pending_.clear();
  inflight_.clear();
  std::size_t count = 0;
  table_->for_each([this, &count](const core::Record& rec) {
    Op op;
    op.kind = core::ChangeKind::kInsert;
    op.key = rec.key;
    op.version = rec.version;
    op.size = rec.size;
    pending_.push_back(op);
    ++count;
  });
  stats_.snapshot_ops += count;
}

void Sender::connection_dead() {
  ++stats_.connection_deaths;
  state_ = ConnState::kClosed;
  rto_timer_.cancel();
  inflight_.clear();  // will be resynced via snapshot on reconnect
  reconnect_timer_.arm(config_.reconnect_interval, [this] { connect(); });
}

std::size_t Sender::outstanding() const {
  std::size_t n = 0;
  for (const InFlight& f : inflight_) n += f.needs_resend ? 0 : 1;
  return n;
}

void Sender::try_send() {
  if (state_ != ConnState::kEstablished) return;
  const auto allowance = static_cast<std::size_t>(
      std::min(cwnd_, static_cast<double>(config_.window)));

  // First, re-send RTO-marked segments in order (go-back-N paced by cwnd).
  for (InFlight& f : inflight_) {
    if (outstanding() >= allowance) break;
    if (!f.needs_resend) continue;
    f.needs_resend = false;
    f.retransmitted = true;
    f.last_sent = sim_->now();
    send_op(f.op, f.seq, /*retransmit=*/true);
  }

  // Then admit new operations.
  while (!pending_.empty() && inflight_.size() < allowance &&
         outstanding() < allowance) {
    const Op op = pending_.front();
    pending_.pop_front();
    const std::uint64_t seq = next_seq_++;
    InFlight f;
    f.seq = seq;
    f.op = op;
    f.first_sent = sim_->now();
    f.last_sent = sim_->now();
    inflight_.push_back(f);
    send_op(op, seq, /*retransmit=*/false);
  }
  if (!inflight_.empty() && !rto_timer_.pending()) arm_rto();
}

void Sender::send_op(const Op& op, std::uint64_t seq, bool retransmit) {
  ArqMsg msg;
  msg.type = MsgType::kData;
  msg.epoch = epoch_;
  msg.seq = seq;
  msg.op = op;
  msg.size = op.size + config_.op_overhead;
  msg.is_retransmit = retransmit;
  msg.sent_at = sim_->now();
  ++stats_.data_tx;
  if (retransmit) ++stats_.retransmits;
  stats_.bytes_tx += msg.size;
  transmit_(msg, msg.size);
}

void Sender::arm_rto() {
  rto_timer_.arm(rto_, [this] { on_rto(); });
}

void Sender::on_rto() {
  if (state_ != ConnState::kEstablished || inflight_.empty()) return;
  ++stats_.rtos;
  ++consecutive_rtos_;
  if (consecutive_rtos_ >= config_.max_rtos) {
    connection_dead();
    return;
  }
  // Timeout: collapse the congestion window, mark the whole flight for
  // go-back-N re-send (no SACK), and retransmit the oldest immediately; the
  // rest follow as the window reopens. Timer backs off (Karn).
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = 1.0;
  for (InFlight& f : inflight_) f.needs_resend = true;
  InFlight& oldest = inflight_.front();
  oldest.needs_resend = false;
  oldest.retransmitted = true;
  oldest.last_sent = sim_->now();
  send_op(oldest.op, oldest.seq, /*retransmit=*/true);
  recovery_point_ = next_seq_;
  rto_ = std::min(rto_ * 2.0, config_.max_rto);
  arm_rto();
}

void Sender::handle(const ArqMsg& msg) {
  if (msg.epoch != epoch_) return;  // stale incarnation
  switch (msg.type) {
    case MsgType::kSynAck:
      establish(msg.cum_ack);
      break;
    case MsgType::kAck:
      ++stats_.acks_rx;
      process_ack(msg.cum_ack);
      break;
    default:
      break;  // data/fin on the reverse path: ignore
  }
}

void Sender::process_ack(std::uint64_t cum_ack) {
  if (state_ != ConnState::kEstablished) return;
  bool advanced = false;
  while (!inflight_.empty() && inflight_.front().seq < cum_ack) {
    const InFlight& f = inflight_.front();
    if (!f.retransmitted) {
      update_rtt(sim_->now() - f.last_sent);  // Karn: clean samples only
    }
    inflight_.pop_front();
    advanced = true;
  }
  if (advanced) {
    consecutive_rtos_ = 0;
    dup_acks_ = 0;
    // AIMD growth: exponential below ssthresh, linear above.
    if (cwnd_ < ssthresh_) {
      cwnd_ += 1.0;
    } else {
      cwnd_ += 1.0 / cwnd_;
    }
    cwnd_ = std::min(cwnd_, static_cast<double>(config_.window));
    // Collapse RTO backoff now that the window moves — but conservatively:
    // Karn's rule keeps the estimator from seeing retransmission-era RTTs,
    // so the raw estimate can lag queueing badly. A one-second floor keeps a
    // single spurious timeout from cascading while bounding the cost of a
    // real one.
    if (have_rtt_) {
      rto_ = std::clamp(std::max(srtt_ + 4.0 * rttvar_, 1.0),
                        config_.min_rto, config_.max_rto);
    }
    rto_timer_.cancel();
    if (!inflight_.empty()) arm_rto();
  } else if (!inflight_.empty() && cum_ack == inflight_.front().seq) {
    // Duplicate cumulative ACK: later segments are landing past a hole.
    // Three of them trigger fast retransmit of the oldest segment without
    // waiting for the RTO — once per loss episode (recovery point).
    if (++dup_acks_ >= 3 && cum_ack >= recovery_point_) {
      dup_acks_ = 0;
      recovery_point_ = next_seq_;
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
      cwnd_ = ssthresh_;  // multiplicative decrease
      InFlight& oldest = inflight_.front();
      oldest.retransmitted = true;
      oldest.last_sent = sim_->now();
      send_op(oldest.op, oldest.seq, /*retransmit=*/true);
    }
  }
  try_send();
}

void Sender::update_rtt(sim::Duration sample) {
  if (!have_rtt_) {
    srtt_ = sample;
    rttvar_ = sample / 2.0;
    have_rtt_ = true;
  } else {
    rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - sample);
    srtt_ = 0.875 * srtt_ + 0.125 * sample;
  }
  rto_ = std::clamp(srtt_ + 4.0 * rttvar_, config_.min_rto, config_.max_rto);
}

}  // namespace sst::arq
