// experiment.hpp — harness for hard-state-vs-soft-state comparisons.
//
// Runs the ARQ replication protocol over the same workloads, channels, and
// consistency metric as core::run_experiment, so the two designs' numbers
// are directly comparable — the quantitative version of the paper's
// Section 1 argument.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "arq/receiver.hpp"
#include "arq/sender.hpp"
#include "core/experiment.hpp"
#include "core/workload.hpp"
#include "net/hostile.hpp"
#include "sim/units.hpp"

namespace sst::arq {

/// Hard-state experiment specification. Mirrors core::ExperimentConfig where
/// the concepts coincide.
struct HardStateConfig {
  core::WorkloadParams workload;
  SenderConfig sender;

  sim::Rate mu_data = sim::kbps(45);  // forward link capacity
  sim::Rate mu_ack = sim::kbps(15);   // reverse link capacity
  double loss_rate = 0.1;
  double ack_loss_rate = -1.0;  // <0 copies loss_rate
  sim::Duration delay = 0.01;
  std::vector<std::pair<double, double>> outages;  // both directions

  /// Hostile-channel behavior on the forward (data) and reverse (ACK)
  /// paths. Inactive configs add no pipeline stages (FIFO unchanged).
  net::HostileConfig fwd_hostile;
  net::HostileConfig ack_hostile;

  sim::Duration duration = 2000.0;
  sim::Duration warmup = 200.0;
  std::uint64_t seed = 1;
  sim::Duration sample_interval = 0.0;  // >0 records a c(t) timeline
};

/// Hard-state experiment results (subset of the soft state result, plus
/// connection-lifecycle counters).
struct HardStateResult {
  double avg_consistency = 0.0;
  double mean_latency = 0.0;
  double p95_latency = 0.0;

  std::uint64_t data_tx = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t acks = 0;
  std::uint64_t connection_deaths = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t snapshot_ops = 0;
  std::uint64_t table_flushes = 0;
  std::uint64_t stale_syns = 0;  // old-incarnation SYNs the receiver ignored
  double offered_data_kbps = 0.0;
  double offered_ack_kbps = 0.0;

  std::vector<core::TimelinePoint> timeline;
};

/// Runs a hard-state replication experiment. Deterministic per seed.
HardStateResult run_hard_state(const HardStateConfig& config);

}  // namespace sst::arq
