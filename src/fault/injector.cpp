#include "fault/injector.hpp"

#include <algorithm>

namespace sst::fault {

Hooks hooks_for(core::Experiment& exp) {
  Hooks h;
  h.crash = [&exp] { exp.crash_sender(); };
  h.restart = [&exp] { exp.restart_sender(); };
  h.set_partition = [&exp](std::size_t target, bool down) {
    if (target == kAllReceivers) {
      exp.set_partition_all(down);
    } else {
      exp.set_partition(target, down);
    }
  };
  h.set_extra_loss = [&exp](std::size_t target, double p) {
    if (target == kAllReceivers) {
      exp.set_extra_loss_all(p);
    } else {
      exp.set_extra_loss(target, p);
    }
  };
  h.set_bandwidth_factor = [&exp](double f) { exp.set_bandwidth_factor(f); };
  h.leave = [&exp](std::size_t target) { exp.detach_receiver(target); };
  h.join = [&exp] { return exp.add_receiver(); };
  h.consistency = [&exp] { return exp.instantaneous_consistency(); };
  h.traffic = [&exp] { return exp.repair_traffic(); };
  h.catch_up_latency = [&exp](std::size_t r) {
    return exp.monitor().catch_up_latency(r);
  };
  return h;
}

Hooks hooks_for(core::ShardedExperiment& exp) {
  Hooks h;
  h.crash = [&exp] { exp.crash_sender(); };
  h.restart = [&exp] { exp.restart_sender(); };
  h.set_partition = [&exp](std::size_t target, bool down) {
    if (target == kAllReceivers) {
      exp.set_partition_all(down);
    } else {
      exp.set_partition(target, down);
    }
  };
  h.set_extra_loss = [&exp](std::size_t target, double p) {
    if (target == kAllReceivers) {
      exp.set_extra_loss_all(p);
    } else {
      exp.set_extra_loss(target, p);
    }
  };
  h.set_bandwidth_factor = [&exp](double f) { exp.set_bandwidth_factor(f); };
  h.leave = [&exp](std::size_t target) { exp.detach_receiver(target); };
  h.join = [&exp] { return exp.add_receiver(); };
  h.consistency = [&exp] { return exp.instantaneous_consistency(); };
  h.traffic = [&exp] { return exp.repair_traffic(); };
  h.catch_up_latency = [&exp](std::size_t r) {
    return exp.catch_up_latency(r);
  };
  return h;
}

Hooks hooks_for(sstp::Session& session) {
  Hooks h;
  h.crash = [&session] { session.crash_sender(); };
  h.restart = [&session] { session.restart_sender(); };
  h.set_partition = [&session](std::size_t target, bool down) {
    if (target == kAllReceivers) {
      session.set_partition_all(down);
    } else {
      session.set_partition(target, down);
    }
  };
  h.set_extra_loss = [&session](std::size_t target, double p) {
    if (target == kAllReceivers) {
      session.set_extra_loss_all(p);
    } else {
      session.set_extra_loss(target, p);
    }
  };
  h.set_bandwidth_factor = [&session](double f) {
    session.set_bandwidth_factor(f);
  };
  h.leave = [&session](std::size_t target) {
    session.detach_receiver(target);
  };
  h.join = [&session] { return session.add_receiver(); };
  h.consistency = [&session] {
    return session.instantaneous_consistency();
  };
  h.traffic = [&session] { return session.repair_traffic(); };
  h.catch_up_latency = [&session](std::size_t r) {
    return session.catch_up_latency(r);
  };
  return h;
}

FaultInjector::FaultInjector(sim::Simulator& sim, FaultPlan plan, Hooks hooks,
                             InjectorConfig config)
    : sim_(&sim),
      plan_(std::move(plan)),
      hooks_(std::move(hooks)),
      config_(config),
      tracker_(config.threshold),
      sampler_(sim) {
  if (hooks_.traffic) tracker_.set_traffic_counter(hooks_.traffic);
  record_of_event_.assign(plan_.events().size(), 0);
}

void FaultInjector::observe_now() {
  tracker_.observe(sim_->now(), hooks_.consistency());
}

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  observe_now();
  const double now = sim_->now();
  for (std::size_t i = 0; i < plan_.events().size(); ++i) {
    const FaultEvent& e = plan_.events()[i];
    sim_->after(std::max(e.start - now, 0.0), [this, i] { on_start(i); });
    if (e.duration > 0) {
      sim_->after(std::max(e.start + e.duration - now, 0.0),
                  [this, i] { on_end(i); });
    }
  }
  if (config_.sample_interval > 0) {
    sampler_.start(config_.sample_interval, [this] { observe_now(); });
  }
}

void FaultInjector::apply_burst(std::size_t target) {
  // Overlapping bursts on one target: the strongest active one applies.
  double extra = 0.0;
  const auto [lo, hi] = active_bursts_.equal_range(target);
  for (auto it = lo; it != hi; ++it) extra = std::max(extra, it->second);
  hooks_.set_extra_loss(target, extra);
}

void FaultInjector::apply_bandwidth() {
  // Overlapping degradations: the most severe (smallest factor) applies.
  double factor = 1.0;
  for (const double f : active_bw_factors_) factor = std::min(factor, f);
  hooks_.set_bandwidth_factor(factor);
}

void FaultInjector::on_start(std::size_t event_index) {
  const FaultEvent& e = plan_.events()[event_index];
  observe_now();
  record_of_event_[event_index] = tracker_.inject(e.label(), sim_->now());

  switch (e.kind) {
    case FaultKind::kSenderCrash:
      if (++crash_depth_ == 1) hooks_.crash();
      break;
    case FaultKind::kPartition:
      if (++partition_depth_[e.target] == 1) {
        hooks_.set_partition(e.target, true);
      }
      break;
    case FaultKind::kReceiverLeave:
      hooks_.leave(e.target);
      break;
    case FaultKind::kReceiverJoin:
      joined_.push_back(hooks_.join());
      break;
    case FaultKind::kBurstLoss:
      active_bursts_.emplace(e.target, e.amount);
      apply_burst(e.target);
      break;
    case FaultKind::kBandwidth:
      active_bw_factors_.push_back(e.amount);
      apply_bandwidth();
      break;
  }

  // Instantaneous events have no ongoing condition: the fault clears the
  // moment it fires, and the tracker measures how long the consistency dip
  // it caused takes to heal.
  if (e.duration <= 0) {
    observe_now();
    tracker_.clear(record_of_event_[event_index], sim_->now());
  }
}

void FaultInjector::on_end(std::size_t event_index) {
  const FaultEvent& e = plan_.events()[event_index];

  switch (e.kind) {
    case FaultKind::kSenderCrash:
      if (--crash_depth_ == 0) hooks_.restart();
      break;
    case FaultKind::kPartition:
      if (--partition_depth_[e.target] == 0) {
        hooks_.set_partition(e.target, false);
      }
      break;
    case FaultKind::kBurstLoss: {
      const auto [lo, hi] = active_bursts_.equal_range(e.target);
      for (auto it = lo; it != hi; ++it) {
        if (it->second == e.amount) {
          active_bursts_.erase(it);
          break;
        }
      }
      apply_burst(e.target);
      break;
    }
    case FaultKind::kBandwidth: {
      const auto it = std::find(active_bw_factors_.begin(),
                                active_bw_factors_.end(), e.amount);
      if (it != active_bw_factors_.end()) active_bw_factors_.erase(it);
      apply_bandwidth();
      break;
    }
    case FaultKind::kReceiverLeave:
    case FaultKind::kReceiverJoin:
      break;  // instantaneous; cleared at start
  }

  observe_now();
  tracker_.clear(record_of_event_[event_index], sim_->now());
}

void FaultInjector::finalize() {
  sampler_.stop();
  observe_now();
  tracker_.finish(sim_->now());
}

std::vector<double> FaultInjector::join_catch_up_latencies() const {
  std::vector<double> out;
  out.reserve(joined_.size());
  for (const std::size_t r : joined_) {
    out.push_back(hooks_.catch_up_latency ? hooks_.catch_up_latency(r)
                                          : -1.0);
  }
  return out;
}

std::vector<double> fault_barrier_instants(const core::ExperimentConfig& cfg,
                                           const FaultPlan& plan,
                                           const InjectorConfig& injector) {
  // Mirror arm()'s arithmetic digit for digit. arm() runs at the warm-up
  // cutoff (now == cfg.warmup) and schedules through Simulator::after(),
  // which clamps negative delays to zero — so an event's hook fires at
  //     warmup + max(start - warmup, 0)
  // and, for ongoing faults, its end hook at
  //     warmup + max(start + duration - warmup, 0).
  // The consistency sampler is a sim::PeriodicTimer started at arm time: it
  // first fires one period after the start and reschedules at each fire
  // time, so its ticks accumulate by repeated addition from warmup. The
  // engine fence-snaps barriers by exact floating-point comparison against
  // these instants, so any deviation here would leave a hook un-fenced.
  std::vector<double> out;
  const double warmup = cfg.warmup;
  const double end = cfg.warmup + cfg.duration;
  for (const FaultEvent& e : plan.events()) {
    out.push_back(warmup + std::max(e.start - warmup, 0.0));
    if (e.duration > 0) {
      out.push_back(warmup + std::max(e.start + e.duration - warmup, 0.0));
    }
  }
  if (injector.sample_interval > 0) {
    for (double t = warmup + injector.sample_interval; t <= end;
         t += injector.sample_interval) {
      out.push_back(t);
    }
  }
  return out;
}

FaultRunResult run_sharded_with_faults(const core::ExperimentConfig& cfg,
                                       const FaultPlan& plan,
                                       InjectorConfig injector,
                                       core::ShardedRunStats* stats) {
  core::ShardedExperiment exp(cfg, fault_barrier_instants(cfg, plan,
                                                          injector));
  FaultInjector inj(exp.simulator(), plan, hooks_for(exp), injector);
  exp.set_warmup_hook([&inj] { inj.arm(); });
  FaultRunResult out;
  out.base = exp.run(stats);
  inj.finalize();
  out.recoveries = inj.records();
  out.join_catch_up = inj.join_catch_up_latencies();
  return out;
}

FaultRunResult run_experiment_with_faults(const core::ExperimentConfig& cfg,
                                          const FaultPlan& plan,
                                          InjectorConfig injector) {
  if (cfg.shards > 1 && cfg.backend != core::Backend::kHybrid) {
    // Faulted runs shard too, inside the same envelope as fault-free runs.
    // kHybrid is excluded here (not in sharded_supported) because this
    // single-queue path never attaches the fluid cohort — the sharded
    // engine does, so dispatching would change results, not preserve them.
    std::string why;
    if (core::sharded_supported(cfg, why)) {
      return run_sharded_with_faults(cfg, plan, injector);
    }
  }
  core::Experiment exp(cfg);
  FaultInjector inj(exp.simulator(), plan, hooks_for(exp), injector);
  exp.run_warmup();
  inj.arm();
  FaultRunResult out;
  out.base = exp.finish();
  inj.finalize();
  out.recoveries = inj.records();
  out.join_catch_up = inj.join_catch_up_latencies();
  return out;
}

}  // namespace sst::fault
