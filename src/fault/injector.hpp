// injector.hpp — replays a FaultPlan against a live harness and measures
// recovery.
//
// The injector is harness-agnostic: it drives a small bundle of hooks
// (crash/restart, partition, extra loss, bandwidth, leave/join, a
// consistency probe, and an optional repair-traffic counter). hooks_for()
// overloads bind the bundle to the two harnesses this repo has — the flat
// announce/listen core::Experiment and the hierarchical sstp::Session — so
// one scripted plan produces comparable recovery metrics for both.
//
// Every injected fault is bracketed in a stats::RecoveryTracker: inject at
// the event start, clear when the condition lifts (restart / heal / end of
// burst / end of degradation; instantaneous events clear at once), recover
// when the sampled consistency climbs back over the threshold.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "core/experiment.hpp"
#include "core/sharded.hpp"
#include "fault/plan.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "sstp/session.hpp"
#include "stats/recovery.hpp"

namespace sst::fault {

/// What the injector needs from a harness. All hooks must be callable for
/// the plan's event kinds to work; consistency is mandatory (it feeds the
/// tracker), traffic is optional.
struct Hooks {
  std::function<void()> crash;
  std::function<void()> restart;
  /// target may be kAllReceivers.
  std::function<void(std::size_t, bool)> set_partition;
  std::function<void(std::size_t, double)> set_extra_loss;
  std::function<void(double)> set_bandwidth_factor;
  std::function<void(std::size_t)> leave;
  std::function<std::size_t()> join;       // returns the new receiver index
  std::function<double()> consistency;     // instantaneous c(t)
  std::function<double()> traffic;         // cumulative repair counter
  /// Catch-up latency of a receiver created by join (negative while still
  /// converging); optional.
  std::function<double(std::size_t)> catch_up_latency;
};

/// Binds the hook bundle to a core experiment / a sharded replication / an
/// SSTP session.
Hooks hooks_for(core::Experiment& exp);
Hooks hooks_for(core::ShardedExperiment& exp);
Hooks hooks_for(sstp::Session& session);

/// Injector configuration.
struct InjectorConfig {
  double threshold = 0.9;         // consistency level that counts as recovered
  double sample_interval = 0.25;  // consistency sampling cadence
};

/// Schedules a FaultPlan's events on a simulator and tracks recovery.
///
///   core::Experiment exp(cfg);
///   FaultInjector inj(exp.simulator(), plan, hooks_for(exp));
///   exp.run_warmup();
///   inj.arm();                       // events before now() fire immediately
///   exp.finish();
///   inj.finalize();                  // closes deficit integrals
///
/// Overlap semantics: crashes nest (the sender restarts when the last
/// crash window ends); concurrent burst-loss on one target applies the MAX
/// extra loss; concurrent bandwidth degradations apply the MIN factor;
/// partitions nest per target.
class FaultInjector {
 public:
  FaultInjector(sim::Simulator& sim, FaultPlan plan, Hooks hooks,
                InjectorConfig config = {});

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every event and starts the consistency sampler. Call once,
  /// with the harness ready to run (typically right after warm-up).
  void arm();

  /// Stops sampling and closes every open deficit integral. Call after the
  /// run completes, before reading records().
  void finalize();

  [[nodiscard]] stats::RecoveryTracker& tracker() { return tracker_; }
  [[nodiscard]] const std::vector<stats::RecoveryRecord>& records() const {
    return tracker_.records();
  }

  /// Receiver indices created by join events, in firing order.
  [[nodiscard]] const std::vector<std::size_t>& joined_receivers() const {
    return joined_;
  }

  /// Catch-up latencies of the joined receivers (parallel to
  /// joined_receivers(); negative entries never converged).
  [[nodiscard]] std::vector<double> join_catch_up_latencies() const;

 private:
  void on_start(std::size_t event_index);
  void on_end(std::size_t event_index);
  void observe_now();
  void apply_burst(std::size_t target);
  void apply_bandwidth();

  sim::Simulator* sim_;
  FaultPlan plan_;
  Hooks hooks_;
  InjectorConfig config_;
  stats::RecoveryTracker tracker_;
  sim::PeriodicTimer sampler_;
  bool armed_ = false;

  std::vector<std::size_t> record_of_event_;  // event idx -> tracker record
  std::vector<std::size_t> joined_;

  // Overlap bookkeeping.
  int crash_depth_ = 0;
  std::map<std::size_t, int> partition_depth_;          // per target
  std::multimap<std::size_t, double> active_bursts_;    // target -> extra
  std::vector<double> active_bw_factors_;
};

/// Everything a faulted core run produces.
struct FaultRunResult {
  core::ExperimentResult base;
  std::vector<stats::RecoveryRecord> recoveries;
  std::vector<double> join_catch_up;  // per join event (negative: never)
};

/// Every instant at which the injector touches the harness when armed at
/// the warm-up cutoff of `cfg`: fault starts, fault ends, and consistency
/// sampler ticks, computed with the exact floating-point arithmetic arm()
/// and sim::PeriodicTimer use. These are the barrier instants a
/// core::ShardedExperiment must fence-snap so hooks fire against a fully
/// parked, single-queue-equivalent state.
std::vector<double> fault_barrier_instants(const core::ExperimentConfig& cfg,
                                           const FaultPlan& plan,
                                           const InjectorConfig& injector);

/// One-call convenience: runs a core experiment with a fault plan applied
/// after warm-up. Deterministic in cfg.seed (the injector draws no
/// randomness of its own). Configurations inside the sharded envelope with
/// cfg.shards > 1 run on the sharded engine (bit-identical results, see
/// run_sharded_with_faults); everything else runs single-queue.
FaultRunResult run_experiment_with_faults(const core::ExperimentConfig& cfg,
                                          const FaultPlan& plan,
                                          InjectorConfig injector = {});

/// The sharded path run_experiment_with_faults dispatches to: constructs a
/// ShardedExperiment with the plan's fence-snapped barrier instants, arms
/// the injector from the warm-up hook, and runs to completion.
/// Precondition: sharded_supported(cfg). `stats` (optional) receives the
/// engine's scheduling counters — faulted/churn runs are where idle-epoch
/// skipping pays, so bench_shard_scaling reads them from here.
FaultRunResult run_sharded_with_faults(const core::ExperimentConfig& cfg,
                                       const FaultPlan& plan,
                                       InjectorConfig injector = {},
                                       core::ShardedRunStats* stats = nullptr);

}  // namespace sst::fault
