#include "fault/plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace sst::fault {

namespace {

std::string kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSenderCrash:
      return "crash";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kReceiverLeave:
      return "leave";
    case FaultKind::kReceiverJoin:
      return "join";
    case FaultKind::kBurstLoss:
      return "burst";
    case FaultKind::kBandwidth:
      return "bw";
  }
  return "?";
}

[[noreturn]] void bad(const std::string& token, const std::string& why) {
  throw std::invalid_argument("bad fault event '" + token + "': " + why);
}

double parse_num(const std::string& token, const std::string& text) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) bad(token, "trailing junk in number '" + text + "'");
    return v;
  } catch (const std::invalid_argument&) {
    bad(token, "expected a number, got '" + text + "'");
  } catch (const std::out_of_range&) {
    bad(token, "number out of range: '" + text + "'");
  }
}

}  // namespace

std::string FaultEvent::label() const {
  std::string out = kind_name(kind);
  switch (kind) {
    case FaultKind::kPartition:
    case FaultKind::kReceiverLeave:
      if (target != kAllReceivers) {
        out += ":" + std::to_string(target);
      }
      break;
    case FaultKind::kBurstLoss:
    case FaultKind::kBandwidth: {
      std::string a = std::to_string(amount);
      a.erase(a.find_last_not_of('0') + 1);
      if (!a.empty() && a.back() == '.') a.pop_back();
      out += ":" + a;
      break;
    }
    default:
      break;
  }
  return out;
}

FaultPlan& FaultPlan::crash(double at, double duration) {
  events_.push_back(
      {FaultKind::kSenderCrash, at, duration, kAllReceivers, 0.0});
  return *this;
}

FaultPlan& FaultPlan::partition(std::size_t target, double at,
                                double duration) {
  events_.push_back({FaultKind::kPartition, at, duration, target, 0.0});
  return *this;
}

FaultPlan& FaultPlan::leave(std::size_t target, double at) {
  events_.push_back({FaultKind::kReceiverLeave, at, 0.0, target, 0.0});
  return *this;
}

FaultPlan& FaultPlan::join(double at) {
  events_.push_back({FaultKind::kReceiverJoin, at, 0.0, kAllReceivers, 0.0});
  return *this;
}

FaultPlan& FaultPlan::burst_loss(double extra, double at, double duration,
                                 std::size_t target) {
  events_.push_back({FaultKind::kBurstLoss, at, duration, target, extra});
  return *this;
}

FaultPlan& FaultPlan::bandwidth(double factor, double at, double duration) {
  events_.push_back(
      {FaultKind::kBandwidth, at, duration, kAllReceivers, factor});
  return *this;
}

std::vector<std::pair<double, double>> FaultPlan::partition_windows(
    std::size_t target) const {
  std::vector<std::pair<double, double>> windows;
  for (const auto& e : events_) {
    if (e.kind != FaultKind::kPartition) continue;
    if (e.target != target && e.target != kAllReceivers &&
        target != kAllReceivers) {
      continue;
    }
    windows.emplace_back(e.start, e.start + e.duration);
  }
  std::sort(windows.begin(), windows.end());
  // Merge overlapping/abutting windows into the canonical sorted
  // non-overlapping form PartitionChannel's cursor scan assumes.
  std::vector<std::pair<double, double>> merged;
  for (const auto& w : windows) {
    if (!merged.empty() && w.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, w.second);
    } else {
      merged.push_back(w);
    }
  }
  return merged;
}

double FaultPlan::horizon() const {
  double h = 0.0;
  for (const auto& e : events_) h = std::max(h, e.start + e.duration);
  return h;
}

FaultPlan FaultPlan::parse(const std::string& script) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= script.size()) {
    // ';' and ',' both separate events: the grammar uses neither, ';' needs
    // quoting in shells, and CMake test scripts cannot carry it through a
    // variable expansion at all.
    std::size_t next = script.find_first_of(";,", pos);
    if (next == std::string::npos) next = script.size();
    const std::string token = script.substr(pos, next - pos);
    pos = next + 1;
    if (token.empty()) {
      if (pos > script.size()) break;
      continue;
    }

    const std::size_t at_pos = token.find('@');
    if (at_pos == std::string::npos) bad(token, "missing '@start'");
    std::string head = token.substr(0, at_pos);
    std::string when = token.substr(at_pos + 1);

    std::string arg;
    const std::size_t colon = head.find(':');
    if (colon != std::string::npos) {
      arg = head.substr(colon + 1);
      head = head.substr(0, colon);
    }

    double start = 0.0;
    double duration = 0.0;
    const std::size_t plus = when.find('+');
    if (plus != std::string::npos) {
      start = parse_num(token, when.substr(0, plus));
      duration = parse_num(token, when.substr(plus + 1));
      if (duration < 0) bad(token, "negative duration");
    } else {
      start = parse_num(token, when);
    }
    if (start < 0) bad(token, "negative start time");

    if (head == "crash") {
      if (!arg.empty()) bad(token, "crash takes no argument");
      plan.crash(start, duration);
    } else if (head == "partition") {
      std::size_t target = kAllReceivers;
      if (!arg.empty()) {
        target = static_cast<std::size_t>(parse_num(token, arg));
      }
      plan.partition(target, start, duration);
    } else if (head == "leave") {
      if (arg.empty()) bad(token, "leave needs a receiver index");
      plan.leave(static_cast<std::size_t>(parse_num(token, arg)), start);
    } else if (head == "join") {
      if (!arg.empty()) bad(token, "join takes no argument");
      plan.join(start);
    } else if (head == "burst") {
      if (arg.empty()) bad(token, "burst needs an extra-loss probability");
      const double extra = parse_num(token, arg);
      if (extra < 0 || extra > 1) bad(token, "extra loss must be in [0, 1]");
      plan.burst_loss(extra, start, duration);
    } else if (head == "bw") {
      if (arg.empty()) bad(token, "bw needs a bandwidth factor");
      const double factor = parse_num(token, arg);
      if (factor <= 0) bad(token, "bandwidth factor must be positive");
      plan.bandwidth(factor, start, duration);
    } else {
      bad(token, "unknown kind '" + head + "'");
    }
  }
  return plan;
}

}  // namespace sst::fault
