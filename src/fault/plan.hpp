// plan.hpp — declarative fault plans (scripted failure timelines).
//
// The paper argues soft state's defining virtue is graceful degradation:
// "the protocol continues operating gracefully in the presence of network
// or system failure, and recovers from failure by virtue of the periodic
// announce/listen update process". A FaultPlan scripts exactly those
// failures — sender crash/restart, per-receiver partition and heal,
// receiver churn (leave / late join), transient burst loss, bandwidth
// degradation — as a timeline the FaultInjector replays against a live
// harness, so the claim can be measured (recovery time, consistency
// deficit, repair overhead) instead of asserted.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace sst::fault {

/// Applies to every receiver (partition / burst-loss events).
inline constexpr std::size_t kAllReceivers =
    std::numeric_limits<std::size_t>::max();

/// What goes wrong.
enum class FaultKind : std::uint8_t {
  kSenderCrash,    // sender process dies for `duration`, then restarts
  kPartition,      // receiver `target` unreachable (both ways) for `duration`
  kReceiverLeave,  // receiver `target` leaves for good (instantaneous)
  kReceiverJoin,   // a brand-new receiver joins (instantaneous)
  kBurstLoss,      // extra loss `amount` on target's path for `duration`
  kBandwidth,      // sender bandwidth scaled by factor `amount` for `duration`
};

/// One scripted fault. Times are absolute simulation time (the same clock
/// the harness's warmup + duration run on).
struct FaultEvent {
  FaultKind kind = FaultKind::kSenderCrash;
  double start = 0.0;
  double duration = 0.0;             // 0 for instantaneous kinds
  std::size_t target = kAllReceivers;
  double amount = 0.0;               // burst: extra loss p; bandwidth: factor

  /// Human-readable tag carried into the RecoveryRecord, e.g. "crash",
  /// "partition:2", "burst:0.5", "bw:0.25".
  [[nodiscard]] std::string label() const;
};

/// An ordered collection of FaultEvents, built programmatically or parsed
/// from a script string (the sstsim --faults flag).
class FaultPlan {
 public:
  FaultPlan() = default;

  // Builder API. All times absolute; durations in seconds.
  FaultPlan& crash(double at, double duration);
  FaultPlan& partition(std::size_t target, double at, double duration);
  FaultPlan& leave(std::size_t target, double at);
  FaultPlan& join(double at);
  FaultPlan& burst_loss(double extra, double at, double duration,
                        std::size_t target = kAllReceivers);
  FaultPlan& bandwidth(double factor, double at, double duration);

  /// Parses a script of ';'- or ','-separated events, each of the form
  ///   kind[:arg]@start[+duration]
  /// e.g. "crash@900+120;partition:0@600+60;leave:1@400;join@1200;
  ///       burst:0.5@1500+30;bw:0.25@300+100".
  /// kinds: crash, partition[:receiver] (no receiver = all), leave:receiver,
  /// join, burst:extra_loss[, bw:factor]. Throws std::invalid_argument on
  /// malformed input.
  static FaultPlan parse(const std::string& script);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Latest end time (start + duration) across all events; 0 when empty.
  [[nodiscard]] double horizon() const;

  /// The plan's partition events affecting receiver `target` (its own plus
  /// kAllReceivers events), as sorted non-overlapping half-open [start, end)
  /// windows — the exact shape net::PartitionConfig wants, which is how a
  /// scripted fault plan drives a PartitionChannel. Overlapping or abutting
  /// event windows are merged; zero-duration events yield zero-capacity
  /// windows (which drop nothing).
  [[nodiscard]] std::vector<std::pair<double, double>> partition_windows(
      std::size_t target = kAllReceivers) const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace sst::fault
