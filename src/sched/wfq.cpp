#include "sched/wfq.hpp"

#include <algorithm>

namespace sst::sched {

std::size_t WfqScheduler::pick(std::span<const double> head_bits) {
  const std::size_t n = std::min(weights_.size(), head_bits.size());

  // Start tag of each backlogged head packet.
  std::size_t best = kNone;
  double best_start = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (head_bits[i] < 0.0) continue;
    const double start = std::max(vtime_, finish_[i]);
    if (best == kNone || start < best_start) {
      best = i;
      best_start = start;
    }
  }
  if (best == kNone) return kNone;

  vtime_ = best_start;
  finish_[best] = best_start + head_bits[best] / weights_[best];

  if (vtime_ > 1e15) {
    for (auto& f : finish_) f -= vtime_;
    vtime_ = 0.0;
  }
  return best;
}

}  // namespace sst::sched
