#include "sched/lottery.hpp"

namespace sst::sched {

std::size_t LotteryScheduler::pick(std::span<const double> head_bits) {
  // Tickets are compensated by head-of-line packet size (the analogue of
  // Waldspurger's compensation tickets for partial quanta): a class whose
  // packets are k times larger draws with 1/k the probability, so its
  // long-run BYTE share — which is what bandwidth allocation means — still
  // equals its weight.
  const std::size_t n = std::min(weights_.size(), head_bits.size());
  auto tickets = [&](std::size_t i) {
    return weights_[i] / (head_bits[i] > 0.0 ? head_bits[i] : 1.0);
  };
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (head_bits[i] >= 0.0) total += tickets(i);
  }
  if (total <= 0.0) {
    // No weighted backlogged class; fall back to first backlogged class so a
    // zero-weight class still drains (work conservation).
    for (std::size_t i = 0; i < head_bits.size(); ++i) {
      if (head_bits[i] >= 0.0) return i;
    }
    return kNone;
  }
  double ticket = rng_.uniform() * total;
  for (std::size_t i = 0; i < n; ++i) {
    if (head_bits[i] < 0.0) continue;
    ticket -= tickets(i);
    if (ticket < 0.0) return i;
  }
  // Floating-point slack: return the last backlogged class.
  for (std::size_t i = head_bits.size(); i-- > 0;) {
    if (head_bits[i] >= 0.0) return i;
  }
  return kNone;
}

}  // namespace sst::sched
