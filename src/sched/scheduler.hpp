// scheduler.hpp — proportional-share selection among transmission queues.
//
// The two-queue protocol (paper Section 4) splits the sender's data bandwidth
// between a "hot" queue of new items and a "cold" queue of previously sent
// items, "shared proportionally (e.g., using a randomized lottery scheduler,
// weighted fair queueing or stride scheduling)". This module provides those
// exact disciplines behind one interface so experiments can verify the
// results are discipline-independent (they are; see tests and the ablation
// bench).
//
// Protocol model: the caller owns the queues and the service loop. On each
// service opportunity it calls pick() with the head-of-line packet size (in
// bits) of every class; the scheduler selects a class, internally charges the
// service, and returns the class index.
#pragma once

#include <cstddef>
#include <limits>
#include <span>

namespace sst::sched {

/// Returned by pick() when no class is backlogged.
inline constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

/// Sentinel head size meaning "class has no packet queued".
inline constexpr double kEmpty = -1.0;

/// Work-conserving proportional-share scheduler over a fixed set of classes.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Registers a class with the given weight (> 0); returns its index.
  /// All classes must be added before the first pick().
  virtual std::size_t add_class(double weight) = 0;

  /// Updates a class's weight. Takes effect on the next pick.
  virtual void set_weight(std::size_t cls, double weight) = 0;

  /// Number of registered classes.
  [[nodiscard]] virtual std::size_t classes() const = 0;

  /// Selects the next class to serve. `head_bits[i]` is the size (bits) of
  /// class i's head-of-line packet, or kEmpty (< 0) if class i is idle.
  /// Returns the chosen class (whose service is charged internally) or kNone
  /// if every class is idle. Work-conserving: an idle class's share flows to
  /// backlogged classes ("unused excess hot bandwidth is consumed by
  /// transmissions from the cold queue", Section 4).
  virtual std::size_t pick(std::span<const double> head_bits) = 0;
};

}  // namespace sst::sched
