// lottery.hpp — randomized lottery scheduling (Waldspurger & Weihl, OSDI '94).
#pragma once

#include <vector>

#include "sched/scheduler.hpp"
#include "sim/random.hpp"

namespace sst::sched {

/// Each class holds tickets proportional to its weight; every service
/// opportunity draws a winning ticket among backlogged classes.
/// Probabilistically fair; variance shrinks as 1/sqrt(n) over n picks.
class LotteryScheduler final : public Scheduler {
 public:
  explicit LotteryScheduler(sim::Rng rng) : rng_(rng) {}

  std::size_t add_class(double weight) override {
    weights_.push_back(weight > 0 ? weight : 0.0);
    return weights_.size() - 1;
  }

  void set_weight(std::size_t cls, double weight) override {
    weights_.at(cls) = weight > 0 ? weight : 0.0;
  }

  [[nodiscard]] std::size_t classes() const override {
    return weights_.size();
  }

  std::size_t pick(std::span<const double> head_bits) override;

 private:
  std::vector<double> weights_;
  sim::Rng rng_;
};

}  // namespace sst::sched
