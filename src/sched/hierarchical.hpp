// hierarchical.hpp — CBQ-style hierarchical link sharing.
//
// SSTP's application-controlled bandwidth allocation (paper Section 6.1,
// Figure 12) hangs data classes off an allocation tree — e.g. session
// bandwidth split {data, feedback}, data split {hot, cold}, hot split by
// application priority class — and cites CBQ [19] and H-FSC [47]. This
// scheduler implements that tree: every internal node runs stride scheduling
// over its children, so bandwidth unused by one subtree is recursively
// borrowed by its siblings (link sharing), while backlogged subtrees split
// capacity by weight.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "check/check.hpp"
#include "sched/scheduler.hpp"

namespace sst::sched {

/// Hierarchical proportional-share scheduler.
///
/// Groups form a tree rooted at group 0 (pre-created). Leaf classes are the
/// externally visible scheduling classes, numbered densely in creation order
/// (these indices are what pick() returns and what head_bits indexes).
class HierarchicalScheduler final : public Scheduler {
 public:
  HierarchicalScheduler() {
    nodes_.push_back(Node{});  // root group
  }

  /// Root group id.
  static constexpr std::size_t kRoot = 0;

  /// Adds a child group under `parent` with the given weight among its
  /// siblings. Returns the new group id.
  std::size_t add_group(std::size_t parent, double weight);

  /// Adds a leaf class under `group`. Returns the external class index.
  std::size_t add_class_in(std::size_t group, double weight);

  /// Scheduler interface: adds a leaf class directly under the root.
  std::size_t add_class(double weight) override {
    return add_class_in(kRoot, weight);
  }

  /// Updates a leaf class's weight.
  void set_weight(std::size_t cls, double weight) override;

  /// Updates a group's weight among its siblings.
  void set_group_weight(std::size_t group, double weight);

  [[nodiscard]] std::size_t classes() const override {
    return leaf_of_class_.size();
  }

  std::size_t pick(std::span<const double> head_bits) override;

  /// Appends every violated invariant to `out` (sst::check): the
  /// allocation tree is well-formed — parent/child links symmetric, root
  /// parentless, leaves childless, every node reached exactly once — the
  /// class table and the leaf nodes are in bijection, and the share
  /// accounting (weights, passes, virtual times) stays positive and finite.
  void check_invariants(check::Violations& out) const;

 private:
  friend struct check::Corrupter;

  struct Node {
    std::size_t parent = kNone;
    double weight = 1.0;
    double pass = 0.0;       // stride pass among siblings
    bool backlogged = false; // backlog state at last pick (for idle-sync)
    double vtime = 0.0;      // virtual time of this node's child scheduler
    std::vector<std::size_t> children;
    std::size_t leaf_class = kNone;  // external index if this is a leaf
  };

  static constexpr double kMinWeight = 1e-9;

  [[nodiscard]] bool is_group(std::size_t node) const {
    return nodes_[node].leaf_class == kNone;
  }

  // Recomputes, bottom-up, whether each node has a backlogged leaf below it.
  bool compute_backlog(std::size_t node, std::span<const double> head_bits,
                       std::vector<bool>& backlog) const;

  std::vector<Node> nodes_;
  std::vector<std::size_t> leaf_of_class_;  // external class -> node id
  std::uint64_t audit_tick_ = 0;            // SST_CHECK cadence counter
};

}  // namespace sst::sched
