#include "sched/hierarchical.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace sst::sched {

std::size_t HierarchicalScheduler::add_group(std::size_t parent,
                                             double weight) {
  if (parent >= nodes_.size() || !is_group(parent)) {
    throw std::invalid_argument("add_group: parent is not a group");
  }
  Node n;
  n.parent = parent;
  n.weight = weight > 0 ? weight : kMinWeight;
  nodes_.push_back(n);
  const std::size_t id = nodes_.size() - 1;
  nodes_[parent].children.push_back(id);
  return id;
}

std::size_t HierarchicalScheduler::add_class_in(std::size_t group,
                                                double weight) {
  if (group >= nodes_.size() || !is_group(group)) {
    throw std::invalid_argument("add_class_in: parent is not a group");
  }
  Node n;
  n.parent = group;
  n.weight = weight > 0 ? weight : kMinWeight;
  n.leaf_class = leaf_of_class_.size();
  nodes_.push_back(n);
  const std::size_t id = nodes_.size() - 1;
  nodes_[group].children.push_back(id);
  leaf_of_class_.push_back(id);
  return n.leaf_class;
}

void HierarchicalScheduler::set_weight(std::size_t cls, double weight) {
  nodes_[leaf_of_class_.at(cls)].weight = weight > 0 ? weight : kMinWeight;
}

void HierarchicalScheduler::set_group_weight(std::size_t group,
                                             double weight) {
  if (group >= nodes_.size() || !is_group(group) || group == kRoot) {
    throw std::invalid_argument("set_group_weight: bad group");
  }
  nodes_[group].weight = weight > 0 ? weight : kMinWeight;
}

bool HierarchicalScheduler::compute_backlog(
    std::size_t node, std::span<const double> head_bits,
    std::vector<bool>& backlog) const {
  const Node& n = nodes_[node];
  bool any = false;
  if (n.leaf_class != kNone) {
    any = n.leaf_class < head_bits.size() && head_bits[n.leaf_class] >= 0.0;
  } else {
    for (const std::size_t c : n.children) {
      // Evaluate all children (no short-circuit) so the whole subtree's
      // backlog flags are refreshed.
      const bool child_any = compute_backlog(c, head_bits, backlog);
      any = any || child_any;
    }
  }
  backlog[node] = any;
  return any;
}

std::size_t HierarchicalScheduler::pick(std::span<const double> head_bits) {
  std::vector<bool> backlog(nodes_.size(), false);
  if (!compute_backlog(kRoot, head_bits, backlog)) return kNone;

  // Descend from the root, running one stride decision per level.
  std::size_t node = kRoot;
  while (is_group(node)) {
    Node& g = nodes_[node];
    std::size_t best = kNone;
    for (const std::size_t c : g.children) {
      Node& child = nodes_[c];
      const bool now_backlogged = backlog[c];
      if (now_backlogged && !child.backlogged) {
        child.pass = std::max(child.pass, g.vtime);
      }
      child.backlogged = now_backlogged;
      if (!now_backlogged) continue;
      if (best == kNone || child.pass < nodes_[best].pass) best = c;
    }
    // compute_backlog guaranteed some child is backlogged.
    g.vtime = nodes_[best].pass;
    node = best;
  }

  // Charge the leaf's size along the path from leaf to root.
  const std::size_t cls = nodes_[node].leaf_class;
  const double bits = head_bits[cls];
  for (std::size_t n = node; n != kRoot; n = nodes_[n].parent) {
    nodes_[n].pass += bits / nodes_[n].weight;
    if (nodes_[n].pass > 1e15) {
      // Renormalize this sibling group to avoid unbounded drift.
      Node& parent = nodes_[nodes_[n].parent];
      double floor = nodes_[n].pass;
      for (const std::size_t c : parent.children) {
        floor = std::min(floor, nodes_[c].pass);
      }
      for (const std::size_t c : parent.children) nodes_[c].pass -= floor;
      parent.vtime = std::max(0.0, parent.vtime - floor);
    }
  }
#if SST_CHECK_ENABLED
  if (check::due(audit_tick_, 4096)) {
    check::Violations v;
    check_invariants(v);
    check::report("HierarchicalScheduler", v);
  }
#endif
  return cls;
}

void HierarchicalScheduler::check_invariants(check::Violations& out) const {
  if (nodes_.empty() || nodes_[kRoot].parent != kNone) {
    out.push_back("root missing or has a parent");
    return;
  }
  std::vector<std::size_t> seen(nodes_.size(), 0);
  seen[kRoot] = 1;
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    // Parent/child link symmetry: each child names its parent, the parent
    // lists the child exactly once.
    for (const std::size_t c : n.children) {
      if (c >= nodes_.size()) {
        out.push_back("group " + std::to_string(id) +
                      " links child out of range");
        continue;
      }
      ++seen[c];
      if (nodes_[c].parent != id) {
        out.push_back("child " + std::to_string(c) + " of group " +
                      std::to_string(id) + " names parent " +
                      std::to_string(nodes_[c].parent));
      }
    }
    if (n.leaf_class != kNone) {
      if (!n.children.empty()) {
        out.push_back("leaf node " + std::to_string(id) + " has children");
      }
      if (n.leaf_class >= leaf_of_class_.size() ||
          leaf_of_class_[n.leaf_class] != id) {
        out.push_back("leaf node " + std::to_string(id) +
                      " not mirrored by the class table");
      }
    }
    // Share accounting: positive weights, finite passes and virtual times.
    if (!(n.weight > 0.0) || !std::isfinite(n.weight)) {
      out.push_back("node " + std::to_string(id) + " has weight " +
                    std::to_string(n.weight));
    }
    if (!std::isfinite(n.pass) || !std::isfinite(n.vtime)) {
      out.push_back("node " + std::to_string(id) +
                    " pass/vtime not finite");
    }
  }
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    if (seen[id] != 1) {
      out.push_back("node " + std::to_string(id) + " linked " +
                    std::to_string(seen[id]) + " times (expected 1)");
    }
  }
  for (std::size_t cls = 0; cls < leaf_of_class_.size(); ++cls) {
    const std::size_t id = leaf_of_class_[cls];
    if (id >= nodes_.size() || nodes_[id].leaf_class != cls) {
      out.push_back("class " + std::to_string(cls) +
                    " does not round-trip through its leaf node");
    }
  }
}

}  // namespace sst::sched
