#include "sched/drr.hpp"

#include <algorithm>

namespace sst::sched {

std::size_t DrrScheduler::pick(std::span<const double> head_bits) {
  const std::size_t n = std::min(weights_.size(), head_bits.size());
  if (n == 0) return kNone;

  bool any = false;
  bool any_weighted = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (head_bits[i] >= 0.0) {
      any = true;
      if (weights_[i] > 0.0) any_weighted = true;
    } else {
      deficit_[i] = 0.0;  // idle classes may not bank credit
    }
  }
  if (!any) return kNone;
  if (!any_weighted) {
    // Only zero-weight classes are backlogged; serve the first one so the
    // scheduler stays work-conserving.
    for (std::size_t i = 0; i < n; ++i) {
      if (head_bits[i] >= 0.0) return i;
    }
  }

  // Standard DRR adapted to one-packet-per-call service: the class holding
  // the round-robin token sends while its deficit covers its head packet;
  // when it cannot, the token moves to the next backlogged class, which is
  // replenished by weight * quantum exactly once per token arrival.
  //
  // The visit bound covers the worst case where every backlogged class needs
  // head/(weight*quantum) token arrivals before it can send.
  double min_wq = 1e300;
  double max_head = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (head_bits[i] < 0.0 || weights_[i] <= 0.0) continue;
    min_wq = std::min(min_wq, weights_[i] * quantum_bits_);
    max_head = std::max(max_head, head_bits[i]);
  }
  const auto rounds =
      static_cast<std::size_t>(max_head / std::max(min_wq, 1e-12)) + 2;
  const std::size_t bound = std::min<std::size_t>(n * rounds, 1u << 20);

  for (std::size_t visits = 0; visits < bound; ++visits) {
    const std::size_t i = cursor_ % n;
    if (head_bits[i] >= 0.0 && weights_[i] > 0.0 &&
        deficit_[i] >= head_bits[i]) {
      deficit_[i] -= head_bits[i];
      return i;  // token stays: the class may send again next call
    }
    // Move the token to the next backlogged, weighted class and replenish it.
    std::size_t next = (cursor_ + 1) % n;
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t j = (cursor_ + 1 + step) % n;
      if (head_bits[j] >= 0.0 && weights_[j] > 0.0) {
        next = j;
        break;
      }
    }
    cursor_ = next;
    deficit_[next] += weights_[next] * quantum_bits_;
  }

  // Pathological weights: fall back to the first backlogged class.
  for (std::size_t i = 0; i < n; ++i) {
    if (head_bits[i] >= 0.0) return i;
  }
  return kNone;
}

}  // namespace sst::sched
