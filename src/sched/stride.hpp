// stride.hpp — deterministic stride scheduling (Waldspurger & Weihl, 1995).
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "sched/scheduler.hpp"

namespace sst::sched {

/// Deterministic proportional share: each class advances a virtual "pass" by
/// size/weight per service; the backlogged class with the minimum pass is
/// served next. Bounded allocation error of one quantum per class.
///
/// Packet sizes are charged, so byte-level (not just packet-level) fairness
/// holds even with mixed packet sizes. A class that returns from idle has its
/// pass synced up to the current virtual time, so idling never banks credit.
class StrideScheduler final : public Scheduler {
 public:
  std::size_t add_class(double weight) override {
    weights_.push_back(weight > 0 ? weight : kMinWeight);
    pass_.push_back(0.0);
    backlogged_.push_back(false);
    return weights_.size() - 1;
  }

  void set_weight(std::size_t cls, double weight) override {
    weights_.at(cls) = weight > 0 ? weight : kMinWeight;
  }

  [[nodiscard]] std::size_t classes() const override {
    return weights_.size();
  }

  std::size_t pick(std::span<const double> head_bits) override;

  /// Appends every violated invariant to `out` (sst::check): per-class
  /// state vectors in lockstep, weights positive, share accounting (passes
  /// and virtual time) finite.
  void check_invariants(check::Violations& out) const {
    if (pass_.size() != weights_.size() ||
        backlogged_.size() != weights_.size()) {
      out.push_back("per-class vectors out of lockstep");
    }
    for (std::size_t c = 0; c < weights_.size(); ++c) {
      if (!(weights_[c] > 0.0) || !std::isfinite(weights_[c])) {
        out.push_back("class " + std::to_string(c) + " has weight " +
                      std::to_string(weights_[c]));
      }
      if (c < pass_.size() && !std::isfinite(pass_[c])) {
        out.push_back("class " + std::to_string(c) + " pass not finite");
      }
    }
    if (!std::isfinite(vtime_)) out.push_back("vtime not finite");
  }

 private:
  friend struct check::Corrupter;

  // A zero weight would make a class's stride infinite; starve it softly
  // instead so it still drains when alone (work conservation).
  static constexpr double kMinWeight = 1e-9;

  std::vector<double> weights_;
  std::vector<double> pass_;
  std::vector<bool> backlogged_;  // backlog state at last pick
  double vtime_ = 0.0;            // pass of the most recently served class
};

}  // namespace sst::sched
