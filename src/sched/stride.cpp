#include "sched/stride.hpp"

#include <algorithm>

namespace sst::sched {

std::size_t StrideScheduler::pick(std::span<const double> head_bits) {
  const std::size_t n = std::min(weights_.size(), head_bits.size());

  // Track idle->backlogged transitions: a returning class may not reuse the
  // virtual time it "saved" while idle.
  for (std::size_t i = 0; i < n; ++i) {
    const bool now_backlogged = head_bits[i] >= 0.0;
    if (now_backlogged && !backlogged_[i]) {
      pass_[i] = std::max(pass_[i], vtime_);
    }
    backlogged_[i] = now_backlogged;
  }

  std::size_t best = kNone;
  for (std::size_t i = 0; i < n; ++i) {
    if (head_bits[i] < 0.0) continue;
    if (best == kNone || pass_[i] < pass_[best]) best = i;
  }
  if (best == kNone) return kNone;

  vtime_ = pass_[best];
  pass_[best] += head_bits[best] / weights_[best];

  // Prevent unbounded drift over very long runs.
  if (vtime_ > 1e15) {
    for (auto& p : pass_) p -= vtime_;
    vtime_ = 0.0;
  }
  return best;
}

}  // namespace sst::sched
