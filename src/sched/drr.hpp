// drr.hpp — deficit round robin (Shreedhar & Varghese).
#pragma once

#include <vector>

#include "sched/scheduler.hpp"

namespace sst::sched {

/// O(1) proportional share: classes are visited in round-robin order; each
/// visit adds weight*quantum bits of credit, and a class may transmit while
/// its head packet fits in its accumulated deficit. Credit of idle classes is
/// discarded (no banking).
class DrrScheduler final : public Scheduler {
 public:
  /// `quantum_bits` is the base credit per round for a weight-1.0 class; it
  /// should be at least the largest packet size for O(1) behaviour.
  explicit DrrScheduler(double quantum_bits = 12000.0)
      : quantum_bits_(quantum_bits) {}

  std::size_t add_class(double weight) override {
    weights_.push_back(weight > 0 ? weight : 0.0);
    deficit_.push_back(0.0);
    return weights_.size() - 1;
  }

  void set_weight(std::size_t cls, double weight) override {
    weights_.at(cls) = weight > 0 ? weight : 0.0;
  }

  [[nodiscard]] std::size_t classes() const override {
    return weights_.size();
  }

  std::size_t pick(std::span<const double> head_bits) override;

 private:
  double quantum_bits_;
  std::vector<double> weights_;
  std::vector<double> deficit_;
  std::size_t cursor_ = 0;  // class currently holding the round-robin token
};

}  // namespace sst::sched
