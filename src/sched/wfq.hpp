// wfq.hpp — weighted fair queueing (start-time fair queueing variant).
//
// Demers/Keshav/Shenker fair queueing [17] approximated with Goyal's
// start-time fair queueing: each packet gets a start tag max(v, class finish)
// and a finish tag start + size/weight; the scheduler serves the minimum
// start tag and advances the system virtual time to it. SFQ keeps WFQ's
// fairness bounds without simulating the fluid GPS reference.
#pragma once

#include <vector>

#include "sched/scheduler.hpp"

namespace sst::sched {

/// Start-time fair queueing over head-of-line packets.
class WfqScheduler final : public Scheduler {
 public:
  std::size_t add_class(double weight) override {
    weights_.push_back(weight > 0 ? weight : kMinWeight);
    finish_.push_back(0.0);
    return weights_.size() - 1;
  }

  void set_weight(std::size_t cls, double weight) override {
    weights_.at(cls) = weight > 0 ? weight : kMinWeight;
  }

  [[nodiscard]] std::size_t classes() const override {
    return weights_.size();
  }

  std::size_t pick(std::span<const double> head_bits) override;

 private:
  static constexpr double kMinWeight = 1e-9;

  std::vector<double> weights_;
  std::vector<double> finish_;  // finish tag of each class's last served pkt
  double vtime_ = 0.0;
};

}  // namespace sst::sched
