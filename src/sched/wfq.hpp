// wfq.hpp — weighted fair queueing (start-time fair queueing variant).
//
// Demers/Keshav/Shenker fair queueing [17] approximated with Goyal's
// start-time fair queueing: each packet gets a start tag max(v, class finish)
// and a finish tag start + size/weight; the scheduler serves the minimum
// start tag and advances the system virtual time to it. SFQ keeps WFQ's
// fairness bounds without simulating the fluid GPS reference.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "sched/scheduler.hpp"

namespace sst::sched {

/// Start-time fair queueing over head-of-line packets.
class WfqScheduler final : public Scheduler {
 public:
  std::size_t add_class(double weight) override {
    weights_.push_back(weight > 0 ? weight : kMinWeight);
    finish_.push_back(0.0);
    return weights_.size() - 1;
  }

  void set_weight(std::size_t cls, double weight) override {
    weights_.at(cls) = weight > 0 ? weight : kMinWeight;
  }

  [[nodiscard]] std::size_t classes() const override {
    return weights_.size();
  }

  std::size_t pick(std::span<const double> head_bits) override;

  /// Appends every violated invariant to `out` (sst::check): tag vector in
  /// lockstep with the weights, weights positive, finish tags and virtual
  /// time finite.
  void check_invariants(check::Violations& out) const {
    if (finish_.size() != weights_.size()) {
      out.push_back("per-class vectors out of lockstep");
    }
    for (std::size_t c = 0; c < weights_.size(); ++c) {
      if (!(weights_[c] > 0.0) || !std::isfinite(weights_[c])) {
        out.push_back("class " + std::to_string(c) + " has weight " +
                      std::to_string(weights_[c]));
      }
      if (c < finish_.size() && !std::isfinite(finish_[c])) {
        out.push_back("class " + std::to_string(c) +
                      " finish tag not finite");
      }
    }
    if (!std::isfinite(vtime_)) out.push_back("vtime not finite");
  }

 private:
  friend struct check::Corrupter;

  static constexpr double kMinWeight = 1e-9;

  std::vector<double> weights_;
  std::vector<double> finish_;  // finish tag of each class's last served pkt
  double vtime_ = 0.0;
};

}  // namespace sst::sched
