// annotate.hpp — shard-ownership capability annotations (sst::check).
//
// The sharded engine's concurrency contract (DESIGN.md, "Ownership
// capability model") partitions every piece of cross-thread-visible state
// into three domains:
//
//   root-only     owned by the root executor (coordinator thread): publisher
//                 table, workload, sender, shared-loss stage, warm-up
//                 baselines, the cross-shard NACK merge scratch.
//   shard-local   owned by exactly one shard worker during its epoch phase:
//                 the shard's Simulator, receiver rigs, data-channel slice,
//                 per-shard ConsistencyMonitor, probe verdicts. Between
//                 barriers the coordinator adopts this role for its
//                 reductions (the workers are parked, so ownership transfers
//                 wholesale — see ShardCrew's happens-before sandwich).
//   epoch-shared  published by the root before the start barrier, read by
//                 every worker during the epoch: the epoch log and plan.
//                 Workers get SHARED (read) access only.
//
// Until this header existed the contract was enforced only dynamically (TSan
// runs, the byte-identity matrix). The macros below make it machine-checked:
// under Clang they lower to the thread-safety-analysis attributes
// (-Wthread-safety; cmake -DSST_ANALYZE=ON turns the warnings into errors
// for src/), and everywhere they double as markers for the AST analyzer
// (tools/sstlyz.py), whose ownership-reachability and epoch-fence rules read
// them textually — so the contract is checked even on non-Clang toolchains.
//
// The roles are "fictitious capabilities" in Clang's sense: never a runtime
// lock, only a token the analysis threads through the call graph. The
// TEMPORAL part of the protocol (who holds a role WHEN) is established by
// the phase barriers and verified by TSan + the determinism matrix; an
// assert_held() call is the in-source record of that argument, and every one
// must cite it. What the static analysis then proves is role consistency:
// no function reaches a guarded member without declaring (or asserting,
// with justification) the role it runs under — the property that keeps
// future scale-out PRs from silently coupling a worker to root state.
#pragma once

// Lower to Clang's thread-safety attributes where available; expand to
// nothing elsewhere (GCC compiles the annotated headers unchanged).
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SST_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SST_THREAD_ANNOTATION
#define SST_THREAD_ANNOTATION(x)  // non-Clang: annotations are markers only
#endif

// ------------------------------------------------------ attribute spellings
// Generic layer, one macro per Clang attribute actually used. Placement
// follows the Abseil convention: member attributes AFTER the declarator
// (`int x_ SST_GUARDED_BY(role);`), function attributes after the
// parameter list / cv-qualifiers.
#define SST_CAPABILITY(name) SST_THREAD_ANNOTATION(capability(name))
#define SST_GUARDED_BY(x) SST_THREAD_ANNOTATION(guarded_by(x))
#define SST_PT_GUARDED_BY(x) SST_THREAD_ANNOTATION(pt_guarded_by(x))
#define SST_REQUIRES(...) \
  SST_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SST_REQUIRES_SHARED(...) \
  SST_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define SST_ACQUIRE(...) SST_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SST_RELEASE(...) SST_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SST_ASSERT_CAPABILITY(x) SST_THREAD_ANNOTATION(assert_capability(x))
#define SST_ASSERT_SHARED_CAPABILITY(x) \
  SST_THREAD_ANNOTATION(assert_shared_capability(x))
#define SST_NO_THREAD_SAFETY_ANALYSIS \
  SST_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace sst::check {

/// A fictitious capability: a thread ROLE, not a lock. Asserting a role
/// states (to the analysis and to the reader) that the calling context is
/// the unique owner of that role's state at this point in the protocol —
/// a claim the phase-barrier argument, not a mutex, makes true. Runtime
/// cost: none (the methods are empty and inline everywhere).
class SST_CAPABILITY("role") Role {
 public:
  constexpr Role() = default;

  /// States that this role is held EXCLUSIVELY in the current scope. Every
  /// call site must carry a comment citing the protocol argument (which
  /// barrier / construction phase makes the claim true).
  void assert_held() const SST_ASSERT_CAPABILITY(this) {}

  /// States that this role is held SHARED (read-only) in the current scope
  /// — what epoch-shared state grants the workers during an epoch.
  void assert_held_shared() const SST_ASSERT_SHARED_CAPABILITY(this) {}
};

/// Root executor role: the coordinator thread, and — in the single-queue
/// engine, where there are no workers at all — the one simulation thread.
inline constexpr Role root_role{};

/// Shard-worker role: a worker inside its epoch phase, owning its shard
/// block; adopted by the coordinator between barriers for reductions.
inline constexpr Role shard_role{};

/// Epoch-fence capability: the right to touch the barrier-published epoch
/// inputs (log, plan). Root holds it exclusively between barriers; workers
/// hold it SHARED during an epoch, so the analysis proves workers never
/// write the epoch log.
inline constexpr Role epoch_fence{};

/// Owning-engine serial role: "the thread currently driving this
/// component's Simulator". Guards single-threaded-by-design hot-path state
/// that both engines reuse (the Channel payload pool, the TwoQueueSender
/// same-instant NACK stash); the public entry points assert it (the caller
/// is the engine by construction), and the analysis then proves no internal
/// path touches the guarded state without it.
inline constexpr Role engine_role{};

}  // namespace sst::check

// ------------------------------------------------------- ownership domains
// The repo-specific vocabulary. sstlyz's root-reach and fence-read rules key
// off these exact spellings, so use the domain macros (not raw
// SST_GUARDED_BY) on engine state.
#define SST_ROOT_ONLY SST_GUARDED_BY(::sst::check::root_role)
#define SST_SHARD_LOCAL SST_GUARDED_BY(::sst::check::shard_role)
#define SST_EPOCH_SHARED SST_GUARDED_BY(::sst::check::epoch_fence)
#define SST_ENGINE_SERIAL SST_GUARDED_BY(::sst::check::engine_role)

#define SST_REQUIRES_ROOT SST_REQUIRES(::sst::check::root_role)
#define SST_REQUIRES_SHARD SST_REQUIRES(::sst::check::shard_role)
#define SST_REQUIRES_FENCE SST_REQUIRES(::sst::check::epoch_fence)
#define SST_REQUIRES_FENCE_SHARED \
  SST_REQUIRES_SHARED(::sst::check::epoch_fence)
#define SST_REQUIRES_ENGINE SST_REQUIRES(::sst::check::engine_role)

// Coordinator domain (the fault path): between barriers the coordinator
// holds the root role AND — because every worker is parked — the shard role.
// Fault hooks (crash, partition, churn) run at fence-snapped instants on the
// root simulator, so they mutate root state and shard state in one scope;
// this pair is their declared requirement. sstlyz's root-reach rule treats
// the pair as both domains at once.
#define SST_REQUIRES_COORDINATOR \
  SST_REQUIRES(::sst::check::root_role, ::sst::check::shard_role)
