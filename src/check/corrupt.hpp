// corrupt.hpp — deliberate invariant breakage for the sst::check tests.
//
// Each audited class befriends check::Corrupter so the corruption tests can
// surgically break exactly one invariant and assert the matching validator
// trips. TEST SUPPORT ONLY: nothing outside tests/ may include this header
// (the lint gate greps for it).
#pragma once

#include <limits>
#include <utility>

#include "net/channel.hpp"
#include "sched/hierarchical.hpp"
#include "sched/stride.hpp"
#include "sched/wfq.hpp"
#include "sim/event_queue.hpp"
#include "sstp/interner.hpp"
#include "sstp/namespace_tree.hpp"

namespace sst::check {

struct Corrupter {
  // ------------------------------------------------------------ EventQueue
  /// Swaps two heap entries, breaking 4-ary heap order.
  static void eq_swap_heap(sim::EventQueue& q, std::size_t i, std::size_t j) {
    std::swap(q.heap_[i], q.heap_[j]);
  }
  /// Desynchronizes the live-event counter from the slot generations.
  static void eq_bump_live(sim::EventQueue& q) { ++q.live_; }
  /// Pushes a still-live slot onto the free list (double-release).
  static void eq_free_live_slot(sim::EventQueue& q) {
    q.free_slots_.push_back(q.heap_.front().slot);
  }
  /// Duplicates an insertion seq, breaking the FIFO tiebreak.
  static void eq_dup_seq(sim::EventQueue& q) {
    q.heap_[1].seq = q.heap_[0].seq;
  }

  // --------------------------------------------------------- NamespaceTree
  /// Swaps the root's first two children out of canonical name order.
  static void tree_swap_children(sstp::NamespaceTree& t) {
    std::swap(t.pool_[0].children[0], t.pool_[0].children[1]);
  }
  /// Desynchronizes the leaf counter.
  static void tree_bump_leaf_count(sstp::NamespaceTree& t) {
    ++t.leaf_count_;
  }
  /// Drops a node from the free list, leaking it from the pool partition.
  static void tree_pop_free(sstp::NamespaceTree& t) { t.free_.pop_back(); }
  /// Marks the root digest-clean regardless of dirty descendants, breaking
  /// dirty-spine containment.
  static void tree_force_root_clean(sstp::NamespaceTree& t) {
    t.pool_[0].digest_valid = true;
  }

  // -------------------------------------------------------------- Interner
  /// Publishes symbol 0's name slot as symbol 1's spelling, breaking
  /// bijectivity (requires at least two interned symbols).
  static void interner_mispublish(sstp::Interner& in) {
    auto* chunk = in.chunks_[0].load(std::memory_order_acquire);
    chunk->names[0].store(chunk->names[1].load(std::memory_order_acquire),
                          std::memory_order_release);
  }

  // --------------------------------------------------------------- Channel
  /// Plants a null payload-pool slot.
  template <class M>
  static void channel_null_slot(net::Channel<M>& ch) {
    ch.pool_.push_back(nullptr);
  }
  /// Skews the aggregate delivery counter away from the endpoint sums.
  template <class M>
  static void channel_skew_stats(net::Channel<M>& ch) {
    ++ch.stats_.delivered;
  }

  // ------------------------------------------------------------ schedulers
  /// Orphans node 1, breaking parent/child link symmetry.
  static void hier_orphan_node(sched::HierarchicalScheduler& s) {
    s.nodes_[1].parent = std::numeric_limits<std::size_t>::max();
  }
  /// Negates a leaf weight, breaking share accounting.
  static void hier_negate_weight(sched::HierarchicalScheduler& s) {
    s.nodes_[s.leaf_of_class_.at(0)].weight = -1.0;
  }
  static void stride_negate_weight(sched::StrideScheduler& s) {
    s.weights_.at(0) = -1.0;
  }
  static void wfq_poison_vtime(sched::WfqScheduler& s) {
    s.vtime_ = std::numeric_limits<double>::quiet_NaN();
  }
};

}  // namespace sst::check
