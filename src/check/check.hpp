// check.hpp — the runtime invariant-audit core (sst::check).
//
// Every pooled or index-linked structure the optimization PRs introduced
// (the 4-ary EventQueue with generation-tagged slots, the flat
// NamespaceTree, the Interner, the Channel payload pool, the scheduler
// hierarchy) carries a `check_invariants(check::Violations&)` method that
// enumerates everything that must hold between operations: heap order,
// tombstone accounting, link symmetry, free-list disjointness, bijectivity,
// share accounting. This header is the tiny core those validators report
// through.
//
// Two ways to run the validators:
//   1. Always available: tests and the `invariant_audit` ctest sweep call
//      check_invariants() directly on live structures (label `check`).
//   2. SST_CHECK builds (`cmake -DSST_CHECK=ON`): the audited classes call
//      their own validators from hooks on a fixed operation cadence, so a
//      full fig-bench sweep self-audits end to end. See
//      tools/check_invariants.sh and EXPERIMENTS.md for the measured
//      overhead.
//
// A violation is a bug, never a recoverable condition: the default handler
// prints every message and aborts. Tests install a capturing handler to
// assert that deliberately corrupted structures trip.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

// Defined (to 1) by the SST_CHECK=ON build; the hooks inside the audited
// classes compile away entirely without it.
#if !defined(SST_CHECK_ENABLED)
#define SST_CHECK_ENABLED 0
#endif

namespace sst::check {

/// Test-only corruption helpers (src/check/corrupt.hpp). Each audited class
/// befriends this so the corruption tests can break exactly one invariant
/// and assert the validator trips.
struct Corrupter;

/// Human-readable invariant violations ("heap[7] orders before parent
/// heap[1]"). Empty = structure is sound.
using Violations = std::vector<std::string>;

/// Called by report() when a validator found violations. Receives the
/// subsystem name ("EventQueue") and the messages.
using Handler = void (*)(const char* subsystem, const Violations& v);

/// Installs a violation handler, returning the previous one. Passing
/// nullptr restores the default (print all + abort).
Handler set_handler(Handler handler);

/// Reports a non-empty set of violations to the current handler and bumps
/// the violation counter. No-op when `v` is empty (but still counts the
/// audit).
void report(const char* subsystem, const Violations& v);

/// Number of report() calls made (i.e. completed audits), process-wide.
[[nodiscard]] std::uint64_t audits_run();

/// Number of individual violation messages seen, process-wide. The
/// invariant_audit sweep asserts this stays zero across whole runs.
[[nodiscard]] std::uint64_t violations_seen();

/// Resets both counters (test isolation).
void reset_counters();

/// Cadence helper for hooks: returns true every `period`-th call per
/// counter. Periods are powers of two so this is one AND on the hot path.
inline bool due(std::uint64_t& counter, std::uint64_t period_pow2) {
  return (++counter & (period_pow2 - 1)) == 0;
}

}  // namespace sst::check
