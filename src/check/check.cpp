#include "check/check.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace sst::check {

namespace {

void default_handler(const char* subsystem, const Violations& v) {
  std::fprintf(stderr, "sst::check: %zu invariant violation(s) in %s:\n",
               v.size(), subsystem);
  for (const std::string& msg : v) {
    std::fprintf(stderr, "  - %s\n", msg.c_str());
  }
  std::abort();
}

// Handler swaps are test-setup only; the audit counters are touched from
// runner worker threads, so they are atomic.
std::atomic<Handler> g_handler{&default_handler};
std::atomic<std::uint64_t> g_audits{0};
std::atomic<std::uint64_t> g_violations{0};

}  // namespace

Handler set_handler(Handler handler) {
  if (handler == nullptr) handler = &default_handler;
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

void report(const char* subsystem, const Violations& v) {
  g_audits.fetch_add(1, std::memory_order_relaxed);
  if (v.empty()) return;
  g_violations.fetch_add(v.size(), std::memory_order_relaxed);
  g_handler.load(std::memory_order_acquire)(subsystem, v);
}

std::uint64_t audits_run() {
  return g_audits.load(std::memory_order_relaxed);
}

std::uint64_t violations_seen() {
  return g_violations.load(std::memory_order_relaxed);
}

void reset_counters() {
  g_audits.store(0, std::memory_order_relaxed);
  g_violations.store(0, std::memory_order_relaxed);
}

}  // namespace sst::check
