#include "hash/hasher.hpp"

#include "hash/fnv.hpp"

namespace sst::hash {

Digest Hasher::finish() {
  if (algo_ == DigestAlgo::kMd5) {
    return Digest(md5_.finish());
  }
  // Two-lane FNV widening, matching digest.cpp's layout exactly: lane 1 is
  // plain FNV-1a over the stream; lane 2 re-hashes the stream seeded with
  // the finished lane 1 xor a golden-ratio constant.
  const std::span<const std::uint8_t> data(buf_.data(), buf_.size());
  const std::uint64_t h1 = fnv1a64(data);
  const std::uint64_t h2 = fnv1a64(data, h1 ^ 0x9E3779B97F4A7C15ULL);
  Digest::Bytes b{};
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<std::uint8_t>(h1 >> (8 * i));
    b[8 + i] = static_cast<std::uint8_t>(h2 >> (8 * i));
  }
  return Digest(b);
}

}  // namespace sst::hash
