#include "hash/digest.hpp"

#include "hash/fnv.hpp"
#include "hash/md5.hpp"

namespace sst::hash {

namespace {

// Widens a 64-bit FNV hash into 16 bytes by hashing twice with different
// continuation bases; collision strength stays ~64-bit but the layout matches
// the MD5 mode so wire formats are identical.
Digest::Bytes widen_fnv(std::span<const std::uint8_t> data) {
  const std::uint64_t h1 = fnv1a64(data);
  const std::uint64_t h2 = fnv1a64(data, h1 ^ 0x9E3779B97F4A7C15ULL);
  Digest::Bytes b{};
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<std::uint8_t>(h1 >> (8 * i));
    b[8 + i] = static_cast<std::uint8_t>(h2 >> (8 * i));
  }
  return b;
}

}  // namespace

Digest Digest::of_bytes(std::span<const std::uint8_t> data, DigestAlgo algo) {
  if (algo == DigestAlgo::kMd5) return Digest(Md5::digest(data));
  return Digest(widen_fnv(data));
}

Digest Digest::of_string(std::string_view s, DigestAlgo algo) {
  return of_bytes(std::span<const std::uint8_t>(
                      reinterpret_cast<const std::uint8_t*>(s.data()),
                      s.size()),
                  algo);
}

Digest Digest::of_leaf(std::uint64_t right_edge, std::uint64_t version,
                       DigestAlgo algo) {
  std::uint8_t buf[16];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<std::uint8_t>(right_edge >> (8 * i));
    buf[8 + i] = static_cast<std::uint8_t>(version >> (8 * i));
  }
  return of_bytes(std::span<const std::uint8_t>(buf, sizeof buf), algo);
}

Digest Digest::of_children(std::span<const Digest> children, DigestAlgo algo) {
  if (algo == DigestAlgo::kMd5) {
    Md5 ctx;
    for (const Digest& c : children) {
      ctx.update(std::span<const std::uint8_t>(c.bytes().data(),
                                               c.bytes().size()));
    }
    return Digest(ctx.finish());
  }
  std::uint64_t h1 = kFnvOffset;
  for (const Digest& c : children) {
    h1 = fnv1a64(std::span<const std::uint8_t>(c.bytes().data(),
                                               c.bytes().size()),
                 h1);
  }
  // Second lane continues from the first for 128-bit layout.
  std::uint64_t h2 = h1 ^ 0x9E3779B97F4A7C15ULL;
  for (const Digest& c : children) {
    h2 = fnv1a64(std::span<const std::uint8_t>(c.bytes().data(),
                                               c.bytes().size()),
                 h2);
  }
  Bytes b{};
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<std::uint8_t>(h1 >> (8 * i));
    b[8 + i] = static_cast<std::uint8_t>(h2 >> (8 * i));
  }
  return Digest(b);
}

std::string Digest::hex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (const std::uint8_t b : bytes_) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

}  // namespace sst::hash
