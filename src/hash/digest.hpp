// digest.hpp — fixed-length subtree summary value type.
//
// The SSTP namespace hierarchy (paper Section 6.2) associates every node with
// a fixed-length digest: for a leaf ADU, a function of its received byte
// count ("right edge"); for an internal node, a hash over its children's
// digests. Digest abstracts over the hash backend (MD5 per the paper, or
// FNV-1a when speed matters more than strength).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace sst::hash {

/// Hash backend used to compute digests.
enum class DigestAlgo : std::uint8_t {
  kMd5 = 0,    // RFC 1321, as in the paper
  kFnv1a = 1,  // fast non-cryptographic mode
};

/// 128-bit digest value. Equality comparison is the namespace-consistency
/// primitive: equal digests mean the subtrees are (overwhelmingly likely)
/// identical.
class Digest {
 public:
  using Bytes = std::array<std::uint8_t, 16>;

  constexpr Digest() : bytes_{} {}
  explicit constexpr Digest(const Bytes& b) : bytes_(b) {}

  /// Digest of a raw byte string.
  static Digest of_bytes(std::span<const std::uint8_t> data, DigestAlgo algo);

  /// Digest of a string.
  static Digest of_string(std::string_view s, DigestAlgo algo);

  /// Leaf digest per the paper: S(n) = right_edge(n), the count of bytes
  /// transmitted from the ADU, mixed with the ADU's version so value updates
  /// change the summary.
  static Digest of_leaf(std::uint64_t right_edge, std::uint64_t version,
                        DigestAlgo algo);

  /// Internal-node digest per the paper: S(n) = h(S(c1), ..., S(ck)).
  static Digest of_children(std::span<const Digest> children, DigestAlgo algo);

  [[nodiscard]] const Bytes& bytes() const { return bytes_; }
  [[nodiscard]] std::string hex() const;

  friend constexpr bool operator==(const Digest&, const Digest&) = default;
  friend constexpr auto operator<=>(const Digest&, const Digest&) = default;

 private:
  Bytes bytes_;
};

}  // namespace sst::hash
