// hasher.hpp — streaming digest context for the SSTP namespace hot path.
//
// Digest::of_bytes / of_children are one-shot: every call materializes its
// whole input first (for internal namespace nodes, a vector<Digest> per
// recomputation). Hasher is the incremental form — update() any number of
// times, finish() once — producing digests bit-identical to the one-shot
// API for the same byte stream, in both MD5 and FNV modes. The namespace
// tree keeps one Hasher per tree and streams child summaries straight into
// it, so digest maintenance allocates nothing in steady state.
//
// FNV mode note: the 128-bit widening runs a second FNV lane seeded with
// the finished first lane (see digest.cpp), so the second pass needs the
// full input again. Hasher therefore buffers the stream in FNV mode; the
// buffer is a reused member, so repeated reset()/finish() cycles settle at
// zero allocations. MD5 mode streams directly through the block context.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "hash/digest.hpp"
#include "hash/md5.hpp"

namespace sst::hash {

/// Incremental digest context. Bit-identical to the one-shot Digest
/// factories: Hasher(algo) with update(x) then finish() equals
/// Digest::of_bytes(x, algo) for any concatenation of updates.
class Hasher {
 public:
  /// A freshly constructed Hasher is ready for update().
  explicit Hasher(DigestAlgo algo) : algo_(algo) {}

  /// Starts a new stream. Buffer capacity is retained across resets.
  void reset() {
    if (algo_ == DigestAlgo::kMd5) {
      md5_.reset();
    } else {
      buf_.clear();
    }
  }

  /// Absorbs raw bytes.
  void update(std::span<const std::uint8_t> data) {
    if (algo_ == DigestAlgo::kMd5) {
      md5_.update(data);
    } else {
      buf_.insert(buf_.end(), data.begin(), data.end());
    }
  }

  /// Absorbs text.
  void update(std::string_view s) {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }

  /// Absorbs a digest value (the child-summary building block).
  void update(const Digest& d) {
    update(std::span<const std::uint8_t>(d.bytes().data(), d.bytes().size()));
  }

  /// Closes the stream and returns the digest. reset() before reuse.
  Digest finish();

  [[nodiscard]] DigestAlgo algo() const { return algo_; }

 private:
  DigestAlgo algo_;
  Md5 md5_;
  std::vector<std::uint8_t> buf_;  // FNV replay buffer (second lane)
};

}  // namespace sst::hash
