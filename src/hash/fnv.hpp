// fnv.hpp — FNV-1a 64-bit hash.
//
// Used for cheap, platform-independent hashing where cryptographic strength
// is unnecessary: RNG stream derivation, hash-table keys, and the fast
// (non-MD5) digest mode of the SSTP namespace tree.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace sst::hash {

inline constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

/// FNV-1a over raw bytes, continuing from `h` (defaults to the offset basis)
/// so multi-part inputs can be hashed incrementally.
constexpr std::uint64_t fnv1a64(std::span<const std::uint8_t> data,
                                std::uint64_t h = kFnvOffset) {
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

/// FNV-1a over a string.
constexpr std::uint64_t fnv1a64(std::string_view s,
                                std::uint64_t h = kFnvOffset) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// FNV-1a over one 64-bit value (little-endian byte order).
constexpr std::uint64_t fnv1a64(std::uint64_t v,
                                std::uint64_t h = kFnvOffset) {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<std::uint8_t>(v >> (8 * i));
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace sst::hash
