// md5.hpp — RFC 1321 MD5 message digest, implemented from scratch.
//
// The paper's SSTP namespace (Section 6.2) computes a fixed-length summary of
// each namespace subtree with a one-way hash and names MD5 explicitly. MD5 is
// cryptographically broken for adversarial collision resistance, but for
// state-summary comparison between cooperating endpoints it remains exactly
// what the paper used; the namespace tree also supports a faster FNV mode.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace sst::hash {

/// 128-bit MD5 digest.
using Md5Digest = std::array<std::uint8_t, 16>;

/// Incremental MD5 context. update() may be called any number of times;
/// finish() closes the stream and returns the digest. The context may be
/// reused after reset().
class Md5 {
 public:
  Md5() { reset(); }

  /// Restores the initial state (as if freshly constructed).
  void reset();

  /// Absorbs `data` into the hash state.
  void update(std::span<const std::uint8_t> data);

  /// Convenience overload for text.
  void update(std::string_view s) {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }

  /// Applies padding and returns the digest. The context must be reset()
  /// before further use.
  Md5Digest finish();

  /// One-shot digest of a byte span.
  static Md5Digest digest(std::span<const std::uint8_t> data);

  /// One-shot digest of a string.
  static Md5Digest digest(std::string_view s);

  /// Lowercase hex rendering of a digest (32 chars).
  static std::string hex(const Md5Digest& d);

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[4];
  std::uint64_t total_bytes_;
  std::uint8_t buffer_[64];
  std::size_t buffered_;
};

}  // namespace sst::hash
