// sharded.hpp — the sharded conservative-lookahead event engine.
//
// run_sharded() executes ONE replication of an ExperimentConfig across
// cfg.shards worker threads plus a root executor, and returns a result that
// is bit-identical to run_experiment() on the single-queue engine for every
// supported configuration (the determinism ctest gates enforce this).
//
// Decomposition. The receivers are split into contiguous index blocks
// (sim::shard_bounds); each shard owns its receivers' tables, agents,
// forward-channel endpoints, feedback pipelines, and a per-shard
// ConsistencyMonitor, all driven by the shard's own Simulator. The root
// executor owns everything single-instance: publisher table, workload,
// sender, shared-loss stage, hostile forward stage, and — under multicast
// feedback — the shared NACK group itself. Time advances in lock-step
// epochs bounded by the conservative lookahead W (the minimum cross-shard
// channel latency): per epoch the root runs first, appending its
// externally-visible actions (publisher changes, channel transmissions,
// redundancy probes, overheard group NACKs) to an epoch log, then every
// shard replays the log interleaved with its local events. Worker→root
// feedback (NACKs) crosses through per-shard mailboxes drained at the next
// barrier — safe because any NACK sent during epoch j influences no other
// party earlier than the end of epoch j+1.
//
// Barriers are placed dynamically (idle-epoch skipping): at each barrier the
// coordinator reduces min(next pending event) across the root and every
// shard and jumps straight to min(next special instant, that minimum + W),
// so quiescent stretches — fault-recovery tails, churn gaps — cost one epoch
// instead of span/W of them. See DESIGN.md, "Sharded engine" for the full
// protocol and the bit-identity argument.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace sst::core {

/// True when `cfg` falls inside the sharded engine's envelope. On false,
/// `why` explains the fallback (human-readable, used by CLI warnings and
/// run_experiment's once-per-reason notice): the pure-fluid backend has no
/// event engine, an empty receiver set has nothing to partition, and
/// feedback — unicast or multicast — needs a positive propagation delay,
/// which is the lookahead's irreducible term.
bool sharded_supported(const ExperimentConfig& cfg, std::string& why);

/// The conservative lookahead W for `cfg`: the minimum latency from any
/// worker-side action to its first effect on another party. Feedback runs
/// use the damping-aware bound
///     W = delay + nack_slot_floor(cfg.receiver)
/// — every NACK spends at least `delay` on its channel (the rate-limited
/// uplink, hostile stages, and jitter only add), and the SRM slotting
/// schedule delays its emission by at least the slot floor (0 today,
/// including the degenerate nack_slot_max == 0 immediate-NACK case; see
/// core/receiver.hpp). Multicast feedback obeys the same bound: an
/// overheard NACK reaches other receivers no earlier than `delay + slot
/// floor` after the triggering loss. Without feedback there is no
/// worker→root edge at all, so W is infinite and epochs stretch between
/// "special" instants (warm-up cutoff, sample points, fault instants, end
/// of run).
[[nodiscard]] sim::Duration sharded_lookahead(const ExperimentConfig& cfg);

/// Engine-side counters for one sharded run. A side channel on purpose:
/// ExperimentResult must stay byte-identical to the single-queue engine,
/// so scheduling telemetry cannot live there.
struct ShardedRunStats {
  /// Barriers actually executed.
  std::uint64_t epochs_executed = 0;
  /// W-spaced barriers the dynamic timetable jumped over (what the static
  /// schedule would have executed in the same spans, minus the executed
  /// ones; 0 for unbounded-lookahead runs, which always ran special to
  /// special).
  std::uint64_t epochs_skipped = 0;
  /// Coordinator wall-clock time spent inside ShardCrew::run_epoch(),
  /// i.e. waiting on + overlapping with the workers.
  double barrier_wait_seconds = 0.0;
};

/// Runs one replication of `cfg` on the sharded engine, using
/// min(cfg.shards, cfg.num_receivers) worker threads. Precondition:
/// sharded_supported(cfg). Bit-identical to the single-queue engine for any
/// shard count, up to ties at exactly equal event times (measure-zero for
/// the continuous-time workloads; the tie policy is documented in
/// DESIGN.md).
ExperimentResult run_sharded(const ExperimentConfig& cfg);

/// As above, but also reports engine-side scheduling counters into `stats`
/// (ignored when null).
ExperimentResult run_sharded(const ExperimentConfig& cfg,
                             ShardedRunStats* stats);

/// Sharded analogue of core::Experiment's fault-injection surface: a
/// constructed-but-not-yet-run sharded replication whose sender, receivers,
/// and channels can be manipulated mid-run by fault::FaultInjector.
///
/// Contract: every instant at which a hook may fire (fault starts and ends,
/// injector sampler ticks — all scheduled on simulator()) MUST be passed as
/// a `barrier_instants` entry, so the engine fence-snaps a barrier onto it.
/// A hook then runs at the start of the root phase that opens at its
/// instant t, where the coordinator holds both the root and shard roles and
/// every shard clock is parked exactly at t with all events before t
/// executed — the same state the single-queue engine exposes to the hook —
/// so reads and mutations (crash, partition switches, churn) land with
/// identical semantics. fault::run_experiment_with_faults() derives the
/// instants from the plan and drives all of this; construct directly only
/// in tests.
class ShardedExperiment {
 public:
  /// Precondition: sharded_supported(cfg). `barrier_instants` entries
  /// outside (0, warmup + duration] are ignored.
  explicit ShardedExperiment(const ExperimentConfig& cfg,
                             std::vector<double> barrier_instants = {});
  ~ShardedExperiment();

  ShardedExperiment(const ShardedExperiment&) = delete;
  ShardedExperiment& operator=(const ShardedExperiment&) = delete;

  /// The root executor's simulator — where the injector arms its timeline.
  [[nodiscard]] sim::Simulator& simulator();

  /// Invoked once, at the warm-up cutoff barrier right after statistics
  /// reset (or before the first epoch when warmup <= 0) — the sharded
  /// mirror of "after run_warmup()", where the injector calls arm().
  void set_warmup_hook(std::function<void()> hook);

  /// Runs the replication to completion and returns the result (see
  /// run_sharded for the identity contract). Call at most once.
  ExperimentResult run(ShardedRunStats* stats = nullptr);

  // Fault surface (mirrors core::Experiment's; callable from hooks fired at
  // barrier instants, and before/after run()).
  void crash_sender();
  void restart_sender();
  void set_partition(std::size_t r, bool down);
  void set_partition_all(bool down);
  void set_extra_loss(std::size_t r, double p);
  void set_extra_loss_all(double p);
  void set_bandwidth_factor(double factor);
  /// Late join: builds a brand-new receiver on the last shard (keeping the
  /// contiguous global order) and returns its global index.
  std::size_t add_receiver();
  void detach_receiver(std::size_t r);
  [[nodiscard]] double instantaneous_consistency() const;
  [[nodiscard]] double repair_traffic() const;
  [[nodiscard]] double catch_up_latency(std::size_t r) const;
  [[nodiscard]] std::size_t receiver_count() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sst::core
