// sharded.hpp — the sharded conservative-lookahead event engine.
//
// run_sharded() executes ONE replication of an ExperimentConfig across
// cfg.shards worker threads plus a root executor, and returns a result that
// is bit-identical to run_experiment() on the single-queue engine for every
// supported configuration (the determinism ctest gates enforce this).
//
// Decomposition. The receivers are split into contiguous index blocks
// (sim::shard_bounds); each shard owns its receivers' tables, agents,
// forward-channel endpoints, feedback pipelines, and a per-shard
// ConsistencyMonitor, all driven by the shard's own Simulator. The root
// executor owns everything single-instance: publisher table, workload,
// sender, shared-loss stage, hostile forward stage. Time advances in
// lock-step epochs bounded by the conservative lookahead W (the minimum
// cross-shard channel latency): per epoch the root runs first, appending its
// externally-visible actions (publisher changes, channel transmissions,
// redundancy probes) to an epoch log, then every shard replays the log
// interleaved with its local events. Worker→root feedback (NACKs) crosses
// through per-shard mailboxes drained at the next barrier — safe because any
// NACK sent during epoch j arrives no earlier than the end of epoch j+1.
// See DESIGN.md, "Sharded engine" for the full protocol and the
// bit-identity argument.
#pragma once

#include <string>

#include "core/experiment.hpp"
#include "sim/units.hpp"

namespace sst::core {

/// True when `cfg` falls inside the sharded engine's envelope. On false,
/// `why` explains the fallback (human-readable, used by CLI warnings):
/// the pure-fluid backend has no event engine, an empty receiver set has
/// nothing to partition, and feedback needs a positive propagation delay
/// (the lookahead) over unicast NACK paths (multicast feedback couples all
/// receivers to every NACK with no lower latency bound).
bool sharded_supported(const ExperimentConfig& cfg, std::string& why);

/// The conservative lookahead W for `cfg`: the minimum latency of any
/// worker→root channel. Feedback runs use the one-way propagation delay
/// (every NACK spends at least `delay` on its channel; the rate-limited
/// uplink, hostile stages, and jitter only add). Without feedback there is
/// no worker→root edge at all, so W is infinite and epochs stretch between
/// "special" instants (warm-up cutoff, sample points, end of run).
[[nodiscard]] sim::Duration sharded_lookahead(const ExperimentConfig& cfg);

/// Runs one replication of `cfg` on the sharded engine, using
/// min(cfg.shards, cfg.num_receivers) worker threads. Precondition:
/// sharded_supported(cfg). Bit-identical to the single-queue engine for any
/// shard count, up to ties at exactly equal event times (measure-zero for
/// the continuous-time workloads; the tie policy is documented in
/// DESIGN.md).
ExperimentResult run_sharded(const ExperimentConfig& cfg);

}  // namespace sst::core
