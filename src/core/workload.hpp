// workload.hpp — the publisher's update process (paper Section 2).
//
// "An update process at the publisher adds records to its table. Each record
// is also associated with a lifetime after which the publisher ceases to
// announce it." The analysis approximates expiry with an i.i.d.
// per-transmission death probability p_d; the simulations support both that
// approximation (death drawn by the protocol after each service) and real
// lifetime-driven expiry (exponential, fixed, or Pareto), so the
// approximation itself is testable.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/table.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "sim/units.hpp"

namespace sst::core {

/// How records leave the live set.
enum class DeathMode : std::uint8_t {
  /// The transmitting protocol draws death with probability p_death after
  /// each service — the queueing model's process (Table 1).
  kPerTransmission,
  /// Each record lives an exponential time with the given mean, then the
  /// workload removes it.
  kExponentialLifetime,
  /// Fixed lifetime (session-directory style: the conference has a known
  /// duration).
  kFixedLifetime,
  /// Heavy-tailed Pareto lifetime (shape 1.5), mean as configured.
  kParetoLifetime,
};

/// Parameters of the synthetic publisher workload.
struct WorkloadParams {
  /// New-record (insert) rate, records/sec, Poisson. The paper expresses
  /// lambda in kbps; divide by record size to get this (helpers below).
  double insert_rate = 1.0;

  /// In-place value-update rate over the whole live set, updates/sec,
  /// Poisson; each update picks a uniformly random live key. 0 disables.
  double update_rate = 0.0;

  DeathMode death_mode = DeathMode::kPerTransmission;

  /// Per-transmission death probability (kPerTransmission mode).
  double p_death = 0.1;

  /// Mean lifetime in seconds (lifetime modes).
  sim::Duration mean_lifetime = 60.0;

  /// Announcement wire size per record.
  sim::Bytes record_size = 1000;

  /// Payload bytes attached to each record (0 keeps records abstract).
  sim::Bytes payload_size = 0;
};

/// Converts the paper's "lambda = X kbps" workload spec into an insert rate
/// in records/sec for `record_size`-byte announcements.
constexpr double insert_rate_from_kbps(double lambda_kbps,
                                       sim::Bytes record_size) {
  return sim::kbps(lambda_kbps) / sim::bits(record_size);
}

/// Sensor-style workload profile: a slowly-churning population of long-lived
/// sensors (exponential lifetimes, mean 10 minutes, ~0.2 joins/sec for a
/// ~120-sensor steady-state live set) each emitting tiny frequent value
/// updates — 64-byte records with the whole `lambda_kbps` update budget
/// spread uniformly over the live set. The inverse of the session-directory
/// shape (few large rarely-changing announcements): announcement overhead
/// dominates payload, and the hot queue sees high fan-in of small updates.
WorkloadParams sensor_workload(double lambda_kbps);

/// Drives a PublisherTable with Poisson inserts, optional Poisson updates,
/// and lifetime-driven removals. Deterministic given its Rng.
class Workload {
 public:
  Workload(sim::Simulator& sim, PublisherTable& table, WorkloadParams params,
           sim::Rng rng);

  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;

  /// Begins generating events (first arrival after one exponential gap).
  void start();

  /// Stops generating new arrivals; scheduled lifetimes still run out.
  void stop();

  [[nodiscard]] const WorkloadParams& params() const { return params_; }

  /// Per-transmission death draw for protocols in kPerTransmission mode.
  /// Returns true if the record dies after this service.
  bool draw_death() { return rng_.bernoulli(params_.p_death); }

  /// True when the protocol (not the workload) owns record death.
  [[nodiscard]] bool protocol_owns_death() const {
    return params_.death_mode == DeathMode::kPerTransmission;
  }

  /// Keys inserted so far.
  [[nodiscard]] std::uint64_t inserts() const { return inserts_; }
  [[nodiscard]] std::uint64_t updates() const { return updates_; }

 private:
  void schedule_insert();
  void schedule_update();
  void do_insert();
  void do_update();
  [[nodiscard]] sim::Duration draw_lifetime();
  std::vector<std::uint8_t> make_payload();

  sim::Simulator* sim_;
  PublisherTable* table_;
  WorkloadParams params_;
  sim::Rng rng_;
  sim::Timer insert_timer_;
  sim::Timer update_timer_;
  bool running_ = false;
  std::uint64_t inserts_ = 0;
  std::uint64_t updates_ = 0;
  std::vector<Key> live_keys_;  // for uniform update sampling
  std::unordered_map<Key, std::size_t> key_pos_;
};

}  // namespace sst::core
