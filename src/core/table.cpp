#include "core/table.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace sst::core {

// ---------------------------------------------------------------- publisher

Key PublisherTable::insert(std::vector<std::uint8_t> value, sim::Bytes size) {
  const Key key = next_key_++;
  Record rec;
  rec.key = key;
  rec.version = 1;
  rec.value = std::move(value);
  rec.size = size;
  auto [it, ok] = records_.emplace(key, std::move(rec));
  notify(it->second, ChangeKind::kInsert);
  return key;
}

bool PublisherTable::update(Key key, std::vector<std::uint8_t> value) {
  const auto it = records_.find(key);
  if (it == records_.end()) return false;
  it->second.value = std::move(value);
  ++it->second.version;
  notify(it->second, ChangeKind::kUpdate);
  return true;
}

bool PublisherTable::remove(Key key) {
  const auto it = records_.find(key);
  if (it == records_.end()) return false;
  Record rec = std::move(it->second);
  records_.erase(it);
  notify(rec, ChangeKind::kRemove);
  return true;
}

const Record* PublisherTable::find(Key key) const {
  const auto it = records_.find(key);
  return it == records_.end() ? nullptr : &it->second;
}

void PublisherTable::for_each(
    const std::function<void(const Record&)>& fn) const {
  // Visit in key order: hash-order iteration here would leak the bucket
  // layout into ARQ snapshot transmission order (arq::Sender uses for_each
  // to enumerate the outgoing snapshot), breaking run-to-run determinism.
  std::vector<Key> keys;
  keys.reserve(records_.size());
  for (const auto& [key, rec] : records_)
    keys.push_back(key);  // key snapshot only; sorted before use below
  std::sort(keys.begin(), keys.end());
  for (const Key key : keys) fn(records_.find(key)->second);
}

void PublisherTable::notify(const Record& rec, ChangeKind kind) {
  for (const auto& fn : listeners_) fn(rec, kind);
}

// ----------------------------------------------------------------- receiver

ReceiverTable::~ReceiverTable() {
  // Cancellation only marks tombstones in the event queue; no callback or
  // output depends on the order, so hash-order iteration is harmless here.
  for (auto& [key, e] : entries_) {  // sstlint: allow(unordered-iter)
    if (e.expiry_event != sim::kNoEvent) sim_->cancel(e.expiry_event);
  }
}

void ReceiverTable::refresh(Key key, Version version) {
  auto [it, was_new] = entries_.try_emplace(key);
  Entry& e = it->second;
  const bool version_changed = was_new || version > e.version;
  if (version_changed) e.version = version;
  if (adaptive_) e.interval.on_refresh(sim_->now());
  e.refreshed_at = sim_->now();
  arm_expiry(key, e);
  for (const auto& fn : refresh_fns_) fn(key, e.version, was_new,
                                         version_changed);
}

void ReceiverTable::remove(Key key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return;
  if (it->second.expiry_event != sim::kNoEvent) {
    sim_->cancel(it->second.expiry_event);
  }
  const Version version = it->second.version;
  entries_.erase(it);
  notify_expire(key, version);
}

void ReceiverTable::clear() {
  // Snapshot the keys first: removal notifies listeners that may look the
  // table up. Sort the snapshot so the expiry notifications fan out in key
  // order, not hash order.
  std::vector<Key> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, e] : entries_)
    keys.push_back(key);  // key snapshot only; sorted before use below
  std::sort(keys.begin(), keys.end());
  for (const Key key : keys) remove(key);
}

const ReceiverTable::Entry* ReceiverTable::find(Key key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void ReceiverTable::arm_expiry(Key key, Entry& e) {
  if (e.expiry_event != sim::kNoEvent) sim_->cancel(e.expiry_event);
  const sim::Duration ttl = adaptive_ ? adaptive_->ttl_for(e.interval) : ttl_;
  if (ttl <= 0) {
    e.expiry_event = sim::kNoEvent;
    e.armed_ttl = 0;
    return;
  }
  e.armed_ttl = ttl;
  e.expiry_event = sim_->after(ttl, [this, key] { expire(key); });
}

sim::Duration ReceiverTable::current_ttl(Key key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? 0.0 : it->second.armed_ttl;
}

void ReceiverTable::expire(Key key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return;
  const Version version = it->second.version;
  // The firing event is already consumed; no cancel needed.
  entries_.erase(it);
  notify_expire(key, version);
}

void ReceiverTable::notify_expire(Key key, Version version) {
  for (const auto& fn : expire_fns_) fn(key, version);
}

}  // namespace sst::core
