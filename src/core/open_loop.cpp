#include "core/open_loop.hpp"

namespace sst::core {

OpenLoopSender::OpenLoopSender(sim::Simulator& sim, PublisherTable& table,
                               Workload& workload, sim::Rate mu_ch,
                               std::function<void(const DataMsg&)> transmit)
    : sim_(&sim),
      table_(&table),
      workload_(&workload),
      mu_ch_(mu_ch),
      transmit_(std::move(transmit)),
      service_timer_(sim) {
  table_->subscribe([this](const Record& rec, ChangeKind kind) {
    switch (kind) {
      case ChangeKind::kInsert:
        enqueue(rec.key);
        break;
      case ChangeKind::kUpdate:
        // Open-loop treats updates like any other pending data: the record is
        // already cycling in the queue and the next visit transmits the
        // current version. If it is somehow absent (removed by an external
        // actor and re-added), re-enqueue.
        enqueue(rec.key);
        break;
      case ChangeKind::kRemove:
        // Lazy: the queue entry is skipped when it reaches the head.
        queued_.erase(rec.key);
        break;
    }
  });
}

void OpenLoopSender::enqueue(Key key) {
  if (queued_.contains(key)) return;
  queued_.insert(key);
  queue_.push_back(key);
  maybe_start_service();
}

void OpenLoopSender::pause() {
  if (paused_) return;
  paused_ = true;
  if (busy_) {
    // The packet in service is lost with the crash; restore its record to
    // the head of the cycle (unless it died while in service).
    service_timer_.cancel();
    busy_ = false;
    if (queued_.contains(in_service_key_)) {
      queue_.push_front(in_service_key_);
    }
  }
}

void OpenLoopSender::resume() {
  if (!paused_) return;
  paused_ = false;
  maybe_start_service();
}

void OpenLoopSender::maybe_start_service() {
  if (busy_ || paused_) return;
  // Drop dead heads lazily.
  while (!queue_.empty() && !queued_.contains(queue_.front())) {
    queue_.pop_front();
  }
  if (queue_.empty()) return;

  const Key key = queue_.front();
  queue_.pop_front();
  const Record* rec = table_->find(key);
  if (rec == nullptr) {
    queued_.erase(key);
    maybe_start_service();
    return;
  }
  busy_ = true;
  in_service_key_ = key;
  const sim::Duration service = sim::transmission_time(rec->size, mu_ch_);
  service_timer_.arm(service, [this, key] { complete_service(key); });
}

void OpenLoopSender::complete_service(Key key) {
  busy_ = false;
  const Record* rec = table_->find(key);
  if (rec == nullptr) {
    // Died (lifetime expiry) while in service; bandwidth spent, nothing sent.
    queued_.erase(key);
    maybe_start_service();
    return;
  }

  DataMsg msg;
  msg.seq = next_seq_++;
  msg.key = rec->key;
  msg.version = rec->version;
  msg.size = rec->size;
  msg.sent_at = sim_->now();
  transmit_(msg);
  ++stats_.data_tx;
  for (const auto& fn : observers_) fn(msg);

  // Post-service death draw (Table 1's exit probability p_d), only in
  // per-transmission mode; in lifetime modes the workload removes records.
  if (workload_->protocol_owns_death() && workload_->draw_death()) {
    ++stats_.deaths;
    queued_.erase(key);
    table_->remove(key);
  } else {
    // Re-enter at the tail: the open-loop cycle.
    queue_.push_back(key);
  }
  maybe_start_service();
}

}  // namespace sst::core
