// sharded.cpp — the sharded conservative-lookahead engine (see sharded.hpp).
//
// Bit-identity ground rules, mirrored from the single-queue engine:
//   * Every RNG stream is root_.fork(tag, index) with the SAME tags and
//     indices as Experiment — fork() is pure, so WHERE a stream is consumed
//     (root or shard) never changes its draws.
//   * Shards own contiguous receiver blocks, so visiting shards in index
//     order visits receivers in global index order; every cross-shard
//     reduction below (integral sums, latency merge, byte totals) walks that
//     order, reproducing the single monitor's arithmetic term for term.
//   * The root's epoch log replays publisher changes, transmissions, and
//     overheard group NACKs into each shard at the exact times the single
//     engine processed them; the fence/run_until recipe parks every clock
//     exactly on each boundary, so timestamped bookkeeping (TimeAverage
//     rectangles, reset times) rounds identically.
//   * Multicast feedback routes through a root-hosted group channel: shard
//     uplinks cross the mailbox lane, the coordinator replays each send on
//     the group at its exact send instant (a dedicated carrier clock), and
//     the overheard copies come back to the owning shards through the epoch
//     log — same streams, same draw order, same arithmetic as the single
//     engine's shared group.
//   * Fault hooks (crash, partition, churn, bandwidth) run in coordinator
//     context at fence-snapped barrier instants, where every clock is parked
//     exactly at the hook time — the same state the single engine exposes —
//     and dynamic membership mirrors the monitor's segmented E[c]
//     accumulator at the global level (g_closed_/g_ckpt_ below).
#include "core/sharded.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "check/annotate.hpp"
#include "check/check.hpp"
#include "core/receiver.hpp"
#include "core/rig_build.hpp"
#include "net/loss.hpp"
#include "sim/shard.hpp"
#include "stats/compensated.hpp"
#include "stats/histogram.hpp"

namespace sst::core {

namespace {

/// One externally-visible root action, replayed by every shard in log order.
struct RootEvent {
  enum class Kind : std::uint8_t {
    kChange,  // publisher table change (monitor mirror + oracle removal)
    kData,    // transmission entering the forward data channel
    kProbe,   // redundancy oracle probe at sender transmit time
    kNack,    // group NACK overheard by one receiver (multicast damping)
  };

  Kind kind = Kind::kChange;
  sim::SimTime time = 0.0;
  Record rec;                             // kChange payload
  ChangeKind change = ChangeKind::kInsert;
  DataMsg msg;                            // kData / kProbe payload
  sim::Bytes size = 0;                    // kData wire size
  NackMsg nack;                           // kNack payload
  std::size_t nack_rec = 0;               // kNack: observing receiver (global)
};

/// One receiver's worth of shard-local protocol state (the sharded analogue
/// of Experiment::ReceiverRig, including the fault-injection hooks: the
/// switch pointers are flipped by the coordinator at barrier instants).
struct ShardRig {
  std::unique_ptr<ReceiverTable> table;
  std::unique_ptr<ReceiverAgent> agent;
  std::unique_ptr<net::Channel<NackMsg>> fb_channel;  // unicast feedback
  std::unique_ptr<net::Link<NackMsg>> fb_link;
  std::unique_ptr<net::HostileChannel<NackMsg>> fb_hostile;
  // Fault surface (mirrors ReceiverRig): loss switches on the forward,
  // unicast-reverse, and multicast-observe paths, plus membership state.
  net::SwitchableLoss* fwd_switch = nullptr;
  net::SwitchableLoss* rev_switch = nullptr;
  net::SwitchableLoss* observe_switch = nullptr;
  std::size_t mcast_ep = 0;   // observe endpoint on the root-hosted group
  bool has_mcast_ep = false;
  bool partitioned = false;
  bool active = true;
};

/// Everything one worker thread owns. Heap-allocated so addresses captured
/// by protocol lambdas (mailbox, channels) survive container growth.
///
/// Every member except the mailbox is SST_SHARD_LOCAL: touched by the
/// owning worker during its epoch phase, and by the coordinator between
/// barriers (reductions, warm reset, fault hooks), which adopts the shard
/// role wholesale while the workers are parked. The mailbox carries its own
/// role-split producer/consumer contract (sim::SpscMailbox), so it stays
/// unguarded here — its methods are the capability boundary.
struct Shard {
  Shard() : monitor(sim), data(sim) {}

  sim::Simulator sim SST_SHARD_LOCAL;
  ConsistencyMonitor monitor SST_SHARD_LOCAL;  // fed by the epoch log
  net::Channel<DataMsg> data SST_SHARD_LOCAL;  // shard's data-channel slice
  std::vector<ShardRig> rigs SST_SHARD_LOCAL;  // local order == global order
  sim::SpscMailbox<NackMsg> mailbox;  // worker -> root NACK lane (role-split)
  std::vector<std::uint8_t> probe_holds SST_SHARD_LOCAL;  // local AND verdicts
  std::size_t log_cursor SST_SHARD_LOCAL = 0;
  std::uint64_t audit_tick SST_SHARD_LOCAL = 0;  // SST_CHECK cadence counter
  // First global receiver index this shard owns (immutable: late joins
  // append to the LAST shard's tail, so global == base + local throughout).
  std::size_t base = 0;
};

class ShardedEngine {
 public:
  ShardedEngine(const ExperimentConfig& cfg,
                std::vector<double> extra_specials);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  ExperimentResult run(ShardedRunStats* stats);

  /// The root executor's event queue (where fault timelines are armed).
  [[nodiscard]] sim::Simulator& simulator() { return rsim_; }

  void set_warmup_hook(std::function<void()> hook) {
    warmup_hook_ = std::move(hook);
  }

  // Fault surface, mirroring core::Experiment's. Coordinator context only:
  // between barriers (fault hooks fire at fence-snapped instants on rsim_,
  // or before/after run()), where the caller holds the root role and — with
  // every worker parked — the shard role too.
  void crash_sender() SST_REQUIRES_COORDINATOR;
  void restart_sender() SST_REQUIRES_COORDINATOR;
  void set_partition(std::size_t r, bool down) SST_REQUIRES_COORDINATOR;
  void set_partition_all(bool down) SST_REQUIRES_COORDINATOR;
  void set_extra_loss(std::size_t r, double p) SST_REQUIRES_COORDINATOR;
  void set_extra_loss_all(double p) SST_REQUIRES_COORDINATOR;
  void set_bandwidth_factor(double factor) SST_REQUIRES_COORDINATOR;
  std::size_t add_receiver() SST_REQUIRES_COORDINATOR;
  void detach_receiver(std::size_t r) SST_REQUIRES_COORDINATOR;
  [[nodiscard]] double instantaneous_consistency() const
      SST_REQUIRES_COORDINATOR;
  [[nodiscard]] double repair_traffic() const SST_REQUIRES_COORDINATOR;
  [[nodiscard]] double catch_up_latency(std::size_t r) const
      SST_REQUIRES_COORDINATOR;
  [[nodiscard]] std::size_t receiver_count() const SST_REQUIRES_COORDINATOR;

 private:
  /// What the workers read each epoch (published before the start barrier).
  struct EpochPlan {
    double fence = 0.0;
    double run_to = 0.0;
    std::size_t log_end = 0;
  };

  // Ownership capability map (see check/annotate.hpp and DESIGN.md): the
  // constructor runs before any worker thread exists (analysis-exempt);
  // afterwards every method declares the role(s) it runs under. Root-side
  // methods that reduce or mutate shard state additionally require the
  // shard role — the coordinator adopts it between barriers, while the
  // workers are parked.
  void build_rig(Shard& sh, std::size_t r);
  void root_transmit(const DataMsg& msg) SST_REQUIRES_ROOT SST_REQUIRES_FENCE;
  void append_data(const DataMsg& msg, sim::Bytes size) SST_REQUIRES_ROOT
      SST_REQUIRES_FENCE;
  void append_probe(const DataMsg& msg) SST_REQUIRES_ROOT SST_REQUIRES_FENCE;
  void drain_nacks() SST_REQUIRES_ROOT;
  void worker_epoch(std::size_t s) SST_REQUIRES_SHARD
      SST_REQUIRES_FENCE_SHARED;
  void warm_reset() SST_REQUIRES_ROOT SST_REQUIRES_SHARD;
  [[nodiscard]] const SenderStats& sender_stats() const SST_REQUIRES_ROOT;
  // Segmented global E[c] mirror (the single monitor's closed_/ckpt/seg_start
  // machinery lifted to the cross-shard reduction): ∫c dt over the OPEN
  // segment, the closed+open total, and the segment close performed at every
  // membership change, where the active count jumps.
  double open_global_integral(double now) SST_REQUIRES_ROOT
      SST_REQUIRES_SHARD;
  double global_consistency_integral(double now) SST_REQUIRES_ROOT
      SST_REQUIRES_SHARD;
  void close_global_segment(double now) SST_REQUIRES_ROOT SST_REQUIRES_SHARD;
  [[nodiscard]] double global_instantaneous() const SST_REQUIRES_ROOT
      SST_REQUIRES_SHARD;
  ExperimentResult collect(double end) SST_REQUIRES_ROOT SST_REQUIRES_SHARD;

  // Immutable after construction: readable from any role without a guard.
  ExperimentConfig cfg_;
  sim::Rng root_;  // stream forking (construction and late joins)
  bool feedback_ = false;
  double nack_loss_ = 0.0;

  PublisherTable pub_ SST_ROOT_ONLY;
  sim::Simulator rsim_ SST_ROOT_ONLY;  // the root executor's event queue
  std::unique_ptr<Workload> workload_ SST_ROOT_ONLY;
  std::unique_ptr<net::HostileChannel<DataMsg>> fwd_hostile_ SST_ROOT_ONLY;

  // Multicast feedback group, root-hosted. The carrier simulator exists only
  // to hold the group's clock at each replayed send instant (it never runs
  // events); declared before the channel so the channel, which references
  // it, is destroyed first.
  sim::Simulator gsim_ SST_ROOT_ONLY;
  std::unique_ptr<net::Channel<NackMsg>> mcast_fb_ SST_ROOT_ONLY;

  // The vector itself is frozen after construction (stable topology); the
  // pointed-to Shard state carries its own member-level guards.
  std::vector<std::unique_ptr<Shard>> shards_;

  // Global receiver index -> (shard, local rig index). Grows on late joins,
  // which append to the LAST shard so global order stays contiguous.
  std::vector<std::pair<std::size_t, std::size_t>> locate_ SST_ROOT_ONLY;

  std::unique_ptr<OpenLoopSender> ol_sender_ SST_ROOT_ONLY;
  std::unique_ptr<TwoQueueSender> tq_sender_ SST_ROOT_ONLY;

  sim::Rng shared_rng_ SST_ROOT_ONLY;
  std::uint64_t shared_drops_ SST_ROOT_ONLY = 0;
  // Root-side mirror of the single engine's aggregate channel byte counter:
  // accumulated with the same plain += in the same send order.
  double data_bytes_ SST_ROOT_ONLY = 0.0;

  // Epoch inputs: written by the root between barriers (exclusive fence),
  // read by every worker during an epoch (shared fence) — the annotations
  // prove workers never WRITE the log.
  std::vector<RootEvent> log_ SST_EPOCH_SHARED;
  EpochPlan plan_ SST_EPOCH_SHARED;
  std::vector<double> probe_times_ SST_ROOT_ONLY;  // probe i's transmit time

  // Fence-snap requests from the fault driver: every instant a hook may
  // fire. Filtered to (0, end] and merged into the special set by run().
  std::vector<double> extra_specials_ SST_ROOT_ONLY;
  std::function<void()> warmup_hook_ SST_ROOT_ONLY;

  std::unique_ptr<analysis::FluidIntegrator> fluid_ SST_ROOT_ONLY;
  double fluid_m_ = 0.0;  // frozen after construction

  // Warm-up baselines (subtracted at collection), captured at the warm-up
  // barrier exactly as the single engine captures them after run_warmup().
  bool warmed_ SST_ROOT_ONLY = false;
  SenderStats warm_sender_ SST_ROOT_ONLY;
  std::uint64_t warm_nacks_sent_ SST_ROOT_ONLY = 0;
  std::uint64_t warm_delivered_ SST_ROOT_ONLY = 0;
  std::uint64_t warm_dropped_ SST_ROOT_ONLY = 0;
  double warm_fb_bytes_ SST_ROOT_ONLY = 0.0;
  double warm_data_bytes_ SST_ROOT_ONLY = 0.0;

  // Segmented global E[c] accumulator, mirroring ConsistencyMonitor's
  // closed_/ckpt/seg_start_ machinery across shards: g_closed_ holds ∫c dt
  // over finished segments (membership constant within each), the open
  // segment is reduced from the per-shard raw integrals minus their
  // checkpoints. With static membership every checkpoint stays 0.0 and
  // g_closed_ stays empty, so the reduction is bit-for-bit the pre-fault
  // engine's (x - 0.0 == x; the divide happens AFTER the compensated sum,
  // exactly as in the monitor).
  stats::CompensatedSum g_closed_ SST_ROOT_ONLY;
  std::vector<double> g_ckpt_ SST_ROOT_ONLY;  // by global receiver index
  double g_seg_start_ SST_ROOT_ONLY = 0.0;
  std::size_t g_active_ SST_ROOT_ONLY = 0;

  double last_integral_ SST_ROOT_ONLY = 0.0;
  ExperimentResult result_ SST_ROOT_ONLY;

  // Cross-shard NACK merge scratch (reused every epoch).
  struct PendingNack {
    double due = 0.0;
    std::size_t shard = 0;
    std::uint64_t seq = 0;
    NackMsg nack;
  };
  std::vector<sim::SpscMailbox<NackMsg>::Stamped> scratch_ SST_ROOT_ONLY;
  std::vector<PendingNack> batch_ SST_ROOT_ONLY;
};

ShardedEngine::ShardedEngine(const ExperimentConfig& cfg,
                             std::vector<double> extra_specials)
    : cfg_(cfg),
      root_(cfg_.seed),
      feedback_(cfg_.variant == Variant::kFeedback),
      nack_loss_(cfg_.nack_loss_rate < 0 ? cfg_.loss_rate
                                         : cfg_.nack_loss_rate),
      shared_rng_(root_.fork("shared-loss")),
      extra_specials_(std::move(extra_specials)) {
  // The epoch-log appender takes the monitor's subscription slot (first):
  // shards replay each change into their monitors before anything else
  // reacts, preserving the single engine's listener order.
  pub_.subscribe([this](const Record& rec, ChangeKind kind) {
    // Publisher changes fire on the root simulator between barriers (the
    // workload runs there), where the coordinator holds the epoch fence
    // exclusively — the only writer of log_.
    check::root_role.assert_held();
    check::epoch_fence.assert_held();
    RootEvent e;
    e.kind = RootEvent::Kind::kChange;
    e.time = rsim_.now();
    e.rec = rec;
    e.change = kind;
    log_.push_back(std::move(e));
  });
  workload_ = std::make_unique<Workload>(rsim_, pub_, cfg_.workload,
                                         root_.fork("workload"));

  if (cfg_.fwd_hostile.active()) {
    fwd_hostile_ = std::make_unique<net::HostileChannel<DataMsg>>(
        rsim_, cfg_.fwd_hostile, root_.fork("hostile-fwd"),
        [this](const DataMsg& msg, sim::Bytes size) {
          // Hostile-channel delivery runs on the root simulator between
          // barriers: root role + exclusive fence, like every root event.
          check::root_role.assert_held();
          check::epoch_fence.assert_held();
          append_data(msg, size);
        });
  }

  // Multicast feedback: the shared group lives on the root side (every
  // receiver couples through it), carried by gsim_ so each replayed send
  // draws its per-endpoint loss and delay at the exact instant the single
  // engine's group->send did. Endpoint 0 is the sender, as in Experiment;
  // the per-receiver observe endpoints follow in build_rig order.
  if (feedback_ && cfg_.multicast_feedback) {
    mcast_fb_ = std::make_unique<net::Channel<NackMsg>>(gsim_);
    mcast_fb_->add_remote_receiver(
        rig::make_loss(cfg_, nack_loss_, root_.fork("nack-loss-sender"),
                       root_.fork("switch-nack-sender")),
        rig::make_delay(cfg_, root_.fork("nack-delay-sender")),
        [this](const NackMsg& nack, sim::SimTime arrival) {
          // Group replay runs on the coordinator between barriers
          // (drain_nacks): root role, sole writer of the root queue.
          check::root_role.assert_held();
          rsim_.at(arrival, [this, nack] {
            // Fires on the root simulator between barriers: root role +
            // exclusive fence, like every root event.
            check::root_role.assert_held();
            check::epoch_fence.assert_held();
            if (tq_sender_) tq_sender_->handle_nack(nack);
          });
        });
  }

  const std::size_t total = cfg_.num_receivers;
  const std::size_t shards =
      std::min(std::max<std::size_t>(cfg_.shards, 1), total);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    const auto [lo, hi] = sim::shard_bounds(s, total, shards);
    shards_.back()->base = lo;
    for (std::size_t r = lo; r < hi; ++r) {
      build_rig(*shards_.back(), r);
      locate_.emplace_back(s, shards_.back()->rigs.size() - 1);
    }
  }
  g_active_ = locate_.size();
  g_ckpt_.assign(locate_.size(), 0.0);

  // Sender transmit/probe hooks all fire on the root simulator between
  // barriers (the sender's service process lives there): root role +
  // exclusive fence, per the epoch protocol.
  if (cfg_.variant == Variant::kOpenLoop) {
    ol_sender_ = std::make_unique<OpenLoopSender>(
        rsim_, pub_, *workload_, cfg_.mu_data, [this](const DataMsg& msg) {
          check::root_role.assert_held();
          check::epoch_fence.assert_held();
          root_transmit(msg);
        });
    ol_sender_->on_transmit([this](const DataMsg& m) {
      check::root_role.assert_held();
      check::epoch_fence.assert_held();
      append_probe(m);
    });
  } else {
    TwoQueueConfig tq;
    tq.mu_data = cfg_.mu_data;
    tq.hot_share = cfg_.hot_share;
    tq.feedback = feedback_;
    tq_sender_ = std::make_unique<TwoQueueSender>(
        rsim_, pub_, *workload_, tq,
        rig::make_scheduler(cfg_.scheduler, root_.fork("sched")),
        [this](const DataMsg& msg) {
          check::root_role.assert_held();
          check::epoch_fence.assert_held();
          root_transmit(msg);
        });
    tq_sender_->on_transmit([this](const DataMsg& m) {
      check::root_role.assert_held();
      check::epoch_fence.assert_held();
      append_probe(m);
    });
  }

  if (cfg_.backend == Backend::kHybrid) {
    analysis::FluidParams fp = fluid_params_from(cfg_);
    fp.cohort = cfg_.fluid_cohort;
    fluid_m_ = cfg_.fluid_cohort;
    fluid_ = std::make_unique<analysis::FluidIntegrator>(fp);
  }

  workload_->start();
}

void ShardedEngine::build_rig(Shard& sh, std::size_t r) {
  // Single-owner phase: at construction no worker threads exist yet, and at
  // a late join the caller is the coordinator between barriers (workers
  // parked) — either way the calling thread owns every role at once.
  // Asserted (not REQUIRES'd) because the constructor is one of the
  // callers, and Clang exempts constructors from guarded_by checks —
  // functions called FROM it are not.
  check::root_role.assert_held();
  check::shard_role.assert_held();

  // Mirrors Experiment::add_receiver_rig with every stream forked under the
  // receiver's GLOBAL index r; components live on the shard's simulator,
  // except the feedback far ends: the unicast NACK channel's sender side is
  // a remote endpoint feeding the shard's mailbox, and the multicast
  // group's endpoints live on the root-hosted group (observe deliveries
  // return through the epoch log).
  ShardRig rig;
  rig.table = std::make_unique<ReceiverTable>(sh.sim, cfg_.receiver_ttl);
  sh.monitor.attach(*rig.table);

  if (feedback_ && !cfg_.multicast_feedback) {
    rig.fb_channel = std::make_unique<net::Channel<NackMsg>>(sh.sim);
    auto rev_loss =
        rig::make_loss(cfg_, nack_loss_, root_.fork("nack-loss", r),
                       root_.fork("switch-nack", r));
    rig.rev_switch = rev_loss.get();
    sim::SpscMailbox<NackMsg>* mailbox = &sh.mailbox;
    rig.fb_channel->add_remote_receiver(
        std::move(rev_loss),
        rig::make_delay(cfg_, root_.fork("nack-delay", r)),
        [mailbox](const NackMsg& nack, sim::SimTime arrival) {
          // The feedback channel lives on the shard's simulator, so this
          // delivery runs inside the owning worker's epoch phase — exactly
          // the producer side of the mailbox's SPSC contract.
          check::shard_role.assert_held();
          mailbox->push(arrival, nack);
        });
    net::Channel<NackMsg>* chan = rig.fb_channel.get();
    if (cfg_.fb_hostile.active()) {
      rig.fb_hostile = std::make_unique<net::HostileChannel<NackMsg>>(
          sh.sim, cfg_.fb_hostile, root_.fork("hostile-fb", r),
          [chan](const NackMsg& nack, sim::Bytes size) {
            chan->send(nack, size);
          });
    }
    net::HostileChannel<NackMsg>* hostile = rig.fb_hostile.get();
    rig.fb_link = std::make_unique<net::Link<NackMsg>>(
        sh.sim, cfg_.mu_fb,
        [chan, hostile](const NackMsg& nack, sim::Bytes size) {
          if (hostile != nullptr) {
            hostile->send(nack, size);
          } else {
            chan->send(nack, size);
          }
        },
        /*queue_limit=*/8);
  }

  ReceiverConfig rcfg = cfg_.receiver;
  rcfg.feedback = feedback_;
  if (cfg_.multicast_feedback) {
    // Uplink into the shared group: tag the NACK with its origin and cross
    // the mailbox lane; the coordinator replays the send on the root-hosted
    // group at this exact instant. Captures are by Shard pointer + local
    // index (the rigs vector reallocates on late joins; Shard is
    // heap-stable).
    Shard* shp = &sh;
    const std::size_t local = sh.rigs.size();
    const bool has_group = mcast_fb_ != nullptr;
    const auto origin = static_cast<std::uint32_t>(r + 1);
    if (cfg_.fb_hostile.active()) {
      // Each receiver's uplink into the shared group gets its own hostile
      // stage (independent streams), feeding the mailbox past it.
      rig.fb_hostile = std::make_unique<net::HostileChannel<NackMsg>>(
          sh.sim, cfg_.fb_hostile, root_.fork("hostile-fb", r),
          [shp](const NackMsg& nack, sim::Bytes size) {
            // Hostile delivery runs on the shard's simulator inside the
            // owning worker's epoch phase — the mailbox's producer side.
            check::shard_role.assert_held();
            // Hostile stages preserve the wire size (nack.size); the group
            // replay re-sends it from the payload.
            static_cast<void>(size);
            shp->mailbox.push(shp->sim.now(), nack);
          });
    }
    net::HostileChannel<NackMsg>* hostile = rig.fb_hostile.get();
    rig.agent = std::make_unique<ReceiverAgent>(
        sh.sim, *rig.table, rcfg,
        [shp, local, hostile, origin, has_group](const NackMsg& nack) {
          // Agent NACK emission runs on the shard's simulator inside the
          // owning worker's epoch phase — the mailbox's producer side.
          check::shard_role.assert_held();
          // A partitioned receiver's uplink is down too.
          if (!has_group || shp->rigs[local].partitioned) return;
          NackMsg tagged = nack;
          tagged.origin = origin;
          if (hostile != nullptr) {
            hostile->send(tagged, tagged.size);
          } else {
            shp->mailbox.push(shp->sim.now(), tagged);
          }
        },
        root_.fork("agent", r));
  } else {
    net::Link<NackMsg>* link = feedback_ ? rig.fb_link.get() : nullptr;
    rig.agent = std::make_unique<ReceiverAgent>(
        sh.sim, *rig.table, rcfg,
        [link](const NackMsg& nack) {
          if (link != nullptr) link->send(nack, nack.size);
        },
        root_.fork("agent", r));
  }

  const double fwd_loss = r < cfg_.receiver_loss_rates.size()
                              ? cfg_.receiver_loss_rates[r]
                              : cfg_.loss_rate;
  ReceiverAgent* agent = rig.agent.get();
  if (feedback_ && cfg_.multicast_feedback) {
    // This receiver also overhears the group's NACK traffic: a remote
    // endpoint on the root-hosted group draws the same loss and delay as
    // the single engine's local endpoint, then routes the overheard copy
    // back to the owning shard through the epoch log.
    const auto origin = static_cast<std::uint32_t>(r + 1);
    auto obs_loss = rig::make_loss(cfg_, nack_loss_,
                                   root_.fork("nack-observe-loss", r),
                                   root_.fork("switch-observe", r));
    rig.observe_switch = obs_loss.get();
    rig.mcast_ep = mcast_fb_->add_remote_receiver(
        std::move(obs_loss),
        rig::make_delay(cfg_, root_.fork("nack-observe-delay", r)),
        [this, origin, r](const NackMsg& nack, sim::SimTime arrival) {
          // Group replay runs on the coordinator between barriers
          // (drain_nacks): root role, sole writer of the root queue.
          check::root_role.assert_held();
          if (nack.origin == origin) return;
          rsim_.at(arrival, [this, nack, r] {
            // Fires on the root simulator between barriers, where the
            // coordinator holds the epoch fence exclusively (log writer).
            check::root_role.assert_held();
            check::epoch_fence.assert_held();
            RootEvent e;
            e.kind = RootEvent::Kind::kNack;
            e.time = rsim_.now();
            e.nack = nack;
            e.nack_rec = r;
            log_.push_back(std::move(e));
          });
        });
    rig.has_mcast_ep = true;
  }
  auto fwd = rig::make_loss(cfg_, fwd_loss, root_.fork("loss", r),
                            root_.fork("switch-loss", r));
  rig.fwd_switch = fwd.get();
  sh.data.add_receiver(std::move(fwd),
                       rig::make_delay(cfg_, root_.fork("delay", r)),
                       [agent](const DataMsg& msg) { agent->handle(msg); });

  sh.rigs.push_back(std::move(rig));
}

void ShardedEngine::root_transmit(const DataMsg& msg) {
  if (cfg_.shared_loss_rate > 0 &&
      shared_rng_.bernoulli(cfg_.shared_loss_rate)) {
    ++shared_drops_;
    return;
  }
  if (fwd_hostile_ != nullptr) {
    fwd_hostile_->send(msg, msg.size);
  } else {
    append_data(msg, msg.size);
  }
}

void ShardedEngine::append_data(const DataMsg& msg, sim::Bytes size) {
  data_bytes_ += size;
  RootEvent e;
  e.kind = RootEvent::Kind::kData;
  e.time = rsim_.now();
  e.msg = msg;
  e.size = size;
  log_.push_back(std::move(e));
}

void ShardedEngine::append_probe(const DataMsg& msg) {
  probe_times_.push_back(rsim_.now());
  RootEvent e;
  e.kind = RootEvent::Kind::kProbe;
  e.time = rsim_.now();
  e.msg = msg;
  log_.push_back(std::move(e));
}

void ShardedEngine::drain_nacks() {
  if (!feedback_) return;
  batch_.clear();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    scratch_.clear();
    shards_[s]->mailbox.drain(scratch_);
    for (auto& st : scratch_) {
      batch_.push_back(PendingNack{st.due, s, st.seq, std::move(st.payload)});
    }
  }
  if (batch_.empty()) return;
  // Deterministic cross-shard merge: due time, then shard, then the
  // producer's FIFO seq. Same-time entries across shards are common under
  // constant delays (phase-locked retry scanners), but the merge order at a
  // tie cannot leak: in the unicast lane TwoQueueSender defers same-instant
  // NACKs and applies them in canonical content order (see handle_nack),
  // and the multicast lane re-sorts same-due ties below.
  std::sort(batch_.begin(), batch_.end(),
            [](const PendingNack& a, const PendingNack& b) {
              if (a.due != b.due) return a.due < b.due;
              if (a.shard != b.shard) return a.shard < b.shard;
              return a.seq < b.seq;
            });
  if (mcast_fb_) {
    // Same-due sends must enter the group in the single engine's canonical
    // content order (Experiment::group_nack_send): every observe endpoint
    // consumes one loss/delay draw per NACK in group-entry order, so
    // (shard, seq) residue at an exact tie would hand those draws to
    // different packets than the single-queue run. Stable over the primary
    // sort: equal-content ties keep (shard, seq) order, and equal content
    // (origin included) makes them interchangeable.
    std::stable_sort(batch_.begin(), batch_.end(),
                     [](const PendingNack& a, const PendingNack& b) {
                       if (a.due != b.due) return a.due < b.due;
                       return nack_content_less(a.nack, b.nack);
                     });
#if SST_CHECK_ENABLED
    {
      // Conservative-horizon audit, multicast lane: `due` is the SEND
      // instant on the group, whose first influence is its earliest
      // arrival, due + delay. A first influence before the root clock
      // would mean an epoch outran the damping-aware lookahead.
      check::Violations v;
      for (const auto& p : batch_) {
        if (p.due + cfg_.delay < rsim_.now()) {
          v.push_back("group NACK sent at " + std::to_string(p.due) +
                      " influences before the root clock " +
                      std::to_string(rsim_.now()) +
                      " (conservative lookahead violated)");
        }
      }
      check::report("ShardedEngine", v);
    }
#endif
    for (auto& p : batch_) {
      // Replay the uplink send at its exact send instant: the carrier
      // clock parks at `due`, so every endpoint's loss and delay draws
      // happen in the same order, at the same times, as the single
      // engine's group->send.
      gsim_.advance_to(p.due);
      mcast_fb_->send(p.nack, p.nack.size);
    }
    return;
  }
#if SST_CHECK_ENABLED
  {
    // Conservative-horizon audit: a drained NACK due before the root's
    // clock would mean an epoch outran the lookahead bound.
    check::Violations v;
    for (const auto& p : batch_) {
      if (p.due < rsim_.now()) {
        v.push_back("NACK due " + std::to_string(p.due) +
                    " is before the root clock " +
                    std::to_string(rsim_.now()) +
                    " (conservative lookahead violated)");
      }
    }
    check::report("ShardedEngine", v);
  }
#endif
  TwoQueueSender* sender = tq_sender_.get();
  for (auto& p : batch_) {
    rsim_.at(p.due, [sender, nack = std::move(p.nack)] {
      sender->handle_nack(nack);
    });
  }
}

void ShardedEngine::worker_epoch(std::size_t s) {
  Shard& sh = *shards_[s];
  sim::Simulator& wsim = sh.sim;
  while (sh.log_cursor < plan_.log_end) {
    const RootEvent& e = log_[sh.log_cursor++];
    // Local events strictly before the entry run first; then the entry is
    // applied with the clock parked exactly at its timestamp (root-before-
    // local at equal times, matching the root's execution order).
    wsim.set_fence(e.time);
    wsim.run_until(e.time);
    switch (e.kind) {
      case RootEvent::Kind::kChange:
        sh.monitor.apply_publisher_change(e.rec, e.change);
        if (cfg_.oracle_remove && e.change == ChangeKind::kRemove) {
          for (auto& rg : sh.rigs) rg.table->remove(e.rec.key);
        }
        break;
      case RootEvent::Kind::kData:
        sh.data.send(e.msg, e.size);
        break;
      case RootEvent::Kind::kProbe: {
        bool held = true;
        for (const auto& rg : sh.rigs) {
          if (!rg.active) continue;  // detached receivers leave the oracle
          const auto* entry = rg.table->find(e.msg.key);
          if (entry == nullptr || entry->version < e.msg.version) {
            held = false;
            break;
          }
        }
        sh.probe_holds.push_back(held ? std::uint8_t{1} : std::uint8_t{0});
        break;
      }
      case RootEvent::Kind::kNack:
        // Overheard group NACK: only the owning shard applies it (a stopped
        // agent ignores it, matching the single engine's detach semantics).
        if (e.nack_rec >= sh.base && e.nack_rec - sh.base < sh.rigs.size()) {
          sh.rigs[e.nack_rec - sh.base].agent->observe_nack(e.nack);
        }
        break;
    }
  }
  wsim.set_fence(plan_.fence);
  wsim.run_until(plan_.run_to);
#if SST_CHECK_ENABLED
  if (check::due(sh.audit_tick, 16)) {
    check::Violations v;
    sh.mailbox.check_invariants(v);
    check::report("ShardedEngine", v);
  }
#endif
}

void ShardedEngine::warm_reset() {
  // The warm-up barrier parks every clock (root and shards) exactly at
  // cfg_.warmup, so each monitor's reset_stats() pins the same reset time
  // the single engine records.
  warmed_ = true;
  if (fluid_) {
    fluid_->advance(cfg_.warmup);
    fluid_->reset_stats();
  }
  for (auto& sh : shards_) sh->monitor.reset_stats();
  // Segmented-mirror restart: the per-shard monitors just reset their raw
  // integrals, so every checkpoint returns to zero and no segment is
  // closed — the same state the single monitor's reset_stats() leaves.
  g_closed_.reset();
  std::fill(g_ckpt_.begin(), g_ckpt_.end(), 0.0);
  g_seg_start_ = rsim_.now();
  warm_sender_ = sender_stats();
  warm_nacks_sent_ = 0;
  for (const auto& sh : shards_) {
    for (const auto& rg : sh->rigs) {
      warm_nacks_sent_ += rg.agent->stats().nacks_sent;
    }
  }
  warm_delivered_ = 0;
  warm_dropped_ = 0;
  for (const auto& sh : shards_) {
    warm_delivered_ += sh->data.stats().delivered;
    warm_dropped_ += sh->data.stats().dropped;
  }
  warm_fb_bytes_ = 0.0;
  for (const auto& sh : shards_) {
    for (const auto& rg : sh->rigs) {
      if (rg.fb_channel) warm_fb_bytes_ += rg.fb_channel->stats().bytes_sent;
    }
  }
  if (mcast_fb_) warm_fb_bytes_ += mcast_fb_->stats().bytes_sent;
  warm_data_bytes_ = data_bytes_;
}

const SenderStats& ShardedEngine::sender_stats() const {
  return ol_sender_ ? ol_sender_->stats() : tq_sender_->stats();
}

double ShardedEngine::open_global_integral(double now) {
  // ConsistencyMonitor::open_segment_integral() with the per-receiver
  // reduction spanning shards: advance everyone to `now`, then sum the
  // active receivers' (integral - checkpoint) terms in GLOBAL receiver
  // order with one CompensatedSum and divide AFTER the sum — the same
  // terms, same order, same rounding as the single monitor.
  for (auto& sh : shards_) sh->monitor.advance_all(now);
  if (g_active_ == 0) return now - g_seg_start_;  // c(t) = 1 with no receivers
  stats::CompensatedSum sum;
  for (const auto& sh : shards_) {
    for (std::size_t r = 0; r < sh->rigs.size(); ++r) {
      if (!sh->monitor.active(r)) continue;
      sum.add(sh->monitor.receiver_integral(r) - g_ckpt_[sh->base + r]);
    }
  }
  return sum.value() / static_cast<double>(g_active_);
}

double ShardedEngine::global_consistency_integral(double now) {
  // ConsistencyMonitor::consistency_integral(): finished segments plus the
  // open one.
  return g_closed_.value() + open_global_integral(now);
}

void ShardedEngine::close_global_segment(double now) {
  // ConsistencyMonitor::close_segment(): fold the open segment into the
  // closed accumulator and start a new one at `now`, re-checkpointing every
  // active receiver's raw integral. Called at every membership change,
  // where the active count jumps.
  g_closed_.add(open_global_integral(now));
  g_seg_start_ = now;
  for (const auto& sh : shards_) {
    for (std::size_t r = 0; r < sh->rigs.size(); ++r) {
      if (!sh->monitor.active(r)) continue;
      g_ckpt_[sh->base + r] = sh->monitor.receiver_integral(r);
    }
  }
}

double ShardedEngine::global_instantaneous() const {
  // ConsistencyMonitor::instantaneous() over the global receiver order.
  // Every shard mirrors the same live set; shard 0 always exists.
  if (shards_[0]->monitor.live_count() == 0) return 1.0;
  double sum = 0.0;
  for (const auto& sh : shards_) {
    for (std::size_t r = 0; r < sh->rigs.size(); ++r) {
      if (!sh->monitor.active(r)) continue;
      sum += sh->monitor.receiver_consistency(r);
    }
  }
  if (g_active_ == 0) return 1.0;
  return sum / static_cast<double>(g_active_);
}

ExperimentResult ShardedEngine::run(ShardedRunStats* stats) {
  // The coordinator thread drives the whole run. Between barriers it holds
  // the root role, the epoch fence EXCLUSIVELY (sole writer of log_/plan_),
  // and — because every worker is parked at the barrier — the shard role
  // for its cross-shard reductions. ShardCrew's barrier sandwich is the
  // protocol argument; TSan and the byte-identity matrix verify it.
  check::root_role.assert_held();
  check::shard_role.assert_held();
  check::epoch_fence.assert_held();

  if (stats != nullptr) *stats = ShardedRunStats{};

  const double end = cfg_.warmup + cfg_.duration;
  const sim::Duration lookahead = sharded_lookahead(cfg_);
  const bool bounded =
      lookahead > 0.0 &&
      lookahead < std::numeric_limits<sim::Duration>::infinity();

  // Sample instants, accumulated exactly as the single engine's
  // PeriodicTimer accumulates them: each fire time is the previous plus the
  // interval, starting from the warm-up cutoff.
  std::vector<double> samples;
  if (cfg_.sample_interval > 0) {
    for (double t = cfg_.warmup + cfg_.sample_interval; t <= end;
         t += cfg_.sample_interval) {
      samples.push_back(t);
    }
  }

  // Special instants the timetable must hit exactly: the warm-up cutoff,
  // every sample point, every fence-snap request from the fault driver, and
  // the end of the run. Duplicates (a fault instant on a sample tick, built
  // with the same float arithmetic) collapse.
  std::vector<sim::SimTime> specials = samples;
  if (cfg_.warmup > 0.0) specials.push_back(cfg_.warmup);
  for (const double t : extra_specials_) {
    if (t > 0.0 && t <= end) specials.push_back(t);
  }
  specials.push_back(end);
  std::sort(specials.begin(), specials.end());
  specials.erase(std::unique(specials.begin(), specials.end()),
                 specials.end());

  // Degenerate warm-up (warmup <= 0): reset baselines before any event runs,
  // like run_warmup() at time zero.
  if (!(cfg_.warmup > 0.0)) {
    warm_reset();
    if (warmup_hook_) warmup_hook_();
  }

  // Audited shard-worker capture: worker_epoch(s) reads the engine's
  // published epoch inputs (log_, plan_) and writes only shard s's own
  // state; the crew's two barrier crossings per epoch order every such
  // access against the coordinator (see ShardCrew's contract).
  sim::ShardCrew crew(shards_.size(), [this](std::size_t s) {  // sstlint: allow(shard-capture)
    // Worker-side epoch entry: inside its epoch phase the worker owns its
    // shard's state exclusively and reads the barrier-published epoch
    // inputs — the shard role plus a SHARED fence (workers never write
    // log_/plan_; the analysis rejects it).
    check::shard_role.assert_held();
    check::epoch_fence.assert_held_shared();
    worker_epoch(s);
  });

  // Dynamic timetable (idle-epoch skipping): instead of marching fixed
  // W-spaced barriers, reduce min(next pending event) across every queue at
  // each barrier and jump straight to min(next special, that floor + W) —
  // quiescent stretches cost one epoch instead of span/W of them.
  std::size_t next_sample = 0;
  std::size_t cursor = 0;
  double last = 0.0;
  while (last < end) {
    sim::SimTime tmin = std::numeric_limits<sim::SimTime>::infinity();
    if (bounded) {
      tmin = rsim_.next_event_time();
      for (const auto& sh : shards_) {
        tmin = std::min(tmin, sh->sim.next_event_time());
      }
    }
    const sim::EpochBoundary b = sim::next_epoch_boundary(
        last, end, cfg_.warmup, lookahead, tmin, specials, cursor);
#if SST_CHECK_ENABLED
    {
      check::Violations v;
      if (!(b.time > last)) {
        v.push_back("barrier at t=" + std::to_string(b.time) +
                    " not after its predecessor t=" + std::to_string(last) +
                    " (barrier monotonicity)");
      }
      // One ulp of slack, as in check_epoch_schedule: the horizon is built
      // by floating-point addition.
      if (bounded &&
          b.time - std::max(tmin, last) > lookahead * (1.0 + 1e-12)) {
        v.push_back("barrier at t=" + std::to_string(b.time) +
                    " outruns the conservative horizon " +
                    std::to_string(std::max(tmin, last) + lookahead));
      }
      check::report("ShardedEngine", v);
    }
#endif
    const double fence =
        b.inclusive
            ? std::nextafter(b.time, std::numeric_limits<double>::infinity())
            : b.time;
    rsim_.set_fence(fence);
    rsim_.run_until(b.time);
    plan_.fence = fence;
    plan_.run_to = b.time;
    plan_.log_end = log_.size();
    if (stats != nullptr) {
      // barrier_wait_seconds measures HOST time the coordinator spends in
      // the epoch barrier — a profiling counter, deliberately not simulated
      // time, and only read when the caller asked for stats. It never feeds
      // back into simulation state, so determinism is untouched.
      const auto t0 = std::chrono::steady_clock::now();  // sstlint: allow(wall-clock)
      crew.run_epoch();
      stats->barrier_wait_seconds +=
          std::chrono::duration<double>(
              std::chrono::steady_clock::now() - t0)  // sstlint: allow(wall-clock)
              .count();
    } else {
      crew.run_epoch();
    }
    // Every shard consumed the full log (the root never appends while the
    // workers run), so the epoch's entries can be recycled.
    log_.clear();
    for (auto& sh : shards_) sh->log_cursor = 0;
    // Drain at the epoch's bottom: nothing runs on rsim_ between here and
    // the next boundary's run_until, so the schedule-insertion order is the
    // top-of-next-epoch order the static engine used — and multicast group
    // sends falling at or before a warm-up/end fence hit the channel's byte
    // counters before the baselines/collection below read them, exactly as
    // the single engine's synchronous group->send does.
    drain_nacks();
    if (stats != nullptr) {
      ++stats->epochs_executed;
      if (bounded) {
        // What the static W-spaced schedule would have executed across this
        // span (1e-9 absorbs the repeated-addition rounding).
        const double span = b.time - last;
        const double static_epochs = std::ceil(span / lookahead - 1e-9);
        if (static_epochs > 1.0) {
          stats->epochs_skipped +=
              static_cast<std::uint64_t>(static_epochs) - 1;
        }
      }
    }
    if (!warmed_ && b.time == cfg_.warmup) {
      warm_reset();
      // The sharded mirror of "after run_warmup()": statistics just reset,
      // every clock parked exactly at the cutoff — where the fault driver
      // arms its timeline.
      if (warmup_hook_) warmup_hook_();
    }
    if (next_sample < samples.size() && b.time == samples[next_sample]) {
      ++next_sample;
      const double integral = global_consistency_integral(b.time);
      result_.timeline.push_back(TimelinePoint{
          b.time, (integral - last_integral_) / cfg_.sample_interval});
      last_integral_ = integral;
    }
    last = b.time;
  }
  if (!warmed_) {
    warm_reset();  // empty timetable (end <= 0): still collect
    if (warmup_hook_) warmup_hook_();
  }
  return collect(end);
}

ExperimentResult ShardedEngine::collect(double end) {
  if (end > cfg_.warmup) {
    result_.avg_consistency =
        global_consistency_integral(end) / (end - cfg_.warmup);
  } else {
    result_.avg_consistency = global_instantaneous();
  }
  if (fluid_) {
    fluid_->advance(end);
    // Population weight n mirrors monitor_.active_receivers(): churn moves
    // the blend the same way in both engines.
    const auto n = static_cast<double>(g_active_);
    const double cf = fluid_->average_consistency();
    result_.fluid_cohort = fluid_m_;
    result_.fluid_consistency = cf;
    result_.fluid_live = fluid_->live();
    result_.fluid_occupancy = fluid_->average_occupancy();
    if (fluid_m_ > 0.0) {
      result_.avg_consistency =
          (n * result_.avg_consistency + fluid_m_ * cf) / (n + fluid_m_);
    }
  }

  // Latency merge: receiver-major in global receiver order — the exact
  // insertion order the single monitor rebuilds, which the mean's
  // compensated accumulation depends on.
  stats::Samples lat;
  for (const auto& sh : shards_) {
    for (std::size_t r = 0; r < sh->rigs.size(); ++r) {
      for (const double x : sh->monitor.receiver_latency_samples(r)) {
        lat.add(x);
      }
    }
  }
  result_.mean_latency = lat.mean();  // before quantile(): mean is
  result_.p50_latency = lat.quantile(0.50);  // insertion-order sensitive
  result_.p95_latency = lat.quantile(0.95);

  const SenderStats s = sender_stats();
  result_.data_tx = s.data_tx - warm_sender_.data_tx;
  result_.hot_tx = s.hot_tx - warm_sender_.hot_tx;
  result_.cold_tx = s.cold_tx - warm_sender_.cold_tx;
  result_.repair_tx = s.repair_tx - warm_sender_.repair_tx;
  result_.nacks_received = s.nacks_received - warm_sender_.nacks_received;

  // Redundancy: probe i was redundant iff every shard's local AND held.
  // Warm-up probes are excluded by time, mirroring the counter reset.
#if SST_CHECK_ENABLED
  {
    check::Violations v;
    for (std::size_t si = 0; si < shards_.size(); ++si) {
      if (shards_[si]->probe_holds.size() != probe_times_.size()) {
        v.push_back("shard " + std::to_string(si) + " judged " +
                    std::to_string(shards_[si]->probe_holds.size()) +
                    " probes, root logged " +
                    std::to_string(probe_times_.size()));
      }
    }
    check::report("ShardedEngine", v);
  }
#endif
  std::uint64_t redundant = 0;
  for (std::size_t i = 0; i < probe_times_.size(); ++i) {
    if (!(probe_times_[i] > cfg_.warmup)) continue;
    bool all = true;
    for (const auto& sh : shards_) {
      if (sh->probe_holds[i] == 0) {
        all = false;
        break;
      }
    }
    if (all) ++redundant;
  }
  result_.redundant_tx = redundant;
  result_.redundant_fraction =
      result_.data_tx > 0
          ? static_cast<double>(result_.redundant_tx) /
                static_cast<double>(result_.data_tx)
          : 0.0;

  std::uint64_t nacks_sent = 0;
  std::uint64_t nacks_suppressed = 0;
  for (const auto& sh : shards_) {
    for (const auto& rg : sh->rigs) {
      nacks_sent += rg.agent->stats().nacks_sent;
      nacks_suppressed += rg.agent->stats().suppressed;
    }
  }
  result_.nacks_sent = nacks_sent - warm_nacks_sent_;
  result_.nacks_suppressed = nacks_suppressed;

  std::uint64_t delivered_total = 0;
  std::uint64_t dropped_total = 0;
  for (const auto& sh : shards_) {
    delivered_total += sh->data.stats().delivered;
    dropped_total += sh->data.stats().dropped;
  }
  const std::uint64_t delivered = delivered_total - warm_delivered_;
  const std::uint64_t dropped =
      dropped_total - warm_dropped_ + shared_drops_ * cfg_.num_receivers;
  result_.observed_loss =
      (delivered + dropped) > 0
          ? static_cast<double>(dropped) /
                static_cast<double>(delivered + dropped)
          : 0.0;

  double fb_bytes = 0.0;
  for (const auto& sh : shards_) {
    for (const auto& rg : sh->rigs) {
      if (rg.fb_channel) fb_bytes += rg.fb_channel->stats().bytes_sent;
    }
  }
  if (mcast_fb_) fb_bytes += mcast_fb_->stats().bytes_sent;
  result_.offered_fb_kbps =
      (fb_bytes - warm_fb_bytes_) * 8.0 / cfg_.duration / 1000.0;
  result_.offered_data_kbps =
      (data_bytes_ - warm_data_bytes_) * 8.0 / cfg_.duration / 1000.0;

  result_.inserts = workload_->inserts();
  result_.updates = workload_->updates();
  // Every shard replays every publisher change, so introductions are
  // counted identically everywhere; receipts are per-receiver, so they sum.
  result_.versions_introduced = shards_[0]->monitor.versions_introduced();
  std::uint64_t versions_received = 0;
  for (const auto& sh : shards_) {
    versions_received += sh->monitor.versions_received();
  }
  result_.versions_received = versions_received;

  result_.final_live = pub_.live_count();
  if (tq_sender_) {
    result_.final_hot_depth = tq_sender_->hot_depth();
    result_.final_cold_depth = tq_sender_->cold_depth();
  } else if (ol_sender_) {
    result_.final_hot_depth = ol_sender_->queue_depth();
  }
  return result_;
}

// --------------------------------------------------------- fault surface
// All of these mirror core::Experiment's methods line for line; the only
// sharded additions are the locate_ indirection and the global segment
// close at membership changes.

void ShardedEngine::crash_sender() {
  if (tq_sender_) {
    tq_sender_->pause();
  } else if (ol_sender_) {
    ol_sender_->pause();
  }
}

void ShardedEngine::restart_sender() {
  if (tq_sender_) {
    tq_sender_->resume();
  } else if (ol_sender_) {
    ol_sender_->resume();
  }
}

void ShardedEngine::set_partition(std::size_t r, bool down) {
  const auto [s, i] = locate_.at(r);
  ShardRig& rig = shards_[s]->rigs[i];
  rig.partitioned = down;
  if (rig.fwd_switch != nullptr) rig.fwd_switch->set_down(down);
  if (rig.rev_switch != nullptr) rig.rev_switch->set_down(down);
  if (rig.observe_switch != nullptr) rig.observe_switch->set_down(down);
}

void ShardedEngine::set_partition_all(bool down) {
  for (std::size_t r = 0; r < locate_.size(); ++r) {
    const auto [s, i] = locate_[r];
    if (shards_[s]->rigs[i].active) set_partition(r, down);
  }
}

void ShardedEngine::set_extra_loss(std::size_t r, double p) {
  const auto [s, i] = locate_.at(r);
  ShardRig& rig = shards_[s]->rigs[i];
  if (rig.fwd_switch != nullptr) rig.fwd_switch->set_extra_loss(p);
}

void ShardedEngine::set_extra_loss_all(double p) {
  for (std::size_t r = 0; r < locate_.size(); ++r) {
    const auto [s, i] = locate_[r];
    if (shards_[s]->rigs[i].active) set_extra_loss(r, p);
  }
}

void ShardedEngine::set_bandwidth_factor(double factor) {
  const sim::Rate mu = cfg_.mu_data * factor;
  if (tq_sender_) {
    tq_sender_->set_mu_data(mu);
  } else if (ol_sender_) {
    ol_sender_->set_mu_ch(mu);
  }
}

std::size_t ShardedEngine::add_receiver() {
  // The active count jumps: close the global segment first, over the
  // pre-join membership — the same order ConsistencyMonitor::attach uses.
  close_global_segment(rsim_.now());
  const std::size_t r = locate_.size();
  Shard& sh = *shards_.back();  // tail shard keeps global order contiguous
  build_rig(sh, r);
  locate_.emplace_back(shards_.size() - 1, sh.rigs.size() - 1);
  ++g_active_;
  g_ckpt_.push_back(0.0);  // the joiner's raw integral starts at zero
  return r;
}

void ShardedEngine::detach_receiver(std::size_t r) {
  const auto [s, i] = locate_.at(r);
  Shard& sh = *shards_[s];
  ShardRig& rig = sh.rigs[i];
  if (!rig.active) return;
  // Close over the pre-leave membership, then drop the receiver — the same
  // order ConsistencyMonitor::detach uses (its own shard-local close runs
  // inside detach(), at the same parked instant).
  close_global_segment(rsim_.now());
  rig.active = false;
  --g_active_;
  sh.monitor.detach(i);
  rig.agent->stop();
  sh.data.set_receiver_enabled(i, false);
  if (mcast_fb_ && rig.has_mcast_ep) {
    mcast_fb_->set_receiver_enabled(rig.mcast_ep, false);
  }
}

double ShardedEngine::instantaneous_consistency() const {
  return global_instantaneous();
}

double ShardedEngine::repair_traffic() const {
  const SenderStats& s = sender_stats();
  std::uint64_t nacks = 0;
  for (const auto& sh : shards_) {
    for (const auto& rg : sh->rigs) nacks += rg.agent->stats().nacks_sent;
  }
  double total = static_cast<double>(s.repair_tx + nacks);
  if (fluid_) total += fluid_->repair_traffic();
  return total;
}

double ShardedEngine::catch_up_latency(std::size_t r) const {
  const auto [s, i] = locate_.at(r);
  return shards_[s]->monitor.catch_up_latency(i);
}

std::size_t ShardedEngine::receiver_count() const { return locate_.size(); }

}  // namespace

struct ShardedExperiment::Impl {
  ShardedEngine engine;
  Impl(const ExperimentConfig& cfg, std::vector<double> barriers)
      : engine(cfg, std::move(barriers)) {}
};

ShardedExperiment::ShardedExperiment(const ExperimentConfig& cfg,
                                     std::vector<double> barrier_instants)
    : impl_(std::make_unique<Impl>(cfg, std::move(barrier_instants))) {}

ShardedExperiment::~ShardedExperiment() = default;

sim::Simulator& ShardedExperiment::simulator() {
  return impl_->engine.simulator();
}

void ShardedExperiment::set_warmup_hook(std::function<void()> hook) {
  impl_->engine.set_warmup_hook(std::move(hook));
}

ExperimentResult ShardedExperiment::run(ShardedRunStats* stats) {
  return impl_->engine.run(stats);
}

// The fault surface below asserts the coordinator pair at every entry: a
// hook fires at a fence-snapped barrier instant on the root simulator (or
// before run() starts / after it returns), where the calling thread is the
// root executor AND — with every worker parked at the barrier — the sole
// owner of all shard state. ShardCrew's barrier sandwich is the protocol
// argument; TSan and the byte-identity matrix verify it.

void ShardedExperiment::crash_sender() {
  // Coordinator context between barriers (see block comment above).
  check::root_role.assert_held();
  check::shard_role.assert_held();
  impl_->engine.crash_sender();
}

void ShardedExperiment::restart_sender() {
  // Coordinator context between barriers (see block comment above).
  check::root_role.assert_held();
  check::shard_role.assert_held();
  impl_->engine.restart_sender();
}

void ShardedExperiment::set_partition(std::size_t r, bool down) {
  // Coordinator context between barriers (see block comment above).
  check::root_role.assert_held();
  check::shard_role.assert_held();
  impl_->engine.set_partition(r, down);
}

void ShardedExperiment::set_partition_all(bool down) {
  // Coordinator context between barriers (see block comment above).
  check::root_role.assert_held();
  check::shard_role.assert_held();
  impl_->engine.set_partition_all(down);
}

void ShardedExperiment::set_extra_loss(std::size_t r, double p) {
  // Coordinator context between barriers (see block comment above).
  check::root_role.assert_held();
  check::shard_role.assert_held();
  impl_->engine.set_extra_loss(r, p);
}

void ShardedExperiment::set_extra_loss_all(double p) {
  // Coordinator context between barriers (see block comment above).
  check::root_role.assert_held();
  check::shard_role.assert_held();
  impl_->engine.set_extra_loss_all(p);
}

void ShardedExperiment::set_bandwidth_factor(double factor) {
  // Coordinator context between barriers (see block comment above).
  check::root_role.assert_held();
  check::shard_role.assert_held();
  impl_->engine.set_bandwidth_factor(factor);
}

std::size_t ShardedExperiment::add_receiver() {
  // Coordinator context between barriers (see block comment above).
  check::root_role.assert_held();
  check::shard_role.assert_held();
  return impl_->engine.add_receiver();
}

void ShardedExperiment::detach_receiver(std::size_t r) {
  // Coordinator context between barriers (see block comment above).
  check::root_role.assert_held();
  check::shard_role.assert_held();
  impl_->engine.detach_receiver(r);
}

double ShardedExperiment::instantaneous_consistency() const {
  // Coordinator context between barriers (see block comment above).
  check::root_role.assert_held();
  check::shard_role.assert_held();
  return impl_->engine.instantaneous_consistency();
}

double ShardedExperiment::repair_traffic() const {
  // Coordinator context between barriers (see block comment above).
  check::root_role.assert_held();
  check::shard_role.assert_held();
  return impl_->engine.repair_traffic();
}

double ShardedExperiment::catch_up_latency(std::size_t r) const {
  // Coordinator context between barriers (see block comment above).
  check::root_role.assert_held();
  check::shard_role.assert_held();
  return impl_->engine.catch_up_latency(r);
}

std::size_t ShardedExperiment::receiver_count() const {
  // Coordinator context between barriers (see block comment above).
  check::root_role.assert_held();
  check::shard_role.assert_held();
  return impl_->engine.receiver_count();
}

bool sharded_supported(const ExperimentConfig& cfg, std::string& why) {
  if (cfg.backend == Backend::kFluid) {
    why = "the pure-fluid backend has no event engine to shard";
    return false;
  }
  if (cfg.num_receivers == 0) {
    why = "no receivers to partition";
    return false;
  }
  if (cfg.variant == Variant::kFeedback && !(cfg.delay > 0.0)) {
    why = "feedback with zero propagation delay leaves no conservative "
          "lookahead";
    return false;
  }
  why.clear();
  return true;
}

sim::Duration sharded_lookahead(const ExperimentConfig& cfg) {
  // Damping-aware bound: a NACK spends at least `delay` on whichever
  // feedback path it takes (unicast reverse channel, or the multicast
  // group's per-endpoint delay — jitter and rate limits only add), and the
  // SRM slotting schedule holds its emission for at least the slot floor.
  // Multicast observation obeys the same bound, which is what lets the
  // overheard copies ride the epoch log.
  return cfg.variant == Variant::kFeedback
             ? cfg.delay + nack_slot_floor(cfg.receiver)
             : std::numeric_limits<sim::Duration>::infinity();
}

ExperimentResult run_sharded(const ExperimentConfig& cfg) {
  return run_sharded(cfg, nullptr);
}

ExperimentResult run_sharded(const ExperimentConfig& cfg,
                             ShardedRunStats* stats) {
  ShardedEngine engine(cfg, {});
  return engine.run(stats);
}

}  // namespace sst::core
