// sharded.cpp — the sharded conservative-lookahead engine (see sharded.hpp).
//
// Bit-identity ground rules, mirrored from the single-queue engine:
//   * Every RNG stream is root_.fork(tag, index) with the SAME tags and
//     indices as Experiment — fork() is pure, so WHERE a stream is consumed
//     (root or shard) never changes its draws.
//   * Shards own contiguous receiver blocks, so visiting shards in index
//     order visits receivers in global index order; every cross-shard
//     reduction below (integral sums, latency merge, byte totals) walks that
//     order, reproducing the single monitor's arithmetic term for term.
//   * The root's epoch log replays publisher changes and transmissions into
//     each shard at the exact times the single engine processed them; the
//     fence/run_until recipe parks every clock exactly on each boundary, so
//     timestamped bookkeeping (TimeAverage rectangles, reset times) rounds
//     identically.
#include "core/sharded.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "check/annotate.hpp"
#include "check/check.hpp"
#include "core/rig_build.hpp"
#include "sim/shard.hpp"
#include "stats/compensated.hpp"
#include "stats/histogram.hpp"

namespace sst::core {

namespace {

/// One externally-visible root action, replayed by every shard in log order.
struct RootEvent {
  enum class Kind : std::uint8_t {
    kChange,  // publisher table change (monitor mirror + oracle removal)
    kData,    // transmission entering the forward data channel
    kProbe,   // redundancy oracle probe at sender transmit time
  };

  Kind kind = Kind::kChange;
  sim::SimTime time = 0.0;
  Record rec;                             // kChange payload
  ChangeKind change = ChangeKind::kInsert;
  DataMsg msg;                            // kData / kProbe payload
  sim::Bytes size = 0;                    // kData wire size
};

/// One receiver's worth of shard-local protocol state (the sharded analogue
/// of Experiment::ReceiverRig, minus the fault-injection hooks, which the
/// sharded engine does not expose).
struct ShardRig {
  std::unique_ptr<ReceiverTable> table;
  std::unique_ptr<ReceiverAgent> agent;
  std::unique_ptr<net::Channel<NackMsg>> fb_channel;  // unicast feedback
  std::unique_ptr<net::Link<NackMsg>> fb_link;
  std::unique_ptr<net::HostileChannel<NackMsg>> fb_hostile;
};

/// Everything one worker thread owns. Heap-allocated so addresses captured
/// by protocol lambdas (mailbox, channels) survive container growth.
///
/// Every member except the mailbox is SST_SHARD_LOCAL: touched by the
/// owning worker during its epoch phase, and by the coordinator between
/// barriers (reductions, warm reset), which adopts the shard role wholesale
/// while the workers are parked. The mailbox carries its own role-split
/// producer/consumer contract (sim::SpscMailbox), so it stays unguarded
/// here — its methods are the capability boundary.
struct Shard {
  Shard() : monitor(sim), data(sim) {}

  sim::Simulator sim SST_SHARD_LOCAL;
  ConsistencyMonitor monitor SST_SHARD_LOCAL;  // fed by the epoch log
  net::Channel<DataMsg> data SST_SHARD_LOCAL;  // shard's data-channel slice
  std::vector<ShardRig> rigs SST_SHARD_LOCAL;  // local order == global order
  sim::SpscMailbox<NackMsg> mailbox;  // worker -> root NACK lane (role-split)
  std::vector<std::uint8_t> probe_holds SST_SHARD_LOCAL;  // local AND verdicts
  std::size_t log_cursor SST_SHARD_LOCAL = 0;
  std::uint64_t audit_tick SST_SHARD_LOCAL = 0;  // SST_CHECK cadence counter
};

class ShardedEngine {
 public:
  explicit ShardedEngine(const ExperimentConfig& cfg);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  ExperimentResult run();

 private:
  /// What the workers read each epoch (published before the start barrier).
  struct EpochPlan {
    double fence = 0.0;
    double run_to = 0.0;
    std::size_t log_end = 0;
  };

  // Ownership capability map (see check/annotate.hpp and DESIGN.md): the
  // constructor runs before any worker thread exists (analysis-exempt);
  // afterwards every method declares the role(s) it runs under. Root-side
  // methods that reduce shard state additionally require the shard role —
  // the coordinator adopts it between barriers, while the workers are
  // parked.
  void build_rig(Shard& sh, std::size_t r);
  void root_transmit(const DataMsg& msg) SST_REQUIRES_ROOT SST_REQUIRES_FENCE;
  void append_data(const DataMsg& msg, sim::Bytes size) SST_REQUIRES_ROOT
      SST_REQUIRES_FENCE;
  void append_probe(const DataMsg& msg) SST_REQUIRES_ROOT SST_REQUIRES_FENCE;
  void drain_nacks() SST_REQUIRES_ROOT;
  void worker_epoch(std::size_t s) SST_REQUIRES_SHARD
      SST_REQUIRES_FENCE_SHARED;
  void warm_reset() SST_REQUIRES_ROOT SST_REQUIRES_SHARD;
  [[nodiscard]] const SenderStats& sender_stats() const SST_REQUIRES_ROOT;
  double global_integral(double now) SST_REQUIRES_SHARD;
  [[nodiscard]] double global_instantaneous() const SST_REQUIRES_SHARD;
  ExperimentResult collect(double end) SST_REQUIRES_ROOT SST_REQUIRES_SHARD;

  // Immutable after construction: readable from any role without a guard.
  ExperimentConfig cfg_;
  sim::Rng root_;  // consumed only during construction (stream forking)
  bool feedback_ = false;
  double nack_loss_ = 0.0;

  PublisherTable pub_ SST_ROOT_ONLY;
  sim::Simulator rsim_ SST_ROOT_ONLY;  // the root executor's event queue
  std::unique_ptr<Workload> workload_ SST_ROOT_ONLY;
  std::unique_ptr<net::HostileChannel<DataMsg>> fwd_hostile_ SST_ROOT_ONLY;
  // The vector itself is frozen after construction (stable topology); the
  // pointed-to Shard state carries its own member-level guards.
  std::vector<std::unique_ptr<Shard>> shards_;

  std::unique_ptr<OpenLoopSender> ol_sender_ SST_ROOT_ONLY;
  std::unique_ptr<TwoQueueSender> tq_sender_ SST_ROOT_ONLY;

  sim::Rng shared_rng_ SST_ROOT_ONLY;
  std::uint64_t shared_drops_ SST_ROOT_ONLY = 0;
  // Root-side mirror of the single engine's aggregate channel byte counter:
  // accumulated with the same plain += in the same send order.
  double data_bytes_ SST_ROOT_ONLY = 0.0;

  // Epoch inputs: written by the root between barriers (exclusive fence),
  // read by every worker during an epoch (shared fence) — the annotations
  // prove workers never WRITE the log.
  std::vector<RootEvent> log_ SST_EPOCH_SHARED;
  EpochPlan plan_ SST_EPOCH_SHARED;
  std::vector<double> probe_times_ SST_ROOT_ONLY;  // probe i's transmit time

  std::unique_ptr<analysis::FluidIntegrator> fluid_ SST_ROOT_ONLY;
  double fluid_m_ = 0.0;  // frozen after construction

  // Warm-up baselines (subtracted at collection), captured at the warm-up
  // barrier exactly as the single engine captures them after run_warmup().
  bool warmed_ SST_ROOT_ONLY = false;
  SenderStats warm_sender_ SST_ROOT_ONLY;
  std::uint64_t warm_nacks_sent_ SST_ROOT_ONLY = 0;
  std::uint64_t warm_delivered_ SST_ROOT_ONLY = 0;
  std::uint64_t warm_dropped_ SST_ROOT_ONLY = 0;
  double warm_fb_bytes_ SST_ROOT_ONLY = 0.0;
  double warm_data_bytes_ SST_ROOT_ONLY = 0.0;

  double last_integral_ SST_ROOT_ONLY = 0.0;
  ExperimentResult result_ SST_ROOT_ONLY;

  // Cross-shard NACK merge scratch (reused every epoch).
  struct PendingNack {
    double due = 0.0;
    std::size_t shard = 0;
    std::uint64_t seq = 0;
    NackMsg nack;
  };
  std::vector<sim::SpscMailbox<NackMsg>::Stamped> scratch_ SST_ROOT_ONLY;
  std::vector<PendingNack> batch_ SST_ROOT_ONLY;
};

ShardedEngine::ShardedEngine(const ExperimentConfig& cfg)
    : cfg_(cfg),
      root_(cfg_.seed),
      feedback_(cfg_.variant == Variant::kFeedback),
      nack_loss_(cfg_.nack_loss_rate < 0 ? cfg_.loss_rate
                                         : cfg_.nack_loss_rate),
      shared_rng_(root_.fork("shared-loss")) {
  // The epoch-log appender takes the monitor's subscription slot (first):
  // shards replay each change into their monitors before anything else
  // reacts, preserving the single engine's listener order.
  pub_.subscribe([this](const Record& rec, ChangeKind kind) {
    // Publisher changes fire on the root simulator between barriers (the
    // workload runs there), where the coordinator holds the epoch fence
    // exclusively — the only writer of log_.
    check::root_role.assert_held();
    check::epoch_fence.assert_held();
    RootEvent e;
    e.kind = RootEvent::Kind::kChange;
    e.time = rsim_.now();
    e.rec = rec;
    e.change = kind;
    log_.push_back(std::move(e));
  });
  workload_ = std::make_unique<Workload>(rsim_, pub_, cfg_.workload,
                                         root_.fork("workload"));

  if (cfg_.fwd_hostile.active()) {
    fwd_hostile_ = std::make_unique<net::HostileChannel<DataMsg>>(
        rsim_, cfg_.fwd_hostile, root_.fork("hostile-fwd"),
        [this](const DataMsg& msg, sim::Bytes size) {
          // Hostile-channel delivery runs on the root simulator between
          // barriers: root role + exclusive fence, like every root event.
          check::root_role.assert_held();
          check::epoch_fence.assert_held();
          append_data(msg, size);
        });
  }

  const std::size_t total = cfg_.num_receivers;
  const std::size_t shards =
      std::min(std::max<std::size_t>(cfg_.shards, 1), total);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    const auto [lo, hi] = sim::shard_bounds(s, total, shards);
    for (std::size_t r = lo; r < hi; ++r) build_rig(*shards_.back(), r);
  }

  // Sender transmit/probe hooks all fire on the root simulator between
  // barriers (the sender's service process lives there): root role +
  // exclusive fence, per the epoch protocol.
  if (cfg_.variant == Variant::kOpenLoop) {
    ol_sender_ = std::make_unique<OpenLoopSender>(
        rsim_, pub_, *workload_, cfg_.mu_data, [this](const DataMsg& msg) {
          check::root_role.assert_held();
          check::epoch_fence.assert_held();
          root_transmit(msg);
        });
    ol_sender_->on_transmit([this](const DataMsg& m) {
      check::root_role.assert_held();
      check::epoch_fence.assert_held();
      append_probe(m);
    });
  } else {
    TwoQueueConfig tq;
    tq.mu_data = cfg_.mu_data;
    tq.hot_share = cfg_.hot_share;
    tq.feedback = feedback_;
    tq_sender_ = std::make_unique<TwoQueueSender>(
        rsim_, pub_, *workload_, tq,
        rig::make_scheduler(cfg_.scheduler, root_.fork("sched")),
        [this](const DataMsg& msg) {
          check::root_role.assert_held();
          check::epoch_fence.assert_held();
          root_transmit(msg);
        });
    tq_sender_->on_transmit([this](const DataMsg& m) {
      check::root_role.assert_held();
      check::epoch_fence.assert_held();
      append_probe(m);
    });
  }

  if (cfg_.backend == Backend::kHybrid) {
    analysis::FluidParams fp = fluid_params_from(cfg_);
    fp.cohort = cfg_.fluid_cohort;
    fluid_m_ = cfg_.fluid_cohort;
    fluid_ = std::make_unique<analysis::FluidIntegrator>(fp);
  }

  workload_->start();
}

void ShardedEngine::build_rig(Shard& sh, std::size_t r) {
  // Construction phase: no worker threads exist yet, so the constructing
  // thread owns every role at once. Asserted (not REQUIRES'd) because the
  // caller is the constructor, which Clang's analysis exempts from
  // guarded_by checks — functions called FROM it are not.
  check::root_role.assert_held();
  check::shard_role.assert_held();

  // Mirrors Experiment::add_receiver_rig (unicast-feedback shape) with every
  // stream forked under the receiver's GLOBAL index r; components live on
  // the shard's simulator, except the NACK channel's far end, which is a
  // remote endpoint feeding the shard's mailbox.
  ShardRig rig;
  rig.table = std::make_unique<ReceiverTable>(sh.sim, cfg_.receiver_ttl);
  sh.monitor.attach(*rig.table);

  if (feedback_) {
    rig.fb_channel = std::make_unique<net::Channel<NackMsg>>(sh.sim);
    auto rev_loss =
        rig::make_loss(cfg_, nack_loss_, root_.fork("nack-loss", r),
                       root_.fork("switch-nack", r));
    sim::SpscMailbox<NackMsg>* mailbox = &sh.mailbox;
    rig.fb_channel->add_remote_receiver(
        std::move(rev_loss),
        rig::make_delay(cfg_, root_.fork("nack-delay", r)),
        [mailbox](const NackMsg& nack, sim::SimTime arrival) {
          // The feedback channel lives on the shard's simulator, so this
          // delivery runs inside the owning worker's epoch phase — exactly
          // the producer side of the mailbox's SPSC contract.
          check::shard_role.assert_held();
          mailbox->push(arrival, nack);
        });
    net::Channel<NackMsg>* chan = rig.fb_channel.get();
    if (cfg_.fb_hostile.active()) {
      rig.fb_hostile = std::make_unique<net::HostileChannel<NackMsg>>(
          sh.sim, cfg_.fb_hostile, root_.fork("hostile-fb", r),
          [chan](const NackMsg& nack, sim::Bytes size) {
            chan->send(nack, size);
          });
    }
    net::HostileChannel<NackMsg>* hostile = rig.fb_hostile.get();
    rig.fb_link = std::make_unique<net::Link<NackMsg>>(
        sh.sim, cfg_.mu_fb,
        [chan, hostile](const NackMsg& nack, sim::Bytes size) {
          if (hostile != nullptr) {
            hostile->send(nack, size);
          } else {
            chan->send(nack, size);
          }
        },
        /*queue_limit=*/8);
  }

  ReceiverConfig rcfg = cfg_.receiver;
  rcfg.feedback = feedback_;
  net::Link<NackMsg>* link = feedback_ ? rig.fb_link.get() : nullptr;
  rig.agent = std::make_unique<ReceiverAgent>(
      sh.sim, *rig.table, rcfg,
      [link](const NackMsg& nack) {
        if (link != nullptr) link->send(nack, nack.size);
      },
      root_.fork("agent", r));

  const double fwd_loss = r < cfg_.receiver_loss_rates.size()
                              ? cfg_.receiver_loss_rates[r]
                              : cfg_.loss_rate;
  ReceiverAgent* agent = rig.agent.get();
  auto fwd = rig::make_loss(cfg_, fwd_loss, root_.fork("loss", r),
                            root_.fork("switch-loss", r));
  sh.data.add_receiver(std::move(fwd),
                       rig::make_delay(cfg_, root_.fork("delay", r)),
                       [agent](const DataMsg& msg) { agent->handle(msg); });

  sh.rigs.push_back(std::move(rig));
}

void ShardedEngine::root_transmit(const DataMsg& msg) {
  if (cfg_.shared_loss_rate > 0 &&
      shared_rng_.bernoulli(cfg_.shared_loss_rate)) {
    ++shared_drops_;
    return;
  }
  if (fwd_hostile_ != nullptr) {
    fwd_hostile_->send(msg, msg.size);
  } else {
    append_data(msg, msg.size);
  }
}

void ShardedEngine::append_data(const DataMsg& msg, sim::Bytes size) {
  data_bytes_ += size;
  RootEvent e;
  e.kind = RootEvent::Kind::kData;
  e.time = rsim_.now();
  e.msg = msg;
  e.size = size;
  log_.push_back(std::move(e));
}

void ShardedEngine::append_probe(const DataMsg& msg) {
  probe_times_.push_back(rsim_.now());
  RootEvent e;
  e.kind = RootEvent::Kind::kProbe;
  e.time = rsim_.now();
  e.msg = msg;
  log_.push_back(std::move(e));
}

void ShardedEngine::drain_nacks() {
  if (!feedback_) return;
  batch_.clear();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    scratch_.clear();
    shards_[s]->mailbox.drain(scratch_);
    for (auto& st : scratch_) {
      batch_.push_back(PendingNack{st.due, s, st.seq, std::move(st.payload)});
    }
  }
  if (batch_.empty()) return;
  // Deterministic cross-shard merge: arrival time, then shard, then the
  // producer's FIFO seq. Same-time arrivals across shards are common under
  // constant delays (phase-locked retry scanners), but the merge order at a
  // tie cannot leak into sender state: TwoQueueSender defers same-instant
  // NACKs and applies them in canonical content order (see handle_nack),
  // which is what makes this schedule-insertion order reproducible against
  // the single-queue engine.
  std::sort(batch_.begin(), batch_.end(),
            [](const PendingNack& a, const PendingNack& b) {
              if (a.due != b.due) return a.due < b.due;
              if (a.shard != b.shard) return a.shard < b.shard;
              return a.seq < b.seq;
            });
#if SST_CHECK_ENABLED
  {
    // Conservative-horizon audit: a drained NACK due before the root's
    // clock would mean an epoch outran the lookahead bound.
    check::Violations v;
    for (const auto& p : batch_) {
      if (p.due < rsim_.now()) {
        v.push_back("NACK due " + std::to_string(p.due) +
                    " is before the root clock " +
                    std::to_string(rsim_.now()) +
                    " (conservative lookahead violated)");
      }
    }
    check::report("ShardedEngine", v);
  }
#endif
  TwoQueueSender* sender = tq_sender_.get();
  for (auto& p : batch_) {
    rsim_.at(p.due, [sender, nack = std::move(p.nack)] {
      sender->handle_nack(nack);
    });
  }
}

void ShardedEngine::worker_epoch(std::size_t s) {
  Shard& sh = *shards_[s];
  sim::Simulator& wsim = sh.sim;
  while (sh.log_cursor < plan_.log_end) {
    const RootEvent& e = log_[sh.log_cursor++];
    // Local events strictly before the entry run first; then the entry is
    // applied with the clock parked exactly at its timestamp (root-before-
    // local at equal times, matching the root's execution order).
    wsim.set_fence(e.time);
    wsim.run_until(e.time);
    switch (e.kind) {
      case RootEvent::Kind::kChange:
        sh.monitor.apply_publisher_change(e.rec, e.change);
        if (cfg_.oracle_remove && e.change == ChangeKind::kRemove) {
          for (auto& rg : sh.rigs) rg.table->remove(e.rec.key);
        }
        break;
      case RootEvent::Kind::kData:
        sh.data.send(e.msg, e.size);
        break;
      case RootEvent::Kind::kProbe: {
        bool held = true;
        for (const auto& rg : sh.rigs) {
          const auto* entry = rg.table->find(e.msg.key);
          if (entry == nullptr || entry->version < e.msg.version) {
            held = false;
            break;
          }
        }
        sh.probe_holds.push_back(held ? std::uint8_t{1} : std::uint8_t{0});
        break;
      }
    }
  }
  wsim.set_fence(plan_.fence);
  wsim.run_until(plan_.run_to);
#if SST_CHECK_ENABLED
  if (check::due(sh.audit_tick, 16)) {
    check::Violations v;
    sh.mailbox.check_invariants(v);
    check::report("ShardedEngine", v);
  }
#endif
}

void ShardedEngine::warm_reset() {
  // The warm-up barrier parks every clock (root and shards) exactly at
  // cfg_.warmup, so each monitor's reset_stats() pins the same reset time
  // the single engine records.
  warmed_ = true;
  if (fluid_) {
    fluid_->advance(cfg_.warmup);
    fluid_->reset_stats();
  }
  for (auto& sh : shards_) sh->monitor.reset_stats();
  warm_sender_ = sender_stats();
  warm_nacks_sent_ = 0;
  for (const auto& sh : shards_) {
    for (const auto& rg : sh->rigs) {
      warm_nacks_sent_ += rg.agent->stats().nacks_sent;
    }
  }
  warm_delivered_ = 0;
  warm_dropped_ = 0;
  for (const auto& sh : shards_) {
    warm_delivered_ += sh->data.stats().delivered;
    warm_dropped_ += sh->data.stats().dropped;
  }
  warm_fb_bytes_ = 0.0;
  for (const auto& sh : shards_) {
    for (const auto& rg : sh->rigs) {
      if (rg.fb_channel) warm_fb_bytes_ += rg.fb_channel->stats().bytes_sent;
    }
  }
  warm_data_bytes_ = data_bytes_;
}

const SenderStats& ShardedEngine::sender_stats() const {
  return ol_sender_ ? ol_sender_->stats() : tq_sender_->stats();
}

double ShardedEngine::global_integral(double now) {
  // ConsistencyMonitor::consistency_integral() with the per-receiver
  // reduction spanning shards: advance everyone to `now`, then sum the
  // per-receiver integrals in GLOBAL receiver order with one CompensatedSum
  // — the same terms in the same order as the single monitor (post-reset,
  // each receiver's segment checkpoint is 0 and the closed-segment
  // accumulator is empty, so the raw integrals are those terms).
  for (auto& sh : shards_) sh->monitor.advance_all(now);
  stats::CompensatedSum sum;
  for (auto& sh : shards_) {
    for (std::size_t r = 0; r < sh->rigs.size(); ++r) {
      sum.add(sh->monitor.receiver_integral(r));
    }
  }
  return sum.value() / static_cast<double>(cfg_.num_receivers);
}

double ShardedEngine::global_instantaneous() const {
  // ConsistencyMonitor::instantaneous() over the global receiver order.
  // Every shard mirrors the same live set; shard 0 always exists.
  if (shards_[0]->monitor.live_count() == 0) return 1.0;
  double sum = 0.0;
  for (const auto& sh : shards_) {
    for (std::size_t r = 0; r < sh->rigs.size(); ++r) {
      sum += sh->monitor.receiver_consistency(r);
    }
  }
  return sum / static_cast<double>(cfg_.num_receivers);
}

ExperimentResult ShardedEngine::run() {
  // The coordinator thread drives the whole run. Between barriers it holds
  // the root role, the epoch fence EXCLUSIVELY (sole writer of log_/plan_),
  // and — because every worker is parked at the barrier — the shard role
  // for its cross-shard reductions. ShardCrew's barrier sandwich is the
  // protocol argument; TSan and the byte-identity matrix verify it.
  check::root_role.assert_held();
  check::shard_role.assert_held();
  check::epoch_fence.assert_held();

  const double end = cfg_.warmup + cfg_.duration;
  const sim::Duration lookahead = sharded_lookahead(cfg_);

  // Sample instants, accumulated exactly as the single engine's
  // PeriodicTimer accumulates them: each fire time is the previous plus the
  // interval, starting from the warm-up cutoff.
  std::vector<double> samples;
  if (cfg_.sample_interval > 0) {
    for (double t = cfg_.warmup + cfg_.sample_interval; t <= end;
         t += cfg_.sample_interval) {
      samples.push_back(t);
    }
  }

  std::vector<sim::SimTime> specials = samples;
  if (cfg_.warmup > 0.0) specials.push_back(cfg_.warmup);
  const auto schedule =
      sim::make_epoch_schedule(end, cfg_.warmup, lookahead,
                               std::move(specials));
#if SST_CHECK_ENABLED
  if (!schedule.empty()) {
    check::Violations v;
    sim::check_epoch_schedule(schedule, end, lookahead, v);
    check::report("ShardedEngine", v);
  }
#endif

  // Degenerate warm-up (warmup <= 0): reset baselines before any event runs,
  // like run_warmup() at time zero.
  if (!(cfg_.warmup > 0.0)) warm_reset();

  // Audited shard-worker capture: worker_epoch(s) reads the engine's
  // published epoch inputs (log_, plan_) and writes only shard s's own
  // state; the crew's two barrier crossings per epoch order every such
  // access against the coordinator (see ShardCrew's contract).
  sim::ShardCrew crew(shards_.size(), [this](std::size_t s) {  // sstlint: allow(shard-capture)
    // Worker-side epoch entry: inside its epoch phase the worker owns its
    // shard's state exclusively and reads the barrier-published epoch
    // inputs — the shard role plus a SHARED fence (workers never write
    // log_/plan_; the analysis rejects it).
    check::shard_role.assert_held();
    check::epoch_fence.assert_held_shared();
    worker_epoch(s);
  });

  std::size_t next_sample = 0;
  for (const auto& b : schedule) {
    // NACKs pushed during the previous epoch are at least one full epoch of
    // lookahead away, so scheduling them before the root runs keeps every
    // delivery in its correct epoch.
    drain_nacks();
    const double fence =
        b.inclusive
            ? std::nextafter(b.time, std::numeric_limits<double>::infinity())
            : b.time;
    rsim_.set_fence(fence);
    rsim_.run_until(b.time);
    plan_.fence = fence;
    plan_.run_to = b.time;
    plan_.log_end = log_.size();
    crew.run_epoch();
    // Every shard consumed the full log (the root never appends while the
    // workers run), so the epoch's entries can be recycled.
    log_.clear();
    for (auto& sh : shards_) sh->log_cursor = 0;

    if (!warmed_ && b.time == cfg_.warmup) warm_reset();
    if (next_sample < samples.size() && b.time == samples[next_sample]) {
      ++next_sample;
      const double integral = global_integral(b.time);
      result_.timeline.push_back(TimelinePoint{
          b.time, (integral - last_integral_) / cfg_.sample_interval});
      last_integral_ = integral;
    }
  }
  if (!warmed_) warm_reset();  // empty schedule (end <= 0): still collect
  return collect(end);
}

ExperimentResult ShardedEngine::collect(double end) {
  if (end > cfg_.warmup) {
    result_.avg_consistency = global_integral(end) / (end - cfg_.warmup);
  } else {
    result_.avg_consistency = global_instantaneous();
  }
  if (fluid_) {
    fluid_->advance(end);
    const auto n = static_cast<double>(cfg_.num_receivers);
    const double cf = fluid_->average_consistency();
    result_.fluid_cohort = fluid_m_;
    result_.fluid_consistency = cf;
    result_.fluid_live = fluid_->live();
    result_.fluid_occupancy = fluid_->average_occupancy();
    if (fluid_m_ > 0.0) {
      result_.avg_consistency =
          (n * result_.avg_consistency + fluid_m_ * cf) / (n + fluid_m_);
    }
  }

  // Latency merge: receiver-major in global receiver order — the exact
  // insertion order the single monitor rebuilds, which the mean's
  // compensated accumulation depends on.
  stats::Samples lat;
  for (const auto& sh : shards_) {
    for (std::size_t r = 0; r < sh->rigs.size(); ++r) {
      for (const double x : sh->monitor.receiver_latency_samples(r)) {
        lat.add(x);
      }
    }
  }
  result_.mean_latency = lat.mean();  // before quantile(): mean is
  result_.p50_latency = lat.quantile(0.50);  // insertion-order sensitive
  result_.p95_latency = lat.quantile(0.95);

  const SenderStats s = sender_stats();
  result_.data_tx = s.data_tx - warm_sender_.data_tx;
  result_.hot_tx = s.hot_tx - warm_sender_.hot_tx;
  result_.cold_tx = s.cold_tx - warm_sender_.cold_tx;
  result_.repair_tx = s.repair_tx - warm_sender_.repair_tx;
  result_.nacks_received = s.nacks_received - warm_sender_.nacks_received;

  // Redundancy: probe i was redundant iff every shard's local AND held.
  // Warm-up probes are excluded by time, mirroring the counter reset.
#if SST_CHECK_ENABLED
  {
    check::Violations v;
    for (std::size_t si = 0; si < shards_.size(); ++si) {
      if (shards_[si]->probe_holds.size() != probe_times_.size()) {
        v.push_back("shard " + std::to_string(si) + " judged " +
                    std::to_string(shards_[si]->probe_holds.size()) +
                    " probes, root logged " +
                    std::to_string(probe_times_.size()));
      }
    }
    check::report("ShardedEngine", v);
  }
#endif
  std::uint64_t redundant = 0;
  for (std::size_t i = 0; i < probe_times_.size(); ++i) {
    if (!(probe_times_[i] > cfg_.warmup)) continue;
    bool all = true;
    for (const auto& sh : shards_) {
      if (sh->probe_holds[i] == 0) {
        all = false;
        break;
      }
    }
    if (all) ++redundant;
  }
  result_.redundant_tx = redundant;
  result_.redundant_fraction =
      result_.data_tx > 0
          ? static_cast<double>(result_.redundant_tx) /
                static_cast<double>(result_.data_tx)
          : 0.0;

  std::uint64_t nacks_sent = 0;
  std::uint64_t nacks_suppressed = 0;
  for (const auto& sh : shards_) {
    for (const auto& rg : sh->rigs) {
      nacks_sent += rg.agent->stats().nacks_sent;
      nacks_suppressed += rg.agent->stats().suppressed;
    }
  }
  result_.nacks_sent = nacks_sent - warm_nacks_sent_;
  result_.nacks_suppressed = nacks_suppressed;

  std::uint64_t delivered_total = 0;
  std::uint64_t dropped_total = 0;
  for (const auto& sh : shards_) {
    delivered_total += sh->data.stats().delivered;
    dropped_total += sh->data.stats().dropped;
  }
  const std::uint64_t delivered = delivered_total - warm_delivered_;
  const std::uint64_t dropped =
      dropped_total - warm_dropped_ + shared_drops_ * cfg_.num_receivers;
  result_.observed_loss =
      (delivered + dropped) > 0
          ? static_cast<double>(dropped) /
                static_cast<double>(delivered + dropped)
          : 0.0;

  double fb_bytes = 0.0;
  for (const auto& sh : shards_) {
    for (const auto& rg : sh->rigs) {
      if (rg.fb_channel) fb_bytes += rg.fb_channel->stats().bytes_sent;
    }
  }
  result_.offered_fb_kbps =
      (fb_bytes - warm_fb_bytes_) * 8.0 / cfg_.duration / 1000.0;
  result_.offered_data_kbps =
      (data_bytes_ - warm_data_bytes_) * 8.0 / cfg_.duration / 1000.0;

  result_.inserts = workload_->inserts();
  result_.updates = workload_->updates();
  // Every shard replays every publisher change, so introductions are
  // counted identically everywhere; receipts are per-receiver, so they sum.
  result_.versions_introduced = shards_[0]->monitor.versions_introduced();
  std::uint64_t versions_received = 0;
  for (const auto& sh : shards_) {
    versions_received += sh->monitor.versions_received();
  }
  result_.versions_received = versions_received;

  result_.final_live = pub_.live_count();
  if (tq_sender_) {
    result_.final_hot_depth = tq_sender_->hot_depth();
    result_.final_cold_depth = tq_sender_->cold_depth();
  } else if (ol_sender_) {
    result_.final_hot_depth = ol_sender_->queue_depth();
  }
  return result_;
}

}  // namespace

bool sharded_supported(const ExperimentConfig& cfg, std::string& why) {
  if (cfg.backend == Backend::kFluid) {
    why = "the pure-fluid backend has no event engine to shard";
    return false;
  }
  if (cfg.num_receivers == 0) {
    why = "no receivers to partition";
    return false;
  }
  if (cfg.variant == Variant::kFeedback) {
    if (cfg.multicast_feedback) {
      why = "multicast feedback couples every receiver to every NACK "
            "(no conservative lookahead)";
      return false;
    }
    if (!(cfg.delay > 0.0)) {
      why = "feedback with zero propagation delay leaves no conservative "
            "lookahead";
      return false;
    }
  }
  why.clear();
  return true;
}

sim::Duration sharded_lookahead(const ExperimentConfig& cfg) {
  return cfg.variant == Variant::kFeedback
             ? cfg.delay
             : std::numeric_limits<sim::Duration>::infinity();
}

ExperimentResult run_sharded(const ExperimentConfig& cfg) {
  ShardedEngine engine(cfg);
  return engine.run();
}

}  // namespace sst::core
