#include "core/receiver.hpp"

#include <cmath>

namespace sst::core {

ReceiverAgent::ReceiverAgent(sim::Simulator& sim, ReceiverTable& table,
                             ReceiverConfig config,
                             std::function<void(const NackMsg&)> send_nack,
                             sim::Rng rng)
    : sim_(&sim),
      table_(&table),
      config_(config),
      send_nack_(std::move(send_nack)),
      rng_(rng),
      scanner_(sim) {}

void ReceiverAgent::stop() {
  stopped_ = true;
  missing_.clear();
  scanner_.stop();
}

void ReceiverAgent::handle(const DataMsg& msg) {
  if (stopped_) return;
  ++stats_.data_rx;
  if (msg.is_repair) ++stats_.repairs_rx;

  if (config_.feedback) {
    if (msg.is_repair) repair_received(msg.repairs_seq);
    // Any copy of a record supersedes its previous transmission: if that
    // previous transmission is an outstanding loss, stop requesting it.
    if (msg.has_prev) repair_received(msg.prev_seq);

    if (msg.seq >= next_expected_) {
      // Gap: seqs [next_expected_, msg.seq) were lost (FIFO sender, ordered
      // channel) or are still in flight (jittered channel; a late arrival is
      // handled in the branch below and cancels the NACK state).
      std::vector<std::uint64_t> fresh;
      for (std::uint64_t s = next_expected_; s < msg.seq; ++s) {
        if (missing_.contains(s)) continue;
        note_missing(s);
        if (config_.nack_slot_max <= 0) {
          fresh.push_back(s);
          if (fresh.size() >= config_.max_batch) {
            send_nack_for(fresh);
            fresh.clear();
          }
        }
      }
      if (!fresh.empty()) send_nack_for(fresh);
      next_expected_ = msg.seq + 1;
    } else {
      // Late / reordered arrival: it was not lost after all.
      repair_received(msg.seq);
    }
  }

  table_->refresh(msg.key, msg.version);
}

void ReceiverAgent::note_missing(std::uint64_t seq) {
  ++stats_.gaps_detected;
  Missing m;
  m.retries = 0;
  m.last_nacked = sim_->now();
  if (config_.nack_slot_max <= 0) {
    // Unicast mode: the caller sends the batched NACK right away.
    m.requested = true;
  } else {
    // Multicast slotting: wait a random slot; an overheard NACK for the
    // same seq suppresses ours.
    m.requested = false;
    const sim::Duration slot = rng_.uniform() * config_.nack_slot_max;
    sim_->after(slot, [this, seq] { slot_fire(seq); });
  }
  missing_.emplace(seq, m);
  if (!scanner_.running() && config_.retry_timeout > 0) {
    scanner_.start(config_.retry_timeout, [this] { scan_retries(); });
  }
}

void ReceiverAgent::slot_fire(std::uint64_t seq) {
  const auto it = missing_.find(seq);
  if (it == missing_.end()) return;  // repaired in the meantime
  Missing& m = it->second;
  if (m.requested) return;  // damped by an overheard NACK
  m.requested = true;
  m.last_nacked = sim_->now();
  send_nack_for({seq});
}

void ReceiverAgent::observe_nack(const NackMsg& nack) {
  if (stopped_) return;
  for (const std::uint64_t seq : nack.missing_seqs) {
    const auto it = missing_.find(seq);
    if (it == missing_.end()) continue;
    Missing& m = it->second;
    if (!m.requested) ++stats_.suppressed;
    // The overheard request stands in for ours: damp the slot send and push
    // our retry clock back.
    m.requested = true;
    m.last_nacked = sim_->now();
  }
}

void ReceiverAgent::repair_received(std::uint64_t seq) {
  missing_.erase(seq);
  if (missing_.empty()) scanner_.stop();
}

void ReceiverAgent::send_nack_for(const std::vector<std::uint64_t>& seqs) {
  if (seqs.empty()) return;
  NackMsg nack;
  nack.missing_seqs = seqs;
  nack.size = config_.nack_size;
  ++stats_.nacks_sent;
  send_nack_(nack);
}

void ReceiverAgent::scan_retries() {
  // Batch every overdue loss into as few NACK packets as possible. A loss is
  // overdue when it has gone retry_timeout * backoff^retries without being
  // re-requested; after max_retries it is abandoned to the cold cycle.
  std::vector<std::uint64_t> batch;
  const sim::SimTime now = sim_->now();
  for (auto it = missing_.begin(); it != missing_.end();) {
    Missing& m = it->second;
    const double threshold =
        config_.retry_timeout * std::pow(config_.retry_backoff, m.retries);
    if (now - m.last_nacked + 1e-9 < threshold) {
      ++it;
      continue;
    }
    if (m.retries >= config_.max_retries) {
      ++stats_.abandoned;
      it = missing_.erase(it);
      continue;
    }
    ++m.retries;
    ++stats_.retries;
    m.last_nacked = now;
    m.requested = true;
    batch.push_back(it->first);
    if (batch.size() >= config_.max_batch) {
      send_nack_for(batch);
      batch.clear();
    }
    ++it;
  }
  if (!batch.empty()) send_nack_for(batch);
  if (missing_.empty()) scanner_.stop();
}

}  // namespace sst::core
