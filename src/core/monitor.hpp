// monitor.hpp — the consistency metric c(k,t), c(t), E[c(t)] and the receive
// latency T_recv (paper Section 2.1).
//
// The monitor is a simulation-side oracle: it observes the publisher table
// and every receiver table through their listener hooks and maintains, at all
// times, the number of live records and the number of them each receiver
// holds consistently (same version <=> same value). The instantaneous system
// consistency is
//     c(t) = (1/R) * sum_r |consistent_r(t)| / |L(t)|     (c(t)=1 if L empty)
// and E[c(t)] is its exact time average, accumulated event-by-event because
// c(t) is piecewise constant.
//
// Decomposed form (sharded engine). c(t) is a sum of per-receiver signals
// c_r(t) = |consistent_r(t)| / |L(t)| that change only at (a) that receiver's
// own refresh/expire events and (b) publisher changes. The monitor therefore
// keeps one TimeAverage per receiver and reduces
//     ∫ c dt = (1/A) * sum_r ∫ c_r dt
// over the active set in receiver-index order with a CompensatedSum at query
// time. Dynamic membership closes the current segment (the active set A is
// constant within a segment) so mid-run join/leave keeps the exact legacy
// semantics. The decomposition is what makes the sharded engine possible:
// each shard owns a monitor over its receivers, publisher changes are
// broadcast through the epoch log, and the coordinator's cross-shard
// reduction in global receiver order is bit-identical to the single-monitor
// reduction (see DESIGN.md, "Sharded engine"). It is also the single biggest
// serial win at scale: a receiver event costs O(1), not O(R).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/record.hpp"
#include "core/table.hpp"
#include "sim/simulator.hpp"
#include "stats/compensated.hpp"
#include "stats/histogram.hpp"
#include "stats/time_average.hpp"

namespace sst::core {

/// Oracle measuring consistency and receive latency across one publisher and
/// any number of receivers. Construct it BEFORE the workload starts so it
/// observes every record from birth. Membership is dynamic: receivers may
/// attach (late join) and detach (leave/churn) mid-run; c(t) averages only
/// over currently-attached receivers, and every mid-run joiner's catch-up
/// latency — time from attach until its own consistency first reaches the
/// catch-up threshold — is recorded.
///
/// Ownership (check/annotate.hpp): the class itself carries no capability
/// attributes because the same type serves both engines — in the
/// single-queue engine there are no roles at all. In the sharded engine
/// each instance is SST_SHARD_LOCAL state, guarded at its owning site
/// (core::Shard::monitor): the owning worker drives it during epochs, and
/// the coordinator adopts the shard role between barriers for the
/// cross-shard reductions (advance_all, receiver_integral, the latency
/// merge).
class ConsistencyMonitor {
 public:
  ConsistencyMonitor(sim::Simulator& sim, PublisherTable& pub);

  /// Shard-mode constructor: no publisher table on this side of the shard
  /// boundary. The shard coordinator replays publisher changes in epoch-log
  /// order through apply_publisher_change(), which keeps every shard's
  /// live-set mirror bit-identical to the root's publisher table.
  explicit ConsistencyMonitor(sim::Simulator& sim);

  ConsistencyMonitor(const ConsistencyMonitor&) = delete;
  ConsistencyMonitor& operator=(const ConsistencyMonitor&) = delete;

  /// Attaches a receiver (at construction time or mid-run). Returns the
  /// receiver's index. Mid-run joiners start with an empty consistent set
  /// and converge purely from what they subsequently receive.
  std::size_t attach(ReceiverTable& recv);

  /// Detaches receiver `r` (receiver churn): it stops counting toward c(t)
  /// and its callbacks are ignored from now on. Indices are stable — other
  /// receivers keep theirs, and `r` is never reused.
  void detach(std::size_t r);

  /// True while receiver `r` is attached.
  [[nodiscard]] bool active(std::size_t r) const {
    return receivers_.at(r).active;
  }

  /// Number of currently-attached receivers.
  [[nodiscard]] std::size_t active_receivers() const { return active_count_; }

  /// Number of receivers ever attached (indices are stable, never reused).
  [[nodiscard]] std::size_t receiver_count() const {
    return receivers_.size();
  }

  /// Receiver r's own consistency: fraction of live records it holds at the
  /// current version (1.0 for an empty live set).
  [[nodiscard]] double receiver_consistency(std::size_t r) const;

  /// Threshold a joiner's own consistency must reach to count as caught up.
  void set_catch_up_threshold(double threshold) {
    catch_up_threshold_ = threshold;
  }

  /// Catch-up latency of receiver `r`: seconds from attach until its own
  /// consistency first reached the catch-up threshold; negative while still
  /// catching up.
  [[nodiscard]] double catch_up_latency(std::size_t r) const {
    return receivers_.at(r).catch_up_latency;
  }

  /// Discards statistics gathered so far (warm-up cutoff). Live-set and
  /// consistency state are preserved; only the averages restart.
  void reset_stats();

  /// Instantaneous system consistency c(t).
  [[nodiscard]] double instantaneous() const;

  /// Average system consistency E[c(t)] up to `now`.
  [[nodiscard]] double average_consistency();

  /// Integral of c(t) dt since the last reset; windowed averages (e.g. the
  /// Figure 8 time series) are computed by differencing this.
  [[nodiscard]] double consistency_integral();

  /// Receive-latency samples: time from a (key, version) entering the system
  /// to its FIRST receipt at each receiver, measured over successful
  /// deliveries only (as in the paper's T_recv). Samples are merged from the
  /// per-receiver streams in receiver-index order (deterministic, and the
  /// same order the shard coordinator uses for its global merge).
  [[nodiscard]] stats::Samples& latency();

  /// Number of live records right now.
  [[nodiscard]] std::size_t live_count() const { return live_.size(); }

  /// Number of (key,version) pairs introduced / first-received since the last
  /// reset_stats().
  [[nodiscard]] std::uint64_t versions_introduced() const {
    return versions_introduced_;
  }
  [[nodiscard]] std::uint64_t versions_received() const {
    return versions_received_;
  }

  // ---------------------------------------------------------- shard surface
  //
  // The shard coordinator drives per-shard monitors through these. They are
  // ordinary public API (used by tests too); nothing here is thread-aware —
  // all cross-thread ordering is the coordinator's barrier protocol.

  /// Replays one publisher change into the live-set mirror. The subscribing
  /// constructor wires this to PublisherTable::subscribe; shard workers call
  /// it directly in epoch-log order.
  void apply_publisher_change(const Record& rec, ChangeKind kind);

  /// Folds every active receiver's consistency signal forward to `now`
  /// without changing it (epoch fences, sample points, reductions).
  void advance_all(sim::SimTime now);

  /// ∫ c_r dt since the last reset for receiver `r` (advance first).
  [[nodiscard]] double receiver_integral(std::size_t r) const {
    return receivers_.at(r).avg.integral();
  }

  /// Receiver r's latency samples in receipt order (shard-merge input).
  [[nodiscard]] const std::vector<double>& receiver_latency_samples(
      std::size_t r) const {
    return receivers_.at(r).latency;
  }

 private:
  struct LiveRec {
    Version version = 0;
    sim::SimTime introduced_at = 0.0;
    // Monotone introduction serial: receiver r counts a first receipt toward
    // T_recv only when the version was introduced strictly after r attached
    // (serial > attach_serial), the same late-joiner rule the previous
    // received-bitmap representation enforced by snapshotting the receiver
    // count at introduction time.
    std::uint64_t serial = 0;
  };

  struct ReceiverView {
    ReceiverTable* table = nullptr;
    std::unordered_set<Key> consistent;  // live keys held at current version
    // Highest version of each key already counted toward T_recv, so TTL
    // expiry + re-receipt of the same version is not double-counted.
    std::unordered_map<Key, Version> counted;
    stats::TimeAverage avg;        // time average of c_r(t)
    std::vector<double> latency;   // first-receipt samples, receipt order
    double ckpt = 0.0;             // ∫c_r dt at the open segment's start
    std::uint64_t attach_serial = 0;
    bool active = true;
    bool catching_up = true;       // not yet reached the threshold
    sim::SimTime joined_at = 0.0;
    double catch_up_latency = -1.0;  // <0 until caught up
  };

  void on_receiver_refresh(std::size_t r, Key key, Version version);
  void on_receiver_expire(std::size_t r, Key key);
  void check_catch_up(std::size_t r, sim::SimTime now);
  /// Advances + re-values every active receiver (publisher changes move
  /// every c_r at once because |L| changes).
  void touch_all(sim::SimTime now);
  /// ∫c dt over the open segment [seg_start_, now): advances the active
  /// receivers and reduces their integrals in index order.
  double open_segment_integral(sim::SimTime now);
  /// Folds the open segment into closed_ and starts a new segment at `now`
  /// (called at every membership change, where A jumps).
  void close_segment(sim::SimTime now);

  sim::Simulator* sim_;
  std::vector<ReceiverView> receivers_;

  // Live records and their current versions, mirrored from the publisher.
  std::unordered_map<Key, LiveRec> live_;
  std::uint64_t intro_serial_ = 0;

  double catch_up_threshold_ = 0.9;
  std::size_t catching_up_count_ = 0;  // receivers still converging
  std::size_t active_count_ = 0;

  // Segmented E[c] accumulator: closed_ holds ∫c dt over finished segments
  // (membership constant within each), the open segment is reduced from the
  // per-receiver integrals on demand.
  stats::CompensatedSum closed_;
  sim::SimTime seg_start_ = 0.0;
  sim::SimTime reset_time_ = 0.0;

  stats::Samples merged_latency_;
  bool merged_dirty_ = true;
  std::uint64_t versions_introduced_ = 0;
  std::uint64_t versions_received_ = 0;
};

}  // namespace sst::core
