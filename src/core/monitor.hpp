// monitor.hpp — the consistency metric c(k,t), c(t), E[c(t)] and the receive
// latency T_recv (paper Section 2.1).
//
// The monitor is a simulation-side oracle: it observes the publisher table
// and every receiver table through their listener hooks and maintains, at all
// times, the number of live records and the number of them each receiver
// holds consistently (same version <=> same value). The instantaneous system
// consistency is
//     c(t) = (1/R) * sum_r |consistent_r(t)| / |L(t)|     (c(t)=1 if L empty)
// and E[c(t)] is its exact time average, accumulated event-by-event because
// c(t) is piecewise constant.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/record.hpp"
#include "core/table.hpp"
#include "sim/simulator.hpp"
#include "stats/histogram.hpp"
#include "stats/time_average.hpp"

namespace sst::core {

/// Oracle measuring consistency and receive latency across one publisher and
/// any number of receivers. Construct it BEFORE the workload starts so it
/// observes every record from birth. Membership is dynamic: receivers may
/// attach (late join) and detach (leave/churn) mid-run; c(t) averages only
/// over currently-attached receivers, and every mid-run joiner's catch-up
/// latency — time from attach until its own consistency first reaches the
/// catch-up threshold — is recorded.
class ConsistencyMonitor {
 public:
  ConsistencyMonitor(sim::Simulator& sim, PublisherTable& pub);

  ConsistencyMonitor(const ConsistencyMonitor&) = delete;
  ConsistencyMonitor& operator=(const ConsistencyMonitor&) = delete;

  /// Attaches a receiver (at construction time or mid-run). Returns the
  /// receiver's index. Mid-run joiners start with an empty consistent set
  /// and converge purely from what they subsequently receive.
  std::size_t attach(ReceiverTable& recv);

  /// Detaches receiver `r` (receiver churn): it stops counting toward c(t)
  /// and its callbacks are ignored from now on. Indices are stable — other
  /// receivers keep theirs, and `r` is never reused.
  void detach(std::size_t r);

  /// True while receiver `r` is attached.
  [[nodiscard]] bool active(std::size_t r) const {
    return receivers_.at(r).active;
  }

  /// Number of currently-attached receivers.
  [[nodiscard]] std::size_t active_receivers() const;

  /// Receiver r's own consistency: fraction of live records it holds at the
  /// current version (1.0 for an empty live set).
  [[nodiscard]] double receiver_consistency(std::size_t r) const;

  /// Threshold a joiner's own consistency must reach to count as caught up.
  void set_catch_up_threshold(double threshold) {
    catch_up_threshold_ = threshold;
  }

  /// Catch-up latency of receiver `r`: seconds from attach until its own
  /// consistency first reached the catch-up threshold; negative while still
  /// catching up.
  [[nodiscard]] double catch_up_latency(std::size_t r) const {
    return receivers_.at(r).catch_up_latency;
  }

  /// Discards statistics gathered so far (warm-up cutoff). Live-set and
  /// consistency state are preserved; only the averages restart.
  void reset_stats();

  /// Instantaneous system consistency c(t).
  [[nodiscard]] double instantaneous() const;

  /// Average system consistency E[c(t)] up to `now`.
  [[nodiscard]] double average_consistency();

  /// Integral of c(t) dt since the last reset; windowed averages (e.g. the
  /// Figure 8 time series) are computed by differencing this.
  [[nodiscard]] double consistency_integral();

  /// Receive-latency samples: time from a (key, version) entering the system
  /// to its FIRST receipt at each receiver, measured over successful
  /// deliveries only (as in the paper's T_recv).
  [[nodiscard]] stats::Samples& latency() { return latency_; }

  /// Number of live records right now.
  [[nodiscard]] std::size_t live_count() const { return pub_->live_count(); }

  /// Number of (key,version) pairs introduced / first-received since the last
  /// reset_stats().
  [[nodiscard]] std::uint64_t versions_introduced() const {
    return versions_introduced_;
  }
  [[nodiscard]] std::uint64_t versions_received() const {
    return versions_received_;
  }

 private:
  struct PendingVersion {
    sim::SimTime introduced_at = 0;
    std::vector<bool> received;  // per receiver
  };

  struct ReceiverView {
    ReceiverTable* table = nullptr;
    std::unordered_set<Key> consistent;  // live keys held at current version
    bool active = true;
    bool catching_up = true;             // not yet reached the threshold
    sim::SimTime joined_at = 0.0;
    double catch_up_latency = -1.0;      // <0 until caught up
  };

  void on_publisher_change(const Record& rec, ChangeKind kind);
  void on_receiver_refresh(std::size_t r, Key key, Version version);
  void on_receiver_expire(std::size_t r, Key key);
  void touch();  // fold the (possibly changed) c(t) into the time average

  sim::Simulator* sim_;
  PublisherTable* pub_;
  std::vector<ReceiverView> receivers_;

  // Live records and their current versions, mirrored from the publisher.
  std::unordered_map<Key, Version> live_;

  // Outstanding (key, version) pairs not yet received everywhere.
  struct KeyVer {
    Key key;
    Version version;
    bool operator==(const KeyVer&) const = default;
  };
  struct KeyVerHash {
    std::size_t operator()(const KeyVer& kv) const {
      return std::hash<std::uint64_t>()(kv.key * 0x9E3779B97F4A7C15ULL ^
                                        kv.version);
    }
  };
  std::unordered_map<KeyVer, PendingVersion, KeyVerHash> pending_;

  double catch_up_threshold_ = 0.9;
  std::size_t catching_up_count_ = 0;  // receivers still converging

  stats::TimeAverage consistency_avg_;
  stats::Samples latency_;
  std::uint64_t versions_introduced_ = 0;
  std::uint64_t versions_received_ = 0;
};

}  // namespace sst::core
