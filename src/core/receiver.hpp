// receiver.hpp — the subscriber agent (paper Sections 2 and 5).
//
// Applies announcements to the receiver table and, when feedback is enabled,
// detects losses from per-sender sequence-number gaps and emits NACKs naming
// the missing transmissions. Unrepaired losses are re-requested by a
// periodic scanner that batches every overdue loss into as few NACK packets
// as possible (SRM-style request aggregation) with per-loss exponential
// backoff, until repaired or abandoned — the cold cycle eventually recovers
// abandoned items; feedback is an accelerator, not a correctness
// requirement.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "core/messages.hpp"
#include "core/table.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "sim/units.hpp"

namespace sst::core {

/// Receiver-side feedback configuration.
struct ReceiverConfig {
  bool feedback = false;
  sim::Bytes nack_size = 1000;   // wire size of one NACK packet
  sim::Duration retry_timeout = 2.0;  // base re-NACK age; also scanner period
  double retry_backoff = 2.0;         // age threshold multiplier per retry
  int max_retries = 4;                // further losses left to the cold cycle
  std::size_t max_batch = 64;         // missing seqs per NACK packet
  /// Multicast feedback management (SRM-style slotting and damping, paper
  /// Section 6): delay each first NACK by U(0, nack_slot_max) and suppress
  /// it if another receiver's NACK for the same loss is overheard first.
  /// 0 sends immediately (the unicast setting).
  sim::Duration nack_slot_max = 0.0;
};

/// Greatest lower bound of the extra latency the slotting schedule imposes
/// between a receiver observing a loss and its NACK entering the feedback
/// path. The sharded engine's damping-aware lookahead is
///     W = delay + nack_slot_floor(cfg.receiver)
/// and this function is the single place the bound is derived from the
/// protocol: the slot is drawn U(0, nack_slot_max), whose infimum is 0 for
/// every nack_slot_max > 0, and the degenerate nack_slot_max == 0 case
/// sends the NACK immediately (note_missing skips the slot timer entirely).
/// Either way the safe floor is exactly 0 — a NACK can leave in the same
/// instant the loss is detected — so today the bound adds nothing to
/// `delay`; a future deterministic minimum-slot schedule (e.g. SRM's
/// C1*d_S,r term with C1 > 0) would raise it here and the epoch timetable
/// would widen automatically.
[[nodiscard]] constexpr sim::Duration nack_slot_floor(
    const ReceiverConfig& /*config*/) {
  return 0.0;
}

/// Counters a receiver accumulates.
struct ReceiverStats {
  std::uint64_t data_rx = 0;
  std::uint64_t repairs_rx = 0;
  std::uint64_t gaps_detected = 0;   // individual missing seqs observed
  std::uint64_t nacks_sent = 0;      // NACK packets emitted
  std::uint64_t retries = 0;         // re-NACKed seqs after timeout
  std::uint64_t abandoned = 0;       // losses given up after max_retries
  std::uint64_t suppressed = 0;      // NACKs damped by overheard duplicates
};

/// Subscriber protocol agent.
class ReceiverAgent {
 public:
  /// `send_nack` forwards a NACK into the reverse (feedback) path.
  /// `rng` drives NACK slotting; callers fork it from the experiment seed
  /// (no default — a hidden fixed seed would hand every agent the same
  /// stream).
  ReceiverAgent(sim::Simulator& sim, ReceiverTable& table,
                ReceiverConfig config,
                std::function<void(const NackMsg&)> send_nack,
                sim::Rng rng);

  ReceiverAgent(const ReceiverAgent&) = delete;
  ReceiverAgent& operator=(const ReceiverAgent&) = delete;

  /// Entry point for announcements arriving from the data channel.
  void handle(const DataMsg& msg);

  /// Another group member's NACK overheard on the multicast feedback
  /// channel: any matching loss we have not yet requested (or were about to
  /// re-request) is damped — the overheard request stands in for ours.
  void observe_nack(const NackMsg& nack);

  /// Receiver leave: quiesces the agent for good. Outstanding losses are
  /// forgotten, the retry scanner stops, and later handle()/observe_nack()
  /// calls (packets already in flight) are ignored.
  void stop();

  [[nodiscard]] const ReceiverStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t outstanding_losses() const {
    return missing_.size();
  }

 private:
  struct Missing {
    int retries = 0;
    sim::SimTime last_nacked = 0;
    bool requested = false;  // we (or an overheard peer) asked for it
  };

  void note_missing(std::uint64_t seq);
  void slot_fire(std::uint64_t seq);
  void repair_received(std::uint64_t seq);
  void send_nack_for(const std::vector<std::uint64_t>& seqs);
  void scan_retries();

  sim::Simulator* sim_;
  ReceiverTable* table_;
  ReceiverConfig config_;
  std::function<void(const NackMsg&)> send_nack_;
  sim::Rng rng_;

  bool stopped_ = false;
  std::uint64_t next_expected_ = 0;
  std::map<std::uint64_t, Missing> missing_;  // ordered: oldest first
  sim::PeriodicTimer scanner_;
  ReceiverStats stats_;
};

}  // namespace sst::core
