#include "core/experiment.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <set>

#include "core/rig_build.hpp"
#include "core/sharded.hpp"

namespace sst::core {

using rig::make_delay;
using rig::make_loss;
using rig::make_scheduler;

Experiment::Experiment(ExperimentConfig config)
    : cfg_(std::move(config)),
      root_(cfg_.seed),
      feedback_(cfg_.variant == Variant::kFeedback),
      nack_loss_(cfg_.nack_loss_rate < 0 ? cfg_.loss_rate
                                         : cfg_.nack_loss_rate),
      monitor_(sim_, pub_),
      workload_(sim_, pub_, cfg_.workload, root_.fork("workload")),
      data_channel_(sim_),
      shared_rng_(root_.fork("shared-loss")),
      base_mu_(cfg_.mu_data) {
  // Hostile forward stage between the sender's (shared-loss-surviving)
  // transmissions and the data channel. Built only when configured.
  if (cfg_.fwd_hostile.active()) {
    fwd_hostile_ = std::make_unique<net::HostileChannel<DataMsg>>(
        sim_, cfg_.fwd_hostile, root_.fork("hostile-fwd"),
        [this](const DataMsg& msg, sim::Bytes size) {
          data_channel_.send(msg, size);
        });
  }

  // Multicast feedback: one shared group over which every NACK reaches the
  // sender and every other receiver (observe_nack), enabling slotting and
  // damping.
  if (feedback_ && cfg_.multicast_feedback) {
    mcast_fb_ = std::make_unique<net::Channel<NackMsg>>(sim_);
    mcast_fb_->add_receiver(
        make_loss(cfg_, nack_loss_, root_.fork("nack-loss-sender"),
                  root_.fork("switch-nack-sender")),
        make_delay(cfg_, root_.fork("nack-delay-sender")),
        [this](const NackMsg& nack) {
          if (tq_sender_ != nullptr) tq_sender_->handle_nack(nack);
        });
  }

  for (std::size_t r = 0; r < cfg_.num_receivers; ++r) add_receiver_rig();

  // Oracle removal: the paper's model eliminates expired records "from both
  // the sender's and receivers' tables". Iterates the live rig list so
  // receivers joining later are covered too.
  if (cfg_.oracle_remove) {
    pub_.subscribe([this](const Record& rec, ChangeKind kind) {
      if (kind == ChangeKind::kRemove) {
        for (auto& rig : receivers_) rig.table->remove(rec.key);
      }
    });
  }

  if (cfg_.variant == Variant::kOpenLoop) {
    ol_sender_ = std::make_unique<OpenLoopSender>(
        sim_, pub_, workload_, cfg_.mu_data,
        [this](const DataMsg& msg) { transmit(msg); });
    ol_sender_->on_transmit([this](const DataMsg& m) { count_redundant(m); });
  } else {
    TwoQueueConfig tq;
    tq.mu_data = cfg_.mu_data;
    tq.hot_share = cfg_.hot_share;
    tq.feedback = feedback_;
    tq_sender_owned_ = std::make_unique<TwoQueueSender>(
        sim_, pub_, workload_, tq,
        make_scheduler(cfg_.scheduler, root_.fork("sched")),
        [this](const DataMsg& msg) { transmit(msg); });
    tq_sender_owned_->on_transmit(
        [this](const DataMsg& m) { count_redundant(m); });
    tq_sender_ = tq_sender_owned_.get();
  }

  workload_.start();
}

std::size_t Experiment::add_receiver_rig() {
  const std::size_t r = receivers_.size();
  ReceiverRig rig;
  rig.table = std::make_unique<ReceiverTable>(sim_, cfg_.receiver_ttl);
  monitor_.attach(*rig.table);

  if (feedback_ && !cfg_.multicast_feedback) {
    rig.fb_channel = std::make_unique<net::Channel<NackMsg>>(sim_);
    auto rev_loss = make_loss(cfg_, nack_loss_, root_.fork("nack-loss", r),
                              root_.fork("switch-nack", r));
    rig.rev_switch = rev_loss.get();
    rig.fb_channel->add_receiver(
        std::move(rev_loss), make_delay(cfg_, root_.fork("nack-delay", r)),
        [this](const NackMsg& nack) {
          if (tq_sender_ != nullptr) tq_sender_->handle_nack(nack);
        });
    // NACKs drain at mu_fb; a bounded queue drops feedback bursts that
    // exceed the budget instead of letting stale NACKs pile up.
    net::Channel<NackMsg>* chan = rig.fb_channel.get();
    if (cfg_.fb_hostile.active()) {
      rig.fb_hostile = std::make_unique<net::HostileChannel<NackMsg>>(
          sim_, cfg_.fb_hostile, root_.fork("hostile-fb", r),
          [chan](const NackMsg& nack, sim::Bytes size) {
            chan->send(nack, size);
          });
    }
    net::HostileChannel<NackMsg>* hostile = rig.fb_hostile.get();
    rig.fb_link = std::make_unique<net::Link<NackMsg>>(
        sim_, cfg_.mu_fb,
        [chan, hostile](const NackMsg& nack, sim::Bytes size) {
          if (hostile != nullptr) {
            hostile->send(nack, size);
          } else {
            chan->send(nack, size);
          }
        },
        /*queue_limit=*/8);
  }

  ReceiverConfig rcfg = cfg_.receiver;
  rcfg.feedback = feedback_;
  if (cfg_.multicast_feedback) {
    net::Channel<NackMsg>* group = mcast_fb_.get();
    const auto origin = static_cast<std::uint32_t>(r + 1);
    if (cfg_.fb_hostile.active()) {
      // Each receiver's uplink into the shared group gets its own hostile
      // stage (independent streams), feeding the group past it.
      rig.fb_hostile = std::make_unique<net::HostileChannel<NackMsg>>(
          sim_, cfg_.fb_hostile, root_.fork("hostile-fb", r),
          [this](const NackMsg& nack, sim::Bytes size) {
            group_nack_send(nack, size);
          });
    }
    net::HostileChannel<NackMsg>* hostile = rig.fb_hostile.get();
    rig.agent = std::make_unique<ReceiverAgent>(
        sim_, *rig.table, rcfg,
        [this, group, hostile, origin, r](const NackMsg& nack) {
          // A partitioned receiver's uplink is down too.
          if (group != nullptr && !receivers_[r].partitioned) {
            NackMsg tagged = nack;
            tagged.origin = origin;
            if (hostile != nullptr) {
              hostile->send(tagged, tagged.size);
            } else {
              group_nack_send(tagged, tagged.size);
            }
          }
        },
        root_.fork("agent", r));
  } else {
    net::Link<NackMsg>* link = feedback_ ? rig.fb_link.get() : nullptr;
    rig.agent = std::make_unique<ReceiverAgent>(
        sim_, *rig.table, rcfg,
        [link](const NackMsg& nack) {
          if (link != nullptr) link->send(nack, nack.size);
        },
        root_.fork("agent", r));
  }

  const double fwd_loss = r < cfg_.receiver_loss_rates.size()
                              ? cfg_.receiver_loss_rates[r]
                              : cfg_.loss_rate;
  ReceiverAgent* agent = rig.agent.get();
  if (feedback_ && cfg_.multicast_feedback) {
    // This receiver also overhears the group's NACK traffic.
    const auto origin = static_cast<std::uint32_t>(r + 1);
    auto obs_loss = make_loss(cfg_, nack_loss_,
                              root_.fork("nack-observe-loss", r),
                              root_.fork("switch-observe", r));
    rig.observe_switch = obs_loss.get();
    rig.mcast_ep = mcast_fb_->add_receiver(
        std::move(obs_loss),
        make_delay(cfg_, root_.fork("nack-observe-delay", r)),
        [agent, origin](const NackMsg& nack) {
          if (nack.origin != origin) agent->observe_nack(nack);
        });
    rig.has_mcast_ep = true;
  }
  auto fwd = make_loss(cfg_, fwd_loss, root_.fork("loss", r),
                       root_.fork("switch-loss", r));
  rig.fwd_switch = fwd.get();
  data_channel_.add_receiver(
      std::move(fwd), make_delay(cfg_, root_.fork("delay", r)),
      [agent](const DataMsg& msg) { agent->handle(msg); });

  receivers_.push_back(std::move(rig));
  return r;
}

void Experiment::transmit(const DataMsg& msg) {
  // Shared upstream (backbone) loss stage: one draw drops the packet for
  // every receiver; survivors then face their independent leaf losses.
  if (cfg_.shared_loss_rate > 0 &&
      shared_rng_.bernoulli(cfg_.shared_loss_rate)) {
    ++shared_drops_;
    return;
  }
  if (fwd_hostile_ != nullptr) {
    fwd_hostile_->send(msg, msg.size);
  } else {
    data_channel_.send(msg, msg.size);
  }
}

void Experiment::group_nack_send(const NackMsg& nack, sim::Bytes size) {
  // Stash only; the first stash of the instant schedules the flush, which
  // the kernel runs after every event already queued for this timestamp.
  // Flushing in canonical content order makes the group-entry order at an
  // exact tie — and with it every observe endpoint's per-NACK loss/delay
  // draw — a pure function of the NACKs themselves, which the sharded
  // engine's cross-shard drain reproduces without the global event queue
  // (same contract as TwoQueueSender::handle_nack on the sender lane).
  pending_group_.emplace_back(nack, size);
  if (pending_group_.size() == 1) {
    sim_.at(sim_.now(), [this] {
      std::stable_sort(pending_group_.begin(), pending_group_.end(),
                       [](const auto& a, const auto& b) {
                         return nack_content_less(a.first, b.first);
                       });
      for (const auto& [msg, bytes] : pending_group_) {
        mcast_fb_->send(msg, bytes);
      }
      pending_group_.clear();
    });
  }
}

void Experiment::count_redundant(const DataMsg& msg) {
  // Redundancy oracle: a transmission is redundant if every (attached)
  // receiver already holds the announced version.
  for (const auto& rig : receivers_) {
    if (!rig.active) continue;
    const auto* e = rig.table->find(msg.key);
    if (e == nullptr || e->version < msg.version) return;
  }
  ++redundant_tx_;
}

void Experiment::run_warmup() {
  sim_.run_until(cfg_.warmup);
  if (fluid_) {
    fluid_->advance(cfg_.warmup);
    fluid_->reset_stats();
  }
  monitor_.reset_stats();
  redundant_tx_ = 0;
  warm_sender_ = ol_sender_ ? ol_sender_->stats() : tq_sender_->stats();
  warm_nacks_sent_ = 0;
  for (const auto& rig : receivers_) {
    warm_nacks_sent_ += rig.agent->stats().nacks_sent;
  }
  warm_delivered_ = data_channel_.stats().delivered;
  warm_dropped_ = data_channel_.stats().dropped;
  warm_fb_bytes_ = 0.0;
  for (const auto& rig : receivers_) {
    if (rig.fb_channel) warm_fb_bytes_ += rig.fb_channel->stats().bytes_sent;
  }
  if (mcast_fb_) warm_fb_bytes_ += mcast_fb_->stats().bytes_sent;
  warm_data_bytes_ = data_channel_.stats().bytes_sent;
  warmed_up_ = true;

  // Optional c(t) timeline via integral differencing.
  if (cfg_.sample_interval > 0) {
    sampler_ = std::make_unique<sim::PeriodicTimer>(sim_);
    last_integral_ = 0.0;
    const double interval = cfg_.sample_interval;
    sampler_->start(interval, [this, interval] {
      const double integral = monitor_.consistency_integral();
      result_.timeline.push_back(
          TimelinePoint{sim_.now(), (integral - last_integral_) / interval});
      last_integral_ = integral;
    });
  }
}

void Experiment::run_until(double t) {
  sim_.run_until(t);
  if (fluid_) fluid_->advance(sim_.now());
}

double Experiment::now() const { return sim_.now(); }

double Experiment::instantaneous_consistency() const {
  return monitor_.instantaneous();
}

void Experiment::crash_sender() {
  if (tq_sender_ != nullptr) {
    tq_sender_->pause();
  } else if (ol_sender_) {
    ol_sender_->pause();
  }
}

void Experiment::restart_sender() {
  if (tq_sender_ != nullptr) {
    tq_sender_->resume();
  } else if (ol_sender_) {
    ol_sender_->resume();
  }
}

bool Experiment::sender_crashed() const {
  if (tq_sender_ != nullptr) return tq_sender_->paused();
  if (ol_sender_) return ol_sender_->paused();
  return false;
}

void Experiment::set_partition(std::size_t r, bool down) {
  ReceiverRig& rig = receivers_.at(r);
  rig.partitioned = down;
  if (rig.fwd_switch != nullptr) rig.fwd_switch->set_down(down);
  if (rig.rev_switch != nullptr) rig.rev_switch->set_down(down);
  if (rig.observe_switch != nullptr) rig.observe_switch->set_down(down);
}

void Experiment::set_partition_all(bool down) {
  for (std::size_t r = 0; r < receivers_.size(); ++r) {
    if (receivers_[r].active) set_partition(r, down);
  }
}

void Experiment::set_extra_loss(std::size_t r, double p) {
  ReceiverRig& rig = receivers_.at(r);
  if (rig.fwd_switch != nullptr) rig.fwd_switch->set_extra_loss(p);
}

void Experiment::set_extra_loss_all(double p) {
  for (std::size_t r = 0; r < receivers_.size(); ++r) {
    if (receivers_[r].active) set_extra_loss(r, p);
  }
}

void Experiment::set_bandwidth_factor(double factor) {
  const sim::Rate mu = base_mu_ * factor;
  if (tq_sender_ != nullptr) {
    tq_sender_->set_mu_data(mu);
  } else if (ol_sender_) {
    ol_sender_->set_mu_ch(mu);
  }
}

std::size_t Experiment::add_receiver() { return add_receiver_rig(); }

void Experiment::detach_receiver(std::size_t r) {
  ReceiverRig& rig = receivers_.at(r);
  if (!rig.active) return;
  rig.active = false;
  monitor_.detach(r);
  rig.agent->stop();
  data_channel_.set_receiver_enabled(r, false);
  if (mcast_fb_ && rig.has_mcast_ep) {
    mcast_fb_->set_receiver_enabled(rig.mcast_ep, false);
  }
}

double Experiment::repair_traffic() const {
  const SenderStats& s =
      ol_sender_ ? ol_sender_->stats() : tq_sender_->stats();
  std::uint64_t nacks = 0;
  for (const auto& rig : receivers_) nacks += rig.agent->stats().nacks_sent;
  double total = static_cast<double>(s.repair_tx + nacks);
  if (fluid_) total += fluid_->repair_traffic();
  return total;
}

void Experiment::attach_fluid_cohort(double m) {
  analysis::FluidParams fp = fluid_params_from(cfg_);
  fp.cohort = m;
  fluid_m_ = m;
  fluid_ = std::make_unique<analysis::FluidIntegrator>(fp);
}

ExperimentResult Experiment::finish() {
  sim_.run_until(end_time());
  if (sampler_) sampler_->stop();

  result_.avg_consistency = monitor_.average_consistency();
  if (fluid_) {
    // Blend the fluid cohort into the aggregate with population weights:
    // the tracked receivers and the cohort observe the same announce
    // stream, so E[c] over the whole population is the weighted mean.
    fluid_->advance(end_time());
    const auto n = static_cast<double>(monitor_.active_receivers());
    const double cf = fluid_->average_consistency();
    result_.fluid_cohort = fluid_m_;
    result_.fluid_consistency = cf;
    result_.fluid_live = fluid_->live();
    result_.fluid_occupancy = fluid_->average_occupancy();
    if (fluid_m_ > 0.0) {
      result_.avg_consistency =
          (n * result_.avg_consistency + fluid_m_ * cf) / (n + fluid_m_);
    }
  }
  auto& lat = monitor_.latency();
  result_.mean_latency = lat.mean();
  result_.p50_latency = lat.quantile(0.50);
  result_.p95_latency = lat.quantile(0.95);

  const SenderStats s = ol_sender_ ? ol_sender_->stats() : tq_sender_->stats();
  result_.data_tx = s.data_tx - warm_sender_.data_tx;
  result_.hot_tx = s.hot_tx - warm_sender_.hot_tx;
  result_.cold_tx = s.cold_tx - warm_sender_.cold_tx;
  result_.repair_tx = s.repair_tx - warm_sender_.repair_tx;
  result_.nacks_received = s.nacks_received - warm_sender_.nacks_received;
  result_.redundant_tx = redundant_tx_;
  result_.redundant_fraction =
      result_.data_tx > 0
          ? static_cast<double>(result_.redundant_tx) /
                static_cast<double>(result_.data_tx)
          : 0.0;

  std::uint64_t nacks_sent = 0;
  std::uint64_t nacks_suppressed = 0;
  for (const auto& rig : receivers_) {
    nacks_sent += rig.agent->stats().nacks_sent;
    nacks_suppressed += rig.agent->stats().suppressed;
  }
  result_.nacks_sent = nacks_sent - warm_nacks_sent_;
  result_.nacks_suppressed = nacks_suppressed;

  const std::uint64_t delivered =
      data_channel_.stats().delivered - warm_delivered_;
  // Shared-stage drops count once per receiver (the packet reached nobody).
  // Warmup-window shared drops are not tracked separately; with warmup a
  // small fraction of the run, the bias is negligible.
  const std::uint64_t dropped = data_channel_.stats().dropped -
                                warm_dropped_ +
                                shared_drops_ * cfg_.num_receivers;
  result_.observed_loss =
      (delivered + dropped) > 0
          ? static_cast<double>(dropped) /
                static_cast<double>(delivered + dropped)
          : 0.0;

  double fb_bytes = 0.0;
  for (const auto& rig : receivers_) {
    if (rig.fb_channel) fb_bytes += rig.fb_channel->stats().bytes_sent;
  }
  if (mcast_fb_) fb_bytes += mcast_fb_->stats().bytes_sent;
  result_.offered_fb_kbps =
      (fb_bytes - warm_fb_bytes_) * 8.0 / cfg_.duration / 1000.0;
  result_.offered_data_kbps =
      (data_channel_.stats().bytes_sent - warm_data_bytes_) * 8.0 /
      cfg_.duration / 1000.0;

  result_.inserts = workload_.inserts();
  result_.updates = workload_.updates();
  result_.versions_introduced = monitor_.versions_introduced();
  result_.versions_received = monitor_.versions_received();

  result_.final_live = pub_.live_count();
  if (tq_sender_ != nullptr) {
    result_.final_hot_depth = tq_sender_->hot_depth();
    result_.final_cold_depth = tq_sender_->cold_depth();
  } else if (ol_sender_) {
    result_.final_hot_depth = ol_sender_->queue_depth();
  }
  return result_;
}

analysis::FluidParams fluid_params_from(const ExperimentConfig& cfg) {
  analysis::FluidParams fp;
  switch (cfg.variant) {
    case Variant::kOpenLoop:
      fp.variant = analysis::FluidVariant::kOpenLoop;
      break;
    case Variant::kTwoQueue:
      fp.variant = analysis::FluidVariant::kTwoQueue;
      break;
    case Variant::kFeedback:
      fp.variant = analysis::FluidVariant::kFeedback;
      break;
  }

  fp.lambda = cfg.workload.insert_rate;
  fp.update_rate = cfg.workload.update_rate;
  if (cfg.workload.death_mode == DeathMode::kPerTransmission) {
    fp.death = analysis::FluidDeath::kPerTransmission;
    fp.p_death = cfg.workload.p_death;
  } else {
    // Fixed and Pareto lifetimes approximate as memoryless with the same
    // mean — the fluid flows depend on lifetimes only through their rate.
    fp.death = analysis::FluidDeath::kLifetime;
    fp.mean_lifetime = cfg.workload.mean_lifetime;
  }

  const double record_bits = sim::bits(cfg.workload.record_size);
  fp.mu_announce = record_bits > 0.0 ? cfg.mu_data / record_bits : 0.0;
  fp.hot_share = cfg.hot_share;
  const double nack_bits = sim::bits(cfg.receiver.nack_size);
  fp.mu_nack = nack_bits > 0.0 ? cfg.mu_fb / nack_bits : 0.0;

  // One shared-stage draw drops the packet for every receiver; leaf loss is
  // then independent: p_eff = shared + (1 - shared) * leaf. (Bursty loss
  // keeps the same mean, which is all the fluid flows see.)
  fp.loss = cfg.shared_loss_rate +
            (1.0 - cfg.shared_loss_rate) * cfg.loss_rate;
  fp.nack_loss = cfg.nack_loss_rate;
  fp.receiver_ttl = cfg.receiver_ttl;
  fp.delay = cfg.delay;
  fp.retry_timeout = cfg.receiver.retry_timeout;
  fp.retry_backoff = cfg.receiver.retry_backoff;
  fp.max_retries = cfg.receiver.max_retries;

  fp.cohort = cfg.fluid_cohort;
  fp.max_pending_repairs =
      static_cast<double>(TwoQueueConfig{}.max_pending_repairs);
  fp.nack_batch = static_cast<double>(cfg.receiver.max_batch);

  fp.duration = cfg.duration;
  fp.warmup = cfg.warmup;
  fp.sample_interval = cfg.sample_interval;
  return fp;
}

namespace {

// Pure-fluid backend: no event simulation at all, just the ODE cohort.
ExperimentResult run_fluid(const ExperimentConfig& cfg) {
  const analysis::FluidParams fp = fluid_params_from(cfg);
  const analysis::FluidResult fr = analysis::solve_fluid(fp);

  ExperimentResult r;
  r.avg_consistency = fr.avg_consistency;
  r.fluid_cohort = cfg.fluid_cohort;
  r.fluid_consistency = fr.avg_consistency;
  r.fluid_live = fr.live;
  r.fluid_occupancy = fr.avg_occupancy;

  r.data_tx = static_cast<std::uint64_t>(fr.announce_tx);
  r.repair_tx = static_cast<std::uint64_t>(fr.repair_tx);
  r.redundant_tx = static_cast<std::uint64_t>(fr.redundant_tx);
  r.redundant_fraction =
      fr.announce_tx > 0.0 ? fr.redundant_tx / fr.announce_tx : 0.0;
  r.nacks_sent =
      static_cast<std::uint64_t>(fr.nacks_per_receiver * cfg.fluid_cohort);
  r.observed_loss = fp.loss;

  const double record_bits = sim::bits(cfg.workload.record_size);
  r.offered_data_kbps =
      cfg.duration > 0.0
          ? fr.announce_tx * record_bits / cfg.duration / 1000.0
          : 0.0;
  const double nack_bits = sim::bits(cfg.receiver.nack_size);
  r.offered_fb_kbps =
      cfg.duration > 0.0
          ? fr.nacks_per_receiver * nack_bits / cfg.duration / 1000.0
          : 0.0;

  r.inserts = static_cast<std::uint64_t>(fp.lambda *
                                         (cfg.warmup + cfg.duration));
  r.updates = 0;
  r.final_live = static_cast<std::size_t>(fr.live);
  r.final_hot_depth = static_cast<std::size_t>(fr.hot_backlog);

  r.timeline.reserve(fr.timeline.size());
  for (const auto& pt : fr.timeline) {
    r.timeline.push_back(TimelinePoint{pt.time, pt.consistency});
  }
  return r;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  if (cfg.backend == Backend::kFluid) return run_fluid(cfg);
  if (cfg.shards > 1) {
    // The sharded engine covers a (large) subset of configurations; outside
    // it, fall back to the single-queue engine. Surface each distinct
    // fallback reason once per process — a sweep that silently runs
    // single-queue looks exactly like one that sharded, and "why is this
    // not faster" deserves an answer without a debugger. CLI front ends
    // that pre-check sharded_supported() and clamp cfg.shards themselves
    // never reach this notice.
    std::string why;
    if (sharded_supported(cfg, why)) return run_sharded(cfg);
    static std::mutex seen_mu;
    static std::set<std::string> seen;
    {
      const std::lock_guard<std::mutex> lock(seen_mu);
      if (seen.insert(why).second) {
        std::fprintf(stderr,
                     "note: shards=%zu requested but %s; using the "
                     "single-queue engine (further runs with this reason "
                     "stay quiet)\n",
                     cfg.shards, why.c_str());
      }
    }
  }
  Experiment exp(cfg);
  if (cfg.backend == Backend::kHybrid) {
    exp.attach_fluid_cohort(cfg.fluid_cohort);
  }
  exp.run_warmup();
  return exp.finish();
}

}  // namespace sst::core
