#include "core/experiment.hpp"

#include <memory>

#include "core/monitor.hpp"
#include "core/open_loop.hpp"
#include "core/two_queue.hpp"
#include "net/channel.hpp"
#include "net/link.hpp"
#include "sched/drr.hpp"
#include "sched/hierarchical.hpp"
#include "sched/lottery.hpp"
#include "sched/stride.hpp"
#include "sched/wfq.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace sst::core {

namespace {

std::unique_ptr<sched::Scheduler> make_scheduler(SchedulerKind kind,
                                                 const sim::Rng& rng) {
  switch (kind) {
    case SchedulerKind::kStride:
      return std::make_unique<sched::StrideScheduler>();
    case SchedulerKind::kLottery:
      return std::make_unique<sched::LotteryScheduler>(rng.fork("lottery"));
    case SchedulerKind::kWfq:
      return std::make_unique<sched::WfqScheduler>();
    case SchedulerKind::kDrr:
      return std::make_unique<sched::DrrScheduler>();
    case SchedulerKind::kHierarchical:
      return std::make_unique<sched::HierarchicalScheduler>();
  }
  return std::make_unique<sched::StrideScheduler>();
}

std::unique_ptr<net::LossModel> make_loss(const ExperimentConfig& cfg,
                                          double rate, sim::Rng rng) {
  std::unique_ptr<net::LossModel> base;
  if (rate <= 0.0) {
    base = std::make_unique<net::NoLoss>();
  } else if (cfg.bursty_loss) {
    base = std::make_unique<net::GilbertElliottLoss>(
        net::GilbertElliottLoss::with_mean(rate, cfg.mean_burst_len, rng));
  } else {
    base = std::make_unique<net::BernoulliLoss>(rate, rng);
  }
  if (!cfg.outages.empty()) {
    return std::make_unique<net::OutageLoss>(std::move(base), cfg.outages);
  }
  return base;
}

std::unique_ptr<net::DelayModel> make_delay(const ExperimentConfig& cfg,
                                            sim::Rng rng) {
  if (cfg.jitter > 0.0) {
    return std::make_unique<net::UniformJitterDelay>(cfg.delay, cfg.jitter,
                                                     rng);
  }
  return std::make_unique<net::FixedDelay>(cfg.delay);
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  sim::Simulator sim;
  const sim::Rng root(cfg.seed);

  PublisherTable pub;
  // Construction order fixes listener order: monitor sees changes first, so
  // consistency bookkeeping is current when protocol hooks run.
  ConsistencyMonitor monitor(sim, pub);
  Workload workload(sim, pub, cfg.workload, root.fork("workload"));

  // Receivers.
  std::vector<std::unique_ptr<ReceiverTable>> tables;
  std::vector<std::unique_ptr<ReceiverAgent>> agents;
  // Feedback path per receiver: ReceiverAgent -> Link(mu_fb) -> lossy
  // reverse channel -> sender.handle_nack.
  std::vector<std::unique_ptr<net::Link<NackMsg>>> fb_links;
  std::vector<std::unique_ptr<net::Channel<NackMsg>>> fb_channels;

  net::Channel<DataMsg> data_channel(sim);

  const bool feedback = cfg.variant == Variant::kFeedback;
  const double nack_loss =
      cfg.nack_loss_rate < 0 ? cfg.loss_rate : cfg.nack_loss_rate;

  // The sender is created after the channel wiring below; NACK delivery
  // closes over this pointer.
  TwoQueueSender* tq_sender = nullptr;

  // Multicast feedback: one shared group over which every NACK reaches the
  // sender and every other receiver (observe_nack), enabling slotting and
  // damping. Built after the agents exist; senders enqueue into it via the
  // shared pointer below.
  std::unique_ptr<net::Channel<NackMsg>> mcast_fb;
  if (feedback && cfg.multicast_feedback) {
    mcast_fb = std::make_unique<net::Channel<NackMsg>>(sim);
    mcast_fb->add_receiver(
        make_loss(cfg, nack_loss, root.fork("nack-loss-sender")),
        make_delay(cfg, root.fork("nack-delay-sender")),
        [&tq_sender](const NackMsg& nack) {
          if (tq_sender != nullptr) tq_sender->handle_nack(nack);
        });
  }

  for (std::size_t r = 0; r < cfg.num_receivers; ++r) {
    tables.push_back(
        std::make_unique<ReceiverTable>(sim, cfg.receiver_ttl));
    monitor.attach(*tables.back());

    std::unique_ptr<net::Channel<NackMsg>>* fb_channel_slot = nullptr;
    if (feedback && !cfg.multicast_feedback) {
      fb_channels.push_back(std::make_unique<net::Channel<NackMsg>>(sim));
      fb_channel_slot = &fb_channels.back();
      (*fb_channel_slot)
          ->add_receiver(
              make_loss(cfg, nack_loss, root.fork("nack-loss", r)),
              make_delay(cfg, root.fork("nack-delay", r)),
              [&tq_sender](const NackMsg& nack) {
                if (tq_sender != nullptr) tq_sender->handle_nack(nack);
              });
      // NACKs drain at mu_fb; a bounded queue drops feedback bursts that
      // exceed the budget instead of letting stale NACKs pile up.
      net::Channel<NackMsg>* chan = fb_channel_slot->get();
      fb_links.push_back(std::make_unique<net::Link<NackMsg>>(
          sim, cfg.mu_fb,
          [chan](const NackMsg& nack, sim::Bytes size) {
            chan->send(nack, size);
          },
          /*queue_limit=*/8));
    }

    ReceiverConfig rcfg = cfg.receiver;
    rcfg.feedback = feedback;
    if (cfg.multicast_feedback) {
      net::Channel<NackMsg>* group = mcast_fb.get();
      const auto origin = static_cast<std::uint32_t>(r + 1);
      agents.push_back(std::make_unique<ReceiverAgent>(
          sim, *tables.back(), rcfg,
          [group, origin](const NackMsg& nack) {
            if (group != nullptr) {
              NackMsg tagged = nack;
              tagged.origin = origin;
              group->send(tagged, tagged.size);
            }
          },
          root.fork("agent", r)));
    } else {
      net::Link<NackMsg>* link = feedback ? fb_links.back().get() : nullptr;
      agents.push_back(std::make_unique<ReceiverAgent>(
          sim, *tables.back(), rcfg,
          [link](const NackMsg& nack) {
            if (link != nullptr) link->send(nack, nack.size);
          },
          root.fork("agent", r)));
    }

    const double fwd_loss = r < cfg.receiver_loss_rates.size()
                                ? cfg.receiver_loss_rates[r]
                                : cfg.loss_rate;
    ReceiverAgent* agent = agents.back().get();
    if (feedback && cfg.multicast_feedback) {
      // This receiver also overhears the group's NACK traffic.
      const auto origin = static_cast<std::uint32_t>(r + 1);
      mcast_fb->add_receiver(
          make_loss(cfg, nack_loss, root.fork("nack-observe-loss", r)),
          make_delay(cfg, root.fork("nack-observe-delay", r)),
          [agent, origin](const NackMsg& nack) {
            if (nack.origin != origin) agent->observe_nack(nack);
          });
    }
    data_channel.add_receiver(
        make_loss(cfg, fwd_loss, root.fork("loss", r)),
        make_delay(cfg, root.fork("delay", r)),
        [agent](const DataMsg& msg) { agent->handle(msg); });
  }

  // Oracle removal: the paper's model eliminates expired records "from both
  // the sender's and receivers' tables".
  if (cfg.oracle_remove) {
    std::vector<ReceiverTable*> raw;
    raw.reserve(tables.size());
    for (auto& t : tables) raw.push_back(t.get());
    pub.subscribe([raw](const Record& rec, ChangeKind kind) {
      if (kind == ChangeKind::kRemove) {
        for (ReceiverTable* t : raw) t->remove(rec.key);
      }
    });
  }

  // Redundancy oracle: a transmission is redundant if every receiver already
  // holds the announced version.
  std::uint64_t redundant_tx = 0;
  std::vector<ReceiverTable*> raw_tables;
  raw_tables.reserve(tables.size());
  for (auto& t : tables) raw_tables.push_back(t.get());
  auto count_redundant = [&redundant_tx, &raw_tables](const DataMsg& msg) {
    for (ReceiverTable* t : raw_tables) {
      const auto* e = t->find(msg.key);
      if (e == nullptr || e->version < msg.version) return;
    }
    ++redundant_tx;
  };

  // Shared upstream (backbone) loss stage: one draw drops the packet for
  // every receiver; survivors then face their independent leaf losses.
  auto shared_loss =
      std::make_shared<sim::Rng>(root.fork("shared-loss"));
  std::uint64_t shared_drops = 0;
  auto transmit = [&data_channel, &cfg, shared_loss,
                   &shared_drops](const DataMsg& msg) {
    if (cfg.shared_loss_rate > 0 &&
        shared_loss->bernoulli(cfg.shared_loss_rate)) {
      ++shared_drops;
      return;
    }
    data_channel.send(msg, msg.size);
  };

  std::unique_ptr<OpenLoopSender> ol_sender;
  std::unique_ptr<TwoQueueSender> tq_sender_owned;
  if (cfg.variant == Variant::kOpenLoop) {
    ol_sender = std::make_unique<OpenLoopSender>(sim, pub, workload,
                                                 cfg.mu_data, transmit);
    ol_sender->on_transmit(count_redundant);
  } else {
    TwoQueueConfig tq;
    tq.mu_data = cfg.mu_data;
    tq.hot_share = cfg.hot_share;
    tq.feedback = feedback;
    tq_sender_owned = std::make_unique<TwoQueueSender>(
        sim, pub, workload, tq,
        make_scheduler(cfg.scheduler, root.fork("sched")), transmit);
    tq_sender_owned->on_transmit(count_redundant);
    tq_sender = tq_sender_owned.get();
  }

  workload.start();

  // Warm-up, then reset measurement state.
  sim.run_until(cfg.warmup);
  monitor.reset_stats();
  redundant_tx = 0;
  const SenderStats warm_sender =
      ol_sender ? ol_sender->stats() : tq_sender->stats();
  std::uint64_t warm_nacks_sent = 0;
  for (const auto& a : agents) warm_nacks_sent += a->stats().nacks_sent;
  const std::uint64_t warm_delivered = data_channel.stats().delivered;
  const std::uint64_t warm_dropped = data_channel.stats().dropped;
  double warm_fb_bytes = 0.0;
  for (const auto& ch : fb_channels) warm_fb_bytes += ch->stats().bytes_sent;
  if (mcast_fb) warm_fb_bytes += mcast_fb->stats().bytes_sent;
  const double warm_data_bytes = data_channel.stats().bytes_sent;

  // Optional c(t) timeline via integral differencing.
  ExperimentResult result;
  if (cfg.sample_interval > 0) {
    auto sampler = std::make_shared<sim::PeriodicTimer>(sim);
    auto last_integral = std::make_shared<double>(0.0);
    const double interval = cfg.sample_interval;
    sampler->start(interval, [&monitor, &result, last_integral, interval,
                              &sim] {
      const double integral = monitor.consistency_integral();
      result.timeline.push_back(
          TimelinePoint{sim.now(), (integral - *last_integral) / interval});
      *last_integral = integral;
    });
    sim.run_until(cfg.warmup + cfg.duration);
    sampler->stop();
  } else {
    sim.run_until(cfg.warmup + cfg.duration);
  }

  // Collect.
  result.avg_consistency = monitor.average_consistency();
  auto& lat = monitor.latency();
  result.mean_latency = lat.mean();
  result.p50_latency = lat.quantile(0.50);
  result.p95_latency = lat.quantile(0.95);

  const SenderStats s = ol_sender ? ol_sender->stats() : tq_sender->stats();
  result.data_tx = s.data_tx - warm_sender.data_tx;
  result.hot_tx = s.hot_tx - warm_sender.hot_tx;
  result.cold_tx = s.cold_tx - warm_sender.cold_tx;
  result.repair_tx = s.repair_tx - warm_sender.repair_tx;
  result.nacks_received = s.nacks_received - warm_sender.nacks_received;
  result.redundant_tx = redundant_tx;
  result.redundant_fraction =
      result.data_tx > 0
          ? static_cast<double>(result.redundant_tx) /
                static_cast<double>(result.data_tx)
          : 0.0;

  std::uint64_t nacks_sent = 0;
  std::uint64_t nacks_suppressed = 0;
  for (const auto& a : agents) {
    nacks_sent += a->stats().nacks_sent;
    nacks_suppressed += a->stats().suppressed;
  }
  result.nacks_sent = nacks_sent - warm_nacks_sent;
  result.nacks_suppressed = nacks_suppressed;

  const std::uint64_t delivered =
      data_channel.stats().delivered - warm_delivered;
  // Shared-stage drops count once per receiver (the packet reached nobody).
  // Warmup-window shared drops are not tracked separately; with warmup a
  // small fraction of the run, the bias is negligible.
  const std::uint64_t dropped = data_channel.stats().dropped - warm_dropped +
                                shared_drops * cfg.num_receivers;
  result.observed_loss =
      (delivered + dropped) > 0
          ? static_cast<double>(dropped) /
                static_cast<double>(delivered + dropped)
          : 0.0;

  double fb_bytes = 0.0;
  for (const auto& ch : fb_channels) fb_bytes += ch->stats().bytes_sent;
  if (mcast_fb) fb_bytes += mcast_fb->stats().bytes_sent;
  result.offered_fb_kbps =
      (fb_bytes - warm_fb_bytes) * 8.0 / cfg.duration / 1000.0;
  result.offered_data_kbps =
      (data_channel.stats().bytes_sent - warm_data_bytes) * 8.0 /
      cfg.duration / 1000.0;

  result.inserts = workload.inserts();
  result.updates = workload.updates();
  result.versions_introduced = monitor.versions_introduced();
  result.versions_received = monitor.versions_received();

  result.final_live = pub.live_count();
  if (tq_sender != nullptr) {
    result.final_hot_depth = tq_sender->hot_depth();
    result.final_cold_depth = tq_sender->cold_depth();
  } else if (ol_sender) {
    result.final_hot_depth = ol_sender->queue_depth();
  }
  return result;
}

}  // namespace core
