#include "core/two_queue.hpp"

#include <algorithm>
#include <array>

#include "check/annotate.hpp"

namespace sst::core {

TwoQueueSender::TwoQueueSender(sim::Simulator& sim, PublisherTable& table,
                               Workload& workload, TwoQueueConfig config,
                               std::unique_ptr<sched::Scheduler> scheduler,
                               std::function<void(const DataMsg&)> transmit)
    : sim_(&sim),
      table_(&table),
      workload_(&workload),
      config_(config),
      scheduler_(std::move(scheduler)),
      transmit_(std::move(transmit)),
      service_timer_(sim) {
  scheduler_->add_class(config_.hot_share);        // class 0 = hot
  scheduler_->add_class(1.0 - config_.hot_share);  // class 1 = cold
  table_->subscribe([this](const Record& rec, ChangeKind kind) {
    on_table_change(rec, kind);
  });
}

void TwoQueueSender::set_hot_share(double hot_share) {
  config_.hot_share = hot_share;
  scheduler_->set_weight(0, hot_share);
  scheduler_->set_weight(1, 1.0 - hot_share);
}

void TwoQueueSender::on_table_change(const Record& rec, ChangeKind kind) {
  switch (kind) {
    case ChangeKind::kInsert:
    case ChangeKind::kUpdate:
      // New or changed data is (presumed) inconsistent -> hot queue.
      to_hot(rec.key);
      break;
    case ChangeKind::kRemove:
      drop_key_state(rec.key);  // queue entries are skipped lazily
      break;
  }
}

void TwoQueueSender::drop_key_state(Key key) {
  const auto it = state_.find(key);
  if (it == state_.end()) return;
  if (it->second.repair_pending && pending_repairs_ > 0) --pending_repairs_;
  state_.erase(it);
}

void TwoQueueSender::to_hot(Key key) {
  KeyState& st = state_[key];
  if (st.location == QueueState::kHot) return;  // already pending
  st.location = QueueState::kHot;
  hot_.push_back(key);
  maybe_start_service();
}

void TwoQueueSender::pause() {
  if (paused_) return;
  paused_ = true;
  if (busy_) {
    // The packet in service is lost with the crash. Its record must not
    // silently leave the announcement cycle: restore it to the head of the
    // queue it came from — unless a concurrent NACK/update already re-queued
    // it hot (its location no longer matches), or it died.
    service_timer_.cancel();
    busy_ = false;
    const auto it = state_.find(in_service_key_);
    const QueueState origin =
        in_service_from_hot_ ? QueueState::kHot : QueueState::kCold;
    if (it != state_.end() && it->second.location == origin) {
      (in_service_from_hot_ ? hot_ : cold_).push_front(in_service_key_);
    }
  }
}

void TwoQueueSender::resume() {
  if (!paused_) return;
  paused_ = false;
  maybe_start_service();
}

void TwoQueueSender::handle_nack(const NackMsg& nack) {
  if (!config_.feedback) return;
  if (paused_) return;  // a crashed sender hears nothing
  // Whoever delivers a NACK is the thread driving sim_ (the root executor's
  // cross-shard merge schedules onto it; the single engine's feedback
  // channel lives on it) — the owning-engine serial role by construction.
  check::engine_role.assert_held();
  ++stats_.nacks_received;
  // Stash only; the first stash of the instant schedules the flush, which
  // the kernel runs after every event already queued for this timestamp
  // (see the header contract on canonical same-instant ordering).
  pending_nacks_.push_back(nack);
  if (pending_nacks_.size() == 1) {
    sim_->at(sim_->now(), [this] {
      // Runs on the same simulator that accepted the stash: same thread,
      // same engine role.
      check::engine_role.assert_held();
      flush_nacks();
    });
  }
}

void TwoQueueSender::flush_nacks() {
  // Canonical content order. Ties in content are interchangeable — the
  // sender's reaction depends only on the seqs named — so stable_sort's
  // stash-order residue cannot leak into state.
  std::stable_sort(pending_nacks_.begin(), pending_nacks_.end(),
                   nack_content_less);
  for (const NackMsg& nack : pending_nacks_) apply_nack(nack);
  pending_nacks_.clear();
  maybe_start_service();
}

void TwoQueueSender::apply_nack(const NackMsg& nack) {
  for (const std::uint64_t seq : nack.missing_seqs) {
    const auto log_it = seq_log_.find(seq);
    if (log_it == seq_log_.end()) {
      ++stats_.nacks_ignored;  // log evicted; cold cycle will recover it
      continue;
    }
    const Key key = log_it->second.key;
    const Version tx_version = log_it->second.version;
    const Record* rec = table_->find(key);
    if (rec == nullptr || rec->version != tx_version) {
      // Dead or superseded: the newer version is already queued hot.
      ++stats_.nacks_ignored;
      continue;
    }
    auto st_it = state_.find(key);
    if (st_it == state_.end()) {
      ++stats_.nacks_ignored;
      continue;
    }
    if (st_it->second.location == QueueState::kHot) {
      // Already scheduled (e.g. another receiver NACKed first) — implicit
      // NACK suppression.
      ++stats_.nacks_ignored;
      continue;
    }
    if (pending_repairs_ >= config_.max_pending_repairs) {
      // Repair damping: the hot queue is saturated with repairs; let the
      // cold cycle recover this loss instead of starving new data.
      ++stats_.nacks_ignored;
      continue;
    }
    st_it->second.location = QueueState::kHot;
    st_it->second.repair_pending = true;
    st_it->second.repairs_seq = seq;
    ++pending_repairs_;
    hot_.push_back(key);
  }
}

double TwoQueueSender::head_bits(std::deque<Key>& queue,
                                 QueueState expected) {
  while (!queue.empty()) {
    const Key key = queue.front();
    const auto it = state_.find(key);
    if (it == state_.end() || it->second.location != expected) {
      queue.pop_front();  // dead or migrated; stale entry
      continue;
    }
    const Record* rec = table_->find(key);
    if (rec == nullptr) {
      queue.pop_front();
      continue;
    }
    return sim::bits(rec->size);
  }
  return sched::kEmpty;
}

void TwoQueueSender::maybe_start_service() {
  if (busy_ || paused_) return;
  const std::array<double, 2> heads = {head_bits(hot_, QueueState::kHot),
                                       head_bits(cold_, QueueState::kCold)};
  const std::size_t cls = scheduler_->pick(heads);
  if (cls == sched::kNone) return;

  const bool from_hot = cls == 0;
  std::deque<Key>& queue = from_hot ? hot_ : cold_;
  const Key key = queue.front();
  queue.pop_front();

  busy_ = true;
  in_service_key_ = key;
  in_service_from_hot_ = from_hot;
  const Record* rec = table_->find(key);  // head_bits validated it
  const sim::Duration service =
      sim::transmission_time(rec->size, config_.mu_data);
  service_timer_.arm(service,
                     [this, key, from_hot] { complete_service(key, from_hot); });
}

void TwoQueueSender::complete_service(Key key, bool from_hot) {
  busy_ = false;
  const Record* rec = table_->find(key);
  if (rec == nullptr) {
    // Died during service; the slot is spent.
    maybe_start_service();
    return;
  }
  KeyState& st = state_[key];

  DataMsg msg;
  msg.seq = next_seq_++;
  msg.key = rec->key;
  msg.version = rec->version;
  msg.size = rec->size;
  msg.sent_at = sim_->now();
  msg.has_prev = st.has_last_seq;
  msg.prev_seq = st.last_seq;
  if (from_hot && st.repair_pending) {
    msg.is_repair = true;
    msg.repairs_seq = st.repairs_seq;
    st.repair_pending = false;
    if (pending_repairs_ > 0) --pending_repairs_;
    ++stats_.repair_tx;
  }
  st.has_last_seq = true;
  st.last_seq = msg.seq;
  transmit_(msg);
  ++stats_.data_tx;
  if (from_hot) {
    ++stats_.hot_tx;
  } else {
    ++stats_.cold_tx;
  }
  for (const auto& fn : observers_) fn(msg);

  // Log the transmission for NACK resolution.
  if (config_.feedback) {
    seq_log_.emplace(msg.seq, LogEntry{msg.key, msg.version});
    seq_order_.push_back(msg.seq);
    while (seq_order_.size() > config_.seq_log_capacity) {
      seq_log_.erase(seq_order_.front());
      seq_order_.pop_front();
    }
  }

  // Per-transmission death draw (Table 1), then the H -> C transition of
  // Figure 7: a surviving record always lands at the cold tail.
  if (workload_->protocol_owns_death() && workload_->draw_death()) {
    ++stats_.deaths;
    drop_key_state(key);
    table_->remove(key);
  } else if (from_hot) {
    st.location = QueueState::kCold;
    cold_.push_back(key);
  } else if (st.location == QueueState::kCold) {
    cold_.push_back(key);
  }
  // else: a NACK or update flipped the record to hot while this cold
  // transmission was in flight; it is already queued hot and must not be
  // demoted (Figure 7's C -> H transition wins).
  maybe_start_service();
}

}  // namespace sst::core
