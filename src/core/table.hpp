// table.hpp — publisher and receiver soft state tables (paper Section 2).
//
// The publisher table is the authoritative, evolving {key, value} store; the
// receiver table is the subscriber's converging copy, each entry guarded by
// an expiration timer that is reset by every refresh and deletes the entry
// when announcements cease — the defining soft state behaviour.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/adaptive_ttl.hpp"
#include "core/record.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace sst::core {

/// The sender-side authoritative table. Emits change notifications to any
/// number of listeners (the transmission queues and the consistency monitor
/// both subscribe).
class PublisherTable {
 public:
  using Listener = std::function<void(const Record&, ChangeKind)>;

  /// Registers a change listener. Listeners run synchronously, in
  /// registration order, on every mutation.
  void subscribe(Listener fn) { listeners_.push_back(std::move(fn)); }

  /// Inserts a new record and returns its key. Version starts at 1.
  Key insert(std::vector<std::uint8_t> value, sim::Bytes size);

  /// Updates a record's value, bumping its version. Returns false if the key
  /// is not live.
  bool update(Key key, std::vector<std::uint8_t> value);

  /// Removes a record (lifetime expiry / publisher delete). Returns false if
  /// the key is not live.
  bool remove(Key key);

  /// Looks up a live record.
  [[nodiscard]] const Record* find(Key key) const;

  /// Number of live records |L(t)|.
  [[nodiscard]] std::size_t live_count() const { return records_.size(); }

  /// Visits every live record.
  void for_each(const std::function<void(const Record&)>& fn) const;

  /// Total inserts over the table's lifetime.
  [[nodiscard]] std::uint64_t total_inserts() const { return next_key_ - 1; }

 private:
  void notify(const Record& rec, ChangeKind kind);

  std::unordered_map<Key, Record> records_;
  std::vector<Listener> listeners_;
  Key next_key_ = 1;
};

/// The receiver-side table: a copy of the publisher's table maintained purely
/// from received announcements, with per-entry soft state expiry.
class ReceiverTable {
 public:
  struct Entry {
    Version version = 0;
    sim::SimTime refreshed_at = 0;
    sim::EventId expiry_event = sim::kNoEvent;
    RefreshIntervalEstimator interval;  // used in adaptive-TTL mode
    sim::Duration armed_ttl = 0;        // TTL of the pending expiry timer
  };

  /// `ttl` is the entry lifetime without refresh; 0 disables expiry (the
  /// paper's core experiments measure consistency over the publisher's live
  /// set, so receiver expiry is exercised separately).
  ReceiverTable(sim::Simulator& sim, sim::Duration ttl)
      : sim_(&sim), ttl_(ttl) {}

  ~ReceiverTable();
  ReceiverTable(const ReceiverTable&) = delete;
  ReceiverTable& operator=(const ReceiverTable&) = delete;

  /// Called after a refresh is applied. `was_new` is true for first receipt
  /// of the key; `version_changed` is true when the stored version changed.
  using RefreshListener =
      std::function<void(Key, Version, bool was_new, bool version_changed)>;
  /// Called when an entry expires (refresh timer fired) or is removed.
  using ExpireListener = std::function<void(Key, Version)>;

  void on_refresh(RefreshListener fn) { refresh_fns_.push_back(std::move(fn)); }
  void on_expire(ExpireListener fn) { expire_fns_.push_back(std::move(fn)); }

  /// Applies a received announcement: inserts or updates the entry (older
  /// versions than the stored one are ignored but still reset the expiry
  /// timer — hearing any announcement proves the publisher is alive).
  void refresh(Key key, Version version);

  /// Removes an entry without a timer (used by experiments that model the
  /// paper's idealized simultaneous expiry "from both the sender's and
  /// receivers' tables", and by explicit-teardown extensions).
  void remove(Key key);

  /// Removes every entry, notifying expire listeners for each — the
  /// hard-state "flush on connection reset" primitive (a soft state protocol
  /// never needs this; its entries expire individually).
  void clear();

  [[nodiscard]] const Entry* find(Key key) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] sim::Duration ttl() const { return ttl_; }

  /// Changes the TTL for subsequent refreshes.
  void set_ttl(sim::Duration ttl) { ttl_ = ttl; }

  /// Switches to scalable-timer mode (Sharma et al., paper Section 7): each
  /// entry expires after `config.factor` ESTIMATED refresh intervals instead
  /// of a fixed TTL, so receivers track senders that adapt their refresh
  /// rates. Takes effect on subsequent refreshes.
  void enable_adaptive_ttl(AdaptiveTtlConfig config) {
    adaptive_ = config;
  }

  /// Returns the TTL currently armed for `key` (0 if none/absent) — test and
  /// diagnostics hook.
  [[nodiscard]] sim::Duration current_ttl(Key key) const;

 private:
  void arm_expiry(Key key, Entry& e);
  void expire(Key key);
  void notify_expire(Key key, Version version);

  sim::Simulator* sim_;
  sim::Duration ttl_;
  std::optional<AdaptiveTtlConfig> adaptive_;
  std::unordered_map<Key, Entry> entries_;
  std::vector<RefreshListener> refresh_fns_;
  std::vector<ExpireListener> expire_fns_;
};

}  // namespace sst::core
