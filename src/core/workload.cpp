#include "core/workload.hpp"

namespace sst::core {

Workload::Workload(sim::Simulator& sim, PublisherTable& table,
                   WorkloadParams params, sim::Rng rng)
    : sim_(&sim),
      table_(&table),
      params_(params),
      rng_(rng),
      insert_timer_(sim),
      update_timer_(sim) {
  // Maintain the live-key index from table notifications so that removals
  // triggered by the protocol (per-transmission death) are also tracked.
  table_->subscribe([this](const Record& rec, ChangeKind kind) {
    if (kind == ChangeKind::kInsert) {
      key_pos_[rec.key] = live_keys_.size();
      live_keys_.push_back(rec.key);
    } else if (kind == ChangeKind::kRemove) {
      const auto it = key_pos_.find(rec.key);
      if (it != key_pos_.end()) {
        const std::size_t pos = it->second;
        const Key last = live_keys_.back();
        live_keys_[pos] = last;
        key_pos_[last] = pos;
        live_keys_.pop_back();
        key_pos_.erase(it);
      }
    }
  });
}

void Workload::start() {
  running_ = true;
  schedule_insert();
  if (params_.update_rate > 0) schedule_update();
}

void Workload::stop() {
  running_ = false;
  insert_timer_.cancel();
  update_timer_.cancel();
}

void Workload::schedule_insert() {
  if (!running_ || params_.insert_rate <= 0) return;
  insert_timer_.arm(rng_.exponential(1.0 / params_.insert_rate),
                    [this] { do_insert(); });
}

void Workload::schedule_update() {
  if (!running_ || params_.update_rate <= 0) return;
  update_timer_.arm(rng_.exponential(1.0 / params_.update_rate),
                    [this] { do_update(); });
}

void Workload::do_insert() {
  const Key key = table_->insert(make_payload(), params_.record_size);
  ++inserts_;
  if (!protocol_owns_death()) {
    const sim::Duration life = draw_lifetime();
    sim_->after(life, [this, key] { table_->remove(key); });
  }
  schedule_insert();
}

void Workload::do_update() {
  if (!live_keys_.empty()) {
    const Key key = live_keys_[rng_.uniform_int(live_keys_.size())];
    table_->update(key, make_payload());
    ++updates_;
  }
  schedule_update();
}

sim::Duration Workload::draw_lifetime() {
  switch (params_.death_mode) {
    case DeathMode::kExponentialLifetime:
      return rng_.exponential(params_.mean_lifetime);
    case DeathMode::kFixedLifetime:
      return params_.mean_lifetime;
    case DeathMode::kParetoLifetime: {
      // Shape 1.5: mean = shape*xm/(shape-1) = 3*xm, so xm = mean/3.
      return rng_.pareto(1.5, params_.mean_lifetime / 3.0);
    }
    case DeathMode::kPerTransmission:
      return 0.0;  // unused
  }
  return 0.0;
}

WorkloadParams sensor_workload(double lambda_kbps) {
  WorkloadParams p;
  p.record_size = 64;
  p.death_mode = DeathMode::kExponentialLifetime;
  p.mean_lifetime = 600.0;
  p.insert_rate = 0.2;  // steady state ~ insert_rate * mean_lifetime sensors
  p.update_rate = sim::kbps(lambda_kbps) / sim::bits(p.record_size);
  return p;
}

std::vector<std::uint8_t> Workload::make_payload() {
  std::vector<std::uint8_t> payload(params_.payload_size);
  for (auto& b : payload) {
    b = static_cast<std::uint8_t>(rng_.next_u64() & 0xFF);
  }
  return payload;
}

}  // namespace sst::core
