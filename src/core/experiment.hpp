// experiment.hpp — one-call experiment harness for the paper's simulations.
//
// Wires together a publisher, workload, protocol sender, lossy data channel,
// one or more receivers, an optional rate-limited feedback path, and the
// consistency monitor; runs for a configured duration with a warm-up cutoff;
// and returns every metric the paper's figures report. All of the bench
// binaries, most integration tests, and the SSTP profile generator are thin
// sweeps over this harness.
//
// Two entry points: run_experiment() runs a fixed configuration start to
// finish, and the Experiment class exposes the same rig incrementally — run
// to a time, mutate the live system (crash/restart the sender, partition or
// degrade a receiver's path, add/remove receivers, change bandwidth), run
// on. The fault-injection layer (sst::fault) is built on the latter.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "analysis/meanfield.hpp"
#include "core/monitor.hpp"
#include "core/open_loop.hpp"
#include "core/receiver.hpp"
#include "core/two_queue.hpp"
#include "core/workload.hpp"
#include "net/channel.hpp"
#include "net/hostile.hpp"
#include "net/link.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "sim/units.hpp"

namespace sst::core {

/// Which protocol variant to run.
enum class Variant : std::uint8_t {
  kOpenLoop,  // Section 3: single FIFO announcement cycle
  kTwoQueue,  // Section 4: hot/cold queues, no feedback
  kFeedback,  // Section 5: hot/cold queues + receiver NACKs
};

/// Which population backend evaluates the experiment.
enum class Backend : std::uint8_t {
  kDiscrete,  // every receiver an event-driven object (the default)
  kFluid,     // pure mean-field ODE cohort (analysis::FluidIntegrator)
  kHybrid,    // N discrete receivers + an aggregate fluid cohort of M
};

/// Which proportional-share discipline splits hot/cold bandwidth.
enum class SchedulerKind : std::uint8_t {
  kStride,
  kLottery,
  kWfq,
  kDrr,
  kHierarchical,
};

/// Full experiment specification. Defaults reproduce the paper's common
/// operating point (45 kbps data bandwidth, 1000-byte announcements).
struct ExperimentConfig {
  WorkloadParams workload;

  Variant variant = Variant::kOpenLoop;
  SchedulerKind scheduler = SchedulerKind::kStride;

  sim::Rate mu_data = sim::kbps(45);  // sender data bandwidth (the paper's
                                      // mu_ch for open loop, mu_data else)
  double hot_share = 0.5;             // hot fraction of mu_data
  sim::Rate mu_fb = 0.0;              // feedback-path bandwidth
  ReceiverConfig receiver;            // NACK behaviour (feedback variant)

  double loss_rate = 0.1;        // forward-channel mean loss (per receiver)
  /// Loss on a shared upstream stage (backbone): one draw per transmission
  /// drops the packet for EVERY receiver. Correlated loss is what makes
  /// multicast NACK damping effective — all receivers share the gap, one
  /// overheard request serves them all.
  double shared_loss_rate = 0.0;
  double nack_loss_rate = -1.0;  // reverse-channel loss; <0 copies loss_rate
  bool bursty_loss = false;      // Gilbert-Elliott instead of Bernoulli
  double mean_burst_len = 4.0;   // packets, bursty mode
  /// Failure injection: total network outage (both directions) during these
  /// [start, end) windows — the paper's network partition scenario.
  std::vector<std::pair<double, double>> outages;
  sim::Duration delay = 0.01;    // one-way propagation delay
  sim::Duration jitter = 0.0;    // uniform extra delay (enables reordering)

  /// Hostile-channel behavior (reordering / duplication / scripted
  /// partitions) on the shared forward path and on each receiver's feedback
  /// path. Default-inactive configs build no pipeline stages at all, so
  /// existing FIFO configurations stay event-for-event identical.
  net::HostileConfig fwd_hostile;
  net::HostileConfig fb_hostile;

  std::size_t num_receivers = 1;
  /// Heterogeneous receivers: per-receiver forward loss rates. When shorter
  /// than num_receivers (or empty), remaining receivers use `loss_rate`.
  std::vector<double> receiver_loss_rates;
  /// Multicast feedback: all receivers share one feedback multicast group —
  /// every NACK reaches the sender AND every other receiver, enabling
  /// SRM-style slotting and damping (set receiver.nack_slot_max > 0).
  /// Feedback then bypasses the per-receiver rate-limited uplink.
  bool multicast_feedback = false;
  sim::Duration receiver_ttl = 0.0;  // 0 = no receiver-side expiry
  /// Propagate publisher removals to receiver tables (the paper's idealized
  /// "eliminated from both the sender's and receivers' tables"). Turn off to
  /// study stale-entry behaviour with real TTL expiry.
  bool oracle_remove = true;

  /// Population backend. kFluid replaces the event-driven receivers with a
  /// mean-field cohort (deterministic, seed-independent); kHybrid keeps the
  /// num_receivers discrete receivers and adds an aggregate fluid cohort of
  /// fluid_cohort receivers advanced in lockstep with simulated time,
  /// blended into avg_consistency with population weights.
  Backend backend = Backend::kDiscrete;
  double fluid_cohort = 1e6;  // cohort size M (kFluid / kHybrid)

  /// Event-engine shards for ONE replication (kDiscrete/kHybrid backends).
  /// 1 = the classic single-queue engine. K > 1 partitions the receivers
  /// into K contiguous blocks, each advanced on its own event queue in
  /// conservative-lookahead epochs (src/core/sharded.*). Results are
  /// bit-identical across shard counts for any supported configuration;
  /// unsupported combinations (see sharded_supported()) silently fall back
  /// to the single-queue engine under run_experiment().
  std::size_t shards = 1;

  sim::Duration duration = 2000.0;  // measured simulation time
  sim::Duration warmup = 200.0;     // discarded transient
  std::uint64_t seed = 1;

  sim::Duration sample_interval = 0.0;  // >0 records a c(t) timeline
};

/// One point of the c(t) timeline (windowed average over the last interval).
struct TimelinePoint {
  double time = 0.0;
  double consistency = 0.0;
};

/// Everything a run measures (over the post-warm-up window).
struct ExperimentResult {
  double avg_consistency = 0.0;  // E[c(t)]
  double mean_latency = 0.0;     // T_recv mean over successful receipts
  double p50_latency = 0.0;
  double p95_latency = 0.0;

  std::uint64_t data_tx = 0;
  std::uint64_t hot_tx = 0;
  std::uint64_t cold_tx = 0;
  std::uint64_t repair_tx = 0;
  std::uint64_t redundant_tx = 0;  // receiver(s) already had the version
  std::uint64_t nacks_sent = 0;
  std::uint64_t nacks_received = 0;
  std::uint64_t nacks_suppressed = 0;  // damped by overheard duplicates

  double redundant_fraction = 0.0;  // redundant_tx / data_tx
  double observed_loss = 0.0;       // measured forward loss rate
  double offered_data_kbps = 0.0;   // sender data rate actually used
  double offered_fb_kbps = 0.0;     // feedback rate actually used

  std::uint64_t inserts = 0;
  std::uint64_t updates = 0;
  std::uint64_t versions_introduced = 0;
  std::uint64_t versions_received = 0;

  std::size_t final_live = 0;
  std::size_t final_hot_depth = 0;
  std::size_t final_cold_depth = 0;

  // Fluid-tier outputs (backend kFluid/kHybrid; zeros otherwise).
  double fluid_cohort = 0.0;       // cohort size M that contributed
  double fluid_consistency = 0.0;  // the fluid tier's own E[c(t)]
  double fluid_live = 0.0;         // fluid live-record estimate at end
  analysis::FluidOccupancy fluid_occupancy;  // time-averaged occupancy

  std::vector<TimelinePoint> timeline;
};

/// The experiment rig, held open between run steps so faults can be applied
/// to the live system. Usage:
///
///   Experiment exp(cfg);
///   exp.run_warmup();
///   exp.run_until(900.0); exp.crash_sender();
///   exp.run_until(1020.0); exp.restart_sender();
///   ExperimentResult result = exp.finish();
///
/// With no mutations between run_warmup() and finish(), the run is
/// event-for-event identical to run_experiment(cfg): every fault control
/// path draws from RNG streams of its own, so merely *constructing* the
/// hooks perturbs nothing.
class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  /// Runs the warm-up window, then discards transient statistics. Must be
  /// called exactly once, before run_until()/finish().
  void run_warmup();

  /// Advances the simulation to absolute time `t` (warm-up included in the
  /// clock; a time in the past is a no-op).
  void run_until(double t);

  /// Runs to warmup + duration and collects every metric.
  ExperimentResult finish();

  [[nodiscard]] double now() const;
  [[nodiscard]] double end_time() const { return cfg_.warmup + cfg_.duration; }
  [[nodiscard]] double instantaneous_consistency() const;
  [[nodiscard]] ConsistencyMonitor& monitor() { return monitor_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const ExperimentConfig& config() const { return cfg_; }

  // --- live fault hooks (the sst::fault injector drives these) ---

  /// Sender crash: announcements stop, the packet in service is lost, and
  /// incoming NACKs fall on deaf ears until restart_sender().
  void crash_sender();
  void restart_sender();
  [[nodiscard]] bool sender_crashed() const;

  /// Partitions receiver `r` from the session (both directions: data in,
  /// feedback out) or heals it.
  void set_partition(std::size_t r, bool down);
  void set_partition_all(bool down);

  /// Layers transient extra loss probability `p` on receiver r's forward
  /// path (0 restores the base process).
  void set_extra_loss(std::size_t r, double p);
  void set_extra_loss_all(double p);

  /// Scales the sender's announcement bandwidth to factor * configured
  /// mu_data (bandwidth degradation; 1.0 restores).
  void set_bandwidth_factor(double factor);

  /// Late join: adds a brand-new receiver (empty table) mid-run. Returns its
  /// index. The monitor starts averaging it into c(t) immediately and
  /// records its catch-up latency.
  std::size_t add_receiver();

  /// Receiver leave: receiver `r` stops receiving, NACKing, and counting
  /// toward c(t). Irreversible (a rejoin is a new receiver).
  void detach_receiver(std::size_t r);

  [[nodiscard]] std::size_t receiver_count() const { return receivers_.size(); }
  [[nodiscard]] bool receiver_active(std::size_t r) const {
    return receivers_.at(r).active;
  }

  /// Cumulative protocol repair effort — NACK packets sent plus repair
  /// transmissions — suitable as a RecoveryTracker traffic counter. With a
  /// fluid cohort attached, includes the cohort's modeled repair flows.
  [[nodiscard]] double repair_traffic() const;

  /// Attaches an aggregate mean-field cohort of `m` receivers (the hybrid
  /// population tier). The cohort shares the sender's multicast announce
  /// stream — its parameters derive from this experiment's config — and is
  /// advanced in lockstep with simulated time. finish() blends it into
  /// avg_consistency with population weights m : num_receivers and reports
  /// its occupancy in the fluid_* result fields. Call before run_warmup().
  void attach_fluid_cohort(double m);

  [[nodiscard]] const analysis::FluidIntegrator* fluid_cohort() const {
    return fluid_.get();
  }

 private:
  struct ReceiverRig {
    std::unique_ptr<ReceiverTable> table;
    std::unique_ptr<ReceiverAgent> agent;
    std::unique_ptr<net::Channel<NackMsg>> fb_channel;  // unicast feedback
    std::unique_ptr<net::Link<NackMsg>> fb_link;
    std::unique_ptr<net::HostileChannel<NackMsg>> fb_hostile;
    net::SwitchableLoss* fwd_switch = nullptr;      // forward data path
    net::SwitchableLoss* rev_switch = nullptr;      // unicast feedback path
    net::SwitchableLoss* observe_switch = nullptr;  // multicast overhearing
    std::size_t mcast_ep = 0;   // endpoint on the shared feedback group
    bool has_mcast_ep = false;
    bool partitioned = false;
    bool active = true;
  };

  std::size_t add_receiver_rig();  // shared by ctor and add_receiver()
  void transmit(const DataMsg& msg);
  void count_redundant(const DataMsg& msg);
  /// Entry point into the shared feedback group. Same-instant sends are
  /// stashed and flushed at the end of the instant in canonical content
  /// order (nack_content_less), not event order: each observe endpoint
  /// consumes one loss/delay draw per NACK in group-entry order, so the
  /// order at an exact tie must be one the sharded engine's cross-shard
  /// drain can reproduce without the global event queue.
  void group_nack_send(const NackMsg& nack, sim::Bytes size);

  ExperimentConfig cfg_;
  sim::Simulator sim_;
  sim::Rng root_;
  bool feedback_ = false;
  double nack_loss_ = 0.0;

  PublisherTable pub_;
  // Construction order fixes listener order: monitor sees changes first, so
  // consistency bookkeeping is current when protocol hooks run.
  ConsistencyMonitor monitor_;
  Workload workload_;
  net::Channel<DataMsg> data_channel_;
  std::unique_ptr<net::HostileChannel<DataMsg>> fwd_hostile_;
  std::unique_ptr<net::Channel<NackMsg>> mcast_fb_;
  std::vector<std::pair<NackMsg, sim::Bytes>> pending_group_;  // see group_nack_send
  std::vector<ReceiverRig> receivers_;

  std::unique_ptr<OpenLoopSender> ol_sender_;
  std::unique_ptr<TwoQueueSender> tq_sender_owned_;
  TwoQueueSender* tq_sender_ = nullptr;

  sim::Rng shared_rng_;
  std::uint64_t shared_drops_ = 0;
  std::uint64_t redundant_tx_ = 0;
  sim::Rate base_mu_;

  // Warm-up baselines (subtracted at collection).
  bool warmed_up_ = false;
  SenderStats warm_sender_;
  std::uint64_t warm_nacks_sent_ = 0;
  std::uint64_t warm_delivered_ = 0;
  std::uint64_t warm_dropped_ = 0;
  double warm_fb_bytes_ = 0.0;
  double warm_data_bytes_ = 0.0;

  std::unique_ptr<sim::PeriodicTimer> sampler_;
  double last_integral_ = 0.0;
  ExperimentResult result_;

  std::unique_ptr<analysis::FluidIntegrator> fluid_;  // hybrid cohort tier
  double fluid_m_ = 0.0;
};

/// Maps an experiment configuration onto the mean-field model's parameter
/// space: kbps bandwidths become announcement/NACK packet rates, the
/// workload's death mode picks the fluid death law (fixed/Pareto lifetimes
/// approximate as memoryless with the same mean), and shared + leaf loss
/// compose into one effective per-receiver loss probability.
analysis::FluidParams fluid_params_from(const ExperimentConfig& config);

/// Runs one experiment to completion with config.backend selecting the
/// population tier. Deterministic in `config.seed` (the pure-fluid backend
/// is seed-independent by construction).
ExperimentResult run_experiment(const ExperimentConfig& config);

}  // namespace sst::core
