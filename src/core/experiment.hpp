// experiment.hpp — one-call experiment harness for the paper's simulations.
//
// Wires together a publisher, workload, protocol sender, lossy data channel,
// one or more receivers, an optional rate-limited feedback path, and the
// consistency monitor; runs for a configured duration with a warm-up cutoff;
// and returns every metric the paper's figures report. All of the bench
// binaries, most integration tests, and the SSTP profile generator are thin
// sweeps over this harness.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/receiver.hpp"
#include "core/workload.hpp"
#include "sim/units.hpp"

namespace sst::core {

/// Which protocol variant to run.
enum class Variant : std::uint8_t {
  kOpenLoop,  // Section 3: single FIFO announcement cycle
  kTwoQueue,  // Section 4: hot/cold queues, no feedback
  kFeedback,  // Section 5: hot/cold queues + receiver NACKs
};

/// Which proportional-share discipline splits hot/cold bandwidth.
enum class SchedulerKind : std::uint8_t {
  kStride,
  kLottery,
  kWfq,
  kDrr,
  kHierarchical,
};

/// Full experiment specification. Defaults reproduce the paper's common
/// operating point (45 kbps data bandwidth, 1000-byte announcements).
struct ExperimentConfig {
  WorkloadParams workload;

  Variant variant = Variant::kOpenLoop;
  SchedulerKind scheduler = SchedulerKind::kStride;

  sim::Rate mu_data = sim::kbps(45);  // sender data bandwidth (the paper's
                                      // mu_ch for open loop, mu_data else)
  double hot_share = 0.5;             // hot fraction of mu_data
  sim::Rate mu_fb = 0.0;              // feedback-path bandwidth
  ReceiverConfig receiver;            // NACK behaviour (feedback variant)

  double loss_rate = 0.1;        // forward-channel mean loss (per receiver)
  /// Loss on a shared upstream stage (backbone): one draw per transmission
  /// drops the packet for EVERY receiver. Correlated loss is what makes
  /// multicast NACK damping effective — all receivers share the gap, one
  /// overheard request serves them all.
  double shared_loss_rate = 0.0;
  double nack_loss_rate = -1.0;  // reverse-channel loss; <0 copies loss_rate
  bool bursty_loss = false;      // Gilbert-Elliott instead of Bernoulli
  double mean_burst_len = 4.0;   // packets, bursty mode
  /// Failure injection: total network outage (both directions) during these
  /// [start, end) windows — the paper's network partition scenario.
  std::vector<std::pair<double, double>> outages;
  sim::Duration delay = 0.01;    // one-way propagation delay
  sim::Duration jitter = 0.0;    // uniform extra delay (enables reordering)

  std::size_t num_receivers = 1;
  /// Heterogeneous receivers: per-receiver forward loss rates. When shorter
  /// than num_receivers (or empty), remaining receivers use `loss_rate`.
  std::vector<double> receiver_loss_rates;
  /// Multicast feedback: all receivers share one feedback multicast group —
  /// every NACK reaches the sender AND every other receiver, enabling
  /// SRM-style slotting and damping (set receiver.nack_slot_max > 0).
  /// Feedback then bypasses the per-receiver rate-limited uplink.
  bool multicast_feedback = false;
  sim::Duration receiver_ttl = 0.0;  // 0 = no receiver-side expiry
  /// Propagate publisher removals to receiver tables (the paper's idealized
  /// "eliminated from both the sender's and receivers' tables"). Turn off to
  /// study stale-entry behaviour with real TTL expiry.
  bool oracle_remove = true;

  sim::Duration duration = 2000.0;  // measured simulation time
  sim::Duration warmup = 200.0;     // discarded transient
  std::uint64_t seed = 1;

  sim::Duration sample_interval = 0.0;  // >0 records a c(t) timeline
};

/// One point of the c(t) timeline (windowed average over the last interval).
struct TimelinePoint {
  double time = 0.0;
  double consistency = 0.0;
};

/// Everything a run measures (over the post-warm-up window).
struct ExperimentResult {
  double avg_consistency = 0.0;  // E[c(t)]
  double mean_latency = 0.0;     // T_recv mean over successful receipts
  double p50_latency = 0.0;
  double p95_latency = 0.0;

  std::uint64_t data_tx = 0;
  std::uint64_t hot_tx = 0;
  std::uint64_t cold_tx = 0;
  std::uint64_t repair_tx = 0;
  std::uint64_t redundant_tx = 0;  // receiver(s) already had the version
  std::uint64_t nacks_sent = 0;
  std::uint64_t nacks_received = 0;
  std::uint64_t nacks_suppressed = 0;  // damped by overheard duplicates

  double redundant_fraction = 0.0;  // redundant_tx / data_tx
  double observed_loss = 0.0;       // measured forward loss rate
  double offered_data_kbps = 0.0;   // sender data rate actually used
  double offered_fb_kbps = 0.0;     // feedback rate actually used

  std::uint64_t inserts = 0;
  std::uint64_t updates = 0;
  std::uint64_t versions_introduced = 0;
  std::uint64_t versions_received = 0;

  std::size_t final_live = 0;
  std::size_t final_hot_depth = 0;
  std::size_t final_cold_depth = 0;

  std::vector<TimelinePoint> timeline;
};

/// Runs one experiment to completion. Deterministic in `config.seed`.
ExperimentResult run_experiment(const ExperimentConfig& config);

}  // namespace sst::core
