#include "core/monitor.hpp"

namespace sst::core {

ConsistencyMonitor::ConsistencyMonitor(sim::Simulator& sim,
                                       PublisherTable& pub)
    : ConsistencyMonitor(sim) {
  pub.subscribe([this](const Record& rec, ChangeKind kind) {
    apply_publisher_change(rec, kind);
  });
}

ConsistencyMonitor::ConsistencyMonitor(sim::Simulator& sim)
    : sim_(&sim), seg_start_(sim.now()), reset_time_(sim.now()) {}

std::size_t ConsistencyMonitor::attach(ReceiverTable& recv) {
  const sim::SimTime now = sim_->now();
  close_segment(now);
  const std::size_t r = receivers_.size();
  ReceiverView view;
  view.table = &recv;
  view.joined_at = now;
  view.attach_serial = intro_serial_;
  // c_r starts at the vacuous 1.0 for an empty live set, else 0 (the joiner
  // holds nothing yet).
  view.avg = stats::TimeAverage(now, live_.empty() ? 1.0 : 0.0);
  receivers_.push_back(std::move(view));
  ++active_count_;
  ++catching_up_count_;
  recv.on_refresh([this, r](Key key, Version version, bool, bool) {
    on_receiver_refresh(r, key, version);
  });
  recv.on_expire([this, r](Key key, Version) { on_receiver_expire(r, key); });
  // A receiver joining an (effectively) empty session is caught up at once
  // with zero latency — in particular every construction-time receiver.
  check_catch_up(r, now);
  return r;
}

void ConsistencyMonitor::detach(std::size_t r) {
  auto& rv = receivers_.at(r);
  if (!rv.active) return;
  const sim::SimTime now = sim_->now();
  close_segment(now);
  rv.active = false;
  --active_count_;
  if (rv.catching_up) {
    rv.catching_up = false;
    --catching_up_count_;
  }
}

double ConsistencyMonitor::receiver_consistency(std::size_t r) const {
  const std::size_t live = live_.size();
  if (live == 0) return 1.0;
  return static_cast<double>(receivers_.at(r).consistent.size()) /
         static_cast<double>(live);
}

void ConsistencyMonitor::reset_stats() {
  const sim::SimTime now = sim_->now();
  for (auto& rv : receivers_) {
    if (rv.active) {
      rv.avg.reset(now);
      rv.ckpt = 0.0;
    }
    rv.latency.clear();
  }
  closed_.reset();
  seg_start_ = now;
  reset_time_ = now;
  merged_latency_ = stats::Samples{};
  merged_dirty_ = false;
  versions_introduced_ = 0;
  versions_received_ = 0;
}

double ConsistencyMonitor::instantaneous() const {
  const std::size_t live = live_.size();
  if (live == 0) return 1.0;
  double sum = 0.0;
  std::size_t active = 0;
  for (const auto& rv : receivers_) {
    if (!rv.active) continue;
    ++active;
    sum += static_cast<double>(rv.consistent.size()) /
           static_cast<double>(live);
  }
  if (active == 0) return 1.0;
  return sum / static_cast<double>(active);
}

double ConsistencyMonitor::average_consistency() {
  const sim::SimTime now = sim_->now();
  if (!(now > reset_time_)) return instantaneous();
  return consistency_integral() / (now - reset_time_);
}

double ConsistencyMonitor::consistency_integral() {
  return closed_.value() + open_segment_integral(sim_->now());
}

double ConsistencyMonitor::open_segment_integral(sim::SimTime now) {
  if (active_count_ == 0) {
    // Vacuous consistency: c(t) = 1 while nobody is attached.
    return now - seg_start_;
  }
  stats::CompensatedSum sum;
  for (auto& rv : receivers_) {
    if (!rv.active) continue;
    rv.avg.advance(now);
    sum.add(rv.avg.integral() - rv.ckpt);
  }
  return sum.value() / static_cast<double>(active_count_);
}

void ConsistencyMonitor::close_segment(sim::SimTime now) {
  closed_.add(open_segment_integral(now));
  seg_start_ = now;
  for (auto& rv : receivers_) {
    if (rv.active) rv.ckpt = rv.avg.integral();
  }
}

void ConsistencyMonitor::advance_all(sim::SimTime now) {
  for (auto& rv : receivers_) {
    if (rv.active) rv.avg.advance(now);
  }
}

stats::Samples& ConsistencyMonitor::latency() {
  if (merged_dirty_) {
    merged_latency_ = stats::Samples{};
    for (const auto& rv : receivers_) {
      for (const double x : rv.latency) merged_latency_.add(x);
    }
    merged_dirty_ = false;
  }
  return merged_latency_;
}

void ConsistencyMonitor::touch_all(sim::SimTime now) {
  for (std::size_t r = 0; r < receivers_.size(); ++r) {
    auto& rv = receivers_[r];
    if (!rv.active) continue;
    rv.avg.update(now, receiver_consistency(r));
    check_catch_up(r, now);
  }
}

void ConsistencyMonitor::check_catch_up(std::size_t r, sim::SimTime now) {
  auto& rv = receivers_[r];
  if (!rv.active || !rv.catching_up) return;
  if (receiver_consistency(r) >= catch_up_threshold_) {
    rv.catching_up = false;
    rv.catch_up_latency = now - rv.joined_at;
    --catching_up_count_;
  }
}

void ConsistencyMonitor::apply_publisher_change(const Record& rec,
                                                ChangeKind kind) {
  const sim::SimTime now = sim_->now();
  switch (kind) {
    case ChangeKind::kInsert:
    case ChangeKind::kUpdate: {
      if (kind == ChangeKind::kUpdate) {
        // A receiver holding the old version is no longer consistent.
        for (auto& rv : receivers_) {
          if (!rv.active) continue;
          const auto* e = rv.table->find(rec.key);
          if (e == nullptr || e->version != rec.version) {
            rv.consistent.erase(rec.key);
          }
        }
      }
      auto& lr = live_[rec.key];
      lr.version = rec.version;
      lr.introduced_at = now;
      lr.serial = ++intro_serial_;
      ++versions_introduced_;
      break;
    }
    case ChangeKind::kRemove: {
      live_.erase(rec.key);
      for (auto& rv : receivers_) {
        rv.consistent.erase(rec.key);
        rv.counted.erase(rec.key);
      }
      break;
    }
  }
  touch_all(now);
}

void ConsistencyMonitor::on_receiver_refresh(std::size_t r, Key key,
                                             Version version) {
  auto& rv = receivers_[r];
  if (!rv.active) return;
  const sim::SimTime now = sim_->now();
  const auto live_it = live_.find(key);
  const bool matches =
      live_it != live_.end() && live_it->second.version == version;
  if (matches) {
    rv.consistent.insert(key);
    // First-receipt latency for this (key, version) at this receiver. Late
    // joiners (attached at or after introduction) don't count toward
    // T_recv: the version predates them.
    if (live_it->second.serial > rv.attach_serial) {
      const auto counted_it = rv.counted.find(key);
      if (counted_it == rv.counted.end() || counted_it->second < version) {
        rv.counted[key] = version;
        rv.latency.push_back(now - live_it->second.introduced_at);
        merged_dirty_ = true;
        ++versions_received_;
      }
    }
  } else {
    rv.consistent.erase(key);
  }
  rv.avg.update(now, receiver_consistency(r));
  check_catch_up(r, now);
}

void ConsistencyMonitor::on_receiver_expire(std::size_t r, Key key) {
  auto& rv = receivers_[r];
  if (!rv.active) return;
  rv.consistent.erase(key);
  rv.avg.update(sim_->now(), receiver_consistency(r));
  check_catch_up(r, sim_->now());
}

}  // namespace sst::core
