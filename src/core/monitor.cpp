#include "core/monitor.hpp"

namespace sst::core {

ConsistencyMonitor::ConsistencyMonitor(sim::Simulator& sim,
                                       PublisherTable& pub)
    : sim_(&sim), pub_(&pub), consistency_avg_(sim.now(), 1.0) {
  pub_->subscribe([this](const Record& rec, ChangeKind kind) {
    on_publisher_change(rec, kind);
  });
}

std::size_t ConsistencyMonitor::attach(ReceiverTable& recv) {
  const std::size_t r = receivers_.size();
  ReceiverView view;
  view.table = &recv;
  view.joined_at = sim_->now();
  receivers_.push_back(std::move(view));
  ++catching_up_count_;
  recv.on_refresh([this, r](Key key, Version version, bool, bool) {
    on_receiver_refresh(r, key, version);
  });
  recv.on_expire([this, r](Key key, Version) { on_receiver_expire(r, key); });
  // A receiver joining an (effectively) empty session is caught up at once
  // with zero latency — in particular every construction-time receiver.
  touch();
  return r;
}

void ConsistencyMonitor::detach(std::size_t r) {
  auto& rv = receivers_.at(r);
  if (!rv.active) return;
  rv.active = false;
  if (rv.catching_up) {
    rv.catching_up = false;
    --catching_up_count_;
  }
  // Entries waiting only on this receiver must not leak: re-run the
  // all-received check for every pending version (these deliveries will
  // never happen and never count toward latency). Erasure order is
  // invisible — nothing fires per erased entry and only aggregate counters
  // remain — so hash-order iteration is harmless here.
  for (auto it = pending_.begin(); it != pending_.end();) {  // sstlint: allow(unordered-iter)
    bool all = true;
    for (std::size_t i = 0; i < it->second.received.size(); ++i) {
      all = all && (it->second.received[i] || !receivers_[i].active);
    }
    if (all) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  touch();
}

std::size_t ConsistencyMonitor::active_receivers() const {
  std::size_t n = 0;
  for (const auto& rv : receivers_) n += rv.active ? 1 : 0;
  return n;
}

double ConsistencyMonitor::receiver_consistency(std::size_t r) const {
  const std::size_t live = live_.size();
  if (live == 0) return 1.0;
  return static_cast<double>(receivers_.at(r).consistent.size()) /
         static_cast<double>(live);
}

void ConsistencyMonitor::reset_stats() {
  consistency_avg_.update(sim_->now(), instantaneous());
  consistency_avg_.reset(sim_->now());
  latency_ = stats::Samples{};
  versions_introduced_ = 0;
  versions_received_ = 0;
}

double ConsistencyMonitor::instantaneous() const {
  const std::size_t live = live_.size();
  if (live == 0) return 1.0;
  double sum = 0.0;
  std::size_t active = 0;
  for (const auto& rv : receivers_) {
    if (!rv.active) continue;
    ++active;
    sum += static_cast<double>(rv.consistent.size()) /
           static_cast<double>(live);
  }
  if (active == 0) return 1.0;
  return sum / static_cast<double>(active);
}

double ConsistencyMonitor::average_consistency() {
  touch();
  return consistency_avg_.average();
}

double ConsistencyMonitor::consistency_integral() {
  touch();
  return consistency_avg_.integral();
}

void ConsistencyMonitor::touch() {
  if (catching_up_count_ > 0) {
    for (std::size_t r = 0; r < receivers_.size(); ++r) {
      auto& rv = receivers_[r];
      if (!rv.active || !rv.catching_up) continue;
      if (receiver_consistency(r) >= catch_up_threshold_) {
        rv.catching_up = false;
        rv.catch_up_latency = sim_->now() - rv.joined_at;
        --catching_up_count_;
      }
    }
  }
  consistency_avg_.update(sim_->now(), instantaneous());
}

void ConsistencyMonitor::on_publisher_change(const Record& rec,
                                             ChangeKind kind) {
  switch (kind) {
    case ChangeKind::kInsert:
    case ChangeKind::kUpdate: {
      live_[rec.key] = rec.version;
      // The new version supersedes any pending older one for latency
      // purposes: keep both pending entries (first receipt of the old
      // version no longer counts; erase it).
      if (kind == ChangeKind::kUpdate) {
        pending_.erase(KeyVer{rec.key, rec.version - 1});
        // A receiver holding the old version is no longer consistent.
        for (auto& rv : receivers_) {
          if (!rv.active) continue;
          const auto* e = rv.table->find(rec.key);
          if (e == nullptr || e->version != rec.version) {
            rv.consistent.erase(rec.key);
          }
        }
      }
      PendingVersion pv;
      pv.introduced_at = sim_->now();
      pv.received.assign(receivers_.size(), false);
      // Detached receivers will never report receipt; pre-mark them so they
      // cannot hold the entry open.
      for (std::size_t i = 0; i < receivers_.size(); ++i) {
        if (!receivers_[i].active) pv.received[i] = true;
      }
      pending_.emplace(KeyVer{rec.key, rec.version}, std::move(pv));
      ++versions_introduced_;
      break;
    }
    case ChangeKind::kRemove: {
      pending_.erase(KeyVer{rec.key, rec.version});
      live_.erase(rec.key);
      for (auto& rv : receivers_) rv.consistent.erase(rec.key);
      break;
    }
  }
  touch();
}

void ConsistencyMonitor::on_receiver_refresh(std::size_t r, Key key,
                                             Version version) {
  auto& rv = receivers_[r];
  if (!rv.active) return;
  const auto live_it = live_.find(key);
  const bool matches = live_it != live_.end() && live_it->second == version;
  if (matches) {
    rv.consistent.insert(key);
  } else {
    rv.consistent.erase(key);
  }

  // First-receipt latency for this (key, version) at this receiver. Late
  // joiners (index beyond the entry's snapshot) don't count toward T_recv:
  // the version predates them.
  const auto pend_it = pending_.find(KeyVer{key, version});
  if (pend_it != pending_.end() && r < pend_it->second.received.size() &&
      !pend_it->second.received[r]) {
    pend_it->second.received[r] = true;
    latency_.add(sim_->now() - pend_it->second.introduced_at);
    ++versions_received_;
    bool all = true;
    for (const bool got : pend_it->second.received) all = all && got;
    if (all) pending_.erase(pend_it);
  }
  touch();
}

void ConsistencyMonitor::on_receiver_expire(std::size_t r, Key key) {
  if (!receivers_[r].active) return;
  receivers_[r].consistent.erase(key);
  touch();
}

}  // namespace sst::core
