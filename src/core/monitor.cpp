#include "core/monitor.hpp"

namespace sst::core {

ConsistencyMonitor::ConsistencyMonitor(sim::Simulator& sim,
                                       PublisherTable& pub)
    : sim_(&sim), pub_(&pub), consistency_avg_(sim.now(), 1.0) {
  pub_->subscribe([this](const Record& rec, ChangeKind kind) {
    on_publisher_change(rec, kind);
  });
}

std::size_t ConsistencyMonitor::attach(ReceiverTable& recv) {
  const std::size_t r = receivers_.size();
  receivers_.push_back(ReceiverView{&recv, {}});
  recv.on_refresh([this, r](Key key, Version version, bool, bool) {
    on_receiver_refresh(r, key, version);
  });
  recv.on_expire([this, r](Key key, Version) { on_receiver_expire(r, key); });
  return r;
}

void ConsistencyMonitor::reset_stats() {
  consistency_avg_.update(sim_->now(), instantaneous());
  consistency_avg_.reset(sim_->now());
  latency_ = stats::Samples{};
  versions_introduced_ = 0;
  versions_received_ = 0;
}

double ConsistencyMonitor::instantaneous() const {
  const std::size_t live = live_.size();
  if (live == 0 || receivers_.empty()) return 1.0;
  double sum = 0.0;
  for (const auto& rv : receivers_) {
    sum += static_cast<double>(rv.consistent.size()) /
           static_cast<double>(live);
  }
  return sum / static_cast<double>(receivers_.size());
}

double ConsistencyMonitor::average_consistency() {
  touch();
  return consistency_avg_.average();
}

double ConsistencyMonitor::consistency_integral() {
  touch();
  return consistency_avg_.integral();
}

void ConsistencyMonitor::touch() {
  consistency_avg_.update(sim_->now(), instantaneous());
}

void ConsistencyMonitor::on_publisher_change(const Record& rec,
                                             ChangeKind kind) {
  switch (kind) {
    case ChangeKind::kInsert:
    case ChangeKind::kUpdate: {
      live_[rec.key] = rec.version;
      // The new version supersedes any pending older one for latency
      // purposes: keep both pending entries (first receipt of the old
      // version no longer counts; erase it).
      if (kind == ChangeKind::kUpdate) {
        pending_.erase(KeyVer{rec.key, rec.version - 1});
        // A receiver holding the old version is no longer consistent.
        for (auto& rv : receivers_) {
          const auto* e = rv.table->find(rec.key);
          if (e == nullptr || e->version != rec.version) {
            rv.consistent.erase(rec.key);
          }
        }
      }
      PendingVersion pv;
      pv.introduced_at = sim_->now();
      pv.received.assign(receivers_.size(), false);
      pending_.emplace(KeyVer{rec.key, rec.version}, std::move(pv));
      ++versions_introduced_;
      break;
    }
    case ChangeKind::kRemove: {
      pending_.erase(KeyVer{rec.key, rec.version});
      live_.erase(rec.key);
      for (auto& rv : receivers_) rv.consistent.erase(rec.key);
      break;
    }
  }
  touch();
}

void ConsistencyMonitor::on_receiver_refresh(std::size_t r, Key key,
                                             Version version) {
  auto& rv = receivers_[r];
  const auto live_it = live_.find(key);
  const bool matches = live_it != live_.end() && live_it->second == version;
  if (matches) {
    rv.consistent.insert(key);
  } else {
    rv.consistent.erase(key);
  }

  // First-receipt latency for this (key, version) at this receiver.
  const auto pend_it = pending_.find(KeyVer{key, version});
  if (pend_it != pending_.end() && !pend_it->second.received[r]) {
    pend_it->second.received[r] = true;
    latency_.add(sim_->now() - pend_it->second.introduced_at);
    ++versions_received_;
    bool all = true;
    for (const bool got : pend_it->second.received) all = all && got;
    if (all) pending_.erase(pend_it);
  }
  touch();
}

void ConsistencyMonitor::on_receiver_expire(std::size_t r, Key key) {
  receivers_[r].consistent.erase(key);
  touch();
}

}  // namespace sst::core
