// adaptive_ttl.hpp — scalable timers for soft state expiry.
//
// The paper's related work (Section 7) highlights Sharma et al.'s "Scalable
// Timers for Soft State Protocols": rather than configuring a fixed expiry
// TTL — which false-expires state when the sender adapts its refresh rate
// down, and lingers when it speeds up — the receiver ESTIMATES the sender's
// per-entry refresh interval and expires after `factor` estimated intervals.
//
// The estimator is a per-entry EWMA over observed inter-refresh gaps with a
// conservative max() guard: a single early refresh must not shrink the
// timeout below what the recent history supports.
#pragma once

#include <algorithm>

#include "sim/units.hpp"

namespace sst::core {

/// Per-entry refresh-interval estimator.
class RefreshIntervalEstimator {
 public:
  /// `alpha` is the EWMA weight of the newest gap.
  explicit RefreshIntervalEstimator(double alpha = 0.25) : alpha_(alpha) {}

  /// Records a refresh at `now`. Returns the current interval estimate
  /// (0 until two refreshes have been seen).
  sim::Duration on_refresh(sim::SimTime now) {
    if (have_last_) {
      const sim::Duration gap = now - last_;
      if (gap > 0) {
        if (estimate_ <= 0) {
          estimate_ = gap;
        } else {
          estimate_ = (1.0 - alpha_) * estimate_ + alpha_ * gap;
          // Conservative guard: never let one quick refresh halve the
          // timeout; track the recent peak with slow decay.
          peak_ = std::max(peak_ * 0.9, gap);
          estimate_ = std::max(estimate_, peak_ * 0.5);
        }
      }
    }
    have_last_ = true;
    last_ = now;
    return estimate_;
  }

  [[nodiscard]] sim::Duration estimate() const { return estimate_; }
  [[nodiscard]] bool seeded() const { return estimate_ > 0; }

 private:
  double alpha_;
  bool have_last_ = false;
  sim::SimTime last_ = 0;
  sim::Duration estimate_ = 0;
  sim::Duration peak_ = 0;
};

/// Policy knobs for adaptive expiry.
struct AdaptiveTtlConfig {
  /// Entries expire after this many estimated refresh intervals without a
  /// refresh (RSVP-style K; 3 tolerates two consecutive losses).
  double factor = 3.0;
  /// TTL used until the estimator has seen two refreshes of the entry.
  sim::Duration initial_ttl = 30.0;
  /// Hard bounds on the resulting TTL.
  sim::Duration min_ttl = 1.0;
  sim::Duration max_ttl = 3600.0;

  [[nodiscard]] sim::Duration ttl_for(
      const RefreshIntervalEstimator& est) const {
    if (!est.seeded()) return initial_ttl;
    return std::clamp(factor * est.estimate(), min_ttl, max_ttl);
  }
};

}  // namespace sst::core
