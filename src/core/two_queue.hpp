// two_queue.hpp — hot/cold two-queue sender (paper Sections 4 and 5).
//
// The sender differentiates new from old data: a "hot" (foreground) queue
// carries data thought to be inconsistent — new records, updates, and
// NACK-requested repairs — and a "cold" (background) queue cycles everything
// already transmitted at least once. The two queues share the data bandwidth
// mu_data proportionally under a pluggable scheduler (stride by default;
// lottery/WFQ/DRR behave identically in the mean, which tests verify), and
// unused hot bandwidth flows to cold (work conservation).
//
// With `feedback` enabled this is the Section 5 protocol: on a NACK, the
// named record moves from the cold queue to the tail of the hot queue
// (Figure 7's C -> H transition).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "check/annotate.hpp"
#include "core/messages.hpp"
#include "core/open_loop.hpp"  // SenderStats
#include "core/table.hpp"
#include "core/workload.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "sim/units.hpp"

namespace sst::core {

/// Configuration of the two-queue sender.
struct TwoQueueConfig {
  sim::Rate mu_data = sim::kbps(45);  // total data bandwidth
  double hot_share = 0.5;             // fraction of mu_data for the hot queue
  bool feedback = false;              // accept NACKs (Section 5)
  std::size_t seq_log_capacity = 1 << 20;  // tx log for NACK lookup
  /// Sender-side NACK damping: with more than this many repairs already
  /// waiting in the hot queue, further NACKs are dropped (the cold cycle is
  /// the backstop). Bounds repair-flood starvation of new data when the loss
  /// rate briefly exceeds what the feedback budget can recover.
  std::size_t max_pending_repairs = 64;
};

/// Two-queue (hot/cold) announcement sender with optional NACK handling.
class TwoQueueSender {
 public:
  /// `scheduler` must have no classes yet; the sender registers hot as class
  /// 0 and cold as class 1 with weights {hot_share, 1-hot_share}.
  TwoQueueSender(sim::Simulator& sim, PublisherTable& table,
                 Workload& workload, TwoQueueConfig config,
                 std::unique_ptr<sched::Scheduler> scheduler,
                 std::function<void(const DataMsg&)> transmit);

  TwoQueueSender(const TwoQueueSender&) = delete;
  TwoQueueSender& operator=(const TwoQueueSender&) = delete;

  /// Delivers a receiver NACK (ignored unless config.feedback).
  ///
  /// Same-instant NACKs are applied in canonical content order, not arrival
  /// order: handle_nack() only stashes the message, and a same-timestamp
  /// flush event applies the whole batch sorted by (missing_seqs, size,
  /// origin) after every other event at that instant has run. Exact arrival
  /// ties are endemic under constant delays — receivers that detect the same
  /// gap share announce arrival times, so their retry scanners stay
  /// phase-locked — and the sender's reaction (which key reaches the hot
  /// queue first) must not depend on how the event queue happened to
  /// interleave them, or the sharded engine's cross-shard NACK merge could
  /// not reproduce the single-queue run.
  void handle_nack(const NackMsg& nack);

  /// Re-splits the data bandwidth between hot and cold (SSTP's adaptive
  /// allocator drives this at run time).
  void set_hot_share(double hot_share);

  /// Changes the data bandwidth (fault injection: bandwidth degradation).
  /// A transmission already in service completes at the old rate.
  void set_mu_data(sim::Rate mu_data) { config_.mu_data = mu_data; }

  /// Crash emulation. pause() quiesces the sender: the packet in service
  /// (if any) is LOST — its record returns to the head of its queue so the
  /// announcement cycle still covers it after restart — and no further
  /// transmissions or NACKs are processed. resume() restarts service.
  void pause();
  void resume();
  [[nodiscard]] bool paused() const { return paused_; }

  /// Current hot-queue backlog (the SSTP allocator watches this to detect
  /// lambda > mu_hot and push back on the application).
  [[nodiscard]] std::size_t hot_depth() const { return hot_.size(); }
  [[nodiscard]] std::size_t cold_depth() const { return cold_.size(); }

  [[nodiscard]] const SenderStats& stats() const { return stats_; }
  [[nodiscard]] const TwoQueueConfig& config() const { return config_; }

  /// Observation hook fired at every transmission.
  void on_transmit(std::function<void(const DataMsg&)> fn) {
    observers_.push_back(std::move(fn));
  }

 private:
  struct KeyState {
    QueueState location = QueueState::kNone;
    bool repair_pending = false;     // next hot tx is a NACK repair
    std::uint64_t repairs_seq = 0;   // which lost seq it answers
    bool has_last_seq = false;       // key transmitted before
    std::uint64_t last_seq = 0;      // seq of its most recent transmission
  };

  void drop_key_state(Key key);  // erase bookkeeping incl. repair counter

  void on_table_change(const Record& rec, ChangeKind kind);
  void apply_nack(const NackMsg& nack);  // queue flips for one stashed NACK
  /// End-of-instant canonical apply. Engine role: only the thread driving
  /// sim_ may touch the stash (handle_nack asserts it at the entry point —
  /// the caller is that thread by construction in both engines).
  void flush_nacks() SST_REQUIRES_ENGINE;
  void to_hot(Key key);
  void maybe_start_service();
  void complete_service(Key key, bool from_hot);
  /// Pops stale entries; returns head record size or sched::kEmpty.
  double head_bits(std::deque<Key>& queue, QueueState expected);

  sim::Simulator* sim_;
  PublisherTable* table_;
  Workload* workload_;
  TwoQueueConfig config_;
  std::unique_ptr<sched::Scheduler> scheduler_;
  std::function<void(const DataMsg&)> transmit_;
  std::vector<std::function<void(const DataMsg&)>> observers_;

  std::deque<Key> hot_;
  std::deque<Key> cold_;
  std::unordered_map<Key, KeyState> state_;
  std::size_t pending_repairs_ = 0;
  bool busy_ = false;
  bool paused_ = false;
  Key in_service_key_ = 0;
  bool in_service_from_hot_ = false;
  sim::Timer service_timer_;
  std::uint64_t next_seq_ = 0;

  // Transmission log for NACK resolution: seq -> (key, version at tx).
  struct LogEntry {
    Key key;
    Version version;
  };
  std::unordered_map<std::uint64_t, LogEntry> seq_log_;
  std::deque<std::uint64_t> seq_order_;  // eviction order

  // NACKs stashed this instant; flushed by a same-timestamp event. Guarded
  // by the owning-engine serial role: in the sharded engine the stash is
  // shared state the root executor alone may touch (the cross-shard merge
  // feeds it), and the annotation proves no worker-side path reaches it.
  std::vector<NackMsg> pending_nacks_ SST_ENGINE_SERIAL;

  SenderStats stats_;
};

}  // namespace sst::core
