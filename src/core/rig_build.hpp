// rig_build.hpp — shared factories for experiment plumbing (loss, delay,
// scheduler stacks), used by both the single-queue Experiment and the
// sharded engine (sharded.cpp). Keeping them in one place is a determinism
// requirement, not a style choice: the sharded engine's bit-identity
// guarantee rests on every endpoint consuming EXACTLY the draw sequence the
// single-queue engine would, so the model stack built around each forked
// stream must come from the same code.
#pragma once

#include <memory>
#include <utility>

#include "core/experiment.hpp"
#include "net/delay.hpp"
#include "net/loss.hpp"
#include "sched/drr.hpp"
#include "sched/hierarchical.hpp"
#include "sched/lottery.hpp"
#include "sched/stride.hpp"
#include "sched/wfq.hpp"
#include "sim/random.hpp"

namespace sst::core::rig {

inline std::unique_ptr<sched::Scheduler> make_scheduler(SchedulerKind kind,
                                                        const sim::Rng& rng) {
  switch (kind) {
    case SchedulerKind::kStride:
      return std::make_unique<sched::StrideScheduler>();
    case SchedulerKind::kLottery:
      return std::make_unique<sched::LotteryScheduler>(rng.fork("lottery"));
    case SchedulerKind::kWfq:
      return std::make_unique<sched::WfqScheduler>();
    case SchedulerKind::kDrr:
      return std::make_unique<sched::DrrScheduler>();
    case SchedulerKind::kHierarchical:
      return std::make_unique<sched::HierarchicalScheduler>();
  }
  return std::make_unique<sched::StrideScheduler>();
}

// Every loss process is wrapped in a SwitchableLoss so faults can be applied
// to the live run. The wrapper's own RNG is only drawn while extra loss is
// active, and the base process is always stepped first, so the wrapper is
// draw-for-draw invisible until a fault actually fires.
inline std::unique_ptr<net::SwitchableLoss> make_loss(
    const ExperimentConfig& cfg, double rate, sim::Rng rng,
    sim::Rng switch_rng) {
  std::unique_ptr<net::LossModel> base;
  if (rate <= 0.0) {
    base = std::make_unique<net::NoLoss>();
  } else if (cfg.bursty_loss) {
    base = std::make_unique<net::GilbertElliottLoss>(
        net::GilbertElliottLoss::with_mean(rate, cfg.mean_burst_len, rng));
  } else {
    base = std::make_unique<net::BernoulliLoss>(rate, rng);
  }
  if (!cfg.outages.empty()) {
    base = std::make_unique<net::OutageLoss>(std::move(base), cfg.outages);
  }
  return std::make_unique<net::SwitchableLoss>(std::move(base), switch_rng);
}

inline std::unique_ptr<net::DelayModel> make_delay(const ExperimentConfig& cfg,
                                                   sim::Rng rng) {
  if (cfg.jitter > 0.0) {
    return std::make_unique<net::UniformJitterDelay>(cfg.delay, cfg.jitter,
                                                     rng);
  }
  return std::make_unique<net::FixedDelay>(cfg.delay);
}

}  // namespace sst::core::rig
