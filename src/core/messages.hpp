// messages.hpp — wire messages exchanged by the core protocol variants.
//
// These are simulation-level messages (plain structs carried by value through
// Channel<M>); SSTP adds a real serialized wire format in src/sstp/wire.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "core/record.hpp"
#include "sim/units.hpp"

namespace sst::core {

/// A data announcement: one record per packet (ALF — each announcement is an
/// independent application data unit, paper Section 3).
struct DataMsg {
  std::uint64_t seq = 0;     // per-sender transmission sequence number
  Key key = 0;
  Version version = 0;
  sim::Bytes size = 1000;    // wire size in bytes
  bool is_repair = false;    // retransmission triggered by a NACK
  std::uint64_t repairs_seq = 0;  // the lost seq this repair answers
  /// Sequence number of this key's previous transmission, if any. Lets a
  /// receiver cancel NACK state for a lost packet once ANY later copy of the
  /// same record arrives (e.g. via the cold cycle), suppressing duplicate
  /// repairs without per-item receiver state.
  bool has_prev = false;
  std::uint64_t prev_seq = 0;
  sim::SimTime sent_at = 0;  // stamped by the sender (for latency traces)
};

/// A negative acknowledgment naming lost transmissions by sequence number
/// (paper Section 5). One NACK may batch several gap seqs.
struct NackMsg {
  std::vector<std::uint64_t> missing_seqs;
  sim::Bytes size = 1000;  // wire size; defaults to a full-size packet so
                           // feedback consumes comparable bandwidth, matching
                           // the paper's Figure 8 tradeoff
  /// Originating group member (multicast feedback): lets an overhearing
  /// receiver ignore its own NACK echoed back by the multicast fan-out.
  std::uint32_t origin = 0;
};

/// Canonical content order for same-instant NACK ties: (missing_seqs, size,
/// origin). Exact ties are endemic under constant delays — receivers that
/// detect the same gap share announce arrival times, so their retry scanners
/// stay phase-locked and emit in the same instant. Every point where
/// same-instant NACKs merge (the sender's end-of-instant flush, the multicast
/// group's entry, the sharded engine's cross-shard drain) must agree on one
/// order that does not depend on how an event queue happened to interleave
/// them, or the sharded engine could not reproduce the single-queue run.
[[nodiscard]] inline bool nack_content_less(const NackMsg& a,
                                            const NackMsg& b) {
  if (a.missing_seqs != b.missing_seqs) {
    return a.missing_seqs < b.missing_seqs;
  }
  if (a.size != b.size) return a.size < b.size;
  return a.origin < b.origin;
}

}  // namespace sst::core
