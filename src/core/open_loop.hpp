// open_loop.hpp — the "open-loop" announce/listen sender (paper Section 3).
//
// One FIFO transmission queue served at the channel rate mu_ch. New records
// enter at the tail; after each service the record either dies (probability
// p_d, per-transmission mode) or re-enters at the tail, cycling forever.
// All data — old and new — is treated alike, which is exactly the source of
// the redundancy quantified in Figure 4.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_set>

#include "core/messages.hpp"
#include "core/table.hpp"
#include "core/workload.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "sim/units.hpp"

namespace sst::core {

/// Counters a sender accumulates.
struct SenderStats {
  std::uint64_t data_tx = 0;       // announcements transmitted
  std::uint64_t hot_tx = 0;        // via the hot queue (two-queue variants)
  std::uint64_t cold_tx = 0;       // via the cold queue
  std::uint64_t repair_tx = 0;     // NACK-triggered retransmissions
  std::uint64_t deaths = 0;        // records expired by per-tx death draw
  std::uint64_t nacks_received = 0;
  std::uint64_t nacks_ignored = 0; // NACKs for dead/superseded/queued records
};

/// Open-loop announce/listen sender.
class OpenLoopSender {
 public:
  /// `transmit` pushes an announcement onto the lossy channel. `workload`
  /// supplies the per-transmission death draw (and owns removal otherwise).
  OpenLoopSender(sim::Simulator& sim, PublisherTable& table,
                 Workload& workload, sim::Rate mu_ch,
                 std::function<void(const DataMsg&)> transmit);

  OpenLoopSender(const OpenLoopSender&) = delete;
  OpenLoopSender& operator=(const OpenLoopSender&) = delete;

  [[nodiscard]] const SenderStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

  /// Changes the channel bandwidth (fault injection: bandwidth
  /// degradation). A transmission already in service completes at the old
  /// rate.
  void set_mu_ch(sim::Rate mu_ch) { mu_ch_ = mu_ch; }

  /// Crash emulation. pause() quiesces the sender: the packet in service
  /// (if any) is LOST — its record returns to the head of the queue so the
  /// cycle still covers it after restart. resume() restarts service.
  void pause();
  void resume();
  [[nodiscard]] bool paused() const { return paused_; }

  /// Observation hook fired at every transmission (after the channel send).
  void on_transmit(std::function<void(const DataMsg&)> fn) {
    observers_.push_back(std::move(fn));
  }

 private:
  void enqueue(Key key);
  void maybe_start_service();
  void complete_service(Key key);

  sim::Simulator* sim_;
  PublisherTable* table_;
  Workload* workload_;
  sim::Rate mu_ch_;
  std::function<void(const DataMsg&)> transmit_;
  std::vector<std::function<void(const DataMsg&)>> observers_;

  std::deque<Key> queue_;
  std::unordered_set<Key> queued_;  // membership (lazy removal of dead keys)
  bool busy_ = false;
  bool paused_ = false;
  Key in_service_key_ = 0;
  sim::Timer service_timer_;
  std::uint64_t next_seq_ = 0;
  SenderStats stats_;
};

}  // namespace sst::core
