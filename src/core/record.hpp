// record.hpp — the soft state data model (paper Section 2, Figure 1).
//
// Soft data is "a table of {key, value} pairs at the sender, or publisher.
// The publisher may add, delete, or update a record at any given time."
// Every update bumps the record's version; the consistency metric compares
// versions, which is equivalent to comparing values because versions are
// unique per (key, value) assignment.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/units.hpp"

namespace sst::core {

/// Record key. Keys are unique over the lifetime of a publisher (never
/// reused), which keeps "delete then re-insert" unambiguous on a lossy
/// channel.
using Key = std::uint64_t;

/// Monotonically increasing per-key version; bumped by every update.
using Version = std::uint64_t;

/// One {key, value} pair.
struct Record {
  Key key = 0;
  Version version = 0;
  std::vector<std::uint8_t> value;  // application payload (may be empty in
                                    // abstract protocol experiments)
  sim::Bytes size = 1000;           // wire size of one announcement of this
                                    // record, headers included
};

/// Kinds of publisher table changes, delivered to listeners.
enum class ChangeKind : std::uint8_t {
  kInsert,  // new key appeared
  kUpdate,  // existing key's value (and version) changed
  kRemove,  // key died (lifetime expired at the publisher)
};

/// Transmission-queue placement of a record at the sender, mirroring the
/// paper's Figure 7 state machine: Hot (foreground), Cold (background),
/// Dead (invalid).
enum class QueueState : std::uint8_t {
  kNone,  // not queued (open-loop uses a single implicit queue)
  kHot,
  kCold,
  kDead,
};

}  // namespace sst::core
