// meanfield.hpp — fluid (mean-field) receiver-population backend.
//
// The discrete simulator instantiates every receiver as an event-driven
// object, which caps sweeps at thousands of nodes. This module evolves the
// *population-level* consistency distribution instead: per-state occupancy
// fractions for the paper's receiver states — fresh / stale / inconsistent /
// recovering — as a system of ODEs in the announce rate, loss rate, TTL,
// and feedback parameters, integrated with a deterministic fixed-step RK4.
// One integration costs the same whether the cohort is 10^3 or 10^7
// receivers, which is the point: loss-rate × population sweeps that are
// unaffordable discretely run in milliseconds per point.
//
// Model (DESIGN.md "Mean-field fluid receiver tier" has the derivation):
//
//   - Records: live count n(t); inserts at rate lambda; deaths either
//     per-transmission (probability p_death at every announce service — the
//     paper's queueing model) or memoryless lifetime (rate 1/mean_lifetime).
//   - A representative receiver tracks each live record in one of:
//       fresh         holds the current version, TTL not expired
//       stale         entry expired at the receiver (TTL) while still live
//       inconsistent  lacks the current version; subdivided into the
//                     hot-pending pool (awaiting first/updated transmission
//                     through the hot queue) and an Erlang-k chain modelling
//                     the wait for the next *cold-cycle* announcement. The
//                     chain matters: the announce cycle visits each record
//                     once per rotation, so the recovery delay is close to
//                     deterministic, and an exponential-rate approximation
//                     overstates short recoveries enough to bias E[c] by
//                     several points at realistic parameters.
//       recovering    (feedback variant) the receiver observed a sequence
//                     gap for a lost transmission and entered the
//                     NACK/repair loop: detection + feedback transit, the
//                     repair's wait in the sender's hot queue, and — when
//                     the repair itself is lost — the receiver's retry
//                     timeout (with backoff, and abandonment to the cold
//                     cycle after max_retries), mirroring
//                     ReceiverAgent::scan_retries().
//   - Sender queues are fluid. The hot "queue" is really a slot share of the
//     single mu_announce link (the discrete sender serves one link and a
//     stride scheduler splits slots), so the hot wait is M/D/1-with-vacations
//     at the FULL link speed: residual slot + backlog drain + own slot. The
//     cold cycle serves the remaining bandwidth (work conservation); a
//     record re-joining its tail waits behind the queue at JOIN time —
//     population growth adds entries only behind it, and entries ahead that
//     die before their slot are lazily skipped, which compounds to
//     W = ln(1 + delta Q / mu_cold) / delta. Both corrections are worth
//     several consistency points at the paper's operating points.
//   - Feedback implosion is where the cohort size M enters: every
//     transmission is lost by some receiver with probability
//     1 - (1 - p_eff)^M, each such loss solicits a repair (deduplicated per
//     sequence by the sender), and the pending-repair damping cap gates the
//     inflow — exactly the sender-side NACK damping of TwoQueueConfig.
//
// Determinism: the integrator is pure arithmetic — no wall clock, no RNG,
// no containers with address-dependent order — so its output is
// byte-identical across runs, replication counts, and --jobs values by
// construction. Accumulated integrals (the E[c(t)] time average, the
// transmission counters) use stats::CompensatedSum, not naive +=.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/compensated.hpp"

namespace sst::analysis {

/// Which protocol variant the fluid population runs.
enum class FluidVariant : std::uint8_t {
  kOpenLoop,  // one FIFO announce cycle over everything
  kTwoQueue,  // hot/cold split, no feedback
  kFeedback,  // hot/cold + receiver NACKs and hot-queue repairs
};

/// How records leave the live set.
enum class FluidDeath : std::uint8_t {
  kPerTransmission,  // death drawn with probability p_death at each service
  kLifetime,         // memoryless lifetime, rate 1 / mean_lifetime
};

/// Inputs of the fluid model. Rates are in events per second; the announce
/// and NACK bandwidths are expressed in packets per second so the model is
/// independent of wire sizes (core::Experiment converts from kbps).
struct FluidParams {
  FluidVariant variant = FluidVariant::kOpenLoop;

  // -- workload
  double lambda = 2.5;        // new-record inserts/s (Poisson in the sim)
  double update_rate = 0.0;   // in-place updates/s over the whole live set
  FluidDeath death = FluidDeath::kPerTransmission;
  double p_death = 0.1;       // per-transmission death probability
  double mean_lifetime = 120.0;  // seconds (kLifetime)

  // -- bandwidth & network
  double mu_announce = 16.0;  // total data bandwidth, announcements/s
  double hot_share = 0.5;     // hot fraction of mu_announce (two-queue/fb)
  double mu_nack = 1.875;     // per-receiver feedback capacity, NACK pkts/s
  double loss = 0.1;          // forward loss probability per transmission
  double nack_loss = -1.0;    // reverse loss; < 0 copies `loss`
  double receiver_ttl = 0.0;  // receiver-side entry TTL seconds; 0 disables
  double delay = 0.01;        // one-way propagation delay

  // -- receiver retry policy (feedback variant; receiver.hpp defaults)
  double retry_timeout = 2.0;  // base re-NACK timeout for a lost repair
  double retry_backoff = 2.0;  // timeout multiplier per retry
  int max_retries = 4;         // then the loss is abandoned to the cold cycle

  // -- population
  double cohort = 1e6;        // receiver population size M
  double max_pending_repairs = 64;  // sender NACK-damping cap
  double nack_batch = 64;     // missing seqs per NACK packet
  double fb_queue_limit = 8;  // per-receiver feedback-link queue depth
                              // (overflow drops add to the NACK loss)

  // -- initial condition (default: empty system, cold start)
  double initial_live = 0.0;  // pre-populated live records at t = 0
  double initial_consistency = 1.0;  // fresh fraction of the initial set;
                                     // the rest starts mid-cold-cycle

  // -- integration
  double duration = 2000.0;   // measured window (after warmup)
  double warmup = 200.0;      // transient discarded from averages
  double dt = 0.01;           // RK4 step; shrunk automatically if the
                              // fastest rate demands it (see meanfield.cpp)
  double sample_interval = 0.0;  // > 0 records a windowed c(t) timeline
  int cold_stages = 8;        // Erlang stages approximating the cold cycle
};

/// Per-state occupancy of the receiver population, as fractions of the live
/// set. Sums to 1 (up to integration round-off) whenever live > 0.
struct FluidOccupancy {
  double fresh = 0.0;
  double stale = 0.0;
  double inconsistent = 0.0;
  double recovering = 0.0;
};

/// One point of the fluid c(t) timeline (windowed mean, like the discrete
/// harness's TimelinePoint).
struct FluidPoint {
  double time = 0.0;
  double consistency = 0.0;
};

/// Everything one fluid run reports.
struct FluidResult {
  double avg_consistency = 0.0;  // time-average fresh fraction, post-warmup
  FluidOccupancy occupancy;      // at the end of the run
  FluidOccupancy avg_occupancy;  // time-averaged over the measured window
  double live = 0.0;             // records at end of run
  double hot_backlog = 0.0;      // sender hot-queue entries at end
  double repair_backlog = 0.0;   // pending repair entries at end

  // Cumulative flows over the measured window (fluid analogues of the
  // discrete ExperimentResult counters).
  double announce_tx = 0.0;      // announcements transmitted (hot + cold)
  double repair_tx = 0.0;        // NACK-triggered repair transmissions
  double nacks_per_receiver = 0.0;  // NACK packets one receiver sent
  double redundant_tx = 0.0;     // announcements of records the
                                 // representative receiver already held

  std::vector<FluidPoint> timeline;
};

/// The integrator, exposed incrementally so a live simulation (the hybrid
/// backend, sstp::Session's cohort tier) can advance the cohort in lockstep
/// with simulated time. solve_fluid() below is the one-call wrapper.
class FluidIntegrator {
 public:
  explicit FluidIntegrator(FluidParams params);

  /// Advances the population to absolute time `t` (no-op for t <= now()).
  void advance(double t);

  [[nodiscard]] double now() const { return t_; }
  [[nodiscard]] const FluidParams& params() const { return p_; }

  /// Instantaneous fresh fraction of the live population (1 when empty —
  /// the monitor's vacuous-empty convention).
  [[nodiscard]] double consistency() const;

  /// Instantaneous per-state occupancy fractions.
  [[nodiscard]] FluidOccupancy occupancy() const;

  [[nodiscard]] double live() const;
  [[nodiscard]] double hot_backlog() const;
  [[nodiscard]] double repair_backlog() const;

  /// Integral of the fresh fraction dt since the last reset_stats();
  /// windowed averages are computed by differencing this.
  [[nodiscard]] double consistency_integral() const;

  /// Time-average fresh fraction since the last reset_stats().
  [[nodiscard]] double average_consistency() const;

  /// Time-averaged per-state occupancy since the last reset_stats().
  [[nodiscard]] FluidOccupancy average_occupancy() const;

  /// Cumulative flow counters since the last reset_stats().
  [[nodiscard]] double announce_tx() const { return announce_tx_.value(); }
  [[nodiscard]] double repair_tx() const { return repair_tx_.value(); }
  [[nodiscard]] double nacks_per_receiver() const {
    return nacks_per_receiver_.value();
  }
  [[nodiscard]] double redundant_tx() const { return redundant_tx_.value(); }

  /// Cumulative repair effort (cohort NACK packets + repair transmissions)
  /// — a RecoveryTracker-compatible traffic counter.
  [[nodiscard]] double repair_traffic() const;

  /// Warm-up cutoff: discards accumulated statistics, keeps state.
  void reset_stats();

  /// Raw state vector (tests: conservation and convergence-order checks).
  /// Layout: [n, F, S, IH, RQd, RQr, HR, RT, IC_1..IC_k] — RT is the
  /// retry-wait pool (lost repair, waiting out the receiver's timeout).
  [[nodiscard]] const std::vector<double>& state() const { return y_; }

 private:
  // Instantaneous rates shared between rhs() and step()'s flow counters.
  struct Rates {
    double r_hot_tx = 0.0;   // per-entry hot service rate (sender-side)
    double r_hot_rx = 0.0;   // ... as seen by the receiver (+ delay)
    double rho_hot = 0.0;    // hot utilization estimate
    double s_hot = 0.0;      // hot transmissions/s
    double mu_cold = 0.0;    // bandwidth left for the cold cycle
    double n_cold = 0.0;     // records in the cold rotation
    double a_cold = 0.0;     // per-record cold announce rate
    double sigma = 0.0;      // Erlang stage rate (= cold_stages * a_cold)
    double cold_flux = 0.0;  // cold transmissions/s
    double tx_total = 0.0;   // hot + cold transmissions/s
    double kappa = 0.0;      // loss-detection + NACK-transit rate
    double nack_pkt_rate = 0.0;  // NACK packets/s one receiver emits
    double r_retry = 0.0;    // retry-pool drain rate
    double abandon = 0.0;    // P[retry saga exhausts max_retries]
    double hr_inflow = 0.0;  // repair-pool admission rate
  };
  [[nodiscard]] Rates compute_rates(const std::vector<double>& y) const;

  void rhs(const std::vector<double>& y, std::vector<double>& dy) const;
  void step(double h);

  FluidParams p_;
  double nack_loss_ = 0.0;
  double retry_wait_ = 0.0;  // backoff-weighted mean re-NACK wait at wire
                             // loss (seed for the congestion-aware rates)
  double dt_ = 0.01;     // effective step (auto-clamped)
  double t_ = 0.0;
  std::vector<double> y_;

  // Work buffers for the RK4 stages (no per-step allocation).
  std::vector<double> k1_, k2_, k3_, k4_, tmp_;

  stats::CompensatedSum c_integral_;      // fresh-fraction time integral
  stats::CompensatedSum occ_integral_[4]; // per-state occupancy integrals
  stats::CompensatedSum announce_tx_;
  stats::CompensatedSum repair_tx_;
  stats::CompensatedSum nacks_per_receiver_;
  stats::CompensatedSum redundant_tx_;
  double stats_since_ = 0.0;
};

/// Runs the fluid population start to finish: integrates warmup + duration,
/// averaging (and sampling the timeline) over the post-warmup window.
FluidResult solve_fluid(const FluidParams& params);

/// Closed-form fixed point of the *saturated* open-loop fluid model with
/// per-transmission death (lambda >= mu * p_death): the stationary fresh
/// fraction solves lambda (1 - f) = mu (1-p_death)(1-p_loss) f, giving
///
///   c* = mu (1-p_death)(1-p_loss) / (lambda + mu (1-p_death)(1-p_loss)).
///
/// At the stability boundary lambda = mu * p_death this reduces exactly to
/// Jackson's class mix X_C / X = (1-p_loss)(1-p_death) / (1 - p_loss
/// (1-p_death)) — the paper's E[c(t)] at rho = 1 — which is the seam the
/// fluid-vs-closed-form tests pin down.
double open_loop_fluid_fixed_point(double lambda, double mu, double p_loss,
                                   double p_death);

/// Closed-form fixed point of the open-loop fluid model with memoryless
/// lifetimes (death rate 1/mean_lifetime) and per-record announce rate
/// `announce_rate` (= mu / n* at the stationary live count):
///   c* = a (1-p) / (a (1-p) + 1/tau + u/n*)  with a = announce_rate.
/// Exposed for the loss=0 seam tests; the integrator must land on it.
double open_loop_lifetime_fixed_point(double announce_rate, double p_loss,
                                      double mean_lifetime);

}  // namespace sst::analysis
