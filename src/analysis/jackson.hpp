// jackson.hpp — closed-form analysis of the open-loop announce/listen
// protocol (paper Section 3).
//
// Model: records arrive at rate lambda, are served FIFO by a channel of
// capacity mu_ch, are lost per transmission with probability p_c, and exit
// ("die") after each service with probability p_d. Records are in class I
// (inconsistent) until a transmission succeeds, then class C (consistent),
// cycling through the server forever until death (Table 1):
//
//            -> exit            -> exit
//   I/Enter: I w.p. p_c(1-p_d), C w.p. (1-p_c)(1-p_d), exit w.p. p_d
//   C/Enter: C w.p. (1-p_d),                            exit w.p. p_d
//
// Solving the traffic equations gives class throughputs X_I, X_C, and
// Jackson's theorem gives the stationary distribution, from which the paper
// derives the average system consistency E[c(t)] and the redundant-bandwidth
// fraction (Figures 3 and 4).
#pragma once

#include "sim/units.hpp"

namespace sst::analysis {

/// Inputs of the open-loop model. Rates are in announcements/sec (or any
/// consistent unit — only ratios matter); probabilities in [0,1].
struct OpenLoopParams {
  double lambda = 1.0;  // table update (arrival) rate
  double mu_ch = 10.0;  // channel service rate
  double p_loss = 0.0;  // per-transmission loss probability p_c
  double p_death = 0.1; // per-service death probability p_d
};

/// Derived quantities of the open-loop model.
struct OpenLoopSolution {
  double x_inconsistent = 0.0;  // class-I throughput X_I
  double x_consistent = 0.0;    // class-C throughput X_C
  double x_total = 0.0;         // X = X_I + X_C = lambda / p_d
  double rho = 0.0;             // server utilization X / mu_ch
  bool stable = false;          // rho < 1  <=>  p_d > lambda / mu_ch
  double consistency = 0.0;     // E[c(t)], paper's headline metric
  /// Simulation-comparable variant: the paper's sum weights the empty-system
  /// state as 0 consistency, while an operational monitor scores an empty
  /// live set as vacuously consistent (publisher and receivers agree).
  /// Stable regime: mix*rho + (1-rho). Saturated regime: the class mix (an
  /// approximation — saturation has no true steady state; the simulation's
  /// value sits a few points below the mix because the growing backlog tail
  /// is all unserved inconsistent records).
  double consistency_vacuous = 0.0;
  double redundancy = 0.0;      // fraction of bandwidth on class-C (wasted)
  double mean_records = 0.0;    // E[n] in system (stable case only)
  double mean_latency = 0.0;    // mean sojourn per service cycle (stable)
};

/// Solves the open-loop model.
///
/// E[c(t)] follows the paper: conditioned on the system being non-empty the
/// expected consistent fraction is X_C / X (Jackson: each job is class C
/// independently with that probability), and the paper weights by the
/// probability the system is busy, yielding
///     E[c(t)] = (X_C / X) * min(rho, 1).
/// For rho >= 1 (saturated server) the busy probability is 1 and the class
/// mix still converges to X_C / X; the closed form remains the natural
/// extension, which our simulations confirm (tests/analysis_sim_agreement).
OpenLoopSolution solve_open_loop(const OpenLoopParams& p);

/// Fraction of channel bandwidth spent on redundant (already-consistent)
/// announcements: X_C / X = (1-p_c)(1-p_d) / (1 - p_c(1-p_d)).  (Figure 4.)
double redundant_fraction(double p_loss, double p_death);

/// Expected number of transmissions of a record until it first succeeds,
/// given it survives: 1 / (1 - p_c). Used for latency estimates.
double mean_tx_until_success(double p_loss);

/// Probability a record is EVER received (it may die first):
///   sum_k p_c^(k-1) (1-p_d)^(k-1) (1-p_c) ... = (1-p_c) / (1 - p_c(1-p_d))
/// evaluated at the paper's per-service death model, counting the death draw
/// after each failed attempt.
double prob_ever_received(double p_loss, double p_death);

}  // namespace sst::analysis
