// profiles.hpp — consistency profiles (paper Sections 2 and 6.1).
//
// A consistency profile records how the achieved consistency (or receive
// latency) depends on network loss rate and a bandwidth-allocation knob. The
// paper's SSTP allocator is "profile-driven": it looks up stored profiles —
// "similar to Figure 9" for the data/feedback split and "the T_recv profile,
// similar to Figure 6" for the hot/cold split — and picks the allocation that
// meets the application's consistency target under the currently measured
// loss rate.
//
// Profile2D is a dense grid over (loss rate x allocation fraction) with
// bilinear interpolation; profiles are produced offline by the bench harness
// (empirical, as in the paper) or from the closed-form model.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace sst::analysis {

/// Dense 2D lookup table with bilinear interpolation and clamping at the
/// boundary. Axis values must be strictly increasing.
class Profile2D {
 public:
  /// Constructs a grid; `values[i][j]` corresponds to (xs[i], ys[j]).
  /// Throws std::invalid_argument on ragged or non-monotonic input.
  Profile2D(std::vector<double> xs, std::vector<double> ys,
            std::vector<std::vector<double>> values);

  /// Interpolated value at (x, y); out-of-range coordinates are clamped to
  /// the grid edge (profiles saturate at their measured extremes).
  [[nodiscard]] double at(double x, double y) const;

  /// The y on the grid that maximizes the profile at loss `x` (interpolating
  /// across x, evaluating at grid ys). Ties go to the smaller y — prefer the
  /// least feedback/cold bandwidth that achieves the maximum.
  [[nodiscard]] double best_y(double x) const;

  /// Smallest grid y whose value at loss `x` is >= `target`, if any.
  [[nodiscard]] std::optional<double> min_y_reaching(double x,
                                                     double target) const;

  [[nodiscard]] const std::vector<double>& xs() const { return xs_; }
  [[nodiscard]] const std::vector<double>& ys() const { return ys_; }

 private:
  [[nodiscard]] double value_at_grid_y(double x, std::size_t j) const;

  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<std::vector<double>> values_;  // [x][y]
};

/// Builds the open-loop consistency profile analytically from the Jackson
/// model: x = loss rate, y = death rate, value = E[c(t)].
Profile2D make_open_loop_profile(double lambda, double mu_ch,
                                 std::vector<double> loss_rates,
                                 std::vector<double> death_rates);

}  // namespace sst::analysis
