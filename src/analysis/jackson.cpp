#include "analysis/jackson.hpp"

#include <algorithm>
#include <cmath>

namespace sst::analysis {

OpenLoopSolution solve_open_loop(const OpenLoopParams& p) {
  OpenLoopSolution s;
  const double pc = std::clamp(p.p_loss, 0.0, 1.0);
  const double pd = std::clamp(p.p_death, 1e-12, 1.0);
  const double lambda = std::max(p.lambda, 0.0);
  const double mu = std::max(p.mu_ch, 1e-12);

  // Traffic equations (paper Section 3):
  //   X_I = lambda + p_c (1-p_d) X_I
  //   X_C = (1-p_c)(1-p_d) X_I + (1-p_d) X_C
  const double denom = 1.0 - pc * (1.0 - pd);
  s.x_inconsistent = lambda / denom;
  s.x_consistent = pd < 1.0
                       ? (1.0 - pc) * (1.0 - pd) * s.x_inconsistent / pd
                       : 0.0;
  s.x_total = lambda / pd;
  s.rho = s.x_total / mu;
  s.stable = s.rho < 1.0;

  // Class mix among jobs in system (Jackson): P[class C] = X_C / X.
  const double mix = s.x_total > 0 ? s.x_consistent / s.x_total : 0.0;
  // Busy probability: rho when stable, 1 when saturated.
  const double busy = std::min(s.rho, 1.0);
  s.consistency = mix * busy;
  s.consistency_vacuous = mix * busy + (1.0 - busy);
  s.redundancy = mix;

  if (s.stable && s.rho > 0) {
    // M/M/1 with arrival rate X and service rate mu: E[n] = rho/(1-rho);
    // mean sojourn per visit (one service cycle) by Little's law on a single
    // visit: E[T] = 1/(mu - X).
    s.mean_records = s.rho / (1.0 - s.rho);
    s.mean_latency = 1.0 / (mu - s.x_total);
  }
  return s;
}

double redundant_fraction(double p_loss, double p_death) {
  const double pc = std::clamp(p_loss, 0.0, 1.0);
  const double pd = std::clamp(p_death, 1e-12, 1.0);
  return (1.0 - pc) * (1.0 - pd) / (1.0 - pc * (1.0 - pd));
}

double mean_tx_until_success(double p_loss) {
  const double pc = std::clamp(p_loss, 0.0, 0.999999);
  return 1.0 / (1.0 - pc);
}

double prob_ever_received(double p_loss, double p_death) {
  const double pc = std::clamp(p_loss, 0.0, 1.0);
  const double pd = std::clamp(p_death, 0.0, 1.0);
  const double denom = 1.0 - pc * (1.0 - pd);
  return denom > 0 ? (1.0 - pc) / denom : 0.0;
}

}  // namespace sst::analysis
