#include "analysis/meanfield.hpp"

#include <algorithm>
#include <cmath>

namespace sst::analysis {
namespace {

// State-vector indices (stages IC_1..IC_k follow kIc0).
constexpr int kN = 0;    // live records
constexpr int kF = 1;    // fresh at the representative receiver
constexpr int kS = 2;    // stale (TTL-expired while still live)
constexpr int kIh = 3;   // inconsistent, pending in the hot queue
constexpr int kRqd = 4;  // recovering: loss detected / NACK in flight
constexpr int kRqr = 5;  // recovering: repair pending in the hot queue
constexpr int kHr = 6;   // sender-side pending repair entries (cohort-wide)
constexpr int kRt = 7;   // recovering: lost repair, waiting out the retry
                         // timeout before re-NACKing
constexpr int kIc0 = 8;  // first cold-cycle Erlang stage

constexpr double kTiny = 1e-12;

double nonneg(double x) { return x > 0.0 ? x : 0.0; }

// C-infinity max: RK4's O(h^4) order needs the RHS smooth along the
// trajectory, and a hard max() crossed mid-run (cold-start transients cross
// both the join-queue floor and the hot capacity cap) knocks the local
// error down to O(h^2) at the crossing step. eps is in squared units of the
// operands; the result exceeds true max by at most sqrt(eps)/2, at the
// crossing only.
double smax(double a, double b, double eps) {
  const double d = a - b;
  return 0.5 * (a + b + std::sqrt(d * d + eps));
}

// P[at least one of `m` receivers requests a repair of a given
// transmission], with per-receiver request probability `q`. Computed in log
// space so m = 10^7 neither under- nor overflows.
double cohort_request_prob(double q, double m) {
  if (q <= 0.0 || m <= 0.0) return 0.0;
  if (q >= 1.0) return 1.0;
  return -std::expm1(m * std::log1p(-q));
}

}  // namespace

FluidIntegrator::FluidIntegrator(FluidParams params) : p_(params) {
  p_.cold_stages = std::clamp(p_.cold_stages, 1, 64);
  nack_loss_ = p_.nack_loss < 0.0 ? p_.loss : p_.nack_loss;

  // Backoff-weighted mean re-NACK wait for a lost repair. The receiver's
  // scanner re-requests a missing seq once its age passes
  // retry_timeout * backoff^retries, and the scan grid itself has period
  // retry_timeout, adding half a period on average. Attempts are reached
  // with geometric weight (each needs the previous repair lost too), capped
  // at max_retries, after which the loss is abandoned to the cold cycle.
  {
    // A given retry fails (escalating the backoff) if the re-NACK or the
    // repair it triggers is lost.
    const double pfail = std::clamp(
        1.0 - (1.0 - nack_loss_) * (1.0 - p_.loss), 0.0, 1.0);
    const int tries = std::max(1, p_.max_retries);
    double wsum = 0.0;
    double norm = 0.0;
    double pw = 1.0;
    double thresh = 1.0;
    for (int a = 0; a < tries; ++a) {
      wsum += pw * thresh;
      norm += pw;
      pw *= pfail;
      thresh *= std::max(p_.retry_backoff, 1.0);
    }
    retry_wait_ = p_.retry_timeout * (wsum / std::max(norm, kTiny) + 0.5);
  }

  // RK4 stability wants max_rate * dt well under ~2.8. The stiffest rate in
  // the system is the cold chain through a nearly empty queue, k * mu / 1;
  // clamp dt so even that transient stays stable.
  const double max_rate =
      static_cast<double>(p_.cold_stages) * std::max(p_.mu_announce, 1e-9);
  dt_ = std::min(p_.dt, 1.0 / max_rate);
  dt_ = std::max(dt_, 1e-6);

  y_.assign(static_cast<std::size_t>(kIc0 + p_.cold_stages), 0.0);
  if (p_.initial_live > 0.0) {
    const double c0 = std::clamp(p_.initial_consistency, 0.0, 1.0);
    y_[kN] = p_.initial_live;
    y_[kF] = p_.initial_live * c0;
    // The inconsistent remainder is spread uniformly over the cold-cycle
    // chain: a record's phase within the announce cycle is uniform.
    const double rest =
        p_.initial_live * (1.0 - c0) / static_cast<double>(p_.cold_stages);
    for (int j = 0; j < p_.cold_stages; ++j) y_[kIc0 + j] = rest;
  }
  k1_ = k2_ = k3_ = k4_ = tmp_ = y_;
}

// Instantaneous service/transit rates derived from a state vector. One
// helper feeds both the ODE right-hand side and the flow counters in
// step(), so the two can never drift apart.
FluidIntegrator::Rates FluidIntegrator::compute_rates(
    const std::vector<double>& y) const {
  Rates r;
  const double n = nonneg(y[kN]);
  const double f = nonneg(y[kF]);
  const double s = nonneg(y[kS]);
  const double ih = nonneg(y[kIh]);
  const double hr = nonneg(y[kHr]);
  double ic_total = 0.0;
  for (int j = 0; j < p_.cold_stages; ++j) ic_total += nonneg(y[kIc0 + j]);
  const double n_floor =
      std::max(n, f + s + ih + nonneg(y[kRqd]) + nonneg(y[kRqr]) +
                      nonneg(y[kRt]) + ic_total);

  const bool open_loop = p_.variant == FluidVariant::kOpenLoop;
  const bool feedback = p_.variant == FluidVariant::kFeedback;
  const bool per_tx = p_.death == FluidDeath::kPerTransmission;
  const double pd = per_tx ? p_.p_death : 0.0;
  const double delta = per_tx ? 0.0 : 1.0 / std::max(p_.mean_lifetime, kTiny);
  const double p = p_.loss;
  const double h_tot = ih + hr;
  const double s_link = 1.0 / std::max(p_.mu_announce, kTiny);

  // -- hot queue ----------------------------------------------------------
  // The discrete sender serves ONE link at the full rate mu_announce and a
  // stride scheduler splits slots hot/cold by weight, with the cold cycle
  // (nearly always backlogged) soaking up every idle slot. A hot arrival
  // therefore waits: the residual of the slot in progress (the link is busy
  // whenever the cold cycle is, so ~s_link/2), the drain of the hot backlog
  // ahead of it (back-to-back s_link slots while hot holds the stride), and
  // its own transmission. That is M/D/1 with server vacations, not a
  // dedicated hot server at hot_share * mu: the dedicated-server picture
  // overstates the wait by ~1/mu_hot - 1/mu per packet. rho is estimated
  // from the hot inflow; one bootstrap pass with a backlog-proportional
  // rate breaks the inflow -> service -> inflow cycle.
  const double mu_hot = open_loop ? 0.0 : p_.hot_share * p_.mu_announce;
  double s_hot = 0.0;
  r.r_hot_tx = 0.0;
  r.r_hot_rx = 0.0;
  r.rho_hot = 0.0;
  double cold0 = open_loop ? p_.mu_announce * (n / (n + 1.0)) : 0.0;
  double inflow = p_.lambda;
  double inflow_ih = p_.lambda;
  if (!open_loop && mu_hot > kTiny) {
    const double r0 = mu_hot / (h_tot + 1.0);
    const double s0 = r0 * h_tot;
    const double nc0 = nonneg(n - h_tot);
    cold0 = (p_.mu_announce - s0) * (nc0 / (nc0 + 1.0));
    if (n_floor > kTiny) {
      inflow += p_.update_rate * (f + s + ic_total) / n_floor;
      inflow_ih = inflow;
    }
    if (feedback) {
      // Every lost data packet leaves a sequence gap at EVERY receiver —
      // including the ones that hold the record fresh (they cannot know the
      // missing seq was a redundant re-announcement). Each gap is NACKed
      // and repaired, so the pool's offered load is ~M * p per
      // transmission, not just the inconsistent share; at 25% loss roughly
      // half the hot bandwidth goes to these spurious repairs, and that
      // starvation — not the direct recovery latency — is what drags the
      // discrete E[c] down. Dedup is weak at small M: the sender
      // deduplicates a NACK only while that seq's repair is still pending.
      const double tx0 = s0 + cold0;
      const double ok0 = 1.0 - p;
      const double s_fb = 1.0 / std::max(p_.mu_nack, kTiny);
      const double retry0 =
          (1.0 - nack_loss_) / (retry_wait_ + s_fb + p_.delay);
      const double pfail0 =
          std::clamp(1.0 - (1.0 - nack_loss_) * (1.0 - p), 0.0, 1.0 - 1e-6);
      // Spurious gaps (lost transmissions of records the receiver already
      // holds — repairs for other receivers, redundant cold announces) NACK
      // once inside p * tx0 and then re-NACK like any gap. Extra retries
      // per gap follow the truncated geometric (abandonment-capped), not
      // the full 1/(1-pfail) tail.
      const double extra0 =
          pfail0 *
          (1.0 - std::pow(pfail0, std::max(p_.max_retries, 1))) /
          (1.0 - pfail0);
      const double tx_spur0 =
          r0 * nonneg(hr - nonneg(y[kRqr])) +
          (n_floor > kTiny ? cold0 * (f + s) / n_floor : 0.0);
      const double spur0 = p * tx_spur0 * extra0;
      const double seq0 = p * tx0 + retry0 * nonneg(y[kRt]) + spur0;
      const double gate0 = std::clamp(
          1.0 - hr / std::max(p_.max_pending_repairs, 1.0), 0.0, 1.0);
      // Distinct-seq thinning (see the hr_inflow derivation below): the
      // cohort's NACKs for one lost seq collapse onto ~one pool entry, so
      // the bootstrap must not feed M * q raw demand into the wait
      // estimate — at M = 10^6 that alone collapses the queue model.
      const double q0 = p * (1.0 - nack_loss_);
      const double ov0 = (1.0 / r0) / (1.0 / r0 + 1.0 / (ok0 * tx0 + kTiny) +
                                       s_fb + p_.delay);
      inflow += p_.cohort * seq0 * (1.0 - nack_loss_) * gate0 /
                (1.0 + nonneg(p_.cohort - 1.0) * q0 * ov0 * 0.5);
    }
    // The wait has two regimes. Below saturation it is the M/D/1-vacation
    // wait above (stochastic queueing even when the fluid backlog is below
    // one entry): the discrete p50 receive latency at loss 0.05 matches it
    // to the millisecond. Near saturation (the 25% feedback cell runs the
    // hot queue at rho ~ 0.97) the 1/(1-rho) wait is real — the discrete
    // mean latency sits at ~4 s even though snapshots of the backlog look
    // shallow — but it must not feed back into a formula singularity: any
    // backlog in EXCESS of the equilibrium inflow * w_low adds its own
    // drain time via the state h_tot, so storms grow w with (damping-
    // gated) pool mass and the rho term stays clamped just short of 1.
    // The cap below 1 is the closed-loop correction: NACK/retry arrivals
    // stop regenerating while their repair is pending (the sender dedups
    // against the pool), so the effective Pollaczek tail saturates. The
    // discrete mean receive latency at the near-critical cell pins the
    // saturation point at rho ~ 0.96.
    r.rho_hot = std::clamp(inflow / mu_hot, 0.0, 0.962);
    const double link_busy = std::min(1.0, (s0 + cold0) * s_link);
    const double w_low = 0.5 * s_link * link_busy +
                         0.5 * inflow * s_link * s_link / (1.0 - r.rho_hot) +
                         s_link;
    // Smooth nonneg: the equilibrium sits AT the kink, so the smoothing
    // scale must stay small against the tight loss-0 validation cells.
    // The announce-path share of h_tot (IH) drains at the receiver-visible
    // rate, so its equilibrium mass carries one propagation delay that the
    // baseline must not misread as storm backlog.
    const double xs = h_tot - inflow * w_low - inflow_ih * p_.delay;
    const double excess = 0.5 * (xs + std::sqrt(xs * xs + 1e-6));
    const double w_hot = w_low + excess / mu_hot;
    r.r_hot_tx = 1.0 / w_hot;
    // Receiver-visible transitions lag one propagation delay behind the
    // transmission.
    r.r_hot_rx = 1.0 / (w_hot + p_.delay);
    s_hot = std::min(r.r_hot_tx * h_tot, mu_hot);
  }
  r.s_hot = s_hot;

  // -- cold cycle (open loop: the only queue, over all n records) ---------
  // Work conservation: cold takes whatever bandwidth hot leaves idle. The
  // per-record rate is 1 / (wait of a record that just re-joined the tail).
  // That wait is NOT (n_cold + 1) / mu_cold: the queue it waits behind is
  // the one at JOIN time — population growth adds entries only behind it,
  // and (in lifetime mode) entries ahead that die before their slot are
  // skipped for free. Compounding the skips over the drain gives
  //   W = ln(1 + delta * Q / mu_cold) / delta
  // (-> Q / mu_cold as delta -> 0), with Q the join-time queue
  //   Q = n_cold + 1 - ndot * R0
  // shrunk by HALF the net population drift ndot over one nominal rotation
  // R0 — half, not all of it, because the Erlang chain re-evaluates its
  // stage rate at the CURRENT population as the record traverses it, which
  // already charges the growth accrued since join time once; solving
  // int a(u) du = 1 along a linearly growing queue shows the residual
  // join-time correction is ndot * R0 / 2. Both corrections are worth
  // several consistency points: at the paper's operating points delta * R
  // is O(0.5), and the saturated open-loop rig grows by ~4% of a rotation's
  // queue per rotation.
  r.mu_cold = open_loop ? p_.mu_announce
                        : std::max(p_.mu_announce - s_hot, kTiny);
  r.n_cold = open_loop ? n : nonneg(n - h_tot);
  const double rotation = (r.n_cold + 1.0) / r.mu_cold;
  const double tx0 = open_loop ? cold0 : s_hot + cold0;
  const double death0 = per_tx ? pd * tx0 : delta * n;
  const double ndot = p_.lambda - death0;
  const double q_join = smax(r.n_cold + 1.0 - 0.5 * ndot * rotation, 1.0, 1e-2);
  const double w_cold = delta > kTiny
                            ? std::log1p(delta * q_join / r.mu_cold) / delta
                            : q_join / r.mu_cold;
  r.a_cold = 1.0 / (w_cold + p_.delay);
  r.sigma = static_cast<double>(p_.cold_stages) * r.a_cold;
  r.cold_flux = r.mu_cold * (r.n_cold / (r.n_cold + 1.0));
  r.tx_total = s_hot + (open_loop ? r.cold_flux : r.cold_flux);

  // -- feedback detection / NACK path -------------------------------------
  r.kappa = 0.0;
  r.nack_pkt_rate = 0.0;
  r.r_retry = 0.0;
  r.abandon = 0.0;
  r.hr_inflow = 0.0;
  if (feedback) {
    const double ok = 1.0 - p;
    const double rt = nonneg(y[kRt]);
    const double rqr = nonneg(y[kRqr]);
    const double nu_fb = std::max(p_.mu_nack, kTiny);
    const double s_fb = 1.0 / nu_fb;
    const double detect = ok * std::max(r.tx_total, kTiny);

    // Per-receiver NACK seq demand: one seq per lost data packet (fresh or
    // not — see the spurious-repair note above), plus re-NACKs from the
    // retry scanner for genuine (tracked in RT) and spurious lost repairs.
    // The wire-loss retry constants from the constructor seed the estimate;
    // the congestion-corrected rates below refine it.
    const double retry0 =
        (1.0 - nack_loss_) / (retry_wait_ + s_fb + p_.delay);
    const double pfail0 =
        std::clamp(1.0 - (1.0 - nack_loss_) * ok, 0.0, 1.0 - 1e-6);
    // Spurious gaps have no tracked state (the record stays fresh), so
    // their retry demand is algebraic: creation rate p * (redundant tx
    // seen per receiver) times the truncated-geometric expected extra
    // retries. The first NACK of every gap — spurious or genuine — is
    // already inside p * tx_total.
    const double extra_r =
        pfail0 * (1.0 - std::pow(pfail0, std::max(p_.max_retries, 1))) /
        (1.0 - pfail0);
    const double tx_spur =
        r.r_hot_tx * nonneg(hr - rqr) +
        (n_floor > kTiny ? r.cold_flux * (f + s) / n_floor : 0.0);
    const double spur_retry = p * tx_spur * extra_r;
    const double seq_demand = p * r.tx_total + retry0 * rt + spur_retry;

    // A run of consecutive losses (mean 1/(1-p)) is detected at once and
    // rides a single NACK packet — the immediate NACK path does NOT batch
    // across gaps, which is why the feedback link can saturate even though
    // nack_batch would comfortably cover the seq demand.
    const double run =
        std::clamp(1.0 / std::max(ok, 1e-3), 1.0, std::max(p_.nack_batch, 1.0));
    r.nack_pkt_rate = seq_demand / run;

    // The per-receiver feedback link is a FIFO at nu_fb with a finite
    // queue: M/D/1 wait for the transit plus overflow drops that add to
    // the wire NACK loss. The queue-length tail matters: NACK service is
    // deterministic and arrivals are a thinned announce stream, so the
    // M/M/1/K tail (plain rho^K) badly overstates drops at rho ~ 0.8 —
    // the discrete counters show essentially zero drops there. Use the
    // two-moment M/D/1 decay sigma = rho^2 / (2 - rho) in the finite-queue
    // formula instead; past overload it degrades gracefully to the fluid
    // limit 1 - 1/sigma.
    const double rho_off = r.nack_pkt_rate / nu_fb;
    double p_drop = 0.0;
    {
      const double K = std::max(p_.fb_queue_limit, 1.0);
      const double sigma =
          rho_off * rho_off / std::max(2.0 - rho_off, 1e-3);
      if (std::abs(sigma - 1.0) < 1e-9) {
        p_drop = 1.0 / (K + 1.0);
      } else {
        const double sk = std::pow(sigma, K);
        p_drop = sk * (1.0 - sigma) / (1.0 - sk * sigma);
      }
    }
    const double nl_eff =
        std::clamp(1.0 - (1.0 - nack_loss_) * (1.0 - p_drop), 0.0, 1.0);
    const double rho_fb = std::clamp(rho_off, 0.0, 0.95);
    const double w_fb = 0.5 * s_fb * rho_fb / (1.0 - rho_fb) + s_fb;

    // Retry dynamics under the EFFECTIVE NACK loss (wire + queue drops):
    // geometric backoff weights over the scanner's escalating thresholds,
    // abandonment when all max_retries attempts fail.
    const double pfail =
        std::clamp(1.0 - (1.0 - nl_eff) * ok, 0.0, 1.0 - 1e-6);
    const int tries = std::max(1, p_.max_retries);
    double retry_wait;
    {
      double wsum = 0.0, norm = 0.0, pw = 1.0, thresh = 1.0;
      for (int a = 0; a < tries; ++a) {
        wsum += pw * thresh;
        norm += pw;
        pw *= pfail;
        thresh *= std::max(p_.retry_backoff, 1.0);
      }
      retry_wait = p_.retry_timeout * (wsum / std::max(norm, kTiny) + 0.5);
    }
    r.abandon = std::pow(pfail, tries);

    // A lost first NACK is not retried on the detect cycle: the receiver
    // waits out its retry timeout before re-NACKing, so the expected RQd
    // residence carries nl_eff / (1 - nl_eff) retry waits on top of the
    // detect + feedback transit.
    const double sojourn = 1.0 / detect + w_fb + p_.delay;
    r.kappa =
        1.0 / (sojourn + retry_wait * nl_eff / std::max(1.0 - nl_eff, 1e-3));
    r.r_retry = (1.0 - nl_eff) / (retry_wait + w_fb + p_.delay);

    // Sender repair-pool inflow, cohort-coupled: every NACK seq that
    // survives the feedback channel becomes a pool entry unless a repair
    // for that seq is already pending. The mq = M * q requesters of one
    // lost seq collapse onto mq / (1 + (mq - q) * ov / 2) distinct
    // entries: each requester is suppressed iff one of its (mq - q) / 2
    // expected predecessors' entries is still pending, with `ov` the
    // pool-wait vs NACK-arrival-spread overlap. At M = 2 this is a ~6%
    // dedup — matching the discrete counters (~0.94 repairs per NACK
    // packet, nearly every delivered seq its own repair). At large M the
    // entries per lost seq saturate near 2 / ov: the suppression that
    // makes cohort repair demand M-independent — the paper's scalability
    // story — with the damping gate as backstop. Retry re-NACKs ride the
    // same seq demand, so lost repairs re-request through here too.
    const double q = p * (1.0 - nl_eff);
    const double mq = p_.cohort * q;  // expected requesters per lost tx
    const double w_pend = r.r_hot_tx > kTiny ? 1.0 / r.r_hot_tx : 0.0;
    const double ov = w_pend / std::max(w_pend + sojourn, kTiny);
    const double gate = std::clamp(
        1.0 - hr / std::max(p_.max_pending_repairs, 1.0), 0.0, 1.0);
    r.hr_inflow = p_.cohort * seq_demand * (1.0 - nl_eff) * gate /
                  (1.0 + nonneg(mq - q) * ov * 0.5);
  }
  return r;
}

// The ODE right-hand side. Every term is a flow between named states (or a
// birth/death exchange with n), so d/dt(F + S + IH + RQd + RQr + RT +
// sum IC) equals dn/dt identically — conservation holds by construction and
// the property tests verify the numerics preserve it.
void FluidIntegrator::rhs(const std::vector<double>& y,
                          std::vector<double>& dy) const {
  std::fill(dy.begin(), dy.end(), 0.0);
  const int k = p_.cold_stages;
  const double p = p_.loss;
  const double ok = 1.0 - p;
  const double n = nonneg(y[kN]);
  const double f = nonneg(y[kF]);
  const double s = nonneg(y[kS]);
  const double ih = nonneg(y[kIh]);
  const double rqd = nonneg(y[kRqd]);
  const double rqr = nonneg(y[kRqr]);
  const double hr = nonneg(y[kHr]);
  const double rt = nonneg(y[kRt]);
  double ic_total = 0.0;
  for (int j = 0; j < k; ++j) ic_total += nonneg(y[kIc0 + j]);
  const double n_floor =
      std::max(n, f + s + ih + rqd + rqr + rt + ic_total);

  const bool open_loop = p_.variant == FluidVariant::kOpenLoop;
  const bool feedback = p_.variant == FluidVariant::kFeedback;
  const bool per_tx = p_.death == FluidDeath::kPerTransmission;
  const double pd = per_tx ? p_.p_death : 0.0;
  const double surv = 1.0 - pd;
  const double delta = per_tx ? 0.0 : 1.0 / std::max(p_.mean_lifetime, kTiny);

  const Rates rr = compute_rates(y);
  const double a_cold = rr.a_cold;
  const double sigma = rr.sigma;

  // -- workload: births, updates, lifetime deaths -------------------------
  dy[kN] += p_.lambda;
  if (open_loop) {
    dy[kIc0] += p_.lambda;  // queue tail: a full cycle away
  } else {
    dy[kIh] += p_.lambda;   // new records enter hot
  }

  if (p_.update_rate > 0.0 && n_floor > kTiny) {
    // An update bumps a uniformly chosen live record's version; the
    // receiver's copy (fresh or otherwise) is outdated from that instant.
    const double u = p_.update_rate / n_floor;
    if (open_loop) {
      // The record keeps its position in the announce cycle, uniformly
      // distributed — enter the chain in its stationary phase.
      const double spread = u * f / static_cast<double>(k);
      dy[kF] -= u * f;
      for (int j = 0; j < k; ++j) dy[kIc0 + j] += spread;
    } else {
      // The sender re-hots the key, collapsing it to hot-pending.
      // Recovering records stay put: their pending repair delivers the
      // current version anyway (the sender repairs from the live table).
      dy[kF] -= u * f;
      dy[kS] -= u * s;
      dy[kIh] += u * (f + s);
      for (int j = 0; j < k; ++j) {
        const double x = nonneg(y[kIc0 + j]);
        dy[kIc0 + j] -= u * x;
        dy[kIh] += u * x;
      }
    }
  }

  if (delta > 0.0) {
    dy[kN] -= delta * n;
    dy[kF] -= delta * f;
    dy[kS] -= delta * s;
    dy[kIh] -= delta * ih;
    dy[kRqd] -= delta * rqd;
    dy[kRqr] -= delta * rqr;
    dy[kRt] -= delta * rt;
    dy[kHr] -= delta * hr;
    for (int j = 0; j < k; ++j) dy[kIc0 + j] -= delta * nonneg(y[kIc0 + j]);
  }

  // -- cold cycle ---------------------------------------------------------
  // Chain advance; the last stage's departure is the record's transmission.
  for (int j = 0; j + 1 < k; ++j) {
    const double flow = sigma * nonneg(y[kIc0 + j]);
    dy[kIc0 + j] -= flow;
    dy[kIc0 + j + 1] += flow;
  }
  const double cold_tx = sigma * nonneg(y[kIc0 + k - 1]);
  dy[kIc0 + k - 1] -= cold_tx;
  dy[kF] += cold_tx * surv * ok;
  if (per_tx) dy[kN] -= cold_tx * pd;
  const double cold_fail = cold_tx * surv * p;
  if (feedback) {
    dy[kRqd] += cold_fail;  // gap detected, NACK/repair loop takes over
  } else {
    dy[kIc0] += cold_fail;  // re-enters the cycle at the tail
  }

  // Per-transmission deaths of records the chain does not track: fresh and
  // stale copies are announced by the same cycle at rate a_cold each.
  if (per_tx && pd > 0.0) {
    dy[kF] -= a_cold * pd * f;
    dy[kS] -= a_cold * pd * s;
    dy[kN] -= a_cold * pd * (f + s);
    if (!open_loop) {
      // Recovering records still circulate in the cold cycle too.
      dy[kRqd] -= a_cold * pd * rqd;
      dy[kRqr] -= a_cold * pd * rqr;
      dy[kRt] -= a_cold * pd * rt;
      dy[kN] -= a_cold * pd * (rqd + rqr + rt);
    }
  }

  // TTL: a fresh entry expires if no announcement lands for receiver_ttl.
  // Renewal argument: refreshes arrive at rate r = (1-p) * a_cold, so the
  // expiry hazard is the density of an inter-arrival exceeding the TTL,
  // r * exp(-r * ttl). A stale entry refreshes on the next receipt.
  if (p_.receiver_ttl > 0.0) {
    const double refresh = ok * a_cold;
    const double expire = refresh * std::exp(-refresh * p_.receiver_ttl);
    dy[kF] -= expire * f;
    dy[kS] += expire * f;
    dy[kS] -= refresh * s;
    dy[kF] += refresh * s;
  }

  if (open_loop) return;

  // -- hot queue ----------------------------------------------------------
  const double hot_tx = rr.r_hot_rx * ih;
  dy[kIh] -= hot_tx;
  dy[kF] += hot_tx * surv * ok;
  if (per_tx) dy[kN] -= hot_tx * pd;
  const double hot_fail = hot_tx * surv * p;
  if (feedback) {
    dy[kRqd] += hot_fail;
  } else {
    dy[kIc0] += hot_fail;  // cold backstop: tail of the cold cycle
  }

  if (!feedback) return;

  // -- feedback loop ------------------------------------------------------
  // Detection + NACK transit (rates in compute_rates): the receiver notices
  // the sequence gap on its next successful receipt, then the NACK crosses
  // the rate-limited per-receiver feedback link.
  const double det_flow = rr.kappa * rqd;
  dy[kRqd] -= det_flow;
  dy[kRqr] += det_flow;

  // Repair service from the shared hot queue. A lost repair is NOT
  // re-NACKed at detection speed: the receiver's scanner waits out
  // retry_timeout (escalated by retry_backoff per attempt) before asking
  // again, and after max_retries the loss is abandoned to the cold cycle —
  // both straight from ReceiverAgent::scan_retries().
  const double rep_tx = rr.r_hot_rx * rqr;
  dy[kRqr] -= rep_tx;
  dy[kF] += rep_tx * surv * ok;
  if (per_tx) dy[kN] -= rep_tx * pd;
  dy[kRt] += rep_tx * surv * p;

  const double retry_flow = rr.r_retry * rt;
  dy[kRt] -= retry_flow;
  dy[kRqr] += retry_flow * (1.0 - rr.abandon);
  dy[kIc0] += retry_flow * rr.abandon;

  // Cold backstop: recovering records still cycle through the cold queue,
  // so even a dead feedback channel (mu_nack -> 0) eventually repairs them;
  // a regular announcement also supersedes the outstanding loss (the
  // receiver clears the missing seq on any copy of the record).
  const double backstop_d = a_cold * ok * surv * rqd;
  const double backstop_r = a_cold * ok * surv * rqr;
  const double backstop_t = a_cold * ok * surv * rt;
  dy[kRqd] -= backstop_d;
  dy[kRqr] -= backstop_r;
  dy[kRt] -= backstop_t;
  dy[kF] += backstop_d + backstop_r + backstop_t;

  // -- sender repair pool (cohort-coupled) --------------------------------
  // Admission derived in compute_rates from the delivered NACK-seq rate
  // (dedup window, NACK-damping gate, effective NACK loss); retry
  // re-requests are part of that same seq demand.
  dy[kHr] += rr.hr_inflow;
  dy[kHr] -= rr.r_hot_tx * hr;
  if (per_tx) {
    // Repair transmissions of records we already hold draw deaths too;
    // attribute them across receiver states proportionally. Our own pending
    // repairs are excluded — their deaths are charged on the RQr service
    // path above.
    const double rep_death = rr.r_hot_tx * nonneg(hr - rqr) * pd;
    if (n_floor > kTiny) {
      const double w = rep_death / n_floor;
      dy[kF] -= w * f;
      dy[kS] -= w * s;
      dy[kN] -= rep_death * (f + s) / n_floor;
    }
  }
}

void FluidIntegrator::step(double h) {
  const auto dim = y_.size();
  rhs(y_, k1_);
  for (std::size_t i = 0; i < dim; ++i) tmp_[i] = y_[i] + 0.5 * h * k1_[i];
  rhs(tmp_, k2_);
  for (std::size_t i = 0; i < dim; ++i) tmp_[i] = y_[i] + 0.5 * h * k2_[i];
  rhs(tmp_, k3_);
  for (std::size_t i = 0; i < dim; ++i) tmp_[i] = y_[i] + h * k3_[i];
  rhs(tmp_, k4_);
  for (std::size_t i = 0; i < dim; ++i) {
    y_[i] += (h / 6.0) * (k1_[i] + 2.0 * k2_[i] + 2.0 * k3_[i] + k4_[i]);
  }

  // Trapezoidal accumulation of the reported integrals on the step grid.
  // (The state itself is O(h^4); the observables need only O(h^2) here.)
  const double c_new = consistency();
  const FluidOccupancy occ = occupancy();
  c_integral_.add(h * c_new);
  occ_integral_[0].add(h * occ.fresh);
  occ_integral_[1].add(h * occ.stale);
  occ_integral_[2].add(h * occ.inconsistent);
  occ_integral_[3].add(h * occ.recovering);

  // Flow counters: the same rate derivation the RHS uses, evaluated on the
  // post-step state.
  const Rates rr = compute_rates(y_);
  announce_tx_.add(h * rr.tx_total);
  repair_tx_.add(h * rr.r_hot_tx * nonneg(y_[kHr]));
  if (p_.variant == FluidVariant::kFeedback) {
    nacks_per_receiver_.add(h * rr.nack_pkt_rate);
  }
  // A cold announcement of a record the receiver already holds fresh is
  // redundant bandwidth (the paper's W metric).
  const double n = nonneg(y_[kN]);
  const double f = nonneg(y_[kF]);
  if (n > kTiny) redundant_tx_.add(h * rr.cold_flux * (f / n));
}

void FluidIntegrator::advance(double t) {
  while (t_ + dt_ <= t + kTiny) {
    step(dt_);
    t_ += dt_;
  }
  const double rem = t - t_;
  if (rem > 1e-9) {
    step(rem);
    t_ = t;
  }
}

double FluidIntegrator::consistency() const {
  const double n = y_[kN];
  if (n <= kTiny) return 1.0;  // vacuous-empty convention
  return std::clamp(y_[kF] / n, 0.0, 1.0);
}

FluidOccupancy FluidIntegrator::occupancy() const {
  FluidOccupancy occ;
  const double n = y_[kN];
  if (n <= kTiny) {
    occ.fresh = 1.0;
    return occ;
  }
  double ic = y_[kIh];
  for (int j = 0; j < p_.cold_stages; ++j) ic += y_[kIc0 + j];
  occ.fresh = y_[kF] / n;
  occ.stale = y_[kS] / n;
  occ.inconsistent = ic / n;
  occ.recovering = (y_[kRqd] + y_[kRqr] + y_[kRt]) / n;
  return occ;
}

double FluidIntegrator::live() const { return y_[kN]; }
double FluidIntegrator::hot_backlog() const { return y_[kIh] + y_[kHr]; }
double FluidIntegrator::repair_backlog() const { return y_[kHr]; }

double FluidIntegrator::consistency_integral() const {
  return c_integral_.value();
}

double FluidIntegrator::average_consistency() const {
  const double span = t_ - stats_since_;
  if (span <= 0.0) return consistency();
  return c_integral_.value() / span;
}

FluidOccupancy FluidIntegrator::average_occupancy() const {
  const double span = t_ - stats_since_;
  if (span <= 0.0) return occupancy();
  FluidOccupancy occ;
  occ.fresh = occ_integral_[0].value() / span;
  occ.stale = occ_integral_[1].value() / span;
  occ.inconsistent = occ_integral_[2].value() / span;
  occ.recovering = occ_integral_[3].value() / span;
  return occ;
}

double FluidIntegrator::repair_traffic() const {
  return repair_tx_.value() + p_.cohort * nacks_per_receiver_.value();
}

void FluidIntegrator::reset_stats() {
  c_integral_.reset();
  for (auto& acc : occ_integral_) acc.reset();
  announce_tx_.reset();
  repair_tx_.reset();
  nacks_per_receiver_.reset();
  redundant_tx_.reset();
  stats_since_ = t_;
}

FluidResult solve_fluid(const FluidParams& params) {
  FluidIntegrator fluid(params);
  fluid.advance(params.warmup);
  fluid.reset_stats();

  FluidResult r;
  const double end = params.warmup + params.duration;
  if (params.sample_interval > 0.0) {
    double prev_t = fluid.now();
    double prev_i = fluid.consistency_integral();
    for (double t = params.warmup + params.sample_interval; t < end + kTiny;
         t += params.sample_interval) {
      fluid.advance(std::min(t, end));
      const double span = fluid.now() - prev_t;
      const double integral = fluid.consistency_integral();
      if (span > 0.0) {
        r.timeline.push_back({fluid.now(), (integral - prev_i) / span});
      }
      prev_t = fluid.now();
      prev_i = integral;
    }
  }
  fluid.advance(end);

  r.avg_consistency = fluid.average_consistency();
  r.occupancy = fluid.occupancy();
  r.avg_occupancy = fluid.average_occupancy();
  r.live = fluid.live();
  r.hot_backlog = fluid.hot_backlog();
  r.repair_backlog = fluid.repair_backlog();
  r.announce_tx = fluid.announce_tx();
  r.repair_tx = fluid.repair_tx();
  r.nacks_per_receiver = fluid.nacks_per_receiver();
  r.redundant_tx = fluid.redundant_tx();
  return r;
}

double open_loop_fluid_fixed_point(double lambda, double mu, double p_loss,
                                   double p_death) {
  const double recover = mu * (1.0 - p_death) * (1.0 - p_loss);
  if (lambda + recover <= 0.0) return 1.0;
  return recover / (lambda + recover);
}

double open_loop_lifetime_fixed_point(double announce_rate, double p_loss,
                                      double mean_lifetime) {
  const double refresh = announce_rate * (1.0 - p_loss);
  const double churn = 1.0 / std::max(mean_lifetime, kTiny);
  if (refresh + churn <= 0.0) return 1.0;
  return refresh / (refresh + churn);
}

}  // namespace sst::analysis
