#include "analysis/profiles.hpp"

#include <algorithm>
#include <stdexcept>

#include "analysis/jackson.hpp"

namespace sst::analysis {

namespace {

// Index of the grid cell containing x: largest i with axis[i] <= x,
// clamped to [0, n-2] so i+1 is always valid.
std::size_t lower_cell(const std::vector<double>& axis, double x) {
  if (axis.size() < 2 || x <= axis.front()) return 0;
  const auto it = std::upper_bound(axis.begin(), axis.end(), x);
  const auto idx = static_cast<std::size_t>(it - axis.begin());
  if (idx == 0) return 0;
  return std::min(idx - 1, axis.size() - 2);
}

// Interpolation weight of x within cell i (clamped to [0,1]).
double frac(const std::vector<double>& axis, std::size_t i, double x) {
  if (axis.size() < 2) return 0.0;
  const double lo = axis[i];
  const double hi = axis[i + 1];
  if (hi <= lo) return 0.0;
  return std::clamp((x - lo) / (hi - lo), 0.0, 1.0);
}

}  // namespace

Profile2D::Profile2D(std::vector<double> xs, std::vector<double> ys,
                     std::vector<std::vector<double>> values)
    : xs_(std::move(xs)), ys_(std::move(ys)), values_(std::move(values)) {
  if (xs_.empty() || ys_.empty()) {
    throw std::invalid_argument("Profile2D: empty axis");
  }
  if (values_.size() != xs_.size()) {
    throw std::invalid_argument("Profile2D: row count != xs size");
  }
  for (const auto& row : values_) {
    if (row.size() != ys_.size()) {
      throw std::invalid_argument("Profile2D: ragged rows");
    }
  }
  for (std::size_t i = 1; i < xs_.size(); ++i) {
    if (xs_[i] <= xs_[i - 1]) {
      throw std::invalid_argument("Profile2D: xs not increasing");
    }
  }
  for (std::size_t j = 1; j < ys_.size(); ++j) {
    if (ys_[j] <= ys_[j - 1]) {
      throw std::invalid_argument("Profile2D: ys not increasing");
    }
  }
}

double Profile2D::value_at_grid_y(double x, std::size_t j) const {
  if (xs_.size() == 1) return values_[0][j];
  const std::size_t i = lower_cell(xs_, x);
  const double t = frac(xs_, i, x);
  return (1.0 - t) * values_[i][j] + t * values_[i + 1][j];
}

double Profile2D::at(double x, double y) const {
  if (ys_.size() == 1) return value_at_grid_y(x, 0);
  const std::size_t j = lower_cell(ys_, y);
  const double u = frac(ys_, j, y);
  const double v0 = value_at_grid_y(x, j);
  const double v1 = value_at_grid_y(x, j + 1);
  return (1.0 - u) * v0 + u * v1;
}

double Profile2D::best_y(double x) const {
  std::size_t best = 0;
  double best_v = value_at_grid_y(x, 0);
  for (std::size_t j = 1; j < ys_.size(); ++j) {
    const double v = value_at_grid_y(x, j);
    if (v > best_v + 1e-12) {
      best = j;
      best_v = v;
    }
  }
  return ys_[best];
}

std::optional<double> Profile2D::min_y_reaching(double x,
                                                double target) const {
  for (std::size_t j = 0; j < ys_.size(); ++j) {
    if (value_at_grid_y(x, j) >= target) return ys_[j];
  }
  return std::nullopt;
}

Profile2D make_open_loop_profile(double lambda, double mu_ch,
                                 std::vector<double> loss_rates,
                                 std::vector<double> death_rates) {
  std::vector<std::vector<double>> values;
  values.reserve(loss_rates.size());
  for (const double pc : loss_rates) {
    std::vector<double> row;
    row.reserve(death_rates.size());
    for (const double pd : death_rates) {
      OpenLoopParams p;
      p.lambda = lambda;
      p.mu_ch = mu_ch;
      p.p_loss = pc;
      p.p_death = pd;
      row.push_back(solve_open_loop(p).consistency);
    }
    values.push_back(std::move(row));
  }
  return Profile2D(std::move(loss_rates), std::move(death_rates),
                   std::move(values));
}

}  // namespace sst::analysis
