// compensated.hpp — Neumaier compensated summation.
//
// Long replications fold millions of small increments into running sums
// (the consistency time-integral alone takes one per event). A bare
// `sum += x` loses the low-order bits of whichever addend is smaller, and
// the drift depends on magnitude spread — which is why the sstlint rule
// float-accum rejects naive accumulation in sst::stats. This is the blessed
// alternative for plain sums; Welford (welford.hpp) remains the blessed
// form for means and variances.
#pragma once

#include <cmath>

namespace sst::stats {

/// Running sum with Neumaier's improved Kahan compensation: the rounding
/// error of every add is captured in a parallel compensation term and folded
/// back in on read, so the result is exact to within one final rounding.
class CompensatedSum {
 public:
  void add(double x) {
    const double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x)) {
      // The compensation term accumulates values already rounded to far
      // below the sum's ULP; compensating the compensation gains nothing.
      comp_ += (sum_ - t) + x;  // sstlint: allow(float-accum)
    } else {
      comp_ += (x - t) + sum_;  // sstlint: allow(float-accum)
    }
    sum_ = t;
  }

  /// The compensated total.
  [[nodiscard]] double value() const { return sum_ + comp_; }

  void reset() {
    sum_ = 0.0;
    comp_ = 0.0;
  }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

}  // namespace sst::stats
