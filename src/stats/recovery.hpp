// recovery.hpp — recovery-time metrics for fault-injection runs.
//
// The paper's robustness claim is qualitative: after a failure, soft state
// "recovers by virtue of the periodic announce/listen update process" with no
// special recovery code. This tracker makes the claim quantitative. It
// watches the (piecewise-constant) system consistency signal and, for every
// injected fault, measures
//   - recovery time: how long after the fault CLEARS (sender restarted,
//     partition healed, joiner admitted) consistency takes to climb back to
//     a threshold (default 0.9);
//   - consistency deficit: the integral of (threshold - c(t))+ over the
//     whole episode, i.e. the area of the dip below the threshold — two
//     faults with equal recovery times can still differ greatly in how much
//     staleness subscribers observed;
//   - repair-traffic overhead: via an optional traffic counter callback, the
//     protocol effort (repairs, queries, NACK-triggered retransmissions)
//     spent between injection and recovery.
// The fault injector (sst::fault) drives inject/clear and samples the
// consistency signal into observe().
#pragma once

#include <functional>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "sim/units.hpp"

namespace sst::stats {

/// Everything measured about one injected fault.
struct RecoveryRecord {
  std::string label;            // e.g. "crash", "partition:2", "join:3"
  double injected_at = 0.0;     // when the fault hit
  double cleared_at = -1.0;     // when the fault condition lifted (<0: never)
  double recovered_at = -1.0;   // first c >= threshold after clearing (<0:
                                // not yet recovered when the run ended)
  double deficit = 0.0;         // integral of (threshold - c(t))+ dt over the
                                // episode [injected_at, recovered_at|end]
  double repair_overhead = 0.0; // traffic counter delta injection->recovery

  [[nodiscard]] bool cleared() const { return cleared_at >= 0.0; }
  [[nodiscard]] bool recovered() const { return recovered_at >= 0.0; }

  /// Time from the fault clearing to reconvergence; +inf while unrecovered
  /// (finite for every fault is the pass criterion of a recovery test).
  [[nodiscard]] double recovery_time() const {
    if (!recovered()) return std::numeric_limits<double>::infinity();
    const double from = cleared() ? cleared_at : injected_at;
    return recovered_at > from ? recovered_at - from : 0.0;
  }
};

/// Accumulates RecoveryRecords from a sampled consistency signal.
///
/// Usage: call observe(now, c) whenever the signal is sampled (and at least
/// once before the first fault); inject()/clear() bracket each fault. A fault
/// recovers at the first observation at-or-after its clear time with
/// c >= threshold. finish() closes the deficit integrals at the end of a run.
class RecoveryTracker {
 public:
  explicit RecoveryTracker(double threshold = 0.9)
      : threshold_(threshold) {}

  [[nodiscard]] double threshold() const { return threshold_; }

  /// Optional cumulative repair-traffic counter (packets or bytes — the
  /// caller picks the unit); sampled at injection and at recovery to compute
  /// each record's repair_overhead.
  void set_traffic_counter(std::function<double()> fn) {
    traffic_fn_ = std::move(fn);
  }

  /// Feeds the piecewise-constant consistency signal. `now` must be
  /// non-decreasing across calls.
  void observe(double now, double consistency) {
    integrate(now);
    value_ = consistency;
    settle(now);
  }

  /// Marks a fault injected at `now`; returns its index into records().
  std::size_t inject(std::string label, double now) {
    integrate(now);
    RecoveryRecord rec;
    rec.label = std::move(label);
    rec.injected_at = now;
    if (traffic_fn_) traffic_at_inject_.push_back(traffic_fn_());
    else traffic_at_inject_.push_back(0.0);
    records_.push_back(std::move(rec));
    open_.push_back(records_.size() - 1);
    return records_.size() - 1;
  }

  /// Marks the fault condition lifted (restart/heal). The fault may recover
  /// immediately if consistency already sits at-or-above the threshold.
  void clear(std::size_t fault, double now) {
    integrate(now);
    records_.at(fault).cleared_at = now;
    settle(now);
  }

  /// Closes every open episode's deficit integral at the end of a run;
  /// unrecovered faults keep recovered_at < 0 (recovery_time() = +inf).
  void finish(double now) { integrate(now); }

  [[nodiscard]] const std::vector<RecoveryRecord>& records() const {
    return records_;
  }

  /// True when every injected fault both cleared and recovered.
  [[nodiscard]] bool all_recovered() const {
    for (const auto& r : records_) {
      if (!r.recovered()) return false;
    }
    return true;
  }

 private:
  // Accrues the deficit of every open episode up to `now`.
  void integrate(double now) {
    if (now > last_time_ && !open_.empty() && value_ < threshold_) {
      const double area = (threshold_ - value_) * (now - last_time_);
      // A fault episode spans few events (bounded by the recovery time),
      // and every increment shares the threshold-gap scale, so bare
      // accumulation loses nothing here; compensating would force a
      // compensation field into the public RecoveryRecord layout.
      for (const std::size_t i : open_)
        records_[i].deficit += area;  // sstlint: allow(float-accum)
    }
    if (now > last_time_) last_time_ = now;
  }

  // Closes every clear-and-above-threshold episode at `now`.
  void settle(double now) {
    if (value_ < threshold_) return;
    for (auto it = open_.begin(); it != open_.end();) {
      RecoveryRecord& rec = records_[*it];
      if (rec.cleared() && now >= rec.cleared_at) {
        rec.recovered_at = now;
        if (traffic_fn_) {
          rec.repair_overhead = traffic_fn_() - traffic_at_inject_[*it];
        }
        it = open_.erase(it);
      } else {
        ++it;
      }
    }
  }

  double threshold_;
  double value_ = 1.0;
  double last_time_ = 0.0;
  std::function<double()> traffic_fn_;
  std::vector<RecoveryRecord> records_;
  std::vector<double> traffic_at_inject_;  // parallel to records_
  std::vector<std::size_t> open_;          // indices still below recovery
};

}  // namespace sst::stats
