// welford.hpp — numerically stable running mean/variance and confidence
// intervals for sample statistics (receive latency, per-run consistency
// across seeds, ...).
#pragma once

#include <cmath>
#include <cstdint>

namespace sst::stats {

/// Welford's online algorithm for mean and variance.
class Welford {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    // These two updates ARE the Welford recurrence the float-accum lint
    // rule points naive accumulation at; the increments are scaled to the
    // running mean, which is what makes the recurrence stable.
    mean_ += delta / static_cast<double>(n_);  // sstlint: allow(float-accum)
    m2_ += delta * (x - mean_);                // sstlint: allow(float-accum)
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  /// Unbiased sample variance (0 for fewer than two samples).
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }

  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  /// Standard error of the mean.
  [[nodiscard]] double sem() const {
    return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }

  /// Half-width of an approximate 95% confidence interval for the mean
  /// (normal approximation; adequate for the n >= 10 replications used in
  /// the benches).
  [[nodiscard]] double ci95_half_width() const { return 1.96 * sem(); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace sst::stats
