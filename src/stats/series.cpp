#include "stats/series.hpp"

#include <algorithm>
#include <cmath>

namespace sst::stats {

namespace {

// Compact numeric rendering: integers without decimals, small magnitudes
// with enough precision to be useful.
std::string format_value(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e12) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else if (std::fabs(v) >= 0.001 || v == 0.0) {
    std::snprintf(buf, sizeof buf, "%.4f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.3e", v);
  }
  return buf;
}

}  // namespace

void ResultTable::print(std::FILE* out, const std::string& title) const {
  // Column widths: max of header and rendered values.
  std::vector<std::size_t> widths(columns_.size());
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      std::string s = c < row.size() ? format_value(row[c]) : "-";
      widths[c] = std::max(widths[c], s.size());
      r.push_back(std::move(s));
    }
    rendered.push_back(std::move(r));
  }

  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;

  std::fprintf(out, "\n%s\n", title.c_str());
  for (std::size_t i = 0; i < std::max<std::size_t>(total, title.size()); ++i)
    std::fputc('-', out);
  std::fputc('\n', out);

  for (std::size_t c = 0; c < columns_.size(); ++c) {
    std::fprintf(out, "%*s  ", static_cast<int>(widths[c]),
                 columns_[c].c_str());
  }
  std::fputc('\n', out);
  for (const auto& r : rendered) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      std::fprintf(out, "%*s  ", static_cast<int>(widths[c]), r[c].c_str());
    }
    std::fputc('\n', out);
  }
  std::fflush(out);
}

void ResultTable::print_tsv(std::FILE* out) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    std::fprintf(out, "%s%c", columns_[c].c_str(),
                 c + 1 == columns_.size() ? '\n' : '\t');
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      std::fprintf(out, "%s%c",
                   c < row.size() ? format_value(row[c]).c_str() : "-",
                   c + 1 == columns_.size() ? '\n' : '\t');
    }
  }
  std::fflush(out);
}

}  // namespace sst::stats
