// histogram.hpp — fixed-bin and quantile-capable histograms for latency and
// queue-depth distributions.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "stats/compensated.hpp"

namespace sst::stats {

/// Fixed-width-bin histogram over [lo, hi) with overflow/underflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), bins_(bins == 0 ? 1 : bins),
        counts_(bins == 0 ? 1 : bins, 0) {}

  void add(double x) {
    ++total_;
    if (x < lo_) {
      ++underflow_;
      return;
    }
    if (x >= hi_) {
      ++overflow_;
      return;
    }
    const auto idx = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                              static_cast<double>(bins_));
    ++counts_[std::min(idx, bins_ - 1)];
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const {
    return counts_.at(i);
  }
  [[nodiscard]] std::size_t bins() const { return bins_; }

  /// Lower edge of bin i.
  [[nodiscard]] double bin_lo(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(bins_);
  }

  /// Approximate quantile q in [0,1] by linear interpolation within the bin.
  /// Underflow mass reports lo, overflow mass reports hi.
  [[nodiscard]] double quantile(double q) const {
    if (total_ == 0) return lo_;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(total_);
    double cum = static_cast<double>(underflow_);
    if (target <= cum) return lo_;
    for (std::size_t i = 0; i < bins_; ++i) {
      const double next = cum + static_cast<double>(counts_[i]);
      if (target <= next && counts_[i] > 0) {
        const double frac = (target - cum) / static_cast<double>(counts_[i]);
        const double width = (hi_ - lo_) / static_cast<double>(bins_);
        return bin_lo(i) + frac * width;
      }
      cum = next;
    }
    return hi_;
  }

 private:
  double lo_, hi_;
  std::size_t bins_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Exact-quantile reservoir: stores every sample (fine for the 1e4–1e6
/// latency samples a run produces) and sorts on demand.
class Samples {
 public:
  void add(double x) {
    data_.push_back(x);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return data_.size(); }

  [[nodiscard]] double quantile(double q) {
    if (data_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(data_.begin(), data_.end());
      sorted_ = true;
    }
    q = std::clamp(q, 0.0, 1.0);
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(data_.size() - 1) + 0.5);
    return data_[idx];
  }

  [[nodiscard]] double mean() const {
    if (data_.empty()) return 0.0;
    CompensatedSum s;
    for (const double x : data_) s.add(x);
    return s.value() / static_cast<double>(data_.size());
  }

 private:
  std::vector<double> data_;
  bool sorted_ = false;
};

}  // namespace sst::stats
