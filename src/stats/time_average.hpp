// time_average.hpp — time-weighted averaging of a piecewise-constant signal.
//
// The paper's average system consistency E[c(t)] is the *time* average of the
// instantaneous consistency c(t) (Section 2.1). c(t) is piecewise constant —
// it changes only at discrete events (arrival, delivery, expiry) — so the
// exact time average is the sum of value*holding-time over the observation
// window. This accumulator implements that, with an optional warm-up cutoff
// so transients don't bias steady-state estimates.
#pragma once

#include "sim/units.hpp"
#include "stats/compensated.hpp"

namespace sst::stats {

/// Exact time average of a piecewise-constant signal.
class TimeAverage {
 public:
  /// Starts observing at time `start` with initial value `value`.
  explicit TimeAverage(sim::SimTime start = 0.0, double value = 0.0)
      : last_time_(start), value_(value) {}

  /// Records that the signal changed to `value` at time `now` (>= the last
  /// update time; earlier times are clamped).
  void update(sim::SimTime now, double value) {
    advance(now);
    value_ = value;
  }

  /// Accounts the current value up to `now` without changing it.
  void advance(sim::SimTime now) {
    if (now > last_time_) {
      // One increment per event over a whole replication: compensated
      // summation keeps the integral exact where a bare += would drift.
      weighted_sum_.add(value_ * (now - last_time_));
      duration_.add(now - last_time_);
      last_time_ = now;
    }
  }

  /// Time average over [start, now] after accounting up to `now`.
  [[nodiscard]] double average(sim::SimTime now) {
    advance(now);
    return average();
  }

  /// Time average over everything advanced so far.
  [[nodiscard]] double average() const {
    const double d = duration_.value();
    return d > 0 ? weighted_sum_.value() / d : value_;
  }

  /// Drops all accumulated history; the signal keeps its current value and
  /// observation restarts at `now`. Used to discard warm-up transients.
  void reset(sim::SimTime now) {
    advance(now);
    weighted_sum_.reset();
    duration_.reset();
    last_time_ = now;
  }

  /// Current (most recently set) signal value.
  [[nodiscard]] double current() const { return value_; }

  /// Accumulated integral of the signal (value x time) since construction or
  /// the last reset. Windowed averages are integral differences divided by
  /// the window length.
  [[nodiscard]] double integral() const { return weighted_sum_.value(); }

  /// Total observed duration.
  [[nodiscard]] double duration() const { return duration_.value(); }

 private:
  sim::SimTime last_time_;
  double value_;
  CompensatedSum weighted_sum_;
  CompensatedSum duration_;
};

}  // namespace sst::stats
