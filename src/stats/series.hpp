// series.hpp — result tables for the benchmark harness.
//
// Every bench binary regenerates one of the paper's tables or figures as a
// text table: named columns, one row per sweep point or time sample, printed
// in a fixed-width layout (and optionally TSV for plotting). Keeping this in
// one place makes all bench output uniform and diffable.
#pragma once

#include <cstdio>
#include <initializer_list>
#include <string>
#include <vector>

namespace sst::stats {

/// A rectangular results table.
class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  /// Appends a row; must have one value per column.
  void add_row(std::initializer_list<double> values) {
    rows_.emplace_back(values);
  }
  void add_row(std::vector<double> values) {
    rows_.push_back(std::move(values));
  }

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& columns() const {
    return columns_;
  }
  [[nodiscard]] const std::vector<double>& row(std::size_t i) const {
    return rows_.at(i);
  }

  /// Pretty fixed-width print to `out` with a title banner.
  void print(std::FILE* out, const std::string& title) const;

  /// Tab-separated print (no banner) for machine consumption.
  void print_tsv(std::FILE* out) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace sst::stats
