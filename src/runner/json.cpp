#include "runner/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace sst::runner {

namespace {

void write_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_double(std::string& out, double v) {
  // JSON has no inf/nan; the driver maps "never recovered" and friends to
  // null before they get here, so a non-finite value is a caller bug — but
  // emit null rather than invalid JSON.
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  // Shortest round-trip form: deterministic, locale-independent, and reads
  // back to exactly the same double.
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void write_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

void Json::write(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInteger: {
      char buf[24];
      const auto res = std::to_chars(buf, buf + sizeof buf, int_);
      out.append(buf, res.ptr);
      break;
    }
    case Kind::kNumber:
      write_double(out, num_);
      break;
    case Kind::kString:
      write_escaped(out, str_);
      break;
    case Kind::kArray: {
      if (elements_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        if (i) out += ',';
        write_newline_indent(out, indent, depth + 1);
        elements_[i].write(out, indent, depth + 1);
      }
      write_newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i) out += ',';
        write_newline_indent(out, indent, depth + 1);
        write_escaped(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.write(out, indent, depth + 1);
      }
      write_newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

}  // namespace sst::runner
