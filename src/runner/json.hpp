// json.hpp — a minimal, deterministic JSON document builder.
//
// The replication driver's one output format is JSON, and its determinism
// guarantee ("--jobs=8 is byte-identical to --jobs=1") extends to the bytes
// of that output. So the writer is built for canonical serialization:
// objects preserve insertion order, doubles are printed with the shortest
// round-trip representation (std::to_chars), and there is exactly one
// spelling for every value. No parser — this repo only ever *emits* JSON.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sst::runner {

/// An immutable-ish JSON value built bottom-up. Copyable; small documents
/// only (bench summaries), so no allocation tricks.
class Json {
 public:
  /// Constructs null.
  Json() : kind_(Kind::kNull) {}

  static Json object() { return Json(Kind::kObject); }
  static Json array() { return Json(Kind::kArray); }
  static Json string(std::string_view s) {
    Json j(Kind::kString);
    j.str_ = std::string(s);
    return j;
  }
  static Json number(double v) {
    Json j(Kind::kNumber);
    j.num_ = v;
    return j;
  }
  static Json integer(std::uint64_t v) {
    Json j(Kind::kInteger);
    j.int_ = v;
    return j;
  }
  static Json boolean(bool v) {
    Json j(Kind::kBool);
    j.bool_ = v;
    return j;
  }
  static Json null() { return Json(); }

  /// Object member insertion (insertion order preserved). Returns *this for
  /// chaining.
  Json& set(std::string_view key, Json value) {
    members_.emplace_back(std::string(key), std::move(value));
    return *this;
  }

  /// Array element append.
  Json& push(Json value) {
    elements_.push_back(std::move(value));
    return *this;
  }

  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }

  /// Serializes the document. `indent` > 0 pretty-prints with that many
  /// spaces per level; 0 emits one line.
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInteger,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  explicit Json(Kind kind) : kind_(kind) {}

  void write(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::uint64_t int_ = 0;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> elements_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace sst::runner
