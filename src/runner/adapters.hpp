// adapters.hpp — prebuilt runner bindings for the repo's harnesses.
//
// The driver itself (runner.hpp) takes an arbitrary replication callable;
// these adapters bind it to the three standard rigs — the soft state
// core::Experiment, the arq hard-state baseline, and fault-plan runs — and
// fix the canonical metric row each one reports, so every bench and sstsim
// agree on metric names.
#pragma once

#include "arq/experiment.hpp"
#include "core/experiment.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "runner/runner.hpp"

namespace sst::runner {

/// Canonical metric row of a soft state run. Order is fixed; every name
/// appears in the emitted JSON.
MetricRow metrics_of(const core::ExperimentResult& r);

/// Canonical metric row of a hard-state run.
MetricRow metrics_of(const arq::HardStateResult& r);

/// Fault-run metrics: the soft state row plus recovery aggregates
/// (faults_injected, faults_recovered, recovery_s_sum over recovered
/// faults, consistency_deficit_sum, repair_overhead_sum, joins_caught_up,
/// join_catch_up_s_sum).
MetricRow metrics_of(const fault::FaultRunResult& r);

/// N replications of core::run_experiment. The config's own seed is
/// ignored; replication i runs with replication_seed(opt.master_seed, i).
Aggregate run_replicated(const core::ExperimentConfig& config,
                         const Options& opt);

/// N replications of the hard-state baseline.
Aggregate run_replicated(const arq::HardStateConfig& config,
                         const Options& opt);

/// N replications of a fault-plan run (the plan and injector config are
/// shared; each replication replays the same fault script against its own
/// independent rig).
Aggregate run_replicated(const core::ExperimentConfig& config,
                         const fault::FaultPlan& plan,
                         const fault::InjectorConfig& inj,
                         const Options& opt);

}  // namespace sst::runner
