#include "runner/runner.hpp"

#include <atomic>
#include <cstdio>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "sim/random.hpp"

namespace sst::runner {

std::uint64_t replication_seed(std::uint64_t master_seed, std::size_t rep) {
  return sim::Rng(master_seed).fork("replication", rep).next_u64();
}

const stats::Welford* Aggregate::find(std::string_view name) const {
  for (const auto& m : metrics_) {
    if (m.name == name) return &m.stats;
  }
  return nullptr;
}

double Aggregate::mean(std::string_view name) const {
  const auto* w = find(name);
  return w ? w->mean() : 0.0;
}

double Aggregate::ci95(std::string_view name) const {
  const auto* w = find(name);
  return w ? w->ci95_half_width() : 0.0;
}

Json Aggregate::to_json() const {
  Json obj = Json::object();
  for (const auto& m : metrics_) {
    Json summary = Json::object();
    summary.set("mean", Json::number(m.stats.mean()))
        .set("ci95", Json::number(m.stats.ci95_half_width()))
        .set("stddev", Json::number(m.stats.stddev()))
        .set("min", Json::number(m.stats.min()))
        .set("max", Json::number(m.stats.max()))
        .set("n", Json::integer(m.stats.count()));
    obj.set(m.name, std::move(summary));
  }
  return obj;
}

Aggregate run_replications(const ReplicationFn& fn, const Options& opt) {
  const std::size_t n = opt.replications;
  std::vector<MetricRow> rows(n);
  if (n == 0) return Aggregate(0, {});

  std::size_t jobs = opt.jobs;
  if (jobs == 0) {
    // Budget the pool around each replication's own shard crew; see
    // auto_jobs for why this rounds up rather than down.
    jobs = auto_jobs(
        static_cast<std::size_t>(std::thread::hardware_concurrency()),
        opt.threads_per_replication);
  }
  if (jobs == 0) jobs = 1;
  if (jobs > n) jobs = n;

  // Work loop shared by the inline (jobs==1) and threaded paths: claim the
  // next replication index, run it, store the row into its slot. Slots are
  // disjoint, so no synchronization beyond the claim counter is needed.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;
  const auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t rep = next.fetch_add(1, std::memory_order_relaxed);
      if (rep >= n) return;
      try {
        rows[rep] = fn(rep, replication_seed(opt.master_seed, rep));
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (!error) error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (jobs == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  if (error) std::rethrow_exception(error);

  // Aggregation is single-threaded and in replication order, so the
  // floating-point accumulation sequence — and therefore every output bit —
  // is independent of how the replications were scheduled above.
  std::vector<MetricSummary> metrics;
  for (const auto& [name, value] : rows[0]) {
    metrics.push_back(MetricSummary{name, {}});
  }
  for (std::size_t rep = 0; rep < n; ++rep) {
    const MetricRow& row = rows[rep];
    if (row.size() != metrics.size()) {
      throw std::runtime_error(
          "runner: replication " + std::to_string(rep) +
          " produced a different metric set than replication 0");
    }
    for (std::size_t m = 0; m < row.size(); ++m) {
      if (row[m].first != metrics[m].name) {
        throw std::runtime_error("runner: metric order mismatch at '" +
                                 row[m].first + "' in replication " +
                                 std::to_string(rep));
      }
      metrics[m].stats.add(row[m].second);
    }
  }
  return Aggregate(n, std::move(metrics));
}

Json mc_document(std::string_view experiment, const Options& opt,
                 const std::vector<SweepPoint>& points) {
  Json doc = Json::object();
  doc.set("schema", Json::string("sst-mc-v1"))
      .set("experiment", Json::string(experiment))
      .set("replications", Json::integer(opt.replications))
      .set("master_seed", Json::integer(opt.master_seed));
  Json arr = Json::array();
  for (const auto& p : points) {
    Json point = Json::object();
    point.set("params", p.params);
    point.set("metrics", p.aggregate.to_json());
    arr.push(std::move(point));
  }
  doc.set("points", std::move(arr));
  return doc;
}

bool write_json_file(const std::string& path, const Json& doc) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string text = doc.dump(2);
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace sst::runner
