// runner.hpp — parallel Monte-Carlo replication driver.
//
// Every figure in the paper is a Monte-Carlo estimate, and a single seed is
// an anecdote: the credible way to report a consistency metric is the mean
// over N independent replications with a confidence interval. The runner
// fans N replications of any experiment across a thread pool and aggregates
// their metrics into mean / 95%-CI summaries, under one hard guarantee:
//
//   The aggregate — down to the bytes of its JSON serialization — is
//   IDENTICAL for any --jobs value and any thread scheduling.
//
// Three design rules deliver that:
//   1. Replication i draws its seed from the master stream as
//      Rng(master_seed).fork("replication", i) — a pure function of
//      (master_seed, i), never of execution order. Forking is const on the
//      parent, so sibling streams cannot perturb each other (tested).
//   2. Workers store each replication's metric row into a slot indexed by i;
//      Welford accumulation happens on one thread afterwards, in index
//      order, so floating-point association is fixed.
//   3. The JSON writer is canonical (see json.hpp) and the jobs count is
//      deliberately absent from the document.
//
// The replication body is an arbitrary callable, so the same driver serves
// core::run_experiment, the arq hard-state baseline, fault-plan runs, and
// bespoke sstp::Session rigs (see adapters.hpp for the prebuilt bindings).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "runner/json.hpp"
#include "stats/welford.hpp"

namespace sst::runner {

/// Driver options. `jobs` is a pure execution detail: it MUST NOT change any
/// result, and it is excluded from the emitted JSON.
struct Options {
  std::size_t replications = 32;
  std::size_t jobs = 0;  // worker threads; 0 = hardware concurrency
  /// Threads each replication uses internally (the sharded engine's shard
  /// count, ExperimentConfig::shards). Consulted only when jobs == 0: the
  /// automatic jobs count becomes auto_jobs(hardware, this) so shards x
  /// jobs roughly fills — without hard-capping below — the host. Like
  /// jobs, a pure execution detail — never changes results.
  std::size_t threads_per_replication = 1;
  std::uint64_t master_seed = 1;
};

/// Automatic replication-pool width for a host with `hardware` threads when
/// each replication internally runs `threads_per_replication` threads:
/// ceil(hardware / threads_per_replication), min 1. Ceiling, not floor —
/// shard crews spend much of their life parked at epoch barriers, so
/// rounding the pool DOWN strands hardware (the old floor gave 8 cores /
/// 3-shard replications = 2 jobs, leaving a quarter of the machine idle and
/// — worse — gave 1 job whenever shards exceeded the core count, even
/// though the crew itself already oversubscribes then). Mild
/// oversubscription is the cheaper error; exact fitting is what explicit
/// --jobs is for.
[[nodiscard]] constexpr std::size_t auto_jobs(
    std::size_t hardware, std::size_t threads_per_replication) {
  const std::size_t per =
      threads_per_replication > 0 ? threads_per_replication : 1;
  const std::size_t hw = hardware > 0 ? hardware : 1;
  return (hw + per - 1) / per;
}

/// One replication's metrics: (name, value) pairs in a fixed order. Every
/// replication of an experiment must produce the same names in the same
/// order (they run the same extraction code, so this is automatic).
using MetricRow = std::vector<std::pair<std::string, double>>;

/// The replication body: given the replication index and its derived seed,
/// run one independent experiment and return its metrics. Called
/// concurrently from multiple threads — it must not touch shared mutable
/// state (each call builds its own Simulator, tables, channels, ...).
using ReplicationFn =
    std::function<MetricRow(std::size_t rep, std::uint64_t seed)>;

/// Seed for replication `rep`: fork of the master stream, a pure function of
/// (master_seed, rep). Exposed so tests and tools can reproduce any single
/// replication in isolation (`sstsim --seed=$(this value)`).
std::uint64_t replication_seed(std::uint64_t master_seed, std::size_t rep);

/// Mean/CI summary of one metric across replications.
struct MetricSummary {
  std::string name;
  stats::Welford stats;
};

/// Aggregated result of a replicated run.
class Aggregate {
 public:
  Aggregate() = default;
  Aggregate(std::size_t replications, std::vector<MetricSummary> metrics)
      : replications_(replications), metrics_(std::move(metrics)) {}

  [[nodiscard]] std::size_t replications() const { return replications_; }
  [[nodiscard]] const std::vector<MetricSummary>& metrics() const {
    return metrics_;
  }

  /// Summary for a named metric; nullptr if the metric does not exist.
  [[nodiscard]] const stats::Welford* find(std::string_view name) const;

  /// Mean / 95% CI half-width of a named metric (0 if absent).
  [[nodiscard]] double mean(std::string_view name) const;
  [[nodiscard]] double ci95(std::string_view name) const;

  /// Canonical JSON object: one member per metric, in metric order —
  /// {"<name>": {"mean":m,"ci95":h,"stddev":s,"min":a,"max":b,"n":N}, ...}
  [[nodiscard]] Json to_json() const;

 private:
  std::size_t replications_ = 0;
  std::vector<MetricSummary> metrics_;
};

/// Runs `opt.replications` independent replications of `fn` across
/// `opt.jobs` worker threads and aggregates the metric rows in replication
/// order. Exceptions thrown by any replication are rethrown on the calling
/// thread (remaining replications are abandoned).
Aggregate run_replications(const ReplicationFn& fn, const Options& opt);

/// One sweep point of a canonical Monte-Carlo document: the parameter
/// values that identify the point plus its aggregate.
struct SweepPoint {
  Json params;  // object, e.g. {"loss": 0.25, "hot_share": 0.4}
  Aggregate aggregate;
};

/// Builds the canonical document (schema "sst-mc-v1") every bench and
/// sstsim emit:
///
///   {
///     "schema": "sst-mc-v1",
///     "experiment": "<name>",
///     "replications": N,
///     "master_seed": S,
///     "points": [ {"params": {...}, "metrics": {...}}, ... ]
///   }
///
/// `jobs` is intentionally not part of the schema: the document must be
/// byte-identical however the work was scheduled.
Json mc_document(std::string_view experiment, const Options& opt,
                 const std::vector<SweepPoint>& points);

/// Writes `doc.dump(2)` to `path`. Returns false (and leaves no partial
/// file behind) on I/O failure.
bool write_json_file(const std::string& path, const Json& doc);

}  // namespace sst::runner
