#include "runner/adapters.hpp"

#include <cmath>

namespace sst::runner {

namespace {

double u64_metric(std::uint64_t v) { return static_cast<double>(v); }

}  // namespace

MetricRow metrics_of(const core::ExperimentResult& r) {
  return MetricRow{
      {"avg_consistency", r.avg_consistency},
      {"mean_latency_s", r.mean_latency},
      {"p50_latency_s", r.p50_latency},
      {"p95_latency_s", r.p95_latency},
      {"data_tx", u64_metric(r.data_tx)},
      {"hot_tx", u64_metric(r.hot_tx)},
      {"cold_tx", u64_metric(r.cold_tx)},
      {"repair_tx", u64_metric(r.repair_tx)},
      {"final_hot_depth", u64_metric(r.final_hot_depth)},
      {"redundant_fraction", r.redundant_fraction},
      {"nacks_sent", u64_metric(r.nacks_sent)},
      {"nacks_suppressed", u64_metric(r.nacks_suppressed)},
      {"observed_loss", r.observed_loss},
      {"delivered_fraction",
       r.versions_introduced > 0
           ? static_cast<double>(r.versions_received) /
                 static_cast<double>(r.versions_introduced)
           : 0.0},
      {"offered_data_kbps", r.offered_data_kbps},
      {"offered_fb_kbps", r.offered_fb_kbps},
  };
}

MetricRow metrics_of(const arq::HardStateResult& r) {
  return MetricRow{
      {"avg_consistency", r.avg_consistency},
      {"mean_latency_s", r.mean_latency},
      {"p95_latency_s", r.p95_latency},
      {"data_tx", u64_metric(r.data_tx)},
      {"retransmits", u64_metric(r.retransmits)},
      {"acks", u64_metric(r.acks)},
      {"connection_deaths", u64_metric(r.connection_deaths)},
      {"snapshot_ops", u64_metric(r.snapshot_ops)},
      {"offered_data_kbps", r.offered_data_kbps},
      {"offered_ack_kbps", r.offered_ack_kbps},
  };
}

MetricRow metrics_of(const fault::FaultRunResult& r) {
  MetricRow row = metrics_of(r.base);
  double recovered = 0.0, recovery_sum = 0.0;
  double deficit_sum = 0.0, repair_sum = 0.0;
  for (const auto& rec : r.recoveries) {
    if (rec.recovered()) {
      recovered += 1.0;
      recovery_sum += rec.recovery_time();
    }
    deficit_sum += rec.deficit;
    repair_sum += rec.repair_overhead;
  }
  double joins_caught_up = 0.0, catch_up_sum = 0.0;
  for (const double c : r.join_catch_up) {
    if (c >= 0.0) {
      joins_caught_up += 1.0;
      catch_up_sum += c;
    }
  }
  row.emplace_back("faults_injected",
                   static_cast<double>(r.recoveries.size()));
  row.emplace_back("faults_recovered", recovered);
  row.emplace_back("recovery_s_sum", recovery_sum);
  row.emplace_back("consistency_deficit_sum", deficit_sum);
  row.emplace_back("repair_overhead_sum", repair_sum);
  row.emplace_back("joins_caught_up", joins_caught_up);
  row.emplace_back("join_catch_up_s_sum", catch_up_sum);
  return row;
}

Aggregate run_replicated(const core::ExperimentConfig& config,
                         const Options& opt) {
  return run_replications(
      [&config](std::size_t, std::uint64_t seed) {
        core::ExperimentConfig cfg = config;
        cfg.seed = seed;
        return metrics_of(core::run_experiment(cfg));
      },
      opt);
}

Aggregate run_replicated(const arq::HardStateConfig& config,
                         const Options& opt) {
  return run_replications(
      [&config](std::size_t, std::uint64_t seed) {
        arq::HardStateConfig cfg = config;
        cfg.seed = seed;
        return metrics_of(arq::run_hard_state(cfg));
      },
      opt);
}

Aggregate run_replicated(const core::ExperimentConfig& config,
                         const fault::FaultPlan& plan,
                         const fault::InjectorConfig& inj,
                         const Options& opt) {
  return run_replications(
      [&config, &plan, &inj](std::size_t, std::uint64_t seed) {
        core::ExperimentConfig cfg = config;
        cfg.seed = seed;
        return metrics_of(
            fault::run_experiment_with_faults(cfg, plan, inj));
      },
      opt);
}

}  // namespace sst::runner
