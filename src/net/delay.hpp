// delay.hpp — propagation delay processes.
//
// Channels apply a per-packet delay. Fixed delay keeps packets ordered;
// jittered delay can reorder them, which lets tests confirm the protocols'
// ALF property (paper Section 3): no in-order delivery is assumed, so
// reordering must not change the consistency results.
#pragma once

#include <algorithm>

#include "sim/random.hpp"
#include "sim/units.hpp"

namespace sst::net {

/// Per-packet one-way latency process.
class DelayModel {
 public:
  virtual ~DelayModel() = default;

  /// One-way delay (seconds) applied to a packet sent at `now`.
  virtual sim::Duration delay(sim::SimTime now) = 0;
};

/// Constant delay; preserves ordering.
class FixedDelay final : public DelayModel {
 public:
  explicit FixedDelay(sim::Duration d) : d_(d) {}
  sim::Duration delay(sim::SimTime) override { return d_; }

 private:
  sim::Duration d_;
};

/// Base delay plus uniform jitter in [0, jitter); can reorder packets.
class UniformJitterDelay final : public DelayModel {
 public:
  UniformJitterDelay(sim::Duration base, sim::Duration jitter, sim::Rng rng)
      : base_(base), jitter_(std::max(jitter, 0.0)), rng_(rng) {}

  sim::Duration delay(sim::SimTime) override {
    return base_ + rng_.uniform() * jitter_;
  }

 private:
  sim::Duration base_;
  sim::Duration jitter_;
  sim::Rng rng_;
};

/// Exponentially distributed delay above a floor (a crude WAN model).
class ExponentialDelay final : public DelayModel {
 public:
  ExponentialDelay(sim::Duration floor, sim::Duration mean_extra, sim::Rng rng)
      : floor_(floor), mean_extra_(mean_extra), rng_(rng) {}

  sim::Duration delay(sim::SimTime) override {
    return floor_ + rng_.exponential(mean_extra_);
  }

 private:
  sim::Duration floor_;
  sim::Duration mean_extra_;
  sim::Rng rng_;
};

}  // namespace sst::net
