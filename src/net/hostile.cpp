#include "net/hostile.hpp"

#include <cstdio>
#include <stdexcept>

namespace sst::net {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t next = s.find(sep, pos);
    if (next == std::string::npos) {
      out.push_back(s.substr(pos));
      break;
    }
    out.push_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
  return out;
}

double parse_num(const std::string& s, const char* what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("hostile spec: bad ") + what +
                                " value '" + s + "'");
  }
}

}  // namespace

HostileConfig HostileConfig::parse(const std::string& spec) {
  HostileConfig cfg;
  for (const std::string& field : split(spec, ';')) {
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("hostile spec: field '" + field +
                                  "' has no '='");
    }
    const std::string key = field.substr(0, eq);
    const std::string val = field.substr(eq + 1);
    if (key == "reorder") {
      const auto parts = split(val, ':');
      if (parts.size() != 2) {
        throw std::invalid_argument(
            "hostile spec: reorder wants PROB:MAX_EXTRA");
      }
      cfg.reorder.prob = parse_num(parts[0], "reorder prob");
      cfg.reorder.max_extra = parse_num(parts[1], "reorder max_extra");
    } else if (key == "dup") {
      const auto parts = split(val, ':');
      if (parts.empty() || parts.size() > 4) {
        throw std::invalid_argument(
            "hostile spec: dup wants PROB[:CONTINUE[:MAX[:SPREAD]]]");
      }
      cfg.duplicate.prob = parse_num(parts[0], "dup prob");
      if (parts.size() > 1) {
        cfg.duplicate.burst_continue = parse_num(parts[1], "dup continue");
      }
      if (parts.size() > 2) {
        cfg.duplicate.max_copies =
            static_cast<std::size_t>(parse_num(parts[2], "dup max copies"));
      }
      if (parts.size() > 3) {
        cfg.duplicate.spread = parse_num(parts[3], "dup spread");
      }
    } else if (key == "partition") {
      for (const std::string& win : split(val, ',')) {
        const auto parts = split(win, ':');
        if (parts.size() != 2) {
          throw std::invalid_argument(
              "hostile spec: partition wants START:END[,START:END...]");
        }
        cfg.partition.windows.emplace_back(
            parse_num(parts[0], "partition start"),
            parse_num(parts[1], "partition end"));
      }
    } else {
      throw std::invalid_argument("hostile spec: unknown field '" + key +
                                  "'");
    }
  }
  return cfg;
}

std::string HostileConfig::describe() const {
  if (!active()) return "fifo";
  std::string out;
  char buf[96];
  if (reorder.active()) {
    std::snprintf(buf, sizeof buf, "reorder(p=%g,d=%g)", reorder.prob,
                  reorder.max_extra);
    out += buf;
  }
  if (duplicate.active()) {
    if (!out.empty()) out += ' ';
    std::snprintf(buf, sizeof buf, "dup(p=%g,cont=%g,max=%zu,spread=%g)",
                  duplicate.prob, duplicate.burst_continue,
                  duplicate.max_copies, duplicate.spread);
    out += buf;
  }
  if (partition.active()) {
    if (!out.empty()) out += ' ';
    out += "partition(";
    for (std::size_t i = 0; i < partition.windows.size(); ++i) {
      if (i > 0) out += ',';
      std::snprintf(buf, sizeof buf, "%g:%g", partition.windows[i].first,
                    partition.windows[i].second);
      out += buf;
    }
    out += ')';
  }
  return out;
}

}  // namespace sst::net
