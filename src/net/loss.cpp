#include "net/loss.hpp"

#include <algorithm>

namespace sst::net {

GilbertElliottLoss GilbertElliottLoss::with_mean(double mean,
                                                 double mean_burst_len,
                                                 sim::Rng rng) {
  // With loss_good = 0 and loss_bad = 1, the long-run loss rate equals the
  // stationary Bad probability pi = p_gb / (p_gb + p_bg), and the mean burst
  // length is 1 / p_bg. Solve for the transition probabilities.
  mean = std::clamp(mean, 0.0, 0.999);
  mean_burst_len = std::max(mean_burst_len, 1.0);
  const double p_bg = 1.0 / mean_burst_len;
  // pi = p_gb / (p_gb + p_bg)  =>  p_gb = pi * p_bg / (1 - pi)
  const double p_gb = mean >= 1.0 ? 1.0 : mean * p_bg / (1.0 - mean);
  return GilbertElliottLoss(std::min(p_gb, 1.0), p_bg, 0.0, 1.0, rng);
}

}  // namespace sst::net
