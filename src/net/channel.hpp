// channel.hpp — lossy, delayed message channels.
//
// A Channel<M> carries messages of protocol type M from one sender to one or
// more receivers, applying a LossModel and a DelayModel per receiver. The
// channel does not rate-limit — bandwidth budgeting is the *sender's* job in
// the soft state model (the sender's transmission scheduler is the "server"
// of the paper's queueing model). For shared-bottleneck topologies, compose
// with Link<M> (link.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "check/annotate.hpp"
#include "check/check.hpp"
#include "net/delay.hpp"
#include "net/loss.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "sim/units.hpp"

namespace sst::net {

/// Statistics a channel accumulates over its lifetime.
struct ChannelStats {
  std::uint64_t sent = 0;       // messages offered to the channel
  std::uint64_t delivered = 0;  // per-receiver deliveries
  std::uint64_t dropped = 0;    // per-receiver drops
  double bytes_sent = 0;        // offered load in bytes

  [[nodiscard]] double observed_loss_rate() const {
    const std::uint64_t total = delivered + dropped;
    return total == 0 ? 0.0
                      : static_cast<double>(dropped) /
                            static_cast<double>(total);
  }
};

/// Point-to-multipoint lossy channel. Each receiver has its own independent
/// loss and delay process (heterogeneous receivers, as in multicast
/// sessions); loss is applied independently per receiver, matching the
/// paper's "lost by one or more subscribers" channel.
template <class M>
class Channel {
 public:
  using Handler = std::function<void(const M&)>;

  explicit Channel(sim::Simulator& sim, sim::Tracer tracer = {})
      : sim_(&sim), tracer_(std::move(tracer)) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Adds a receiver endpoint (allowed mid-run: a late joiner). Returns its
  /// index (used in per-receiver statistics). `loss` and `delay` must not be
  /// null.
  std::size_t add_receiver(std::unique_ptr<LossModel> loss,
                           std::unique_ptr<DelayModel> delay,
                           Handler handler) {
    // Endpoints live on the heap: adding a receiver mid-run must not move
    // existing endpoints, whose handlers in-flight deliveries point at.
    auto ep = std::make_unique<Endpoint>();
    ep->loss = std::move(loss);
    ep->delay = std::move(delay);
    ep->handler = std::move(handler);
    receivers_.push_back(std::move(ep));
    return receivers_.size() - 1;
  }

  /// Delivery callback for a receiver that lives on ANOTHER shard's event
  /// queue: invoked at SEND time with the already-drawn arrival time. The
  /// sharded engine needs the arrival time eagerly — the receiving side's
  /// epoch has not run yet when the send happens — so a remote endpoint
  /// replaces the local schedule-after-delay step with this callback.
  using RemoteHandler = std::function<void(const M&, sim::SimTime arrival)>;

  /// Adds a cross-shard receiver endpoint. Loss and delay are drawn exactly
  /// as for a local endpoint (same models, same stream order, same
  /// statistics), but instead of scheduling delivery on this simulator,
  /// `remote` is called immediately with the message and its arrival time
  /// now + delay. Used by the sharded engine's worker→root feedback path.
  std::size_t add_remote_receiver(std::unique_ptr<LossModel> loss,
                                  std::unique_ptr<DelayModel> delay,
                                  RemoteHandler remote) {
    auto ep = std::make_unique<Endpoint>();
    ep->loss = std::move(loss);
    ep->delay = std::move(delay);
    ep->remote = std::move(remote);
    receivers_.push_back(std::move(ep));
    return receivers_.size() - 1;
  }

  /// Transmits `msg` of wire size `size` bytes toward every enabled
  /// receiver. Each receiver independently loses or receives the message
  /// after its delay. All in-flight deliveries share ONE immutable copy of
  /// the message — per-receiver copies made multi-receiver sends O(R) in
  /// payload size — and the copy itself comes from a small recycled pool, so
  /// steady-state sends allocate nothing.
  void send(const M& msg, sim::Bytes size) {
    // The caller is the thread driving sim_ by construction (senders and
    // links schedule onto the channel's own simulator) — the owning-engine
    // serial role that guards the recycled payload pool.
    check::engine_role.assert_held();
    ++stats_.sent;
    stats_.bytes_sent += size;
    std::shared_ptr<const M> payload;
    for (auto& ep : receivers_) {
      if (!ep->enabled) continue;
      if (ep->loss->should_drop(sim_->now())) {
        ++ep->stats.dropped;
        ++stats_.dropped;
        if (tracer_.enabled()) tracer_.emit(sim_->now(), "drop");
        continue;
      }
      ++ep->stats.delivered;
      ++stats_.delivered;
      const sim::Duration d = ep->delay->delay(sim_->now());
      if (ep->remote) {
        // Cross-shard endpoint: hand over (message, arrival time) now; the
        // receiving shard schedules the delivery on its own queue.
        ep->remote(msg, sim_->now() + d);
        if (tracer_.enabled()) tracer_.emit(sim_->now(), "tx");
        continue;
      }
      if (!payload) payload = acquire_payload(msg);
      // The endpoint owns its handler; endpoints are heap-allocated and
      // never destroyed mid-run (see add_receiver), so capturing the
      // endpoint pointer BY VALUE keeps the delivery valid even if the
      // receivers_ vector reallocates while this message is in flight.
      Endpoint* const endpoint = ep.get();
      sim_->after(d, [endpoint, payload] { endpoint->handler(*payload); });
      if (tracer_.enabled()) tracer_.emit(sim_->now(), "tx");
    }
#if SST_CHECK_ENABLED
    if (check::due(audit_tick_, 4096)) {
      check::Violations v;
      check_invariants(v);
      check::report("Channel", v);
    }
#endif
  }

  /// Aggregate statistics across receivers.
  [[nodiscard]] const ChannelStats& stats() const { return stats_; }

  /// Per-receiver statistics.
  [[nodiscard]] const ChannelStats& stats(std::size_t receiver) const {
    return receivers_.at(receiver)->stats;
  }

  [[nodiscard]] std::size_t receiver_count() const {
    return receivers_.size();
  }

  /// Disables (or re-enables) delivery to a receiver endpoint. A disabled
  /// endpoint is skipped entirely — no delivery, no loss draw, no statistics
  /// — modelling a receiver that has left the session (distinct from a
  /// partition, which drops and counts packets).
  void set_receiver_enabled(std::size_t receiver, bool enabled) {
    receivers_.at(receiver)->enabled = enabled;
  }

  [[nodiscard]] bool receiver_enabled(std::size_t receiver) const {
    return receivers_.at(receiver)->enabled;
  }

  /// Appends every violated invariant to `out` (sst::check): the payload
  /// pool stays within its cap with no null or released-while-referenced
  /// slots (each slot's use_count of at least 1 is the pool's own
  /// reference; in-flight deliveries only ever add to it), endpoints keep
  /// their models, and the aggregate counters equal the per-endpoint sums.
  void check_invariants(check::Violations& out) const SST_REQUIRES_ENGINE {
    if (pool_.size() > kPayloadPoolCap) {
      out.push_back("payload pool size " + std::to_string(pool_.size()) +
                    " exceeds cap " + std::to_string(kPayloadPoolCap));
    }
    if (!pool_.empty() && pool_cursor_ >= pool_.size()) {
      out.push_back("pool cursor " + std::to_string(pool_cursor_) +
                    " out of range");
    }
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      if (pool_[i] == nullptr) {
        out.push_back("pool slot " + std::to_string(i) + " is null");
      } else if (pool_[i].use_count() < 1) {
        out.push_back("pool slot " + std::to_string(i) +
                      " lost its pool reference");
      }
    }
    ChannelStats sum;
    for (std::size_t i = 0; i < receivers_.size(); ++i) {
      const Endpoint& ep = *receivers_[i];
      if (ep.loss == nullptr || ep.delay == nullptr) {
        out.push_back("endpoint " + std::to_string(i) +
                      " missing its loss/delay model");
      }
      sum.delivered += ep.stats.delivered;
      sum.dropped += ep.stats.dropped;
    }
    if (sum.delivered != stats_.delivered || sum.dropped != stats_.dropped) {
      out.push_back("aggregate stats diverge from per-endpoint sums");
    }
  }

 private:
  friend struct check::Corrupter;
  struct Endpoint {
    std::unique_ptr<LossModel> loss;
    std::unique_ptr<DelayModel> delay;
    Handler handler;
    RemoteHandler remote;  // set instead of handler for cross-shard endpoints
    ChannelStats stats;
    bool enabled = true;
  };

  /// Reuses a pooled payload whose in-flight deliveries have all completed
  /// (the pool holds the only remaining reference); allocates a fresh slot
  /// while the pool is below its cap, and falls back to a one-shot
  /// allocation under exceptional depth (long-delay links with thousands of
  /// messages in flight). Pure memory reuse: delivery contents and order are
  /// unaffected.
  std::shared_ptr<const M> acquire_payload(const M& msg) SST_REQUIRES_ENGINE {
    for (std::size_t probe = 0; probe < pool_.size(); ++probe) {
      pool_cursor_ = (pool_cursor_ + 1) % pool_.size();
      auto& slot = pool_[pool_cursor_];
      if (slot.use_count() == 1) {
        *slot = msg;
        return std::const_pointer_cast<const M>(slot);
      }
    }
    if (pool_.size() < kPayloadPoolCap) {
      pool_.push_back(std::make_shared<M>(msg));
      return std::const_pointer_cast<const M>(pool_.back());
    }
    return std::make_shared<const M>(msg);
  }

  static constexpr std::size_t kPayloadPoolCap = 64;

  sim::Simulator* sim_;
  sim::Tracer tracer_;
  std::vector<std::unique_ptr<Endpoint>> receivers_;
  ChannelStats stats_;
  // The recycled payload pool is single-threaded-by-design hot-path state:
  // only the thread driving sim_ (the owning-engine serial role) may touch
  // it — in the sharded engine that is the owning shard's worker.
  std::vector<std::shared_ptr<M>> pool_ SST_ENGINE_SERIAL;
  std::size_t pool_cursor_ SST_ENGINE_SERIAL = 0;
  std::uint64_t audit_tick_ SST_ENGINE_SERIAL = 0;  // SST_CHECK cadence
};

}  // namespace sst::net
