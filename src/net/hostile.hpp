// hostile.hpp — hostile-channel models: reordering, duplication, partitions.
//
// The paper's announce/listen argument is usually tested over FIFO,
// duplicate-free, merely-lossy channels — the friendliest network there is.
// The self-stabilizing-communication literature makes convergence over
// non-FIFO unreliable channels the correctness bar instead. This family
// supplies that adversary as composable send-side stages a harness can put
// in front of any net::Channel:
//
//   ReorderChannel    — with probability `prob`, holds a message back by a
//                       bounded uniform extra delay, letting later traffic
//                       overtake it (bounded-displacement reordering; bound
//                       or probability zero degenerates to a synchronous
//                       pass-through, byte- and event-identical to FIFO).
//   DuplicateChannel  — i.i.d. per-message duplication, optionally bursty
//                       (geometric extra-copy count); copies re-enter the
//                       pipeline downstream, so each one faces independent
//                       loss — a duplicate can survive its dropped original.
//   PartitionChannel  — scripted half-open [start, end) outage windows
//                       (typically extracted from an sst::fault plan via
//                       fault::partition_windows) plus a live set_down
//                       toggle, composing with SwitchableLoss faults on the
//                       channel behind it.
//   HostileChannel    — the three in a fixed pipeline (partition, then
//                       duplication, then reordering) behind one config.
//
// Every stage draws only from its own forked sim::Rng stream (fully
// deterministic, and stages never perturb each other's draws) and carries a
// check_invariants() validator like every other pooled structure.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "check/check.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace sst::net {

/// Bounded random reordering: each message is independently held back with
/// probability `prob` by an extra delay drawn uniform in [0, max_extra).
/// Messages not held pass through synchronously, so displacement is bounded
/// by whatever the surrounding traffic does within max_extra seconds.
struct ReorderConfig {
  double prob = 0.0;            // P(message is held back)
  sim::Duration max_extra = 0.0;  // upper bound on the extra delay

  [[nodiscard]] bool active() const { return prob > 0.0 && max_extra > 0.0; }
};

/// Duplication: with probability `prob` a message is copied. The copy count
/// is 1 + Geometric(burst_continue), capped at max_copies (burst_continue =
/// 0 gives classic i.i.d. single duplication). Copy i is re-injected after a
/// deterministic i * spread seconds — back-to-back for spread = 0 — so
/// duplicates trail their original and can land out of order behind newer
/// traffic.
struct DuplicateConfig {
  double prob = 0.0;            // P(message gets duplicated at all)
  double burst_continue = 0.0;  // P(one more copy | a copy was just made)
  std::size_t max_copies = 4;   // cap on extra copies per message
  sim::Duration spread = 0.0;   // copy i re-injected after i * spread

  [[nodiscard]] bool active() const { return prob > 0.0; }
};

/// Scripted burst partitions: every message offered during a half-open
/// [start, end) window is dropped. Windows must be sorted and
/// non-overlapping; a zero-length window [t, t) drops nothing. A live
/// set_down toggle composes with the script for injector-driven runs.
struct PartitionConfig {
  using Window = std::pair<sim::SimTime, sim::SimTime>;
  std::vector<Window> windows;

  [[nodiscard]] bool active() const { return !windows.empty(); }
};

/// One hostile pipeline's full parameterization. Default-constructed =
/// transparent (nothing enabled), which every harness treats as "do not
/// build the pipeline at all", keeping existing FIFO configurations
/// event-for-event identical.
struct HostileConfig {
  ReorderConfig reorder;
  DuplicateConfig duplicate;
  PartitionConfig partition;

  [[nodiscard]] bool active() const {
    return reorder.active() || duplicate.active() || partition.active();
  }

  /// Parses a ';'-separated spec (the sstsim --hostile flag):
  ///   reorder=PROB:MAX_EXTRA
  ///   dup=PROB[:CONTINUE[:MAX_COPIES[:SPREAD]]]
  ///   partition=START:END[,START:END...]
  /// e.g. "reorder=0.3:0.2;dup=0.1:0.5:3:0.05;partition=600:660".
  /// Throws std::invalid_argument on malformed input.
  static HostileConfig parse(const std::string& spec);

  /// Human-readable one-liner ("reorder(p=0.3,d=0.2) dup(p=0.1)").
  [[nodiscard]] std::string describe() const;
};

/// Counters a hostile stage accumulates.
struct HostileStats {
  std::uint64_t sent = 0;        // messages offered to the stage
  std::uint64_t held = 0;        // reorder: messages delayed
  std::uint64_t released = 0;    // reorder: delayed messages delivered
  std::uint64_t duplicated = 0;  // duplicate: extra copies scheduled
  std::uint64_t dup_delivered = 0;  // duplicate: extra copies delivered
  std::uint64_t partition_drops = 0;
};

namespace detail {

/// Shared invariants of the probabilistic stage configs.
inline void check_probability(const char* what, double p,
                              check::Violations& out) {
  if (!(p >= 0.0 && p <= 1.0)) {
    out.push_back(std::string(what) + " probability " + std::to_string(p) +
                  " outside [0,1]");
  }
}

}  // namespace detail

/// Bounded-displacement reordering stage. See ReorderConfig.
template <class M>
class ReorderChannel {
 public:
  using Sink = std::function<void(const M&, sim::Bytes)>;

  ReorderChannel(sim::Simulator& sim, ReorderConfig config, sim::Rng rng,
                 Sink sink)
      : sim_(&sim), config_(config), rng_(rng), sink_(std::move(sink)) {}

  ReorderChannel(const ReorderChannel&) = delete;
  ReorderChannel& operator=(const ReorderChannel&) = delete;

  void send(const M& msg, sim::Bytes size) {
    ++stats_.sent;
    // The Bernoulli draw happens whenever the stage is active, so the
    // stream's position never depends on downstream behaviour.
    if (!config_.active() || !rng_.bernoulli(config_.prob)) {
      sink_(msg, size);  // synchronous: bound 0 degenerates to FIFO exactly
      return;
    }
    ++stats_.held;
    ++in_flight_;
    const sim::Duration extra = rng_.uniform() * config_.max_extra;
    sim_->after(extra, [this, msg, size] {
      --in_flight_;
      ++stats_.released;
      sink_(msg, size);
    });
  }

  [[nodiscard]] const HostileStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t in_flight() const { return in_flight_; }

  /// Appends every violated invariant to `out`: counter consistency
  /// (held = released + in-flight, and nothing held that was never sent)
  /// and config sanity.
  void check_invariants(check::Violations& out) const {
    detail::check_probability("reorder", config_.prob, out);
    if (config_.max_extra < 0.0) {
      out.push_back("reorder max_extra is negative");
    }
    if (stats_.held != stats_.released + in_flight_) {
      out.push_back("reorder held " + std::to_string(stats_.held) +
                    " != released " + std::to_string(stats_.released) +
                    " + in-flight " + std::to_string(in_flight_));
    }
    if (stats_.held > stats_.sent) {
      out.push_back("reorder held more messages than were sent");
    }
  }

 private:
  sim::Simulator* sim_;
  ReorderConfig config_;
  sim::Rng rng_;
  Sink sink_;
  HostileStats stats_;
  std::size_t in_flight_ = 0;
};

/// Duplication stage. See DuplicateConfig. The original always passes
/// through synchronously; extra copies re-enter downstream later, so when a
/// lossy channel sits behind this stage every copy takes independent loss
/// draws — the duplicate-of-a-dropped-original case arises naturally.
template <class M>
class DuplicateChannel {
 public:
  using Sink = std::function<void(const M&, sim::Bytes)>;

  DuplicateChannel(sim::Simulator& sim, DuplicateConfig config, sim::Rng rng,
                   Sink sink)
      : sim_(&sim), config_(config), rng_(rng), sink_(std::move(sink)) {}

  DuplicateChannel(const DuplicateChannel&) = delete;
  DuplicateChannel& operator=(const DuplicateChannel&) = delete;

  void send(const M& msg, sim::Bytes size) {
    ++stats_.sent;
    sink_(msg, size);
    if (!config_.active() || !rng_.bernoulli(config_.prob)) return;
    std::size_t copies = 1;
    while (copies < config_.max_copies && config_.burst_continue > 0.0 &&
           rng_.bernoulli(config_.burst_continue)) {
      ++copies;
    }
    for (std::size_t i = 1; i <= copies; ++i) {
      ++stats_.duplicated;
      ++in_flight_;
      const sim::Duration lag = config_.spread * static_cast<double>(i);
      sim_->after(lag, [this, msg, size] {
        --in_flight_;
        ++stats_.dup_delivered;
        sink_(msg, size);
      });
    }
  }

  [[nodiscard]] const HostileStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t in_flight() const { return in_flight_; }

  /// Appends every violated invariant to `out`: copy accounting
  /// (scheduled = delivered + in-flight) and config sanity.
  void check_invariants(check::Violations& out) const {
    detail::check_probability("duplicate", config_.prob, out);
    detail::check_probability("duplicate burst", config_.burst_continue, out);
    if (config_.spread < 0.0) out.push_back("duplicate spread is negative");
    if (config_.max_copies == 0) {
      out.push_back("duplicate max_copies is zero (stage can never fire)");
    }
    if (stats_.duplicated != stats_.dup_delivered + in_flight_) {
      out.push_back("duplicate copies " + std::to_string(stats_.duplicated) +
                    " != delivered " + std::to_string(stats_.dup_delivered) +
                    " + in-flight " + std::to_string(in_flight_));
    }
  }

 private:
  sim::Simulator* sim_;
  DuplicateConfig config_;
  sim::Rng rng_;
  Sink sink_;
  HostileStats stats_;
  std::size_t in_flight_ = 0;
};

/// Scripted-partition stage. See PartitionConfig. Draws no randomness at
/// all; the window cursor advances monotonically with simulation time (the
/// same scheme as OutageLoss).
template <class M>
class PartitionChannel {
 public:
  using Sink = std::function<void(const M&, sim::Bytes)>;

  PartitionChannel(sim::Simulator& sim, PartitionConfig config, Sink sink)
      : sim_(&sim), config_(std::move(config)), sink_(std::move(sink)) {}

  PartitionChannel(const PartitionChannel&) = delete;
  PartitionChannel& operator=(const PartitionChannel&) = delete;

  void send(const M& msg, sim::Bytes size) {
    ++stats_.sent;
    if (down_now()) {
      ++stats_.partition_drops;
      return;
    }
    sink_(msg, size);
  }

  /// Live toggle (fault-injector hook); composes with the scripted windows.
  void set_down(bool down) { down_ = down; }
  [[nodiscard]] bool down() const { return down_; }

  [[nodiscard]] const HostileStats& stats() const { return stats_; }

  /// Appends every violated invariant to `out`: windows sorted,
  /// non-overlapping, non-negative length; cursor in range; drop accounting.
  void check_invariants(check::Violations& out) const {
    for (std::size_t i = 0; i < config_.windows.size(); ++i) {
      const auto& w = config_.windows[i];
      if (w.second < w.first) {
        out.push_back("partition window " + std::to_string(i) +
                      " ends before it starts");
      }
      if (i > 0 && w.first < config_.windows[i - 1].second) {
        out.push_back("partition windows " + std::to_string(i - 1) + " and " +
                      std::to_string(i) + " overlap or are unsorted");
      }
    }
    if (next_ > config_.windows.size()) {
      out.push_back("partition window cursor out of range");
    }
    if (stats_.partition_drops > stats_.sent) {
      out.push_back("partition dropped more messages than were sent");
    }
  }

 private:
  [[nodiscard]] bool down_now() {
    if (down_) return true;
    const sim::SimTime now = sim_->now();
    while (next_ < config_.windows.size() &&
           now >= config_.windows[next_].second) {
      ++next_;
    }
    return next_ < config_.windows.size() &&
           now >= config_.windows[next_].first &&
           now < config_.windows[next_].second;
  }

  sim::Simulator* sim_;
  PartitionConfig config_;
  Sink sink_;
  HostileStats stats_;
  std::size_t next_ = 0;  // first window not yet ended
  bool down_ = false;
};

/// The full hostile pipeline: partition (a severed path transports
/// nothing), then duplication, then reordering — so every duplicate copy is
/// itself independently reordered, the worst interleaving the three stages
/// can jointly produce. One forked RNG seeds the probabilistic stages.
template <class M>
class HostileChannel {
 public:
  using Sink = std::function<void(const M&, sim::Bytes)>;

  HostileChannel(sim::Simulator& sim, const HostileConfig& config,
                 const sim::Rng& rng, Sink sink)
      : reorder_(sim, config.reorder, rng.fork("reorder"), std::move(sink)),
        duplicate_(sim, config.duplicate, rng.fork("dup"),
                   [this](const M& m, sim::Bytes s) { reorder_.send(m, s); }),
        partition_(sim, config.partition, [this](const M& m, sim::Bytes s) {
          duplicate_.send(m, s);
        }) {}

  HostileChannel(const HostileChannel&) = delete;
  HostileChannel& operator=(const HostileChannel&) = delete;

  void send(const M& msg, sim::Bytes size) {
    partition_.send(msg, size);
#if SST_CHECK_ENABLED
    if (check::due(audit_tick_, 4096)) {
      check::Violations v;
      check_invariants(v);
      check::report("HostileChannel", v);
    }
#endif
  }

  /// Live partition toggle (fault-injector hook).
  void set_down(bool down) { partition_.set_down(down); }

  [[nodiscard]] const HostileStats& reorder_stats() const {
    return reorder_.stats();
  }
  [[nodiscard]] const HostileStats& duplicate_stats() const {
    return duplicate_.stats();
  }
  [[nodiscard]] const HostileStats& partition_stats() const {
    return partition_.stats();
  }

  /// Appends every violated invariant of all three stages to `out`.
  void check_invariants(check::Violations& out) const {
    reorder_.check_invariants(out);
    duplicate_.check_invariants(out);
    partition_.check_invariants(out);
  }

 private:
  // Declaration order is construction order: each earlier member is the
  // sink of the later one, captured by `this` (hence non-movable).
  ReorderChannel<M> reorder_;
  DuplicateChannel<M> duplicate_;
  PartitionChannel<M> partition_;
  std::uint64_t audit_tick_ = 0;  // SST_CHECK cadence counter
};

}  // namespace sst::net
