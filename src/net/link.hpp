// link.hpp — rate-limited FIFO link with a drop-tail queue.
//
// Models a transmission line of capacity C bits/sec: messages queue while the
// line is busy, each occupies the line for size/C seconds, and arrivals that
// find the queue full are dropped at the tail. This is the "single server
// queue" of the paper's Section 3 model when placed in front of a lossy
// channel, and the shared bottleneck for multi-flow SSTP topologies.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <utility>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "sim/trace.hpp"
#include "sim/units.hpp"

namespace sst::net {

/// Counters accumulated by a link.
struct LinkStats {
  std::uint64_t enqueued = 0;
  std::uint64_t served = 0;
  std::uint64_t tail_dropped = 0;
  double busy_time = 0.0;  // total seconds the server was transmitting

  [[nodiscard]] double utilization(sim::SimTime elapsed) const {
    return elapsed > 0 ? busy_time / elapsed : 0.0;
  }
};

/// FIFO rate-limited link carrying messages of type M.
template <class M>
class Link {
 public:
  using Handler = std::function<void(const M&, sim::Bytes)>;

  /// `rate` is the service capacity in bits/sec; `queue_limit` bounds the
  /// number of queued (not in service) messages, default unbounded as in the
  /// paper ("sufficient buffer space to hold all arriving announcements").
  Link(sim::Simulator& sim, sim::Rate rate, Handler sink,
       std::size_t queue_limit = std::numeric_limits<std::size_t>::max(),
       sim::Tracer tracer = {})
      : sim_(&sim),
        rate_(rate),
        queue_limit_(queue_limit),
        sink_(std::move(sink)),
        service_timer_(sim),
        tracer_(std::move(tracer)) {}

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Offers a message to the link. Returns false on tail drop.
  bool send(M msg, sim::Bytes size) {
    // The head of queue_ is the message in service; the limit applies to
    // waiting messages only.
    const std::size_t waiting = queue_.size() - (busy_ ? 1 : 0);
    if (waiting >= queue_limit_) {
      ++stats_.tail_dropped;
      if (tracer_.enabled()) tracer_.emit(sim_->now(), "taildrop");
      return false;
    }
    queue_.push_back(Item{std::move(msg), size});
    ++stats_.enqueued;
    if (!busy_) start_service();
    return true;
  }

  /// Changes the link capacity; takes effect for the next message that
  /// begins service (the in-flight message keeps its departure time).
  void set_rate(sim::Rate rate) { rate_ = rate; }

  [[nodiscard]] sim::Rate rate() const { return rate_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] const LinkStats& stats() const { return stats_; }

 private:
  struct Item {
    M msg;
    sim::Bytes size;
  };

  void start_service() {
    busy_ = true;
    const Item& front = queue_.front();
    const sim::Duration t = sim::transmission_time(front.size, rate_);
    stats_.busy_time += t;
    service_timer_.arm(t, [this] { complete_service(); });
  }

  void complete_service() {
    Item item = std::move(queue_.front());
    queue_.pop_front();
    ++stats_.served;
    busy_ = false;
    if (!queue_.empty()) start_service();
    sink_(item.msg, item.size);
  }

  sim::Simulator* sim_;
  sim::Rate rate_;
  std::size_t queue_limit_;
  Handler sink_;
  std::deque<Item> queue_;
  bool busy_ = false;
  LinkStats stats_;
  sim::Timer service_timer_;
  sim::Tracer tracer_;
};

}  // namespace sst::net
