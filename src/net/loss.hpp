// loss.hpp — packet loss processes.
//
// The paper's consistency metric is "insensitive to the exact pattern of
// losses ... only affected by the mean of the packet loss process" (Section
// 3). We provide Bernoulli loss (the analysis model) plus bursty
// Gilbert-Elliott, deterministic-period, and trace-driven processes so that
// claim is itself testable (tests/bench verify consistency depends only on
// the mean rate).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/random.hpp"
#include "sim/units.hpp"

namespace sst::net {

/// A loss process decides, per transmission, whether the packet is dropped.
class LossModel {
 public:
  virtual ~LossModel() = default;

  /// Returns true if the packet transmitted at `now` is lost.
  virtual bool should_drop(sim::SimTime now) = 0;

  /// Long-run average loss probability of this process (for reporting and
  /// for the SSTP allocator's ground-truth comparisons).
  [[nodiscard]] virtual double mean_rate() const = 0;
};

/// Independent (i.i.d.) loss with fixed probability — the paper's p_c.
class BernoulliLoss final : public LossModel {
 public:
  BernoulliLoss(double p, sim::Rng rng) : p_(p), rng_(rng) {}

  bool should_drop(sim::SimTime) override { return rng_.bernoulli(p_); }
  [[nodiscard]] double mean_rate() const override { return p_; }

 private:
  double p_;
  sim::Rng rng_;
};

/// Two-state Markov (Gilbert-Elliott) bursty loss.
///
/// In the Good state packets drop with probability `loss_good`, in Bad with
/// `loss_bad`; the chain moves Good->Bad with `p_gb` and Bad->Good with
/// `p_bg` per transmission.
class GilbertElliottLoss final : public LossModel {
 public:
  GilbertElliottLoss(double p_gb, double p_bg, double loss_good,
                     double loss_bad, sim::Rng rng)
      : p_gb_(p_gb),
        p_bg_(p_bg),
        loss_good_(loss_good),
        loss_bad_(loss_bad),
        rng_(rng) {}

  /// Constructs a bursty process with a target mean loss rate and mean burst
  /// length (in packets). The stationary Bad-state probability is chosen so
  /// the long-run rate equals `mean` with loss_good=0, loss_bad=1.
  static GilbertElliottLoss with_mean(double mean, double mean_burst_len,
                                      sim::Rng rng);

  bool should_drop(sim::SimTime) override {
    if (bad_) {
      if (rng_.bernoulli(p_bg_)) bad_ = false;
    } else {
      if (rng_.bernoulli(p_gb_)) bad_ = true;
    }
    return rng_.bernoulli(bad_ ? loss_bad_ : loss_good_);
  }

  [[nodiscard]] double mean_rate() const override {
    const double pi_bad =
        (p_gb_ + p_bg_) > 0 ? p_gb_ / (p_gb_ + p_bg_) : 0.0;
    return pi_bad * loss_bad_ + (1.0 - pi_bad) * loss_good_;
  }

 private:
  double p_gb_, p_bg_, loss_good_, loss_bad_;
  bool bad_ = false;
  sim::Rng rng_;
};

/// Drops every k-th packet exactly (deterministic rate 1/k). Useful for
/// reproducible unit tests of recovery logic.
class PeriodicLoss final : public LossModel {
 public:
  explicit PeriodicLoss(std::uint64_t every_kth) : k_(every_kth) {}

  bool should_drop(sim::SimTime) override {
    if (k_ == 0) return false;
    return (++count_ % k_) == 0;
  }

  [[nodiscard]] double mean_rate() const override {
    return k_ == 0 ? 0.0 : 1.0 / static_cast<double>(k_);
  }

 private:
  std::uint64_t k_;
  std::uint64_t count_ = 0;
};

/// Replays a recorded drop pattern; repeats from the start when exhausted.
/// An empty pattern drops nothing.
class TraceLoss final : public LossModel {
 public:
  explicit TraceLoss(std::vector<bool> drops) : drops_(std::move(drops)) {}

  bool should_drop(sim::SimTime) override {
    if (drops_.empty()) return false;
    const bool d = drops_[pos_];
    pos_ = (pos_ + 1) % drops_.size();
    return d;
  }

  [[nodiscard]] double mean_rate() const override {
    if (drops_.empty()) return 0.0;
    std::uint64_t n = 0;
    for (const bool d : drops_) n += d ? 1 : 0;
    return static_cast<double>(n) / static_cast<double>(drops_.size());
  }

 private:
  std::vector<bool> drops_;
  std::size_t pos_ = 0;
};

/// Never drops. Handy default.
class NoLoss final : public LossModel {
 public:
  bool should_drop(sim::SimTime) override { return false; }
  [[nodiscard]] double mean_rate() const override { return 0.0; }
};

/// Run-time togglable fault wrapper. A fault injector flips `set_down` to
/// emulate a partition (every packet dropped while down) and layers
/// `set_extra_loss` on top of the base process for transient burst-loss
/// episodes. Unlike OutageLoss, the fault windows need not be known when the
/// channel is wired — this is what lets a scripted FaultPlan act on a live
/// run. The base process is always stepped first so its stream advances
/// identically whether or not a fault is active (fault windows never perturb
/// draws after the fault heals).
class SwitchableLoss final : public LossModel {
 public:
  SwitchableLoss(std::unique_ptr<LossModel> base, sim::Rng rng)
      : base_(std::move(base)), rng_(rng) {}

  void set_down(bool down) { down_ = down; }
  void set_extra_loss(double p) { extra_ = p; }
  [[nodiscard]] bool down() const { return down_; }
  [[nodiscard]] double extra_loss() const { return extra_; }

  /// Layers a whole second loss process on top of the base (e.g. a
  /// Gilbert-Elliott burst process a fault plan switches in over a
  /// Bernoulli base). The extra model COMPOSES with the base — either
  /// process dropping drops the packet — instead of replacing it, and once
  /// installed it is stepped on every transmission (like the base) so
  /// removing it never perturbs its own stream mid-episode. Pass nullptr to
  /// remove; base draws are unaffected either way.
  void set_extra_model(std::unique_ptr<LossModel> extra) {
    extra_model_ = std::move(extra);
  }
  [[nodiscard]] const LossModel* extra_model() const {
    return extra_model_.get();
  }

  bool should_drop(sim::SimTime now) override {
    // Base (and any extra model) are always stepped first, so their streams
    // advance identically whether or not a fault window is active.
    const bool base_drop = base_->should_drop(now);
    const bool extra_model_drop =
        extra_model_ != nullptr && extra_model_->should_drop(now);
    if (down_) return true;
    if (extra_ > 0.0 && rng_.bernoulli(extra_)) return true;
    return base_drop || extra_model_drop;
  }

  /// Base process rate; faults are transients, not part of the mean.
  [[nodiscard]] double mean_rate() const override {
    return base_->mean_rate();
  }

 private:
  std::unique_ptr<LossModel> base_;
  std::unique_ptr<LossModel> extra_model_;
  sim::Rng rng_;
  bool down_ = false;
  double extra_ = 0.0;
};

/// Failure injection: total outage (partition) during configured time
/// windows, delegating to a base process otherwise. Windows are half-open
/// [start, end) and must be non-overlapping and sorted.
class OutageLoss final : public LossModel {
 public:
  using Window = std::pair<sim::SimTime, sim::SimTime>;

  OutageLoss(std::unique_ptr<LossModel> base, std::vector<Window> outages)
      : base_(std::move(base)), outages_(std::move(outages)) {}

  bool should_drop(sim::SimTime now) override {
    while (next_ < outages_.size() && now >= outages_[next_].second) {
      ++next_;
    }
    if (next_ < outages_.size() && now >= outages_[next_].first) return true;
    return base_->should_drop(now);
  }

  /// Base process rate; outages are transients, not part of the mean.
  [[nodiscard]] double mean_rate() const override {
    return base_->mean_rate();
  }

 private:
  std::unique_ptr<LossModel> base_;
  std::vector<Window> outages_;
  std::size_t next_ = 0;  // first window not yet ended
};

}  // namespace sst::net
