#include "sim/simulator.hpp"

namespace sst::sim {

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t count = 0;
  while (true) {
    const auto next = queue_.next_time();
    if (!next || *next > deadline) break;
    auto fired = queue_.pop();
    now_ = fired->time;
    fired->fn();
    ++fired_;
    ++count;
  }
  // The clock still advances to the deadline even if no event lands on it,
  // so back-to-back run_until calls observe monotonic time.
  if (deadline > now_ && deadline < std::numeric_limits<SimTime>::infinity()) {
    now_ = deadline;
  }
  return count;
}

bool Simulator::step() {
  auto fired = queue_.pop();
  if (!fired) return false;
  now_ = fired->time;
  fired->fn();
  ++fired_;
  return true;
}

}  // namespace sst::sim
