// shard.hpp — building blocks for the sharded conservative-lookahead engine.
//
// The sharded engine splits ONE replication across K shard workers plus a
// root executor (the coordinator's thread). Time advances in lock-step
// epochs no longer than the minimum cross-shard channel latency W (the
// conservative lookahead, Chandy–Misra style): within an epoch no shard can
// observe an input it has not already been handed, so every shard's event
// loop runs free of cross-thread synchronization. The pieces here are
// engine-agnostic:
//
//   * shard_of / shard_bounds — the contiguous-block receiver partition,
//     chosen so that iterating shards in order visits receivers in global
//     index order (what makes cross-shard metric reductions bit-identical
//     to the single-queue engine's).
//   * SpscMailbox<T> — the worker→root message lane. Single producer
//     (the shard worker, during its epoch phase), single consumer (the
//     coordinator, strictly between phase barriers). The phase barrier IS
//     the synchronization: producer and consumer are never active at once,
//     so the mailbox needs no atomics — what it checks instead is protocol
//     discipline (push seqs strictly FIFO, drains only ever observe a
//     fully-published suffix).
//   * make_epoch_schedule — the barrier timetable: W-spaced steps snapped
//     to the "special" instants (warm-up cutoff, sample points, end time)
//     that the coordinator must hit exactly.
//   * ShardCrew — K long-lived worker threads advanced one epoch at a time
//     through a std::barrier (futex-parked, so oversubscribed hosts don't
//     spin), with worker exceptions carried back to the coordinator.
#pragma once

#include <barrier>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "check/annotate.hpp"
#include "check/check.hpp"
#include "sim/units.hpp"

namespace sst::sim {

/// Shard owning receiver `r` out of `total`, split into `shards` contiguous
/// blocks of near-equal size. Monotone in `r`: the concatenation of shard
/// 0's receivers, then shard 1's, … is exactly 0..total-1, so per-shard
/// state laid out in local order reduces in global order by visiting shards
/// in index order.
[[nodiscard]] constexpr std::size_t shard_of(std::size_t r, std::size_t total,
                                             std::size_t shards) {
  return r * shards / total;
}

/// Global receiver range [first, last) owned by `shard`.
[[nodiscard]] constexpr std::pair<std::size_t, std::size_t> shard_bounds(
    std::size_t shard, std::size_t total, std::size_t shards) {
  // Inverse of shard_of's floor division: smallest r with r*K >= s*R.
  const auto lo = (shard * total + shards - 1) / shards;
  const auto hi = ((shard + 1) * total + shards - 1) / shards;
  return {lo, hi};
}

/// Single-producer single-consumer mailbox for timestamped cross-shard
/// messages. The producer (shard worker) pushes during its epoch phase; the
/// consumer (coordinator) drains strictly between phase barriers, so the
/// barrier's happens-before edge covers every push. Push order is the
/// producer's send order; entries carry a per-mailbox FIFO seq so the
/// coordinator's cross-shard merge can tie-break deterministically on
/// (due, shard, seq).
///
/// Capability contract: the producer API requires the shard role, the
/// consumer API the root role (check/annotate.hpp). The roles carry the
/// WHO of the SPSC discipline through the static analysis; the WHEN — the
/// two sides never being active at once — is the barrier protocol itself,
/// which TSan and the determinism matrix verify. The methods being the
/// only access path is what makes the method-level contract complete.
template <class T>
class SpscMailbox {
 public:
  struct Stamped {
    SimTime due = 0.0;     // delivery time at the consumer
    std::uint64_t seq = 0;  // producer-side FIFO sequence
    T payload;
  };

  /// Producer side: queues `payload` for consumer delivery at `due`.
  /// Shard-worker role only (the owning shard, during its epoch phase).
  void push(SimTime due, T payload) SST_REQUIRES_SHARD {
    items_.push_back(Stamped{due, next_seq_++, std::move(payload)});
  }

  /// Consumer side: appends every pending entry to `out` in push order and
  /// empties the mailbox. Root role only (between phase barriers).
  void drain(std::vector<Stamped>& out) SST_REQUIRES_ROOT {
    drained_ += items_.size();
    for (auto& it : items_) out.push_back(std::move(it));
    items_.clear();
  }

  [[nodiscard]] std::size_t pending() const { return items_.size(); }
  [[nodiscard]] std::uint64_t pushed() const { return next_seq_; }

  /// Appends every violated invariant to `out` (sst::check): conservation
  /// (every seq ever issued is either drained or still pending) and FIFO
  /// order (pending seqs strictly increasing, all above the drained prefix).
  /// Runs on the producer side (the worker's SST_CHECK cadence hook), hence
  /// the shard role.
  void check_invariants(check::Violations& out) const SST_REQUIRES_SHARD {
    if (drained_ + items_.size() != next_seq_) {
      out.push_back("mailbox conservation broken: " +
                    std::to_string(drained_) + " drained + " +
                    std::to_string(items_.size()) + " pending != " +
                    std::to_string(next_seq_) + " pushed");
    }
    std::uint64_t prev = drained_;  // pending seqs follow the drained prefix
    for (std::size_t i = 0; i < items_.size(); ++i) {
      const std::uint64_t expect = prev + i;
      if (items_[i].seq != expect) {
        out.push_back("mailbox FIFO broken at slot " + std::to_string(i) +
                      ": seq " + std::to_string(items_[i].seq) +
                      " != expected " + std::to_string(expect));
        break;
      }
    }
  }

 private:
  std::vector<Stamped> items_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t drained_ = 0;
};

/// One barrier instant in the epoch timetable.
struct EpochBoundary {
  SimTime time = 0.0;
  /// Events at exactly `time` belong to the epoch ENDING here (the fence is
  /// nudged one ulp past `time`). True only for boundaries that must mirror
  /// the single-queue engine's inclusive run_until semantics: the warm-up
  /// cutoff and the end of the run.
  bool inclusive = false;
};

/// Builds the barrier timetable for a run over [0, end]: steps of at most
/// `lookahead` (infinity or <=0 means unbounded — no cross-shard feedback),
/// snapped exactly onto `specials` (each must satisfy 0 < t <= end; pass the
/// warm-up cutoff and every sample instant; `end` itself is appended). The
/// warm-up time `warmup` and `end` get inclusive boundaries. The result is
/// strictly increasing and ends at `end`.
[[nodiscard]] std::vector<EpochBoundary> make_epoch_schedule(
    SimTime end, SimTime warmup, Duration lookahead,
    std::vector<SimTime> specials);

/// Appends every violated timetable invariant to `out`: boundaries strictly
/// increasing, gaps no wider than the lookahead, last boundary at `end`.
void check_epoch_schedule(const std::vector<EpochBoundary>& schedule,
                          SimTime end, Duration lookahead,
                          check::Violations& out);

/// Picks the next barrier after `last` for the DYNAMIC timetable (idle-epoch
/// skipping): instead of marching fixed lookahead-spaced steps, the
/// coordinator reduces min(next pending event) across the root and every
/// shard at each barrier and jumps straight to
///     min(first special > last, min_next_event + lookahead).
/// The jump is conservative for exactly the reason the static schedule is:
/// no event exists anywhere in (last, min_next_event), so no cross-shard
/// influence can materialize before min_next_event + lookahead — quiescent
/// stretches (fault recovery tails, churn gaps) collapse into one epoch.
/// `specials` must be sorted, strictly positive, and contain `end`; `cursor`
/// is the caller's monotone index into it (entries at or before `last` are
/// skipped). An unbounded lookahead (<= 0 or infinite) jumps special to
/// special, which is the static schedule's behavior for that case.
/// Boundaries at `warmup` and `end` are inclusive, as in the static
/// schedule.
[[nodiscard]] EpochBoundary next_epoch_boundary(
    SimTime last, SimTime end, SimTime warmup, Duration lookahead,
    SimTime min_next_event, const std::vector<SimTime>& specials,
    std::size_t& cursor);

/// K long-lived shard worker threads advanced in lock-step epochs.
///
/// Per epoch the coordinator publishes whatever per-epoch inputs the workers
/// read (the epoch log, fences), then calls run_epoch(): every worker runs
/// `fn(shard)` once, and run_epoch returns after all of them finish. The two
/// barrier crossings per epoch give the full happens-before sandwich —
/// coordinator writes → workers read, workers write → coordinator reads —
/// so no other synchronization is needed anywhere in the engine.
///
/// A worker exception is caught, carried across the barrier, and rethrown
/// from run_epoch() on the coordinator thread (lowest shard id wins); the
/// crew is permanently stopped first so threads never deadlock on a barrier
/// the coordinator has abandoned.
class ShardCrew {
 public:
  using EpochFn = std::function<void(std::size_t shard)>;

  ShardCrew(std::size_t shards, EpochFn fn);
  ~ShardCrew();

  ShardCrew(const ShardCrew&) = delete;
  ShardCrew& operator=(const ShardCrew&) = delete;

  /// Runs one epoch on every worker; returns when all are done. Rethrows
  /// the first worker exception (by shard id) after stopping the crew.
  /// Root role only: only the coordinator may cross the barrier.
  void run_epoch() SST_REQUIRES_ROOT;

  [[nodiscard]] std::size_t shards() const { return threads_.size(); }

 private:
  void worker_loop(std::size_t shard);
  void stop();

  EpochFn fn_;
  std::barrier<> gate_;
  std::vector<std::exception_ptr> errors_;
  bool stop_ = false;     // written by coordinator before the start barrier
  bool stopped_ = false;  // coordinator-side: crew already shut down
  std::vector<std::thread> threads_;  // last member: starts after the rest
};

}  // namespace sst::sim
