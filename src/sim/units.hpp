// units.hpp — simulation time and bandwidth unit helpers.
//
// All rates in the library are carried in bits per second (double) and all
// times in seconds (double). The paper quotes workloads and channel capacities
// in kbps; the helpers below make call sites read like the paper
// (e.g. `kbps(45)` for the 45 kbps data channel of Figure 5).
#pragma once

#include <cstdint>

namespace sst::sim {

/// Simulation time in seconds since the start of the run.
using SimTime = double;

/// Bandwidth in bits per second.
using Rate = double;

/// A duration in seconds.
using Duration = double;

/// Returns a rate of `v` kilobits per second, expressed in bits per second.
constexpr Rate kbps(double v) { return v * 1000.0; }

/// Returns a rate of `v` megabits per second, expressed in bits per second.
constexpr Rate mbps(double v) { return v * 1'000'000.0; }

/// Returns a rate of `v` bits per second (identity; for readable call sites).
constexpr Rate bps(double v) { return v; }

/// Size of a packet or ADU in bytes.
using Bytes = std::uint32_t;

/// Converts a payload size in bytes to its size in bits.
constexpr double bits(Bytes bytes) { return 8.0 * static_cast<double>(bytes); }

/// Time taken to serialize `bytes` onto a channel of rate `rate` (seconds).
/// A zero or negative rate is treated as infinitely slow and yields +inf so
/// callers can detect a stalled channel rather than divide by zero.
constexpr Duration transmission_time(Bytes bytes, Rate rate) {
  if (rate <= 0.0) return 1e300;  // effectively never completes
  return bits(bytes) / rate;
}

}  // namespace sst::sim
