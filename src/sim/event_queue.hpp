// event_queue.hpp — pending-event set for the discrete-event engine.
//
// A 4-ary min-heap ordered by (time, insertion sequence). Ties on time are
// broken by insertion order so runs are fully deterministic. Callbacks live
// in a slot store addressed by index; the event handle encodes (slot,
// generation), so schedule, cancel, and pop never touch a hash table.
// Cancellation is lazy: cancelled entries are tombstoned (their slot
// generation advances) and skipped on pop; when tombstones outnumber live
// events the heap is compacted in one O(n) pass.
//
// Epoch fencing (sharded engine): set_fence(t) hides every entry with
// time >= t from pop()/next_time(), so a shard's event loop structurally
// cannot execute past its conservative-lookahead horizon — the fence IS the
// barrier-protocol guarantee, not a convention callers must remember. The
// fence only filters; entries beyond it stay queued and reappear when the
// coordinator raises the fence for the next epoch.
//
// None of this changes observable behaviour: pops come out in strict
// (time, seq) order whatever the heap arity, fence schedule, or compaction
// schedule, so the engine stays bit-deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "check/check.hpp"
#include "sim/event.hpp"
#include "sim/units.hpp"

namespace sst::sim {

/// Priority queue of timestamped callbacks.
///
/// Not thread-safe; a simulation is single-threaded by design (determinism
/// is a feature: every experiment in the paper reproduction is replayable
/// from its seed). Parallelism lives one level up, in sst::runner, which
/// runs many independent single-threaded simulations at once.
class EventQueue {
 public:
  /// Schedules `fn` to fire at absolute time `when`. Returns a handle that can
  /// be used to cancel the event before it fires.
  EventId schedule(SimTime when, EventFn fn);

  /// Cancels a pending event. Returns true if the event was still pending.
  /// Cancelling an already-fired, already-cancelled, or kNoEvent id is a no-op
  /// returning false.
  bool cancel(EventId id);

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Number of live events pending.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Timestamp of the earliest live event strictly before the fence, if any.
  [[nodiscard]] std::optional<SimTime> next_time() const;

  /// Timestamp of the earliest live event regardless of the fence, if any.
  /// The sharded engine's idle-epoch skip (the GVT-style min-next-event
  /// reduction at each barrier) needs to see past the previous epoch's
  /// fence: the queue may be quiescent for a long stretch beyond it, and
  /// the next barrier can jump straight to min(next event) + lookahead.
  [[nodiscard]] std::optional<SimTime> next_time_unfenced() const;

  /// Sets the epoch fence: pop() and next_time() ignore entries with
  /// time >= `fence` (they stay queued). The default fence is +infinity
  /// (no fencing). Fences are expected to be monotone non-decreasing over a
  /// run — check_invariants() reports a fence below an already-popped
  /// timestamp, which is exactly "an event executed beyond its lookahead
  /// horizon" in the shard barrier protocol.
  void set_fence(SimTime fence) { fence_ = fence; }

  /// Current epoch fence (+infinity when unfenced).
  [[nodiscard]] SimTime fence() const { return fence_; }

  /// Timestamp of the latest event popped so far (-infinity before the
  /// first pop). Monotone non-decreasing by heap order; the shard runner's
  /// horizon validator compares it against the fence.
  [[nodiscard]] SimTime max_popped() const { return max_popped_; }

  /// Removes and returns the earliest live event. Returns nullopt if empty.
  struct Fired {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  std::optional<Fired> pop();

  /// Discards all pending events.
  void clear();

  /// Appends every violated structural invariant to `out` (sst::check):
  /// 4-ary heap order under (time, seq), tombstone/live accounting against
  /// the slot generations, slot-store partition (every slot either free or
  /// holding exactly one live entry), FIFO-tiebreak soundness (seqs
  /// unique and below next_seq_), and fence soundness (no popped timestamp
  /// at or beyond the current fence). O(n log n); called from tests, the
  /// invariant_audit sweep, and the SST_CHECK hooks.
  void check_invariants(check::Violations& out) const;

 private:
  friend struct check::Corrupter;
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // insertion order; tie-break for determinism
    std::uint32_t slot;
    std::uint32_t gen;  // matches the slot's generation while live
  };

  /// Callback storage. A slot's generation advances every time its event
  /// fires or is cancelled, invalidating stale heap entries and old ids.
  struct Slot {
    EventFn fn;
    std::uint32_t gen = 1;
  };

  [[nodiscard]] bool entry_live(const Entry& e) const {
    return slots_[e.slot].gen == e.gen;
  }

  /// Retires a slot after fire/cancel: invalidates outstanding references
  /// and recycles the index.
  void retire(std::uint32_t slot) {
    ++slots_[slot].gen;
    free_slots_.push_back(slot);
    --live_;
  }

  // The sift helpers, tombstone purge, and compaction are logically const:
  // they reorder the mutable heap without changing observable state
  // (liveness is defined by the slot generations).
  void sift_up_fresh(std::size_t i) const;
  void sift_down(std::size_t i) const;
  void drop_cancelled_top() const;
  void maybe_compact() const;

  /// SST_CHECK hook: self-audit every 4096th mutating operation.
  void maybe_audit() {
#if SST_CHECK_ENABLED
    if (check::due(audit_tick_, 4096)) {
      check::Violations v;
      check_invariants(v);
      check::report("EventQueue", v);
    }
#endif
  }

  mutable std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::uint64_t audit_tick_ = 0;  // SST_CHECK cadence counter
  SimTime fence_ = std::numeric_limits<SimTime>::infinity();
  SimTime max_popped_ = -std::numeric_limits<SimTime>::infinity();
};

}  // namespace sst::sim
