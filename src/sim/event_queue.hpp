// event_queue.hpp — pending-event set for the discrete-event engine.
//
// A binary min-heap ordered by (time, insertion sequence). Ties on time are
// broken by insertion order so runs are fully deterministic. Cancellation is
// lazy: cancelled entries are tombstoned and skipped on pop, which keeps both
// schedule and cancel at O(log n) amortized without heap surgery.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/event.hpp"
#include "sim/units.hpp"

namespace sst::sim {

/// Priority queue of timestamped callbacks.
///
/// Not thread-safe; the simulation is single-threaded by design (determinism
/// is a feature: every experiment in the paper reproduction is replayable
/// from its seed).
class EventQueue {
 public:
  /// Schedules `fn` to fire at absolute time `when`. Returns a handle that can
  /// be used to cancel the event before it fires.
  EventId schedule(SimTime when, EventFn fn);

  /// Cancels a pending event. Returns true if the event was still pending.
  /// Cancelling an already-fired, already-cancelled, or kNoEvent id is a no-op
  /// returning false.
  bool cancel(EventId id);

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Number of live events pending.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Timestamp of the earliest live event, if any.
  [[nodiscard]] std::optional<SimTime> next_time() const;

  /// Removes and returns the earliest live event. Returns nullopt if empty.
  struct Fired {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  std::optional<Fired> pop();

  /// Discards all pending events.
  void clear();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // insertion order; tie-break for determinism
    EventId id;
  };

  // The sift helpers and tombstone purge are logically const: they reorder
  // the mutable heap without changing observable state (liveness is defined
  // by callbacks_).
  void sift_up(std::size_t i) const;
  void sift_down(std::size_t i) const;
  void drop_cancelled_top() const;

  mutable std::vector<Entry> heap_;
  std::unordered_map<EventId, EventFn> callbacks_;  // absent => cancelled
  EventId next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace sst::sim
