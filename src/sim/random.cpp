#include "sim/random.hpp"

#include <cmath>

#include "hash/fnv.hpp"

namespace sst::sim {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::Rng(const std::uint64_t (&state)[4]) {
  for (int i = 0; i < 4; ++i) s_[i] = state[i];
}

Rng Rng::fork(std::string_view tag, std::uint64_t index) const {
  // Mix the parent state with a hash of (tag, index) so sibling streams are
  // decorrelated. FNV-1a over the tag gives platform-independent derivation.
  std::uint64_t h = hash::fnv1a64(tag);
  std::uint64_t sm = s_[0] ^ rotl(s_[3], 17) ^ h ^ (index * 0x9E3779B97F4A7C15ULL);
  std::uint64_t child[4];
  for (auto& s : child) s = splitmix64(sm);
  return Rng(child);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  // Lemire's multiply-shift rejection method for unbiased bounded draws.
  if (n == 0) return 0;
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) return 0.0;
  // uniform() is in [0,1); 1-u is in (0,1] so log() is finite.
  return -mean * std::log(1.0 - uniform());
}

std::uint64_t Rng::geometric(double p) {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return ~0ULL;
  const double u = 1.0 - uniform();  // (0,1]
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

double Rng::pareto(double alpha, double xm) {
  if (alpha <= 0.0 || xm <= 0.0) return 0.0;
  const double u = 1.0 - uniform();  // (0,1]
  return xm / std::pow(u, 1.0 / alpha);
}

}  // namespace sst::sim
