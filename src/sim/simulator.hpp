// simulator.hpp — the discrete-event simulation kernel.
//
// An ns-2-style virtual-time engine: components schedule callbacks on the
// shared clock, the kernel fires them in timestamp order, and time advances
// instantaneously between events. Everything in this reproduction — channels,
// protocol timers, workload arrival processes, measurement sampling — runs on
// one Simulator instance. The sharded engine (sim/shard.hpp) runs one
// Simulator per shard, each still strictly single-threaded; set_fence() and
// advance_to() are the two hooks its barrier protocol needs.
#pragma once

#include <cstdint>
#include <limits>

#include "sim/event.hpp"
#include "sim/event_queue.hpp"
#include "sim/units.hpp"

namespace sst::sim {

/// Single-threaded deterministic discrete-event simulator.
///
/// Usage:
///   Simulator sim;
///   sim.after(1.0, [&]{ ... });   // relative scheduling
///   sim.run_until(100.0);          // drive the clock
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time in seconds.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `when`. Scheduling in the past (or at the
  /// current instant) fires the event at the current time, after all events
  /// already scheduled for that time (FIFO among ties).
  EventId at(SimTime when, EventFn fn) {
    if (when < now_) when = now_;
    return queue_.schedule(when, std::move(fn));
  }

  /// Schedules `fn` to fire `delay` seconds from now (negative clamps to 0).
  EventId after(Duration delay, EventFn fn) {
    return at(now_ + (delay > 0 ? delay : 0), std::move(fn));
  }

  /// Cancels a pending event; returns true if it was still pending.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the event queue drains or the clock passes `deadline`.
  /// Events scheduled exactly at `deadline` are fired. Returns the number of
  /// events fired by this call.
  std::uint64_t run_until(SimTime deadline);

  /// Runs until the event queue drains. Returns the number of events fired.
  std::uint64_t run() {
    return run_until(std::numeric_limits<SimTime>::infinity());
  }

  /// Fires at most one event. Returns false if the queue was empty.
  bool step();

  /// Sets the event-queue epoch fence (exclusive): run_until()/step() will
  /// not fire events at or after `fence` until it is raised. Used by the
  /// sharded engine to bound each shard at its conservative-lookahead
  /// horizon; +infinity (the default) disables fencing.
  void set_fence(SimTime fence) { queue_.set_fence(fence); }

  /// Advances the clock to `t` without firing events (no-op if `t` is in the
  /// past). The sharded engine uses this to apply a cross-shard event log:
  /// each logged event is replayed at its original timestamp, so callbacks it
  /// schedules land at the same absolute times they would have in the
  /// unsharded run.
  void advance_to(SimTime t) {
    if (t > now_) now_ = t;
  }

  /// Timestamp of the earliest pending event regardless of the fence;
  /// +infinity when the queue is empty. The sharded coordinator reduces
  /// this across every shard at each barrier to skip quiescent epochs.
  [[nodiscard]] SimTime next_event_time() const {
    const auto t = queue_.next_time_unfenced();
    return t ? *t : std::numeric_limits<SimTime>::infinity();
  }

  /// Number of live pending events.
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Total events fired over the simulator's lifetime.
  [[nodiscard]] std::uint64_t fired() const { return fired_; }

  /// Read access to the pending-event set (sst::check audits and tests).
  [[nodiscard]] const EventQueue& queue() const { return queue_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t fired_ = 0;
};

}  // namespace sst::sim
