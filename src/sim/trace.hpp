// trace.hpp — lightweight structured event tracing.
//
// Protocol components emit trace records ("tx", "rx", "drop", "expire", ...)
// tagged with the simulation time. A TraceSink either discards them (the
// default — tracing must cost nothing when off), collects them for test
// assertions, or streams them to a FILE for debugging a run.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "sim/units.hpp"

namespace sst::sim {

/// One trace record.
struct TraceRecord {
  SimTime time = 0.0;
  std::string component;  // e.g. "channel", "sender.hot"
  std::string event;      // e.g. "tx", "drop"
  std::string detail;     // free-form, e.g. "key=42 ver=3"
};

/// Destination for trace records.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const TraceRecord& rec) = 0;
};

/// Discards everything (default).
class NullTraceSink final : public TraceSink {
 public:
  void emit(const TraceRecord&) override {}
};

/// Buffers records in memory; used by tests to assert on protocol behaviour.
class MemoryTraceSink final : public TraceSink {
 public:
  void emit(const TraceRecord& rec) override { records_.push_back(rec); }

  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }

  /// Count of records matching component/event (empty matches anything).
  [[nodiscard]] std::size_t count(std::string_view component,
                                  std::string_view event) const {
    std::size_t n = 0;
    for (const auto& r : records_) {
      if (!component.empty() && r.component != component) continue;
      if (!event.empty() && r.event != event) continue;
      ++n;
    }
    return n;
  }

  void clear() { records_.clear(); }

 private:
  std::vector<TraceRecord> records_;
};

/// Streams one line per record to a FILE (e.g. stderr).
class FileTraceSink final : public TraceSink {
 public:
  /// Does not take ownership of `out`; it must outlive the sink.
  explicit FileTraceSink(std::FILE* out) : out_(out) {}

  void emit(const TraceRecord& rec) override {
    std::fprintf(out_, "%12.6f %-16s %-8s %s\n", rec.time,
                 rec.component.c_str(), rec.event.c_str(), rec.detail.c_str());
  }

 private:
  std::FILE* out_;
};

/// Convenience handle components hold: emits into a sink with a fixed
/// component name, or does nothing when no sink is installed.
class Tracer {
 public:
  Tracer() = default;
  Tracer(TraceSink* sink, std::string component)
      : sink_(sink), component_(std::move(component)) {}

  /// True when emitting is worthwhile; lets callers skip building detail
  /// strings on the fast path.
  [[nodiscard]] bool enabled() const { return sink_ != nullptr; }

  void emit(SimTime time, std::string_view event,
            std::string detail = {}) const {
    if (sink_ == nullptr) return;
    sink_->emit(TraceRecord{time, component_, std::string(event),
                            std::move(detail)});
  }

 private:
  TraceSink* sink_ = nullptr;  // not owned
  std::string component_;
};

}  // namespace sst::sim
