#include "sim/shard.hpp"

#include <algorithm>
#include <stdexcept>

namespace sst::sim {

std::vector<EpochBoundary> make_epoch_schedule(SimTime end, SimTime warmup,
                                               Duration lookahead,
                                               std::vector<SimTime> specials) {
  const bool bounded =
      lookahead > 0.0 && lookahead < std::numeric_limits<Duration>::infinity();
  specials.push_back(end);
  std::sort(specials.begin(), specials.end());
  specials.erase(std::unique(specials.begin(), specials.end()),
                 specials.end());

  std::vector<EpochBoundary> schedule;
  SimTime last = 0.0;
  std::size_t si = 0;
  while (last < end) {
    while (si < specials.size() && specials[si] <= last) ++si;
    // si < specials.size() always holds here: `end` is a special and
    // last < end.
    SimTime next = specials[si];
    if (bounded && last + lookahead < next) next = last + lookahead;
    schedule.push_back(EpochBoundary{next, next == warmup || next == end});
    last = next;
  }
  return schedule;
}

void check_epoch_schedule(const std::vector<EpochBoundary>& schedule,
                          SimTime end, Duration lookahead,
                          check::Violations& out) {
  const bool bounded =
      lookahead > 0.0 && lookahead < std::numeric_limits<Duration>::infinity();
  SimTime prev = 0.0;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const SimTime t = schedule[i].time;
    if (!(t > prev)) {
      out.push_back("barrier " + std::to_string(i) + " at t=" +
                    std::to_string(t) + " not after its predecessor t=" +
                    std::to_string(prev) + " (barrier monotonicity)");
    }
    // One ulp of slack: boundaries are built by repeated addition.
    if (bounded && t - prev > lookahead * (1.0 + 1e-12)) {
      out.push_back("epoch " + std::to_string(i) + " spans " +
                    std::to_string(t - prev) + " > lookahead " +
                    std::to_string(lookahead));
    }
    prev = t;
  }
  if (schedule.empty() || schedule.back().time != end) {
    out.push_back("schedule does not end at t=" + std::to_string(end));
  }
}

EpochBoundary next_epoch_boundary(SimTime last, SimTime end, SimTime warmup,
                                  Duration lookahead, SimTime min_next_event,
                                  const std::vector<SimTime>& specials,
                                  std::size_t& cursor) {
  const bool bounded =
      lookahead > 0.0 && lookahead < std::numeric_limits<Duration>::infinity();
  while (cursor < specials.size() && specials[cursor] <= last) ++cursor;
  // cursor < specials.size() always holds here: `end` is a special and
  // last < end.
  SimTime next = specials[cursor];
  if (bounded) {
    // Events already fired never reappear, so min_next_event >= last; the
    // clamp only guards a root queue whose earliest entry sits exactly at
    // the previous inclusive barrier (fired, tombstone not yet dropped).
    const SimTime floor = std::max(min_next_event, last);
    if (floor + lookahead < next) next = floor + lookahead;
  }
  return EpochBoundary{next, next == warmup || next == end};
}

ShardCrew::ShardCrew(std::size_t shards, EpochFn fn)
    : fn_(std::move(fn)),
      gate_(static_cast<std::ptrdiff_t>(shards) + 1),
      errors_(shards) {
  threads_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    // Audited shard-worker capture: worker_loop touches only gate_, stop_,
    // fn_, and its own errors_ slot, each ordered by the barrier itself.
    threads_.emplace_back([this, s] { worker_loop(s); });  // sstlint: allow(shard-capture)
  }
}

ShardCrew::~ShardCrew() { stop(); }

void ShardCrew::worker_loop(std::size_t shard) {
  while (true) {
    gate_.arrive_and_wait();  // epoch start (or shutdown)
    if (stop_) return;
    try {
      fn_(shard);
    } catch (...) {
      errors_[shard] = std::current_exception();
    }
    gate_.arrive_and_wait();  // epoch done
  }
}

void ShardCrew::run_epoch() {
  if (stopped_) {
    throw std::logic_error("ShardCrew::run_epoch after the crew stopped");
  }
  gate_.arrive_and_wait();  // release workers into the epoch
  gate_.arrive_and_wait();  // wait for all of them
  for (std::size_t s = 0; s < errors_.size(); ++s) {
    if (errors_[s]) {
      const std::exception_ptr err = errors_[s];
      stop();  // orderly shutdown so no thread is left parked on the barrier
      std::rethrow_exception(err);
    }
  }
}

void ShardCrew::stop() {
  if (stopped_) return;
  stopped_ = true;
  stop_ = true;             // published by the barrier's release
  gate_.arrive_and_wait();  // matches the workers' epoch-start arrive
  for (auto& t : threads_) t.join();
}

}  // namespace sst::sim
