// event.hpp — the basic unit of work in the discrete-event engine.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/units.hpp"

namespace sst::sim {

/// Opaque handle identifying a scheduled event. Valid until the event fires
/// or is cancelled. Id 0 is never issued and means "no event".
using EventId = std::uint64_t;

/// Sentinel for "no event scheduled".
inline constexpr EventId kNoEvent = 0;

/// Callback invoked when an event fires. Runs with the simulator clock set to
/// the event's timestamp; it may schedule or cancel further events.
using EventFn = std::function<void()>;

}  // namespace sst::sim
