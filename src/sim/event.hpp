// event.hpp — the basic unit of work in the discrete-event engine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/units.hpp"

namespace sst::sim {

/// Opaque handle identifying a scheduled event. Valid until the event fires
/// or is cancelled. Id 0 is never issued and means "no event".
using EventId = std::uint64_t;

/// Sentinel for "no event scheduled".
inline constexpr EventId kNoEvent = 0;

/// Callback invoked when an event fires. Runs with the simulator clock set to
/// the event's timestamp; it may schedule or cancel further events.
///
/// A move-only std::function replacement with a generous inline buffer:
/// every callback the engine schedules (channel deliveries capturing a
/// handler reference plus a shared payload, timer trampolines capturing
/// `this`, protocol lambdas) fits inline, so the hot path never touches the
/// allocator. Larger callables transparently spill to the heap.
class EventFn {
 public:
  /// Inline capacity. 48 bytes covers every capture list in the tree; the
  /// largest common case — a delivery lambda holding a Handler& and a
  /// shared_ptr — needs 24.
  static constexpr std::size_t kInlineSize = 48;

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <class F>
    requires(!std::is_same_v<std::decay_t<F>, EventFn> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      ops_ = &heap_ops<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    if (ops_) ops_->relocate(other.buf_, buf_);
    other.ops_ = nullptr;
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      if (ops_) ops_->destroy(buf_);
      ops_ = other.ops_;
      if (ops_) ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() {
    if (ops_) ops_->destroy(buf_);
  }

  void operator()() { ops_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* src, void* dst);  // move-construct dst, destroy src
    void (*destroy)(void*);
  };

  template <class Fn>
  static constexpr Ops inline_ops{
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* src, void* dst) {
        auto* f = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*f));
        f->~Fn();
      },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); }};

  template <class Fn>
  static constexpr Ops heap_ops{
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* src, void* dst) {
        *static_cast<Fn**>(dst) = *static_cast<Fn**>(src);
      },
      [](void* p) { delete *static_cast<Fn**>(p); }};

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace sst::sim
