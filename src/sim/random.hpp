// random.hpp — deterministic pseudo-random streams for simulation.
//
// Every stochastic component (loss model, workload arrival process, lottery
// scheduler, ...) owns its own Rng stream derived from the experiment seed,
// so adding instrumentation or reordering components never perturbs another
// component's draws. The generator is xoshiro256** seeded via SplitMix64 —
// fast, high quality, and fully reproducible across platforms.
#pragma once

#include <cstdint>
#include <string_view>

namespace sst::sim {

/// SplitMix64 step; used for seeding and cheap stream derivation.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** pseudo-random generator with distribution helpers.
class Rng {
 public:
  /// Constructs a stream from a 64-bit seed (expanded via SplitMix64).
  /// Deliberately no default: every stream must trace back to an explicit
  /// experiment seed (sstlint rule rng-seed), so a forgotten seed is a
  /// compile error rather than a silently shared stream.
  explicit Rng(std::uint64_t seed);

  /// Derives an independent child stream. `tag` names the consumer (e.g.
  /// "loss", "workload") so streams differ even for equal indices.
  [[nodiscard]] Rng fork(std::string_view tag, std::uint64_t index = 0) const;

  /// Next raw 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential variate with the given mean (not rate). Mean <= 0 returns 0.
  double exponential(double mean);

  /// Geometric number of failures before first success, success prob p in
  /// (0,1]. Used by discrete per-transmission death processes.
  std::uint64_t geometric(double p);

  /// Pareto variate with shape `alpha` > 0 and scale `xm` > 0 (heavy-tailed
  /// record lifetimes, an ablation workload).
  double pareto(double alpha, double xm);

 private:
  explicit Rng(const std::uint64_t (&state)[4]);
  std::uint64_t s_[4];
};

}  // namespace sst::sim
