// timer.hpp — RAII timers on top of the simulator.
//
// Soft state lives and dies by timers: senders run periodic announcement
// timers, receivers run expiration timers that are reset on each refresh.
// These helpers make both patterns safe (no dangling events after the owner
// is destroyed) and cheap to restart.
#pragma once

#include <functional>
#include <utility>

#include "sim/simulator.hpp"

namespace sst::sim {

/// One-shot timer. Destroying or re-arming the timer cancels the pending
/// callback, so a Timer member can never fire into a destroyed owner.
class Timer {
 public:
  explicit Timer(Simulator& sim) : sim_(&sim) {}
  ~Timer() { cancel(); }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Arms (or re-arms) the timer to fire `delay` seconds from now.
  /// A previously pending shot is cancelled — this is the "refresh resets the
  /// expiry timer" primitive of the announce/listen model.
  void arm(Duration delay, std::function<void()> fn) {
    cancel();
    fn_ = std::move(fn);
    id_ = sim_->after(delay, [this] {
      id_ = kNoEvent;
      // Move out so fn_ may re-arm this very timer from inside the callback.
      auto fn = std::move(fn_);
      fn_ = nullptr;
      fn();
    });
  }

  /// Cancels any pending shot. Safe to call when idle.
  void cancel() {
    if (id_ != kNoEvent) {
      sim_->cancel(id_);
      id_ = kNoEvent;
      fn_ = nullptr;
    }
  }

  /// True if a shot is pending.
  [[nodiscard]] bool pending() const { return id_ != kNoEvent; }

 private:
  Simulator* sim_;
  EventId id_ = kNoEvent;
  std::function<void()> fn_;
};

/// Periodic timer: fires `fn` every `period()` seconds until stopped.
/// The period may be changed between firings (adaptive refresh intervals).
class PeriodicTimer {
 public:
  explicit PeriodicTimer(Simulator& sim) : timer_(sim) {}

  /// Starts firing every `period` seconds; first firing after one period.
  /// Restarting while running re-phases the timer.
  void start(Duration period, std::function<void()> fn) {
    period_ = period;
    fn_ = std::move(fn);
    schedule_next();
  }

  /// Stops firing. Safe to call when idle.
  void stop() { timer_.cancel(); }

  /// Updates the period; takes effect after the next firing (or immediately
  /// re-phases if `rephase` is true).
  void set_period(Duration period, bool rephase = false) {
    period_ = period;
    if (rephase && timer_.pending()) schedule_next();
  }

  [[nodiscard]] Duration period() const { return period_; }
  [[nodiscard]] bool running() const { return timer_.pending(); }

 private:
  void schedule_next() {
    timer_.arm(period_, [this] {
      schedule_next();
      fn_();
    });
  }

  Timer timer_;
  Duration period_ = 1.0;
  std::function<void()> fn_;
};

}  // namespace sst::sim
