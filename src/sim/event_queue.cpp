#include "sim/event_queue.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace sst::sim {

namespace {

// Handle layout: high 32 bits generation, low 32 bits slot index + 1 (so a
// valid id is never kNoEvent).
constexpr EventId make_id(std::uint32_t slot, std::uint32_t gen) {
  return (static_cast<EventId>(gen) << 32) |
         (static_cast<EventId>(slot) + 1);
}

constexpr std::uint32_t id_slot(EventId id) {
  return static_cast<std::uint32_t>((id & 0xFFFFFFFFULL) - 1);
}

constexpr std::uint32_t id_gen(EventId id) {
  return static_cast<std::uint32_t>(id >> 32);
}

inline bool before(SimTime at, std::uint64_t as, SimTime bt,
                   std::uint64_t bs) {
  if (at != bt) return at < bt;
  return as < bs;
}

// Compact once tombstones dominate; the floor keeps tiny queues out of the
// compaction path entirely.
constexpr std::size_t kCompactMinEntries = 64;

}  // namespace

EventId EventQueue::schedule(SimTime when, EventFn fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].fn = std::move(fn);
  const std::uint32_t gen = slots_[slot].gen;
  heap_.push_back(Entry{when, next_seq_++, slot, gen});
  // FIFO fast path: event-driven simulations schedule mostly into the
  // future, so the fresh entry usually stays a leaf. One inline parent check
  // skips sift_up_fresh's hole dance (a full Entry copy in and out even when
  // nothing moves) for that common case. The fresh entry holds the maximum
  // seq in the heap, so the (time, seq) tiebreak degenerates to a strict
  // time comparison — no seq loads on this path at all.
  const std::size_t at = heap_.size() - 1;
  if (at > 0 && when < heap_[(at - 1) / 4].time) {
    sift_up_fresh(at);
  }
  ++live_;
  maybe_audit();
  return make_id(slot, gen);
}

bool EventQueue::cancel(EventId id) {
  if (id == kNoEvent) return false;
  const std::uint32_t slot = id_slot(id);
  if (slot >= slots_.size() || slots_[slot].gen != id_gen(id)) return false;
  slots_[slot].fn = nullptr;
  retire(slot);
  maybe_compact();
  maybe_audit();
  return true;
}

void EventQueue::drop_cancelled_top() const {
  // Tombstone-free queues (no cancels since the last purge) skip the
  // per-call liveness probe: entry_live is a dependent load into the slot
  // store, paid on EVERY pop/next_time otherwise. heap_.size() == live_
  // detects the common case for free.
  if (heap_.size() == live_) return;
  while (!heap_.empty() && !entry_live(heap_.front())) {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
}

void EventQueue::maybe_compact() const {
  // Keep the heap at most half tombstones: one O(n) sweep rebuilds the heap
  // from the live entries, so cancel-heavy workloads (timer refresh storms)
  // stay O(log live) instead of sifting through dead weight.
  if (heap_.size() < kCompactMinEntries || heap_.size() < 2 * live_) return;
  std::size_t out = 0;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    if (entry_live(heap_[i])) heap_[out++] = heap_[i];
  }
  heap_.resize(out);
  if (out > 1) {
    for (std::size_t i = (out - 2) / 4 + 1; i-- > 0;) sift_down(i);
  }
}

std::optional<SimTime> EventQueue::next_time() const {
  drop_cancelled_top();
  if (heap_.empty() || heap_.front().time >= fence_) return std::nullopt;
  return heap_.front().time;
}

std::optional<SimTime> EventQueue::next_time_unfenced() const {
  drop_cancelled_top();
  if (heap_.empty()) return std::nullopt;
  return heap_.front().time;
}

std::optional<EventQueue::Fired> EventQueue::pop() {
  drop_cancelled_top();
  if (heap_.empty() || heap_.front().time >= fence_) return std::nullopt;
  const Entry top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  if (top.time > max_popped_) max_popped_ = top.time;

  Fired fired{top.time, make_id(top.slot, top.gen),
              std::move(slots_[top.slot].fn)};
  retire(top.slot);
  maybe_audit();
  return fired;
}

void EventQueue::clear() {
  heap_.clear();
  // Advance every generation (rather than resetting the store) so ids issued
  // before the clear can never alias events scheduled after it.
  free_slots_.clear();
  for (std::uint32_t s = 0; s < slots_.size(); ++s) {
    slots_[s].fn = nullptr;
    ++slots_[s].gen;
    free_slots_.push_back(s);
  }
  live_ = 0;
}

void EventQueue::check_invariants(check::Violations& out) const {
  // 4-ary heap order under (time, seq): every entry at or after its parent.
  for (std::size_t i = 1; i < heap_.size(); ++i) {
    const std::size_t p = (i - 1) / 4;
    if (before(heap_[i].time, heap_[i].seq, heap_[p].time, heap_[p].seq)) {
      out.push_back("heap[" + std::to_string(i) + "] orders before parent " +
                    "heap[" + std::to_string(p) + "]");
    }
  }

  // Tombstone accounting: live_ equals the number of heap entries whose
  // generation still matches their slot, and no live slot appears twice
  // (a duplicate would fire one event two times).
  std::size_t live_seen = 0;
  std::vector<std::uint8_t> live_slot(slots_.size(), 0);
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    const Entry& e = heap_[i];
    if (e.slot >= slots_.size()) {
      out.push_back("heap[" + std::to_string(i) + "] references slot " +
                    std::to_string(e.slot) + " beyond store size " +
                    std::to_string(slots_.size()));
      continue;
    }
    if (!entry_live(e)) continue;
    ++live_seen;
    if (live_slot[e.slot]++) {
      out.push_back("slot " + std::to_string(e.slot) +
                    " held live by more than one heap entry");
    }
  }
  if (live_seen != live_) {
    out.push_back("live_ = " + std::to_string(live_) + " but " +
                  std::to_string(live_seen) + " live heap entries");
  }

  // Slot-store partition: every slot is either on the free list or holds
  // exactly one live entry; the free list never aliases a live slot.
  std::vector<std::uint8_t> freed(slots_.size(), 0);
  for (const std::uint32_t s : free_slots_) {
    if (s >= slots_.size()) {
      out.push_back("free slot " + std::to_string(s) + " out of range");
      continue;
    }
    if (freed[s]++) {
      out.push_back("slot " + std::to_string(s) + " on the free list twice");
    }
    if (s < live_slot.size() && live_slot[s]) {
      out.push_back("slot " + std::to_string(s) +
                    " both free and live in the heap");
    }
  }
  if (live_ + free_slots_.size() != slots_.size()) {
    out.push_back("slot partition broken: " + std::to_string(live_) +
                  " live + " + std::to_string(free_slots_.size()) +
                  " free != " + std::to_string(slots_.size()) + " slots");
  }

  // FIFO tiebreak: insertion seqs are unique and below next_seq_, so ties
  // on time always resolve by insertion order.
  std::vector<std::uint64_t> seqs;
  seqs.reserve(heap_.size());
  for (const Entry& e : heap_) {
    if (e.seq >= next_seq_) {
      out.push_back("entry seq " + std::to_string(e.seq) +
                    " >= next_seq_ " + std::to_string(next_seq_));
    }
    seqs.push_back(e.seq);
  }
  std::sort(seqs.begin(), seqs.end());
  if (std::adjacent_find(seqs.begin(), seqs.end()) != seqs.end()) {
    out.push_back("duplicate insertion seq breaks the FIFO tiebreak");
  }

  // Fence soundness: fences are monotone non-decreasing in the barrier
  // protocol, so a popped timestamp at or beyond the current fence means an
  // event executed past its conservative-lookahead horizon.
  if (max_popped_ >= fence_) {
    out.push_back("popped event at t=" + std::to_string(max_popped_) +
                  " at or beyond fence t=" + std::to_string(fence_) +
                  " (lookahead horizon violated)");
  }
}

// Both sifts move a "hole" instead of swapping: the displaced entry is held
// in a local and written exactly once at its final position, halving the
// memory traffic of the classic swap loop.
// Precondition: heap_[i] is the entry schedule() just pushed, which holds
// the maximum seq in the heap. Ties on time therefore always keep it below
// the incumbent, and `before(e, parent)` collapses to `e.time <
// parent.time` at every level — the seq fields never need loading. (The
// only caller is schedule(); a general sift-up would need the full
// tiebreak.)
void EventQueue::sift_up_fresh(std::size_t i) const {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (e.time >= heap_[parent].time) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::sift_down(std::size_t i) const {
  const std::size_t n = heap_.size();
  const Entry e = heap_[i];
  while (true) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    std::size_t smallest = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c].time, heap_[c].seq, heap_[smallest].time,
                 heap_[smallest].seq)) {
        smallest = c;
      }
    }
    if (!before(heap_[smallest].time, heap_[smallest].seq, e.time, e.seq)) {
      break;
    }
    heap_[i] = heap_[smallest];
    i = smallest;
  }
  heap_[i] = e;
}

// A bottom-up (Wegener) hole refill — descend pulling the min child up
// unconditionally, then sift the displaced tail up from the leaf — was
// measured against this top-down sift on the queue_fifo / queue_random
// scenarios and LOST on both (see EXPERIMENTS.md, "FIFO fast path under
// fencing"): the saved compare-per-level never beats the extra leaf-to-root
// walk with this entry layout. Keeping the simpler form.

}  // namespace sst::sim
