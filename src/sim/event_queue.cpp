#include "sim/event_queue.hpp"

#include <utility>

namespace sst::sim {

// Min-heap ordering: earlier time first, then earlier insertion.
static bool entry_before(SimTime at, std::uint64_t as, SimTime bt,
                         std::uint64_t bs) {
  if (at != bt) return at < bt;
  return as < bs;
}

EventId EventQueue::schedule(SimTime when, EventFn fn) {
  const EventId id = next_id_++;
  callbacks_.emplace(id, std::move(fn));
  heap_.push_back(Entry{when, next_seq_++, id});
  sift_up(heap_.size() - 1);
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id == kNoEvent) return false;
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_;
  return true;
}

void EventQueue::drop_cancelled_top() const {
  while (!heap_.empty() && !callbacks_.contains(heap_.front().id)) {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
}

std::optional<SimTime> EventQueue::next_time() const {
  drop_cancelled_top();
  if (heap_.empty()) return std::nullopt;
  return heap_.front().time;
}

std::optional<EventQueue::Fired> EventQueue::pop() {
  drop_cancelled_top();
  if (heap_.empty()) return std::nullopt;
  Entry top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);

  auto it = callbacks_.find(top.id);
  Fired fired{top.time, top.id, std::move(it->second)};
  callbacks_.erase(it);
  --live_;
  return fired;
}

void EventQueue::clear() {
  heap_.clear();
  callbacks_.clear();
  live_ = 0;
}

void EventQueue::sift_up(std::size_t i) const {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (entry_before(heap_[i].time, heap_[i].seq, heap_[parent].time,
                     heap_[parent].seq)) {
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    } else {
      break;
    }
  }
}

void EventQueue::sift_down(std::size_t i) const {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    std::size_t smallest = i;
    if (l < n && entry_before(heap_[l].time, heap_[l].seq, heap_[smallest].time,
                              heap_[smallest].seq)) {
      smallest = l;
    }
    if (r < n && entry_before(heap_[r].time, heap_[r].seq, heap_[smallest].time,
                              heap_[smallest].seq)) {
      smallest = r;
    }
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace sst::sim
