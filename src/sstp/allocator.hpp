// allocator.hpp — SSTP's profile-driven bandwidth allocation (paper
// Section 6.1, Figure 12).
//
// "Using stored consistency profiles similar to Figure 9, the bandwidth
// allocator outputs values {mu_data, mu_feedback}. The share of bandwidth
// for the different transmission queues is obtained from the T_recv profile,
// similar to Figure 6. The allocator also notifies the application if it
// detects that the rate of arrival of new data exceeds the bandwidth
// available for it."
//
// Inputs: measured loss rate (from receiver reports), the application's
// consistency target, the total session bandwidth (configured or provided by
// a congestion manager — explicitly out of SSTP's scope), and the measured
// application arrival rate. Output: the {data, feedback} split, the
// {hot, cold} split of the data share, and a rate warning when new data
// outpaces the hot bandwidth.
#pragma once

#include <functional>
#include <optional>

#include "analysis/profiles.hpp"
#include "sim/units.hpp"

namespace sst::sstp {

/// The allocator's output.
struct Allocation {
  sim::Rate mu_data = 0;   // data bandwidth (hot + cold)
  sim::Rate mu_fb = 0;     // feedback bandwidth
  double hot_share = 0.5;  // hot fraction of mu_data
  /// True when the application's arrival rate exceeds the hot bandwidth the
  /// allocation can provide: the application should slow down to keep its
  /// requested consistency (paper: "This dictates the maximum rate at which
  /// the application can send").
  bool rate_warning = false;
  /// Maximum sustainable application rate under this allocation (bits/sec).
  sim::Rate max_app_rate = 0;
};

/// Profile-driven allocator.
class BandwidthAllocator {
 public:
  struct Config {
    sim::Rate total_bandwidth = sim::kbps(60);
    double target_consistency = 0.95;
    /// Feedback share bounds. The floor is strictly positive by default:
    /// receiver reports ride the feedback path, so allocating zero feedback
    /// would silence the very measurements the allocator adapts on.
    double min_fb_share = 0.02;
    double max_fb_share = 0.6;
    /// Hot bandwidth provisioning: hot must carry the arrival rate inflated
    /// by retransmissions, 1/(1-loss), plus this safety factor.
    double hot_headroom = 1.5;
    double min_hot_share = 0.1;
    double max_hot_share = 0.9;
  };

  /// `fb_profile` maps (loss rate, feedback share of total) to achieved
  /// consistency — the Figure 9 surface, measured empirically by the bench
  /// harness or supplied by `empirical_feedback_profile()`.
  BandwidthAllocator(Config config, analysis::Profile2D fb_profile);

  /// Optional T_recv profile (the Figure 6 surface): (loss rate, cold share
  /// of data) -> mean receive latency. When present, the hot/cold split is
  /// chosen from it — the smallest cold share whose predicted latency is
  /// within 10% of the per-loss minimum — subject to the hot floor needed to
  /// absorb arrivals ("the share of bandwidth for the different transmission
  /// queues is obtained from the T_recv profile", paper Section 6.1).
  /// Without it, the closed-form absorption rule alone decides.
  void set_latency_profile(analysis::Profile2D profile) {
    latency_profile_ = std::move(profile);
  }

  /// Computes an allocation for the current conditions.
  /// `measured_loss` in [0,1]; `app_rate` is the application's new-data rate
  /// in bits/sec (insertions + updates, wire size).
  [[nodiscard]] Allocation allocate(double measured_loss,
                                    sim::Rate app_rate) const;

  /// Predicted consistency for a hypothetical split at a given loss rate
  /// (exposes the profile for introspection and tests).
  [[nodiscard]] double predict(double loss, double fb_share) const {
    return fb_profile_.at(loss, fb_share);
  }

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
  analysis::Profile2D fb_profile_;
  std::optional<analysis::Profile2D> latency_profile_;
};

/// A canned Figure-9-style profile: consistency as a function of
/// (loss rate, feedback share of total bandwidth), measured with the bench
/// harness at the paper's operating point (lambda = 15 kbps of 1000-byte
/// records, 60 kbps total). Adequate as a default; regenerate with
/// bench_fig9 for other workloads.
analysis::Profile2D empirical_feedback_profile();

}  // namespace sst::sstp
