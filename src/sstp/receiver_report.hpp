// receiver_report.hpp — RTCP-style loss measurement (paper Section 6.1).
//
// "SSTP uses measured packet loss rates using RTCP-style receiver reports"
// to drive the allocator. The receiver counts forward-path sequence numbers
// (data, summaries, and signatures share one seq space); each reporting
// interval it computes the interval loss fraction and folds it into an
// EWMA, which rides back to the sender in ReceiverReportMsg.
//
// Honest caveat under hostile channels: a duplicated packet increments the
// received count twice, and a packet reordered across an interval boundary
// is counted in the later interval — both bias the estimate low (the
// min(received, expected) clamp keeps it in range but cannot tell a
// duplicate from a recovered loss, the same ambiguity a real RTCP receiver
// faces without per-seq bookkeeping).
#pragma once

#include <algorithm>
#include <cstdint>

namespace sst::sstp {

/// Sequence-gap loss estimator with EWMA smoothing.
class LossEstimator {
 public:
  /// `alpha` is the EWMA weight of the newest interval. Intervals with fewer
  /// than `min_samples` expected packets are folded into the next interval
  /// instead of updating the estimate — tiny samples (a trailing repair or
  /// two) would otherwise swing the EWMA wildly.
  explicit LossEstimator(double alpha = 0.25, std::uint64_t min_samples = 8)
      : alpha_(alpha), min_samples_(min_samples) {}

  /// Records receipt of data sequence number `seq`.
  void on_seq(std::uint64_t seq) {
    if (!have_base_) {
      have_base_ = true;
      base_ = seq;
      max_seq_ = seq;
      received_ = 1;
      return;
    }
    max_seq_ = std::max(max_seq_, seq);
    ++received_;
  }

  /// Closes the current interval: returns {received, expected} and resets
  /// interval counters. The EWMA estimate is updated.
  struct Interval {
    std::uint64_t received = 0;
    std::uint64_t expected = 0;
  };
  Interval close_interval() {
    Interval out;
    if (!have_base_) return out;
    out.received = received_;
    out.expected = max_seq_ >= base_ ? max_seq_ - base_ + 1 : 0;
    if (out.expected < min_samples_) {
      // Too small to be meaningful: leave the counters accumulating into the
      // next interval and report the carried totals.
      return out;
    }
    const double interval_loss =
        1.0 - static_cast<double>(std::min(out.received, out.expected)) /
                  static_cast<double>(out.expected);
    estimate_ = seeded_ ? (1.0 - alpha_) * estimate_ + alpha_ * interval_loss
                        : interval_loss;
    seeded_ = true;
    // Next interval starts just past the highest seq seen.
    base_ = max_seq_ + 1;
    received_ = 0;
    return out;
  }

  /// Smoothed loss fraction in [0,1].
  [[nodiscard]] double estimate() const { return estimate_; }

  [[nodiscard]] bool has_data() const { return seeded_; }

 private:
  double alpha_;
  std::uint64_t min_samples_;
  bool have_base_ = false;
  bool seeded_ = false;
  std::uint64_t base_ = 0;
  std::uint64_t max_seq_ = 0;
  std::uint64_t received_ = 0;
  double estimate_ = 0.0;
};

}  // namespace sst::sstp
