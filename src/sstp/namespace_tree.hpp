// namespace_tree.hpp — the SSTP hierarchical data model (paper Section 6.2).
//
// "Each namespace node n is associated with a fixed-length summary or digest
// of the subtree rooted at it, computed recursively using the one-way hash
// function h: S(n) = right_edge(n) if n is a leaf-level ADU, and
// h(S(c1), ..., S(ck)) otherwise."
//
// Both endpoints maintain one of these trees. The sender's tree is fed by
// the application; the receiver's is reconstructed from the wire. Digest
// comparison at any node answers "is this whole subtree identical?" in O(1),
// which is what makes announcement-driven loss recovery scale to large data
// stores: one root summary per refresh instead of one announcement per
// record.
//
// Layout (see DESIGN.md, "Incremental digests and interned paths"): nodes
// live in a pooled flat vector addressed by 32-bit index; each node's
// children are a contiguous vector of {interned symbol, node index} pairs
// kept sorted by component *name* — the canonical order the wire and the
// digests depend on, identical to the std::map iteration order of the
// original representation (preserved verbatim in reference_tree.hpp).
// Digest maintenance is incremental: every mutation records the
// root-to-leaf spine it walked and marks exactly those nodes dirty;
// recomputation streams child summaries straight into one reused
// hash::Hasher with a per-symbol name-digest cache, materializing nothing.
// Digests are bit-identical to ReferenceTree's for every operation
// sequence (enforced by the digest-equivalence fuzz test).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "hash/digest.hpp"
#include "hash/hasher.hpp"
#include "sstp/path.hpp"

namespace sst::sstp {

/// Application meta-data tags on a node (paper: "the sender communicates
/// such hints to the receivers using application-level meta-data tags"),
/// used by receivers for interest filtering (e.g. "type=image/hires").
using MetaTags = std::vector<std::string>;

/// A leaf application data unit.
struct Adu {
  std::uint64_t version = 0;        // bumped on every update
  std::vector<std::uint8_t> data;   // full content (sender) or received
                                    // prefix buffer (receiver)
  std::uint64_t right_edge = 0;     // sender: bytes transmitted of this
                                    // version; receiver: contiguous bytes
                                    // received
  std::uint64_t total_size = 0;     // full size of this version
  MetaTags tags;

  /// Cached DataMsg wire size excluding the chunk payload (type byte, path,
  /// fixed fields, tags). 0 = not computed; reset whenever path-independent
  /// inputs (the tags) may have changed. Maintained by wire.cpp's
  /// data_msg_wire_size so the sender's per-announcement size arithmetic is
  /// O(1) with no trial encode.
  mutable std::uint32_t cached_header_size = 0;

  [[nodiscard]] bool complete() const { return right_edge >= total_size; }
};

/// Summary of one child, as carried in signature messages.
struct ChildSummary {
  std::string name;
  hash::Digest digest;
  bool is_leaf = false;
  MetaTags tags;
};

/// The namespace tree. Not thread-safe (single simulation thread).
class NamespaceTree {
 public:
  explicit NamespaceTree(hash::DigestAlgo algo = hash::DigestAlgo::kMd5);

  // -------------------------------------------------------------- mutation

  /// Creates or replaces the leaf ADU at `path` with a fresh version holding
  /// `data`. Intermediate internal nodes are created as needed. Fails (false)
  /// if `path` is the root or names an existing internal node.
  bool put(const Path& path, std::vector<std::uint8_t> data,
           MetaTags tags = {});

  /// Applies received bytes for `(path, version)` at `offset`. Creates the
  /// leaf if necessary; discards stale versions; resets the buffer when a
  /// newer version arrives. Returns true if state changed.
  bool apply_chunk(const Path& path, std::uint64_t version,
                   std::uint64_t total_size, std::uint64_t offset,
                   std::span<const std::uint8_t> chunk, const MetaTags& tags);

  /// Marks `bytes_sent` bytes of the leaf's current version as transmitted
  /// (sender-side right-edge advance). Returns false if no such leaf.
  bool advance_right_edge(const Path& path, std::uint64_t bytes_sent);

  /// Removes the node at `path` (and its whole subtree). Empty ancestors are
  /// pruned (single pass over the recorded spine). Returns false if no such
  /// node.
  bool remove(const Path& path);

  // ---------------------------------------------------------------- lookup

  /// True if a node (leaf or internal) exists at `path`.
  [[nodiscard]] bool exists(const Path& path) const;

  /// Leaf ADU at `path`, or nullptr.
  [[nodiscard]] const Adu* find(const Path& path) const;

  /// Digest of the subtree rooted at `path` (cached; only spine-dirty nodes
  /// recompute). Returns nullopt if the node does not exist.
  [[nodiscard]] std::optional<hash::Digest> digest(const Path& path) const;

  /// Root digest (always defined; empty tree has a stable digest).
  [[nodiscard]] hash::Digest root_digest() const;

  /// Child summaries of the internal node at `path` (empty for leaves or
  /// missing nodes), ordered by name — the payload of signature messages.
  [[nodiscard]] std::vector<ChildSummary> children(const Path& path) const;

  /// Visits every leaf (path, adu) under `path` in name order. Iterative;
  /// `fn` is any callable (no std::function indirection) and receives a
  /// Path that is mutated in place between calls — copy it to keep it.
  template <class Fn>
  void for_each_leaf(const Path& path, Fn&& fn) const {
    const NodeIdx start = walk(path);
    if (start == kNil) return;
    if (pool_[start].adu.has_value()) {
      fn(path, *pool_[start].adu);
      return;
    }
    Path at = path;  // extended/truncated in place during the sweep
    struct Frame {
      NodeIdx node;
      std::uint32_t next = 0;  // index of the next child to visit
    };
    std::vector<Frame> stack;
    stack.push_back({start});
    while (!stack.empty()) {
      Frame& f = stack.back();
      const Node& n = pool_[f.node];
      if (f.next == n.children.size()) {
        stack.pop_back();
        if (!stack.empty()) at.pop();  // undo the descent's push
        continue;
      }
      const ChildRef c = n.children[f.next++];
      const Node& child = pool_[c.node];
      at.push(c.sym);
      if (child.adu.has_value()) {
        fn(static_cast<const Path&>(at), *child.adu);
        at.pop();
      } else {
        stack.push_back({c.node});
      }
    }
  }

  /// Visits (name, is_leaf, tags-or-null) for each child of the node at
  /// `path` in canonical order, materializing nothing — the wire layer uses
  /// this to price signature replies without building them.
  template <class Fn>
  void for_each_child(const Path& path, Fn&& fn) const {
    const NodeIdx idx = walk(path);
    if (idx == kNil) return;
    const Interner& in = Interner::global();
    for (const ChildRef& c : pool_[idx].children) {
      const Node& child = pool_[c.node];
      const bool is_leaf = child.adu.has_value();
      fn(in.name(c.sym), is_leaf, is_leaf ? &child.adu->tags : nullptr);
    }
  }

  /// Number of leaves in the whole tree.
  [[nodiscard]] std::size_t leaf_count() const { return leaf_count_; }

  [[nodiscard]] hash::DigestAlgo algo() const { return algo_; }

  /// Appends every violated structural invariant to `out` (sst::check):
  /// pool partition (every node reachable from the root or on the free
  /// list, never both), acyclic child links with children strictly
  /// name-sorted, freed nodes fully reset, leaf_count_ accounting, and
  /// dirty-spine containment (a clean node never has a dirty descendant —
  /// the property incremental digest maintenance rests on). O(n log n).
  void check_invariants(check::Violations& out) const;

 private:
  friend struct check::Corrupter;
  using NodeIdx = std::uint32_t;
  static constexpr NodeIdx kNil = 0xFFFFFFFFu;
  /// Child sets up to this size are looked up by linear symbol scan (pure
  /// integer compares over contiguous 8-byte pairs); larger sets binary
  /// search by name.
  static constexpr std::size_t kLinearScanMax = 16;

  struct ChildRef {
    Symbol sym;
    NodeIdx node;
  };

  struct Node {
    // Internal node iff adu == nullopt.
    std::optional<Adu> adu;
    std::vector<ChildRef> children;  // sorted by component name (canonical)
    mutable hash::Digest cached_digest;
    mutable bool digest_valid = false;
  };

  [[nodiscard]] NodeIdx alloc_node();
  void free_node(NodeIdx idx);
  [[nodiscard]] NodeIdx find_child(NodeIdx parent, Symbol sym) const;
  /// Inserts a fresh child under `parent` at its canonical (name-sorted)
  /// position. The symbol must not already be present.
  NodeIdx insert_child(NodeIdx parent, Symbol sym);
  void erase_child(NodeIdx parent, Symbol sym);

  /// Walks to `path`; kNil if missing. Does not touch the spine.
  [[nodiscard]] NodeIdx walk(const Path& path) const;
  /// Walks to `path` recording the node spine (root first, target last)
  /// into spine_; kNil if missing.
  [[nodiscard]] NodeIdx walk_record(const Path& path);
  /// Walks to `path` creating internal nodes, recording the spine; kNil if
  /// an existing leaf blocks the way.
  [[nodiscard]] NodeIdx walk_create(const Path& path);
  /// Marks every node on the recorded spine digest-dirty.
  void mark_spine_dirty();

  [[nodiscard]] const hash::Digest& node_digest(NodeIdx idx) const;
  [[nodiscard]] const hash::Digest& name_digest(Symbol sym) const;

  /// SST_CHECK hook: self-audit every 512th mutation.
  void maybe_audit() {
#if SST_CHECK_ENABLED
    if (check::due(audit_tick_, 512)) {
      check::Violations v;
      check_invariants(v);
      check::report("NamespaceTree", v);
    }
#endif
  }

  hash::DigestAlgo algo_;
  std::uint64_t audit_tick_ = 0;    // SST_CHECK cadence counter
  std::vector<Node> pool_;          // index 0 is the root, never freed
  std::vector<NodeIdx> free_;      // recycled pool slots (capacity kept)
  std::vector<NodeIdx> spine_;     // scratch: last mutation's walk
  std::size_t leaf_count_ = 0;
  // Highest version ever removed; fresh leaves start above it so versions
  // stay monotone across remove/re-publish incarnations of a path.
  std::uint64_t version_floor_ = 0;

  mutable hash::Hasher hasher_;
  // Per-symbol digest of the component name, so recomputing an internal
  // node never re-hashes child names (the dominant MD5 cost at scale).
  mutable std::vector<hash::Digest> name_digests_;
  mutable std::vector<std::uint8_t> name_digest_valid_;
};

}  // namespace sst::sstp
