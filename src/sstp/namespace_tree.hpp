// namespace_tree.hpp — the SSTP hierarchical data model (paper Section 6.2).
//
// "Each namespace node n is associated with a fixed-length summary or digest
// of the subtree rooted at it, computed recursively using the one-way hash
// function h: S(n) = right_edge(n) if n is a leaf-level ADU, and
// h(S(c1), ..., S(ck)) otherwise."
//
// Both endpoints maintain one of these trees. The sender's tree is fed by
// the application; the receiver's is reconstructed from the wire. Digest
// comparison at any node answers "is this whole subtree identical?" in O(1),
// which is what makes announcement-driven loss recovery scale to large data
// stores: one root summary per refresh instead of one announcement per
// record.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hash/digest.hpp"
#include "sstp/path.hpp"

namespace sst::sstp {

/// Application meta-data tags on a node (paper: "the sender communicates
/// such hints to the receivers using application-level meta-data tags"),
/// used by receivers for interest filtering (e.g. "type=image/hires").
using MetaTags = std::vector<std::string>;

/// A leaf application data unit.
struct Adu {
  std::uint64_t version = 0;        // bumped on every update
  std::vector<std::uint8_t> data;   // full content (sender) or received
                                    // prefix buffer (receiver)
  std::uint64_t right_edge = 0;     // sender: bytes transmitted of this
                                    // version; receiver: contiguous bytes
                                    // received
  std::uint64_t total_size = 0;     // full size of this version
  MetaTags tags;

  [[nodiscard]] bool complete() const { return right_edge >= total_size; }
};

/// Summary of one child, as carried in signature messages.
struct ChildSummary {
  std::string name;
  hash::Digest digest;
  bool is_leaf = false;
  MetaTags tags;
};

/// The namespace tree. Not thread-safe (single simulation thread).
class NamespaceTree {
 public:
  explicit NamespaceTree(hash::DigestAlgo algo = hash::DigestAlgo::kMd5)
      : algo_(algo), root_(std::make_unique<Node>()) {}

  // -------------------------------------------------------------- mutation

  /// Creates or replaces the leaf ADU at `path` with a fresh version holding
  /// `data`. Intermediate internal nodes are created as needed. Fails (false)
  /// if `path` is the root or names an existing internal node.
  bool put(const Path& path, std::vector<std::uint8_t> data,
           MetaTags tags = {});

  /// Applies received bytes for `(path, version)` at `offset`. Creates the
  /// leaf if necessary; discards stale versions; resets the buffer when a
  /// newer version arrives. Returns true if state changed.
  bool apply_chunk(const Path& path, std::uint64_t version,
                   std::uint64_t total_size, std::uint64_t offset,
                   std::vector<std::uint8_t> chunk, const MetaTags& tags);

  /// Marks `bytes_sent` bytes of the leaf's current version as transmitted
  /// (sender-side right-edge advance). Returns false if no such leaf.
  bool advance_right_edge(const Path& path, std::uint64_t bytes_sent);

  /// Removes the node at `path` (and its whole subtree). Empty ancestors are
  /// pruned. Returns false if no such node.
  bool remove(const Path& path);

  // ---------------------------------------------------------------- lookup

  /// True if a node (leaf or internal) exists at `path`.
  [[nodiscard]] bool exists(const Path& path) const;

  /// Leaf ADU at `path`, or nullptr.
  [[nodiscard]] const Adu* find(const Path& path) const;

  /// Digest of the subtree rooted at `path` (cached, recomputed lazily).
  /// Returns nullopt if the node does not exist.
  [[nodiscard]] std::optional<hash::Digest> digest(const Path& path) const;

  /// Root digest (always defined; empty tree has a stable digest).
  [[nodiscard]] hash::Digest root_digest() const;

  /// Child summaries of the internal node at `path` (empty for leaves or
  /// missing nodes), ordered by name — the payload of signature messages.
  [[nodiscard]] std::vector<ChildSummary> children(const Path& path) const;

  /// Visits every leaf (path, adu) under `path` in name order.
  void for_each_leaf(
      const Path& path,
      const std::function<void(const Path&, const Adu&)>& fn) const;

  /// Number of leaves in the whole tree.
  [[nodiscard]] std::size_t leaf_count() const { return leaf_count_; }

  [[nodiscard]] hash::DigestAlgo algo() const { return algo_; }

 private:
  struct Node {
    // Internal node iff adu == nullopt.
    std::optional<Adu> adu;
    std::map<std::string, std::unique_ptr<Node>> children;
    mutable bool digest_valid = false;
    mutable hash::Digest cached_digest;
  };

  [[nodiscard]] Node* walk(const Path& path) const;
  /// Walks to `path`, creating internal nodes; returns null if a leaf blocks
  /// the way.
  Node* walk_create(const Path& path);
  void invalidate(const Path& path);
  [[nodiscard]] const hash::Digest& node_digest(const Node& n) const;
  void for_each_leaf_impl(
      const Path& at, const Node& n,
      const std::function<void(const Path&, const Adu&)>& fn) const;

  hash::DigestAlgo algo_;
  std::unique_ptr<Node> root_;
  std::size_t leaf_count_ = 0;
};

}  // namespace sst::sstp
