// reference_tree.hpp — executable specification of the namespace digests.
//
// This is the original std::map-based NamespaceTree kept verbatim (modulo
// the Path accessor spelling): per-node child maps keyed by component
// strings, lazy top-down digest recursion that materializes one
// vector<Digest> per internal node, and std::function leaf iteration. It
// exists for two reasons:
//   1. the digest-equivalence fuzz test replays every randomized operation
//      sequence against both trees and requires bit-identical digests at
//      every node — the production NamespaceTree's incremental maintenance
//      is only correct if it can never be distinguished from this;
//   2. bench_sstp_hotpath runs the same scenarios against both, so the
//      committed BENCH_sstp_hotpath.json always carries baseline-vs-
//      optimized numbers regardless of what machine regenerates it.
// Do not optimize this file; its value is being obviously correct.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hash/digest.hpp"
#include "sstp/namespace_tree.hpp"
#include "sstp/path.hpp"

namespace sst::sstp {

/// The specification tree. Same observable behaviour as NamespaceTree.
class ReferenceTree {
 public:
  explicit ReferenceTree(hash::DigestAlgo algo = hash::DigestAlgo::kMd5)
      : algo_(algo), root_(std::make_unique<Node>()) {}

  bool put(const Path& path, std::vector<std::uint8_t> data,
           MetaTags tags = {});
  bool apply_chunk(const Path& path, std::uint64_t version,
                   std::uint64_t total_size, std::uint64_t offset,
                   std::span<const std::uint8_t> chunk, const MetaTags& tags);
  bool advance_right_edge(const Path& path, std::uint64_t bytes_sent);
  bool remove(const Path& path);

  [[nodiscard]] bool exists(const Path& path) const;
  [[nodiscard]] const Adu* find(const Path& path) const;
  [[nodiscard]] std::optional<hash::Digest> digest(const Path& path) const;
  [[nodiscard]] hash::Digest root_digest() const;
  [[nodiscard]] std::vector<ChildSummary> children(const Path& path) const;
  void for_each_leaf(
      const Path& path,
      const std::function<void(const Path&, const Adu&)>& fn) const;
  [[nodiscard]] std::size_t leaf_count() const { return leaf_count_; }
  [[nodiscard]] hash::DigestAlgo algo() const { return algo_; }

 private:
  struct Node {
    std::optional<Adu> adu;
    std::map<std::string, std::unique_ptr<Node>> children;
    mutable bool digest_valid = false;
    mutable hash::Digest cached_digest;
  };

  [[nodiscard]] Node* walk(const Path& path) const;
  Node* walk_create(const Path& path);
  void invalidate(const Path& path);
  [[nodiscard]] const hash::Digest& node_digest(const Node& n) const;
  void for_each_leaf_impl(
      const Path& at, const Node& n,
      const std::function<void(const Path&, const Adu&)>& fn) const;

  hash::DigestAlgo algo_;
  std::unique_ptr<Node> root_;
  std::size_t leaf_count_ = 0;
  // Highest version ever removed; fresh leaves start above it so versions
  // stay monotone across remove/re-publish incarnations of a path.
  std::uint64_t version_floor_ = 0;
};

}  // namespace sst::sstp
