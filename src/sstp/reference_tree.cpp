#include "sstp/reference_tree.hpp"

#include <algorithm>

namespace sst::sstp {

ReferenceTree::Node* ReferenceTree::walk(const Path& path) const {
  Node* n = root_.get();
  for (std::size_t i = 0; i < path.depth(); ++i) {
    const auto it = n->children.find(std::string(path.component(i)));
    if (it == n->children.end()) return nullptr;
    n = it->second.get();
  }
  return n;
}

ReferenceTree::Node* ReferenceTree::walk_create(const Path& path) {
  Node* n = root_.get();
  for (std::size_t i = 0; i < path.depth(); ++i) {
    if (n->adu.has_value()) return nullptr;  // a leaf blocks the way
    auto& slot = n->children[std::string(path.component(i))];
    if (!slot) slot = std::make_unique<Node>();
    n = slot.get();
  }
  return n;
}

void ReferenceTree::invalidate(const Path& path) {
  Node* n = root_.get();
  n->digest_valid = false;
  for (std::size_t i = 0; i < path.depth(); ++i) {
    const auto it = n->children.find(std::string(path.component(i)));
    if (it == n->children.end()) return;
    n = it->second.get();
    n->digest_valid = false;
  }
}

bool ReferenceTree::put(const Path& path, std::vector<std::uint8_t> data,
                        MetaTags tags) {
  if (path.is_root()) return false;
  Node* n = walk_create(path);
  if (n == nullptr) return false;
  if (!n->children.empty()) return false;  // already an internal node
  const bool was_leaf = n->adu.has_value();
  // Fresh leaves start above the version floor so a re-published path can
  // never alias a removed incarnation's versions (see NamespaceTree::put).
  const std::uint64_t next_version =
      was_leaf ? n->adu->version + 1 : version_floor_ + 1;
  Adu adu;
  adu.version = next_version;
  adu.total_size = data.size();
  adu.data = std::move(data);
  adu.right_edge = 0;
  adu.tags = std::move(tags);
  n->adu = std::move(adu);
  if (!was_leaf) ++leaf_count_;
  invalidate(path);
  return true;
}

bool ReferenceTree::apply_chunk(const Path& path, std::uint64_t version,
                                std::uint64_t total_size, std::uint64_t offset,
                                std::span<const std::uint8_t> chunk,
                                const MetaTags& tags) {
  if (path.is_root()) return false;
  Node* n = walk_create(path);
  if (n == nullptr || !n->children.empty()) return false;
  if (!n->adu.has_value()) {
    n->adu = Adu{};
    ++leaf_count_;
  }
  Adu& adu = *n->adu;
  if (version < adu.version) return false;  // stale
  if (version > adu.version) {
    adu.version = version;
    adu.data.clear();
    adu.right_edge = 0;
    adu.total_size = total_size;
    adu.tags = tags;
  }
  if (adu.data.size() < total_size) adu.data.resize(total_size, 0);

  const std::uint64_t end = offset + chunk.size();
  if (end > adu.data.size()) return false;  // malformed chunk
  std::copy(chunk.begin(), chunk.end(),
            adu.data.begin() + static_cast<std::ptrdiff_t>(offset));
  if (offset <= adu.right_edge && end > adu.right_edge) {
    adu.right_edge = end;
  }
  invalidate(path);
  return true;
}

bool ReferenceTree::advance_right_edge(const Path& path,
                                       std::uint64_t bytes_sent) {
  Node* n = walk(path);
  if (n == nullptr || !n->adu.has_value()) return false;
  const std::uint64_t edge = std::min<std::uint64_t>(
      n->adu->right_edge + bytes_sent, n->adu->total_size);
  if (edge != n->adu->right_edge) {
    n->adu->right_edge = edge;
    invalidate(path);
  }
  return true;
}

bool ReferenceTree::remove(const Path& path) {
  if (path.is_root()) return false;
  Node* parent = walk(path.parent());
  if (parent == nullptr) return false;
  const auto it = parent->children.find(std::string(path.leaf_name()));
  if (it == parent->children.end()) return false;

  std::size_t removed = 0;
  const std::function<void(const Node&)> count = [&](const Node& n) {
    if (n.adu.has_value()) {
      ++removed;
      if (n.adu->version > version_floor_) version_floor_ = n.adu->version;
    }
    for (const auto& [name, child] : n.children) count(*child);
  };
  count(*it->second);
  parent->children.erase(it);
  leaf_count_ -= removed;
  invalidate(path.parent());

  // The O(depth^2) ancestor prune the production tree fixed — kept here
  // because this file is the unoptimized specification.
  Path p = path.parent();
  while (!p.is_root()) {
    Node* n = walk(p);
    if (n == nullptr || n->adu.has_value() || !n->children.empty()) break;
    Node* gp = walk(p.parent());
    gp->children.erase(std::string(p.leaf_name()));
    p = p.parent();
  }
  return true;
}

bool ReferenceTree::exists(const Path& path) const {
  return walk(path) != nullptr;
}

const Adu* ReferenceTree::find(const Path& path) const {
  const Node* n = walk(path);
  if (n == nullptr || !n->adu.has_value()) return nullptr;
  return &*n->adu;
}

const hash::Digest& ReferenceTree::node_digest(const Node& n) const {
  if (n.digest_valid) return n.cached_digest;
  if (n.adu.has_value()) {
    n.cached_digest =
        hash::Digest::of_leaf(n.adu->right_edge, n.adu->version, algo_);
  } else {
    // std::map iterates children in name order, so the digest is canonical.
    std::vector<hash::Digest> child_digests;
    child_digests.reserve(n.children.size());
    for (const auto& [name, child] : n.children) {
      child_digests.push_back(hash::Digest::of_string(name, algo_));
      child_digests.push_back(node_digest(*child));
    }
    n.cached_digest = hash::Digest::of_children(child_digests, algo_);
  }
  n.digest_valid = true;
  return n.cached_digest;
}

std::optional<hash::Digest> ReferenceTree::digest(const Path& path) const {
  const Node* n = walk(path);
  if (n == nullptr) return std::nullopt;
  return node_digest(*n);
}

hash::Digest ReferenceTree::root_digest() const {
  return node_digest(*root_);
}

std::vector<ChildSummary> ReferenceTree::children(const Path& path) const {
  std::vector<ChildSummary> out;
  const Node* n = walk(path);
  if (n == nullptr) return out;
  out.reserve(n->children.size());
  for (const auto& [name, child] : n->children) {
    ChildSummary cs;
    cs.name = name;
    cs.digest = node_digest(*child);
    cs.is_leaf = child->adu.has_value();
    if (cs.is_leaf) cs.tags = child->adu->tags;
    out.push_back(std::move(cs));
  }
  return out;
}

void ReferenceTree::for_each_leaf_impl(
    const Path& at, const Node& n,
    const std::function<void(const Path&, const Adu&)>& fn) const {
  if (n.adu.has_value()) {
    fn(at, *n.adu);
    return;
  }
  for (const auto& [name, child] : n.children) {
    for_each_leaf_impl(at.child(name), *child, fn);
  }
}

void ReferenceTree::for_each_leaf(
    const Path& path,
    const std::function<void(const Path&, const Adu&)>& fn) const {
  const Node* n = walk(path);
  if (n == nullptr) return;
  for_each_leaf_impl(path, *n, fn);
}

}  // namespace sst::sstp
