// session.hpp — one-call wiring of an SSTP session in the simulator.
//
// Builds a sender and N receivers, connects them through lossy forward and
// rate-limited reverse (feedback) paths, optionally installs the
// profile-driven allocator, and measures system consistency over the
// namespace trees (sampled; the trees' cached digests make each sample
// cheap). Examples, integration tests, and the SSTP benches all ride on
// this.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/channel.hpp"
#include "net/link.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "sstp/allocator.hpp"
#include "sstp/receiver.hpp"
#include "sstp/sender.hpp"
#include "stats/time_average.hpp"

namespace sst::sstp {

/// Session wiring parameters.
struct SessionConfig {
  SenderConfig sender;
  ReceiverConfig receiver;
  std::size_t num_receivers = 1;

  sim::Rate mu_fb = sim::kbps(15);  // feedback capacity per receiver
  double loss_rate = 0.1;           // forward loss
  double fb_loss_rate = -1.0;       // reverse loss; <0 copies loss_rate
  sim::Duration delay = 0.01;
  sim::Duration jitter = 0.0;
  std::uint64_t seed = 1;

  bool use_allocator = false;
  BandwidthAllocator::Config allocator;

  sim::Duration sample_interval = 0.5;  // consistency sampling cadence
};

/// A fully wired simulated SSTP session.
class Session {
 public:
  Session(sim::Simulator& sim, SessionConfig config);

  [[nodiscard]] Sender& sender() { return *sender_; }
  [[nodiscard]] Receiver& receiver(std::size_t i = 0) {
    return *receivers_.at(i);
  }
  [[nodiscard]] std::size_t receiver_count() const {
    return receivers_.size();
  }

  /// Fraction of the sender's leaves that every receiver holds complete at
  /// the current version, averaged over receivers (1.0 for an empty store).
  [[nodiscard]] double instantaneous_consistency() const;

  /// Time average of the sampled consistency since construction (or the last
  /// reset).
  [[nodiscard]] double average_consistency();
  void reset_consistency_stats();

  /// Observed forward-channel loss rate (ground truth, for comparison with
  /// the receivers' estimates).
  [[nodiscard]] double observed_loss() const {
    return data_channel_->stats().observed_loss_rate();
  }

  /// Forward bytes offered to the channel (data + summaries + signatures).
  [[nodiscard]] double forward_bytes() const {
    return data_channel_->stats().bytes_sent;
  }
  /// Feedback bytes offered across all reverse paths.
  [[nodiscard]] double feedback_bytes() const;

 private:
  void sample();

  sim::Simulator* sim_;
  SessionConfig config_;
  std::unique_ptr<net::Channel<WireBytes>> data_channel_;
  std::unique_ptr<Sender> sender_;
  std::vector<std::unique_ptr<Receiver>> receivers_;
  std::vector<std::unique_ptr<net::Link<WireBytes>>> fb_links_;
  std::vector<std::unique_ptr<net::Channel<WireBytes>>> fb_channels_;
  sim::PeriodicTimer sampler_;
  stats::TimeAverage consistency_;
};

}  // namespace sst::sstp
