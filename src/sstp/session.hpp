// session.hpp — one-call wiring of an SSTP session in the simulator.
//
// Builds a sender and N receivers, connects them through lossy forward and
// rate-limited reverse (feedback) paths, optionally installs the
// profile-driven allocator, and measures system consistency over the
// namespace trees (sampled; the trees' cached digests make each sample
// cheap). Examples, integration tests, and the SSTP benches all ride on
// this.
//
// Membership is dynamic: receivers may join mid-run (add_receiver — they
// converge purely from summaries and recursive-descent repair, with no
// catch-up protocol) and leave (detach_receiver); consistency averages only
// the currently-joined receivers. The sst::fault injector drives the
// crash/partition/extra-loss/bandwidth hooks.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/meanfield.hpp"
#include "net/channel.hpp"
#include "net/hostile.hpp"
#include "net/link.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "sstp/allocator.hpp"
#include "sstp/receiver.hpp"
#include "sstp/sender.hpp"
#include "stats/time_average.hpp"

namespace sst::sstp {

/// Session wiring parameters.
struct SessionConfig {
  SenderConfig sender;
  ReceiverConfig receiver;
  std::size_t num_receivers = 1;

  sim::Rate mu_fb = sim::kbps(15);  // feedback capacity per receiver
  double loss_rate = 0.1;           // forward loss
  double fb_loss_rate = -1.0;       // reverse loss; <0 copies loss_rate
  sim::Duration delay = 0.01;
  sim::Duration jitter = 0.0;
  sim::Duration fb_delay = -1.0;    // reverse delay; <0 copies delay
  sim::Duration fb_jitter = -1.0;   // reverse jitter; <0 copies jitter
  std::uint64_t seed = 1;

  // Hostile-channel behavior (reordering / duplication / scripted
  // partitions), applied to the forward path and, independently, to each
  // receiver's feedback path. Default-inactive configs add no stages, so
  // existing FIFO sessions are event-for-event unchanged.
  net::HostileConfig fwd_hostile;
  net::HostileConfig fb_hostile;

  bool use_allocator = false;
  BandwidthAllocator::Config allocator;

  sim::Duration sample_interval = 0.5;  // consistency sampling cadence
  double catch_up_threshold = 0.9;      // joiner counts as converged at this

  /// Mean-field cohort tier: when > 0, the session carries an aggregate
  /// fluid population of this many receivers alongside the num_receivers
  /// tracked discrete ones. The cohort is advanced in lockstep with
  /// simulated time and blended into (instantaneous and averaged)
  /// consistency and repair_traffic() with population weights. Workload and
  /// bandwidth rates for the cohort come from `fluid`; the session
  /// overrides its cohort size, loss rates, and delay to match the
  /// configured channels.
  double fluid_cohort = 0.0;
  analysis::FluidParams fluid;

  /// Sharded-engine crew size, mirroring ExperimentConfig::shards. SSTP wire
  /// sessions run on the caller's single Simulator: the sender, allocator,
  /// and namespace are shared mutable state with zero-latency coupling to
  /// every receiver, so there is no positive conservative-lookahead window
  /// to exploit (see core/sharded.hpp). Values > 1 warn once and fall back
  /// to the single-queue engine rather than crash.
  std::size_t shards = 1;
};

/// A fully wired simulated SSTP session.
class Session {
 public:
  Session(sim::Simulator& sim, SessionConfig config);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] Sender& sender() { return *sender_; }
  [[nodiscard]] Receiver& receiver(std::size_t i = 0) {
    return *receivers_.at(i).receiver;
  }
  [[nodiscard]] std::size_t receiver_count() const {
    return receivers_.size();
  }

  /// Fraction of the sender's leaves that every currently-joined receiver
  /// holds complete at the current version, averaged over those receivers
  /// (1.0 for an empty store or an empty session).
  [[nodiscard]] double instantaneous_consistency() const;

  /// Receiver i's own such fraction.
  [[nodiscard]] double receiver_consistency(std::size_t i) const;

  /// Time average of the sampled consistency since construction (or the last
  /// reset).
  [[nodiscard]] double average_consistency();
  void reset_consistency_stats();

  // ------------------------------------------------ membership and faults

  /// Late join: adds a brand-new receiver (empty tree) mid-run; returns its
  /// index. It converges from summaries alone; its catch-up latency — time
  /// from joining until its consistency first samples at-or-above
  /// catch_up_threshold — is recorded (resolution: sample_interval).
  std::size_t add_receiver();

  /// Receiver leave: receiver `i` stops receiving, repairing, and counting
  /// toward consistency. Irreversible (a rejoin is a new receiver).
  void detach_receiver(std::size_t i);

  [[nodiscard]] bool receiver_active(std::size_t i) const {
    return receivers_.at(i).active;
  }

  /// Catch-up latency of receiver `i` (negative while still converging).
  [[nodiscard]] double catch_up_latency(std::size_t i) const {
    return receivers_.at(i).catch_up_latency;
  }

  /// Sender crash/restart (Sender::pause/resume plus nothing else — the
  /// whole point is that recovery needs no special code).
  void crash_sender() { sender_->pause(); }
  void restart_sender() { sender_->resume(); }
  [[nodiscard]] bool sender_crashed() const { return sender_->paused(); }

  /// Partitions receiver `i` (both directions) or heals it.
  void set_partition(std::size_t i, bool down);
  void set_partition_all(bool down);

  /// Layers transient extra loss on receiver i's forward path (0 restores).
  void set_extra_loss(std::size_t i, double p);
  void set_extra_loss_all(double p);

  /// Scales the sender's bandwidth to factor * configured mu_data.
  void set_bandwidth_factor(double factor);

  /// Cumulative protocol repair effort — repairs + signature replies sent
  /// plus queries + NACKs received-side — a RecoveryTracker traffic counter.
  [[nodiscard]] double repair_traffic() const;

  // ----------------------------------------------------------- statistics

  /// Observed forward-channel loss rate (ground truth, for comparison with
  /// the receivers' estimates).
  [[nodiscard]] double observed_loss() const {
    return data_channel_->stats().observed_loss_rate();
  }

  /// The mean-field cohort tier, or nullptr when fluid_cohort == 0.
  [[nodiscard]] const analysis::FluidIntegrator* fluid_cohort() const {
    return fluid_.get();
  }

  /// Forward bytes offered to the channel (data + summaries + signatures).
  [[nodiscard]] double forward_bytes() const {
    return data_channel_->stats().bytes_sent;
  }
  /// Feedback bytes offered across all reverse paths.
  [[nodiscard]] double feedback_bytes() const;

 private:
  struct ReceiverRig {
    std::unique_ptr<Receiver> receiver;
    std::unique_ptr<net::Link<WireBytes>> fb_link;
    std::unique_ptr<net::Channel<WireBytes>> fb_channel;
    std::unique_ptr<net::HostileChannel<WireBytes>> fb_hostile;
    net::SwitchableLoss* fwd_switch = nullptr;
    net::SwitchableLoss* rev_switch = nullptr;
    bool active = true;
    double joined_at = 0.0;
    bool catching_up = true;
    double catch_up_latency = -1.0;
  };

  std::size_t add_receiver_rig();
  void sample();
  void settle_catch_ups();

  sim::Simulator* sim_;
  SessionConfig config_;
  sim::Rng root_;
  double fb_loss_ = 0.0;
  std::unique_ptr<net::Channel<WireBytes>> data_channel_;
  std::unique_ptr<net::HostileChannel<WireBytes>> fwd_hostile_;
  std::unique_ptr<Sender> sender_;
  std::vector<ReceiverRig> receivers_;
  sim::PeriodicTimer sampler_;
  stats::TimeAverage consistency_;
  std::unique_ptr<analysis::FluidIntegrator> fluid_;  // cohort tier
};

}  // namespace sst::sstp
