#include "sstp/interner.hpp"

#include <mutex>
#include <stdexcept>

namespace sst::sstp {

Interner& Interner::global() {
  static Interner instance;
  return instance;
}

Symbol Interner::intern(std::string_view name) {
  {
    std::shared_lock lock(mu_);
    const auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock lock(mu_);
  // Re-check: another thread may have interned it between the locks.
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;

  const Symbol id = count_.load(std::memory_order_relaxed);
  const std::size_t chunk_idx = id >> kChunkBits;
  if (chunk_idx >= kMaxChunks) {
    throw std::length_error("sstp::Interner symbol space exhausted");
  }
  store_.emplace_back(name);
  const std::string* stored = &store_.back();
  Chunk* chunk = chunks_[chunk_idx].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = &chunk_store_.emplace_back();
    chunks_[chunk_idx].store(chunk, std::memory_order_release);
  }
  chunk->names[id & kChunkMask].store(stored, std::memory_order_release);
  ids_.emplace(std::string_view(*stored), id);
  count_.store(id + 1, std::memory_order_release);
  maybe_audit_locked();
  return id;
}

void Interner::check_invariants_locked(check::Violations& out) const {
  const std::size_t n = size();
  if (ids_.size() != n) {
    out.push_back("ids_ holds " + std::to_string(ids_.size()) +
                  " entries for " + std::to_string(n) + " issued symbols");
  }
  for (Symbol id = 0; id < n; ++id) {
    const Chunk* chunk =
        chunks_[id >> kChunkBits].load(std::memory_order_acquire);
    if (chunk == nullptr) {
      out.push_back("symbol " + std::to_string(id) +
                    " has no published chunk");
      continue;
    }
    const std::string* stored =
        chunk->names[id & kChunkMask].load(std::memory_order_acquire);
    if (stored == nullptr) {
      out.push_back("symbol " + std::to_string(id) +
                    " has no published name");
      continue;
    }
    // Bijectivity: the rendered name must map back to exactly this id.
    const auto it = ids_.find(std::string_view(*stored));
    if (it == ids_.end()) {
      out.push_back("name of symbol " + std::to_string(id) +
                    " missing from the id map");
    } else if (it->second != id) {
      out.push_back("symbol " + std::to_string(id) + " renders to '" +
                    *stored + "' which maps back to " +
                    std::to_string(it->second));
    }
  }
}

void Interner::check_invariants(check::Violations& out) const {
  std::shared_lock lock(mu_);
  check_invariants_locked(out);
}

}  // namespace sst::sstp
