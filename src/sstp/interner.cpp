#include "sstp/interner.hpp"

#include <mutex>
#include <stdexcept>

namespace sst::sstp {

Interner& Interner::global() {
  static Interner instance;
  return instance;
}

Symbol Interner::intern(std::string_view name) {
  {
    std::shared_lock lock(mu_);
    const auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock lock(mu_);
  // Re-check: another thread may have interned it between the locks.
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;

  const Symbol id = count_.load(std::memory_order_relaxed);
  const std::size_t chunk_idx = id >> kChunkBits;
  if (chunk_idx >= kMaxChunks) {
    throw std::length_error("sstp::Interner symbol space exhausted");
  }
  store_.emplace_back(name);
  const std::string* stored = &store_.back();
  Chunk* chunk = chunks_[chunk_idx].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = &chunk_store_.emplace_back();
    chunks_[chunk_idx].store(chunk, std::memory_order_release);
  }
  chunk->names[id & kChunkMask].store(stored, std::memory_order_release);
  ids_.emplace(std::string_view(*stored), id);
  count_.store(id + 1, std::memory_order_release);
  return id;
}

}  // namespace sst::sstp
