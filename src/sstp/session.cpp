#include "sstp/session.hpp"

#include <cstdio>

#include "net/delay.hpp"
#include "net/loss.hpp"

namespace sst::sstp {

namespace {

// Wrapped in SwitchableLoss so faults can act on the live run; the wrapper
// never draws from its own RNG until a fault fires, so it is draw-for-draw
// invisible in fault-free runs.
std::unique_ptr<net::SwitchableLoss> make_loss(double rate, sim::Rng rng,
                                               sim::Rng switch_rng) {
  std::unique_ptr<net::LossModel> base;
  if (rate <= 0.0) {
    base = std::make_unique<net::NoLoss>();
  } else {
    base = std::make_unique<net::BernoulliLoss>(rate, rng);
  }
  return std::make_unique<net::SwitchableLoss>(std::move(base), switch_rng);
}

std::unique_ptr<net::DelayModel> make_delay(sim::Duration delay,
                                            sim::Duration jitter,
                                            sim::Rng rng) {
  if (jitter > 0.0) {
    return std::make_unique<net::UniformJitterDelay>(delay, jitter, rng);
  }
  return std::make_unique<net::FixedDelay>(delay);
}

}  // namespace

Session::Session(sim::Simulator& sim, SessionConfig config)
    : sim_(&sim),
      config_(config),
      root_(config_.seed),
      fb_loss_(config_.fb_loss_rate < 0 ? config_.loss_rate
                                        : config_.fb_loss_rate),
      sampler_(sim),
      consistency_(sim.now(), 1.0) {
  if (config_.shards > 1) {
    std::fprintf(stderr,
                 "sstp: shards=%zu unsupported for wire sessions (shared "
                 "sender/allocator state has no lookahead window); using the "
                 "single-queue engine\n",
                 config_.shards);
    config_.shards = 1;
  }
  data_channel_ = std::make_unique<net::Channel<WireBytes>>(sim);

  // Hostile forward path (reorder/dup/partition) sits between the sender
  // and the shared data channel. Only built when configured: an inactive
  // config leaves the FIFO path (and its RNG streams) untouched.
  if (config_.fwd_hostile.active()) {
    fwd_hostile_ = std::make_unique<net::HostileChannel<WireBytes>>(
        sim, config_.fwd_hostile, root_.fork("hostile-fwd"),
        [this](const WireBytes& bytes, sim::Bytes size) {
          data_channel_->send(bytes, size);
        });
  }

  config_.receiver.algo = config_.sender.algo;
  sender_ = std::make_unique<Sender>(
      sim, config_.sender, [this](const WireBytes& bytes, sim::Bytes size) {
        if (fwd_hostile_ != nullptr) {
          fwd_hostile_->send(bytes, size);
        } else {
          data_channel_->send(bytes, size);
        }
      });

  for (std::size_t r = 0; r < config_.num_receivers; ++r) add_receiver_rig();

  if (config_.use_allocator) {
    sender_->set_allocator(std::make_unique<BandwidthAllocator>(
        config_.allocator, empirical_feedback_profile()));
    // Apply the feedback side of each allocation to the reverse links (in a
    // deployment this rides in the session description / announcements).
    sender_->on_allocation([this](const Allocation& alloc) {
      for (auto& rig : receivers_) rig.fb_link->set_rate(alloc.mu_fb);
    });
  }

  // Mean-field cohort tier: the fluid population shares the forward
  // channel's loss/delay characteristics; workload and bandwidth rates come
  // from the caller-provided fluid params.
  if (config_.fluid_cohort > 0.0) {
    analysis::FluidParams fp = config_.fluid;
    fp.cohort = config_.fluid_cohort;
    fp.loss = config_.loss_rate;
    fp.nack_loss = fb_loss_;
    fp.delay = config_.delay;
    fluid_ = std::make_unique<analysis::FluidIntegrator>(fp);
  }

  // Construction-time receivers face an (effectively) empty store and are
  // caught up from the start, with zero latency.
  settle_catch_ups();

  if (config_.sample_interval > 0) {
    sampler_.start(config_.sample_interval, [this] { sample(); });
  }
}

std::size_t Session::add_receiver_rig() {
  const std::size_t r = receivers_.size();
  ReceiverRig rig;
  rig.joined_at = sim_->now();

  // Reverse path: receiver -> rate-limited link -> optional hostile stage
  // -> lossy channel -> sender. Delay/jitter fall back to the forward-path
  // values when unset, so the two directions can be configured
  // asymmetrically (e.g. a clean feedback path under a hostile forward one,
  // or vice versa) without disturbing existing symmetric setups.
  const sim::Duration fb_delay =
      config_.fb_delay < 0 ? config_.delay : config_.fb_delay;
  const sim::Duration fb_jitter =
      config_.fb_jitter < 0 ? config_.jitter : config_.fb_jitter;
  rig.fb_channel = std::make_unique<net::Channel<WireBytes>>(*sim_);
  auto rev_loss = make_loss(fb_loss_, root_.fork("fb-loss", r),
                            root_.fork("switch-fb", r));
  rig.rev_switch = rev_loss.get();
  rig.fb_channel->add_receiver(
      std::move(rev_loss),
      make_delay(fb_delay, fb_jitter, root_.fork("fb-delay", r)),
      [this](const WireBytes& bytes) { sender_->handle_feedback(bytes); });
  net::Channel<WireBytes>* fb_chan = rig.fb_channel.get();
  if (config_.fb_hostile.active()) {
    rig.fb_hostile = std::make_unique<net::HostileChannel<WireBytes>>(
        *sim_, config_.fb_hostile, root_.fork("hostile-fb", r),
        [fb_chan](const WireBytes& bytes, sim::Bytes size) {
          fb_chan->send(bytes, size);
        });
  }
  net::HostileChannel<WireBytes>* fb_hostile = rig.fb_hostile.get();
  rig.fb_link = std::make_unique<net::Link<WireBytes>>(
      *sim_, config_.mu_fb,
      [fb_chan, fb_hostile](const WireBytes& bytes, sim::Bytes size) {
        if (fb_hostile != nullptr) {
          fb_hostile->send(bytes, size);
        } else {
          fb_chan->send(bytes, size);
        }
      },
      /*queue_limit=*/8);
  net::Link<WireBytes>* fb_link = rig.fb_link.get();

  rig.receiver = std::make_unique<Receiver>(
      *sim_, config_.receiver,
      [fb_link](const WireBytes& bytes, sim::Bytes size) {
        fb_link->send(bytes, size);
      },
      root_.fork("recv-rng", r));

  Receiver* recv = rig.receiver.get();
  auto fwd_loss = make_loss(config_.loss_rate, root_.fork("loss", r),
                            root_.fork("switch-loss", r));
  rig.fwd_switch = fwd_loss.get();
  data_channel_->add_receiver(
      std::move(fwd_loss),
      make_delay(config_.delay, config_.jitter, root_.fork("delay", r)),
      [recv](const WireBytes& bytes) { recv->handle(bytes); });

  receivers_.push_back(std::move(rig));
  return r;
}

std::size_t Session::add_receiver() { return add_receiver_rig(); }

void Session::detach_receiver(std::size_t i) {
  ReceiverRig& rig = receivers_.at(i);
  if (!rig.active) return;
  rig.active = false;
  if (rig.catching_up) rig.catching_up = false;
  rig.receiver->stop();
  data_channel_->set_receiver_enabled(i, false);
}

void Session::set_partition(std::size_t i, bool down) {
  ReceiverRig& rig = receivers_.at(i);
  if (rig.fwd_switch != nullptr) rig.fwd_switch->set_down(down);
  if (rig.rev_switch != nullptr) rig.rev_switch->set_down(down);
}

void Session::set_partition_all(bool down) {
  for (std::size_t i = 0; i < receivers_.size(); ++i) {
    if (receivers_[i].active) set_partition(i, down);
  }
}

void Session::set_extra_loss(std::size_t i, double p) {
  ReceiverRig& rig = receivers_.at(i);
  if (rig.fwd_switch != nullptr) rig.fwd_switch->set_extra_loss(p);
}

void Session::set_extra_loss_all(double p) {
  for (std::size_t i = 0; i < receivers_.size(); ++i) {
    if (receivers_[i].active) set_extra_loss(i, p);
  }
}

void Session::set_bandwidth_factor(double factor) {
  sender_->set_mu_data(config_.sender.mu_data * factor);
}

double Session::repair_traffic() const {
  const SenderStats& s = sender_->stats();
  std::uint64_t recv_side = 0;
  for (const auto& rig : receivers_) {
    recv_side += rig.receiver->stats().queries_tx;
    recv_side += rig.receiver->stats().nacks_tx;
  }
  double total = static_cast<double>(s.repair_tx + s.sig_tx + recv_side);
  if (fluid_) total += fluid_->repair_traffic();
  return total;
}

double Session::receiver_consistency(std::size_t i) const {
  const NamespaceTree& sender_tree = sender_->tree();
  if (sender_tree.leaf_count() == 0) return 1.0;
  const NamespaceTree& rt = receivers_.at(i).receiver->tree();
  std::size_t consistent = 0;
  sender_tree.for_each_leaf(
      Path{}, [&rt, &consistent](const Path& path, const Adu& adu) {
        const Adu* mirror = rt.find(path);
        if (mirror != nullptr && mirror->version == adu.version &&
            mirror->complete()) {
          ++consistent;
        }
      });
  return static_cast<double>(consistent) /
         static_cast<double>(sender_tree.leaf_count());
}

double Session::instantaneous_consistency() const {
  double sum = 0.0;
  double weight = 0.0;
  if (sender_->tree().leaf_count() > 0) {
    for (std::size_t i = 0; i < receivers_.size(); ++i) {
      if (!receivers_[i].active) continue;
      weight += 1.0;
      sum += receiver_consistency(i);
    }
  }
  // The fluid cohort contributes with its population weight (its own
  // vacuous-empty convention covers the empty-store case).
  if (fluid_) {
    sum += fluid_->consistency() * fluid_->params().cohort;
    weight += fluid_->params().cohort;
  }
  if (weight == 0.0) return 1.0;
  return sum / weight;
}

void Session::settle_catch_ups() {
  for (std::size_t i = 0; i < receivers_.size(); ++i) {
    ReceiverRig& rig = receivers_[i];
    if (!rig.active || !rig.catching_up) continue;
    if (receiver_consistency(i) >= config_.catch_up_threshold) {
      rig.catching_up = false;
      rig.catch_up_latency = sim_->now() - rig.joined_at;
    }
  }
}

void Session::sample() {
  settle_catch_ups();
  if (fluid_) fluid_->advance(sim_->now());
  consistency_.update(sim_->now(), instantaneous_consistency());
}

double Session::average_consistency() {
  if (fluid_) fluid_->advance(sim_->now());
  consistency_.update(sim_->now(), instantaneous_consistency());
  return consistency_.average();
}

void Session::reset_consistency_stats() {
  if (fluid_) fluid_->advance(sim_->now());
  consistency_.update(sim_->now(), instantaneous_consistency());
  consistency_.reset(sim_->now());
}

double Session::feedback_bytes() const {
  double total = 0.0;
  for (const auto& rig : receivers_) {
    total += rig.fb_channel->stats().bytes_sent;
  }
  return total;
}

}  // namespace sst::sstp
