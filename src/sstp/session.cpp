#include "sstp/session.hpp"

#include "net/delay.hpp"
#include "net/loss.hpp"
#include "sim/random.hpp"

namespace sst::sstp {

namespace {

std::unique_ptr<net::LossModel> make_loss(double rate, sim::Rng rng) {
  if (rate <= 0.0) return std::make_unique<net::NoLoss>();
  return std::make_unique<net::BernoulliLoss>(rate, rng);
}

std::unique_ptr<net::DelayModel> make_delay(const SessionConfig& cfg,
                                            sim::Rng rng) {
  if (cfg.jitter > 0.0) {
    return std::make_unique<net::UniformJitterDelay>(cfg.delay, cfg.jitter,
                                                     rng);
  }
  return std::make_unique<net::FixedDelay>(cfg.delay);
}

}  // namespace

Session::Session(sim::Simulator& sim, SessionConfig config)
    : sim_(&sim),
      config_(config),
      sampler_(sim),
      consistency_(sim.now(), 1.0) {
  const sim::Rng root(config_.seed);
  const double fb_loss =
      config_.fb_loss_rate < 0 ? config_.loss_rate : config_.fb_loss_rate;

  data_channel_ = std::make_unique<net::Channel<WireBytes>>(sim);

  config_.receiver.algo = config_.sender.algo;
  sender_ = std::make_unique<Sender>(
      sim, config_.sender, [this](const WireBytes& bytes, sim::Bytes size) {
        data_channel_->send(bytes, size);
      });

  for (std::size_t r = 0; r < config_.num_receivers; ++r) {
    // Reverse path: receiver -> rate-limited link -> lossy channel -> sender.
    fb_channels_.push_back(std::make_unique<net::Channel<WireBytes>>(sim));
    fb_channels_.back()->add_receiver(
        make_loss(fb_loss, root.fork("fb-loss", r)),
        make_delay(config_, root.fork("fb-delay", r)),
        [this](const WireBytes& bytes) { sender_->handle_feedback(bytes); });
    net::Channel<WireBytes>* fb_chan = fb_channels_.back().get();
    fb_links_.push_back(std::make_unique<net::Link<WireBytes>>(
        sim, config_.mu_fb,
        [fb_chan](const WireBytes& bytes, sim::Bytes size) {
          fb_chan->send(bytes, size);
        },
        /*queue_limit=*/8));
    net::Link<WireBytes>* fb_link = fb_links_.back().get();

    receivers_.push_back(std::make_unique<Receiver>(
        sim, config_.receiver,
        [fb_link](const WireBytes& bytes, sim::Bytes size) {
          fb_link->send(bytes, size);
        },
        root.fork("recv-rng", r)));

    Receiver* recv = receivers_.back().get();
    data_channel_->add_receiver(
        make_loss(config_.loss_rate, root.fork("loss", r)),
        make_delay(config_, root.fork("delay", r)),
        [recv](const WireBytes& bytes) { recv->handle(bytes); });
  }

  if (config_.use_allocator) {
    sender_->set_allocator(std::make_unique<BandwidthAllocator>(
        config_.allocator, empirical_feedback_profile()));
    // Apply the feedback side of each allocation to the reverse links (in a
    // deployment this rides in the session description / announcements).
    sender_->on_allocation([this](const Allocation& alloc) {
      for (auto& link : fb_links_) link->set_rate(alloc.mu_fb);
    });
  }

  if (config_.sample_interval > 0) {
    sampler_.start(config_.sample_interval, [this] { sample(); });
  }
}

double Session::instantaneous_consistency() const {
  const NamespaceTree& sender_tree = sender_->tree();
  if (sender_tree.leaf_count() == 0 || receivers_.empty()) return 1.0;

  double sum = 0.0;
  for (const auto& recv : receivers_) {
    const NamespaceTree& rt = recv->tree();
    std::size_t consistent = 0;
    sender_tree.for_each_leaf(
        Path{}, [&rt, &consistent](const Path& path, const Adu& adu) {
          const Adu* mirror = rt.find(path);
          if (mirror != nullptr && mirror->version == adu.version &&
              mirror->complete()) {
            ++consistent;
          }
        });
    sum += static_cast<double>(consistent) /
           static_cast<double>(sender_tree.leaf_count());
  }
  return sum / static_cast<double>(receivers_.size());
}

void Session::sample() {
  consistency_.update(sim_->now(), instantaneous_consistency());
}

double Session::average_consistency() {
  consistency_.update(sim_->now(), instantaneous_consistency());
  return consistency_.average();
}

void Session::reset_consistency_stats() {
  consistency_.update(sim_->now(), instantaneous_consistency());
  consistency_.reset(sim_->now());
}

double Session::feedback_bytes() const {
  double total = 0.0;
  for (const auto& ch : fb_channels_) total += ch->stats().bytes_sent;
  return total;
}

}  // namespace sst::sstp
