// receiver.hpp — the SSTP receiver endpoint (paper Section 6.2).
//
// "Upon receiving a summary announcement, if a receiver detects a mismatch
// at the root namespace node, a feedback message requesting further
// namespace repair is scheduled for transmission. In response ... the sender
// responds with a set of next level signatures. In this manner, loss
// recovery proceeds recursively down the namespace hierarchy."
//
// The receiver reconstructs the sender's namespace tree from data chunks,
// drives recursive-descent repair from digest mismatches, prunes subtrees
// the sender no longer advertises, filters repair by application interest
// (meta-data tags), measures loss for receiver reports, and expires the
// whole session if summaries cease (soft state).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "sim/units.hpp"
#include "sstp/namespace_tree.hpp"
#include "sstp/receiver_report.hpp"
#include "sstp/wire.hpp"

namespace sst::sstp {

using WireBytes = std::vector<std::uint8_t>;

/// Receiver configuration.
struct ReceiverConfig {
  hash::DigestAlgo algo = hash::DigestAlgo::kMd5;

  /// Repair pacing: an outstanding query/NACK is re-sent after
  /// retry_timeout * backoff^retries, up to max_retries, then dropped (the
  /// next summary mismatch restarts the descent).
  sim::Duration retry_timeout = 2.0;
  double retry_backoff = 2.0;
  int max_retries = 6;

  /// Random initial delay before the first feedback message for a fresh
  /// mismatch, in [0, initial_delay_max) — slotting for multicast damping
  /// (0 sends immediately, the right unicast setting).
  sim::Duration initial_delay_max = 0.0;

  /// Receiver-report cadence (0 disables reports).
  sim::Duration report_interval = 5.0;

  /// With no summary/data for this long, the whole local tree expires
  /// (0 disables — but then a dead sender leaves state behind forever).
  sim::Duration session_ttl = 60.0;

  /// Application interest filter over (path, tags); repair is not requested
  /// for subtrees without interest (paper: the PDA that skips high-res
  /// images). Null means interested in everything.
  std::function<bool(const Path&, const MetaTags&)> interest;
};

/// Counters the receiver accumulates.
struct ReceiverStats {
  std::uint64_t data_rx = 0;
  std::uint64_t repairs_rx = 0;
  std::uint64_t summaries_rx = 0;
  std::uint64_t signatures_rx = 0;
  std::uint64_t queries_tx = 0;
  std::uint64_t nacks_tx = 0;
  std::uint64_t reports_tx = 0;
  std::uint64_t retries = 0;
  std::uint64_t gave_up = 0;
  std::uint64_t removed_subtrees = 0;
  std::uint64_t skipped_no_interest = 0;
  std::uint64_t stale_rx = 0;  // reordered/duplicated old announcements
  std::uint64_t shape_repairs = 0;  // leaf-vs-subtree conflicts resolved
  std::uint64_t decode_errors = 0;
  std::uint64_t session_expiries = 0;
  std::uint64_t adu_completions = 0;
};

/// SSTP receiver.
class Receiver {
 public:
  /// `send_feedback` pushes an encoded packet (with framing-inclusive size)
  /// onto the reverse path.
  /// `rng` drives the NACK slotting draws; callers fork it from the
  /// experiment seed (no default — a hidden fixed seed would hand every
  /// receiver the same stream).
  Receiver(sim::Simulator& sim, ReceiverConfig config,
           std::function<void(const WireBytes&, sim::Bytes)> send_feedback,
           sim::Rng rng);

  Receiver(const Receiver&) = delete;
  Receiver& operator=(const Receiver&) = delete;

  /// Feeds a packet arriving on the forward (data) path.
  void handle(const WireBytes& bytes);

  /// Receiver leave: quiesces the endpoint for good. Outstanding repairs
  /// are dropped, all timers stop, and packets already in flight toward
  /// this receiver are ignored on arrival.
  void stop();

  /// Fired when a leaf ADU becomes complete (all bytes of a version).
  void on_complete(std::function<void(const Path&, const Adu&)> fn) {
    complete_fn_ = std::move(fn);
  }
  /// Fired when a subtree is pruned because the sender dropped it.
  void on_removed(std::function<void(const Path&)> fn) {
    removed_fn_ = std::move(fn);
  }
  /// Fired when the session expires (no announcements for session_ttl).
  void on_session_expired(std::function<void()> fn) {
    expired_fn_ = std::move(fn);
  }

  [[nodiscard]] const NamespaceTree& tree() const { return tree_; }
  [[nodiscard]] const ReceiverStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t outstanding_repairs() const {
    return pending_.size();
  }
  /// Smoothed local loss estimate.
  [[nodiscard]] double loss_estimate() const { return loss_.estimate(); }

 private:
  struct Pending {
    bool is_nack = false;  // false: signature query; true: data NACK
    int retries = 0;
    sim::SimTime last_sent = -1e18;
    bool sent_once = false;
  };

  void handle_data(const DataMsg& msg);
  void handle_summary(const SummaryMsg& msg);
  void handle_signatures(const SignaturesMsg& msg);
  bool note_fwd_seq(std::uint64_t seq);
  void ensure_pending(const Path& path, bool is_nack);
  void clear_pending_under(const Path& path);
  void send_repair(const Path& path, Pending& p);
  void scan_pending();
  void send_report();
  void touch_session();
  void expire_session();

  sim::Simulator* sim_;
  ReceiverConfig config_;
  std::function<void(const WireBytes&, sim::Bytes)> send_feedback_;
  sim::Rng rng_;
  NamespaceTree tree_;

  // Ordered by Path's name-lexicographic comparison: clear_pending_under
  // relies on a subtree being a contiguous lower_bound range.
  std::map<Path, Pending> pending_;
  WireBytes tx_buf_;  // pooled encode buffer for feedback packets
  sim::PeriodicTimer scanner_;
  sim::PeriodicTimer report_timer_;
  sim::Timer session_timer_;
  bool session_live_ = false;
  bool stopped_ = false;

  // Highest forward-path sequence heard; Summary/Signatures older than it
  // are stale replays under reordering/duplication and must not act.
  std::uint64_t latest_fwd_seq_ = 0;
  bool seen_fwd_seq_ = false;

  LossEstimator loss_;
  std::function<void(const Path&, const Adu&)> complete_fn_;
  std::function<void(const Path&)> removed_fn_;
  std::function<void()> expired_fn_;
  ReceiverStats stats_;
};

}  // namespace sst::sstp
