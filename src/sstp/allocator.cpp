#include "sstp/allocator.hpp"

#include <algorithm>

namespace sst::sstp {

BandwidthAllocator::BandwidthAllocator(Config config,
                                       analysis::Profile2D fb_profile)
    : config_(config), fb_profile_(std::move(fb_profile)) {}

Allocation BandwidthAllocator::allocate(double measured_loss,
                                        sim::Rate app_rate) const {
  measured_loss = std::clamp(measured_loss, 0.0, 0.99);
  Allocation out;

  // Data vs feedback: the smallest feedback share whose predicted
  // consistency meets the target; if unattainable, the share that maximizes
  // consistency (paper: "adapt to the optimal bandwidth allocation for the
  // required consistency").
  double fb_share;
  if (const auto share = fb_profile_.min_y_reaching(
          measured_loss, config_.target_consistency)) {
    fb_share = *share;
  } else {
    fb_share = fb_profile_.best_y(measured_loss);
  }
  fb_share = std::clamp(fb_share, config_.min_fb_share, config_.max_fb_share);

  out.mu_fb = fb_share * config_.total_bandwidth;
  out.mu_data = config_.total_bandwidth - out.mu_fb;

  // Hot vs cold: hot must absorb (a) the arrival rate inflated by
  // loss-driven retransmission (each new byte needs ~1/(1-p) transmissions
  // to land, times headroom) and (b) the repair flux from lost cold
  // refreshes/summaries, which receivers NACK without knowing they were
  // redundant — roughly loss * mu_cold. With mu_cold = mu_data - mu_hot,
  // solving mu_hot = app*inflate + loss*(mu_data - mu_hot) gives
  //   mu_hot = (app*inflate + loss*mu_data) / (1 + loss).
  // Figures 5 and 10: the knee sits at mu_hot = lambda; this operates just
  // above it.
  const double inflate = config_.hot_headroom / (1.0 - measured_loss);
  const sim::Rate hot_needed =
      (app_rate * inflate + measured_loss * out.mu_data) /
      (1.0 + measured_loss);
  out.hot_share =
      out.mu_data > 0
          ? std::clamp(hot_needed / out.mu_data, config_.min_hot_share,
                       config_.max_hot_share)
          : config_.max_hot_share;

  // With a T_recv profile, give cold MORE than the absorption rule's
  // leftover when the profile says latency keeps improving: pick the
  // smallest cold share within 10% of the per-loss minimum latency, but
  // never intrude on the hot floor above.
  if (latency_profile_) {
    const double max_cold = 1.0 - out.hot_share;
    double best_latency = 1e300;
    for (const double y : latency_profile_->ys()) {
      best_latency = std::min(best_latency,
                              latency_profile_->at(measured_loss, y));
    }
    for (const double y : latency_profile_->ys()) {
      if (y > max_cold) break;
      if (latency_profile_->at(measured_loss, y) <= 1.1 * best_latency) {
        out.hot_share = std::clamp(1.0 - y, config_.min_hot_share,
                                   config_.max_hot_share);
        break;
      }
    }
  }

  out.max_app_rate =
      (out.hot_share * out.mu_data * (1.0 + measured_loss) -
       measured_loss * out.mu_data) /
      inflate;
  if (out.max_app_rate < 0) out.max_app_rate = 0;
  out.rate_warning = app_rate > out.max_app_rate * 1.0001;
  return out;
}

analysis::Profile2D empirical_feedback_profile() {
  // Measured with bench_fig9 (lambda = 15 kbps, total = 60 kbps, 1000-byte
  // records, exponential lifetimes 120 s): average consistency by
  // (loss rate, feedback share of total). The qualitative structure is the
  // paper's Figure 9: low shares leave losses to the slow cold cycle, a
  // moderate share reaches the plateau, excessive shares starve data.
  std::vector<double> loss = {0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5};
  std::vector<double> share = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7};
  std::vector<std::vector<double>> c = {
      // fb:   0.0   0.1   0.2   0.3   0.4   0.5   0.7
      /*0.00*/ {0.99, 0.99, 0.99, 0.99, 0.98, 0.97, 0.90},
      /*0.05*/ {0.96, 0.98, 0.98, 0.98, 0.97, 0.96, 0.88},
      /*0.10*/ {0.93, 0.97, 0.97, 0.97, 0.96, 0.95, 0.86},
      /*0.20*/ {0.89, 0.94, 0.96, 0.96, 0.95, 0.93, 0.82},
      /*0.30*/ {0.86, 0.90, 0.95, 0.95, 0.94, 0.91, 0.76},
      /*0.40*/ {0.84, 0.86, 0.92, 0.94, 0.92, 0.88, 0.66},
      /*0.50*/ {0.81, 0.83, 0.88, 0.91, 0.89, 0.83, 0.52},
  };
  return analysis::Profile2D(std::move(loss), std::move(share), std::move(c));
}

}  // namespace sst::sstp
