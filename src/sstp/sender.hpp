// sender.hpp — the SSTP sender endpoint (paper Section 6).
//
// "An SSTP sender transmits original application data as well as periodic
// soft state announcements summarizing all previously transmitted data."
//
// The sender keeps the authoritative namespace tree and two transmission
// classes sharing mu_data under a proportional-share scheduler:
//   hot  — new/updated ADU chunks, NACK-requested repairs, and signature
//          replies (repair traffic);
//   cold — periodic root-summary announcements (NOT full data cycling: the
//          summary makes per-record refreshes unnecessary, which is exactly
//          SSTP's scaling advantage over flat announce/listen).
// Receiver reports feed a measured loss estimate; an optional
// BandwidthAllocator turns that into live re-allocation and application
// back-pressure callbacks.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_set>
#include <utility>

#include "sched/hierarchical.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "sim/units.hpp"
#include "sstp/allocator.hpp"
#include "sstp/namespace_tree.hpp"
#include "sstp/wire.hpp"

namespace sst::sstp {

/// Serialized packet as carried by the simulated network.
using WireBytes = std::vector<std::uint8_t>;

/// Sender configuration.
struct SenderConfig {
  sim::Rate mu_data = sim::kbps(45);   // data bandwidth (hot + cold)
  double hot_share = 0.6;              // hot fraction of mu_data
  sim::Bytes mtu = 1000;               // max ADU payload bytes per packet
  sim::Duration min_summary_interval = 0.2;  // cap on summary rate
  hash::DigestAlgo algo = hash::DigestAlgo::kMd5;
  std::size_t max_pending_repairs = 128;  // NACK damping bound

  /// Application data classes (paper Figure 12): the hot bandwidth is
  /// shared among these classes by weight under the hierarchical scheduler,
  /// so "the application flexibly controls the amount of bandwidth
  /// allocated to its different data classes". One class by default.
  std::vector<double> class_weights = {1.0};
  /// Maps an ADU to a class index (< class_weights.size()); null = class 0.
  std::function<std::size_t(const Path&, const MetaTags&)> classify;
  /// Class carrying signature replies (repair control traffic).
  std::size_t control_class = 0;
};

/// Counters the sender accumulates.
struct SenderStats {
  std::uint64_t data_tx = 0;      // data packets (chunks)
  std::uint64_t repair_tx = 0;    // of which NACK-triggered
  std::uint64_t summary_tx = 0;   // root summaries
  std::uint64_t sig_tx = 0;       // signature replies
  std::uint64_t nacks_rx = 0;
  std::uint64_t nacks_ignored = 0;
  std::uint64_t sig_requests_rx = 0;
  std::uint64_t reports_rx = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t rate_warnings = 0;
  double bytes_tx = 0;
};

/// SSTP sender.
class Sender {
 public:
  /// `transmit` pushes an encoded packet (with framing-inclusive size) onto
  /// the forward channel.
  Sender(sim::Simulator& sim, SenderConfig config,
         std::function<void(const WireBytes&, sim::Bytes)> transmit);

  Sender(const Sender&) = delete;
  Sender& operator=(const Sender&) = delete;

  // ----------------------------------------------------- application API

  /// Publishes (or updates — the version bumps automatically) the ADU at
  /// `path`. Returns false for invalid paths (root / name collisions).
  bool publish(const Path& path, std::vector<std::uint8_t> data,
               MetaTags tags = {});

  /// Removes the subtree at `path`. Receivers learn through summary/digest
  /// mismatch; there is no teardown message (soft state).
  bool remove(const Path& path);

  [[nodiscard]] const NamespaceTree& tree() const { return tree_; }

  // ----------------------------------------------------------- network in

  /// Feeds a packet arriving on the reverse (feedback) path.
  void handle_feedback(const WireBytes& bytes);

  // ------------------------------------------------------------- control

  /// Attaches a profile-driven allocator; each receiver report then triggers
  /// re-allocation of {mu_data, hot share} and possibly a rate warning.
  void set_allocator(std::unique_ptr<BandwidthAllocator> allocator) {
    allocator_ = std::move(allocator);
  }

  /// Called when the allocator detects the application exceeding its
  /// sustainable rate (paper: "notification ... gives the application an
  /// opportunity to adapt").
  void on_rate_warning(std::function<void(const Allocation&)> fn) {
    rate_warning_fn_ = std::move(fn);
  }

  /// Called after every allocator-driven re-allocation (the session harness
  /// uses this to retune the feedback path, which in a deployment would be
  /// advertised in the session description).
  void on_allocation(std::function<void(const Allocation&)> fn) {
    allocation_fn_ = std::move(fn);
  }

  /// Applies an allocation directly (also used by the allocator path).
  void apply(const Allocation& alloc);

  /// Changes the data bandwidth (fault injection: bandwidth degradation).
  /// A transmission already in service completes at the old rate.
  void set_mu_data(sim::Rate mu_data) { config_.mu_data = mu_data; }

  /// Crash/restart support: pause() silences the sender entirely (the
  /// packet in service is lost, as a crash would lose it); resume()
  /// restarts announcements — receivers that expired the session state
  /// rebuild it from summaries and repair, with no special recovery code.
  void pause();
  void resume();
  [[nodiscard]] bool paused() const { return paused_; }

  /// Current smoothed loss estimate from receiver reports.
  [[nodiscard]] double measured_loss() const { return measured_loss_; }

  [[nodiscard]] const SenderStats& stats() const { return stats_; }
  [[nodiscard]] const SenderConfig& config() const { return config_; }
  [[nodiscard]] std::size_t hot_depth() const {
    std::size_t n = 0;
    for (const auto& q : hot_) n += q.size();
    return n;
  }
  [[nodiscard]] std::size_t hot_depth(std::size_t cls) const {
    return hot_.at(cls).size();
  }

 private:
  struct TxItem {
    enum class Kind : std::uint8_t { kData, kSignatures } kind = Kind::kData;
    Path path;
    std::uint64_t offset = 0;  // next byte to send (data items)
    std::uint64_t end = 0;     // one past the last byte to send
    std::uint64_t version = 0; // version the item was queued for
    bool is_repair = false;
  };

  /// A normalized head-of-line item: stale entries already dropped, the
  /// version refreshed, and the would-be packet size computed — without
  /// building the message or touching the heap. The scheduler prices every
  /// class per service slot; only the winner's message is materialized.
  struct HotHead {
    TxItem* item;
    const Adu* adu = nullptr;     // null for signature heads
    std::uint64_t chunk_end = 0;  // data heads: end of the chunk to send
    sim::Bytes size = 0;          // wire size including framing
  };

  void enqueue_data(const Path& path, std::uint64_t offset, std::uint64_t end,
                    std::uint64_t version, bool is_repair);
  [[nodiscard]] std::size_t class_of(const Path& path,
                                     const MetaTags& tags) const;
  void maybe_start_service();
  void finish_service();
  /// Head-of-line packet size in bits for the scheduler, or sched::kEmpty.
  double hot_head_bits(std::size_t cls);
  double cold_head_bits();
  /// Normalizes the class's hot head WITHOUT consuming or building it.
  std::optional<HotHead> peek_hot_head(std::size_t cls);
  /// Materializes the message for a peeked head.
  Message build_hot_msg(const HotHead& head);
  void consume_hot_head(std::size_t cls, const Message& msg);
  Message build_summary();
  void handle_nack(const NackMsg& nack);
  void handle_sig_request(const SigRequestMsg& req);
  void handle_report(const ReceiverReportMsg& report);
  [[nodiscard]] bool cold_eligible() const;
  void arm_cold_wakeup();
  void track_app_bytes(double bytes);

  sim::Simulator* sim_;
  SenderConfig config_;
  std::function<void(const WireBytes&, sim::Bytes)> transmit_;
  NamespaceTree tree_;
  // Allocation hierarchy (Figure 12): root -> { hot group (per-class
  // leaves), cold leaf }. External class i = hot class i; class N = cold.
  sched::HierarchicalScheduler scheduler_;
  std::size_t hot_group_ = 0;
  std::size_t cold_class_ = 0;

  std::vector<std::deque<TxItem>> hot_;  // one queue per app class
  std::unordered_set<Path, PathHash> queued_paths_;  // data dedup
  std::unordered_set<Path, PathHash> queued_sigs_;   // signature dedup
  std::size_t pending_repairs_ = 0;
  WireBytes tx_buf_;  // pooled encode buffer: one allocation, every packet

  bool busy_ = false;
  bool paused_ = false;
  sim::Timer service_timer_;
  sim::Timer cold_wakeup_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t summary_epoch_ = 0;
  sim::SimTime last_summary_ = -1e18;

  std::unique_ptr<BandwidthAllocator> allocator_;
  std::function<void(const Allocation&)> rate_warning_fn_;
  std::function<void(const Allocation&)> allocation_fn_;
  double measured_loss_ = 0.0;
  bool loss_seeded_ = false;

  // Application arrival-rate estimate (EWMA over 10-second buckets).
  double app_rate_bps_ = 0.0;
  double app_bucket_bytes_ = 0.0;
  sim::SimTime app_bucket_start_ = 0.0;

  SenderStats stats_;
};

}  // namespace sst::sstp
