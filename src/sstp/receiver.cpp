#include "sstp/receiver.hpp"

#include <cmath>
#include <vector>

namespace sst::sstp {

Receiver::Receiver(sim::Simulator& sim, ReceiverConfig config,
                   std::function<void(const WireBytes&, sim::Bytes)>
                       send_feedback,
                   sim::Rng rng)
    : sim_(&sim),
      config_(config),
      send_feedback_(std::move(send_feedback)),
      rng_(rng),
      tree_(config.algo),
      scanner_(sim),
      report_timer_(sim),
      session_timer_(sim) {
  if (config_.report_interval > 0) {
    report_timer_.start(config_.report_interval, [this] { send_report(); });
  }
}

void Receiver::stop() {
  stopped_ = true;
  pending_.clear();
  scanner_.stop();
  report_timer_.stop();
  session_timer_.cancel();
}

void Receiver::handle(const WireBytes& bytes) {
  if (stopped_) return;
  const auto msg = decode(bytes);
  if (!msg) {
    ++stats_.decode_errors;
    return;
  }
  if (const auto* data = std::get_if<DataMsg>(&*msg)) {
    handle_data(*data);
  } else if (const auto* summary = std::get_if<SummaryMsg>(&*msg)) {
    handle_summary(*summary);
  } else if (const auto* sigs = std::get_if<SignaturesMsg>(&*msg)) {
    handle_signatures(*sigs);
  } else {
    ++stats_.decode_errors;  // feedback-type message on the forward path
  }
}

// Feeds the loss estimator and tracks the newest forward-path sequence.
// Returns true when `seq` is older than something already heard — the
// packet is a reordered or duplicated replay of past sender state.
bool Receiver::note_fwd_seq(std::uint64_t seq) {
  loss_.on_seq(seq);
  const bool stale = seen_fwd_seq_ && seq < latest_fwd_seq_;
  if (!stale) {
    latest_fwd_seq_ = seq;
    seen_fwd_seq_ = true;
  }
  return stale;
}

void Receiver::handle_data(const DataMsg& msg) {
  ++stats_.data_rx;
  if (msg.is_repair) ++stats_.repairs_rx;
  // Stale data chunks are still applied: apply_chunk is version-guarded and
  // idempotent, so a late chunk of the current version is useful and a late
  // chunk of an old version is a no-op. Only destructive announcement
  // handling (below) needs the staleness guard.
  note_fwd_seq(msg.seq);
  touch_session();

  const Adu* before = tree_.find(msg.path);
  const bool was_complete =
      before != nullptr && before->version == msg.version &&
      before->complete();

  tree_.apply_chunk(msg.path, msg.version, msg.total_size, msg.offset,
                    msg.chunk, msg.tags);

  const Adu* after = tree_.find(msg.path);
  if (after != nullptr && after->version == msg.version &&
      after->complete()) {
    // The version is fully assembled: repair state for this leaf is done.
    pending_.erase(msg.path);
    if (!was_complete) {
      ++stats_.adu_completions;
      if (complete_fn_) complete_fn_(msg.path, *after);
    }
  }
}

void Receiver::handle_summary(const SummaryMsg& msg) {
  ++stats_.summaries_rx;
  touch_session();
  if (note_fwd_seq(msg.seq)) {
    // A stale summary describes a root digest the sender has since moved
    // past; matching it would clear repairs for the wrong state, and
    // mismatching it would start a descent toward dead state.
    ++stats_.stale_rx;
    return;
  }
  if (msg.root_digest == tree_.root_digest()) {
    // Fully consistent: drop every outstanding repair.
    pending_.clear();
    scanner_.stop();
    return;
  }
  ensure_pending(Path{}, /*is_nack=*/false);
}

void Receiver::handle_signatures(const SignaturesMsg& msg) {
  ++stats_.signatures_rx;
  touch_session();
  if (note_fwd_seq(msg.seq)) {
    // A stale signatures reply advertises an old child set: pruning from it
    // would delete subtrees the sender still has (state regression). Drop
    // it; the outstanding query retries against fresh state.
    ++stats_.stale_rx;
    return;
  }

  // The query that asked for these signatures is answered.
  pending_.erase(msg.path);

  // Prune local children the sender no longer advertises (this is how
  // deletion propagates — no teardown message exists).
  for (const auto& local : tree_.children(msg.path)) {
    bool advertised = false;
    for (const auto& remote : msg.children) {
      if (remote.name == local.name) {
        advertised = true;
        break;
      }
    }
    if (!advertised) {
      const Path gone = msg.path.child(local.name);
      tree_.remove(gone);
      clear_pending_under(gone);
      ++stats_.removed_subtrees;
      if (removed_fn_) removed_fn_(gone);
    }
  }

  // Recursive descent: request repair for every mismatching child we care
  // about.
  for (const auto& child : msg.children) {
    const Path cpath = msg.path.child(child.name);
    if (config_.interest && !config_.interest(cpath, child.tags)) {
      ++stats_.skipped_no_interest;
      continue;
    }
    const auto local = tree_.digest(cpath);
    if (local.has_value() && *local == child.digest) {
      clear_pending_under(cpath);  // whole subtree already consistent
      continue;
    }
    // Shape conflict: a local leaf where the sender now has a subtree (or
    // the reverse) can never be patched by chunks — the tree rejects writes
    // through a mismatched node kind, so repair would retry forever. This
    // signatures reply passed the staleness guard, so the sender's shape is
    // authoritative: drop the local node and rebuild it through repair.
    if (local.has_value() &&
        (tree_.find(cpath) != nullptr) != child.is_leaf) {
      tree_.remove(cpath);
      clear_pending_under(cpath);
      ++stats_.shape_repairs;
      if (removed_fn_) removed_fn_(cpath);
    }
    ensure_pending(cpath, /*is_nack=*/child.is_leaf);
  }
}

void Receiver::ensure_pending(const Path& path, bool is_nack) {
  const auto it = pending_.find(path);
  if (it != pending_.end()) return;
  Pending p;
  p.is_nack = is_nack;
  auto [ins, ok] = pending_.emplace(path, p);
  if (!scanner_.running() && config_.retry_timeout > 0) {
    scanner_.start(std::max(config_.retry_timeout * 0.5, 0.05),
                   [this] { scan_pending(); });
  }
  if (config_.initial_delay_max <= 0) {
    send_repair(path, ins->second);
  } else {
    // Multicast slotting: randomize the first request to let another
    // receiver's identical request (or its repair) suppress ours.
    const sim::Duration delay = rng_.uniform() * config_.initial_delay_max;
    sim_->after(delay, [this, path] {
      const auto it2 = pending_.find(path);
      if (it2 != pending_.end() && !it2->second.sent_once) {
        send_repair(path, it2->second);
      }
    });
  }
}

void Receiver::clear_pending_under(const Path& path) {
  for (auto it = pending_.lower_bound(path); it != pending_.end();) {
    if (!path.contains(it->first)) break;
    it = pending_.erase(it);
  }
  if (pending_.empty()) scanner_.stop();
}

void Receiver::send_repair(const Path& path, Pending& p) {
  p.last_sent = sim_->now();
  p.sent_once = true;
  Message msg;
  if (p.is_nack) {
    NackMsg nack;
    nack.path = path;
    const Adu* adu = tree_.find(path);
    if (adu != nullptr) {
      nack.version_hint = adu->version;
      nack.from_offset = adu->right_edge;
    }
    msg = std::move(nack);
    ++stats_.nacks_tx;
  } else {
    SigRequestMsg req;
    req.path = path;
    msg = std::move(req);
    ++stats_.queries_tx;
  }
  encode_into(msg, tx_buf_);
  send_feedback_(tx_buf_,
                 static_cast<sim::Bytes>(tx_buf_.size() + kFramingOverhead));
}

void Receiver::scan_pending() {
  const sim::SimTime now = sim_->now();
  for (auto it = pending_.begin(); it != pending_.end();) {
    Pending& p = it->second;
    if (!p.sent_once) {
      ++it;  // still in its initial slotting delay
      continue;
    }
    const double threshold =
        config_.retry_timeout * std::pow(config_.retry_backoff, p.retries);
    if (now - p.last_sent + 1e-9 < threshold) {
      ++it;
      continue;
    }
    if (p.retries >= config_.max_retries) {
      ++stats_.gave_up;  // the next summary mismatch restarts the descent
      it = pending_.erase(it);
      continue;
    }
    ++p.retries;
    ++stats_.retries;
    const Path path = it->first;
    send_repair(path, p);
    ++it;
  }
  if (pending_.empty()) scanner_.stop();
}

void Receiver::send_report() {
  const auto interval = loss_.close_interval();
  if (!loss_.has_data()) return;  // nothing heard yet
  ReceiverReportMsg msg;
  msg.loss_estimate = loss_.estimate();
  msg.received = interval.received;
  msg.expected = interval.expected;
  ++stats_.reports_tx;
  encode_into(Message(msg), tx_buf_);
  send_feedback_(tx_buf_,
                 static_cast<sim::Bytes>(tx_buf_.size() + kFramingOverhead));
}

void Receiver::touch_session() {
  session_live_ = true;
  if (config_.session_ttl > 0) {
    session_timer_.arm(config_.session_ttl, [this] { expire_session(); });
  }
}

void Receiver::expire_session() {
  if (!session_live_) return;
  session_live_ = false;
  ++stats_.session_expiries;
  // Soft state: everything learned from this sender times out together.
  std::vector<std::string> top;
  for (const auto& child : tree_.children(Path{})) top.push_back(child.name);
  for (const auto& name : top) {
    const Path p = Path{}.child(name);
    tree_.remove(p);
    if (removed_fn_) removed_fn_(p);
  }
  pending_.clear();
  scanner_.stop();
  if (expired_fn_) expired_fn_();
}

}  // namespace sst::sstp
