#include "sstp/path.hpp"

#include "hash/fnv.hpp"

namespace sst::sstp {

// Storage invariants (see push/pop):
//  - inline_ always holds the first min(size_, kInlineDepth) symbols;
//  - when size_ > kInlineDepth, overflow_ holds ALL size_ symbols;
//  - when size_ <= kInlineDepth, overflow_ content is irrelevant.

Path::Path(const std::vector<std::string>& components) {
  for (const auto& c : components) push(Interner::global().intern(c));
}

Path Path::parse(std::string_view text) {
  Path p;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t slash = text.find('/', start);
    const std::size_t end =
        slash == std::string_view::npos ? text.size() : slash;
    if (end > start) {
      p.push(Interner::global().intern(text.substr(start, end - start)));
    }
    if (slash == std::string_view::npos) break;
    start = slash + 1;
  }
  return p;
}

void Path::push(Symbol sym) {
  if (size_ < kInlineDepth) {
    inline_[size_] = sym;
  } else if (size_ == kInlineDepth) {
    // Spilling inline -> heap; overflow_ may hold stale content from an
    // earlier deep excursion, so rebuild it from the inline mirror.
    overflow_.assign(inline_.begin(), inline_.end());
    overflow_.push_back(sym);
  } else {
    overflow_.push_back(sym);
  }
  ++size_;
  invalidate_caches();
}

void Path::pop() {
  if (size_ == 0) return;
  --size_;
  if (size_ >= kInlineDepth) overflow_.pop_back();
  invalidate_caches();
}

Path Path::parent() const {
  if (size_ == 0) return {};
  Path p = *this;
  p.pop();
  return p;
}

Path Path::child(std::string_view name) const {
  return child(Interner::global().intern(name));
}

Path Path::child(Symbol sym) const {
  Path p = *this;
  p.push(sym);
  return p;
}

bool Path::contains(const Path& other) const {
  if (other.size_ < size_) return false;
  const Symbol* mine = data();
  const Symbol* theirs = other.data();
  for (std::uint32_t i = 0; i < size_; ++i) {
    if (mine[i] != theirs[i]) return false;
  }
  return true;
}

const std::string& Path::str() const {
  if (!render_) {
    std::string out;
    if (size_ == 0) {
      out = "/";
    } else {
      out.reserve(str_size());
      for (std::uint32_t i = 0; i < size_; ++i) {
        out.push_back('/');
        out.append(component(i));
      }
    }
    render_ = std::make_shared<const std::string>(std::move(out));
  }
  return *render_;
}

std::size_t Path::str_size() const {
  if (render_) return render_->size();
  if (size_ == 0) return 1;  // "/"
  std::size_t n = 0;
  for (std::uint32_t i = 0; i < size_; ++i) n += 1 + component(i).size();
  return n;
}

std::uint64_t Path::hash() const {
  if (hash_ != 0) return hash_;
  std::uint64_t h = hash::kFnvOffset;
  for (std::uint32_t i = 0; i < size_; ++i) {
    h = hash::fnv1a64(std::string_view("/"), h);
    h = hash::fnv1a64(component(i), h);
  }
  hash_ = h;
  return h;
}

std::strong_ordering operator<=>(const Path& a, const Path& b) {
  const std::uint32_t n = a.size_ < b.size_ ? a.size_ : b.size_;
  const Symbol* x = a.data();
  const Symbol* y = b.data();
  const Interner& interner = Interner::global();
  for (std::uint32_t i = 0; i < n; ++i) {
    if (x[i] == y[i]) continue;  // same symbol, same name
    const int c = interner.name(x[i]).compare(interner.name(y[i]));
    if (c != 0) return c < 0 ? std::strong_ordering::less
                             : std::strong_ordering::greater;
  }
  return a.size_ <=> b.size_;
}

}  // namespace sst::sstp
