#include "sstp/path.hpp"

namespace sst::sstp {

Path Path::parse(std::string_view text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t slash = text.find('/', start);
    const std::size_t end = slash == std::string_view::npos ? text.size()
                                                            : slash;
    if (end > start) parts.emplace_back(text.substr(start, end - start));
    if (slash == std::string_view::npos) break;
    start = slash + 1;
  }
  return Path(std::move(parts));
}

std::string Path::str() const {
  if (components_.empty()) return "/";
  std::string out;
  for (const auto& c : components_) {
    out.push_back('/');
    out.append(c);
  }
  return out;
}

Path Path::parent() const {
  if (components_.empty()) return {};
  std::vector<std::string> parts(components_.begin(),
                                 components_.end() - 1);
  return Path(std::move(parts));
}

Path Path::child(std::string_view name) const {
  std::vector<std::string> parts = components_;
  parts.emplace_back(name);
  return Path(std::move(parts));
}

bool Path::contains(const Path& other) const {
  if (other.components_.size() < components_.size()) return false;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (components_[i] != other.components_[i]) return false;
  }
  return true;
}

}  // namespace sst::sstp
