// wire.hpp — SSTP's binary wire format.
//
// Unlike the abstract struct-passing core protocols, SSTP messages are
// serialized to bytes and parsed back with full bounds checking, as a real
// deployment would require. The format is little-endian, length-prefixed,
// and versioned by a magic/type byte. Decode failures return nullopt (a
// malformed packet is dropped, never trusted).
//
// Message inventory (paper Section 6):
//   Data        — one chunk of a leaf ADU (ALF: independently processable)
//   Summary     — periodic "cold" announcement of the sender's root digest
//   SigRequest  — receiver asks for the child signatures of one node
//   Signatures  — sender's reply: per-child {name, digest, leaf?, tags}
//   Nack        — receiver requests (re)transmission of a leaf from offset
//   ReceiverReport — RTCP-like loss/receipt statistics for the allocator
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "hash/digest.hpp"
#include "sstp/namespace_tree.hpp"
#include "sstp/path.hpp"

namespace sst::sstp {

/// One chunk of a leaf ADU.
struct DataMsg {
  Path path;
  std::uint64_t version = 0;
  std::uint64_t total_size = 0;
  std::uint64_t offset = 0;
  std::vector<std::uint8_t> chunk;
  MetaTags tags;
  std::uint64_t seq = 0;       // per-sender transmission sequence
  bool is_repair = false;      // answers a NACK
};

/// Periodic root-summary announcement.
struct SummaryMsg {
  hash::Digest root_digest;
  std::uint64_t epoch = 0;       // sender's announcement counter
  std::uint64_t leaf_count = 0;  // advisory, for receiver progress metrics
  std::uint64_t seq = 0;         // per-sender transmission sequence
};

/// Recursive-descent repair query.
struct SigRequestMsg {
  Path path;
};

/// Reply to a SigRequest.
struct SignaturesMsg {
  Path path;
  hash::Digest node_digest;
  std::uint64_t seq = 0;  // per-sender transmission sequence
  std::vector<ChildSummary> children;
};

/// Request for (re)transmission of a leaf's bytes from `from_offset`.
struct NackMsg {
  Path path;
  std::uint64_t version_hint = 0;  // receiver's current version (0 = none)
  std::uint64_t from_offset = 0;
};

/// RTCP-like receiver report.
struct ReceiverReportMsg {
  double loss_estimate = 0.0;    // smoothed loss fraction in [0,1]
  std::uint64_t received = 0;    // packets received since last report
  std::uint64_t expected = 0;    // packets expected since last report
};

using Message =
    std::variant<DataMsg, SummaryMsg, SigRequestMsg, SignaturesMsg, NackMsg,
                 ReceiverReportMsg>;

/// Serializes a message. Never fails (memory aside).
std::vector<std::uint8_t> encode(const Message& msg);

/// Serializes into `out` (cleared first; capacity is reused). The announce
/// hot path encodes every packet through one pooled buffer per endpoint, so
/// steady-state serialization allocates nothing.
void encode_into(const Message& msg, std::vector<std::uint8_t>& out);

/// Exact value of encode(msg).size() without encoding (no allocation).
/// The scheduler charges packets by size before deciding to build them.
[[nodiscard]] std::size_t encoded_size(const Message& msg);

/// Exact encode() size of a DataMsg carrying `chunk_len` payload bytes of
/// this (path, adu). The path+tags+fixed-field header portion is cached on
/// the Adu after the first call, making the sender's per-announcement size
/// arithmetic O(1).
[[nodiscard]] std::size_t data_msg_wire_size(const Path& path, const Adu& adu,
                                             std::size_t chunk_len);

/// Exact encode() size of the SignaturesMsg the sender would build for the
/// internal node at `path` (no message materialization; the child summaries
/// are priced by walking the tree in place).
[[nodiscard]] std::size_t signatures_msg_wire_size(const Path& path,
                                                   const NamespaceTree& tree);

/// Parses a message; nullopt on any malformed input (short buffer, bad type,
/// overlong counts, non-canonical paths).
std::optional<Message> decode(const std::vector<std::uint8_t>& bytes);

/// Wire size of the encoded message plus UDP/IP framing overhead, for
/// charging the simulated channel.
inline constexpr std::uint32_t kFramingOverhead = 28;

}  // namespace sst::sstp
