#include "sstp/wire.hpp"

#include <cstring>
#include <limits>

namespace sst::sstp {

namespace {

enum class MsgType : std::uint8_t {
  kData = 1,
  kSummary = 2,
  kSigRequest = 3,
  kSignatures = 4,
  kNack = 5,
  kReceiverReport = 6,
};

// Hard caps protecting decoders against hostile length fields.
constexpr std::size_t kMaxPathComponents = 64;
constexpr std::size_t kMaxNameLen = 255;
constexpr std::size_t kMaxTags = 32;
constexpr std::size_t kMaxChildren = 4096;
constexpr std::size_t kMaxChunk = 1 << 20;

/// Appends to a caller-owned buffer, so encode_into can reuse one pooled
/// vector per endpoint across every packet.
class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) out_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(std::uint8_t(v >> (8 * i)));
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    u64(bits);
  }
  void bytes(const std::vector<std::uint8_t>& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    out_.insert(out_.end(), b.begin(), b.end());
  }
  void str(std::string_view s) {
    const std::size_t len = std::min<std::size_t>(s.size(), kMaxNameLen);
    u8(static_cast<std::uint8_t>(len));
    out_.insert(out_.end(), s.begin(),
                s.begin() + static_cast<std::ptrdiff_t>(len));
  }
  void digest(const hash::Digest& d) {
    out_.insert(out_.end(), d.bytes().begin(), d.bytes().end());
  }
  void path(const Path& p) {
    u8(static_cast<std::uint8_t>(p.depth()));
    for (std::size_t i = 0; i < p.depth(); ++i) str(p.component(i));
  }
  void tags(const MetaTags& t) {
    u8(static_cast<std::uint8_t>(std::min<std::size_t>(t.size(), kMaxTags)));
    for (std::size_t i = 0; i < t.size() && i < kMaxTags; ++i) str(t[i]);
  }

 private:
  std::vector<std::uint8_t>& out_;
};

// Size arithmetic mirroring Writer exactly (same truncation caps), so
// encoded_size(msg) == encode(msg).size() always — guarded by wire tests.
std::size_t str_wire_size(std::string_view s) {
  return 1 + std::min<std::size_t>(s.size(), kMaxNameLen);
}

std::size_t path_wire_size(const Path& p) {
  std::size_t n = 1;
  for (std::size_t i = 0; i < p.depth(); ++i) {
    n += str_wire_size(p.component(i));
  }
  return n;
}

std::size_t tags_wire_size(const MetaTags& t) {
  std::size_t n = 1;
  for (std::size_t i = 0; i < t.size() && i < kMaxTags; ++i) {
    n += str_wire_size(t[i]);
  }
  return n;
}

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& in) : in_(in) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > in_.size()) return false;
    v = in_[pos_++];
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > in_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(in_[pos_++]) << (8 * i);
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > in_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(in_[pos_++]) << (8 * i);
    return true;
  }
  bool f64(double& v) {
    std::uint64_t bits;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, 8);
    return true;
  }
  bool bytes(std::vector<std::uint8_t>& b, std::size_t max) {
    std::uint32_t len;
    if (!u32(len) || len > max || pos_ + len > in_.size()) return false;
    b.assign(in_.begin() + static_cast<std::ptrdiff_t>(pos_),
             in_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return true;
  }
  /// Zero-copy string read: a view into the input buffer, valid until the
  /// buffer dies. Used where the bytes are consumed immediately (interning,
  /// assignment) rather than stored.
  bool str_view(std::string_view& s) {
    std::uint8_t len;
    if (!u8(len) || len > kMaxNameLen || pos_ + len > in_.size()) return false;
    s = std::string_view(reinterpret_cast<const char*>(in_.data() + pos_),
                         len);
    pos_ += len;
    return true;
  }
  bool str(std::string& s) {
    std::string_view v;
    if (!str_view(v)) return false;
    s.assign(v);
    return true;
  }
  bool digest(hash::Digest& d) {
    if (pos_ + 16 > in_.size()) return false;
    hash::Digest::Bytes b;
    std::memcpy(b.data(), in_.data() + pos_, 16);
    pos_ += 16;
    d = hash::Digest(b);
    return true;
  }
  bool path(Path& p) {
    std::uint8_t n;
    if (!u8(n) || n > kMaxPathComponents) return false;
    p = Path();
    Interner& interner = Interner::global();
    for (std::uint8_t i = 0; i < n; ++i) {
      std::string_view c;
      if (!str_view(c) || c.empty()) return false;  // canonical: no empties
      p.push(interner.intern(c));
    }
    return true;
  }
  bool tags(MetaTags& t) {
    std::uint8_t n;
    if (!u8(n) || n > kMaxTags) return false;
    t.clear();
    t.reserve(n);
    for (std::uint8_t i = 0; i < n; ++i) {
      std::string s;
      if (!str(s)) return false;
      t.push_back(std::move(s));
    }
    return true;
  }
  /// All input consumed — trailing garbage is rejected.
  [[nodiscard]] bool done() const { return pos_ == in_.size(); }

 private:
  const std::vector<std::uint8_t>& in_;
  std::size_t pos_ = 0;
};

}  // namespace

void encode_into(const Message& msg, std::vector<std::uint8_t>& out) {
  out.clear();
  Writer w(out);
  if (const auto* m = std::get_if<DataMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(MsgType::kData));
    w.path(m->path);
    w.u64(m->version);
    w.u64(m->total_size);
    w.u64(m->offset);
    w.bytes(m->chunk);
    w.tags(m->tags);
    w.u64(m->seq);
    w.u8(m->is_repair ? 1 : 0);
  } else if (const auto* m2 = std::get_if<SummaryMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(MsgType::kSummary));
    w.digest(m2->root_digest);
    w.u64(m2->epoch);
    w.u64(m2->leaf_count);
    w.u64(m2->seq);
  } else if (const auto* m3 = std::get_if<SigRequestMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(MsgType::kSigRequest));
    w.path(m3->path);
  } else if (const auto* m4 = std::get_if<SignaturesMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(MsgType::kSignatures));
    w.path(m4->path);
    w.digest(m4->node_digest);
    w.u64(m4->seq);
    w.u32(static_cast<std::uint32_t>(m4->children.size()));
    for (const auto& c : m4->children) {
      w.str(c.name);
      w.digest(c.digest);
      w.u8(c.is_leaf ? 1 : 0);
      w.tags(c.tags);
    }
  } else if (const auto* m5 = std::get_if<NackMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(MsgType::kNack));
    w.path(m5->path);
    w.u64(m5->version_hint);
    w.u64(m5->from_offset);
  } else if (const auto* m6 = std::get_if<ReceiverReportMsg>(&msg)) {
    w.u8(static_cast<std::uint8_t>(MsgType::kReceiverReport));
    w.f64(m6->loss_estimate);
    w.u64(m6->received);
    w.u64(m6->expected);
  }
}

std::vector<std::uint8_t> encode(const Message& msg) {
  std::vector<std::uint8_t> out;
  out.reserve(encoded_size(msg));
  encode_into(msg, out);
  return out;
}

std::size_t encoded_size(const Message& msg) {
  if (const auto* m = std::get_if<DataMsg>(&msg)) {
    return 1 + path_wire_size(m->path) + 8 + 8 + 8 + (4 + m->chunk.size()) +
           tags_wire_size(m->tags) + 8 + 1;
  }
  if (std::get_if<SummaryMsg>(&msg) != nullptr) {
    return 1 + 16 + 8 + 8 + 8;
  }
  if (const auto* m3 = std::get_if<SigRequestMsg>(&msg)) {
    return 1 + path_wire_size(m3->path);
  }
  if (const auto* m4 = std::get_if<SignaturesMsg>(&msg)) {
    std::size_t n = 1 + path_wire_size(m4->path) + 16 + 8 + 4;
    for (const auto& c : m4->children) {
      n += str_wire_size(c.name) + 16 + 1 + tags_wire_size(c.tags);
    }
    return n;
  }
  if (const auto* m5 = std::get_if<NackMsg>(&msg)) {
    return 1 + path_wire_size(m5->path) + 8 + 8;
  }
  // ReceiverReportMsg
  return 1 + 8 + 8 + 8;
}

std::size_t data_msg_wire_size(const Path& path, const Adu& adu,
                               std::size_t chunk_len) {
  if (adu.cached_header_size == 0) {
    // type + path + version/total/offset + tags + seq + repair flag; the
    // 4-byte chunk length prefix rides with the payload term below.
    adu.cached_header_size = static_cast<std::uint32_t>(
        1 + path_wire_size(path) + 8 + 8 + 8 + tags_wire_size(adu.tags) + 8 +
        1);
  }
  return adu.cached_header_size + 4 + chunk_len;
}

std::size_t signatures_msg_wire_size(const Path& path,
                                     const NamespaceTree& tree) {
  std::size_t n = 1 + path_wire_size(path) + 16 + 8 + 4;
  static const MetaTags kNoTags;
  tree.for_each_child(path, [&n](std::string_view name, bool /*is_leaf*/,
                                 const MetaTags* tags) {
    n += str_wire_size(name) + 16 + 1 +
         tags_wire_size(tags != nullptr ? *tags : kNoTags);
  });
  return n;
}

std::optional<Message> decode(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  std::uint8_t type;
  if (!r.u8(type)) return std::nullopt;
  switch (static_cast<MsgType>(type)) {
    case MsgType::kData: {
      DataMsg m;
      std::uint8_t repair;
      if (!r.path(m.path) || !r.u64(m.version) || !r.u64(m.total_size) ||
          !r.u64(m.offset) || !r.bytes(m.chunk, kMaxChunk) ||
          !r.tags(m.tags) || !r.u64(m.seq) || !r.u8(repair) || !r.done()) {
        return std::nullopt;
      }
      if (m.path.is_root()) return std::nullopt;
      if (m.offset > m.total_size ||
          m.offset + m.chunk.size() > m.total_size) {
        return std::nullopt;
      }
      m.is_repair = repair != 0;
      return m;
    }
    case MsgType::kSummary: {
      SummaryMsg m;
      if (!r.digest(m.root_digest) || !r.u64(m.epoch) ||
          !r.u64(m.leaf_count) || !r.u64(m.seq) || !r.done()) {
        return std::nullopt;
      }
      return m;
    }
    case MsgType::kSigRequest: {
      SigRequestMsg m;
      if (!r.path(m.path) || !r.done()) return std::nullopt;
      return m;
    }
    case MsgType::kSignatures: {
      SignaturesMsg m;
      std::uint32_t n;
      if (!r.path(m.path) || !r.digest(m.node_digest) || !r.u64(m.seq) ||
          !r.u32(n) || n > kMaxChildren) {
        return std::nullopt;
      }
      m.children.resize(n);
      for (auto& c : m.children) {
        std::uint8_t leaf;
        if (!r.str(c.name) || c.name.empty() || !r.digest(c.digest) ||
            !r.u8(leaf) || !r.tags(c.tags)) {
          return std::nullopt;
        }
        c.is_leaf = leaf != 0;
      }
      if (!r.done()) return std::nullopt;
      return m;
    }
    case MsgType::kNack: {
      NackMsg m;
      if (!r.path(m.path) || !r.u64(m.version_hint) ||
          !r.u64(m.from_offset) || !r.done()) {
        return std::nullopt;
      }
      if (m.path.is_root()) return std::nullopt;
      return m;
    }
    case MsgType::kReceiverReport: {
      ReceiverReportMsg m;
      if (!r.f64(m.loss_estimate) || !r.u64(m.received) ||
          !r.u64(m.expected) || !r.done()) {
        return std::nullopt;
      }
      if (!(m.loss_estimate >= 0.0 && m.loss_estimate <= 1.0)) {
        return std::nullopt;
      }
      return m;
    }
    default:
      return std::nullopt;
  }
}

}  // namespace sst::sstp
