// interner.hpp — process-wide string interner for namespace path components.
//
// Every Path stores its components as 32-bit symbol ids instead of owning
// one heap std::string per component; the interner maps each distinct
// component spelling (case-sensitive) to one id for the life of the
// process. Interning makes Path copies allocation-free (the announce hot
// path copies paths constantly), component equality an integer compare,
// and lets the namespace tree cache per-component name digests by id.
//
// Symbol ids are assignment-order handles, NOT ordered like the names they
// denote. Anything observable (wire bytes, digests, child iteration,
// Path ordering) must compare the *names*, never the raw ids — otherwise
// runs would depend on which thread interned a string first. See
// DESIGN.md, "Incremental digests and interned paths".
//
// Thread safety: sst::runner executes replications on a thread pool and
// every replication parses paths, so intern() takes a shared mutex
// (reader-mode on the hit path). name(id) is lock-free: ids index into
// chunked stable storage published with release/acquire, so the digest and
// comparison hot paths never touch the lock.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "check/check.hpp"

namespace sst::sstp {

/// Interned component id. Valid ids are dense from 0.
using Symbol = std::uint32_t;

/// The component-string interner. Use Interner::global(); instances are
/// only constructed directly by tests.
class Interner {
 public:
  Interner() = default;
  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  /// The process-wide instance every Path goes through.
  static Interner& global();

  /// Returns the symbol for `name`, interning it on first sight. Distinct
  /// spellings (including case) get distinct symbols, and equal spellings
  /// always return the same symbol.
  Symbol intern(std::string_view name);

  /// The spelling of a symbol previously returned by intern(). Lock-free.
  [[nodiscard]] std::string_view name(Symbol id) const {
    const Chunk* chunk =
        chunks_[id >> kChunkBits].load(std::memory_order_acquire);
    return *chunk->names[id & kChunkMask].load(std::memory_order_acquire);
  }

  /// Number of distinct symbols interned so far.
  [[nodiscard]] std::size_t size() const {
    return count_.load(std::memory_order_acquire);
  }

  /// Appends every violated invariant to `out` (sst::check): the symbol
  /// table is a bijection — every id in [0, size) renders to a published,
  /// stable name, and looking that name up returns the same id — and the
  /// id map covers exactly the issued symbols. Takes the reader lock.
  void check_invariants(check::Violations& out) const;

 private:
  friend struct check::Corrupter;

  /// SST_CHECK hook: self-audit every 64th *new* symbol (called under the
  /// writer lock, where the map and the chunks are quiescent).
  void maybe_audit_locked() {
#if SST_CHECK_ENABLED
    if (check::due(audit_tick_, 64)) {
      check::Violations v;
      check_invariants_locked(v);
      check::report("Interner", v);
    }
#endif
  }
  void check_invariants_locked(check::Violations& out) const;
  static constexpr std::size_t kChunkBits = 12;  // 4096 symbols per chunk
  static constexpr std::size_t kChunkMask = (1u << kChunkBits) - 1;
  static constexpr std::size_t kMaxChunks = 1u << 12;  // 16M symbols total

  struct Chunk {
    std::array<std::atomic<const std::string*>, 1u << kChunkBits> names{};
  };

  mutable std::shared_mutex mu_;
  std::uint64_t audit_tick_ = 0;  // SST_CHECK cadence; writer-lock guarded
  // Keys view into store_ entries, which never move (deque).
  std::unordered_map<std::string_view, Symbol> ids_;
  std::deque<std::string> store_;
  std::deque<Chunk> chunk_store_;
  std::array<std::atomic<Chunk*>, kMaxChunks> chunks_{};
  std::atomic<std::uint32_t> count_{0};
};

}  // namespace sst::sstp
