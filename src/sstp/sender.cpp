#include "sstp/sender.hpp"

#include <algorithm>
#include <array>

namespace sst::sstp {

namespace {
constexpr double kAppRateEwmaAlpha = 0.3;
constexpr sim::Duration kAppRateBucket = 10.0;
}  // namespace

Sender::Sender(sim::Simulator& sim, SenderConfig config,
               std::function<void(const WireBytes&, sim::Bytes)> transmit)
    : sim_(&sim),
      config_(config),
      transmit_(std::move(transmit)),
      tree_(config.algo),
      service_timer_(sim),
      cold_wakeup_(sim) {
  if (config_.class_weights.empty()) config_.class_weights = {1.0};
  if (config_.control_class >= config_.class_weights.size()) {
    config_.control_class = 0;
  }
  // Figure 12's allocation hierarchy: data splits {hot, cold}; hot splits
  // across the application's classes by weight.
  hot_group_ = scheduler_.add_group(sched::HierarchicalScheduler::kRoot,
                                    config_.hot_share);
  for (const double w : config_.class_weights) {
    scheduler_.add_class_in(hot_group_, w);  // external ids 0..N-1
  }
  cold_class_ = scheduler_.add_class_in(sched::HierarchicalScheduler::kRoot,
                                        1.0 - config_.hot_share);
  hot_.resize(config_.class_weights.size());
  app_bucket_start_ = sim.now();
}

std::size_t Sender::class_of(const Path& path, const MetaTags& tags) const {
  if (!config_.classify) return 0;
  const std::size_t cls = config_.classify(path, tags);
  return cls < hot_.size() ? cls : hot_.size() - 1;
}

// ------------------------------------------------------------- application

bool Sender::publish(const Path& path, std::vector<std::uint8_t> data,
                     MetaTags tags) {
  const double bytes = static_cast<double>(data.size());
  // Wire-cost estimate per publish: payload plus per-packet header/framing
  // overhead (path, tags, fixed fields, UDP/IP). Small ADUs are dominated by
  // this overhead, and the allocator's back-pressure must account for it.
  const double overhead =
      static_cast<double>(path.str_size()) + 96.0 +
      static_cast<double>(kFramingOverhead);
  if (!tree_.put(path, std::move(data), std::move(tags))) return false;
  const Adu* adu = tree_.find(path);
  track_app_bytes(bytes + overhead);
  // Queue the full (new) version hot, superseding anything queued.
  enqueue_data(path, 0, adu->total_size, adu->version, /*is_repair=*/false);
  return true;
}

bool Sender::remove(const Path& path) {
  if (!tree_.remove(path)) return false;
  // Stale queue entries for removed paths are skipped lazily.
  return true;
}

void Sender::track_app_bytes(double bytes) {
  const sim::SimTime now = sim_->now();
  if (now - app_bucket_start_ >= kAppRateBucket) {
    const double rate =
        app_bucket_bytes_ * 8.0 / (now - app_bucket_start_);
    app_rate_bps_ = app_rate_bps_ == 0.0
                        ? rate
                        : (1.0 - kAppRateEwmaAlpha) * app_rate_bps_ +
                              kAppRateEwmaAlpha * rate;
    app_bucket_bytes_ = 0.0;
    app_bucket_start_ = now;
  }
  app_bucket_bytes_ += bytes;
}

// ------------------------------------------------------------ queueing core

void Sender::enqueue_data(const Path& path, std::uint64_t offset,
                          std::uint64_t end, std::uint64_t version,
                          bool is_repair) {
  if (queued_paths_.contains(path)) {
    // Version updates reset the tree's right edge; the queued item's range
    // is refreshed when it reaches the head (it re-reads the ADU).
    return;
  }
  TxItem item;
  item.kind = TxItem::Kind::kData;
  item.path = path;
  item.offset = offset;
  item.end = end;
  item.version = version;
  item.is_repair = is_repair;
  if (is_repair) ++pending_repairs_;
  queued_paths_.insert(path);
  const Adu* adu = tree_.find(path);
  const std::size_t cls = class_of(path, adu != nullptr ? adu->tags
                                                        : MetaTags{});
  hot_[cls].push_back(std::move(item));
  maybe_start_service();
}

std::optional<Sender::HotHead> Sender::peek_hot_head(std::size_t cls) {
  std::deque<TxItem>& queue = hot_[cls];
  while (!queue.empty()) {
    TxItem& item = queue.front();
    if (item.kind == TxItem::Kind::kSignatures) {
      if (!tree_.exists(item.path) || tree_.find(item.path) != nullptr) {
        // Gone, or became a leaf: nothing to sign.
        queued_sigs_.erase(item.path);
        queue.pop_front();
        continue;
      }
      HotHead head;
      head.item = &item;
      head.size = static_cast<sim::Bytes>(
          signatures_msg_wire_size(item.path, tree_) + kFramingOverhead);
      return head;
    }

    const Adu* adu = tree_.find(item.path);
    if (adu == nullptr) {
      // Removed while queued.
      if (item.is_repair && pending_repairs_ > 0) --pending_repairs_;
      queued_paths_.erase(item.path);
      queue.pop_front();
      continue;
    }
    if (adu->version != item.version) {
      // Updated while queued: restart the item for the new version.
      item.version = adu->version;
      item.offset = 0;
      item.end = adu->total_size;
      if (item.is_repair) {
        item.is_repair = false;  // the fresh version is ordinary new data
        if (pending_repairs_ > 0) --pending_repairs_;
      }
    }
    if (item.offset >= item.end || item.offset >= adu->total_size) {
      // Nothing (left) to send — zero-length ADUs still announce themselves
      // through the summary digest; send one empty chunk so receivers learn
      // the version... handled below by allowing offset==end==0.
      if (adu->total_size == 0 && item.offset == 0) {
        // fall through to price the empty chunk
      } else {
        if (item.is_repair && pending_repairs_ > 0) --pending_repairs_;
        queued_paths_.erase(item.path);
        queue.pop_front();
        continue;
      }
    }

    HotHead head;
    head.item = &item;
    head.adu = adu;
    head.chunk_end =
        std::min<std::uint64_t>(item.offset + config_.mtu,
                                std::min(item.end, adu->total_size));
    head.size = static_cast<sim::Bytes>(
        data_msg_wire_size(item.path, *adu, head.chunk_end - item.offset) +
        kFramingOverhead);
    return head;
  }
  return std::nullopt;
}

Message Sender::build_hot_msg(const HotHead& head) {
  const TxItem& item = *head.item;
  if (item.kind == TxItem::Kind::kSignatures) {
    SignaturesMsg msg;
    msg.path = item.path;
    msg.node_digest = *tree_.digest(item.path);
    msg.children = tree_.children(item.path);
    return msg;
  }
  const Adu* adu = head.adu;
  DataMsg msg;
  msg.path = item.path;
  msg.version = adu->version;
  msg.total_size = adu->total_size;
  msg.offset = item.offset;
  msg.chunk.assign(
      adu->data.begin() + static_cast<std::ptrdiff_t>(item.offset),
      adu->data.begin() + static_cast<std::ptrdiff_t>(head.chunk_end));
  msg.tags = adu->tags;
  msg.seq = next_seq_;  // assigned for real at transmission
  msg.is_repair = item.is_repair;
  return msg;
}

void Sender::consume_hot_head(std::size_t cls, const Message& msg) {
  std::deque<TxItem>& queue = hot_[cls];
  TxItem& item = queue.front();
  if (const auto* data = std::get_if<DataMsg>(&msg)) {
    const std::uint64_t sent_end = data->offset + data->chunk.size();
    item.offset = sent_end;
    // Advance the tree's transmitted right edge (initial transmissions).
    const Adu* adu = tree_.find(item.path);
    if (adu != nullptr && adu->version == data->version &&
        sent_end > adu->right_edge) {
      tree_.advance_right_edge(item.path, sent_end - adu->right_edge);
    }
    ++stats_.data_tx;
    if (data->is_repair) ++stats_.repair_tx;
    if (item.offset >= item.end || data->chunk.empty()) {
      if (item.is_repair && pending_repairs_ > 0) --pending_repairs_;
      queued_paths_.erase(item.path);
      queue.pop_front();
    }
  } else {
    ++stats_.sig_tx;
    queued_sigs_.erase(item.path);
    queue.pop_front();
  }
}

Message Sender::build_summary() {
  SummaryMsg msg;
  msg.root_digest = tree_.root_digest();
  msg.epoch = summary_epoch_;
  msg.leaf_count = tree_.leaf_count();
  return msg;
}

bool Sender::cold_eligible() const {
  // Epsilon guards against a floating-point livelock: a wakeup armed for
  // "interval minus elapsed" can land an ulp short of eligibility, and at
  // large clock values adding the remainder no longer changes the clock.
  return sim_->now() - last_summary_ >= config_.min_summary_interval - 1e-9;
}

double Sender::hot_head_bits(std::size_t cls) {
  const auto head = peek_hot_head(cls);
  if (!head) return sched::kEmpty;
  return sim::bits(head->size);
}

double Sender::cold_head_bits() {
  if (!cold_eligible()) return sched::kEmpty;
  // A SummaryMsg is fixed-size, so pricing the cold class costs neither a
  // root-digest computation nor an encode.
  return sim::bits(static_cast<sim::Bytes>(
      encoded_size(SummaryMsg{}) + kFramingOverhead));
}

void Sender::arm_cold_wakeup() {
  const sim::Duration wait =
      config_.min_summary_interval - (sim_->now() - last_summary_);
  if (wait <= 0) return;
  // Floor keeps the wakeup strictly in the future even when `wait` is below
  // the clock's representable resolution.
  cold_wakeup_.arm(std::max(wait, 1e-6), [this] { maybe_start_service(); });
}

void Sender::pause() {
  paused_ = true;
  busy_ = false;
  service_timer_.cancel();  // the in-flight packet dies with the "process"
  cold_wakeup_.cancel();
}

void Sender::resume() {
  paused_ = false;
  maybe_start_service();
}

void Sender::maybe_start_service() {
  if (busy_ || paused_) return;
  std::vector<double> heads(hot_.size() + 1);
  bool any = false;
  for (std::size_t c = 0; c < hot_.size(); ++c) {
    heads[c] = hot_head_bits(c);
    any = any || heads[c] >= 0;
  }
  heads[cold_class_] = cold_head_bits();
  any = any || heads[cold_class_] >= 0;
  if (!any) {
    // Idle; if only the summary cool-down blocks us, wake when it ends.
    arm_cold_wakeup();
    return;
  }
  const std::size_t cls = scheduler_.pick(heads);
  if (cls == sched::kNone) return;

  Message msg;
  sim::Bytes size = 0;
  if (cls != cold_class_) {
    const auto head = peek_hot_head(cls);
    size = head->size;
    msg = build_hot_msg(*head);
    // Every forward packet consumes one slot of the shared sequence space,
    // so receivers can order announcements as well as data: a reordered or
    // duplicated Summary/Signatures carrying an old seq is recognizably
    // stale and must never regress receiver state.
    if (auto* data = std::get_if<DataMsg>(&msg)) {
      data->seq = next_seq_++;
    } else if (auto* sigs = std::get_if<SignaturesMsg>(&msg)) {
      sigs->seq = next_seq_++;
    }
    consume_hot_head(cls, msg);
  } else {
    msg = build_summary();
    std::get<SummaryMsg>(msg).seq = next_seq_++;
    ++summary_epoch_;
    ++stats_.summary_tx;
    last_summary_ = sim_->now();
    size = static_cast<sim::Bytes>(encoded_size(msg) + kFramingOverhead);
  }

  busy_ = true;
  stats_.bytes_tx += size;
  const sim::Duration service = sim::transmission_time(size, config_.mu_data);
  // The single encode happens at transmission time, into the pooled buffer.
  service_timer_.arm(service, [this, msg = std::move(msg), size] {
    encode_into(msg, tx_buf_);
    transmit_(tx_buf_, size);
    finish_service();
  });
}

void Sender::finish_service() {
  busy_ = false;
  maybe_start_service();
}

// ----------------------------------------------------------------- feedback

void Sender::handle_feedback(const WireBytes& bytes) {
  if (paused_) return;  // a crashed sender hears nothing
  const auto msg = decode(bytes);
  if (!msg) {
    ++stats_.decode_errors;
    return;
  }
  if (const auto* nack = std::get_if<NackMsg>(&*msg)) {
    handle_nack(*nack);
  } else if (const auto* req = std::get_if<SigRequestMsg>(&*msg)) {
    handle_sig_request(*req);
  } else if (const auto* report = std::get_if<ReceiverReportMsg>(&*msg)) {
    handle_report(*report);
  } else {
    ++stats_.decode_errors;  // data/summary/signatures on the reverse path
  }
}

void Sender::handle_nack(const NackMsg& nack) {
  ++stats_.nacks_rx;
  const Adu* adu = tree_.find(nack.path);
  if (adu == nullptr) {
    // Dead or never existed; the next summary/signature exchange tells the
    // receiver to drop it.
    ++stats_.nacks_ignored;
    return;
  }
  if (queued_paths_.contains(nack.path)) {
    ++stats_.nacks_ignored;  // already scheduled (implicit suppression)
    return;
  }
  if (pending_repairs_ >= config_.max_pending_repairs) {
    ++stats_.nacks_ignored;  // repair damping
    return;
  }
  std::uint64_t from = nack.from_offset;
  if (nack.version_hint != adu->version) from = 0;  // full resend of new ver
  from = std::min<std::uint64_t>(from, adu->total_size);
  enqueue_data(nack.path, from, adu->total_size, adu->version,
               /*is_repair=*/true);
}

void Sender::handle_sig_request(const SigRequestMsg& req) {
  ++stats_.sig_requests_rx;
  if (!tree_.exists(req.path) || tree_.find(req.path) != nullptr) {
    return;  // unknown node or a leaf: nothing to sign
  }
  if (queued_sigs_.contains(req.path)) return;  // dedup
  queued_sigs_.insert(req.path);
  TxItem item;
  item.kind = TxItem::Kind::kSignatures;
  item.path = req.path;
  hot_[config_.control_class].push_back(std::move(item));
  maybe_start_service();
}

void Sender::handle_report(const ReceiverReportMsg& report) {
  ++stats_.reports_rx;
  measured_loss_ = loss_seeded_
                       ? 0.75 * measured_loss_ + 0.25 * report.loss_estimate
                       : report.loss_estimate;
  loss_seeded_ = true;

  if (allocator_) {
    // Flush the app-rate bucket so the estimate is current.
    track_app_bytes(0);
    const double rate = std::max(app_rate_bps_,
                                 app_bucket_bytes_ * 8.0 /
                                     std::max(sim_->now() - app_bucket_start_,
                                              1.0));
    const Allocation alloc = allocator_->allocate(measured_loss_, rate);
    apply(alloc);
    if (allocation_fn_) allocation_fn_(alloc);
    if (alloc.rate_warning) {
      ++stats_.rate_warnings;
      if (rate_warning_fn_) rate_warning_fn_(alloc);
    }
  }
}

void Sender::apply(const Allocation& alloc) {
  if (alloc.mu_data > 0) config_.mu_data = alloc.mu_data;
  config_.hot_share = std::clamp(alloc.hot_share, 0.01, 0.99);
  scheduler_.set_group_weight(hot_group_, config_.hot_share);
  scheduler_.set_weight(cold_class_, 1.0 - config_.hot_share);
}

}  // namespace sst::sstp
