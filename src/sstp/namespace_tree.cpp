#include "sstp/namespace_tree.hpp"

#include <algorithm>

namespace sst::sstp {

NamespaceTree::NamespaceTree(hash::DigestAlgo algo)
    : algo_(algo), hasher_(algo) {
  pool_.emplace_back();  // index 0: the root
}

// ----------------------------------------------------------------- pool

NamespaceTree::NodeIdx NamespaceTree::alloc_node() {
  if (!free_.empty()) {
    const NodeIdx idx = free_.back();
    free_.pop_back();
    return idx;  // fields were reset by free_node; children capacity kept
  }
  pool_.emplace_back();
  return static_cast<NodeIdx>(pool_.size() - 1);
}

void NamespaceTree::free_node(NodeIdx idx) {
  Node& n = pool_[idx];
  n.adu.reset();
  n.children.clear();
  n.digest_valid = false;
  free_.push_back(idx);
}

// ------------------------------------------------------------- children

NamespaceTree::NodeIdx NamespaceTree::find_child(NodeIdx parent,
                                                 Symbol sym) const {
  const std::vector<ChildRef>& kids = pool_[parent].children;
  if (kids.size() <= kLinearScanMax) {
    for (const ChildRef& c : kids) {
      if (c.sym == sym) return c.node;
    }
    return kNil;
  }
  const Interner& in = Interner::global();
  const std::string_view name = in.name(sym);
  const auto it = std::lower_bound(kids.begin(), kids.end(), name,
                                   [&in](const ChildRef& c,
                                         std::string_view target) {
                                     return in.name(c.sym) < target;
                                   });
  if (it != kids.end() && it->sym == sym) return it->node;
  return kNil;
}

NamespaceTree::NodeIdx NamespaceTree::insert_child(NodeIdx parent,
                                                   Symbol sym) {
  const NodeIdx child = alloc_node();  // may reallocate pool_: do it first
  std::vector<ChildRef>& kids = pool_[parent].children;
  const Interner& in = Interner::global();
  const std::string_view name = in.name(sym);
  const auto it = std::lower_bound(kids.begin(), kids.end(), name,
                                   [&in](const ChildRef& c,
                                         std::string_view target) {
                                     return in.name(c.sym) < target;
                                   });
  kids.insert(it, ChildRef{sym, child});
  return child;
}

void NamespaceTree::erase_child(NodeIdx parent, Symbol sym) {
  std::vector<ChildRef>& kids = pool_[parent].children;
  for (auto it = kids.begin(); it != kids.end(); ++it) {
    if (it->sym == sym) {
      kids.erase(it);
      return;
    }
  }
}

// ----------------------------------------------------------------- walks

NamespaceTree::NodeIdx NamespaceTree::walk(const Path& path) const {
  NodeIdx n = 0;
  for (std::size_t i = 0; i < path.depth(); ++i) {
    n = find_child(n, path.symbol(i));
    if (n == kNil) return kNil;
  }
  return n;
}

NamespaceTree::NodeIdx NamespaceTree::walk_record(const Path& path) {
  spine_.clear();
  NodeIdx n = 0;
  spine_.push_back(n);
  for (std::size_t i = 0; i < path.depth(); ++i) {
    n = find_child(n, path.symbol(i));
    if (n == kNil) return kNil;
    spine_.push_back(n);
  }
  return n;
}

NamespaceTree::NodeIdx NamespaceTree::walk_create(const Path& path) {
  spine_.clear();
  NodeIdx n = 0;
  spine_.push_back(n);
  for (std::size_t i = 0; i < path.depth(); ++i) {
    if (pool_[n].adu.has_value()) return kNil;  // a leaf blocks the way
    NodeIdx next = find_child(n, path.symbol(i));
    if (next == kNil) next = insert_child(n, path.symbol(i));
    n = next;
    spine_.push_back(n);
  }
  return n;
}

void NamespaceTree::mark_spine_dirty() {
  for (const NodeIdx idx : spine_) pool_[idx].digest_valid = false;
}

// -------------------------------------------------------------- mutation

bool NamespaceTree::put(const Path& path, std::vector<std::uint8_t> data,
                        MetaTags tags) {
  if (path.is_root()) return false;
  const NodeIdx idx = walk_create(path);
  if (idx == kNil) return false;
  Node& n = pool_[idx];
  if (!n.children.empty()) return false;  // already an internal node
  const bool was_leaf = n.adu.has_value();
  // Fresh leaves start above the version floor, not at 1: if this path (or
  // any other) was removed and is now being re-published, restarting at 1
  // would alias the new incarnation with the old one — a receiver that
  // never saw the removal would keep the stale body forever, since its
  // (version, right_edge) leaf digest can agree while the data differs.
  // Remove-free histories keep the floor at 0, so their versions (and
  // digests) are unchanged.
  const std::uint64_t next_version =
      was_leaf ? n.adu->version + 1 : version_floor_ + 1;
  Adu adu;
  adu.version = next_version;
  adu.total_size = data.size();
  adu.data = std::move(data);
  adu.right_edge = 0;
  adu.tags = std::move(tags);
  n.adu = std::move(adu);
  if (!was_leaf) ++leaf_count_;
  mark_spine_dirty();
  maybe_audit();
  return true;
}

bool NamespaceTree::apply_chunk(const Path& path, std::uint64_t version,
                                std::uint64_t total_size, std::uint64_t offset,
                                std::span<const std::uint8_t> chunk,
                                const MetaTags& tags) {
  if (path.is_root()) return false;
  const NodeIdx idx = walk_create(path);
  if (idx == kNil) return false;
  Node& n = pool_[idx];
  if (!n.children.empty()) return false;
  if (!n.adu.has_value()) {
    n.adu = Adu{};
    ++leaf_count_;
  }
  Adu& adu = *n.adu;
  if (version < adu.version) return false;  // stale
  if (version > adu.version) {
    adu.version = version;
    adu.data.clear();
    adu.right_edge = 0;
    adu.total_size = total_size;
    adu.tags = tags;
    adu.cached_header_size = 0;  // tags changed
  }
  if (adu.data.size() < total_size) adu.data.resize(total_size, 0);

  const std::uint64_t end = offset + chunk.size();
  if (end > adu.data.size()) return false;  // malformed chunk
  std::copy(chunk.begin(), chunk.end(),
            adu.data.begin() + static_cast<std::ptrdiff_t>(offset));
  if (offset <= adu.right_edge && end > adu.right_edge) {
    adu.right_edge = end;
  }
  mark_spine_dirty();
  maybe_audit();
  return true;
}

bool NamespaceTree::advance_right_edge(const Path& path,
                                       std::uint64_t bytes_sent) {
  const NodeIdx idx = walk_record(path);
  if (idx == kNil || !pool_[idx].adu.has_value()) return false;
  Adu& adu = *pool_[idx].adu;
  const std::uint64_t edge =
      std::min<std::uint64_t>(adu.right_edge + bytes_sent, adu.total_size);
  if (edge != adu.right_edge) {
    adu.right_edge = edge;
    mark_spine_dirty();
  }
  return true;
}

bool NamespaceTree::remove(const Path& path) {
  if (path.is_root()) return false;
  const NodeIdx idx = walk_record(path);
  if (idx == kNil) return false;

  // Free the whole subtree, counting the leaves it held and raising the
  // version floor past them (see put: re-published paths must never reuse
  // a removed incarnation's version numbers).
  std::size_t removed = 0;
  std::vector<NodeIdx> stack{idx};
  while (!stack.empty()) {
    const NodeIdx i = stack.back();
    stack.pop_back();
    Node& n = pool_[i];
    if (n.adu.has_value()) {
      ++removed;
      if (n.adu->version > version_floor_) version_floor_ = n.adu->version;
    }
    for (const ChildRef& c : n.children) stack.push_back(c.node);
    free_node(i);
  }
  leaf_count_ -= removed;

  // Detach the victim, then prune now-empty ancestors in one pass down the
  // recorded spine — spine_[k] is the node at depth k, and path.symbol(k-1)
  // is its name under spine_[k-1]. (The original re-walked from the root
  // once per pruned level: O(depth^2).)
  std::size_t level = path.depth();  // spine index of the node to detach
  while (level >= 1) {
    const NodeIdx parent = spine_[level - 1];
    erase_child(parent, path.symbol(level - 1));
    if (level == 1) break;  // the root is never pruned
    const Node& pn = pool_[parent];
    if (pn.adu.has_value() || !pn.children.empty()) break;
    free_node(parent);
    --level;
  }
  // Every surviving ancestor of the detachment point lost a descendant.
  for (std::size_t i = 0; i < level; ++i) {
    pool_[spine_[i]].digest_valid = false;
  }
  maybe_audit();
  return true;
}

void NamespaceTree::check_invariants(check::Violations& out) const {
  const Interner& in = Interner::global();

  // Walk the tree from the root: every child reference must stay inside the
  // pool, appear exactly once (no sharing, no cycles), and sit in strictly
  // name-sorted order — the canonical order the wire bytes and digests
  // depend on.
  std::vector<std::uint8_t> reachable(pool_.size(), 0);
  std::size_t leaves = 0;
  std::vector<NodeIdx> stack{0};
  reachable[0] = 1;
  while (!stack.empty()) {
    const NodeIdx at = stack.back();
    stack.pop_back();
    const Node& n = pool_[at];
    if (n.adu.has_value()) {
      ++leaves;
      if (!n.children.empty()) {
        out.push_back("node " + std::to_string(at) +
                      " is both a leaf and an internal node");
      }
      if (n.adu->right_edge > n.adu->total_size) {
        out.push_back("node " + std::to_string(at) + " right_edge " +
                      std::to_string(n.adu->right_edge) + " > total_size " +
                      std::to_string(n.adu->total_size));
      }
    }
    for (std::size_t c = 0; c < n.children.size(); ++c) {
      const ChildRef& ref = n.children[c];
      if (ref.node >= pool_.size()) {
        out.push_back("node " + std::to_string(at) + " child " +
                      std::to_string(c) + " index out of pool");
        continue;
      }
      if (ref.node == 0) {
        out.push_back("node " + std::to_string(at) + " links the root as " +
                      "a child");
        continue;
      }
      if (reachable[ref.node]++) {
        out.push_back("node " + std::to_string(ref.node) +
                      " reachable through more than one parent link");
        continue;
      }
      if (c > 0 &&
          in.name(n.children[c - 1].sym) >= in.name(ref.sym)) {
        out.push_back("node " + std::to_string(at) +
                      " children not strictly name-sorted at position " +
                      std::to_string(c));
      }
      // Dirty-spine containment: mutations mark the whole root-to-leaf
      // spine dirty, so a clean node can never sit above a dirty one.
      if (n.digest_valid && !pool_[ref.node].digest_valid) {
        out.push_back("clean node " + std::to_string(at) +
                      " has dirty child " + std::to_string(ref.node));
      }
      stack.push_back(ref.node);
    }
  }
  if (leaves != leaf_count_) {
    out.push_back("leaf_count_ = " + std::to_string(leaf_count_) + " but " +
                  std::to_string(leaves) + " reachable leaves");
  }

  // Pool partition: free-list entries are unique, unreachable, and fully
  // reset; together with the reachable set they cover the pool.
  std::vector<std::uint8_t> freed(pool_.size(), 0);
  for (const NodeIdx f : free_) {
    if (f >= pool_.size()) {
      out.push_back("free-list entry " + std::to_string(f) +
                    " out of pool");
      continue;
    }
    if (f == 0) out.push_back("the root is on the free list");
    if (freed[f]++) {
      out.push_back("node " + std::to_string(f) + " on the free list twice");
    }
    if (reachable[f]) {
      out.push_back("node " + std::to_string(f) +
                    " both reachable and on the free list");
    }
    const Node& n = pool_[f];
    if (n.adu.has_value() || !n.children.empty() || n.digest_valid) {
      out.push_back("freed node " + std::to_string(f) + " not reset");
    }
  }
  for (NodeIdx i = 0; i < pool_.size(); ++i) {
    if (!reachable[i] && !freed[i]) {
      out.push_back("node " + std::to_string(i) +
                    " leaked: neither reachable nor free");
    }
  }
}

// ---------------------------------------------------------------- lookup

bool NamespaceTree::exists(const Path& path) const {
  return walk(path) != kNil;
}

const Adu* NamespaceTree::find(const Path& path) const {
  const NodeIdx idx = walk(path);
  if (idx == kNil || !pool_[idx].adu.has_value()) return nullptr;
  return &*pool_[idx].adu;
}

const hash::Digest& NamespaceTree::name_digest(Symbol sym) const {
  if (sym >= name_digests_.size()) {
    name_digests_.resize(sym + 1);
    name_digest_valid_.resize(sym + 1, 0);
  }
  if (!name_digest_valid_[sym]) {
    name_digests_[sym] =
        hash::Digest::of_string(Interner::global().name(sym), algo_);
    name_digest_valid_[sym] = 1;
  }
  return name_digests_[sym];
}

const hash::Digest& NamespaceTree::node_digest(NodeIdx idx) const {
  const Node& n = pool_[idx];
  if (n.digest_valid) return n.cached_digest;
  if (n.adu.has_value()) {
    n.cached_digest =
        hash::Digest::of_leaf(n.adu->right_edge, n.adu->version, algo_);
  } else {
    // Two phases: first make every child digest valid (the recursion uses
    // hasher_ itself), then stream the cached values through one pass.
    // Byte-for-byte this feeds the same (name digest, subtree digest)
    // sequence that of_children hashed from the materialized vector.
    for (const ChildRef& c : n.children) {
      if (!pool_[c.node].digest_valid) (void)node_digest(c.node);
    }
    hasher_.reset();
    for (const ChildRef& c : n.children) {
      hasher_.update(name_digest(c.sym));
      hasher_.update(pool_[c.node].cached_digest);
    }
    n.cached_digest = hasher_.finish();
  }
  n.digest_valid = true;
  return n.cached_digest;
}

std::optional<hash::Digest> NamespaceTree::digest(const Path& path) const {
  const NodeIdx idx = walk(path);
  if (idx == kNil) return std::nullopt;
  return node_digest(idx);
}

hash::Digest NamespaceTree::root_digest() const { return node_digest(0); }

std::vector<ChildSummary> NamespaceTree::children(const Path& path) const {
  std::vector<ChildSummary> out;
  const NodeIdx idx = walk(path);
  if (idx == kNil) return out;
  const Node& n = pool_[idx];
  out.reserve(n.children.size());
  const Interner& in = Interner::global();
  for (const ChildRef& c : n.children) {
    const Node& child = pool_[c.node];
    ChildSummary cs;
    cs.name = std::string(in.name(c.sym));
    cs.digest = node_digest(c.node);
    cs.is_leaf = child.adu.has_value();
    if (cs.is_leaf) cs.tags = child.adu->tags;
    out.push_back(std::move(cs));
  }
  return out;
}

}  // namespace sst::sstp
