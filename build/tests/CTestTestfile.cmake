# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/hash_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/monitor_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
include("/root/repo/build/tests/sstp_path_test[1]_include.cmake")
include("/root/repo/build/tests/sstp_tree_test[1]_include.cmake")
include("/root/repo/build/tests/sstp_wire_test[1]_include.cmake")
include("/root/repo/build/tests/sstp_allocator_test[1]_include.cmake")
include("/root/repo/build/tests/sstp_session_test[1]_include.cmake")
include("/root/repo/build/tests/arq_test[1]_include.cmake")
include("/root/repo/build/tests/multicast_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_ttl_test[1]_include.cmake")
include("/root/repo/build/tests/sstp_priority_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
