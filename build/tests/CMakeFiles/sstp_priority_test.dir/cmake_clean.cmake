file(REMOVE_RECURSE
  "CMakeFiles/sstp_priority_test.dir/sstp_priority_test.cpp.o"
  "CMakeFiles/sstp_priority_test.dir/sstp_priority_test.cpp.o.d"
  "sstp_priority_test"
  "sstp_priority_test.pdb"
  "sstp_priority_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstp_priority_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
