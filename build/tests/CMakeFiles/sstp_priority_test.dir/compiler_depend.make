# Empty compiler generated dependencies file for sstp_priority_test.
# This may be replaced when dependencies are built.
