# Empty dependencies file for adaptive_ttl_test.
# This may be replaced when dependencies are built.
