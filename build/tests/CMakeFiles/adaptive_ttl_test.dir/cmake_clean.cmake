file(REMOVE_RECURSE
  "CMakeFiles/adaptive_ttl_test.dir/adaptive_ttl_test.cpp.o"
  "CMakeFiles/adaptive_ttl_test.dir/adaptive_ttl_test.cpp.o.d"
  "adaptive_ttl_test"
  "adaptive_ttl_test.pdb"
  "adaptive_ttl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_ttl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
