# Empty compiler generated dependencies file for sstp_session_test.
# This may be replaced when dependencies are built.
