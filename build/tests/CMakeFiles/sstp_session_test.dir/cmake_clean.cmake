file(REMOVE_RECURSE
  "CMakeFiles/sstp_session_test.dir/sstp_session_test.cpp.o"
  "CMakeFiles/sstp_session_test.dir/sstp_session_test.cpp.o.d"
  "sstp_session_test"
  "sstp_session_test.pdb"
  "sstp_session_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstp_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
