file(REMOVE_RECURSE
  "CMakeFiles/sstp_path_test.dir/sstp_path_test.cpp.o"
  "CMakeFiles/sstp_path_test.dir/sstp_path_test.cpp.o.d"
  "sstp_path_test"
  "sstp_path_test.pdb"
  "sstp_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstp_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
