# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sstp_path_test.
