# Empty compiler generated dependencies file for sstp_path_test.
# This may be replaced when dependencies are built.
