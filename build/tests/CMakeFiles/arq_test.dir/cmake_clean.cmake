file(REMOVE_RECURSE
  "CMakeFiles/arq_test.dir/arq_test.cpp.o"
  "CMakeFiles/arq_test.dir/arq_test.cpp.o.d"
  "arq_test"
  "arq_test.pdb"
  "arq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
