# Empty dependencies file for sstp_tree_test.
# This may be replaced when dependencies are built.
