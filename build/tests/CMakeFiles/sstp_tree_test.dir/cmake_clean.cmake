file(REMOVE_RECURSE
  "CMakeFiles/sstp_tree_test.dir/sstp_tree_test.cpp.o"
  "CMakeFiles/sstp_tree_test.dir/sstp_tree_test.cpp.o.d"
  "sstp_tree_test"
  "sstp_tree_test.pdb"
  "sstp_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstp_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
