file(REMOVE_RECURSE
  "CMakeFiles/sstp_wire_test.dir/sstp_wire_test.cpp.o"
  "CMakeFiles/sstp_wire_test.dir/sstp_wire_test.cpp.o.d"
  "sstp_wire_test"
  "sstp_wire_test.pdb"
  "sstp_wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstp_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
