# Empty compiler generated dependencies file for sstp_wire_test.
# This may be replaced when dependencies are built.
