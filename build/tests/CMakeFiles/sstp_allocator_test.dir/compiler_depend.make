# Empty compiler generated dependencies file for sstp_allocator_test.
# This may be replaced when dependencies are built.
