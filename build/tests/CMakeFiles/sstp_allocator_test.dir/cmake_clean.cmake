file(REMOVE_RECURSE
  "CMakeFiles/sstp_allocator_test.dir/sstp_allocator_test.cpp.o"
  "CMakeFiles/sstp_allocator_test.dir/sstp_allocator_test.cpp.o.d"
  "sstp_allocator_test"
  "sstp_allocator_test.pdb"
  "sstp_allocator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstp_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
