file(REMOVE_RECURSE
  "CMakeFiles/session_directory.dir/session_directory.cpp.o"
  "CMakeFiles/session_directory.dir/session_directory.cpp.o.d"
  "session_directory"
  "session_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
