# Empty compiler generated dependencies file for session_directory.
# This may be replaced when dependencies are built.
