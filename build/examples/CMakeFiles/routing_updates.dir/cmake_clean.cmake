file(REMOVE_RECURSE
  "CMakeFiles/routing_updates.dir/routing_updates.cpp.o"
  "CMakeFiles/routing_updates.dir/routing_updates.cpp.o.d"
  "routing_updates"
  "routing_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
