# Empty dependencies file for routing_updates.
# This may be replaced when dependencies are built.
