# Empty compiler generated dependencies file for shared_whiteboard.
# This may be replaced when dependencies are built.
