file(REMOVE_RECURSE
  "CMakeFiles/shared_whiteboard.dir/shared_whiteboard.cpp.o"
  "CMakeFiles/shared_whiteboard.dir/shared_whiteboard.cpp.o.d"
  "shared_whiteboard"
  "shared_whiteboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_whiteboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
