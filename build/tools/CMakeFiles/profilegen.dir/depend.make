# Empty dependencies file for profilegen.
# This may be replaced when dependencies are built.
