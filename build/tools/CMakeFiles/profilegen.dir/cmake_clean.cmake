file(REMOVE_RECURSE
  "CMakeFiles/profilegen.dir/profilegen.cpp.o"
  "CMakeFiles/profilegen.dir/profilegen.cpp.o.d"
  "profilegen"
  "profilegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profilegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
