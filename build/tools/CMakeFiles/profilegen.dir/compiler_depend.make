# Empty compiler generated dependencies file for profilegen.
# This may be replaced when dependencies are built.
