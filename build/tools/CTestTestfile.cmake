# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(sstsim_smoke_feedback "/root/repo/build/tools/sstsim" "--variant=feedback" "--lambda-kbps=10" "--mu-data-kbps=40" "--mu-fb-kbps=10" "--loss=0.2" "--duration=300" "--warmup=50")
set_tests_properties(sstsim_smoke_feedback PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(sstsim_smoke_hardstate "/root/repo/build/tools/sstsim" "--variant=hardstate" "--lambda-kbps=10" "--loss=0.02" "--duration=300" "--warmup=50")
set_tests_properties(sstsim_smoke_hardstate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(sstsim_smoke_timeline "/root/repo/build/tools/sstsim" "--variant=openloop" "--death=per-tx" "--p-death=0.2" "--loss=0.1" "--duration=300" "--warmup=50" "--timeline=100")
set_tests_properties(sstsim_smoke_timeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(sstsim_help "/root/repo/build/tools/sstsim" "--help")
set_tests_properties(sstsim_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
