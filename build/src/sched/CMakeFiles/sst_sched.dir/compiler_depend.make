# Empty compiler generated dependencies file for sst_sched.
# This may be replaced when dependencies are built.
