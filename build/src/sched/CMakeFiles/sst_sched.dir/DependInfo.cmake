
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/drr.cpp" "src/sched/CMakeFiles/sst_sched.dir/drr.cpp.o" "gcc" "src/sched/CMakeFiles/sst_sched.dir/drr.cpp.o.d"
  "/root/repo/src/sched/hierarchical.cpp" "src/sched/CMakeFiles/sst_sched.dir/hierarchical.cpp.o" "gcc" "src/sched/CMakeFiles/sst_sched.dir/hierarchical.cpp.o.d"
  "/root/repo/src/sched/lottery.cpp" "src/sched/CMakeFiles/sst_sched.dir/lottery.cpp.o" "gcc" "src/sched/CMakeFiles/sst_sched.dir/lottery.cpp.o.d"
  "/root/repo/src/sched/stride.cpp" "src/sched/CMakeFiles/sst_sched.dir/stride.cpp.o" "gcc" "src/sched/CMakeFiles/sst_sched.dir/stride.cpp.o.d"
  "/root/repo/src/sched/wfq.cpp" "src/sched/CMakeFiles/sst_sched.dir/wfq.cpp.o" "gcc" "src/sched/CMakeFiles/sst_sched.dir/wfq.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sst_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/sst_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
