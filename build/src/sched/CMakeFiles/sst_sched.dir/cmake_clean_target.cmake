file(REMOVE_RECURSE
  "libsst_sched.a"
)
