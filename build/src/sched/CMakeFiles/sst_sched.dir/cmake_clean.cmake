file(REMOVE_RECURSE
  "CMakeFiles/sst_sched.dir/drr.cpp.o"
  "CMakeFiles/sst_sched.dir/drr.cpp.o.d"
  "CMakeFiles/sst_sched.dir/hierarchical.cpp.o"
  "CMakeFiles/sst_sched.dir/hierarchical.cpp.o.d"
  "CMakeFiles/sst_sched.dir/lottery.cpp.o"
  "CMakeFiles/sst_sched.dir/lottery.cpp.o.d"
  "CMakeFiles/sst_sched.dir/stride.cpp.o"
  "CMakeFiles/sst_sched.dir/stride.cpp.o.d"
  "CMakeFiles/sst_sched.dir/wfq.cpp.o"
  "CMakeFiles/sst_sched.dir/wfq.cpp.o.d"
  "libsst_sched.a"
  "libsst_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
