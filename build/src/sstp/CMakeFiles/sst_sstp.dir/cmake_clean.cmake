file(REMOVE_RECURSE
  "CMakeFiles/sst_sstp.dir/allocator.cpp.o"
  "CMakeFiles/sst_sstp.dir/allocator.cpp.o.d"
  "CMakeFiles/sst_sstp.dir/namespace_tree.cpp.o"
  "CMakeFiles/sst_sstp.dir/namespace_tree.cpp.o.d"
  "CMakeFiles/sst_sstp.dir/path.cpp.o"
  "CMakeFiles/sst_sstp.dir/path.cpp.o.d"
  "CMakeFiles/sst_sstp.dir/receiver.cpp.o"
  "CMakeFiles/sst_sstp.dir/receiver.cpp.o.d"
  "CMakeFiles/sst_sstp.dir/sender.cpp.o"
  "CMakeFiles/sst_sstp.dir/sender.cpp.o.d"
  "CMakeFiles/sst_sstp.dir/session.cpp.o"
  "CMakeFiles/sst_sstp.dir/session.cpp.o.d"
  "CMakeFiles/sst_sstp.dir/wire.cpp.o"
  "CMakeFiles/sst_sstp.dir/wire.cpp.o.d"
  "libsst_sstp.a"
  "libsst_sstp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_sstp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
