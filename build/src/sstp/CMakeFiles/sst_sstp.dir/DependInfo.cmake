
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sstp/allocator.cpp" "src/sstp/CMakeFiles/sst_sstp.dir/allocator.cpp.o" "gcc" "src/sstp/CMakeFiles/sst_sstp.dir/allocator.cpp.o.d"
  "/root/repo/src/sstp/namespace_tree.cpp" "src/sstp/CMakeFiles/sst_sstp.dir/namespace_tree.cpp.o" "gcc" "src/sstp/CMakeFiles/sst_sstp.dir/namespace_tree.cpp.o.d"
  "/root/repo/src/sstp/path.cpp" "src/sstp/CMakeFiles/sst_sstp.dir/path.cpp.o" "gcc" "src/sstp/CMakeFiles/sst_sstp.dir/path.cpp.o.d"
  "/root/repo/src/sstp/receiver.cpp" "src/sstp/CMakeFiles/sst_sstp.dir/receiver.cpp.o" "gcc" "src/sstp/CMakeFiles/sst_sstp.dir/receiver.cpp.o.d"
  "/root/repo/src/sstp/sender.cpp" "src/sstp/CMakeFiles/sst_sstp.dir/sender.cpp.o" "gcc" "src/sstp/CMakeFiles/sst_sstp.dir/sender.cpp.o.d"
  "/root/repo/src/sstp/session.cpp" "src/sstp/CMakeFiles/sst_sstp.dir/session.cpp.o" "gcc" "src/sstp/CMakeFiles/sst_sstp.dir/session.cpp.o.d"
  "/root/repo/src/sstp/wire.cpp" "src/sstp/CMakeFiles/sst_sstp.dir/wire.cpp.o" "gcc" "src/sstp/CMakeFiles/sst_sstp.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sst_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sst_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/sst_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sst_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/sst_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/sst_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
