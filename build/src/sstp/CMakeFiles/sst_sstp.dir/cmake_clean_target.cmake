file(REMOVE_RECURSE
  "libsst_sstp.a"
)
