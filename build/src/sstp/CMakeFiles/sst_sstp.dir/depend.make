# Empty dependencies file for sst_sstp.
# This may be replaced when dependencies are built.
