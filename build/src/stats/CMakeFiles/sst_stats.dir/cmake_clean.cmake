file(REMOVE_RECURSE
  "CMakeFiles/sst_stats.dir/series.cpp.o"
  "CMakeFiles/sst_stats.dir/series.cpp.o.d"
  "libsst_stats.a"
  "libsst_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
