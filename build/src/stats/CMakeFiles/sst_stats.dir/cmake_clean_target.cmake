file(REMOVE_RECURSE
  "libsst_stats.a"
)
