# Empty dependencies file for sst_stats.
# This may be replaced when dependencies are built.
