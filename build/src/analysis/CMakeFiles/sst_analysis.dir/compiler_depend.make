# Empty compiler generated dependencies file for sst_analysis.
# This may be replaced when dependencies are built.
