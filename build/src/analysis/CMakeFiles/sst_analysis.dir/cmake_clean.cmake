file(REMOVE_RECURSE
  "CMakeFiles/sst_analysis.dir/jackson.cpp.o"
  "CMakeFiles/sst_analysis.dir/jackson.cpp.o.d"
  "CMakeFiles/sst_analysis.dir/profiles.cpp.o"
  "CMakeFiles/sst_analysis.dir/profiles.cpp.o.d"
  "libsst_analysis.a"
  "libsst_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
