
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/jackson.cpp" "src/analysis/CMakeFiles/sst_analysis.dir/jackson.cpp.o" "gcc" "src/analysis/CMakeFiles/sst_analysis.dir/jackson.cpp.o.d"
  "/root/repo/src/analysis/profiles.cpp" "src/analysis/CMakeFiles/sst_analysis.dir/profiles.cpp.o" "gcc" "src/analysis/CMakeFiles/sst_analysis.dir/profiles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sst_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/sst_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
