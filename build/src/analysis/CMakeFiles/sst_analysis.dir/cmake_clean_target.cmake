file(REMOVE_RECURSE
  "libsst_analysis.a"
)
