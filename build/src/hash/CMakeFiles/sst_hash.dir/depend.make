# Empty dependencies file for sst_hash.
# This may be replaced when dependencies are built.
