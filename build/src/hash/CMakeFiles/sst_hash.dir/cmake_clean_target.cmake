file(REMOVE_RECURSE
  "libsst_hash.a"
)
