file(REMOVE_RECURSE
  "CMakeFiles/sst_hash.dir/digest.cpp.o"
  "CMakeFiles/sst_hash.dir/digest.cpp.o.d"
  "CMakeFiles/sst_hash.dir/md5.cpp.o"
  "CMakeFiles/sst_hash.dir/md5.cpp.o.d"
  "libsst_hash.a"
  "libsst_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
