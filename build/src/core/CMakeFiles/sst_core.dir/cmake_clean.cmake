file(REMOVE_RECURSE
  "CMakeFiles/sst_core.dir/experiment.cpp.o"
  "CMakeFiles/sst_core.dir/experiment.cpp.o.d"
  "CMakeFiles/sst_core.dir/monitor.cpp.o"
  "CMakeFiles/sst_core.dir/monitor.cpp.o.d"
  "CMakeFiles/sst_core.dir/open_loop.cpp.o"
  "CMakeFiles/sst_core.dir/open_loop.cpp.o.d"
  "CMakeFiles/sst_core.dir/receiver.cpp.o"
  "CMakeFiles/sst_core.dir/receiver.cpp.o.d"
  "CMakeFiles/sst_core.dir/table.cpp.o"
  "CMakeFiles/sst_core.dir/table.cpp.o.d"
  "CMakeFiles/sst_core.dir/two_queue.cpp.o"
  "CMakeFiles/sst_core.dir/two_queue.cpp.o.d"
  "CMakeFiles/sst_core.dir/workload.cpp.o"
  "CMakeFiles/sst_core.dir/workload.cpp.o.d"
  "libsst_core.a"
  "libsst_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
