
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/sst_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/sst_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/sst_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/sst_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/open_loop.cpp" "src/core/CMakeFiles/sst_core.dir/open_loop.cpp.o" "gcc" "src/core/CMakeFiles/sst_core.dir/open_loop.cpp.o.d"
  "/root/repo/src/core/receiver.cpp" "src/core/CMakeFiles/sst_core.dir/receiver.cpp.o" "gcc" "src/core/CMakeFiles/sst_core.dir/receiver.cpp.o.d"
  "/root/repo/src/core/table.cpp" "src/core/CMakeFiles/sst_core.dir/table.cpp.o" "gcc" "src/core/CMakeFiles/sst_core.dir/table.cpp.o.d"
  "/root/repo/src/core/two_queue.cpp" "src/core/CMakeFiles/sst_core.dir/two_queue.cpp.o" "gcc" "src/core/CMakeFiles/sst_core.dir/two_queue.cpp.o.d"
  "/root/repo/src/core/workload.cpp" "src/core/CMakeFiles/sst_core.dir/workload.cpp.o" "gcc" "src/core/CMakeFiles/sst_core.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sst_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sst_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/sst_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sst_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/sst_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
