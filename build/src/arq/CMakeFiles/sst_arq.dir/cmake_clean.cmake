file(REMOVE_RECURSE
  "CMakeFiles/sst_arq.dir/experiment.cpp.o"
  "CMakeFiles/sst_arq.dir/experiment.cpp.o.d"
  "CMakeFiles/sst_arq.dir/receiver.cpp.o"
  "CMakeFiles/sst_arq.dir/receiver.cpp.o.d"
  "CMakeFiles/sst_arq.dir/sender.cpp.o"
  "CMakeFiles/sst_arq.dir/sender.cpp.o.d"
  "libsst_arq.a"
  "libsst_arq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_arq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
