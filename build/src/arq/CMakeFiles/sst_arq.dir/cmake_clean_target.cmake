file(REMOVE_RECURSE
  "libsst_arq.a"
)
