# Empty compiler generated dependencies file for sst_arq.
# This may be replaced when dependencies are built.
