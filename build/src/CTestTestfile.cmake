# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("net")
subdirs("sched")
subdirs("hash")
subdirs("stats")
subdirs("analysis")
subdirs("core")
subdirs("sstp")
subdirs("arq")
