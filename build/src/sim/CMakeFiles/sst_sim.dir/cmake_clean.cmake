file(REMOVE_RECURSE
  "CMakeFiles/sst_sim.dir/event_queue.cpp.o"
  "CMakeFiles/sst_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/sst_sim.dir/random.cpp.o"
  "CMakeFiles/sst_sim.dir/random.cpp.o.d"
  "CMakeFiles/sst_sim.dir/simulator.cpp.o"
  "CMakeFiles/sst_sim.dir/simulator.cpp.o.d"
  "libsst_sim.a"
  "libsst_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
