file(REMOVE_RECURSE
  "libsst_net.a"
)
