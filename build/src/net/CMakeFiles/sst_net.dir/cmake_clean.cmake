file(REMOVE_RECURSE
  "CMakeFiles/sst_net.dir/loss.cpp.o"
  "CMakeFiles/sst_net.dir/loss.cpp.o.d"
  "libsst_net.a"
  "libsst_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
