# Empty dependencies file for bench_fig6_receive_latency.
# This may be replaced when dependencies are built.
