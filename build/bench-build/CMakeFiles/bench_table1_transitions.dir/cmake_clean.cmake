file(REMOVE_RECURSE
  "../bench/bench_table1_transitions"
  "../bench/bench_table1_transitions.pdb"
  "CMakeFiles/bench_table1_transitions.dir/bench_table1_transitions.cpp.o"
  "CMakeFiles/bench_table1_transitions.dir/bench_table1_transitions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_transitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
