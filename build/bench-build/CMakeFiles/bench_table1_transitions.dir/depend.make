# Empty dependencies file for bench_table1_transitions.
# This may be replaced when dependencies are built.
