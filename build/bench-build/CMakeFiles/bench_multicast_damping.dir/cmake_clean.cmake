file(REMOVE_RECURSE
  "../bench/bench_multicast_damping"
  "../bench/bench_multicast_damping.pdb"
  "CMakeFiles/bench_multicast_damping.dir/bench_multicast_damping.cpp.o"
  "CMakeFiles/bench_multicast_damping.dir/bench_multicast_damping.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multicast_damping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
