# Empty dependencies file for bench_multicast_damping.
# This may be replaced when dependencies are built.
