
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_openloop_consistency.cpp" "bench-build/CMakeFiles/bench_fig3_openloop_consistency.dir/bench_fig3_openloop_consistency.cpp.o" "gcc" "bench-build/CMakeFiles/bench_fig3_openloop_consistency.dir/bench_fig3_openloop_consistency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sst_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sstp/CMakeFiles/sst_sstp.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/sst_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/sst_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sst_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sst_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/sst_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sst_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
