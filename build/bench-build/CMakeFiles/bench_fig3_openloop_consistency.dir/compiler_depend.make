# Empty compiler generated dependencies file for bench_fig3_openloop_consistency.
# This may be replaced when dependencies are built.
