file(REMOVE_RECURSE
  "../bench/bench_fig3_openloop_consistency"
  "../bench/bench_fig3_openloop_consistency.pdb"
  "CMakeFiles/bench_fig3_openloop_consistency.dir/bench_fig3_openloop_consistency.cpp.o"
  "CMakeFiles/bench_fig3_openloop_consistency.dir/bench_fig3_openloop_consistency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_openloop_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
