file(REMOVE_RECURSE
  "../bench/bench_fig8_feedback_timeseries"
  "../bench/bench_fig8_feedback_timeseries.pdb"
  "CMakeFiles/bench_fig8_feedback_timeseries.dir/bench_fig8_feedback_timeseries.cpp.o"
  "CMakeFiles/bench_fig8_feedback_timeseries.dir/bench_fig8_feedback_timeseries.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_feedback_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
