# Empty compiler generated dependencies file for bench_fig8_feedback_timeseries.
# This may be replaced when dependencies are built.
