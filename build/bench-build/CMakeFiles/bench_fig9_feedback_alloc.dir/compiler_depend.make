# Empty compiler generated dependencies file for bench_fig9_feedback_alloc.
# This may be replaced when dependencies are built.
