file(REMOVE_RECURSE
  "../bench/bench_fig9_feedback_alloc"
  "../bench/bench_fig9_feedback_alloc.pdb"
  "CMakeFiles/bench_fig9_feedback_alloc.dir/bench_fig9_feedback_alloc.cpp.o"
  "CMakeFiles/bench_fig9_feedback_alloc.dir/bench_fig9_feedback_alloc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_feedback_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
