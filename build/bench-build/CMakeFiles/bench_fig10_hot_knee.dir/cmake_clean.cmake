file(REMOVE_RECURSE
  "../bench/bench_fig10_hot_knee"
  "../bench/bench_fig10_hot_knee.pdb"
  "CMakeFiles/bench_fig10_hot_knee.dir/bench_fig10_hot_knee.cpp.o"
  "CMakeFiles/bench_fig10_hot_knee.dir/bench_fig10_hot_knee.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_hot_knee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
