# Empty dependencies file for bench_fig10_hot_knee.
# This may be replaced when dependencies are built.
