file(REMOVE_RECURSE
  "../bench/bench_hardstate"
  "../bench/bench_hardstate.pdb"
  "CMakeFiles/bench_hardstate.dir/bench_hardstate.cpp.o"
  "CMakeFiles/bench_hardstate.dir/bench_hardstate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hardstate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
