# Empty dependencies file for bench_hardstate.
# This may be replaced when dependencies are built.
