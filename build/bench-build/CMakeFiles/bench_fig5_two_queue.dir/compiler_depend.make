# Empty compiler generated dependencies file for bench_fig5_two_queue.
# This may be replaced when dependencies are built.
