file(REMOVE_RECURSE
  "../bench/bench_fig5_two_queue"
  "../bench/bench_fig5_two_queue.pdb"
  "CMakeFiles/bench_fig5_two_queue.dir/bench_fig5_two_queue.cpp.o"
  "CMakeFiles/bench_fig5_two_queue.dir/bench_fig5_two_queue.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_two_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
