file(REMOVE_RECURSE
  "../bench/bench_sstp_allocator"
  "../bench/bench_sstp_allocator.pdb"
  "CMakeFiles/bench_sstp_allocator.dir/bench_sstp_allocator.cpp.o"
  "CMakeFiles/bench_sstp_allocator.dir/bench_sstp_allocator.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sstp_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
