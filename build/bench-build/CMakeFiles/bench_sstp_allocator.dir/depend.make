# Empty dependencies file for bench_sstp_allocator.
# This may be replaced when dependencies are built.
