file(REMOVE_RECURSE
  "../bench/bench_sstp_namespace"
  "../bench/bench_sstp_namespace.pdb"
  "CMakeFiles/bench_sstp_namespace.dir/bench_sstp_namespace.cpp.o"
  "CMakeFiles/bench_sstp_namespace.dir/bench_sstp_namespace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sstp_namespace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
