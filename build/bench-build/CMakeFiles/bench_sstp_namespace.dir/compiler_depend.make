# Empty compiler generated dependencies file for bench_sstp_namespace.
# This may be replaced when dependencies are built.
