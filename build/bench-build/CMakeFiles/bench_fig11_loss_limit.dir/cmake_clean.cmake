file(REMOVE_RECURSE
  "../bench/bench_fig11_loss_limit"
  "../bench/bench_fig11_loss_limit.pdb"
  "CMakeFiles/bench_fig11_loss_limit.dir/bench_fig11_loss_limit.cpp.o"
  "CMakeFiles/bench_fig11_loss_limit.dir/bench_fig11_loss_limit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_loss_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
