# Empty dependencies file for bench_fig11_loss_limit.
# This may be replaced when dependencies are built.
