# check_determinism_shards.cmake — ctest driver for the shard-count gate.
#
# The sharded conservative-lookahead engine must be a pure execution detail:
# for a fixed seed the stdout (human summary + canonical JSON document) must
# be byte-identical for every --shards value, composed with any --jobs
# value. Runs the matrix K in {1,2,4,8} x jobs in {1,8} against the
# K=1/jobs=1 reference. Invoked as:
#   cmake -DSSTSIM=<path> -DWORK_DIR=<dir> -P check_determinism_shards.cmake
if(NOT SSTSIM)
  message(FATAL_ERROR "pass -DSSTSIM=<path to sstsim>")
endif()
file(MAKE_DIRECTORY ${WORK_DIR})

# Same shape as check_determinism.cmake but with a positive propagation
# delay (the lookahead window) and enough receivers to populate 8 shards.
set(args --variant=feedback --lambda-kbps=12 --mu-data-kbps=42
    --mu-fb-kbps=12 --loss=0.25 --receivers=8 --delay=0.05 --duration=200
    --warmup=50 --seed=7 --replications=4)

execute_process(
  COMMAND ${SSTSIM} ${args} --shards=1 --jobs=1
  OUTPUT_FILE ${WORK_DIR}/shards1_jobs1.txt
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sstsim --shards=1 --jobs=1 failed (exit ${rc})")
endif()

foreach(shards 1 2 4 8)
  foreach(jobs 1 8)
    if(shards EQUAL 1 AND jobs EQUAL 1)
      continue()
    endif()
    set(out ${WORK_DIR}/shards${shards}_jobs${jobs}.txt)
    execute_process(
      COMMAND ${SSTSIM} ${args} --shards=${shards} --jobs=${jobs}
      OUTPUT_FILE ${out}
      RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
          "sstsim --shards=${shards} --jobs=${jobs} failed (exit ${rc})")
    endif()
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
              ${WORK_DIR}/shards1_jobs1.txt ${out}
      RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
      message(FATAL_ERROR
          "--shards=${shards} --jobs=${jobs} output differs from the "
          "single-queue reference: the sharded engine is not bitwise "
          "shard-count-independent. Compare ${WORK_DIR}/shards1_jobs1.txt "
          "vs ${out}")
    endif()
  endforeach()
endforeach()
message(STATUS "shards x jobs matrix output byte-identical")
