# check_determinism_shards.cmake — ctest driver for the shard-count gate.
#
# The sharded conservative-lookahead engine must be a pure execution detail:
# for a fixed seed the stdout (human summary + canonical JSON document) must
# be byte-identical for every --shards value, composed with any --jobs
# value. Runs the matrix K in {1,2,4,8} x jobs in {1,8} against the
# K=1/jobs=1 reference. Invoked as:
#   cmake -DSSTSIM=<path> -DWORK_DIR=<dir> -P check_determinism_shards.cmake
if(NOT SSTSIM)
  message(FATAL_ERROR "pass -DSSTSIM=<path to sstsim>")
endif()
file(MAKE_DIRECTORY ${WORK_DIR})

# Same shape as check_determinism.cmake but with a positive propagation
# delay (the lookahead window) and enough receivers to populate 8 shards.
set(args --variant=feedback --lambda-kbps=12 --mu-data-kbps=42
    --mu-fb-kbps=12 --loss=0.25 --receivers=8 --delay=0.05 --duration=200
    --warmup=50 --seed=7 --replications=4)

execute_process(
  COMMAND ${SSTSIM} ${args} --shards=1 --jobs=1
  OUTPUT_FILE ${WORK_DIR}/shards1_jobs1.txt
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sstsim --shards=1 --jobs=1 failed (exit ${rc})")
endif()

foreach(shards 1 2 4 8)
  foreach(jobs 1 8)
    if(shards EQUAL 1 AND jobs EQUAL 1)
      continue()
    endif()
    set(out ${WORK_DIR}/shards${shards}_jobs${jobs}.txt)
    execute_process(
      COMMAND ${SSTSIM} ${args} --shards=${shards} --jobs=${jobs}
      OUTPUT_FILE ${out}
      RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
          "sstsim --shards=${shards} --jobs=${jobs} failed (exit ${rc})")
    endif()
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
              ${WORK_DIR}/shards1_jobs1.txt ${out}
      RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
      message(FATAL_ERROR
          "--shards=${shards} --jobs=${jobs} output differs from the "
          "single-queue reference: the sharded engine is not bitwise "
          "shard-count-independent. Compare ${WORK_DIR}/shards1_jobs1.txt "
          "vs ${out}")
    endif()
  endforeach()
endforeach()
message(STATUS "shards x jobs matrix output byte-identical")

# Two more rows through the same matrix, exercising the lanes the base
# config misses: multicast feedback (the root-hosted NACK group, slotting
# and cross-shard damping through the epoch log) and a scripted fault
# timeline (fence-snapped injector hooks, including churn). Kept to the
# diagonal K in {2,8} x jobs=8 — the full matrix above already proves the
# jobs axis.
set(mcast_args --variant=feedback --lambda-kbps=12 --mu-data-kbps=42
    --mu-fb-kbps=12 --loss=0.25 --receivers=8 --delay=0.05 --multicast-fb
    --slot=0.1 --duration=200 --warmup=50 --seed=7 --replications=4)
set(fault_args --variant=feedback --lambda-kbps=12 --mu-data-kbps=42
    --mu-fb-kbps=12 --loss=0.25 --receivers=8 --delay=0.05 --duration=200
    --warmup=50 --seed=7 --replications=4
    --faults=crash@90+20,partition:2@130+20,leave:1@170,join@180)

foreach(lane mcast fault)
  execute_process(
    COMMAND ${SSTSIM} ${${lane}_args} --shards=1 --jobs=1
    OUTPUT_FILE ${WORK_DIR}/${lane}_ref.txt
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "sstsim ${lane} reference run failed (exit ${rc})")
  endif()
  foreach(shards 2 8)
    set(out ${WORK_DIR}/${lane}_shards${shards}.txt)
    execute_process(
      COMMAND ${SSTSIM} ${${lane}_args} --shards=${shards} --jobs=8
      OUTPUT_FILE ${out}
      RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
          "sstsim ${lane} --shards=${shards} failed (exit ${rc})")
    endif()
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
              ${WORK_DIR}/${lane}_ref.txt ${out}
      RESULT_VARIABLE diff)
    if(NOT diff EQUAL 0)
      message(FATAL_ERROR
          "${lane} --shards=${shards} output differs from the single-queue "
          "reference. Compare ${WORK_DIR}/${lane}_ref.txt vs ${out}")
    endif()
  endforeach()
endforeach()
message(STATUS "multicast + faulted shard rows byte-identical")
