#!/bin/sh
# Thread-safety analysis gate (ctest label `lint`). Proves two things with
# a real Clang:
#
#   1. The annotated tree is CLEAN: a fresh SST_ANALYZE=ON configure+build
#      of the src/ libraries must produce zero -Wthread-safety diagnostics
#      (they are -Werror, so any diagnostic fails the build).
#   2. The analysis has TEETH: tools/analyze_fixtures/annotate_violation.cpp
#      deliberately touches SST_ROOT_ONLY state from an unannotated
#      function and MUST fail to compile, while annotate_ok.cpp (the same
#      access with the role properly required) must compile. A gate that
#      cannot reject the bad fixture would pass vacuously — e.g. if the
#      macros silently stopped lowering to Clang attributes.
#
# Skips with 77 (ctest SKIP_RETURN_CODE) when no Clang toolchain is
# installed: the annotations expand to nothing under GCC, so there is
# nothing to check — sstlyz's textual fence/ownership rules still run there.
#
# usage: check_analyze.sh [BUILD_DIR]   (scratch tree, default
#        build-analyze next to the regular build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-analyze"}

clangxx=""
for c in clang++ clang++-20 clang++-19 clang++-18 clang++-17 clang++-16; do
  if command -v "$c" > /dev/null 2>&1; then
    clangxx=$c
    break
  fi
done
if [ -z "$clangxx" ]; then
  echo "SKIP: no clang++ on PATH (thread-safety analysis is Clang-only)" >&2
  exit 77
fi
command -v cmake > /dev/null 2>&1 || {
  echo "SKIP: cmake not available" >&2
  exit 77
}

echo "== configure (SST_ANALYZE=ON, $clangxx)"
cmake -S "$repo_root" -B "$build_dir" \
      -DCMAKE_CXX_COMPILER="$clangxx" \
      -DSST_ANALYZE=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null

echo "== build src/ with -Werror=thread-safety"
# The src libraries carry every annotation; tests/bench are exempt by
# design, so building the core targets is the whole clean-tree proof.
cmake --build "$build_dir" --target \
      sst_check sst_sim sst_net sst_sched sst_stats sst_analysis sst_core

flags="-std=c++20 -I$repo_root/src -Wthread-safety -Werror=thread-safety \
       -fsyntax-only"

echo "== good fixture must compile"
# shellcheck disable=SC2086
"$clangxx" $flags "$repo_root/tools/analyze_fixtures/annotate_ok.cpp"

echo "== bad fixture must be rejected"
# shellcheck disable=SC2086
if "$clangxx" $flags \
     "$repo_root/tools/analyze_fixtures/annotate_violation.cpp" \
     2> "$build_dir/annotate_violation.log"; then
  echo "FAIL: annotate_violation.cpp compiled clean — the thread-safety" \
       "annotations are not reaching the compiler" >&2
  exit 1
fi
if ! grep -q "thread-safety" "$build_dir/annotate_violation.log"; then
  echo "FAIL: annotate_violation.cpp failed for a reason other than" \
       "thread-safety analysis:" >&2
  cat "$build_dir/annotate_violation.log" >&2
  exit 1
fi
echo "violation reported, as required:"
grep -m 2 "warning\|error" "$build_dir/annotate_violation.log" | sed 's/^/  /'

echo "check_analyze clean"
