#!/usr/bin/env python3
"""sstlint — repo-specific determinism lint for the soft-state simulator.

The simulator's headline guarantee is bit-identical replication output for a
given seed (DESIGN.md, "Determinism"). General-purpose linters cannot see the
project-specific ways that guarantee gets broken, so this pass encodes them:

  unordered-iter   iteration over a std::unordered_{map,set} member: visit
                   order follows the hash table's bucket layout, which varies
                   with libstdc++ version, insertion history, and pointer
                   values. Anything ordering-sensitive (scheduling, wire
                   output, callback fan-out) must iterate a sorted snapshot.
  ptr-key          pointer-typed keys in ordered/hashed containers (or
                   std::hash/std::less over pointers): pointer values differ
                   run to run under ASLR, so any iteration order or hash
                   layout derived from them is non-reproducible.
  wall-clock       wall/monotonic clock reads inside src/: simulation code
                   must take time from sim::Simulator::now(), never the host
                   (bench/ is exempt — it times real execution on purpose).
  raw-rand         rand()/srand()/drand48()/std::random_device: unseeded or
                   process-global entropy. All randomness flows through
                   sim::Rng streams forked from the experiment seed.
  float-accum      bare `x += ...` running sums on float/double state in
                   src/stats/: naive accumulation drifts with summation
                   order and magnitude spread; use the Welford/compensated
                   forms (sst::stats) instead.
  rng-seed         sim::Rng constructed without a caller-chosen seed
                   (`Rng()`, `Rng r;`, or a `= Rng(0)` default argument):
                   hides the stream identity from the experiment seed plan,
                   so two components silently share draws.
  corrupt-include  #include of check/corrupt.hpp outside tests/: the
                   invariant Corrupter deliberately breaks data structures
                   and must never link into the simulator proper.
  shard-capture    a lambda handed to sim::ShardCrew capturing `&` or
                   `this`: everything it can reach becomes shared mutable
                   state visible from K shard worker threads at once. The
                   sharded engine's phase-barrier protocol makes specific
                   captures safe (workers only touch their own shard's
                   state between barriers), but each such capture is an
                   audited decision — suppress with allow(shard-capture)
                   plus an allowlist entry, citing the barrier argument.

Suppression: append `// sstlint: allow(<rule>)` (comma-separate several
rules) to the offending line, with a justification in the surrounding
comment. Every suppression must also be recorded in
tools/sstlint_allowlist.txt; `--audit` fails when the recorded and observed
sets drift, so suppressions stay a reviewed, committed decision.

Exit codes: 0 clean, 1 findings/drift, 2 usage error.

Usage:
  tools/sstlint.py [--repo DIR]            lint src/ and bench/
  tools/sstlint.py --audit                 also diff suppressions vs allowlist
  tools/sstlint.py --list-suppressions     print observed allowlist lines
  tools/sstlint.py --self-test             run the rules against the fixtures
"""

from __future__ import annotations

import argparse
import collections
import os
import re
import sys

SCAN_DIRS = ("src", "bench")
EXTS = (".hpp", ".cpp")
ALLOWLIST = os.path.join("tools", "sstlint_allowlist.txt")
FIXTURE_DIR = os.path.join("tools", "lint_fixtures")

RULES = (
    "unordered-iter",
    "ptr-key",
    "wall-clock",
    "raw-rand",
    "float-accum",
    "rng-seed",
    "corrupt-include",
    "shard-capture",
)

# Rules owned by the AST-grade analyzer (tools/sstlyz.py). They share this
# tool's allow() grammar so a suppression reads identically everywhere, but
# sstlint neither fires nor audits them — sstlyz runs its own bad-suppression
# pass — so an allow(root-reach) must not read as "unknown rule" here.
EXTERNAL_RULES = frozenset((
    "root-reach",
    "ref-capture",
    "iter-taint",
    "rng-reseed",
    "fence-read",
))

Finding = collections.namedtuple("Finding", "path line rule message")

ALLOW_RE = re.compile(r"//\s*sstlint:\s*allow\(([a-z\-,\s]+)\)")

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set)\s*<[^;]*>\s+(\w+)\s*[;{=]"
)
FLOAT_DECL_RE = re.compile(r"\b(?:double|float)\s+(\w+)\s*(?:=[^;,()]*)?[;,]")

PTR_KEY_RE = re.compile(
    r"\bstd::(?:unordered_)?(?:map|set)\s*<\s*(?:const\s+)?[\w:]+\s*\*"
    r"|\bstd::(?:hash|less|greater)\s*<\s*(?:const\s+)?[\w:]+\s*\*"
)
WALL_CLOCK_RE = re.compile(
    r"\bstd::chrono::(?:system_clock|steady_clock|high_resolution_clock)\b"
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\("
    r"|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"
)
RAW_RAND_RE = re.compile(
    r"\bstd::random_device\b|\brandom_device\b"
    r"|(?<!\w)s?rand\s*\(|\b[dlm]rand48\s*\("
)
# Rng's constructor deliberately has no default seed, so `Rng r;` is already
# a compile error; the lint catches what still compiles — an explicit empty
# ctor call and the `= Rng(0)` magic-zero default-argument idiom.
RNG_SEED_RE = re.compile(
    r"\bRng\s*\(\s*\)"
    r"|=\s*(?:sim::)?Rng\s*\(\s*0\s*\)"
)
# Anchored and matched against the RAW line: the path is a string literal,
# which strip_code blanks out of the code view.
CORRUPT_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"check/corrupt\.hpp"')

# ShardCrew wiring sites: the construction (or the crew's own ctor) opens a
# short window in which any by-reference/this lambda capture is the worker
# entry point — the exact place shared mutable state leaks onto K threads.
SHARD_CREW_RE = re.compile(r"\bShardCrew\b")
SHARD_CAPTURE_RE = re.compile(r"\[\s*(?:&|this\b)")
SHARD_CREW_WINDOW = 12  # lines: construction + init-list + thread spawn loop


def strip_code(text):
    """Blanks comments and string/char literal contents, keeping line
    structure so findings carry real line numbers."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                i += 2
            elif c == "/" and nxt == "*":
                state = "block"
                i += 2
            elif c == '"':
                state = "str"
                out.append(c)
                i += 1
            elif c == "'":
                state = "chr"
                out.append(c)
                i += 1
            else:
                out.append(c)
                i += 1
        elif state in ("line", "block"):
            if state == "line" and c == "\n":
                state = "code"
            elif state == "block" and c == "*" and nxt == "/":
                state = "code"
                i += 1
            if c == "\n":
                out.append(c)
            i += 1
        else:  # str | chr
            quote = '"' if state == "str" else "'"
            if c == "\\":
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":
                out.append(c)
            i += 1
    return "".join(out)


def tu_key(relpath):
    """Translation-unit scope: (directory, basename-without-extension), so a
    .cpp sees the members its own header declares and nothing from
    same-named files elsewhere (core/receiver.hpp vs sstp/receiver.hpp)."""
    d, base = os.path.split(relpath)
    return d, os.path.splitext(base)[0]


class Source:
    def __init__(self, relpath, text):
        self.relpath = relpath
        self.raw_lines = text.splitlines()
        self.code_lines = strip_code(text).splitlines()
        # Allowed rules per 1-based line number, from the RAW text (the
        # directive lives in a comment, which strip_code removes).
        self.allows = {}
        for num, raw in enumerate(self.raw_lines, 1):
            m = ALLOW_RE.search(raw)
            if m:
                rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
                self.allows[num] = rules


def collect_members(sources, decl_re, path_pred):
    """Member names declared by decl_re, grouped by translation-unit key."""
    members = collections.defaultdict(set)
    for src in sources:
        if not path_pred(src.relpath):
            continue
        for line in src.code_lines:
            for m in decl_re.finditer(line):
                members[tu_key(src.relpath)].add(m.group(1))
    return members


def iter_patterns(name):
    """Regexes that detect iteration over member `name`."""
    return (
        re.compile(r"for\s*\([^;)]*:\s*(?:\w+(?:\.|->))?%s\b" % re.escape(name)),
        re.compile(r"\b%s\s*\.\s*c?begin\s*\(" % re.escape(name)),
    )


# The sorted-snapshot collect idiom: a braceless range-for whose single body
# statement only appends the key to a local container, which the caller then
# sorts before anything order-sensitive happens. The hash order never
# escapes, so flagging it only breeds allow() noise. (tools/sstlyz.py's
# iter-taint rule covers the deeper cases: it follows the loop body's call
# closure and fires only when an ordered sink is actually reachable.)
SNAPSHOT_COLLECT_RE = re.compile(
    r"\w+\s*\.\s*(?:push_back|emplace_back)\s*\([^;{}]*\)\s*;?"
)


def for_body_tail(line):
    """Text after the range-for header's closing paren, or None."""
    m = re.search(r"\bfor\s*\(", line)
    if m is None:
        return None
    depth, i = 1, m.end()
    while i < len(line) and depth:
        if line[i] == "(":
            depth += 1
        elif line[i] == ")":
            depth -= 1
        i += 1
    return None if depth else line[i:]


def is_snapshot_collect(src, num, line):
    tail = for_body_tail(line)
    if tail is None:
        return False
    body = tail.strip()
    if not body:  # braceless body on the following line
        body = src.code_lines[num].strip() if num < len(src.code_lines) else ""
    return SNAPSHOT_COLLECT_RE.fullmatch(body) is not None


def in_src(relpath):
    return relpath.startswith("src" + os.sep)


def in_stats(relpath):
    return relpath.startswith(os.path.join("src", "stats") + os.sep)


def scan(sources):
    """Runs every rule; returns (findings, suppressions) where suppressions
    maps (relpath, rule) -> count of allow() uses that actually fired."""
    findings = []
    suppressions = collections.Counter()
    fired_lines = set()  # (relpath, line, rule) triples that suppressed

    unordered = collect_members(sources, UNORDERED_DECL_RE, lambda p: True)
    floats = collect_members(sources, FLOAT_DECL_RE, in_stats)

    def emit(src, num, rule, message):
        allowed = src.allows.get(num, set())
        if rule in allowed:
            suppressions[(src.relpath, rule)] += 1
            fired_lines.add((src.relpath, num, rule))
        else:
            findings.append(Finding(src.relpath, num, rule, message))

    for src in sources:
        key = tu_key(src.relpath)
        unordered_pats = [
            (name, iter_patterns(name)) for name in sorted(unordered.get(key, ()))
        ]
        float_names = sorted(floats.get(key, ())) if in_stats(src.relpath) else []
        float_pats = [
            (name, re.compile(r"\b%s\s*\+=" % re.escape(name)))
            for name in float_names
        ]

        crew_window = 0
        for num, line in enumerate(src.code_lines, 1):
            if SHARD_CREW_RE.search(line):
                crew_window = SHARD_CREW_WINDOW
            if crew_window > 0 and SHARD_CAPTURE_RE.search(line):
                emit(src, num, "shard-capture",
                     "lambda capturing '&'/'this' reaches shard worker "
                     "threads; audit the shared state it exposes and record "
                     "the suppression")
                crew_window = 0  # one finding per wiring site
            elif crew_window > 0:
                crew_window -= 1
            for name, pats in unordered_pats:
                if any(p.search(line) for p in pats):
                    if not is_snapshot_collect(src, num, line):
                        emit(src, num, "unordered-iter",
                             "iteration over unordered member '%s' follows "
                             "hash layout; iterate a sorted snapshot" % name)
                    break
            if PTR_KEY_RE.search(line):
                emit(src, num, "ptr-key",
                     "pointer-keyed container/hasher: pointer values are not "
                     "reproducible across runs")
            if in_src(src.relpath) and WALL_CLOCK_RE.search(line):
                emit(src, num, "wall-clock",
                     "host clock read in simulation code; use "
                     "sim::Simulator::now()")
            if RAW_RAND_RE.search(line):
                emit(src, num, "raw-rand",
                     "process-global randomness; fork a sim::Rng stream from "
                     "the experiment seed")
            for name, pat in float_pats:
                if pat.search(line):
                    emit(src, num, "float-accum",
                         "bare running sum on float state '%s'; use the "
                         "Welford/compensated forms" % name)
                    break
            if RNG_SEED_RE.search(line):
                emit(src, num, "rng-seed",
                     "sim::Rng without a caller-chosen seed; thread the "
                     "stream from the experiment seed plan")
            if CORRUPT_INCLUDE_RE.search(src.raw_lines[num - 1]):
                emit(src, num, "corrupt-include",
                     "check/corrupt.hpp is test-only; it must not be "
                     "included from simulator code")

        # An allow() that never fired is stale: either the violation was
        # fixed (delete the directive) or the rule name is misspelled.
        for num, rules in sorted(src.allows.items()):
            for rule in sorted(rules):
                if rule in EXTERNAL_RULES:
                    continue  # fired and audited by tools/sstlyz.py
                if rule not in RULES:
                    findings.append(Finding(
                        src.relpath, num, "bad-suppression",
                        "allow(%s) names an unknown rule" % rule))
                elif (src.relpath, num, rule) not in fired_lines:
                    findings.append(Finding(
                        src.relpath, num, "bad-suppression",
                        "allow(%s) suppressed nothing on this line; remove "
                        "the stale directive" % rule))

    return findings, suppressions


def load_sources(repo, roots=SCAN_DIRS):
    sources = []
    for root in roots:
        top = os.path.join(repo, root)
        for dirpath, _dirnames, filenames in os.walk(top):
            for fn in sorted(filenames):
                if not fn.endswith(EXTS):
                    continue
                path = os.path.join(dirpath, fn)
                rel = os.path.relpath(path, repo)
                with open(path, encoding="utf-8") as f:
                    sources.append(Source(rel, f.read()))
    sources.sort(key=lambda s: s.relpath)
    return sources


def suppression_lines(suppressions):
    return [
        "%s\t%s\t%d" % (path, rule, count)
        for (path, rule), count in sorted(suppressions.items())
    ]


def audit(repo, suppressions):
    """Diffs observed suppressions against the committed allowlist."""
    path = os.path.join(repo, ALLOWLIST)
    committed = []
    if os.path.exists(path):
        with open(path, encoding="utf-8") as f:
            committed = [
                ln.rstrip("\n") for ln in f
                if ln.strip() and not ln.lstrip().startswith("#")
            ]
    observed = suppression_lines(suppressions)
    if committed == observed:
        return []
    problems = []
    for ln in sorted(set(observed) - set(committed)):
        problems.append("unrecorded suppression (add to %s): %s"
                        % (ALLOWLIST, ln.replace("\t", " ")))
    for ln in sorted(set(committed) - set(observed)):
        problems.append("stale allowlist entry (suppression gone): %s"
                        % ln.replace("\t", " "))
    if not problems:  # same set, wrong order — keep the file canonical
        problems.append("allowlist entries out of canonical sorted order")
    return problems


def self_test(repo):
    """Checks the rules against the committed fixtures: every rule fires
    exactly once on known_bad.cpp, and suppressed.cpp is finding-free with
    every directive accounted for."""
    failures = []

    def fixture(name, virtual_rel):
        path = os.path.join(repo, FIXTURE_DIR, name)
        with open(path, encoding="utf-8") as f:
            return Source(virtual_rel, f.read())

    # The fixtures are scanned under a virtual src/stats/ path so the
    # path-scoped rules (wall-clock, float-accum) apply to them.
    bad = fixture("known_bad.cpp", os.path.join("src", "stats", "known_bad.cpp"))
    findings, _ = scan([bad])
    per_rule = collections.Counter(f.rule for f in findings)
    for rule in RULES:
        if per_rule.get(rule, 0) != 1:
            failures.append(
                "known_bad.cpp: rule %s fired %d times (expected exactly 1)"
                % (rule, per_rule.get(rule, 0)))
    for rule, count in sorted(per_rule.items()):
        if rule not in RULES:
            failures.append(
                "known_bad.cpp: unexpected rule %s fired %d times" % (rule, count))

    # Compensated/assignment-form accumulators (the mean-field integrator
    # idiom) must NOT trip float-accum: the rule targets bare `+=` running
    # sums, and a false positive here would push real ODE code toward
    # allow() noise.
    ok = fixture("compensated_ok.cpp",
                 os.path.join("src", "stats", "compensated_ok.cpp"))
    findings, _ = scan([ok])
    for f in findings:
        failures.append("compensated_ok.cpp:%d: unexpected finding [%s] %s"
                        % (f.line, f.rule, f.message))

    sup = fixture("suppressed.cpp", os.path.join("src", "stats", "suppressed.cpp"))
    findings, suppressions = scan([sup])
    for f in findings:
        failures.append("suppressed.cpp:%d: unexpected finding [%s] %s"
                        % (f.line, f.rule, f.message))
    fired = {rule for (_path, rule) in suppressions}
    for rule in RULES:
        if rule not in fired:
            failures.append(
                "suppressed.cpp: no allow(%s) suppression exercised" % rule)
    # Exact counts: a rule that silently stops firing must be caught even
    # under its allow().
    for (_path, rule), count in sorted(suppressions.items()):
        if count != 1:
            failures.append(
                "suppressed.cpp: allow(%s) suppressed %d finding(s) "
                "(expected exactly 1)" % (rule, count))

    # The allowlist path: a suppressed ShardCrew wiring is finding-free AND
    # the suppression count is asserted exactly.
    crew = fixture("shard_capture_allowed.cpp",
                   os.path.join("src", "sim", "shard_capture_allowed.cpp"))
    findings, suppressions = scan([crew])
    for f in findings:
        failures.append(
            "shard_capture_allowed.cpp:%d: unexpected finding [%s] %s"
            % (f.line, f.rule, f.message))
    got = suppressions[(crew.relpath, "shard-capture")]
    if got != 1:
        failures.append(
            "shard_capture_allowed.cpp: shard-capture suppressed %d "
            "time(s) (expected exactly 1)" % got)

    # Sorted-snapshot collect loops stay quiet, and an allow() naming an
    # sstlyz-owned rule passes through instead of reading as unknown.
    snap = fixture("snapshot_collect_ok.cpp",
                   os.path.join("src", "core", "snapshot_collect_ok.cpp"))
    findings, suppressions = scan([snap])
    for f in findings:
        failures.append(
            "snapshot_collect_ok.cpp:%d: unexpected finding [%s] %s"
            % (f.line, f.rule, f.message))
    if sum(suppressions.values()) != 0:
        failures.append(
            "snapshot_collect_ok.cpp: unexpected suppressions recorded: %r"
            % sorted(suppressions.items()))
    return failures


def main(argv):
    ap = argparse.ArgumentParser(prog="sstlint", add_help=True)
    ap.add_argument("--repo", default=None,
                    help="repository root (default: parent of this script)")
    ap.add_argument("--audit", action="store_true",
                    help="also fail if suppressions drift from the allowlist")
    ap.add_argument("--list-suppressions", action="store_true",
                    help="print observed allowlist lines and exit")
    ap.add_argument("--self-test", action="store_true",
                    help="run the rules against tools/lint_fixtures/")
    args = ap.parse_args(argv)

    repo = args.repo or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    if args.self_test:
        failures = self_test(repo)
        for f in failures:
            print("sstlint self-test: %s" % f, file=sys.stderr)
        print("sstlint self-test: %s"
              % ("FAIL" if failures else "ok (%d rules)" % len(RULES)))
        return 1 if failures else 0

    sources = load_sources(repo)
    findings, suppressions = scan(sources)

    if args.list_suppressions:
        for ln in suppression_lines(suppressions):
            print(ln)
        return 0

    for f in sorted(findings):
        print("%s:%d: [%s] %s" % (f.path, f.line, f.rule, f.message))

    problems = audit(repo, suppressions) if args.audit else []
    for p in problems:
        print("sstlint audit: %s" % p, file=sys.stderr)

    total = len(findings)
    if total or problems:
        print("sstlint: %d finding(s), %d audit problem(s)"
              % (total, len(problems)), file=sys.stderr)
        return 1
    print("sstlint: clean (%d files, %d suppression(s) on allowlist)"
          % (len(sources), sum(suppressions.values())))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
