#!/usr/bin/env python3
"""sstlyz — structural analyzer for the soft-state simulator's concurrency
and determinism contracts.

Where sstlint (tools/sstlint.py) matches single lines, sstlyz reasons over
program STRUCTURE: function definitions with their bodies, a call graph, the
capability annotations from src/check/annotate.hpp, and loop/lambda extents.
That lets it express the rules the regexes structurally cannot:

  root-reach    functions reachable from ShardCrew worker entry points (the
                crew lambda, and anything annotated SST_REQUIRES_SHARD
                without SST_REQUIRES_ROOT) must not touch SST_ROOT_ONLY
                state — computed over the call graph, not per line. The
                fault path's SST_REQUIRES_COORDINATOR pair reads as root
                AND shard at once (annotate.hpp: every worker is parked
                between barriers), so a coordinator hook is never a worker
                entry — and worker-reachable code CALLING one is itself a
                finding, even when the hook's root state lives in another
                translation unit.
  ref-capture   lambdas scheduled into the event machinery (Simulator::at/
                after, EventQueue::schedule, Timer::arm) must not capture
                locals by reference: the lambda outlives the scope, so the
                capture dangles. `this` and by-value captures are fine.
  iter-taint    iteration over a std::unordered_{map,set} member whose loop
                body REACHES an ordered sink (event scheduling, wire
                encoding, digest update, channel send) through the call
                graph. The sorted-snapshot idiom — a body that only
                collects into a vector — is structurally quiet, where
                sstlint's unordered-iter regex cannot tell the difference.
  rng-reseed    a literal-seeded sim::Rng temporary (`Rng(3)` passed as an
                argument or assigned): a nameless stream invisible to the
                experiment seed plan. Name the root (`sim::Rng root(3);`)
                and fork() children from it. tools/ is exempt.
  fence-read    a function that touches SST_EPOCH_SHARED state without
                declaring SST_REQUIRES_FENCE[_SHARED] or asserting the
                epoch fence: the barrier-published epoch inputs may only be
                read inside a fence-scoped region.

Engines: the default `builtin` engine is a dependency-free structural
frontend (comment/string stripping, brace-matched function and loop
extents, a name-resolved call graph with member-type hints) so the rules
run on every toolchain in CI. `--engine=libclang` swaps in a clang.cindex
frontend for AST-exact function extents when libclang is installed, and
skips with exit 77 when it is not; `auto` uses libclang when importable.

Suppression shares sstlint's grammar: `// sstlint: allow(<rule>)` on the
finding's line, recorded in tools/sstlyz_allowlist.txt (same
`path<TAB>rule<TAB>count` format, audited by --audit). sstlint's own rule
names are recognized and left for sstlint to judge, and vice versa.

Exit codes: 0 clean, 1 findings/drift/self-test failure, 2 usage or
malformed compile_commands, 77 forced engine unavailable.

Usage:
  tools/sstlyz.py [--repo DIR]               analyze src/, bench/, examples/
  tools/sstlyz.py --compile-commands DB.json restrict .cpp TUs to the build's
  tools/sstlyz.py --audit                    diff suppressions vs allowlist
  tools/sstlyz.py --list-suppressions        print observed allowlist lines
  tools/sstlyz.py --stats                    per-rule hit/suppression counts
  tools/sstlyz.py --self-test                run rules against the fixtures
"""

from __future__ import annotations

import argparse
import collections
import json
import os
import re
import sys

SCAN_DIRS = ("src", "bench", "examples")
EXTS = (".hpp", ".cpp")
ALLOWLIST = os.path.join("tools", "sstlyz_allowlist.txt")
FIXTURE_DIR = os.path.join("tools", "lyz_fixtures")

RULES = (
    "root-reach",
    "ref-capture",
    "iter-taint",
    "rng-reseed",
    "fence-read",
)

# sstlint's rules share the allow() grammar; directives naming them are that
# tool's to audit, never "unknown" here (and sstlint returns the courtesy
# via its EXTERNAL_RULES set).
EXTERNAL_RULES = frozenset((
    "unordered-iter", "ptr-key", "wall-clock", "raw-rand", "float-accum",
    "rng-seed", "corrupt-include", "shard-capture",
))

Finding = collections.namedtuple("Finding", "path line rule message")

ALLOW_RE = re.compile(r"//\s*sstlint:\s*allow\(([a-z\-,\s]+)\)")

KEYWORDS = frozenset((
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "static_assert", "new", "delete", "do", "else", "case",
    "throw", "noexcept", "alignas", "assert", "defined",
))

# Annotated member declarations: `Type name SST_ROOT_ONLY ...;` — the macro
# follows the declarator (Abseil placement), so the identifier right before
# it is the member.
ROOT_ONLY_RE = re.compile(r"\b(\w+)\s+SST_ROOT_ONLY\b")
EPOCH_SHARED_RE = re.compile(r"\b(\w+)\s+SST_EPOCH_SHARED\b")

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set)\s*<[^;]*>\s+(\w+)\s*[;{=]"
)

# Member declarations with a resolvable class type, for receiver-typed call
# resolution (`sh.data.send(` -> Channel::send, not every send in the repo).
MEMBER_TYPE_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:std::unique_ptr<\s*)?"
    r"([A-Za-z_][\w]*(?:::[A-Za-z_][\w]*)*)\s*(?:<[^;<>()]*>)?\s*>?\s*[*&]?\s+"
    r"(\w+)\s*(?:SST_[A-Z_]+(?:\([^()]*\))?\s*)*(?:=[^;]*)?[;{]"
)

RNG_RESEED_RE = re.compile(r"\b(?:sim::)?Rng\s*\(\s*\d+\s*\)")

SINK_NAMES = ("at", "after", "schedule", "arm")
SINK_CALL_RE = re.compile(r"(?:\.|->)\s*(?:%s)\s*\(" % "|".join(SINK_NAMES))

ORDERED_SINK_RE = re.compile(
    r"(?:\.|->)\s*(?:at|after|schedule|arm|update|send|encode\w*)\s*\("
    r"|\bschedule\s*\(|\bdigest\s*\(|\btransmit_?\s*\(|\bemit\s*\("
)

FUNC_HEAD_RE = re.compile(
    r"(?P<name>~?[A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*)\s*"
    r"\((?P<args>[^;{}()]*(?:\([^()]*\)[^;{}()]*)*)\)"
    r"(?P<trail>[^;{}]*?)\{"
)

CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct)\s+(?:SST_CAPABILITY\s*\([^)]*\)\s*)?"
    r"([A-Za-z_]\w*)[^;{]*\{"
)

# A REQUIRES-annotated declaration (class body, no definition): the macro
# lives on the first declaration only, so rule checks must read it here.
DECL_REQ_RE = re.compile(
    r"\b(\w+)\s*\(((?:[^;{}()]|\([^()]*\))*)\)\s*"
    r"((?:const|noexcept|override|final|\s)*"
    r"(?:SST_REQUIRES\w*(?:\s*\((?:[^()]|\([^()]*\))*\))?\s*)+)\s*;"
)

CALL_RE = re.compile(r"(?:(\w+)\s*(\.|->)\s*)?([A-Za-z_]\w*)\s*\(")

LAMBDA_INTRO_RE = re.compile(r"\[([^\[\]]*)\]\s*(?=[({]|mutable\b)")


def strip_code(text):
    """Blanks comments and string/char literal contents, keeping line
    structure so findings carry real line numbers (sstlint's algorithm)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                i += 2
            elif c == "/" and nxt == "*":
                state = "block"
                i += 2
            elif c == '"':
                state = "str"
                out.append(c)
                i += 1
            elif c == "'":
                state = "chr"
                out.append(c)
                i += 1
            else:
                out.append(c)
                i += 1
        elif state in ("line", "block"):
            if state == "line" and c == "\n":
                state = "code"
            elif state == "block" and c == "*" and nxt == "/":
                state = "code"
                i += 1
            if c == "\n":
                out.append(c)
            i += 1
        else:  # str | chr
            quote = '"' if state == "str" else "'"
            if c == "\\":
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":
                out.append(c)
            i += 1
    return "".join(out)


def tu_key(relpath):
    """Translation-unit scope: (directory, basename-without-extension), so
    core/sharded.cpp and its members never leak into other files' checks."""
    d, base = os.path.split(relpath)
    return d, os.path.splitext(base)[0]


def match_brace(text, open_pos):
    """Index one past the `}` matching the `{` at open_pos, or len(text)."""
    depth = 0
    for i in range(open_pos, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


class FunctionDef:
    """One function (or constructor) definition with its body extent."""

    def __init__(self, name, relpath, head_line, body, body_line, trail,
                 cls=None):
        self.name = name              # unqualified
        self.relpath = relpath
        self.head_line = head_line    # 1-based line of the header
        self.body = body              # stripped body text (between braces)
        self.body_line = body_line    # 1-based line the body starts on
        self.trail = trail            # text between `)` and `{` (annotations)
        self.cls = cls                # enclosing/qualifying class, if known

    def requires(self):
        req = set()
        text = self.trail
        # The coordinator pair is both domains at once (annotate.hpp): the
        # fault hooks run between barriers, where the root executor also
        # owns every parked shard. Tracked as a third token so root-reach
        # can flag worker-side CALLS of a hook, not just member touches.
        if "SST_REQUIRES_COORDINATOR" in text:
            req.update(("root", "shard", "coordinator"))
        if "SST_REQUIRES_ROOT" in text or "root_role" in text:
            req.add("root")
        if "SST_REQUIRES_SHARD" in text or "shard_role" in text:
            req.add("shard")
        if "SST_REQUIRES_FENCE" in text or "epoch_fence" in text:
            req.add("fence")
        if "SST_REQUIRES_ENGINE" in text or "engine_role" in text:
            req.add("engine")
        return req

    def body_line_of(self, pattern):
        """1-based file line of the first body line matching `pattern`."""
        for off, line in enumerate(self.body.splitlines()):
            if pattern.search(line):
                return self.body_line + off
        return self.head_line


class Source:
    def __init__(self, relpath, text):
        self.relpath = relpath
        self.raw_lines = text.splitlines()
        self.code = strip_code(text)
        self.code_lines = self.code.splitlines()
        self.allows = {}
        for num, raw in enumerate(self.raw_lines, 1):
            m = ALLOW_RE.search(raw)
            if m:
                rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
                self.allows[num] = rules
        self._line_starts = [0]
        for line in self.code.splitlines(keepends=True):
            self._line_starts.append(self._line_starts[-1] + len(line))

    def line_at(self, pos):
        """1-based line containing character offset `pos` of the code."""
        lo, hi = 0, len(self._line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._line_starts[mid] <= pos:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    def class_spans(self):
        """[(class name, start, end)] built from brace-matched heads."""
        spans = []
        for m in CLASS_HEAD_RE.finditer(self.code):
            open_pos = m.end() - 1
            spans.append((m.group(1), open_pos, match_brace(self.code,
                                                           open_pos)))
        return spans

    def functions(self):
        """Builtin frontend: function definitions via brace matching. The
        libclang engine replaces this method's output with AST extents."""
        spans = self.class_spans()
        defs = []
        pos = 0
        while True:
            m = FUNC_HEAD_RE.search(self.code, pos)
            if not m:
                break
            open_pos = m.end() - 1
            name = m.group("name").replace(" ", "").split("::")[-1]
            if name in KEYWORDS or name.startswith("SST_"):
                pos = m.start() + 1
                continue
            end = match_brace(self.code, open_pos)
            qualified = m.group("name").replace(" ", "")
            cls = qualified.split("::")[-2] if "::" in qualified else None
            if cls is None:
                for cname, cstart, cend in spans:
                    if cstart < m.start() < cend:
                        cls = cname  # innermost wins via later overwrite
            defs.append(FunctionDef(
                name=name,
                relpath=self.relpath,
                head_line=self.line_at(m.start()),
                body=self.code[open_pos + 1:end - 1],
                body_line=self.line_at(open_pos),
                trail=m.group("trail"),
                cls=cls,
            ))
            pos = end
        return defs


# --------------------------------------------------------------- the program

class Program:
    """Whole-repo view: sources, function defs, annotations, call graph."""

    def __init__(self, sources, engine="builtin"):
        self.sources = sources
        self.by_path = {s.relpath: s for s in sources}
        self.defs = []
        for src in sources:
            self.defs.extend(extract_functions(src, engine))
        self.defs_by_name = collections.defaultdict(list)
        for d in self.defs:
            self.defs_by_name[d.name].append(d)

        # Annotated members and member-type hints, per translation unit.
        self.root_only = collections.defaultdict(set)
        self.epoch_shared = collections.defaultdict(set)
        self.unordered = collections.defaultdict(set)
        self.member_types = collections.defaultdict(dict)
        # REQUIRES annotations live on the in-class DECLARATION; merge them
        # into a per-name record so out-of-class definitions inherit them.
        self.decl_requires = collections.defaultdict(set)
        for src in sources:
            key = tu_key(src.relpath)
            for line in src.code_lines:
                for m in ROOT_ONLY_RE.finditer(line):
                    self.root_only[key].add(m.group(1))
                for m in EPOCH_SHARED_RE.finditer(line):
                    self.epoch_shared[key].add(m.group(1))
                for m in UNORDERED_DECL_RE.finditer(line):
                    self.unordered[key].add(m.group(1))
                m = MEMBER_TYPE_RE.match(line)
                if m and m.group(1) not in ("return", "delete", "using"):
                    cls = m.group(1).split("::")[-1]
                    self.member_types[key][m.group(2)] = cls
            for m in DECL_REQ_RE.finditer(src.code):
                trail = m.group(3)
                req = set()
                if "SST_REQUIRES_COORDINATOR" in trail:
                    req.update(("root", "shard", "coordinator"))
                if "SST_REQUIRES_ROOT" in trail:
                    req.add("root")
                if "SST_REQUIRES_SHARD" in trail:
                    req.add("shard")
                if "SST_REQUIRES_FENCE" in trail:
                    req.add("fence")
                if "SST_REQUIRES_ENGINE" in trail:
                    req.add("engine")
                if req:
                    self.decl_requires[m.group(1)] |= req

    def requires_of(self, fdef):
        return fdef.requires() | self.decl_requires.get(fdef.name, set())

    def callees(self, body, key):
        """Called defs from `body`, receiver-typed where a member-type hint
        resolves the class, name-union otherwise."""
        out = []
        for m in CALL_RE.finditer(body):
            recv, _op, name = m.group(1), m.group(2), m.group(3)
            if name in KEYWORDS or name.startswith("SST_"):
                continue
            cands = self.defs_by_name.get(name, ())
            if not cands:
                continue
            if recv is not None:
                cls = self.member_types[key].get(recv)
                if cls is not None:
                    # The receiver's class is known: resolve strictly within
                    # it. Zero matches means a library-type method (e.g.
                    # `heap_.at(i)` on a std::vector) — DON'T fall back to the
                    # name union, or vector::at would alias Simulator::at and
                    # drag the whole event machinery into every closure.
                    out.extend(d for d in cands if d.cls == cls)
                    continue
            # Unqualified name union: prefer defs in the caller's own TU
            # (header + source pair), else fall back to library (src/) defs.
            # bench/ and examples/ are leaf programs — library code never
            # calls into them, so a free `report()` helper in an example must
            # not alias check::report for the whole closure.
            local = [d for d in cands if tu_key(d.relpath) == key]
            if local:
                out.extend(local)
            else:
                out.extend(d for d in cands if d.relpath.startswith("src/"))
        return out

    def closure(self, seed_defs):
        """Transitive callee closure over the name-resolved call graph."""
        seen = set()
        work = list(seed_defs)
        result = []
        while work:
            d = work.pop()
            ident = id(d)
            if ident in seen:
                continue
            seen.add(ident)
            result.append(d)
            work.extend(self.callees(d.body, tu_key(d.relpath)))
        return result


def extract_functions(src, engine):
    if engine == "libclang":
        try:
            return libclang_functions(src)
        except Exception:  # any parse hiccup: fall back, never lose coverage
            return src.functions()
    return src.functions()


def libclang_functions(src):
    """AST-exact function extents via clang.cindex. Only reached when the
    caller verified the import (see resolve_engine); the rules themselves
    are engine-independent."""
    import clang.cindex as ci  # noqa: import guarded by resolve_engine

    index = ci.Index.create()
    tu = index.parse(src.relpath, args=["-std=c++20"],
                     unsaved_files=[(src.relpath, "\n".join(src.raw_lines))],
                     options=ci.TranslationUnit.PARSE_INCOMPLETE)
    defs = []

    def visit(cursor, cls):
        for child in cursor.get_children():
            kind = child.kind.name
            if kind in ("CLASS_DECL", "STRUCT_DECL", "CLASS_TEMPLATE"):
                visit(child, child.spelling or cls)
                continue
            if kind in ("CXX_METHOD", "FUNCTION_DECL", "CONSTRUCTOR",
                        "DESTRUCTOR", "FUNCTION_TEMPLATE") \
                    and child.is_definition():
                ext = child.extent
                lines = src.code_lines[ext.start.line - 1:ext.end.line]
                body = "\n".join(lines)
                brace = body.find("{")
                head, body = body[:brace], body[brace + 1:]
                parent = child.semantic_parent
                pcls = parent.spelling if parent and parent.kind.name in (
                    "CLASS_DECL", "STRUCT_DECL", "CLASS_TEMPLATE") else cls
                defs.append(FunctionDef(
                    name=child.spelling.split("::")[-1],
                    relpath=src.relpath,
                    head_line=ext.start.line,
                    body=body,
                    body_line=ext.start.line + head.count("\n"),
                    trail=head[head.rfind(")") + 1:] if ")" in head else "",
                    cls=pcls,
                ))
            visit(child, cls)

    visit(tu.cursor, None)
    return defs if defs else src.functions()


# -------------------------------------------------------------------- rules

def emit(src, num, rule, message, findings, suppressions):
    allowed = src.allows.get(num, set())
    if rule in allowed:
        suppressions[(src.relpath, rule)] += 1
    else:
        findings.append(Finding(src.relpath, num, rule, message))


def rule_root_reach(prog, findings, suppressions):
    """Worker-reachable code must not touch SST_ROOT_ONLY state."""
    entries = []
    for d in prog.defs:
        req = prog.requires_of(d)
        if "shard" in req and "root" not in req:
            entries.append(d)
    # ShardCrew wiring sites: the crew lambda's calls are worker entries.
    for src in prog.sources:
        for m in re.finditer(r"\bShardCrew\b", src.code):
            window = src.code[m.end():m.end() + 600]
            lam = LAMBDA_INTRO_RE.search(window)
            if not lam:
                continue
            brace = window.find("{", lam.end())
            if brace < 0:
                continue
            body = window[brace + 1:match_brace(window, brace) - 1]
            entries.extend(prog.callees(body, tu_key(src.relpath)))

    reported = set()
    closure = prog.closure(entries)
    for d in closure:
        key = tu_key(d.relpath)
        members = prog.root_only.get(key, ())
        for member in sorted(members):
            pat = re.compile(r"\b%s\b" % re.escape(member))
            if not pat.search(d.body):
                continue
            line = d.body_line_of(pat)
            if (d.relpath, line, member) in reported:
                continue
            reported.add((d.relpath, line, member))
            emit(prog.by_path[d.relpath], line, "root-reach",
                 "'%s()' is reachable from shard-worker entry points but "
                 "touches SST_ROOT_ONLY member '%s'; root state must stay "
                 "on the coordinator side of the barrier" % (d.name, member),
                 findings, suppressions)

    # Fault-path extension: a coordinator hook (SST_REQUIRES_COORDINATOR =
    # root AND shard, valid only while every worker is parked between
    # barriers) called from worker-reachable code is a protocol violation at
    # the CALL SITE — visible even when the hook's root-only members live in
    # a different translation unit than the caller.
    for d in closure:
        if "coordinator" in prog.requires_of(d):
            continue  # hook-to-hook calls stay inside the parked window
        for callee in prog.callees(d.body, tu_key(d.relpath)):
            if "coordinator" not in prog.requires_of(callee):
                continue
            pat = re.compile(r"\b%s\s*\(" % re.escape(callee.name))
            line = d.body_line_of(pat)
            if (d.relpath, line, callee.name) in reported:
                continue
            reported.add((d.relpath, line, callee.name))
            emit(prog.by_path[d.relpath], line, "root-reach",
                 "'%s()' is reachable from shard-worker entry points but "
                 "calls coordinator hook '%s()' (SST_REQUIRES_COORDINATOR); "
                 "fault hooks presume parked workers and may only run "
                 "between barriers" % (d.name, callee.name),
                 findings, suppressions)


def rule_ref_capture(prog, findings, suppressions):
    """No by-reference captures in lambdas handed to the event machinery."""
    for src in prog.sources:
        for m in SINK_CALL_RE.finditer(src.code):
            open_pos = src.code.find("(", m.start())
            depth = 0
            end = len(src.code)
            for i in range(open_pos, len(src.code)):
                c = src.code[i]
                if c in "({":
                    depth += 1
                elif c in ")}":
                    depth -= 1
                    if depth == 0:
                        end = i
                        break
            span = src.code[open_pos:end]
            for lam in LAMBDA_INTRO_RE.finditer(span):
                captures = [c.strip() for c in lam.group(1).split(",")
                            if c.strip()]
                bad = [c for c in captures
                       if c == "&" or (c.startswith("&") and
                                       not c.startswith("&&"))]
                if not bad:
                    continue
                line = src.line_at(open_pos + lam.start())
                emit(src, line, "ref-capture",
                     "lambda scheduled into the event machinery captures "
                     "%s by reference; the lambda outlives this scope — "
                     "capture by value (pointers to heap-pinned state are "
                     "fine)" % ", ".join("'%s'" % b for b in bad),
                     findings, suppressions)


def rule_iter_taint(prog, findings, suppressions):
    """Unordered iteration whose body reaches an ordered sink."""
    for src in prog.sources:
        key = tu_key(src.relpath)
        members = prog.unordered.get(key, ())
        if not members:
            continue
        for member in sorted(members):
            loop_re = re.compile(
                r"for\s*\([^;)]*:\s*(?:\w+(?:\.|->))?%s\s*\)\s*"
                % re.escape(member))
            for m in loop_re.finditer(src.code):
                brace = src.code.find("{", m.end() - 1)
                semi = src.code.find(";", m.end() - 1)
                if brace >= 0 and (semi < 0 or brace < semi):
                    body = src.code[brace + 1:match_brace(src.code,
                                                          brace) - 1]
                else:  # single-statement loop body
                    body = src.code[m.end():semi if semi >= 0 else None]
                tainted = ORDERED_SINK_RE.search(body) is not None
                if not tainted:
                    seeds = prog.callees(body, key)
                    tainted = any(
                        ORDERED_SINK_RE.search(d.body)
                        for d in prog.closure(seeds))
                if tainted:
                    emit(src, src.line_at(m.start()), "iter-taint",
                         "iteration over unordered member '%s' reaches an "
                         "ordered sink (scheduling/encoding/digest/send); "
                         "iterate a sorted snapshot instead" % member,
                         findings, suppressions)


def rule_rng_reseed(prog, findings, suppressions):
    """No literal-seeded Rng temporaries; name the root stream."""
    for src in prog.sources:
        for num, line in enumerate(src.code_lines, 1):
            for m in RNG_RESEED_RE.finditer(line):
                emit(src, num, "rng-reseed",
                     "literal-seeded sim::Rng temporary '%s': the stream "
                     "has no name in the seed plan — declare a named root "
                     "(`sim::Rng root(N);`) and fork() children from it"
                     % m.group(0).strip(), findings, suppressions)


def rule_fence_read(prog, findings, suppressions):
    """SST_EPOCH_SHARED access only inside fence-scoped regions."""
    for d in prog.defs:
        key = tu_key(d.relpath)
        members = prog.epoch_shared.get(key, ())
        if not members:
            continue
        req = prog.requires_of(d)
        if "fence" in req:
            continue
        if "epoch_fence.assert_held" in d.body:
            continue  # asserted, with the justifying comment at the site
        for member in sorted(members):
            pat = re.compile(r"\b%s\b" % re.escape(member))
            if not pat.search(d.body):
                continue
            emit(prog.by_path[d.relpath], d.body_line_of(pat), "fence-read",
                 "'%s()' touches SST_EPOCH_SHARED member '%s' without "
                 "SST_REQUIRES_FENCE[_SHARED] or an epoch_fence assert; "
                 "barrier-published state is fence-scoped" % (d.name, member),
                 findings, suppressions)


ALL_RULES = (
    rule_root_reach,
    rule_ref_capture,
    rule_iter_taint,
    rule_rng_reseed,
    rule_fence_read,
)


def scan(sources, engine="builtin"):
    """Runs every rule; returns (findings, suppressions)."""
    prog = Program(sources, engine=engine)
    findings = []
    suppressions = collections.Counter()
    for rule in ALL_RULES:
        rule(prog, findings, suppressions)

    # Stale/unknown allow() directives, for sstlyz's rules only.
    for src in sources:
        for num, rules in sorted(src.allows.items()):
            for rule in sorted(rules):
                if rule in EXTERNAL_RULES:
                    continue  # sstlint's to audit
                if rule not in RULES:
                    findings.append(Finding(
                        src.relpath, num, "bad-suppression",
                        "allow(%s) names an unknown rule" % rule))
                elif suppressions[(src.relpath, rule)] == 0:
                    findings.append(Finding(
                        src.relpath, num, "bad-suppression",
                        "allow(%s) suppressed nothing on this line; remove "
                        "the stale directive" % rule))
    return findings, suppressions


# ------------------------------------------------------------------ loading

def load_compile_commands(path):
    """TU set from a compile_commands.json; exits 2 with a readable message
    on malformed input (a silent empty DB would vacuously pass the gate)."""
    try:
        with open(path, encoding="utf-8") as f:
            db = json.load(f)
        if not isinstance(db, list):
            raise ValueError("top-level JSON value is not an array")
        files = []
        for entry in db:
            if not isinstance(entry, dict) or "file" not in entry:
                raise ValueError("entry without a 'file' field")
            files.append(entry["file"])
        return files
    except (OSError, ValueError) as exc:
        print("sstlyz: malformed compile_commands at %s: %s" % (path, exc),
              file=sys.stderr)
        sys.exit(2)


def load_sources(repo, compile_commands=None):
    tu_files = None
    if compile_commands is not None:
        tu_files = set()
        for f in load_compile_commands(compile_commands):
            rel = os.path.relpath(os.path.realpath(f), os.path.realpath(repo))
            tu_files.add(rel)
    sources = []
    for root in SCAN_DIRS:
        top = os.path.join(repo, root)
        for dirpath, _dirnames, filenames in os.walk(top):
            for fn in sorted(filenames):
                if not fn.endswith(EXTS):
                    continue
                path = os.path.join(dirpath, fn)
                rel = os.path.relpath(path, repo)
                # The DB restricts .cpp TUs (flag parity with the build);
                # headers are always in scope — they hold the annotations.
                if (tu_files is not None and fn.endswith(".cpp")
                        and rel not in tu_files):
                    continue
                with open(path, encoding="utf-8") as f:
                    sources.append(Source(rel, f.read()))
    sources.sort(key=lambda s: s.relpath)
    return sources


def suppression_lines(suppressions):
    return [
        "%s\t%s\t%d" % (path, rule, count)
        for (path, rule), count in sorted(suppressions.items())
    ]


def audit(repo, suppressions):
    """Diffs observed suppressions against the committed allowlist."""
    path = os.path.join(repo, ALLOWLIST)
    committed = []
    if os.path.exists(path):
        with open(path, encoding="utf-8") as f:
            committed = [
                ln.rstrip("\n") for ln in f
                if ln.strip() and not ln.lstrip().startswith("#")
            ]
    observed = suppression_lines(suppressions)
    if committed == observed:
        return []
    problems = []
    for ln in sorted(set(observed) - set(committed)):
        problems.append("unrecorded suppression (add to %s): %s"
                        % (ALLOWLIST, ln.replace("\t", " ")))
    for ln in sorted(set(committed) - set(observed)):
        problems.append("stale allowlist entry (suppression gone): %s"
                        % ln.replace("\t", " "))
    if not problems:
        problems.append("allowlist entries out of canonical sorted order")
    return problems


# ---------------------------------------------------------------- self-test

# Every rule must trip on its bad fixture and stay quiet on its good one;
# the suppressed fixture must suppress each rule exactly once. Entries may
# carry a third dict pinning EXACT per-rule suppression counts (the
# coordinator trio uses it: the same findings, each under its allow()).
# Fixtures are scanned under virtual src/ paths so TU scoping behaves as in
# the tree.
SELF_TEST_MATRIX = (
    ("root_reach_bad.cpp", {"root-reach": 1}),
    ("root_reach_ok.cpp", {}),
    ("ref_capture_bad.cpp", {"ref-capture": 1}),
    ("ref_capture_ok.cpp", {}),
    ("iter_taint_bad.cpp", {"iter-taint": 1}),
    ("iter_taint_ok.cpp", {}),
    ("rng_reseed_bad.cpp", {"rng-reseed": 1}),
    ("rng_reseed_ok.cpp", {}),
    ("fence_read_bad.cpp", {"fence-read": 1}),
    ("fence_read_ok.cpp", {}),
    # SST_REQUIRES_COORDINATOR (the fault path): the pair must read as root
    # AND shard at once — half-recognition would turn every fault hook into
    # a worker entry (the ok fixture pins that), and a worker-side CALL of a
    # hook is a root-reach finding in its own right (the bad fixture: one
    # call-site finding + one member touch, plus fence-read proving the pair
    # does NOT grant the epoch fence).
    ("coordinator_bad.cpp", {"root-reach": 2, "fence-read": 1}),
    ("coordinator_ok.cpp", {}),
    ("coordinator_suppressed.cpp", {}, {"root-reach": 2, "fence-read": 1}),
)


def self_test(repo):
    failures = []

    def fixture(name):
        path = os.path.join(repo, FIXTURE_DIR, name)
        with open(path, encoding="utf-8") as f:
            return Source(os.path.join("src", "fixture",
                                       name), f.read())

    for name, expected, *rest in SELF_TEST_MATRIX:
        expected_sup = rest[0] if rest else {}
        src = fixture(name)
        findings, sup = scan([src])
        per_rule = collections.Counter(f.rule for f in findings)
        for rule in RULES:
            want = expected.get(rule, 0)
            if per_rule.get(rule, 0) != want:
                failures.append(
                    "%s: rule %s fired %d times (expected %d)"
                    % (name, rule, per_rule.get(rule, 0), want))
            want_sup = expected_sup.get(rule, 0)
            got_sup = sup.get((src.relpath, rule), 0)
            if got_sup != want_sup:
                failures.append(
                    "%s: rule %s suppressed %d time(s) (expected %d)"
                    % (name, rule, got_sup, want_sup))
        for f in findings:
            if f.rule not in RULES:
                failures.append("%s:%d: unexpected [%s] %s"
                                % (name, f.line, f.rule, f.message))

    # The suppressed fixture: zero findings, each rule suppressed EXACTLY
    # once — asserting the counts, not just the rule set, so a rule that
    # silently stops firing is caught even under its allow().
    sup_src = fixture("lyz_suppressed.cpp")
    findings, suppressions = scan([sup_src])
    for f in findings:
        failures.append("lyz_suppressed.cpp:%d: unexpected finding [%s] %s"
                        % (f.line, f.rule, f.message))
    for rule in RULES:
        got = suppressions.get((sup_src.relpath, rule), 0)
        if got != 1:
            failures.append(
                "lyz_suppressed.cpp: allow(%s) suppressed %d finding(s) "
                "(expected exactly 1)" % (rule, got))
    return failures


# --------------------------------------------------------------------- main

def resolve_engine(requested):
    """auto -> libclang when importable, else builtin. A FORCED libclang
    that cannot import is a skip (77): the environment, not the tree, is
    what's missing — ctest's SKIP_RETURN_CODE treats it accordingly."""
    if requested == "builtin":
        return "builtin"
    try:
        import clang.cindex  # noqa: F401
        return "libclang"
    except ImportError:
        if requested == "libclang":
            print("SKIP: clang.cindex (libclang) not importable; the "
                  "builtin engine covers these rules — install libclang "
                  "python bindings to force AST extents", file=sys.stderr)
            sys.exit(77)
        return "builtin"


def main(argv):
    ap = argparse.ArgumentParser(prog="sstlyz", add_help=True)
    ap.add_argument("--repo", default=None,
                    help="repository root (default: parent of this script)")
    ap.add_argument("--compile-commands", default=None, metavar="DB",
                    help="compile_commands.json restricting the .cpp TU set")
    ap.add_argument("--engine", choices=("auto", "builtin", "libclang"),
                    default="auto",
                    help="frontend: builtin (pure python), libclang "
                         "(clang.cindex; skips 77 if missing), auto")
    ap.add_argument("--audit", action="store_true",
                    help="also fail if suppressions drift from the allowlist")
    ap.add_argument("--list-suppressions", action="store_true",
                    help="print observed allowlist lines and exit")
    ap.add_argument("--stats", action="store_true",
                    help="print per-rule finding/suppression counts")
    ap.add_argument("--self-test", action="store_true",
                    help="run the rules against tools/lyz_fixtures/")
    args = ap.parse_args(argv)

    repo = args.repo or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    engine = resolve_engine(args.engine)

    if args.self_test:
        failures = self_test(repo)
        for f in failures:
            print("sstlyz self-test: %s" % f, file=sys.stderr)
        print("sstlyz self-test: %s"
              % ("FAIL" if failures else "ok (%d rules, %d fixtures)"
                 % (len(RULES), len(SELF_TEST_MATRIX) + 1)))
        return 1 if failures else 0

    sources = load_sources(repo, args.compile_commands)
    findings, suppressions = scan(sources, engine=engine)

    if args.list_suppressions:
        for ln in suppression_lines(suppressions):
            print(ln)
        return 0

    if args.stats:
        hit = collections.Counter(f.rule for f in findings)
        sup = collections.Counter(rule for (_p, rule) in suppressions.elements())
        print("rule            findings  suppressions")
        for rule in RULES:
            print("%-15s %8d  %12d" % (rule, hit.get(rule, 0),
                                       sup.get(rule, 0)))
        extra = sorted(set(hit) - set(RULES))
        for rule in extra:
            print("%-15s %8d  %12d" % (rule, hit[rule], 0))

    for f in sorted(findings):
        print("%s:%d: [%s] %s" % (f.path, f.line, f.rule, f.message))

    problems = audit(repo, suppressions) if args.audit else []
    for p in problems:
        print("sstlyz audit: %s" % p, file=sys.stderr)

    total = len(findings)
    if total or problems:
        print("sstlyz: %d finding(s), %d audit problem(s)"
              % (total, len(problems)), file=sys.stderr)
        return 1
    print("sstlyz: clean (%d files, %d function defs, engine=%s, "
          "%d suppression(s) on allowlist)"
          % (len(sources), len(Program(sources).defs), engine,
             sum(suppressions.values())))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
