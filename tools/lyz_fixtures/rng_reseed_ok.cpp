// sstlyz fixture: rng-reseed MUST stay quiet.
//
// The sanctioned shape: a NAMED root stream declared with its literal seed
// (visible in the seed plan), children forked from it by tag. Never
// compiled — scanned textually by sstlyz --self-test.

namespace fixture {

double lottery_mean() {
  sim::Rng root(3);  // the named root stream for this fixture
  sched::LotteryScheduler sched{root.fork("lottery")};
  return sched.weight(0);
}

}  // namespace fixture
