// sstlyz fixture: iter-taint MUST fire exactly once.
//
// The loop ranges over an unordered member and its body schedules an event
// per entry: the event queue's insertion order inherits the hash table's
// bucket layout, which is not reproducible across library versions. Never
// compiled — scanned textually by sstlyz --self-test.

namespace fixture {

class Registry {
 public:
  void flush();

 private:
  std::unordered_map<int, double> due_;
  sim::Simulator* sim_;
};

void Registry::flush() {
  for (const auto& [key, when] : due_) {
    sim_->at(when, [key] { (void)key; });  // schedule order = hash order
  }
}

}  // namespace fixture
