// sstlyz fixture: ref-capture MUST fire exactly once.
//
// A lambda scheduled into the simulator captures a stack local by
// reference; the event runs after this frame has returned, so the capture
// dangles. Never compiled — scanned textually by sstlyz --self-test.

namespace fixture {

void schedule_tick(sim::Simulator& sim) {
  int local = 0;
  sim.after(1.0, [&local] { ++local; });  // dangles once this frame returns
}

}  // namespace fixture
