// sstlyz fixture: coordinator_bad.cpp under suppression — zero findings,
// root-reach suppressed EXACTLY twice and fence-read EXACTLY once (the
// self-test pins the counts, so a coordinator check that silently stops
// firing is caught even under its allow()). Never compiled — scanned
// textually by tools/sstlyz.py --self-test.
#include "check/annotate.hpp"

namespace fixture {

class Engine {
 public:
  void run();

 private:
  void worker_epoch(unsigned long s) SST_REQUIRES_SHARD;
  void crash_hook() SST_REQUIRES_COORDINATOR;

  unsigned long paused_ SST_ROOT_ONLY = 0;
  std::vector<int> log_ SST_EPOCH_SHARED;
};

void Engine::crash_hook() {
  ++paused_;          // sstlint: allow(root-reach)
  (void)log_.size();  // sstlint: allow(fence-read)
}

void Engine::worker_epoch(unsigned long) {
  crash_hook();  // sstlint: allow(root-reach)
}

void Engine::run() {
  sim::ShardCrew crew(2, [this](unsigned long s) { worker_epoch(s); });
}

}  // namespace fixture
