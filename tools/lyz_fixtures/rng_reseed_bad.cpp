// sstlyz fixture: rng-reseed MUST fire exactly once.
//
// A literal-seeded Rng TEMPORARY: the stream has no name, so the
// experiment seed plan cannot account for it, and two call sites writing
// Rng(3) silently share draws. Never compiled — scanned by --self-test.

namespace fixture {

double lottery_mean() {
  sched::LotteryScheduler sched{sim::Rng(3)};  // nameless stream
  return sched.weight(0);
}

}  // namespace fixture
