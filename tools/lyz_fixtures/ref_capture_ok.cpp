// sstlyz fixture: ref-capture MUST stay quiet.
//
// By-value and `this` captures into the event machinery are fine, and a
// by-reference lambda that is invoked immediately (never scheduled) is not
// the rule's business. Never compiled — scanned by sstlyz --self-test.

namespace fixture {

struct Widget {
  void poke();
  int hits = 0;
};

void schedule_ok(sim::Simulator& sim, Widget* w, std::vector<int>& items) {
  const int snapshot = 7;
  sim.after(1.0, [w, snapshot] { w->hits += snapshot; });
  sim.at(2.0, [w] { w->poke(); });

  int total = items.at(0);  // vector::at with no lambda: not a sink use
  auto fold = [&total](int x) { total += x; };  // immediate, never scheduled
  fold(snapshot);
}

}  // namespace fixture
