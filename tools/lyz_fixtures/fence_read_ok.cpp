// sstlyz fixture: fence-read MUST stay quiet.
//
// Both sanctioned shapes: publish() carries SST_REQUIRES_FENCE on its
// declaration (the exclusive writer), scan() asserts the shared fence with
// the protocol justification (the reader). Never compiled — scanned
// textually by sstlyz --self-test.
#include "check/annotate.hpp"

namespace fixture {

class Engine {
 public:
  void publish(int v) SST_REQUIRES_FENCE;
  unsigned long scan();

 private:
  std::vector<int> log_ SST_EPOCH_SHARED;
};

void Engine::publish(int v) { log_.push_back(v); }

unsigned long Engine::scan() {
  // Worker side of the fixture's imaginary protocol: the barrier grants a
  // SHARED fence for the duration of the epoch.
  ::sst::check::epoch_fence.assert_held_shared();
  return log_.size();
}

}  // namespace fixture
