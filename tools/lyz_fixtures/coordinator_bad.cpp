// sstlyz fixture: the coordinator pair on the fault path — root-reach MUST
// fire exactly twice and fence-read exactly once.
//
// crash_hook() is a fault hook declared SST_REQUIRES_COORDINATOR (root AND
// shard: every worker parked between barriers). worker_epoch() — a
// shard-worker entry — calls it, which is exactly the protocol violation
// the coordinator extension exists to catch: one root-reach finding for the
// call site itself, one for the SST_ROOT_ONLY member the hook touches. The
// hook also reads the SST_EPOCH_SHARED log without holding or asserting the
// fence — SST_REQUIRES_COORDINATOR does NOT grant it — so fence-read must
// fire once. Never compiled — scanned textually by sstlyz --self-test.
#include "check/annotate.hpp"

namespace fixture {

class Engine {
 public:
  void run();

 private:
  void worker_epoch(unsigned long s) SST_REQUIRES_SHARD;
  void crash_hook() SST_REQUIRES_COORDINATOR;

  unsigned long paused_ SST_ROOT_ONLY = 0;
  std::vector<int> log_ SST_EPOCH_SHARED;
};

void Engine::crash_hook() {
  ++paused_;          // root state: fine for the coordinator, fatal here
  (void)log_.size();  // epoch-shared without the fence
}

void Engine::worker_epoch(unsigned long) { crash_hook(); }

void Engine::run() {
  sim::ShardCrew crew(2, [this](unsigned long s) { worker_epoch(s); });
}

}  // namespace fixture
