// sstlyz fixture: every rule violated once, every violation suppressed with
// the shared sstlint allow-comment grammar. The self-test asserts ZERO
// findings and EXACTLY one suppression per rule — so a rule that silently
// stops firing is caught even under its allow(). Never compiled.
#include "check/annotate.hpp"

namespace fixture {

class Engine {
 public:
  void run();
  unsigned long peek() const;

 private:
  void worker_epoch(unsigned long s) SST_REQUIRES_SHARD;

  std::unordered_map<int, double> due_;
  sim::Simulator* sim_;
  unsigned long epochs_ SST_ROOT_ONLY = 0;
  std::vector<int> log_ SST_EPOCH_SHARED;
};

void Engine::worker_epoch(unsigned long) {
  ++epochs_;  // sstlint: allow(root-reach)
}

unsigned long Engine::peek() const {
  return log_.size();  // sstlint: allow(fence-read)
}

void Engine::run() {
  sim::ShardCrew crew(2, [this](unsigned long s) { worker_epoch(s); });
  int local = 0;
  sim_->after(1.0, [&local] { ++local; });  // sstlint: allow(ref-capture)
  for (const auto& [key, when] : due_) {  // sstlint: allow(iter-taint)
    sim_->at(when, [key] { (void)key; });
  }
  sched::LotteryScheduler sched{sim::Rng(3)};  // sstlint: allow(rng-reseed)
  (void)sched;
}

}  // namespace fixture
