// sstlyz fixture: root-reach MUST stay quiet.
//
// The same shape as root_reach_bad.cpp, but the worker touches only
// SST_SHARD_LOCAL state; the root-only member is reached exclusively from
// the root-side method (SST_REQUIRES_ROOT), which no worker entry calls.
// Never compiled — scanned textually by tools/sstlyz.py --self-test.
#include "check/annotate.hpp"

namespace fixture {

class Engine {
 public:
  void run();

 private:
  void worker_epoch(unsigned long s) SST_REQUIRES_SHARD;
  void bump_root() SST_REQUIRES_ROOT;

  unsigned long epochs_ SST_ROOT_ONLY = 0;
  unsigned long local_ticks_ SST_SHARD_LOCAL = 0;
};

void Engine::bump_root() { ++epochs_; }

void Engine::worker_epoch(unsigned long) { ++local_ticks_; }

void Engine::run() {
  bump_root();
  sim::ShardCrew crew(2, [this](unsigned long s) { worker_epoch(s); });
}

}  // namespace fixture
