// sstlyz fixture: fence-read MUST fire exactly once.
//
// peek() touches an SST_EPOCH_SHARED member with no
// SST_REQUIRES_FENCE[_SHARED] annotation and no epoch_fence assert:
// barrier-published state read outside any fence-scoped region. Never
// compiled — scanned textually by sstlyz --self-test.
#include "check/annotate.hpp"

namespace fixture {

class Engine {
 public:
  unsigned long peek() const;

 private:
  std::vector<int> log_ SST_EPOCH_SHARED;
};

unsigned long Engine::peek() const {
  return log_.size();  // no fence held or asserted
}

}  // namespace fixture
