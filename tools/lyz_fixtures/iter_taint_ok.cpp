// sstlyz fixture: iter-taint MUST stay quiet.
//
// The sorted-snapshot idiom: the unordered loop only collects keys into a
// vector (no ordered sink in its body or call closure); the schedule then
// walks the SORTED snapshot. This is exactly the case sstlint's regex
// cannot distinguish. Never compiled — scanned by sstlyz --self-test.

namespace fixture {

class Registry {
 public:
  void flush();

 private:
  std::unordered_map<int, double> due_;
  sim::Simulator* sim_;
};

void Registry::flush() {
  std::vector<int> keys;
  for (const auto& [key, when] : due_) keys.push_back(key);  // snapshot only
  std::sort(keys.begin(), keys.end());
  for (const int key : keys) {
    sim_->at(due_.at(key), [key] { (void)key; });
  }
}

}  // namespace fixture
