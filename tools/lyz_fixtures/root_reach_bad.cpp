// sstlyz fixture: root-reach MUST fire exactly once.
//
// worker_epoch() is a shard-worker entry point (SST_REQUIRES_SHARD without
// SST_REQUIRES_ROOT, and it is the ShardCrew lambda's target); through the
// call graph it reaches bump_root(), which touches SST_ROOT_ONLY state.
// Never compiled — scanned textually by tools/sstlyz.py --self-test.
#include "check/annotate.hpp"

namespace fixture {

class Engine {
 public:
  void run();

 private:
  void worker_epoch(unsigned long s) SST_REQUIRES_SHARD;
  void bump_root();

  unsigned long epochs_ SST_ROOT_ONLY = 0;
};

void Engine::bump_root() { ++epochs_; }

void Engine::worker_epoch(unsigned long) { bump_root(); }

void Engine::run() {
  sim::ShardCrew crew(2, [this](unsigned long s) { worker_epoch(s); });
}

}  // namespace fixture
