// sstlyz fixture: the coordinator pair MUST stay quiet.
//
// The same fault hook, used correctly: crash_hook() is called only from the
// root-side driver between barriers and touches root-only AND shard-local
// state — SST_REQUIRES_COORDINATOR grants both domains at once. The
// half-recognition failure mode (reading the pair as shard-only) would turn
// the hook into a worker entry and flag its paused_ touch; this fixture
// pins that it does not. The epoch-shared read is fenced by an asserted
// exclusive hold, the sanctioned shape for the parked-worker window. Never
// compiled — scanned textually by tools/sstlyz.py --self-test.
#include "check/annotate.hpp"

namespace fixture {

class Engine {
 public:
  void run();

 private:
  void worker_epoch(unsigned long s) SST_REQUIRES_SHARD;
  void crash_hook() SST_REQUIRES_COORDINATOR;

  unsigned long paused_ SST_ROOT_ONLY = 0;
  unsigned long local_ticks_ SST_SHARD_LOCAL = 0;
  std::vector<int> log_ SST_EPOCH_SHARED;
};

void Engine::crash_hook() {
  ++paused_;       // root half of the pair
  ++local_ticks_;  // shard half: every worker is parked
  // Fault hooks fire at fence-snapped instants: between barriers the
  // coordinator holds the epoch fence exclusively.
  ::sst::check::epoch_fence.assert_held();
  (void)log_.size();
}

void Engine::worker_epoch(unsigned long) { ++local_ticks_; }

void Engine::run() {
  crash_hook();
  sim::ShardCrew crew(2, [this](unsigned long s) { worker_epoch(s); });
}

}  // namespace fixture
