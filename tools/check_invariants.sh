#!/bin/sh
# Runtime invariant-audit gate (standalone; see also `ctest -L check`).
#
# Builds the tree with -DSST_CHECK=ON so every pooled/index-linked
# structure (EventQueue, NamespaceTree, Interner, Channel pools, the
# schedulers) self-audits on its operation cadence with the default
# abort-on-violation handler, then:
#
#   1. runs the functional test suite under those compiled-in audits
#      (perf-smoke excluded — the audits cost ~12x on the queue
#      microbenches by design, see EXPERIMENTS.md);
#   2. drives a real fig-bench workload end to end;
#   3. replays the same sstsim run in the audited and the default build
#      and requires byte-identical aggregated JSON — the hooks must be
#      behavior-neutral, not just crash-free.
#
#   tools/check_invariants.sh [check-build-dir [default-build-dir]]
#       defaults: build-check  build
#
# Exit codes: 0 clean; non-zero on any audit abort, test failure, or
# digest divergence; 77 when cmake/ctest are unavailable.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
check_dir=${1:-"$repo_root/build-check"}
default_dir=${2:-"$repo_root/build"}

command -v cmake > /dev/null 2>&1 || {
  echo "SKIP: cmake not available" >&2
  exit 77
}
command -v ctest > /dev/null 2>&1 || {
  echo "SKIP: ctest not available" >&2
  exit 77
}

echo "== configure + build (SST_CHECK=ON): $check_dir"
cmake -S "$repo_root" -B "$check_dir" -DSST_CHECK=ON > /dev/null
cmake --build "$check_dir" -j"$(nproc 2> /dev/null || echo 4)" > /dev/null

echo "== functional suite under compiled-in audits (perf-smoke excluded)"
(cd "$check_dir" && ctest -LE 'perf-smoke|lint' --output-on-failure \
    -j"$(nproc 2> /dev/null || echo 4)")

echo "== fig-bench workload under audits (abort handler armed)"
"$check_dir/bench/bench_fig5_two_queue" --reps=2 --jobs=2 \
    --out="$check_dir/fig5_audited.json" > /dev/null
echo "   bench_fig5_two_queue clean"

# Behavior-neutrality: the audited binary must reproduce the default
# build's aggregated sstsim JSON byte for byte (same seeds, same jobs).
sim_args="--variant=feedback --lambda-kbps=10 --mu-data-kbps=40
          --mu-fb-kbps=10 --loss=0.2 --duration=300 --warmup=50
          --replications=4 --jobs=2"
extract_json() {
  # shellcheck disable=SC2086  # sim_args is a word list by construction
  "$1/tools/sstsim" $sim_args | sed -n '/^BEGIN-JSON$/,/^END-JSON$/p'
}
if [ -x "$default_dir/tools/sstsim" ]; then
  echo "== determinism digest: audited vs default build"
  extract_json "$check_dir" > "$check_dir/sstsim_audited.json"
  extract_json "$default_dir" > "$check_dir/sstsim_default.json"
  if ! cmp -s "$check_dir/sstsim_audited.json" \
              "$check_dir/sstsim_default.json"; then
    echo "FAIL: SST_CHECK build diverges from the default build" >&2
    diff "$check_dir/sstsim_default.json" "$check_dir/sstsim_audited.json" \
      | head -20 >&2
    exit 1
  fi
  echo "   byte-identical"
else
  echo "   (default build $default_dir not built; digest cross-check skipped)"
fi

# Sharded engine under audits: the SST_CHECK build arms the engine's own
# validators (mailbox FIFO/conservation, epoch-schedule monotonicity, the
# no-event-past-the-lookahead-horizon audit in the NACK merge) — a 4-shard
# run must finish clean AND reproduce the audited single-queue run byte for
# byte.
echo "== sharded engine under audits"
shard_args="--variant=feedback --lambda-kbps=12 --mu-data-kbps=42
            --mu-fb-kbps=12 --loss=0.25 --receivers=8 --delay=0.05
            --duration=300 --warmup=50 --seed=7 --replications=4 --jobs=2"
# shellcheck disable=SC2086  # shard_args is a word list by construction
"$check_dir/tools/sstsim" $shard_args --shards=1 \
    > "$check_dir/sstsim_shards1.txt"
# shellcheck disable=SC2086
"$check_dir/tools/sstsim" $shard_args --shards=4 \
    > "$check_dir/sstsim_shards4.txt"
if ! cmp -s "$check_dir/sstsim_shards1.txt" "$check_dir/sstsim_shards4.txt"
then
  echo "FAIL: audited sharded run diverges from audited single-queue run" >&2
  diff "$check_dir/sstsim_shards1.txt" "$check_dir/sstsim_shards4.txt" \
    | head -20 >&2
  exit 1
fi
echo "   4-shard run clean and byte-identical"

echo "invariant audits clean"
