#!/bin/sh
# Perf-regression smoke gate: re-times the tracked microbenchmarks
# (bench_engine, bench_sstp_hotpath, bench_meanfield, bench_shard_scaling)
# with a few quick replications and compares them against the committed
# BENCH_<name>.json baselines. Fails if any scenario regressed by more than
# the margin (default 25%).
#
# Comparison rule: the FRESH MINIMUM across smoke replications must stay
# within margin of the COMMITTED MEAN. The min filters scheduler noise
# (which only ever slows a run down), so three replications are enough for
# a stable gate; the committed mean is the honest baseline. Scenarios whose
# metric is a rate/latency other than ns_per_op (experiment_e2e) compare
# wall_ms the same way.
#
# Wired into ctest as `bench_regression_smoke` (label perf-smoke,
# RUN_SERIAL so concurrent tests don't pollute the timings). Standalone:
#
#   tools/check_bench.sh [build-dir]     (default: build)
#
# Env overrides: CHECK_BENCH_MARGIN (percent, default 25),
#                CHECK_BENCH_REPS (default 3).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
margin=${CHECK_BENCH_MARGIN:-25}
reps=${CHECK_BENCH_REPS:-3}

# 77 is the conventional "skipped" exit code; the ctest registration maps
# it via SKIP_RETURN_CODE so missing prerequisites never fail tier-1.
command -v python3 > /dev/null 2>&1 || {
  echo "SKIP: python3 not available for JSON comparison" >&2
  exit 77
}

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

status=0
# bench-binary-suffix:baseline-name pairs (bench_shard_scaling emits the
# canonical experiment name "shard_engine", so its baseline differs).
for pair in engine:engine sstp_hotpath:sstp_hotpath meanfield:meanfield \
            shard_scaling:shard_engine; do
  name=${pair%%:*}
  base_name=${pair#*:}
  bin="$build_dir/bench/bench_$name"
  baseline="$repo_root/BENCH_$base_name.json"
  if [ ! -x "$bin" ]; then
    echo "SKIP: $bin not built" >&2
    exit 77
  fi
  if [ ! -f "$baseline" ]; then
    echo "SKIP: no committed baseline $baseline" >&2
    exit 77
  fi
  echo "== bench_$name: $reps smoke replications vs $(basename "$baseline")"
  "$bin" --reps="$reps" --jobs=1 --out="$work/$name.json" > /dev/null
  python3 - "$baseline" "$work/$name.json" "$margin" << 'EOF' || status=1
import json
import sys

baseline_path, fresh_path, margin = sys.argv[1], sys.argv[2], sys.argv[3]
allowed = 1.0 + float(margin) / 100.0


def rows(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for point in doc["points"]:
        key = "/".join(str(v) for v in point["params"].values())
        metrics = point["metrics"]
        # Lower-is-better metric per scenario: ns_per_op for the micro
        # scenarios, wall_ms for the end-to-end experiment replication.
        metric = "ns_per_op" if "ns_per_op" in metrics else "wall_ms"
        out[key] = (metric, metrics[metric])
    return out


base, fresh = rows(baseline_path), rows(fresh_path)
failed = False
for key, (metric, b) in sorted(base.items()):
    if key not in fresh:
        print(f"  MISSING  {key} (in baseline, not in fresh run)")
        failed = True
        continue
    f = fresh[key][1]
    ratio = f["min"] / b["mean"] if b["mean"] > 0 else float("inf")
    verdict = "ok" if ratio <= allowed else "REGRESSED"
    print(f"  {verdict:9s} {key:42s} {metric}: baseline mean "
          f"{b['mean']:12.1f}  fresh min {f['min']:12.1f}  ({ratio:.2f}x)")
    if ratio > allowed:
        failed = True
sys.exit(1 if failed else 0)
EOF
done

if [ "$status" -ne 0 ]; then
  echo "FAIL: benchmark regression beyond ${margin}% — investigate before" \
       "committing, or regenerate the baseline if the change is intended" >&2
  exit 1
fi
echo "bench smoke check passed (margin ${margin}%)"
