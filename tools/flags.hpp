// flags.hpp — minimal --key=value flag parsing for the CLI tools.
//
// No dependencies, no registry: call `Flags::parse(argc, argv)` and pull
// typed values with defaults. Unknown flags are collected so tools can
// reject typos instead of silently ignoring them.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace sst::tools {

class Flags {
 public:
  static Flags parse(int argc, char** argv) {
    Flags f;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        std::exit(2);
      }
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        f.values_[arg] = "true";  // boolean flag
      } else {
        f.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
    return f;
  }

  [[nodiscard]] std::string str(const std::string& key,
                                const std::string& def) const {
    touch(key);
    const auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }

  [[nodiscard]] double num(const std::string& key, double def) const {
    touch(key);
    const auto it = values_.find(key);
    return it == values_.end() ? def : std::atof(it->second.c_str());
  }

  [[nodiscard]] bool flag(const std::string& key, bool def = false) const {
    touch(key);
    const auto it = values_.find(key);
    if (it == values_.end()) return def;
    return it->second != "false" && it->second != "0";
  }

  /// Call after all lookups: exits with a message if the command line held
  /// flags no lookup ever asked about (typo protection).
  void reject_unknown() const {
    bool bad = false;
    for (const auto& [key, value] : values_) {
      if (!known_.contains(key)) {
        std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
        bad = true;
      }
    }
    if (bad) std::exit(2);
  }

 private:
  void touch(const std::string& key) const { known_.insert(key); }

  std::map<std::string, std::string> values_;
  mutable std::set<std::string> known_;
};

}  // namespace sst::tools
