#!/bin/sh
# Format drift report (ctest label `lint`, non-fatal by design).
#
# Checks .clang-format conformance and REPORTS drift without failing: the
# tree predates the config, and a hard gate would force a mass reformat
# that buries real history. New/touched code converges instead.
#
#   tools/check_format.sh --diff-only   only files changed vs HEAD
#                                       (plus staged/untracked sources)
#   tools/check_format.sh               every tracked C++ file
#
# Exit codes: 0 always (drift is reported, not fatal); 77 when
# clang-format is unavailable (ctest maps it to SKIPPED).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
mode=${1:---all}

command -v clang-format > /dev/null 2>&1 || {
  echo "SKIP: clang-format not installed" >&2
  exit 77
}
command -v git > /dev/null 2>&1 || {
  echo "SKIP: git not available to enumerate files" >&2
  exit 77
}

cd "$repo_root"
case "$mode" in
  --diff-only)
    files=$( (git diff --name-only HEAD; git ls-files --others --exclude-standard) \
            | sort -u | grep -E '\.(hpp|cpp)$' || true)
    ;;
  --all)
    files=$(git ls-files '*.hpp' '*.cpp')
    ;;
  *)
    echo "usage: $0 [--diff-only | --all]" >&2
    exit 2
    ;;
esac

[ -n "$files" ] || { echo "format check: no C++ files in scope"; exit 0; }

drifted=0
total=0
for f in $files; do
  [ -f "$f" ] || continue
  total=$((total + 1))
  if ! clang-format --dry-run -Werror "$f" > /dev/null 2>&1; then
    drifted=$((drifted + 1))
    echo "format drift: $f"
  fi
done
echo "format check: $drifted of $total file(s) drift from .clang-format" \
     "(informational; not a gate)"
exit 0
