# check_determinism.cmake — ctest driver for the jobs-independence gate.
#
# Runs the same replicated experiment with --jobs=1 and --jobs=8 and fails
# unless the stdout (human summary + canonical JSON document) is
# byte-identical. Invoked as:
#   cmake -DSSTSIM=<path> -DWORK_DIR=<dir> -P check_determinism.cmake
if(NOT SSTSIM)
  message(FATAL_ERROR "pass -DSSTSIM=<path to sstsim>")
endif()
file(MAKE_DIRECTORY ${WORK_DIR})

set(args --variant=feedback --lambda-kbps=12 --mu-data-kbps=42
    --mu-fb-kbps=12 --loss=0.25 --receivers=2 --duration=400 --warmup=50
    --seed=7 --replications=8)

execute_process(
  COMMAND ${SSTSIM} ${args} --jobs=1
  OUTPUT_FILE ${WORK_DIR}/jobs1.txt
  RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "sstsim --jobs=1 failed (exit ${rc1})")
endif()

execute_process(
  COMMAND ${SSTSIM} ${args} --jobs=8
  OUTPUT_FILE ${WORK_DIR}/jobs8.txt
  RESULT_VARIABLE rc8)
if(NOT rc8 EQUAL 0)
  message(FATAL_ERROR "sstsim --jobs=8 failed (exit ${rc8})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/jobs1.txt ${WORK_DIR}/jobs8.txt
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
      "--jobs=1 and --jobs=8 output differ: the replication driver is not "
      "schedule-independent. Compare ${WORK_DIR}/jobs1.txt vs jobs8.txt")
endif()
message(STATUS "jobs=1 and jobs=8 output byte-identical")
