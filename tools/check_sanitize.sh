#!/bin/sh
# Builds the tree with ASan + UBSan and runs the tier-1 test suite under the
# instrumented runtime. Any sanitizer report fails the corresponding test
# (halt_on_error) and therefore the script.
#
# Usage: tools/check_sanitize.sh [build-dir]   (default: build-asan)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-asan"}

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  "-DSST_SANITIZE=address;undefined"
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)"

ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc 2>/dev/null || echo 4)"

echo "sanitize check passed: $build_dir"
