// sstlint fixture: the allowlist path for shard-capture. A ShardCrew wiring
// whose worker lambda captures by reference IS the sanctioned design (the
// lambda is the worker entry point); the allow() must suppress the finding,
// and the self-test asserts the suppression count EXACTLY — so a rule that
// silently stops firing is caught even under its allow(). Never compiled.
#include <cstddef>

namespace fixture {

void wire(std::size_t shards) {
  sim::ShardCrew crew(shards, [&](std::size_t s) {  // sstlint: allow(shard-capture)
    (void)s;
  });
}

}  // namespace fixture
