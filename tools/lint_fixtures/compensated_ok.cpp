// compensated_ok.cpp — sstlint self-test fixture (never compiled).
//
// Mirrors the accumulation idioms of the mean-field fluid integrator
// (src/analysis/meanfield.cpp): Kahan/compensated running sums for the
// long-horizon trapezoid integrals, and RK4 state combines written as
// whole-value assignments. None of these are bare `+=` running sums on
// float state, so float-accum (and every other rule) must stay QUIET here —
// the self-test asserts this file is finding-free with no allow()
// directives. Scanned under the virtual path src/stats/compensated_ok.cpp
// so the path-scoped float-accum rule applies.
#include <vector>

namespace fixture {

// Stand-in for stats::CompensatedSum: the compensated form is the blessed
// way to integrate c(t) over 10^5+ fixed steps without drift.
class CompensatedSum {
 public:
  void add(double x) {
    const double t = sum_ + x;
    if ((sum_ >= x ? sum_ - t + x : x - t + sum_) != 0.0) {
      carry_ = (sum_ >= x ? sum_ - t + x : x - t + sum_);
    }
    sum_ = t;
  }
  double value() const { return sum_ + carry_; }

 private:
  double sum_ = 0.0;    // updated only through add(): no bare running sum
  double carry_ = 0.0;
};

class FluidLikeIntegrator {
 public:
  void step(double dt) {
    // RK4 combine as a whole-value assignment, not an in-place `+=` drip:
    // the truncation error stays O(h^4) and the lint stays quiet.
    const double h6 = dt / 6.0;
    for (std::size_t i = 0; i < y_.size(); ++i) {
      y_[i] = y_[i] + h6 * (k1_[i] + 2.0 * k2_[i] + 2.0 * k3_[i] + k4_[i]);
    }
    // Trapezoid accumulation of the observable goes through the
    // compensated sum, never through a double member.
    occ_integral_.add(0.5 * dt * (prev_c_ + cur_c_));
    prev_c_ = cur_c_;  // plain assignment: allowed on float state
  }

 private:
  std::vector<double> y_, k1_, k2_, k3_, k4_;
  CompensatedSum occ_integral_;
  double prev_c_ = 0.0;
  double cur_c_ = 0.0;
};

}  // namespace fixture
