// known_bad.cpp — sstlint self-test fixture (never compiled).
//
// Seeds exactly ONE violation of every sstlint rule; the self-test asserts
// each rule fires exactly once here, so a rule that silently stops matching
// (or starts double-reporting) fails `tools/sstlint.py --self-test`.
// Scanned under the virtual path src/stats/known_bad.cpp so the
// path-scoped rules (wall-clock, float-accum) apply.
#include "check/corrupt.hpp"  // corrupt-include: test-only header

#include <chrono>
#include <cstdlib>
#include <set>
#include <unordered_map>

namespace fixture {

struct KnownBad {
  void tick() {
    for (const auto& kv : members_) use(kv.second);  // unordered-iter
    last_ =                                          // wall-clock:
        std::chrono::steady_clock::now().time_since_epoch().count();
    jitter_ = std::rand() % 7;                       // raw-rand
    acc_ += 0.1;                                     // float-accum
    auto rng = sim::Rng();                           // rng-seed
    use(rng);
    sim::ShardCrew crew(4, [this](std::size_t s) {   // shard-capture
      use(s);
    });
    use(crew);
  }

  template <class T>
  void use(const T&) {}

  std::unordered_map<int, int> members_;
  std::set<const KnownBad*> order_;  // ptr-key: ASLR-dependent ordering
  long long last_ = 0;
  int jitter_ = 0;
  double acc_ = 0.0;
};

}  // namespace fixture
