// suppressed.cpp — sstlint self-test fixture (never compiled).
//
// The same seeded violations as known_bad.cpp, each carrying a
// `// sstlint: allow(<rule>)` directive. The self-test asserts this file
// produces ZERO findings and that every rule's suppression actually fires —
// covering both the directive parser and the stale-allow detector (an
// allow() that suppresses nothing is itself reported).
#include "check/corrupt.hpp"  // sstlint: allow(corrupt-include)

#include <chrono>
#include <cstdlib>
#include <set>
#include <unordered_map>

namespace fixture {

struct Suppressed {
  void tick() {
    for (const auto& kv : members_) use(kv.second);  // sstlint: allow(unordered-iter)
    last_ = std::chrono::steady_clock::now()         // sstlint: allow(wall-clock)
                .time_since_epoch().count();
    jitter_ = std::rand() % 7;  // sstlint: allow(raw-rand)
    acc_ += 0.1;                // sstlint: allow(float-accum)
    auto rng = sim::Rng();      // sstlint: allow(rng-seed)
    use(rng);
    sim::ShardCrew crew(4, [this](std::size_t s) {  // sstlint: allow(shard-capture)
      use(s);
    });
    use(crew);
  }

  template <class T>
  void use(const T&) {}

  std::unordered_map<int, int> members_;
  std::set<const Suppressed*> order_;  // sstlint: allow(ptr-key)
  long long last_ = 0;
  int jitter_ = 0;
  double acc_ = 0.0;
};

}  // namespace fixture
