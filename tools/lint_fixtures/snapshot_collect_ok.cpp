// sstlint fixture: sorted-snapshot collect loops must NOT trip
// unordered-iter — in both braceless shapes (body on the for line, body on
// the following line). Also carries an allow() naming a rule owned by
// tools/sstlyz.py: sstlint must pass it through rather than reporting an
// unknown-rule bad-suppression. Never compiled.
#include <algorithm>
#include <unordered_map>
#include <vector>

namespace fixture {

class Table {
 public:
  std::vector<int> sorted_keys() const {
    std::vector<int> keys;
    for (const auto& kv : members_) keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  std::vector<int> sorted_keys_two_line() const {
    std::vector<int> keys;
    for (const auto& kv : members_)
      keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  // Passthrough: iter-taint belongs to sstlyz; sstlint must stay silent.
  void touch() const {}  // sstlint: allow(iter-taint)

 private:
  std::unordered_map<int, int> members_;
};

}  // namespace fixture
