// sstsim — run a soft state (or hard-state baseline) experiment from the
// command line and print every metric; the scriptable front-end to the
// experiment harness.
//
// Examples:
//   sstsim --variant=feedback --lambda-kbps=15 --mu-data-kbps=42 \
//          --mu-fb-kbps=18 --hot-share=0.85 --loss=0.4 --duration=3000
//   sstsim --variant=openloop --lambda-kbps=20 --mu-data-kbps=128 \
//          --death=per-tx --p-death=0.2 --loss=0.1 --timeline=100
//   sstsim --variant=hardstate --lambda-kbps=10 --loss=0.02 \
//          --outage=900:1020
//   sstsim --help
#include <cstdio>
#include <cstring>
#include <string>

#include "arq/experiment.hpp"
#include "core/experiment.hpp"
#include "core/sharded.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "flags.hpp"
#include "net/hostile.hpp"
#include "runner/adapters.hpp"
#include "runner/runner.hpp"

namespace {

using namespace sst;

constexpr const char* kHelp = R"(sstsim — soft state protocol simulator

  --variant=openloop|twoqueue|feedback|hardstate   protocol (default feedback)

workload:
  --lambda-kbps=15        new-record rate (1000-B records)
  --update-rate=0         in-place updates/sec over the live set
  --death=exp|per-tx|fixed|pareto   lifetime model (default exp)
  --p-death=0.1           per-transmission death probability (per-tx)
  --lifetime=120          mean record lifetime seconds (exp/fixed/pareto)
  --record-bytes=1000     announcement size
  --profile=sensor        sensor-style preset: ~120 long-lived 64-B sensors,
                          --lambda-kbps (default 8) all spent on tiny
                          in-place updates, 8 receivers by default. Replaces
                          the workload flags above.

bandwidth & network:
  --mu-data-kbps=45       data bandwidth
  --mu-fb-kbps=0          feedback bandwidth (feedback/hardstate ACK path)
  --hot-share=0.5         hot fraction of data bandwidth
  --loss=0.1              forward loss rate
  --shared-loss=0         backbone loss shared by all receivers
  --bursty                Gilbert-Elliott loss (mean --loss, burst 4)
  --delay=0.01            one-way propagation delay seconds
  --receivers=1           subscriber count
  --multicast-fb          shared feedback group with slotting/damping
  --slot=0.5              NACK slot max (with --multicast-fb)
  --outage=START:END[,START:END...]   total outage windows (seconds)
  --hostile=SPEC          hostile forward path: ';'-separated fields
                          reorder=PROB:MAX_EXTRA, dup=PROB[:CONT[:MAX[:SPR]]],
                          partition=START:END[,...], e.g.
                          --hostile='reorder=0.3:0.2;dup=0.1:0.5'
  --fb-hostile=SPEC       same, on the feedback (hardstate: ACK) path

fault injection (soft-state variants):
  --faults=SCRIPT         scripted fault timeline; ';'- or ','-separated
                          events of kind[:arg]@start[+duration], e.g.
                          --faults='crash@900+120;partition:0@600+60;
                          leave:1@400;join@1200;burst:0.5@1500+30;
                          bw:0.25@300+100'. Prints per-fault recovery time,
                          consistency deficit, and repair overhead.
  --recovery-threshold=0.9   consistency level that counts as recovered

run control:
  --duration=2000 --warmup=200 --seed=1
  --timeline=0            sample c(t) every N seconds (0 off)
  --scheduler=stride|lottery|wfq|drr|hier
  --shards=1              event-engine shards for EACH replication: K > 1
                          partitions the receivers across K worker threads
                          advanced in conservative-lookahead epochs; covers
                          --multicast-fb and --faults runs too. Output is
                          byte-identical for any supported K; unsupported
                          combinations (fluid backend, feedback with
                          --delay=0) warn and fall back to the single-queue
                          engine, and K > --receivers clamps. With --jobs=0
                          the replication pool leaves room for the shard
                          crews (jobs = ceil(hardware / shards)).

population tier (soft-state variants):
  --backend=discrete      discrete = event simulation of --receivers
                          fluid    = mean-field ODE cohort only (no RNG;
                                     byte-identical for any --jobs)
                          hybrid   = both, population-weighted blend
  --cohort=1e6            fluid/hybrid cohort size (receivers)

Monte-Carlo replication (sst::runner):
  --replications=1        independent replications; each runs with seed
                          Rng(--seed).fork("replication", i). With N > 1 the
                          single-run report is replaced by mean ± 95% CI per
                          metric plus the canonical sst-mc-v1 JSON document.
  --jobs=0                worker threads (0 = hardware concurrency). Pure
                          execution detail: output is byte-identical for any
                          value.
)";

std::vector<std::pair<double, double>> parse_outages(const std::string& s) {
  std::vector<std::pair<double, double>> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const auto colon = s.find(':', pos);
    if (colon == std::string::npos) break;
    auto comma = s.find(',', colon);
    if (comma == std::string::npos) comma = s.size();
    out.emplace_back(std::atof(s.substr(pos, colon - pos).c_str()),
                     std::atof(s.substr(colon + 1, comma - colon - 1).c_str()));
    pos = comma + 1;
  }
  return out;
}

void print_timeline(const std::vector<core::TimelinePoint>& timeline) {
  if (timeline.empty()) return;
  std::printf("\n  time_s  c(t)\n");
  for (const auto& p : timeline) {
    std::printf("  %6.0f  %.4f\n", p.time, p.consistency);
  }
}

/// Monte-Carlo options shared by all variants. Replications default to 1:
/// the classic single-run report stays the default (and byte-identical to
/// what this tool printed before the runner existed).
/// Parses a --hostile / --fb-hostile spec into `out`; false (after printing
/// the error) on malformed input. An absent flag leaves `out` inactive.
bool parse_hostile(const tools::Flags& flags, const char* name,
                   net::HostileConfig& out) {
  const std::string spec = flags.str(name, "");
  if (spec.empty()) return true;
  try {
    out = net::HostileConfig::parse(spec);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "--%s: %s\n", name, e.what());
    return false;
  }
  return true;
}

runner::Options mc_options(const tools::Flags& flags) {
  runner::Options opt;
  opt.replications =
      static_cast<std::size_t>(flags.num("replications", 1.0));
  opt.jobs = static_cast<std::size_t>(flags.num("jobs", 0.0));
  opt.master_seed = static_cast<std::uint64_t>(flags.num("seed", 1));
  return opt;
}

/// Replicated-run report: one mean ± CI line per metric, then the canonical
/// document (the same schema every bench emits) between markers.
void print_aggregate(const std::string& variant, const runner::Options& opt,
                     const runner::Aggregate& agg) {
  std::printf("variant            %s\n", variant.c_str());
  std::printf("replications       %zu (master seed %llu)\n",
              agg.replications(),
              static_cast<unsigned long long>(opt.master_seed));
  std::printf("\n  %-26s %14s %12s\n", "metric", "mean", "ci95");
  for (const auto& m : agg.metrics()) {
    std::printf("  %-26s %14.4f %12.4f\n", m.name.c_str(), m.stats.mean(),
                m.stats.ci95_half_width());
  }
  runner::Json params = runner::Json::object();
  params.set("variant", runner::Json::string(variant));
  std::vector<runner::SweepPoint> points;
  points.push_back({std::move(params), agg});
  const runner::Json doc = runner::mc_document("sstsim", opt, points);
  std::printf("\nBEGIN-JSON\n%sEND-JSON\n", doc.dump(2).c_str());
}

int run_hard(const tools::Flags& flags) {
  arq::HardStateConfig cfg;
  if (flags.str("profile", "") == "sensor") {
    cfg.workload = core::sensor_workload(flags.num("lambda-kbps", 8.0));
  } else {
    cfg.workload.insert_rate = core::insert_rate_from_kbps(
        flags.num("lambda-kbps", 10.0),
        static_cast<sim::Bytes>(flags.num("record-bytes", 1000)));
    cfg.workload.update_rate = flags.num("update-rate", 0.0);
    cfg.workload.death_mode = core::DeathMode::kExponentialLifetime;
    cfg.workload.mean_lifetime = flags.num("lifetime", 120.0);
  }
  if (!parse_hostile(flags, "hostile", cfg.fwd_hostile) ||
      !parse_hostile(flags, "fb-hostile", cfg.ack_hostile)) {
    return 2;
  }
  cfg.mu_data = sim::kbps(flags.num("mu-data-kbps", 45.0));
  cfg.mu_ack = sim::kbps(flags.num("mu-fb-kbps", 15.0));
  cfg.loss_rate = flags.num("loss", 0.1);
  cfg.delay = flags.num("delay", 0.01);
  cfg.outages = parse_outages(flags.str("outage", ""));
  cfg.duration = flags.num("duration", 2000.0);
  cfg.warmup = flags.num("warmup", 200.0);
  cfg.seed = static_cast<std::uint64_t>(flags.num("seed", 1));
  cfg.sample_interval = flags.num("timeline", 0.0);
  if (flags.num("shards", 1.0) != 1.0) {
    std::fprintf(stderr,
                 "warning: --shards ignored: --variant=hardstate runs on the "
                 "ARQ connection engine, which has no sharded "
                 "implementation (only the soft-state announce/listen "
                 "engine shards)\n");
  }
  const runner::Options mc = mc_options(flags);
  flags.reject_unknown();

  if (mc.replications > 1) {
    print_aggregate("hardstate", mc, runner::run_replicated(cfg, mc));
    return 0;
  }

  const auto r = arq::run_hard_state(cfg);
  std::printf("variant            hardstate\n");
  std::printf("avg_consistency    %.4f\n", r.avg_consistency);
  std::printf("mean_latency_s     %.3f\n", r.mean_latency);
  std::printf("p95_latency_s      %.3f\n", r.p95_latency);
  std::printf("data_tx            %llu (retransmits %llu)\n",
              static_cast<unsigned long long>(r.data_tx),
              static_cast<unsigned long long>(r.retransmits));
  std::printf("connection_deaths  %llu (snapshot ops %llu, flushes %llu)\n",
              static_cast<unsigned long long>(r.connection_deaths),
              static_cast<unsigned long long>(r.snapshot_ops),
              static_cast<unsigned long long>(r.table_flushes));
  std::printf("offered_kbps       data %.2f + ack %.2f\n",
              r.offered_data_kbps, r.offered_ack_kbps);
  print_timeline(r.timeline);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = sst::tools::Flags::parse(argc, argv);
  if (flags.flag("help")) {
    std::fputs(kHelp, stdout);
    return 0;
  }

  const std::string variant = flags.str("variant", "feedback");
  if (variant == "hardstate") return run_hard(flags);

  core::ExperimentConfig cfg;
  if (variant == "openloop") {
    cfg.variant = core::Variant::kOpenLoop;
  } else if (variant == "twoqueue") {
    cfg.variant = core::Variant::kTwoQueue;
  } else if (variant == "feedback") {
    cfg.variant = core::Variant::kFeedback;
  } else {
    std::fprintf(stderr, "unknown --variant=%s\n", variant.c_str());
    return 2;
  }

  const bool sensor = flags.str("profile", "") == "sensor";
  if (sensor) {
    cfg.workload = core::sensor_workload(flags.num("lambda-kbps", 8.0));
  } else {
    const auto record_bytes =
        static_cast<sim::Bytes>(flags.num("record-bytes", 1000));
    cfg.workload.record_size = record_bytes;
    cfg.workload.insert_rate = core::insert_rate_from_kbps(
        flags.num("lambda-kbps", 15.0), record_bytes);
    cfg.workload.update_rate = flags.num("update-rate", 0.0);
    const std::string death = flags.str("death", "exp");
    if (death == "per-tx") {
      cfg.workload.death_mode = core::DeathMode::kPerTransmission;
    } else if (death == "fixed") {
      cfg.workload.death_mode = core::DeathMode::kFixedLifetime;
    } else if (death == "pareto") {
      cfg.workload.death_mode = core::DeathMode::kParetoLifetime;
    } else {
      cfg.workload.death_mode = core::DeathMode::kExponentialLifetime;
    }
    cfg.workload.p_death = flags.num("p-death", 0.1);
    cfg.workload.mean_lifetime = flags.num("lifetime", 120.0);
  }
  if (!parse_hostile(flags, "hostile", cfg.fwd_hostile) ||
      !parse_hostile(flags, "fb-hostile", cfg.fb_hostile)) {
    return 2;
  }

  cfg.mu_data = sim::kbps(flags.num("mu-data-kbps", 45.0));
  cfg.mu_fb = sim::kbps(flags.num("mu-fb-kbps", 0.0));
  cfg.hot_share = flags.num("hot-share", 0.5);
  cfg.loss_rate = flags.num("loss", 0.1);
  cfg.shared_loss_rate = flags.num("shared-loss", 0.0);
  cfg.bursty_loss = flags.flag("bursty");
  cfg.delay = flags.num("delay", 0.01);
  cfg.num_receivers =
      static_cast<std::size_t>(flags.num("receivers", sensor ? 8 : 1));
  cfg.multicast_feedback = flags.flag("multicast-fb");
  cfg.receiver.nack_slot_max = flags.num("slot", 0.5);
  cfg.outages = parse_outages(flags.str("outage", ""));
  cfg.duration = flags.num("duration", 2000.0);
  cfg.warmup = flags.num("warmup", 200.0);
  cfg.seed = static_cast<std::uint64_t>(flags.num("seed", 1));
  cfg.sample_interval = flags.num("timeline", 0.0);

  const std::string backend = flags.str("backend", "discrete");
  if (backend == "discrete") {
    cfg.backend = core::Backend::kDiscrete;
  } else if (backend == "fluid") {
    cfg.backend = core::Backend::kFluid;
  } else if (backend == "hybrid") {
    cfg.backend = core::Backend::kHybrid;
  } else {
    std::fprintf(stderr, "unknown --backend=%s\n", backend.c_str());
    return 2;
  }
  cfg.fluid_cohort = flags.num("cohort", 1e6);

  const std::string sched = flags.str("scheduler", "stride");
  if (sched == "lottery") cfg.scheduler = core::SchedulerKind::kLottery;
  if (sched == "wfq") cfg.scheduler = core::SchedulerKind::kWfq;
  if (sched == "drr") cfg.scheduler = core::SchedulerKind::kDrr;
  if (sched == "hier") cfg.scheduler = core::SchedulerKind::kHierarchical;

  const std::string faults_script = flags.str("faults", "");
  fault::InjectorConfig inj_cfg;
  inj_cfg.threshold = flags.num("recovery-threshold", 0.9);

  const double shards_req = flags.num("shards", 1.0);
  if (!(shards_req >= 1.0)) {
    std::fprintf(stderr, "--shards must be an integer >= 1\n");
    return 2;
  }
  cfg.shards = static_cast<std::size_t>(shards_req);
  if (cfg.shards > cfg.num_receivers) {
    const std::size_t clamped =
        cfg.num_receivers > 0 ? cfg.num_receivers : 1;
    std::fprintf(stderr,
                 "warning: --shards=%zu exceeds --receivers=%zu; using %zu\n",
                 cfg.shards, cfg.num_receivers, clamped);
    cfg.shards = clamped;
  }
  if (cfg.shards > 1) {
    std::string why;
    if (!core::sharded_supported(cfg, why)) {
      std::fprintf(stderr,
                   "warning: --shards unsupported for this configuration "
                   "(%s); using the single-queue engine\n",
                   why.c_str());
      cfg.shards = 1;
    }
  }

  runner::Options mc = mc_options(flags);
  mc.threads_per_replication = cfg.shards;
  flags.reject_unknown();

  if (mc.replications > 1) {
    if (!faults_script.empty()) {
      fault::FaultPlan plan;
      try {
        plan = fault::FaultPlan::parse(faults_script);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "--faults: %s\n", e.what());
        return 2;
      }
      print_aggregate(variant, mc,
                      runner::run_replicated(cfg, plan, inj_cfg, mc));
    } else {
      print_aggregate(variant, mc, runner::run_replicated(cfg, mc));
    }
    return 0;
  }

  core::ExperimentResult r;
  std::vector<stats::RecoveryRecord> recoveries;
  std::vector<double> join_catch_up;
  if (!faults_script.empty()) {
    fault::FaultPlan plan;
    try {
      plan = fault::FaultPlan::parse(faults_script);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "--faults: %s\n", e.what());
      return 2;
    }
    const auto run = fault::run_experiment_with_faults(cfg, plan, inj_cfg);
    r = run.base;
    recoveries = run.recoveries;
    join_catch_up = run.join_catch_up;
  } else {
    r = core::run_experiment(cfg);
  }
  std::printf("variant            %s\n", variant.c_str());
  std::printf("avg_consistency    %.4f\n", r.avg_consistency);
  std::printf("mean_latency_s     %.3f (p50 %.3f, p95 %.3f)\n",
              r.mean_latency, r.p50_latency, r.p95_latency);
  std::printf("data_tx            %llu (hot %llu, cold %llu, repairs %llu)\n",
              static_cast<unsigned long long>(r.data_tx),
              static_cast<unsigned long long>(r.hot_tx),
              static_cast<unsigned long long>(r.cold_tx),
              static_cast<unsigned long long>(r.repair_tx));
  std::printf("redundant_fraction %.4f\n", r.redundant_fraction);
  std::printf("nacks              sent %llu, received %llu, suppressed %llu\n",
              static_cast<unsigned long long>(r.nacks_sent),
              static_cast<unsigned long long>(r.nacks_received),
              static_cast<unsigned long long>(r.nacks_suppressed));
  std::printf("observed_loss      %.4f\n", r.observed_loss);
  std::printf("offered_kbps       data %.2f + fb %.2f\n",
              r.offered_data_kbps, r.offered_fb_kbps);
  std::printf("workload           %llu inserts, %llu updates, live %zu\n",
              static_cast<unsigned long long>(r.inserts),
              static_cast<unsigned long long>(r.updates), r.final_live);
  if (cfg.backend != core::Backend::kDiscrete) {
    std::printf("fluid_cohort       %.0f receivers, c %.4f, live/receiver "
                "%.2f\n",
                r.fluid_cohort, r.fluid_consistency, r.fluid_live);
  }
  if (!recoveries.empty()) {
    std::printf("\n  fault            injected  cleared  recovery_s  deficit  "
                "repair_pkts\n");
    for (const auto& rec : recoveries) {
      std::printf("  %-16s %8.1f %8.1f  ", rec.label.c_str(),
                  rec.injected_at, rec.cleared_at);
      if (rec.recovered()) {
        std::printf("%10.2f", rec.recovery_time());
      } else {
        std::printf("%10s", "never");
      }
      std::printf("  %7.2f  %11.0f\n", rec.deficit, rec.repair_overhead);
    }
    for (std::size_t i = 0; i < join_catch_up.size(); ++i) {
      if (join_catch_up[i] >= 0) {
        std::printf("  join %zu catch-up  %.2f s\n", i, join_catch_up[i]);
      } else {
        std::printf("  join %zu catch-up  never\n", i);
      }
    }
  }
  print_timeline(r.timeline);
  return 0;
}
