#!/bin/sh
# Determinism gate: the parallel replication driver must produce
# byte-identical output whatever --jobs is. Runs a replicated sstsim
# experiment (and a replicated bench) at jobs=1 and jobs=8 and diffs the
# results. Part of the tier-1 flow alongside ctest (the same gate also runs
# inside ctest as sstsim_determinism_jobs).
#
# Usage: tools/check_determinism.sh [build-dir]   (default: build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
sstsim="$build_dir/tools/sstsim"
bench="$build_dir/bench/bench_fig5_two_queue"
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

[ -x "$sstsim" ] || { echo "missing $sstsim — build first" >&2; exit 1; }

args="--variant=feedback --lambda-kbps=12 --mu-data-kbps=42 --mu-fb-kbps=12 \
      --loss=0.25 --receivers=2 --duration=400 --warmup=50 --seed=7 \
      --replications=8"
# shellcheck disable=SC2086
"$sstsim" $args --jobs=1 > "$work/sim1.txt"
# shellcheck disable=SC2086
"$sstsim" $args --jobs=8 > "$work/sim8.txt"
diff "$work/sim1.txt" "$work/sim8.txt" > /dev/null || {
  echo "FAIL: sstsim output differs between --jobs=1 and --jobs=8" >&2
  diff "$work/sim1.txt" "$work/sim8.txt" >&2 || true
  exit 1
}
echo "sstsim: jobs=1 and jobs=8 byte-identical"

# Hostile-channel determinism: the reorder/dup/partition pipelines draw from
# forked Rng streams, so replicated runs must stay byte-identical across
# --jobs too — on both the forward and feedback paths, sensor profile
# included (the workload most sensitive to delivery order).
hostile_args="--variant=feedback --profile=sensor --lambda-kbps=10 \
      --mu-data-kbps=42 --mu-fb-kbps=12 --loss=0.1 --receivers=3 \
      --duration=400 --warmup=50 --seed=11 --replications=8 \
      --hostile=reorder=0.3:0.2;dup=0.2:0.5;partition=120:150 \
      --fb-hostile=dup=0.1"
# shellcheck disable=SC2086
"$sstsim" $hostile_args --jobs=1 > "$work/hostile1.txt"
# shellcheck disable=SC2086
"$sstsim" $hostile_args --jobs=8 > "$work/hostile8.txt"
diff "$work/hostile1.txt" "$work/hostile8.txt" > /dev/null || {
  echo "FAIL: hostile sstsim output differs between --jobs=1 and --jobs=8" >&2
  diff "$work/hostile1.txt" "$work/hostile8.txt" >&2 || true
  exit 1
}
echo "sstsim hostile: jobs=1 and jobs=8 byte-identical"

# Sharded engine: splitting ONE replication across K worker threads must be
# as invisible as the replication fan-out — byte-identical output for any
# --shards, composed with any --jobs (the full K x jobs matrix also runs in
# ctest as sstsim_determinism_shards).
shard_args="--variant=feedback --lambda-kbps=12 --mu-data-kbps=42 \
      --mu-fb-kbps=12 --loss=0.25 --receivers=8 --delay=0.05 --duration=400 \
      --warmup=50 --seed=7 --replications=8"
# shellcheck disable=SC2086
"$sstsim" $shard_args --shards=1 --jobs=1 > "$work/shard_ref.txt"
for k in 2 4 8; do
  # shellcheck disable=SC2086
  "$sstsim" $shard_args --shards=$k --jobs=8 > "$work/shard_$k.txt"
  diff "$work/shard_ref.txt" "$work/shard_$k.txt" > /dev/null || {
    echo "FAIL: sstsim output differs between --shards=1 and --shards=$k" >&2
    diff "$work/shard_ref.txt" "$work/shard_$k.txt" >&2 || true
    exit 1
  }
done
echo "sstsim sharded: shards in {1,2,4,8} x jobs byte-identical"

# Multicast feedback shards too: the shared NACK group is root-hosted and
# replayed through the epoch log, so SRM slotting and cross-shard damping
# must survive the split bitwise.
mcast_args="--variant=feedback --lambda-kbps=12 --mu-data-kbps=42 \
      --mu-fb-kbps=12 --loss=0.25 --receivers=8 --delay=0.05 \
      --multicast-fb --slot=0.1 --duration=400 --warmup=50 --seed=7 \
      --replications=8"
# shellcheck disable=SC2086
"$sstsim" $mcast_args --shards=1 --jobs=1 > "$work/mcast_ref.txt"
for k in 2 4 8; do
  # shellcheck disable=SC2086
  "$sstsim" $mcast_args --shards=$k --jobs=8 > "$work/mcast_$k.txt"
  diff "$work/mcast_ref.txt" "$work/mcast_$k.txt" > /dev/null || {
    echo "FAIL: multicast output differs between --shards=1 and --shards=$k" >&2
    diff "$work/mcast_ref.txt" "$work/mcast_$k.txt" >&2 || true
    exit 1
  }
done
echo "sstsim multicast sharded: shards in {1,2,4,8} byte-identical"

# Faulted runs shard too: every injector instant (fault starts/ends,
# consistency sampler ticks) is fence-snapped onto a barrier, so the whole
# recovery report must match the single-queue engine bitwise.
fault_args="--variant=feedback --lambda-kbps=12 --mu-data-kbps=42 \
      --mu-fb-kbps=12 --loss=0.25 --receivers=8 --delay=0.05 \
      --duration=400 --warmup=50 --seed=7 --replications=8 \
      --faults=crash@150+30;partition:2@220+40;burst:0.5@300+30;leave:1@360;join@370"
# shellcheck disable=SC2086
"$sstsim" $fault_args --shards=1 --jobs=1 > "$work/fault_ref.txt"
for k in 2 4 8; do
  # shellcheck disable=SC2086
  "$sstsim" $fault_args --shards=$k --jobs=8 > "$work/fault_$k.txt"
  diff "$work/fault_ref.txt" "$work/fault_$k.txt" > /dev/null || {
    echo "FAIL: faulted output differs between --shards=1 and --shards=$k" >&2
    diff "$work/fault_ref.txt" "$work/fault_$k.txt" >&2 || true
    exit 1
  }
done
echo "sstsim faulted sharded: shards in {1,2,4,8} byte-identical"

# Fluid and hybrid backends: the mean-field tier is pure arithmetic (no RNG
# in the fluid path, forked Rng streams in the hybrid's discrete cohort), so
# byte-identical output across --jobs is the same hard contract.
for backend in fluid hybrid; do
  fluid_args="--variant=feedback --backend=$backend --lambda-kbps=12 \
        --mu-data-kbps=42 --mu-fb-kbps=12 --loss=0.25 --receivers=2 \
        --duration=400 --warmup=50 --seed=7 --replications=8"
  # shellcheck disable=SC2086
  "$sstsim" $fluid_args --jobs=1 > "$work/${backend}_1.txt"
  # shellcheck disable=SC2086
  "$sstsim" $fluid_args --jobs=8 > "$work/${backend}_8.txt"
  diff "$work/${backend}_1.txt" "$work/${backend}_8.txt" > /dev/null || {
    echo "FAIL: sstsim --backend=$backend differs between --jobs=1 and --jobs=8" >&2
    diff "$work/${backend}_1.txt" "$work/${backend}_8.txt" >&2 || true
    exit 1
  }
  echo "sstsim --backend=$backend: jobs=1 and jobs=8 byte-identical"
done

if [ -x "$bench" ]; then
  "$bench" --reps=8 --jobs=1 --out="$work/b1.json" > /dev/null
  "$bench" --reps=8 --jobs=8 --out="$work/b8.json" > /dev/null
  diff "$work/b1.json" "$work/b8.json" > /dev/null || {
    echo "FAIL: bench_fig5_two_queue JSON differs between jobs=1 and jobs=8" >&2
    exit 1
  }
  echo "bench_fig5_two_queue: jobs=1 and jobs=8 byte-identical"
fi

echo "determinism check passed"
