#!/bin/sh
# Static-analysis gate (ctest label `lint`). Two halves:
#
#   --sstlint            repo-specific determinism lint: self-test the rules
#                        against tools/lint_fixtures/, then lint src/ and
#                        bench/ and audit the suppression allowlist
#                        (tools/sstlint_allowlist.txt) for drift.
#   --clang-tidy [BUILD] curated .clang-tidy set over src/ translation
#                        units, using BUILD/compile_commands.json
#                        (default build dir: build).
#
# With no mode flag, runs both halves (clang-tidy softly, with a note when
# the binary is missing). Each half is registered as its own ctest entry so
# a missing tool skips (exit 77 via SKIP_RETURN_CODE) instead of failing
# tier-1, exactly like tools/check_bench.sh.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
mode=${1:---all}
build_dir=${2:-"$repo_root/build"}

run_sstlint() {
  command -v python3 > /dev/null 2>&1 || {
    echo "SKIP: python3 not available for sstlint" >&2
    exit 77
  }
  python3 "$repo_root/tools/sstlint.py" --self-test
  python3 "$repo_root/tools/sstlint.py" --repo "$repo_root" --audit
}

run_clang_tidy() {
  soft=${1:-hard}
  if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "SKIP: clang-tidy not installed" >&2
    [ "$soft" = soft ] && return 0
    exit 77
  fi
  if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "SKIP: $build_dir/compile_commands.json missing (configure with" \
         "CMAKE_EXPORT_COMPILE_COMMANDS=ON)" >&2
    [ "$soft" = soft ] && return 0
    exit 77
  fi
  # Sources only: headers are covered through HeaderFilterRegex.
  find "$repo_root/src" -name '*.cpp' | sort | \
    xargs clang-tidy -p "$build_dir" --quiet
  echo "clang-tidy clean"
}

case "$mode" in
  --sstlint)    run_sstlint ;;
  --clang-tidy) run_clang_tidy hard ;;
  --all)        run_sstlint; run_clang_tidy soft ;;
  *)
    echo "usage: $0 [--sstlint | --clang-tidy [build-dir] | --all]" >&2
    exit 2
    ;;
esac
