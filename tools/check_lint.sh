#!/bin/sh
# Static-analysis gate (ctest label `lint`). Modes:
#
#   --sstlint            repo-specific determinism lint: self-test the rules
#                        against tools/lint_fixtures/, then lint src/ and
#                        bench/ and audit the suppression allowlist
#                        (tools/sstlint_allowlist.txt) for drift.
#   --sstlyz [BUILD]     AST-grade concurrency/determinism analyzer
#                        (tools/sstlyz.py): self-test the rules against
#                        tools/lyz_fixtures/, then scan src/, bench/ and
#                        examples/ and audit tools/sstlyz_allowlist.txt.
#                        Uses BUILD/compile_commands.json to pick the real
#                        translation units when present.
#   --sstlyz-malformed   failure-mode check: a malformed compile_commands
#                        file must be a readable HARD failure (exit 2 and a
#                        message naming the file), never a silent empty scan.
#   --clang-tidy [BUILD] curated .clang-tidy set over src/ translation
#                        units, using BUILD/compile_commands.json
#                        (default build dir: build).
#
# With no mode flag, runs sstlint + sstlyz (and clang-tidy softly, with a
# note when the binary is missing). Each mode is registered as its own ctest
# entry so a missing tool skips (exit 77 via SKIP_RETURN_CODE) instead of
# failing tier-1, exactly like tools/check_bench.sh.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
mode=${1:---all}
build_dir=${2:-"$repo_root/build"}

run_sstlint() {
  command -v python3 > /dev/null 2>&1 || {
    echo "SKIP: python3 not available for sstlint" >&2
    exit 77
  }
  python3 "$repo_root/tools/sstlint.py" --self-test
  python3 "$repo_root/tools/sstlint.py" --repo "$repo_root" --audit
}

run_sstlyz() {
  command -v python3 > /dev/null 2>&1 || {
    echo "SKIP: python3 not available for sstlyz" >&2
    exit 77
  }
  python3 "$repo_root/tools/sstlyz.py" --self-test
  if [ -f "$build_dir/compile_commands.json" ]; then
    python3 "$repo_root/tools/sstlyz.py" --repo "$repo_root" --audit --stats \
      --compile-commands "$build_dir/compile_commands.json"
  else
    python3 "$repo_root/tools/sstlyz.py" --repo "$repo_root" --audit --stats
  fi
}

run_sstlyz_malformed() {
  command -v python3 > /dev/null 2>&1 || {
    echo "SKIP: python3 not available for sstlyz" >&2
    exit 77
  }
  set +e
  out=$(python3 "$repo_root/tools/sstlyz.py" --repo "$repo_root" \
    --compile-commands "$repo_root/tools/lyz_fixtures/bad_compile_commands.json" \
    2>&1)
  status=$?
  set -e
  echo "$out"
  if [ "$status" -ne 2 ]; then
    echo "FAIL: malformed compile_commands exited $status" \
         "(want the hard-failure exit 2)" >&2
    exit 1
  fi
  case "$out" in
    *"malformed compile_commands"*) echo "malformed-db failure mode ok" ;;
    *)
      echo "FAIL: the error message does not name the malformed" \
           "compile_commands file" >&2
      exit 1
      ;;
  esac
}

run_clang_tidy() {
  soft=${1:-hard}
  if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "SKIP: clang-tidy not installed" >&2
    [ "$soft" = soft ] && return 0
    exit 77
  fi
  if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "SKIP: $build_dir/compile_commands.json missing (configure with" \
         "CMAKE_EXPORT_COMPILE_COMMANDS=ON)" >&2
    [ "$soft" = soft ] && return 0
    exit 77
  fi
  # Sources only: headers are covered through HeaderFilterRegex.
  find "$repo_root/src" -name '*.cpp' | sort | \
    xargs clang-tidy -p "$build_dir" --quiet
  echo "clang-tidy clean"
}

case "$mode" in
  --sstlint)          run_sstlint ;;
  --sstlyz)           run_sstlyz ;;
  --sstlyz-malformed) run_sstlyz_malformed ;;
  --clang-tidy)       run_clang_tidy hard ;;
  --all)              run_sstlint; run_sstlyz; run_clang_tidy soft ;;
  *)
    echo "usage: $0 [--sstlint | --sstlyz [build-dir] | --sstlyz-malformed |" \
         "--clang-tidy [build-dir] | --all]" >&2
    exit 2
    ;;
esac
