// annotate_violation.cpp — MUST NOT compile under -Werror=thread-safety.
//
// The gate's teeth (tools/check_analyze.sh): an unannotated function reads
// and writes SST_ROOT_ONLY state without holding the root role. If this
// file ever compiles clean under Clang, the capability macros have stopped
// lowering to real attributes and the whole analysis layer is vacuous.
// Never part of any build target.
#include "check/annotate.hpp"

namespace fixture {

class Engine {
 public:
  // No role required, no role asserted: both accesses below must draw
  // -Wthread-safety-analysis diagnostics.
  void rogue() {
    ++epoch_count_;              // write of root-only state, role not held
    last_ = epoch_count_ * 2.0;  // and a read-modify-write
  }

 private:
  unsigned long epoch_count_ SST_ROOT_ONLY = 0;
  double last_ SST_ROOT_ONLY = 0.0;
};

void drive(Engine& e) { e.rogue(); }

}  // namespace fixture
