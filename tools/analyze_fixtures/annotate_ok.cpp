// annotate_ok.cpp — MUST compile clean under -Werror=thread-safety.
//
// The same member accesses as annotate_violation.cpp, but with the root
// role properly threaded: one method REQUIRES it (callers must prove it),
// the entry point asserts it with the protocol justification, exactly the
// two patterns the real engine uses (core/sharded.cpp). Never part of any
// build target.
#include "check/annotate.hpp"

namespace fixture {

class Engine {
 public:
  // Entry point: asserts the role (the caller is the coordinator thread by
  // construction in this fixture's imaginary protocol), then calls into
  // the REQUIRES-annotated internals.
  void run() {
    ::sst::check::root_role.assert_held();
    step();
  }

 private:
  void step() SST_REQUIRES_ROOT {
    ++epoch_count_;
    last_ = epoch_count_ * 2.0;
  }

  unsigned long epoch_count_ SST_ROOT_ONLY = 0;
  double last_ SST_ROOT_ONLY = 0.0;
};

void drive(Engine& e) { e.run(); }

}  // namespace fixture
