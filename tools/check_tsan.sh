#!/bin/sh
# Builds the tree with ThreadSanitizer and runs the tier-1 test suite under
# the instrumented runtime — the gate for the parallel replication driver
# (sst::runner), the threaded fault-churn tests, and the sharded
# conservative-lookahead engine (whose barrier + mailbox protocol is exactly
# what TSan exists to audit; sharded_test plus the dedicated stress run
# below cover it). Any data-race report fails the corresponding test
# (halt_on_error) and therefore the script.
#
# Usage: tools/check_tsan.sh [build-dir]   (default: build-tsan)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-tsan"}

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  "-DSST_SANITIZE=thread"
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)"

TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir "$build_dir" --output-on-failure \
        -j "$(nproc 2>/dev/null || echo 4)"

# Sharded-engine stress: an 8-shard feedback session composed with the
# replication fan-out, so TSan sees root/worker epoch phases, the mailbox
# drains, and the shards x jobs thread pool all at once.
TSAN_OPTIONS="halt_on_error=1" \
  "$build_dir/tools/sstsim" --variant=feedback --lambda-kbps=12 \
    --mu-data-kbps=42 --mu-fb-kbps=12 --loss=0.25 --receivers=64 \
    --delay=0.05 --duration=120 --warmup=20 --seed=7 \
    --shards=8 --replications=4 --jobs=2 > /dev/null

# The same 8-shard crew through the new lanes: the root-hosted multicast
# NACK group (epoch-log replay of overheard NACKs into every shard) and
# fence-snapped fault-injector hooks mutating shard state mid-run, churn
# included.
TSAN_OPTIONS="halt_on_error=1" \
  "$build_dir/tools/sstsim" --variant=feedback --lambda-kbps=12 \
    --mu-data-kbps=42 --mu-fb-kbps=12 --loss=0.25 --receivers=64 \
    --delay=0.05 --multicast-fb --slot=0.1 --duration=120 --warmup=20 \
    --seed=7 --shards=8 --replications=4 --jobs=2 \
    --faults='crash@40+10;partition:3@60+10;leave:2@80;join@90' > /dev/null

echo "tsan check passed: $build_dir"
