#!/bin/sh
# Builds the tree with ThreadSanitizer and runs the tier-1 test suite under
# the instrumented runtime — the gate for the parallel replication driver
# (sst::runner) and the threaded fault-churn tests. Any data-race report
# fails the corresponding test (halt_on_error) and therefore the script.
#
# Usage: tools/check_tsan.sh [build-dir]   (default: build-tsan)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-tsan"}

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  "-DSST_SANITIZE=thread"
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)"

TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir "$build_dir" --output-on-failure \
        -j "$(nproc 2>/dev/null || echo 4)"

echo "tsan check passed: $build_dir"
