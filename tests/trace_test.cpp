// Tests for the trace infrastructure and a few cross-cutting harness
// features (heterogeneous receivers, determinism across tracing).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "core/experiment.hpp"
#include "net/channel.hpp"
#include "net/delay.hpp"
#include "net/loss.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace sst {
namespace {

TEST(Trace, NullTracerIsDisabled) {
  sim::Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.emit(1.0, "tx");  // must be a harmless no-op
}

TEST(Trace, MemorySinkCollectsAndCounts) {
  sim::MemoryTraceSink sink;
  sim::Tracer a(&sink, "chan.a");
  sim::Tracer b(&sink, "chan.b");
  EXPECT_TRUE(a.enabled());
  a.emit(1.0, "tx", "seq=1");
  a.emit(2.0, "drop");
  b.emit(3.0, "tx");
  EXPECT_EQ(sink.records().size(), 3u);
  EXPECT_EQ(sink.count("chan.a", ""), 2u);
  EXPECT_EQ(sink.count("", "tx"), 2u);
  EXPECT_EQ(sink.count("chan.a", "drop"), 1u);
  EXPECT_EQ(sink.records()[0].detail, "seq=1");
  sink.clear();
  EXPECT_TRUE(sink.records().empty());
}

TEST(Trace, ChannelEmitsTxAndDropRecords) {
  sim::Simulator sim;
  sim::MemoryTraceSink sink;
  net::Channel<int> channel(sim, sim::Tracer(&sink, "chan"));
  channel.add_receiver(std::make_unique<net::PeriodicLoss>(2),
                       std::make_unique<net::FixedDelay>(0.0), [](int) {});
  for (int i = 0; i < 10; ++i) channel.send(i, 100);
  sim.run();
  EXPECT_EQ(sink.count("chan", "tx"), 5u);
  EXPECT_EQ(sink.count("chan", "drop"), 5u);
}

TEST(Trace, FileSinkWritesLines) {
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  {
    sim::FileTraceSink sink(tmp);
    sim::Tracer tracer(&sink, "link");
    tracer.emit(1.5, "taildrop", "q=16");
  }
  std::rewind(tmp);
  char buf[128] = {};
  ASSERT_NE(std::fgets(buf, sizeof buf, tmp), nullptr);
  EXPECT_NE(std::strstr(buf, "link"), nullptr);
  EXPECT_NE(std::strstr(buf, "taildrop"), nullptr);
  EXPECT_NE(std::strstr(buf, "q=16"), nullptr);
  std::fclose(tmp);
}

TEST(Harness, HeterogeneousReceiverLossRates) {
  core::ExperimentConfig cfg;
  cfg.variant = core::Variant::kOpenLoop;
  cfg.workload.insert_rate = core::insert_rate_from_kbps(10.0, 1000);
  cfg.workload.death_mode = core::DeathMode::kExponentialLifetime;
  cfg.workload.mean_lifetime = 120.0;
  cfg.mu_data = sim::kbps(64);
  cfg.num_receivers = 2;
  cfg.receiver_loss_rates = {0.02, 0.5};  // one clean, one terrible
  cfg.duration = 1500.0;
  cfg.warmup = 200.0;
  const auto r = core::run_experiment(cfg);
  // Mixed population: average sits between the all-clean and all-lossy
  // extremes (sanity band).
  EXPECT_GT(r.avg_consistency, 0.6);
  EXPECT_LT(r.avg_consistency, 0.99);
  // Observed loss blends the two rates.
  EXPECT_NEAR(r.observed_loss, 0.26, 0.05);
}

}  // namespace
}  // namespace sst
