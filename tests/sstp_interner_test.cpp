// Tests for the component-string interner behind Path symbols.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "sstp/interner.hpp"

namespace sst::sstp {
namespace {

TEST(Interner, SameStringSameSymbol) {
  Interner& in = Interner::global();
  const Symbol a1 = in.intern("interner-test-a");
  const Symbol a2 = in.intern("interner-test-a");
  EXPECT_EQ(a1, a2);
  const Symbol b = in.intern("interner-test-b");
  EXPECT_NE(a1, b);
}

TEST(Interner, NameRoundTrips) {
  Interner& in = Interner::global();
  const Symbol s = in.intern("interner-test-roundtrip");
  EXPECT_EQ(in.name(s), "interner-test-roundtrip");
}

TEST(Interner, CaseSensitiveDistinctSymbols) {
  Interner& in = Interner::global();
  const Symbol lower = in.intern("interner-test-case");
  const Symbol upper = in.intern("interner-test-CASE");
  EXPECT_NE(lower, upper);
  EXPECT_EQ(in.name(lower), "interner-test-case");
  EXPECT_EQ(in.name(upper), "interner-test-CASE");
}

TEST(Interner, SymbolsStableAcrossLaterInserts) {
  Interner& in = Interner::global();
  const Symbol early = in.intern("interner-test-stable");
  const std::string_view early_name = in.name(early);
  std::vector<Symbol> later;
  for (int i = 0; i < 10000; ++i) {
    later.push_back(in.intern("interner-test-bulk-" + std::to_string(i)));
  }
  // The id, the mapping, and the view survive arbitrary growth (chunked
  // storage: names never move).
  EXPECT_EQ(in.intern("interner-test-stable"), early);
  EXPECT_EQ(in.name(early), "interner-test-stable");
  EXPECT_EQ(in.name(early).data(), early_name.data());
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(in.name(later[static_cast<std::size_t>(i)]),
              "interner-test-bulk-" + std::to_string(i));
  }
}

TEST(Interner, EmptyStringIsInternable) {
  Interner& in = Interner::global();
  const Symbol e = in.intern("");
  EXPECT_EQ(in.name(e), "");
  EXPECT_EQ(in.intern(""), e);
}

TEST(Interner, ConcurrentInternIsConsistent) {
  // Multiple replication threads intern scenario paths concurrently; every
  // thread must agree on the id for a given string, and lock-free name()
  // reads must see fully-written entries.
  Interner& in = Interner::global();
  constexpr int kThreads = 4;
  constexpr int kStrings = 500;
  std::vector<std::vector<Symbol>> ids(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&in, &ids, t] {
      auto& mine = ids[static_cast<std::size_t>(t)];
      mine.reserve(kStrings);
      for (int i = 0; i < kStrings; ++i) {
        const std::string s = "interner-test-mt-" + std::to_string(i);
        const Symbol sym = in.intern(s);
        if (in.name(sym) != s) std::abort();  // torn read
        mine.push_back(sym);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[static_cast<std::size_t>(t)], ids[0]);
  }
}

}  // namespace
}  // namespace sst::sstp
