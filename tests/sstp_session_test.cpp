// End-to-end SSTP session tests: convergence over lossy channels, recursive-
// descent repair, deletion propagation, interest filtering, soft state
// session expiry, adaptive allocation, and back-pressure.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sstp/session.hpp"

namespace sst::sstp {
namespace {

std::vector<std::uint8_t> blob(std::size_t n, std::uint8_t fill) {
  return std::vector<std::uint8_t>(n, fill);
}

SessionConfig fast_config() {
  SessionConfig cfg;
  cfg.sender.mu_data = sim::kbps(64);
  cfg.sender.hot_share = 0.7;
  cfg.sender.min_summary_interval = 0.5;
  cfg.sender.algo = hash::DigestAlgo::kFnv1a;  // cheap digests in tests
  cfg.receiver.retry_timeout = 1.0;
  cfg.receiver.report_interval = 2.0;
  cfg.receiver.session_ttl = 0.0;  // off unless the test wants it
  cfg.mu_fb = sim::kbps(16);
  cfg.loss_rate = 0.0;
  return cfg;
}

TEST(SstpSession, LosslessDeliveryConverges) {
  sim::Simulator sim;
  auto cfg = fast_config();
  Session session(sim, cfg);
  session.sender().publish(Path::parse("/a"), blob(3000, 1));
  session.sender().publish(Path::parse("/dir/b"), blob(500, 2));
  sim.run_until(20.0);
  EXPECT_EQ(session.receiver().tree().leaf_count(), 2u);
  EXPECT_DOUBLE_EQ(session.instantaneous_consistency(), 1.0);
  const Adu* a = session.receiver().tree().find(Path::parse("/a"));
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->data, blob(3000, 1));
  // No losses -> no data-level repair. (A root signature query during the
  // startup race — summary overtaking in-flight data — is legitimate.)
  EXPECT_EQ(session.receiver().stats().nacks_tx, 0u);
  EXPECT_LE(session.receiver().stats().queries_tx, 2u);
  EXPECT_EQ(session.sender().stats().repair_tx, 0u);
}

TEST(SstpSession, MultiChunkAduAssembled) {
  sim::Simulator sim;
  auto cfg = fast_config();
  cfg.sender.mtu = 512;
  Session session(sim, cfg);
  std::vector<std::uint8_t> data(5000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  session.sender().publish(Path::parse("/big"), data);
  sim.run_until(30.0);
  const Adu* adu = session.receiver().tree().find(Path::parse("/big"));
  ASSERT_NE(adu, nullptr);
  EXPECT_TRUE(adu->complete());
  EXPECT_EQ(adu->data, data);
  EXPECT_GE(session.receiver().stats().data_rx, 10u);  // ceil(5000/512)
}

TEST(SstpSession, RecoversFromLoss) {
  sim::Simulator sim;
  auto cfg = fast_config();
  cfg.loss_rate = 0.3;
  cfg.seed = 7;
  Session session(sim, cfg);
  for (int i = 0; i < 20; ++i) {
    session.sender().publish(Path::parse("/doc/" + std::to_string(i)),
                             blob(800, static_cast<std::uint8_t>(i)));
  }
  sim.run_until(120.0);
  EXPECT_DOUBLE_EQ(session.instantaneous_consistency(), 1.0)
      << "summary-driven recursive descent must repair every loss";
  // Repair traffic existed.
  const auto& rs = session.receiver().stats();
  EXPECT_GT(rs.queries_tx + rs.nacks_tx, 0u);
}

TEST(SstpSession, UpdatePropagates) {
  sim::Simulator sim;
  auto cfg = fast_config();
  cfg.loss_rate = 0.2;
  Session session(sim, cfg);
  const Path p = Path::parse("/config");
  session.sender().publish(p, blob(100, 1));
  sim.run_until(30.0);
  session.sender().publish(p, blob(100, 9));  // update, version 2
  sim.run_until(90.0);
  const Adu* adu = session.receiver().tree().find(p);
  ASSERT_NE(adu, nullptr);
  EXPECT_EQ(adu->version, 2u);
  EXPECT_EQ(adu->data, blob(100, 9));
}

TEST(SstpSession, DeletionPropagatesViaSignatures) {
  sim::Simulator sim;
  auto cfg = fast_config();
  cfg.loss_rate = 0.1;
  Session session(sim, cfg);
  session.sender().publish(Path::parse("/keep"), blob(100, 1));
  session.sender().publish(Path::parse("/drop/x"), blob(100, 2));
  sim.run_until(30.0);
  ASSERT_EQ(session.receiver().tree().leaf_count(), 2u);

  std::vector<std::string> removed;
  session.receiver().on_removed(
      [&](const Path& p) { removed.push_back(p.str()); });
  session.sender().remove(Path::parse("/drop"));
  sim.run_until(120.0);
  EXPECT_EQ(session.receiver().tree().leaf_count(), 1u);
  EXPECT_FALSE(session.receiver().tree().exists(Path::parse("/drop")));
  ASSERT_FALSE(removed.empty());
  EXPECT_EQ(removed[0], "/drop");
  EXPECT_DOUBLE_EQ(session.instantaneous_consistency(), 1.0);
}

TEST(SstpSession, InterestFilterSkipsBranch) {
  sim::Simulator sim;
  auto cfg = fast_config();
  cfg.loss_rate = 1.0;  // force ALL initial data to be lost...
  Session session(sim, cfg);
  (void)session;
  // ... actually with 100% loss nothing works; use selective loss instead:
  // publish after a no-loss warmup is complex, so test the filter directly
  // with a lossy-but-recoverable channel and a tag-based filter.
  sim::Simulator sim2;
  auto cfg2 = fast_config();
  cfg2.loss_rate = 0.3;
  cfg2.seed = 3;
  cfg2.receiver.interest = [](const Path& p, const MetaTags&) {
    return !Path::parse("/hires").contains(p);
  };
  Session session2(sim2, cfg2);
  session2.sender().publish(Path::parse("/text/1"), blob(200, 1));
  session2.sender().publish(Path::parse("/hires/img"), blob(2000, 2),
                            {"type=image/hires"});
  sim2.run_until(120.0);
  // The wanted branch converged.
  EXPECT_NE(session2.receiver(0).tree().find(Path::parse("/text/1")),
            nullptr);
  // The receiver never requested repair under /hires (data may still arrive
  // via the initial hot transmission — interest only suppresses REPAIR).
  const auto& rs = session2.receiver(0).stats();
  EXPECT_GT(rs.skipped_no_interest, 0u);
}

TEST(SstpSession, SessionExpiresWithoutAnnouncements) {
  sim::Simulator sim;
  auto cfg = fast_config();
  cfg.receiver.session_ttl = 10.0;
  Session session(sim, cfg);
  session.sender().publish(Path::parse("/a"), blob(100, 1));
  sim.run_until(20.0);
  ASSERT_EQ(session.receiver().tree().leaf_count(), 1u);

  bool expired = false;
  session.receiver().on_session_expired([&] { expired = true; });
  // Silence the sender by removing its data AND stopping summaries: the
  // simplest faithful way is to cut the channel — set 100% loss is not
  // exposed, so emulate sender death by removing data and advancing past
  // TTL with summaries still flowing: entries must NOT expire (summaries
  // refresh the session). Then verify refresh semantics.
  sim.run_until(35.0);
  EXPECT_FALSE(expired) << "summaries keep the session alive";
  EXPECT_EQ(session.receiver().stats().session_expiries, 0u);
}

TEST(SstpSession, SessionExpiryFiresWhenSenderGoesSilent) {
  // Wire a receiver directly with no sender at all: feed it one data packet,
  // then nothing. After session_ttl the tree must clear.
  sim::Simulator sim;
  ReceiverConfig cfg;
  cfg.algo = hash::DigestAlgo::kFnv1a;
  cfg.session_ttl = 5.0;
  cfg.report_interval = 0.0;
  Receiver recv(sim, cfg, [](const WireBytes&, sim::Bytes) {}, sim::Rng(0));
  bool expired = false;
  recv.on_session_expired([&] { expired = true; });

  DataMsg msg;
  msg.path = Path::parse("/x");
  msg.version = 1;
  msg.total_size = 1;
  msg.chunk = {42};
  recv.handle(encode(Message(msg)));
  EXPECT_EQ(recv.tree().leaf_count(), 1u);
  sim.run_until(20.0);
  EXPECT_TRUE(expired);
  EXPECT_EQ(recv.tree().leaf_count(), 0u);
}

TEST(SstpSession, ReceiverReportsDriveLossEstimate) {
  sim::Simulator sim;
  auto cfg = fast_config();
  cfg.loss_rate = 0.25;
  cfg.fb_loss_rate = 0.0;  // clean reverse path for measurement fidelity
  cfg.sender.mtu = 250;
  Session session(sim, cfg);
  // A steady stream of data so every reporting interval has real samples.
  sim::PeriodicTimer feeder(sim);
  int i = 0;
  feeder.start(1.0, [&] {
    session.sender().publish(Path::parse("/s/" + std::to_string(i % 50)),
                             blob(1000, static_cast<std::uint8_t>(i)));
    ++i;
  });
  sim.run_until(200.0);
  feeder.stop();
  EXPECT_GT(session.sender().stats().reports_rx, 0u);
  EXPECT_NEAR(session.sender().measured_loss(), 0.25, 0.08);
}

TEST(SstpSession, AllocatorAdaptsAndWarns) {
  sim::Simulator sim;
  auto cfg = fast_config();
  cfg.loss_rate = 0.3;
  cfg.use_allocator = true;
  cfg.allocator.total_bandwidth = sim::kbps(48);
  cfg.allocator.target_consistency = 0.95;
  cfg.sender.mu_data = sim::kbps(48);  // pre-allocation starting point
  Session session(sim, cfg);

  int warnings = 0;
  session.sender().on_rate_warning([&](const Allocation&) { ++warnings; });

  // Publish at ~40 kbps — far beyond what 48 kbps total can sustain at 30%
  // loss — and expect back-pressure.
  sim::PeriodicTimer feeder(sim);
  int counter = 0;
  feeder.start(0.2, [&] {
    session.sender().publish(Path::parse("/load/" + std::to_string(counter)),
                             blob(1000, 1));
    ++counter;
  });
  sim.run_until(120.0);
  feeder.stop();
  EXPECT_GT(warnings, 0);
  // The allocator moved bandwidth toward feedback under loss.
  EXPECT_GT(session.sender().stats().reports_rx, 0u);
}

TEST(SstpSession, MultipleReceiversAllConverge) {
  sim::Simulator sim;
  auto cfg = fast_config();
  cfg.loss_rate = 0.2;
  cfg.num_receivers = 4;
  cfg.receiver.initial_delay_max = 0.3;  // multicast slotting
  Session session(sim, cfg);
  for (int i = 0; i < 10; ++i) {
    session.sender().publish(Path::parse("/m/" + std::to_string(i)),
                             blob(600, static_cast<std::uint8_t>(i)));
  }
  sim.run_until(150.0);
  EXPECT_DOUBLE_EQ(session.instantaneous_consistency(), 1.0);
  for (std::size_t r = 0; r < session.receiver_count(); ++r) {
    EXPECT_EQ(session.receiver(r).tree().leaf_count(), 10u);
  }
}

TEST(SstpSession, AverageConsistencyTracksConvergence) {
  sim::Simulator sim;
  auto cfg = fast_config();
  cfg.loss_rate = 0.2;
  Session session(sim, cfg);
  for (int i = 0; i < 10; ++i) {
    session.sender().publish(Path::parse("/k/" + std::to_string(i)),
                             blob(500, 1));
  }
  sim.run_until(100.0);
  const double avg = session.average_consistency();
  EXPECT_GT(avg, 0.5);
  EXPECT_LE(avg, 1.0);
  session.reset_consistency_stats();
  sim.run_until(150.0);
  EXPECT_GT(session.average_consistency(), 0.99);  // steady state
}

TEST(SstpSession, CrashAndRestartRebuildsViaSoftState) {
  // Sender pause = crash: receivers expire the whole session; resume =
  // restart: announcements rebuild receiver state through normal protocol
  // operation, with no recovery code anywhere (the paper's Section 1 story).
  sim::Simulator sim;
  auto cfg = fast_config();
  cfg.loss_rate = 0.1;
  cfg.receiver.session_ttl = 15.0;
  Session session(sim, cfg);
  for (int i = 0; i < 5; ++i) {
    session.sender().publish(Path::parse("/s/" + std::to_string(i)),
                             blob(400, static_cast<std::uint8_t>(i)));
  }
  sim.run_until(30.0);
  ASSERT_EQ(session.receiver().tree().leaf_count(), 5u);

  session.sender().pause();
  ASSERT_TRUE(session.sender().paused());
  sim.run_until(60.0);  // past session_ttl
  EXPECT_EQ(session.receiver().tree().leaf_count(), 0u);
  EXPECT_GE(session.receiver().stats().session_expiries, 1u);

  session.sender().resume();
  sim.run_until(150.0);
  EXPECT_EQ(session.receiver().tree().leaf_count(), 5u);
  EXPECT_DOUBLE_EQ(session.instantaneous_consistency(), 1.0);
}

TEST(SstpSession, DeepHierarchyRepairsViaRecursiveDescent) {
  // A 4-level namespace with losses: recovery must descend only mismatched
  // branches and still reach full consistency.
  sim::Simulator sim;
  auto cfg = fast_config();
  cfg.loss_rate = 0.25;
  cfg.seed = 5;
  Session session(sim, cfg);
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      for (int c = 0; c < 3; ++c) {
        session.sender().publish(
            Path::parse("/l1-" + std::to_string(a) + "/l2-" +
                        std::to_string(b) + "/l3-" + std::to_string(c) +
                        "/doc"),
            blob(300, static_cast<std::uint8_t>(a * 9 + b * 3 + c)));
      }
    }
  }
  sim.run_until(200.0);
  EXPECT_EQ(session.receiver().tree().leaf_count(), 27u);
  EXPECT_DOUBLE_EQ(session.instantaneous_consistency(), 1.0);
  // Descent actually recursed below the root.
  EXPECT_GT(session.receiver().stats().queries_tx, 1u);
}

TEST(SstpSession, GarbageAndMisroutedPacketsAreDropped) {
  // Corrupt bytes and feedback-type messages on the forward path must be
  // counted and ignored — never applied, never crash.
  sim::Simulator sim;
  auto cfg = fast_config();
  Session session(sim, cfg);
  session.sender().publish(Path::parse("/good"), blob(100, 1));
  sim.run_until(10.0);
  ASSERT_EQ(session.receiver().tree().leaf_count(), 1u);

  Receiver& recv = session.receiver();
  recv.handle({0xDE, 0xAD, 0xBE, 0xEF});
  recv.handle({});
  NackMsg misrouted;
  misrouted.path = Path::parse("/good");
  recv.handle(encode(Message(misrouted)));  // feedback type on data path
  EXPECT_EQ(recv.stats().decode_errors, 3u);

  Sender& sender = session.sender();
  const auto before = sender.stats().decode_errors;
  sender.handle_feedback({0x01, 0x02});
  SummaryMsg misrouted2;
  sender.handle_feedback(encode(Message(misrouted2)));  // data type on fb
  EXPECT_EQ(sender.stats().decode_errors, before + 2);

  sim.run_until(20.0);
  EXPECT_DOUBLE_EQ(session.instantaneous_consistency(), 1.0);
}

// -------------------------------------------------- membership & fault API

TEST(SstpSession, LateJoinerConvergesByListening) {
  sim::Simulator sim;
  auto cfg = fast_config();
  cfg.loss_rate = 0.2;
  cfg.seed = 11;
  Session session(sim, cfg);
  for (int i = 0; i < 8; ++i) {
    session.sender().publish(Path::parse("/j/" + std::to_string(i)),
                             blob(500, static_cast<std::uint8_t>(i)));
  }
  sim.run_until(100.0);
  ASSERT_DOUBLE_EQ(session.instantaneous_consistency(), 1.0);

  const std::size_t r = session.add_receiver();
  EXPECT_EQ(r, 1u);
  EXPECT_TRUE(session.receiver_active(r));
  EXPECT_LT(session.receiver_consistency(r), 1.0);  // empty tree, 8 ADUs live
  EXPECT_LT(session.catch_up_latency(r), 0.0);      // still converging
  sim.run_until(300.0);
  // The joiner converged through summaries + recursive descent alone.
  EXPECT_EQ(session.receiver(r).tree().leaf_count(), 8u);
  EXPECT_DOUBLE_EQ(session.receiver_consistency(r), 1.0);
  EXPECT_GE(session.catch_up_latency(r), 0.0);
}

TEST(SstpSession, DetachedReceiverExcludedFromConsistency) {
  sim::Simulator sim;
  auto cfg = fast_config();
  cfg.num_receivers = 2;
  Session session(sim, cfg);
  session.sender().publish(Path::parse("/d"), blob(200, 1));
  sim.run_until(20.0);
  ASSERT_DOUBLE_EQ(session.instantaneous_consistency(), 1.0);

  session.detach_receiver(1);
  EXPECT_FALSE(session.receiver_active(1));
  // New data converges on the remaining receiver; the departed one neither
  // receives nor drags the average down.
  session.sender().publish(Path::parse("/d2"), blob(200, 2));
  sim.run_until(60.0);
  EXPECT_DOUBLE_EQ(session.instantaneous_consistency(), 1.0);
  EXPECT_EQ(session.receiver(0).tree().leaf_count(), 2u);
  // The departed receiver stopped listening: it keeps what it had but never
  // sees the new ADU.
  EXPECT_EQ(session.receiver(1).tree().leaf_count(), 1u);
}

TEST(SstpSession, CrashSenderApiPausesAndRestartRecovers) {
  sim::Simulator sim;
  auto cfg = fast_config();
  cfg.loss_rate = 0.1;
  cfg.receiver.session_ttl = 15.0;
  Session session(sim, cfg);
  for (int i = 0; i < 4; ++i) {
    session.sender().publish(Path::parse("/c/" + std::to_string(i)),
                             blob(300, static_cast<std::uint8_t>(i)));
  }
  sim.run_until(30.0);
  ASSERT_DOUBLE_EQ(session.instantaneous_consistency(), 1.0);

  session.crash_sender();
  EXPECT_TRUE(session.sender_crashed());
  sim.run_until(60.0);  // past session_ttl: receiver state evaporates
  EXPECT_LT(session.instantaneous_consistency(), 1.0);

  session.restart_sender();
  EXPECT_FALSE(session.sender_crashed());
  sim.run_until(180.0);
  EXPECT_DOUBLE_EQ(session.instantaneous_consistency(), 1.0);
}

TEST(SstpSession, PartitionHealsThroughNormalOperation) {
  sim::Simulator sim;
  auto cfg = fast_config();
  Session session(sim, cfg);
  session.sender().publish(Path::parse("/p"), blob(200, 1));
  sim.run_until(20.0);
  ASSERT_DOUBLE_EQ(session.instantaneous_consistency(), 1.0);

  session.set_partition(0, true);
  session.sender().publish(Path::parse("/p2"), blob(200, 2));
  sim.run_until(60.0);
  EXPECT_LT(session.instantaneous_consistency(), 1.0);  // missed while down

  session.set_partition(0, false);
  sim.run_until(160.0);
  EXPECT_DOUBLE_EQ(session.instantaneous_consistency(), 1.0);
}

TEST(SstpSession, DigestAlgoInteropMd5) {
  // Same protocol run under real MD5 digests.
  sim::Simulator sim;
  auto cfg = fast_config();
  cfg.sender.algo = hash::DigestAlgo::kMd5;
  cfg.loss_rate = 0.2;
  Session session(sim, cfg);
  session.sender().publish(Path::parse("/md5/doc"), blob(1500, 3));
  sim.run_until(60.0);
  EXPECT_DOUBLE_EQ(session.instantaneous_consistency(), 1.0);
}

}  // namespace
}  // namespace sst::sstp
