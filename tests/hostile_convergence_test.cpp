// Convergence-from-any-interleaving fuzz (ctest -L hostile): a full SSTP
// session is run over randomly parameterized hostile forward and feedback
// paths — reordering, iid/bursty duplication, scripted partitions, loss —
// while a random publish/remove workload mutates the namespace. A
// ReferenceTree mirrors every sender-side operation. After the mutation
// phase ends and every partition window has closed, the session must
// quiesce to digest agreement: every receiver's root digest equals the
// sender's, and the sender's equals the mirror's. Any interleaving that
// leaves a receiver stuck — a stale summary clearing live repairs, a
// duplicated signature pruning a live subtree, a resurrected removed ADU
// that never gets re-pruned — fails here with its seed printed.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "net/hostile.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sstp/reference_tree.hpp"
#include "sstp/session.hpp"

namespace sst::sstp {
namespace {

// Acceptance floor: at least 1000 random hostile interleavings, every one
// reaching post-quiesce digest equality.
constexpr int kRuns = 1000;
constexpr double kMutateEnd = 25.0;
constexpr double kQuiesceLimit = 300.0;

/// Small namespace universe (depth <= 2 over {a,b,c}) so publishes,
/// updates, removes, and subtree removals constantly collide.
std::vector<Path> universe() {
  const char* const comps[] = {"a", "b", "c"};
  std::vector<Path> out;
  for (const char* a : comps) {
    out.push_back(Path::parse(std::string("/") + a));
    for (const char* b : comps) {
      out.push_back(Path::parse(std::string("/") + a + "/" + b));
    }
  }
  return out;
}

/// Draws a random hostile-path parameterization. Roughly one config in
/// eight comes out inactive, keeping plain FIFO-with-loss in the fuzzed
/// space; partition windows open during the mutation phase and always
/// close early in quiesce.
net::HostileConfig random_hostile(sim::Rng& rng, bool allow_partition) {
  net::HostileConfig cfg;
  if (rng.bernoulli(0.7)) {
    cfg.reorder.prob = rng.uniform() * 0.6;
    cfg.reorder.max_extra = rng.uniform() * 0.4;
  }
  if (rng.bernoulli(0.6)) {
    cfg.duplicate.prob = rng.uniform() * 0.4;
    cfg.duplicate.burst_continue = rng.uniform() * 0.6;
    cfg.duplicate.spread = rng.uniform() * 0.05;
  }
  if (allow_partition && rng.bernoulli(0.5)) {
    const double start = 4.0 + rng.uniform() * 10.0;
    const double len = 1.0 + rng.uniform() * 8.0;
    cfg.partition.windows.emplace_back(start, start + len);
    if (rng.bernoulli(0.3)) {
      const double s2 = start + len + 1.0 + rng.uniform() * 4.0;
      cfg.partition.windows.emplace_back(s2, s2 + rng.uniform() * 3.0);
    }
  }
  return cfg;
}

struct Op {
  double at = 0.0;
  bool is_remove = false;
  Path path;
  std::vector<std::uint8_t> data;
};

TEST(HostileConvergence, AnyInterleavingQuiescesToDigestAgreement) {
  const std::vector<Path> paths = universe();
  double worst_quiesce = 0.0;

  for (int run = 0; run < kRuns; ++run) {
    const auto seed = static_cast<std::uint64_t>(0x5EED0000 + run);
    // Separate master stream for the fuzzer's own choices, so they never
    // collide with the session's internal forks of cfg.seed.
    sim::Rng master(seed ^ 0x9E3779B97F4A7C15ULL);
    sim::Rng cfg_rng = master.fork("config");
    sim::Rng op_rng = master.fork("ops");

    SessionConfig cfg;
    cfg.seed = seed;
    cfg.sender.mu_data = sim::kbps(128);
    cfg.sender.min_summary_interval = 0.5;
    cfg.sender.algo = hash::DigestAlgo::kFnv1a;  // cheap digests for fuzzing
    cfg.receiver.retry_timeout = 1.0;
    cfg.receiver.report_interval = 2.0;
    cfg.receiver.session_ttl = 0.0;
    cfg.mu_fb = sim::kbps(16);
    cfg.num_receivers = 1 + cfg_rng.uniform_int(3);
    const double losses[] = {0.0, 0.1, 0.25};
    cfg.loss_rate = losses[cfg_rng.uniform_int(3)];
    cfg.fwd_hostile = random_hostile(cfg_rng, /*allow_partition=*/true);
    cfg.fb_hostile = random_hostile(cfg_rng, /*allow_partition=*/true);

    const std::string what =
        "run " + std::to_string(run) + " seed " + std::to_string(seed) +
        " fwd=[" + cfg.fwd_hostile.describe() + "] fb=[" +
        cfg.fb_hostile.describe() + "] loss=" + std::to_string(cfg.loss_rate) +
        " receivers=" + std::to_string(cfg.num_receivers);

    // Pre-draw the mutation schedule so the op stream is independent of
    // how the session's own events interleave.
    const int n_ops = 12 + static_cast<int>(op_rng.uniform_int(18));
    std::vector<Op> ops(static_cast<std::size_t>(n_ops));
    for (Op& op : ops) {
      op.at = 0.5 + op_rng.uniform() * (kMutateEnd - 1.0);
      op.path = paths[op_rng.uniform_int(paths.size())];
      op.is_remove = op_rng.bernoulli(0.25);
      if (!op.is_remove) {
        op.data.resize(op_rng.uniform_int(301));
        for (auto& b : op.data) {
          b = static_cast<std::uint8_t>(op_rng.next_u64() & 0xFF);
        }
      }
    }

    sim::Simulator sim;
    Session session(sim, cfg);
    ReferenceTree ref(hash::DigestAlgo::kFnv1a);

    for (const Op& op : ops) {
      sim.after(op.at, [&session, &ref, op, &what] {
        if (op.is_remove) {
          EXPECT_EQ(session.sender().remove(op.path), ref.remove(op.path))
              << what << " remove " << op.path.str();
        } else {
          EXPECT_EQ(session.sender().publish(op.path, op.data),
                    ref.put(op.path, op.data, {}))
              << what << " publish " << op.path.str();
        }
      });
    }

    // Quiesce: no new mutations, partitions all closed; the announce/listen
    // process alone must drive every receiver to the sender's digest.
    auto all_agree = [&session] {
      const hash::Digest want = session.sender().tree().root_digest();
      for (std::size_t r = 0; r < session.receiver_count(); ++r) {
        if (session.receiver(r).tree().root_digest() != want) return false;
      }
      return true;
    };
    double quiesced_at = -1.0;
    for (double t = kMutateEnd + 10.0; t <= kQuiesceLimit; t += 5.0) {
      sim.run_until(t);
      if (all_agree()) {
        quiesced_at = t;
        break;
      }
    }
    if (quiesced_at < 0.0) {
      // Dump the divergent state so a failing seed is diagnosable from the
      // log alone: every leaf as path(version,right_edge/total).
      auto dump = [](const auto& tree, const char* who) {
        std::string out = std::string("  ") + who + ":";
        tree.for_each_leaf(Path{}, [&out](const Path& p, const Adu& adu) {
          out += " " + p.str() + "(v" + std::to_string(adu.version) + "," +
                 std::to_string(adu.right_edge) + "/" +
                 std::to_string(adu.total_size) + ")";
        });
        std::fprintf(stderr, "%s\n", out.c_str());
      };
      dump(session.sender().tree(), "sender");
      for (std::size_t r = 0; r < session.receiver_count(); ++r) {
        dump(session.receiver(r).tree(),
             ("recv" + std::to_string(r)).c_str());
      }
    }
    ASSERT_GE(quiesced_at, 0.0)
        << what << ": receivers never reached digest agreement within "
        << kQuiesceLimit << "s of simulated time";
    if (quiesced_at > worst_quiesce) worst_quiesce = quiesced_at;

    // The sender's own namespace must equal the operation mirror — the
    // hostile path (and any feedback it provoked) may never corrupt
    // publisher state. Leaf digests cover (version, right_edge); by quiesce
    // the sender has fully transmitted every live ADU, so bring the
    // mirror's edges to total_size before comparing.
    std::vector<std::pair<Path, std::uint64_t>> leaves;
    ref.for_each_leaf(Path{}, [&leaves](const Path& p, const Adu& adu) {
      leaves.emplace_back(p, adu.total_size);
    });
    for (const auto& [p, total] : leaves) ref.advance_right_edge(p, total);
    ASSERT_EQ(session.sender().tree().root_digest(), ref.root_digest())
        << what << ": sender tree diverged from the operation mirror";
    ASSERT_EQ(session.sender().tree().leaf_count(), ref.leaf_count()) << what;
  }

  // Not an assertion — a tripwire number for humans reading the log.
  std::printf("[ hostile ] %d interleavings quiesced; worst case %.0fs\n",
              kRuns, worst_quiesce);
}

}  // namespace
}  // namespace sst::sstp
