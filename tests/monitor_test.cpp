// Tests for the consistency metric implementation: c(t), E[c(t)], and
// receive latency, checked against hand-computed scenarios.
#include <gtest/gtest.h>

#include "core/monitor.hpp"
#include "core/table.hpp"
#include "sim/simulator.hpp"

namespace sst::core {
namespace {

struct Fixture {
  sim::Simulator sim;
  PublisherTable pub;
  ConsistencyMonitor monitor{sim, pub};
  ReceiverTable recv{sim, 0.0};

  Fixture() { monitor.attach(recv); }
};

TEST(Monitor, EmptyLiveSetIsVacuouslyConsistent) {
  Fixture f;
  EXPECT_DOUBLE_EQ(f.monitor.instantaneous(), 1.0);
  f.sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(f.monitor.average_consistency(), 1.0);
}

TEST(Monitor, InsertMakesInconsistentUntilReceived) {
  Fixture f;
  const Key k = f.pub.insert({}, 100);
  EXPECT_DOUBLE_EQ(f.monitor.instantaneous(), 0.0);
  f.recv.refresh(k, 1);
  EXPECT_DOUBLE_EQ(f.monitor.instantaneous(), 1.0);
}

TEST(Monitor, UpdateInvalidatesReceiverCopy) {
  Fixture f;
  const Key k = f.pub.insert({}, 100);
  f.recv.refresh(k, 1);
  EXPECT_DOUBLE_EQ(f.monitor.instantaneous(), 1.0);
  f.pub.update(k, {});
  EXPECT_DOUBLE_EQ(f.monitor.instantaneous(), 0.0);
  f.recv.refresh(k, 2);
  EXPECT_DOUBLE_EQ(f.monitor.instantaneous(), 1.0);
}

TEST(Monitor, StaleRefreshDoesNotCount) {
  Fixture f;
  const Key k = f.pub.insert({}, 100);
  f.pub.update(k, {});  // version 2
  f.recv.refresh(k, 1); // receiver applies old announcement
  EXPECT_DOUBLE_EQ(f.monitor.instantaneous(), 0.0);
}

TEST(Monitor, RemoveShrinksLiveSet) {
  Fixture f;
  const Key a = f.pub.insert({}, 100);
  const Key b = f.pub.insert({}, 100);
  f.recv.refresh(a, 1);
  EXPECT_DOUBLE_EQ(f.monitor.instantaneous(), 0.5);
  f.pub.remove(b);  // the inconsistent one dies
  EXPECT_DOUBLE_EQ(f.monitor.instantaneous(), 1.0);
}

TEST(Monitor, ReceiverExpiryMakesInconsistent) {
  sim::Simulator sim;
  PublisherTable pub;
  ConsistencyMonitor monitor(sim, pub);
  ReceiverTable recv(sim, 5.0);
  monitor.attach(recv);
  const Key k = pub.insert({}, 100);
  recv.refresh(k, 1);
  EXPECT_DOUBLE_EQ(monitor.instantaneous(), 1.0);
  sim.run_until(6.0);  // receiver entry expires, key still live
  EXPECT_DOUBLE_EQ(monitor.instantaneous(), 0.0);
}

TEST(Monitor, TimeAverageHandComputed) {
  Fixture f;
  // t=0: insert (c=0). t=4: received (c=1). t=10: end.
  const Key k = f.pub.insert({}, 100);
  f.sim.at(4.0, [&] { f.recv.refresh(k, 1); });
  f.sim.run_until(10.0);
  EXPECT_NEAR(f.monitor.average_consistency(), 0.6, 1e-12);
}

TEST(Monitor, MultipleReceiversAveraged) {
  sim::Simulator sim;
  PublisherTable pub;
  ConsistencyMonitor monitor(sim, pub);
  ReceiverTable r1(sim, 0.0), r2(sim, 0.0);
  monitor.attach(r1);
  monitor.attach(r2);
  const Key k = pub.insert({}, 100);
  r1.refresh(k, 1);
  EXPECT_DOUBLE_EQ(monitor.instantaneous(), 0.5);
  r2.refresh(k, 1);
  EXPECT_DOUBLE_EQ(monitor.instantaneous(), 1.0);
}

TEST(Monitor, LatencyMeasuredFromIntroductionToFirstReceipt) {
  Fixture f;
  const Key k = f.pub.insert({}, 100);
  f.sim.at(2.5, [&] { f.recv.refresh(k, 1); });
  f.sim.at(5.0, [&] { f.recv.refresh(k, 1); });  // duplicate: not re-counted
  f.sim.run();
  ASSERT_EQ(f.monitor.latency().count(), 1u);
  EXPECT_DOUBLE_EQ(f.monitor.latency().quantile(0.5), 2.5);
}

TEST(Monitor, LatencyPerVersion) {
  Fixture f;
  const Key k = f.pub.insert({}, 100);
  f.sim.at(1.0, [&] { f.recv.refresh(k, 1); });
  f.sim.at(3.0, [&] { f.pub.update(k, {}); });
  f.sim.at(7.0, [&] { f.recv.refresh(k, 2); });
  f.sim.run();
  ASSERT_EQ(f.monitor.latency().count(), 2u);
  EXPECT_DOUBLE_EQ(f.monitor.latency().quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(f.monitor.latency().quantile(1.0), 4.0);
}

TEST(Monitor, SupersededVersionReceiptNotCounted) {
  Fixture f;
  const Key k = f.pub.insert({}, 100);
  f.sim.at(1.0, [&] { f.pub.update(k, {}); });       // v2 supersedes v1
  f.sim.at(2.0, [&] { f.recv.refresh(k, 1); });      // stale receipt
  f.sim.run();
  EXPECT_EQ(f.monitor.latency().count(), 0u);
  EXPECT_EQ(f.monitor.versions_received(), 0u);
  EXPECT_EQ(f.monitor.versions_introduced(), 2u);
}

TEST(Monitor, ResetStatsDiscardsHistoryKeepsState) {
  Fixture f;
  const Key k = f.pub.insert({}, 100);
  f.sim.run_until(10.0);  // c = 0 for 10 s
  f.monitor.reset_stats();
  f.recv.refresh(k, 1);
  f.sim.run_until(20.0);  // c = 1 for 10 s
  EXPECT_NEAR(f.monitor.average_consistency(), 1.0, 1e-9);
  EXPECT_EQ(f.monitor.versions_introduced(), 0u);  // counted pre-reset
}

TEST(Monitor, IntegralDifferencing) {
  Fixture f;
  const Key k = f.pub.insert({}, 100);
  f.sim.at(5.0, [&] { f.recv.refresh(k, 1); });
  f.sim.run_until(5.0);
  const double i1 = f.monitor.consistency_integral();
  f.sim.run_until(9.0);
  const double i2 = f.monitor.consistency_integral();
  EXPECT_NEAR(i2 - i1, 4.0, 1e-12);  // consistent throughout [5,9)
}

TEST(Monitor, ConsistencyBoundedZeroOne) {
  Fixture f;
  for (int i = 0; i < 10; ++i) f.pub.insert({}, 100);
  const double c = f.monitor.instantaneous();
  EXPECT_GE(c, 0.0);
  EXPECT_LE(c, 1.0);
}

}  // namespace
}  // namespace sst::core
