// Tests for the consistency metric implementation: c(t), E[c(t)], and
// receive latency, checked against hand-computed scenarios.
#include <gtest/gtest.h>

#include "core/monitor.hpp"
#include "core/table.hpp"
#include "sim/simulator.hpp"

namespace sst::core {
namespace {

struct Fixture {
  sim::Simulator sim;
  PublisherTable pub;
  ConsistencyMonitor monitor{sim, pub};
  ReceiverTable recv{sim, 0.0};

  Fixture() { monitor.attach(recv); }
};

TEST(Monitor, EmptyLiveSetIsVacuouslyConsistent) {
  Fixture f;
  EXPECT_DOUBLE_EQ(f.monitor.instantaneous(), 1.0);
  f.sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(f.monitor.average_consistency(), 1.0);
}

TEST(Monitor, InsertMakesInconsistentUntilReceived) {
  Fixture f;
  const Key k = f.pub.insert({}, 100);
  EXPECT_DOUBLE_EQ(f.monitor.instantaneous(), 0.0);
  f.recv.refresh(k, 1);
  EXPECT_DOUBLE_EQ(f.monitor.instantaneous(), 1.0);
}

TEST(Monitor, UpdateInvalidatesReceiverCopy) {
  Fixture f;
  const Key k = f.pub.insert({}, 100);
  f.recv.refresh(k, 1);
  EXPECT_DOUBLE_EQ(f.monitor.instantaneous(), 1.0);
  f.pub.update(k, {});
  EXPECT_DOUBLE_EQ(f.monitor.instantaneous(), 0.0);
  f.recv.refresh(k, 2);
  EXPECT_DOUBLE_EQ(f.monitor.instantaneous(), 1.0);
}

TEST(Monitor, StaleRefreshDoesNotCount) {
  Fixture f;
  const Key k = f.pub.insert({}, 100);
  f.pub.update(k, {});  // version 2
  f.recv.refresh(k, 1); // receiver applies old announcement
  EXPECT_DOUBLE_EQ(f.monitor.instantaneous(), 0.0);
}

TEST(Monitor, RemoveShrinksLiveSet) {
  Fixture f;
  const Key a = f.pub.insert({}, 100);
  const Key b = f.pub.insert({}, 100);
  f.recv.refresh(a, 1);
  EXPECT_DOUBLE_EQ(f.monitor.instantaneous(), 0.5);
  f.pub.remove(b);  // the inconsistent one dies
  EXPECT_DOUBLE_EQ(f.monitor.instantaneous(), 1.0);
}

TEST(Monitor, ReceiverExpiryMakesInconsistent) {
  sim::Simulator sim;
  PublisherTable pub;
  ConsistencyMonitor monitor(sim, pub);
  ReceiverTable recv(sim, 5.0);
  monitor.attach(recv);
  const Key k = pub.insert({}, 100);
  recv.refresh(k, 1);
  EXPECT_DOUBLE_EQ(monitor.instantaneous(), 1.0);
  sim.run_until(6.0);  // receiver entry expires, key still live
  EXPECT_DOUBLE_EQ(monitor.instantaneous(), 0.0);
}

TEST(Monitor, TimeAverageHandComputed) {
  Fixture f;
  // t=0: insert (c=0). t=4: received (c=1). t=10: end.
  const Key k = f.pub.insert({}, 100);
  f.sim.at(4.0, [&] { f.recv.refresh(k, 1); });
  f.sim.run_until(10.0);
  EXPECT_NEAR(f.monitor.average_consistency(), 0.6, 1e-12);
}

TEST(Monitor, MultipleReceiversAveraged) {
  sim::Simulator sim;
  PublisherTable pub;
  ConsistencyMonitor monitor(sim, pub);
  ReceiverTable r1(sim, 0.0), r2(sim, 0.0);
  monitor.attach(r1);
  monitor.attach(r2);
  const Key k = pub.insert({}, 100);
  r1.refresh(k, 1);
  EXPECT_DOUBLE_EQ(monitor.instantaneous(), 0.5);
  r2.refresh(k, 1);
  EXPECT_DOUBLE_EQ(monitor.instantaneous(), 1.0);
}

TEST(Monitor, LatencyMeasuredFromIntroductionToFirstReceipt) {
  Fixture f;
  const Key k = f.pub.insert({}, 100);
  f.sim.at(2.5, [&] { f.recv.refresh(k, 1); });
  f.sim.at(5.0, [&] { f.recv.refresh(k, 1); });  // duplicate: not re-counted
  f.sim.run();
  ASSERT_EQ(f.monitor.latency().count(), 1u);
  EXPECT_DOUBLE_EQ(f.monitor.latency().quantile(0.5), 2.5);
}

TEST(Monitor, LatencyPerVersion) {
  Fixture f;
  const Key k = f.pub.insert({}, 100);
  f.sim.at(1.0, [&] { f.recv.refresh(k, 1); });
  f.sim.at(3.0, [&] { f.pub.update(k, {}); });
  f.sim.at(7.0, [&] { f.recv.refresh(k, 2); });
  f.sim.run();
  ASSERT_EQ(f.monitor.latency().count(), 2u);
  EXPECT_DOUBLE_EQ(f.monitor.latency().quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(f.monitor.latency().quantile(1.0), 4.0);
}

TEST(Monitor, SupersededVersionReceiptNotCounted) {
  Fixture f;
  const Key k = f.pub.insert({}, 100);
  f.sim.at(1.0, [&] { f.pub.update(k, {}); });       // v2 supersedes v1
  f.sim.at(2.0, [&] { f.recv.refresh(k, 1); });      // stale receipt
  f.sim.run();
  EXPECT_EQ(f.monitor.latency().count(), 0u);
  EXPECT_EQ(f.monitor.versions_received(), 0u);
  EXPECT_EQ(f.monitor.versions_introduced(), 2u);
}

TEST(Monitor, ResetStatsDiscardsHistoryKeepsState) {
  Fixture f;
  const Key k = f.pub.insert({}, 100);
  f.sim.run_until(10.0);  // c = 0 for 10 s
  f.monitor.reset_stats();
  f.recv.refresh(k, 1);
  f.sim.run_until(20.0);  // c = 1 for 10 s
  EXPECT_NEAR(f.monitor.average_consistency(), 1.0, 1e-9);
  EXPECT_EQ(f.monitor.versions_introduced(), 0u);  // counted pre-reset
}

TEST(Monitor, IntegralDifferencing) {
  Fixture f;
  const Key k = f.pub.insert({}, 100);
  f.sim.at(5.0, [&] { f.recv.refresh(k, 1); });
  f.sim.run_until(5.0);
  const double i1 = f.monitor.consistency_integral();
  f.sim.run_until(9.0);
  const double i2 = f.monitor.consistency_integral();
  EXPECT_NEAR(i2 - i1, 4.0, 1e-12);  // consistent throughout [5,9)
}

TEST(Monitor, ConsistencyBoundedZeroOne) {
  Fixture f;
  for (int i = 0; i < 10; ++i) f.pub.insert({}, 100);
  const double c = f.monitor.instantaneous();
  EXPECT_GE(c, 0.0);
  EXPECT_LE(c, 1.0);
}

// ------------------------------------------------------- dynamic membership

TEST(Monitor, DetachedReceiverExcludedFromAverage) {
  sim::Simulator sim;
  PublisherTable pub;
  ConsistencyMonitor monitor(sim, pub);
  ReceiverTable r1(sim, 0.0), r2(sim, 0.0);
  monitor.attach(r1);
  monitor.attach(r2);
  const Key k = pub.insert({}, 100);
  r1.refresh(k, 1);
  EXPECT_DOUBLE_EQ(monitor.instantaneous(), 0.5);
  monitor.detach(1);  // the inconsistent receiver leaves
  EXPECT_FALSE(monitor.active(1));
  EXPECT_DOUBLE_EQ(monitor.instantaneous(), 1.0);
}

TEST(Monitor, DetachLastReceiverVacuouslyConsistent) {
  Fixture f;
  f.pub.insert({}, 100);
  EXPECT_DOUBLE_EQ(f.monitor.instantaneous(), 0.0);
  f.monitor.detach(0);
  EXPECT_DOUBLE_EQ(f.monitor.instantaneous(), 1.0);
  EXPECT_TRUE(f.monitor.active_receivers() == 0u);
}

TEST(Monitor, MidRunAttachStartsInconsistent) {
  Fixture f;
  const Key k = f.pub.insert({}, 100);
  f.recv.refresh(k, 1);
  EXPECT_DOUBLE_EQ(f.monitor.instantaneous(), 1.0);
  ReceiverTable late(f.sim, 0.0);
  f.sim.run_until(5.0);
  f.monitor.attach(late);  // empty table, one live key -> c_late = 0
  EXPECT_DOUBLE_EQ(f.monitor.instantaneous(), 0.5);
  late.refresh(k, 1);
  EXPECT_DOUBLE_EQ(f.monitor.instantaneous(), 1.0);
}

TEST(Monitor, LateJoinerCatchUpLatency) {
  Fixture f;
  const Key a = f.pub.insert({}, 100);
  const Key b = f.pub.insert({}, 100);
  f.recv.refresh(a, 1);
  f.recv.refresh(b, 1);
  ReceiverTable late(f.sim, 0.0);
  f.sim.at(10.0, [&] { f.monitor.attach(late); });
  f.sim.at(12.0, [&] { late.refresh(a, 1); });  // c_late = 0.5 < 0.9
  f.sim.at(17.0, [&] { late.refresh(b, 1); });  // c_late = 1.0 -> caught up
  f.sim.run_until(11.0);
  EXPECT_LT(f.monitor.catch_up_latency(1), 0.0);  // still converging
  f.sim.run_until(20.0);
  EXPECT_DOUBLE_EQ(f.monitor.catch_up_latency(1), 7.0);
}

TEST(Monitor, InitialReceiverCatchesUpImmediately) {
  Fixture f;  // attached before any publishes: already at c = 1
  f.pub.insert({}, 100);
  EXPECT_DOUBLE_EQ(f.monitor.catch_up_latency(0), 0.0);
}

TEST(Monitor, LateJoinerRefreshDoesNotCountTowardVersionLatency) {
  Fixture f;
  const Key k = f.pub.insert({}, 100);
  f.recv.refresh(k, 1);
  ASSERT_EQ(f.monitor.latency().count(), 1u);
  ReceiverTable late(f.sim, 0.0);
  f.sim.at(5.0, [&] { f.monitor.attach(late); });
  f.sim.at(8.0, [&] { late.refresh(k, 1); });
  f.sim.run();
  // The joiner's catch-up receipt is not a version-propagation sample.
  EXPECT_EQ(f.monitor.latency().count(), 1u);
}

TEST(Monitor, DetachSettlesPendingVersions) {
  sim::Simulator sim;
  PublisherTable pub;
  ConsistencyMonitor monitor(sim, pub);
  ReceiverTable r1(sim, 0.0), r2(sim, 0.0);
  monitor.attach(r1);
  monitor.attach(r2);
  const Key k = pub.insert({}, 100);
  sim.at(3.0, [&] { r1.refresh(k, 1); });
  // r2 never receives it; detaching r2 must settle the version as fully
  // received (latency recorded once, from r1).
  sim.at(6.0, [&] { monitor.detach(1); });
  sim.run();
  EXPECT_EQ(monitor.versions_received(), 1u);
  EXPECT_EQ(monitor.latency().count(), 1u);
}

TEST(Monitor, TimeAverageAcrossMembershipChange) {
  sim::Simulator sim;
  PublisherTable pub;
  ConsistencyMonitor monitor(sim, pub);
  ReceiverTable r1(sim, 0.0), r2(sim, 0.0);
  monitor.attach(r1);
  monitor.attach(r2);
  const Key k = pub.insert({}, 100);
  r1.refresh(k, 1);
  // c = 0.5 over [0,4), then r2 leaves: c = 1.0 over [4,10).
  sim.at(4.0, [&] { monitor.detach(1); });
  sim.run_until(10.0);
  EXPECT_NEAR(monitor.average_consistency(), (0.5 * 4 + 1.0 * 6) / 10, 1e-12);
}

}  // namespace
}  // namespace sst::core
