// Tests for time-weighted averaging, Welford statistics, histograms, and
// result tables.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/histogram.hpp"
#include "stats/series.hpp"
#include "stats/time_average.hpp"
#include "stats/welford.hpp"

namespace sst::stats {
namespace {

TEST(TimeAverage, PiecewiseConstantExact) {
  TimeAverage ta(0.0, 1.0);
  ta.update(2.0, 0.0);  // value 1 for [0,2)
  ta.update(4.0, 0.5);  // value 0 for [2,4)
  // value 0.5 for [4,8)
  EXPECT_DOUBLE_EQ(ta.average(8.0), (2.0 * 1.0 + 2.0 * 0.0 + 4.0 * 0.5) / 8.0);
}

TEST(TimeAverage, InitialValueOnly) {
  TimeAverage ta(0.0, 0.75);
  EXPECT_DOUBLE_EQ(ta.average(10.0), 0.75);
}

TEST(TimeAverage, ZeroDurationReturnsCurrent) {
  TimeAverage ta(5.0, 0.3);
  EXPECT_DOUBLE_EQ(ta.average(), 0.3);
}

TEST(TimeAverage, ResetDiscardsHistory) {
  TimeAverage ta(0.0, 0.0);
  ta.update(10.0, 1.0);  // 0 over [0,10)
  ta.reset(10.0);
  // From 10 on, value is 1.
  EXPECT_DOUBLE_EQ(ta.average(20.0), 1.0);
}

TEST(TimeAverage, OutOfOrderUpdatesClamped) {
  TimeAverage ta(0.0, 1.0);
  ta.update(5.0, 0.0);
  ta.update(3.0, 0.5);  // stale timestamp: applies at t=5
  EXPECT_DOUBLE_EQ(ta.average(10.0), (5.0 * 1.0 + 5.0 * 0.5) / 10.0);
}

TEST(TimeAverage, IntegralDifferencing) {
  TimeAverage ta(0.0, 2.0);
  ta.advance(3.0);
  const double i1 = ta.integral();
  ta.update(5.0, 4.0);
  ta.advance(7.0);
  const double i2 = ta.integral();
  // Window [3,7): 2*2 + 4*2 = 12.
  EXPECT_DOUBLE_EQ(i2 - i1, 12.0);
}

TEST(Welford, MeanAndVariance) {
  Welford w;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_EQ(w.count(), 8u);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
}

TEST(Welford, SingleSample) {
  Welford w;
  w.add(3.0);
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.sem(), 0.0);
}

TEST(Welford, CiShrinksWithSamples) {
  Welford small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 2);
  for (int i = 0; i < 1000; ++i) large.add(i % 2);
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);
  h.add(100.0);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
}

TEST(Histogram, QuantileApproximation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) h.add(i % 100);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.95), 95.0, 2.0);
}

TEST(Samples, ExactQuantiles) {
  Samples s;
  for (int i = 100; i >= 1; --i) s.add(i);  // 1..100 reversed
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.0, 1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Samples, EmptyIsZero) {
  Samples s;
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Samples, AddAfterQuantileStillCorrect) {
  Samples s;
  s.add(10.0);
  (void)s.quantile(0.5);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
}

TEST(ResultTable, RowsAndColumns) {
  ResultTable t({"x", "y"});
  t.add_row({1.0, 2.0});
  t.add_row({3.0, 4.0});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.row(1)[1], 4.0);
}

TEST(ResultTable, PrintsWithoutCrashing) {
  ResultTable t({"loss", "consistency"});
  t.add_row({0.1, 0.95});
  t.add_row({0.5, 0.6180339});
  t.add_row({1e-9, 123456789.0});
  std::FILE* devnull = std::fopen("/dev/null", "w");
  ASSERT_NE(devnull, nullptr);
  t.print(devnull, "Figure X");
  t.print_tsv(devnull);
  std::fclose(devnull);
}

}  // namespace
}  // namespace sst::stats
