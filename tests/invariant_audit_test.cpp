// invariant_audit_test.cpp — sweep-style invariant audits (ctest label
// `check`).
//
// check_test.cpp proves each validator can detect its own corruption; this
// file proves the REAL structures never need one to fire. Each sweep is a
// miniature of a fig-bench workload — event-queue churn, a full core
// experiment, an SSTP session with loss and membership churn, scheduler
// pick storms, channel pool reuse — interleaved with explicit
// check_invariants() calls that must come back empty every time.
//
// Under -DSST_CHECK=ON the structures additionally self-audit on their own
// cadence with the default abort-on-violation handler, so these sweeps
// double as a crash gate for the compiled-in hooks.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "core/experiment.hpp"
#include "net/channel.hpp"
#include "net/delay.hpp"
#include "net/loss.hpp"
#include "sched/hierarchical.hpp"
#include "sched/stride.hpp"
#include "sched/wfq.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sstp/interner.hpp"
#include "sstp/path.hpp"
#include "sstp/session.hpp"

namespace sst {
namespace {

using check::Violations;

/// Runs `structure.check_invariants` and fails the test in place with every
/// violation message, tagged with where in the sweep it happened.
template <typename T>
void expect_clean(const T& structure, const std::string& where) {
  Violations v;
  structure.check_invariants(v);
  for (const auto& msg : v) {
    ADD_FAILURE() << where << ": " << msg;
  }
}

// ------------------------------------------------------- event-queue churn

TEST(InvariantAudit, EventQueueChurnStaysClean) {
  sim::EventQueue q;
  sim::Rng rng(42);
  std::vector<sim::EventId> pending;
  double now = 0.0;

  for (int op = 0; op < 20000; ++op) {
    const double roll = rng.uniform();
    if (roll < 0.5 || q.empty()) {
      pending.push_back(q.schedule(now + rng.uniform() * 10.0, [] {}));
    } else if (roll < 0.75 && !pending.empty()) {
      // Cancel a pseudo-random pending handle; stale handles are fine (the
      // queue reports a no-op), which is exactly the tombstone path.
      const std::size_t i = rng.uniform_int(pending.size());
      (void)q.cancel(pending[i]);
      pending[i] = pending.back();
      pending.pop_back();
    } else {
      const auto fired = q.pop();
      if (fired) now = fired->time;
    }
    if ((op & 511) == 511) {
      expect_clean(q, "queue churn op " + std::to_string(op));
    }
  }
  expect_clean(q, "queue churn end");
}

// ----------------------------------------------------- core experiment run

TEST(InvariantAudit, CoreExperimentSweepStaysClean) {
  core::ExperimentConfig cfg;
  cfg.variant = core::Variant::kFeedback;
  cfg.workload.insert_rate = core::insert_rate_from_kbps(10.0, 1000);
  cfg.workload.death_mode = core::DeathMode::kExponentialLifetime;
  cfg.workload.mean_lifetime = 120.0;
  cfg.mu_data = sim::kbps(60);
  cfg.mu_fb = sim::kbps(15);
  cfg.loss_rate = 0.1;
  cfg.num_receivers = 2;
  cfg.duration = 400.0;
  cfg.warmup = 50.0;
  cfg.seed = 7;

  core::Experiment exp(cfg);
  exp.run_warmup();
  expect_clean(exp.simulator().queue(), "post-warmup");
  for (double t = cfg.warmup + 25.0; t < exp.end_time(); t += 25.0) {
    exp.run_until(t);
    expect_clean(exp.simulator().queue(), "t=" + std::to_string(t));
  }
  const auto result = exp.finish();
  expect_clean(exp.simulator().queue(), "post-finish");
  EXPECT_GT(result.avg_consistency, 0.0);
}

// -------------------------------------- sstp session with membership churn

TEST(InvariantAudit, SstpSessionChurnStaysClean) {
  sim::Simulator sim;
  sstp::SessionConfig cfg;
  cfg.sender.mu_data = sim::kbps(64);
  cfg.sender.min_summary_interval = 0.5;
  cfg.sender.algo = hash::DigestAlgo::kFnv1a;
  cfg.receiver.retry_timeout = 1.0;
  cfg.receiver.report_interval = 2.0;
  cfg.receiver.session_ttl = 0.0;
  cfg.num_receivers = 2;
  cfg.loss_rate = 0.2;
  cfg.seed = 3;
  sstp::Session session(sim, cfg);

  auto audit_all = [&](const std::string& where) {
    expect_clean(session.sender().tree(), where + " sender tree");
    for (std::size_t i = 0; i < session.receiver_count(); ++i) {
      if (!session.receiver_active(i)) continue;
      expect_clean(session.receiver(i).tree(),
                   where + " receiver " + std::to_string(i));
    }
    expect_clean(sstp::Interner::global(), where + " interner");
    expect_clean(sim.queue(), where + " event queue");
  };

  sim::Rng rng(17);
  double now = 0.0;
  for (int round = 0; round < 12; ++round) {
    // A burst of publishes (updates included: the path space is smaller
    // than round*count, so versions bump and dead entries recycle).
    for (int i = 0; i < 6; ++i) {
      const std::string path = "/g" + std::to_string(rng.uniform_int(4)) +
                               "/k" + std::to_string(rng.uniform_int(9));
      std::vector<std::uint8_t> data(64 + rng.uniform_int(512),
                                     static_cast<std::uint8_t>(round));
      session.sender().publish(sstp::Path::parse(path), std::move(data));
    }
    if (round == 4) (void)session.add_receiver();  // late join, empty tree
    if (round == 6) session.detach_receiver(0);    // leave, irreversible
    if (round == 8) session.crash_sender();        // soft-state recovery:
    if (round == 9) session.restart_sender();      // no special code path
    if (round == 10) {
      session.sender().remove(sstp::Path::parse("/g1"));  // subtree prune
    }
    now += 5.0;
    sim.run_until(now);
    audit_all("round " + std::to_string(round));
  }
  sim.run_until(now + 60.0);  // drain: let repair converge, TTLs fire
  audit_all("drained");

#if SST_CHECK_ENABLED
  // The compiled-in hooks must actually have audited along the way.
  EXPECT_GT(check::audits_run(), 0u);
#endif
}

// ---------------------------------------------------- scheduler pick storm

TEST(InvariantAudit, SchedulerChurnStaysClean) {
  sched::StrideScheduler stride;
  sched::WfqScheduler wfq;
  sched::HierarchicalScheduler hier;
  for (double w : {1.0, 2.0, 4.0}) {
    (void)stride.add_class(w);
    (void)wfq.add_class(w);
  }
  const std::size_t grp = hier.add_group(sched::HierarchicalScheduler::kRoot,
                                         2.0);
  (void)hier.add_class_in(grp, 1.0);
  (void)hier.add_class_in(grp, 3.0);
  (void)hier.add_class(1.0);

  sim::Rng rng(5);
  std::vector<double> head(3, 0.0);
  for (int op = 0; op < 4000; ++op) {
    for (auto& h : head) {
      // Idle classes (-1) come and go so the vtime/pass bookkeeping sees
      // backlog transitions, not just a steady pick rotation.
      h = rng.uniform() < 0.2 ? -1.0 : 100.0 + rng.uniform() * 900.0;
    }
    (void)stride.pick(head);
    (void)wfq.pick(head);
    (void)hier.pick(head);
    if ((op & 255) == 255) {
      const std::string where = "pick storm op " + std::to_string(op);
      expect_clean(stride, where + " stride");
      expect_clean(wfq, where + " wfq");
      expect_clean(hier, where + " hierarchical");
    }
  }
}

// ------------------------------------------------- channel payload-pool reuse

TEST(InvariantAudit, ChannelPoolReuseStaysClean) {
  sim::Simulator sim;
  net::Channel<std::vector<std::uint8_t>> ch(sim);
  int delivered = 0;
  ch.add_receiver(std::make_unique<net::BernoulliLoss>(0.3, sim::Rng(1)),
                  std::make_unique<net::FixedDelay>(0.01),
                  [&](const std::vector<std::uint8_t>&) { ++delivered; });
  ch.add_receiver(std::make_unique<net::NoLoss>(),
                  std::make_unique<net::FixedDelay>(0.05),
                  [&](const std::vector<std::uint8_t>&) { ++delivered; });

  double now = 0.0;
  for (int round = 0; round < 40; ++round) {
    // Bursts larger than the payload-pool cap force both the recycle path
    // and the overflow (fresh allocation) path.
    for (int i = 0; i < 96; ++i) {
      ch.send(std::vector<std::uint8_t>(32, static_cast<std::uint8_t>(i)),
              100);
    }
    now += 0.5;
    sim.run_until(now);
    expect_clean(ch, "channel round " + std::to_string(round));
  }
  EXPECT_GT(delivered, 0);
}

}  // namespace
}  // namespace sst
