// Tests for SSTP application data classes (paper Section 6.1, Figure 12):
// the hot bandwidth splits across app-defined classes by weight under the
// hierarchical scheduler, so applications "reflect their priorities into the
// data transport protocol".
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "sstp/session.hpp"

namespace sst::sstp {
namespace {

std::vector<std::uint8_t> blob(std::size_t n, std::uint8_t fill) {
  return std::vector<std::uint8_t>(n, fill);
}

SessionConfig two_class_config() {
  SessionConfig cfg;
  cfg.sender.mu_data = sim::kbps(32);
  cfg.sender.hot_share = 0.8;
  cfg.sender.min_summary_interval = 0.5;
  cfg.sender.algo = hash::DigestAlgo::kFnv1a;
  cfg.sender.class_weights = {0.8, 0.2};  // 0 = urgent, 1 = bulk
  cfg.sender.classify = [](const Path& path, const MetaTags&) {
    return Path::parse("/bulk").contains(path) ? 1u : 0u;
  };
  cfg.receiver.report_interval = 5.0;
  cfg.loss_rate = 0.0;
  return cfg;
}

TEST(SstpPriority, BothClassesEventuallyDeliver) {
  sim::Simulator sim;
  Session session(sim, two_class_config());
  session.sender().publish(Path::parse("/urgent/a"), blob(2000, 1));
  session.sender().publish(Path::parse("/bulk/b"), blob(2000, 2));
  sim.run_until(60.0);
  EXPECT_DOUBLE_EQ(session.instantaneous_consistency(), 1.0);
}

TEST(SstpPriority, UrgentClassWinsUnderBacklog) {
  sim::Simulator sim;
  Session session(sim, two_class_config());

  // Saturate both classes, then measure which completes first.
  double urgent_done = -1, bulk_done = -1;
  int urgent_left = 20, bulk_left = 20;
  session.receiver().on_complete([&](const Path& p, const Adu&) {
    if (Path::parse("/bulk").contains(p)) {
      if (--bulk_left == 0) bulk_done = sim.now();
    } else {
      if (--urgent_left == 0) urgent_done = sim.now();
    }
  });
  for (int i = 0; i < 20; ++i) {
    session.sender().publish(Path::parse("/urgent/" + std::to_string(i)),
                             blob(1000, 1));
    session.sender().publish(Path::parse("/bulk/" + std::to_string(i)),
                             blob(1000, 2));
  }
  sim.run_until(300.0);
  ASSERT_GT(urgent_done, 0.0) << "urgent batch never completed";
  ASSERT_GT(bulk_done, 0.0) << "bulk batch never completed";
  // With a 4:1 weight split the urgent batch finishes well ahead (the bulk
  // batch occupies roughly the full drain time of the combined backlog).
  EXPECT_LT(urgent_done * 1.4, bulk_done);
}

TEST(SstpPriority, IdleClassBandwidthFlowsToBusyClass) {
  sim::Simulator sim;
  Session session(sim, two_class_config());
  // Only bulk data exists: its 0.2 weight must not throttle it (work
  // conservation through the hierarchy).
  double t_done = -1;
  int left = 10;
  session.receiver().on_complete([&](const Path&, const Adu&) {
    if (--left == 0) t_done = sim.now();
  });
  for (int i = 0; i < 10; ++i) {
    session.sender().publish(Path::parse("/bulk/" + std::to_string(i)),
                             blob(1000, 2));
  }
  sim.run_until(120.0);
  ASSERT_GT(t_done, 0.0);
  // 10 KB at ~32 kbps (hot share 0.8 plus borrowed cold) ≈ 3 s; allow slack.
  EXPECT_LT(t_done, 10.0);
}

TEST(SstpPriority, ClassifierOutOfRangeClamped) {
  sim::Simulator sim;
  auto cfg = two_class_config();
  cfg.sender.classify = [](const Path&, const MetaTags&) {
    return 999u;  // bogus class: clamps to the last class
  };
  Session session(sim, cfg);
  session.sender().publish(Path::parse("/x"), blob(500, 1));
  sim.run_until(30.0);
  EXPECT_DOUBLE_EQ(session.instantaneous_consistency(), 1.0);
}

TEST(SstpPriority, DefaultSingleClassStillWorks) {
  sim::Simulator sim;
  SessionConfig cfg;
  cfg.sender.algo = hash::DigestAlgo::kFnv1a;
  cfg.loss_rate = 0.2;
  Session session(sim, cfg);
  session.sender().publish(Path::parse("/only"), blob(1500, 3));
  sim.run_until(60.0);
  EXPECT_DOUBLE_EQ(session.instantaneous_consistency(), 1.0);
}

}  // namespace
}  // namespace sst::sstp
