// Tests for multicast feedback management: NACK slotting and damping
// (paper Section 6: "a scalable mechanism such as slotting and damping
// [11, 20] may be used in managing feedback traffic").
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/experiment.hpp"
#include "core/receiver.hpp"
#include "core/table.hpp"
#include "sim/simulator.hpp"

namespace sst::core {
namespace {

struct SlottedFixture {
  sim::Simulator sim;
  ReceiverTable table{sim, 0.0};
  std::vector<NackMsg> nacks;
  std::unique_ptr<ReceiverAgent> agent;

  explicit SlottedFixture(double slot_max, std::uint64_t seed = 7) {
    ReceiverConfig cfg;
    cfg.feedback = true;
    cfg.nack_slot_max = slot_max;
    cfg.retry_timeout = 5.0;
    agent = std::make_unique<ReceiverAgent>(
        sim, table, cfg, [this](const NackMsg& n) { nacks.push_back(n); },
        sim::Rng(seed));
  }

  DataMsg msg(std::uint64_t seq, Key key = 1) {
    DataMsg m;
    m.seq = seq;
    m.key = key;
    m.version = 1;
    return m;
  }
};

TEST(Slotting, NackDelayedByRandomSlot) {
  SlottedFixture f(1.0);
  f.agent->handle(f.msg(0));
  f.agent->handle(f.msg(2));  // seq 1 missing at t=0
  EXPECT_TRUE(f.nacks.empty());  // not sent synchronously
  f.sim.run_until(1.0 + 1e-9);
  ASSERT_EQ(f.nacks.size(), 1u);  // sent within the slot window
  EXPECT_EQ(f.nacks[0].missing_seqs, (std::vector<std::uint64_t>{1}));
}

TEST(Slotting, OverheardNackSuppressesOwn) {
  SlottedFixture f(10.0);  // long slot: suppression wins the race
  f.agent->handle(f.msg(0));
  f.agent->handle(f.msg(2));  // seq 1 missing
  NackMsg peer;
  peer.missing_seqs = {1};
  peer.origin = 99;
  f.agent->observe_nack(peer);
  // Past the slot window but before the first retry (retry_timeout = 5 s):
  // the damped NACK must not have gone out.
  f.sim.run_until(4.0);
  EXPECT_TRUE(f.nacks.empty());
  EXPECT_EQ(f.agent->stats().suppressed, 1u);
}

TEST(Slotting, RepairBeforeSlotCancelsNack) {
  SlottedFixture f(10.0);
  f.agent->handle(f.msg(0));
  f.agent->handle(f.msg(2));  // seq 1 missing
  DataMsg repair = f.msg(3, 2);
  repair.is_repair = true;
  repair.repairs_seq = 1;
  f.agent->handle(repair);
  f.sim.run_until(30.0);
  EXPECT_TRUE(f.nacks.empty());
}

TEST(Slotting, ObservedNackForUnknownSeqIgnored) {
  SlottedFixture f(1.0);
  NackMsg peer;
  peer.missing_seqs = {42};
  f.agent->observe_nack(peer);
  EXPECT_EQ(f.agent->stats().suppressed, 0u);
}

TEST(Slotting, SuppressedLossStillRetriedIfUnrepaired) {
  // The overheard NACK's repair never arrives; our retry scanner must
  // eventually re-request it.
  SlottedFixture f(1.0);
  f.agent->handle(f.msg(0));
  f.agent->handle(f.msg(2));
  NackMsg peer;
  peer.missing_seqs = {1};
  f.agent->observe_nack(peer);
  f.sim.run_until(30.0);  // retry_timeout = 5: retries kick in
  EXPECT_GE(f.nacks.size(), 1u);
  EXPECT_GT(f.agent->stats().retries, 0u);
}

// --------------------------------------------------------------- end to end

TEST(MulticastFeedback, GroupConvergesWithDamping) {
  ExperimentConfig cfg;
  cfg.variant = Variant::kFeedback;
  cfg.workload.insert_rate = insert_rate_from_kbps(10.0, 1000);
  cfg.workload.death_mode = DeathMode::kExponentialLifetime;
  cfg.workload.mean_lifetime = 120.0;
  cfg.mu_data = sim::kbps(42);
  cfg.mu_fb = sim::kbps(18);
  cfg.hot_share = 0.8;
  cfg.shared_loss_rate = 0.15;  // backbone loss, shared by the whole group
  cfg.loss_rate = 0.02;         // small independent leaf loss
  cfg.num_receivers = 8;
  cfg.multicast_feedback = true;
  cfg.receiver.nack_slot_max = 0.5;
  cfg.duration = 2000.0;
  cfg.warmup = 300.0;
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.avg_consistency, 0.85);
  EXPECT_GT(r.nacks_suppressed, 0u);
}

TEST(MulticastFeedback, DampingCutsNackTraffic) {
  // Same 8-receiver group, with and without slotting/damping: duplicate
  // requests for the same loss must drop substantially.
  ExperimentConfig cfg;
  cfg.variant = Variant::kFeedback;
  cfg.workload.insert_rate = insert_rate_from_kbps(10.0, 1000);
  cfg.workload.death_mode = DeathMode::kExponentialLifetime;
  cfg.workload.mean_lifetime = 120.0;
  cfg.mu_data = sim::kbps(42);
  cfg.mu_fb = sim::kbps(18);
  cfg.hot_share = 0.8;
  cfg.shared_loss_rate = 0.15;  // correlated loss is where damping matters
  cfg.loss_rate = 0.02;
  cfg.num_receivers = 8;
  cfg.multicast_feedback = true;
  cfg.duration = 1500.0;
  cfg.warmup = 300.0;

  cfg.receiver.nack_slot_max = 0.0;  // no slotting: everyone fires at once
  const auto undamped = run_experiment(cfg);
  cfg.receiver.nack_slot_max = 0.5;
  const auto damped = run_experiment(cfg);

  EXPECT_LT(static_cast<double>(damped.nacks_sent),
            0.5 * static_cast<double>(undamped.nacks_sent));
  // Consistency must not suffer for it.
  EXPECT_GT(damped.avg_consistency, undamped.avg_consistency - 0.03);
}

}  // namespace
}  // namespace sst::core
